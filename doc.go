// Package swapservellm is the root of the SwapServeLLM reproduction: an
// engine-agnostic model hot-swapping framework for cost-effective LLM
// inference (Stoyanov et al., SC Workshops '25).
//
// The public entry points live in internal/core (the SwapServeLLM server,
// router, scheduler, task manager, and preemption policy) layered over
// simulated substrates: a GPU device model (internal/gpu), a transparent
// GPU checkpoint driver (internal/cudackpt), a cgroup freezer
// (internal/cgroup), a Podman-like container runtime (internal/container),
// and four simulated inference engines (internal/engine/...).
//
// The root-level bench_test.go regenerates every table and figure from the
// paper's evaluation; see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package swapservellm
