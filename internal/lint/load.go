package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	ForTest     string
	DepOnly     bool
	Module      *struct{ Path string }
	Error       *struct{ Err string }
}

// Load enumerates the packages matching patterns under dir (via
// `go list`), parses each in-module package's source — including its
// in-package test files — and type-checks it against compiler export
// data, entirely offline. External (package foo_test) test files are
// not loaded; the conventions swaplint enforces bind implementations,
// and in-package tests, which share their state.
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-test", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", derr)
		}
		if p.Export != "" {
			if _, dup := exports[p.ImportPath]; !dup {
				exports[p.ImportPath] = p.Export
			}
		}
		// Targets: in-module packages named by the patterns, skipping the
		// synthesized test variants ("pkg.test" binaries, "pkg [pkg.test]"
		// recompilations) — the plain entry lists TestGoFiles itself.
		if p.Module != nil && !p.DepOnly && p.ForTest == "" &&
			!strings.HasSuffix(p.ImportPath, ".test") && !strings.Contains(p.ImportPath, " [") {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			continue
		}
		names := append(append([]string{}, t.GoFiles...), t.CgoFiles...)
		names = append(names, t.TestGoFiles...)
		var files []*ast.File
		for _, name := range names {
			af, perr := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if perr != nil {
				return nil, nil, fmt.Errorf("lint: %w", perr)
			}
			files = append(files, af)
		}
		pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Files: files}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
		pkg.Types = tpkg
		pkg.Info = info
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}
