package facts

import (
	"go/ast"
	"go/types"
	"strings"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/callgraph"
)

// typeOf returns the static type of e, nil when unknown.
func (w *walker) typeOf(e ast.Expr) types.Type {
	return w.info().TypeOf(e)
}

// calleeOf resolves a call expression to the *types.Func it invokes:
// direct function calls, method calls (through Selections), and
// package-qualified calls. Calls through function-typed values resolve
// to nil.
func (w *walker) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := w.info().Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		return w.methodValueOf(fun)
	}
	return nil
}

// methodValueOf resolves a selector to the function it denotes — a
// method (via Selections) or a package-qualified function.
func (w *walker) methodValueOf(sel *ast.SelectorExpr) *types.Func {
	if s, ok := w.info().Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := w.info().Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// funcValueKey resolves an expression used as a function value (an
// argument to Gate.Run/Go/Block) to a call-graph key.
func (w *walker) funcValueKey(arg ast.Expr) (string, bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if fn, ok := w.info().Uses[e].(*types.Func); ok {
			return callgraph.Key(fn), true
		}
	case *ast.SelectorExpr:
		if fn := w.methodValueOf(e); fn != nil {
			return callgraph.Key(fn), true
		}
	}
	return "", false
}

// resolveCallees returns the call-graph keys a call may reach: the
// static callee for concrete calls, or every CHA implementation for
// interface-method calls.
func (w *walker) resolveCallees(call *ast.CallExpr) []string {
	fn := w.calleeOf(call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return w.res.Implementations(iface, fn)
		}
	}
	return []string{callgraph.Key(fn)}
}

// mutexOpOf classifies fn as a mutex operation: kind is "Lock" or
// "Unlock", read marks the RLock/RUnlock variants.
func mutexOpOf(fn *types.Func) (kind string, read bool, ok bool) {
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil || !lint.IsMutexType(sig.Recv().Type()) {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock":
		return "Lock", false, true
	case "RLock":
		return "Lock", true, true
	case "Unlock":
		return "Unlock", false, true
	case "RUnlock":
		return "Unlock", true, true
	}
	return "", false, false
}

// recvNamed reports whether fn is a method on the named type
// pkgSuffix.name (pointer receivers included).
func recvNamed(fn *types.Func, pkgSuffix, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	return lint.NamedTypeIn(t, pkgSuffix, name)
}

// isGateMethod reports whether fn is simclock.Gate's method name.
func isGateMethod(fn *types.Func, name string) bool {
	return fn.Name() == name && recvNamed(fn, "internal/simclock", "Gate")
}

// recvInSimclock reports whether fn's receiver type is declared in a
// simclock package (the Clock interface or any implementation).
func recvInSimclock(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	var obj *types.TypeName
	switch tt := t.(type) {
	case *types.Named:
		obj = tt.Obj()
	default:
		return false
	}
	return obj.Pkg() != nil && lint.PkgPathHasSuffix(obj.Pkg().Path(), "internal/simclock")
}

// intrinsicOf classifies fn as a known wait or block primitive.
// Waits advance the simulated clock; blocks park the goroutine outside
// the gate protocol. Package paths are matched by suffix so linttest
// stub packages qualify.
func intrinsicOf(fn *types.Func) (detail string, kind OpKind, ok bool) {
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	// Simulated-clock waits.
	if recvInSimclock(fn) {
		switch name {
		case "Sleep":
			return "clock.Sleep", OpWait, true
		}
	}
	if pkgPath == "time" {
		if name == "Sleep" {
			return "time.Sleep", OpWait, true
		}
	}

	// Raw blocking primitives.
	if lint.PkgPathHasSuffix(pkgPath, "sync") {
		if recvNamed(fn, "sync", "WaitGroup") && name == "Wait" {
			return "WaitGroup.Wait", OpBlock, true
		}
		if recvNamed(fn, "sync", "Cond") && name == "Wait" {
			return "Cond.Wait", OpBlock, true
		}
	}
	if lint.PkgPathHasSuffix(pkgPath, "net/http") {
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "HTTP round trip", OpBlock, true
		case "ListenAndServe", "ListenAndServeTLS", "Serve":
			return "HTTP serve", OpBlock, true
		}
	}
	if pkgPath == "net" || strings.HasSuffix(pkgPath, "/net") {
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			return "network " + name, OpBlock, true
		}
	}
	if lint.PkgPathHasSuffix(pkgPath, "os/exec") {
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "subprocess " + name, OpBlock, true
		}
	}
	return "", 0, false
}

// isClockAfter reports whether call is simclock Clock.After (or
// time.After), whose received value advances the simulated clock.
func (w *walker) isClockAfter(call *ast.CallExpr) bool {
	fn := w.calleeOf(call)
	if fn == nil {
		return false
	}
	if fn.Name() != "After" {
		return false
	}
	if recvInSimclock(fn) {
		return true
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// classOf resolves the mutex denoted by expression e (the receiver of
// a Lock/Unlock call or the operand of a method value) to its
// module-wide class. Resolution, in order:
//
//   - a struct field `x.mu` names "<pkg>.<Type>.mu" through the owning
//     named type;
//   - a package-level var names "<pkg>.<var>";
//   - an index expression `m[k]` resolves through its container (the
//     per-key mutexes of a map or slice share one class);
//   - a call to a //swaplint:lockclass-annotated helper names the
//     annotated class;
//   - a local whose class was tracked through an assignment reuses it;
//   - a named struct locking an embedded mutex names "<pkg>.<Type>";
//   - anything else is class-unknown (tracked intra-function by its
//     source expression only).
func (w *walker) classOf(e ast.Expr) Class {
	expr := lint.ExprString(e)
	c := w.classOfInner(e)
	if c.Expr == "" {
		c.Expr = expr
	}
	return c
}

func (w *walker) classOfInner(e ast.Expr) Class {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// Field selection: name through the owning named type.
		if sel, ok := w.info().Selections[e]; ok && sel.Kind() == types.FieldVal {
			owner := sel.Recv()
			if ptr, isPtr := owner.(*types.Pointer); isPtr {
				owner = ptr.Elem()
			}
			if named, isNamed := owner.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return Class{Name: shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + e.Sel.Name}
			}
			return Class{}
		}
		// Package-qualified var: pkg.muName.
		if obj, ok := w.info().Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return Class{Name: shortPkg(obj.Pkg().Path()) + "." + obj.Name()}
		}
		return Class{}
	case *ast.Ident:
		obj := w.info().Uses[e]
		if obj == nil {
			return Class{}
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return Class{Name: shortPkg(v.Pkg().Path()) + "." + v.Name()}
		}
		if c, ok := w.localClass[obj]; ok {
			return c
		}
		// A named struct with an embedded mutex locked by promotion:
		// class is the struct type itself.
		if t := w.typeOf(e); t != nil && !lint.IsMutexType(t) {
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return Class{Name: shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name()}
			}
		}
		return Class{}
	case *ast.IndexExpr:
		return w.classOfInner(e.X)
	case *ast.StarExpr:
		return w.classOfInner(e.X)
	case *ast.UnaryExpr:
		return w.classOfInner(e.X)
	case *ast.CallExpr:
		if fn := w.calleeOf(e); fn != nil {
			if name, ok := w.facts.LockClasses[callgraph.Key(fn)]; ok {
				return Class{Name: name}
			}
		}
		return Class{}
	}
	return Class{}
}

// shortPkg returns the last path segment of an import path.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
