// Package facts computes interprocedural per-function summaries —
// "may sleep on the clock", "may block outside the gate token
// protocol", "acquires these lock classes" — for the whole program a
// swaplint run loads, and exposes the raw per-function operation
// streams (with the set of locks held at each operation) that the
// gatecheck, blockcheck, and lockorder analyzers consume.
//
// Collection is a structural walk of every function body (mirroring
// lockcheck's statement discipline: state updates in source order at
// one nesting level, conditionally-executed blocks analyzed against a
// copy), classifying three things at each step:
//
//   - lock operations, resolved to module-wide lock classes like
//     "core.Backend.swapMu" (owning named type + field, or package-level
//     variable, or a //swaplint:lockclass annotation for helpers that
//     return mutexes);
//   - intrinsic waits and blocks: simclock Clock.Sleep / Gate.Wait /
//     <-After advance the simulated clock; channel operations,
//     sync.WaitGroup.Wait, sync.Cond.Wait, network and subprocess calls
//     block outside the Gate token protocol unless wrapped in
//     Gate.Block / Gate.BlockIO;
//   - calls, resolved CHA-style through the callgraph package
//     (interface calls widen to every implementing type in the
//     program).
//
// Summaries then propagate bottom-up over the call graph's strongly
// connected components: a function may wait if it waits directly or
// any (non-concurrent) callee may; blocking reached through a
// Gate.Block edge is sanctioned and becomes a wait. Mutual recursion
// converges because an SCC's members share one combined summary.
//
// Test files and internal/simclock (the token protocol's own
// implementation, which manipulates its mutex across waits by design)
// are excluded from collection; intrinsic classification of simclock
// calls does not depend on walking its body.
package facts

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/callgraph"
)

// OpKind classifies one collected operation.
type OpKind int

// Operation kinds.
const (
	// OpAcquire is a mutex Lock/RLock. Held is the lock set before the
	// acquisition; Gated means it went through Gate.Block.
	OpAcquire OpKind = iota
	// OpRelease is an explicit (non-deferred) Unlock/RUnlock.
	OpRelease
	// OpWait advances the simulated clock: clock.Sleep, Gate.Wait,
	// <-clock.After, time.Sleep.
	OpWait
	// OpBlock parks the goroutine outside the clock: channel send/recv,
	// select without default, WaitGroup.Wait, network or subprocess
	// calls. Gated means it ran under Gate.Block/BlockIO and is
	// sanctioned (the run token was shed, so it counts as a wait).
	OpBlock
	// OpCall is a resolved call edge to an in-program function.
	OpCall
	// OpGateEnter and OpGateExit are raw Gate.Enter/Gate.Exit calls,
	// tracked for the pairing check.
	OpGateEnter
	OpGateExit
)

// Class identifies a mutex module-wide. Name is the canonical class
// ("core.Backend.swapMu", "core.Controller.evictSerial", a package
// variable "gpu.registryMu", or "core.machine" for a struct locking an
// embedded mutex); it is empty when the mutex cannot be attributed
// (a bare local or parameter), in which case Expr still renders the
// source expression for intra-function tracking and messages.
type Class struct {
	Name string
	Expr string
}

// Known reports whether the class resolved to a module-wide identity.
func (c Class) Known() bool { return c.Name != "" }

// key is the held-set tracking key: the module-wide name when known,
// otherwise the function-local expression.
func (c Class) key() string {
	if c.Name != "" {
		return c.Name
	}
	return "local:" + c.Expr
}

// String renders the class for diagnostics.
func (c Class) String() string {
	if c.Name == "" {
		return c.Expr
	}
	if c.Expr != "" && !strings.HasSuffix(c.Name, "."+c.Expr) {
		return c.Name + " (" + c.Expr + ")"
	}
	return c.Name
}

// HeldLock is one entry of the lock set at an operation, in
// acquisition order.
type HeldLock struct {
	Class Class
	Read  bool
	Gated bool
	Pos   token.Pos // acquisition site
}

// Op is one collected operation with its lock-state snapshot.
type Op struct {
	Kind  OpKind
	Pos   token.Pos
	Class Class // OpAcquire / OpRelease
	Read  bool  // OpAcquire / OpRelease: RLock/RUnlock
	Gated bool  // OpAcquire: via Gate.Block; OpBlock: sanctioned
	// Concurrent marks operations inside `go` / Gate.Go bodies: they
	// run on a spawned goroutine, so they do not contribute to the
	// enclosing function's summary (the caller does not wait on them).
	Concurrent bool
	// Deferred marks `defer g.Exit()` for the pairing check.
	Deferred bool
	Callee   string // OpCall: callgraph key
	Detail   string // OpWait / OpBlock: human label ("clock.Sleep", "channel send")
	Held     []HeldLock
}

// FuncFacts is the operation stream of one function body (function
// literals are walked inline into their enclosing declaration).
type FuncFacts struct {
	Key     string
	Display string
	Pkg     *lint.Package
	Pos     token.Pos
	Ops     []Op
}

// Facts is the program-wide result.
type Facts struct {
	fset *token.FileSet

	// Funcs lists every walked function in deterministic order
	// (package, then file, then declaration order).
	Funcs []*FuncFacts
	// Summaries maps function keys to their propagated summaries.
	Summaries map[string]*Summary
	// LockClasses maps annotated function keys to the class their
	// returned mutex belongs to (//swaplint:lockclass).
	LockClasses map[string]string
	// BlockAnnotations maps filename -> line -> true for well-formed
	// //swaplint:block reason=... directives.
	BlockAnnotations map[string]map[int]bool
	// MalformedBlockAnns lists //swaplint:block directives without a
	// reason, for blockcheck to report.
	MalformedBlockAnns []token.Pos
	// LockOrderDecls lists parsed //swaplint:lockorder declarations.
	LockOrderDecls []LockOrderDecl
}

// LockOrderDecl is one parsed //swaplint:lockorder A < B < C comment.
type LockOrderDecl struct {
	Pos     token.Pos
	File    string
	Classes []string // in declared before-to-after order
	Bad     bool     // malformed (fewer than two classes or no '<')
}

// Summary is a function's propagated interprocedural summary.
type Summary struct {
	// Wait is non-nil when calling the function may advance the
	// simulated clock (a sleep, a Gate.Wait, or sanctioned blocking
	// under Gate.Block), with one representative path.
	Wait *Trace
	// Block is non-nil when calling the function may block the
	// goroutine outside the gate token protocol.
	Block *Trace
	// Acquires maps lock-class names the function (transitively)
	// acquires to a representative acquisition path.
	Acquires map[string]*Acquire
}

// Acquire is one transitive acquisition with its path.
type Acquire struct {
	Trace Trace
	Read  bool
}

// Trace is a representative path to a terminal operation: the call
// steps from the summarized function down to it, then the terminal's
// label and position.
type Trace struct {
	Via    []Step
	Detail string
	Pos    token.Pos
}

// Step is one call hop of a trace.
type Step struct {
	Func string // display name of the callee
	Pos  token.Pos
}

// String renders "f → g → clock.Sleep".
func (t *Trace) String() string {
	var b strings.Builder
	for _, s := range t.Via {
		b.WriteString(s.Func)
		b.WriteString(" → ")
	}
	b.WriteString(t.Detail)
	return b.String()
}

// Prepend returns a copy of t with one leading call step, capping the
// retained chain so diagnostics stay readable.
func (t *Trace) Prepend(s Step) *Trace {
	const maxSteps = 8
	via := make([]Step, 0, len(t.Via)+1)
	via = append(via, s)
	via = append(via, t.Via...)
	if len(via) > maxSteps {
		via = via[:maxSteps]
	}
	return &Trace{Via: via, Detail: t.Detail, Pos: t.Pos}
}

// Of returns the program's facts, computed once per Program.
func Of(prog *lint.Program) *Facts {
	return prog.Cached("swaplint.facts", func() interface{} {
		return compute(prog)
	}).(*Facts)
}

// excludedPkg reports whether a package is skipped by collection.
func excludedPkg(path string) bool {
	return lint.PkgPathHasSuffix(path, "internal/simclock")
}

// compute walks every package and propagates summaries.
func compute(prog *lint.Program) *Facts {
	f := &Facts{
		fset:             prog.Fset,
		Summaries:        make(map[string]*Summary),
		LockClasses:      make(map[string]string),
		BlockAnnotations: make(map[string]map[int]bool),
	}
	f.collectDirectives(prog)

	res := callgraph.NewResolver(prog)
	for _, pkg := range prog.Packages {
		if pkg.Types == nil || pkg.Info == nil || excludedPkg(pkg.Types.Path()) {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(prog.Fset, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := callgraph.Key(obj)
				ff := &FuncFacts{
					Key:     key,
					Display: callgraph.DisplayName(key),
					Pkg:     pkg,
					Pos:     fd.Pos(),
				}
				w := &walker{
					facts: f, prog: prog, pkg: pkg, res: res, ff: ff,
					localClass: make(map[types.Object]Class),
				}
				w.walkBody(fd.Body, newHeldSet())
				f.Funcs = append(f.Funcs, ff)
			}
		}
	}
	f.propagate()
	return f
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// collectDirectives scans every file's comments for the facts-level
// directives: //swaplint:lockclass on function declarations,
// //swaplint:block suppressions, and //swaplint:lockorder
// declarations.
func (f *Facts) collectDirectives(prog *lint.Program) {
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "swaplint:lockclass") {
						continue
					}
					name := strings.TrimSpace(strings.TrimPrefix(text, "swaplint:lockclass"))
					if name == "" {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						f.LockClasses[callgraph.Key(obj)] = name
					}
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					switch {
					case strings.HasPrefix(text, "swaplint:block"):
						rest := strings.TrimPrefix(text, "swaplint:block")
						pos := prog.Fset.Position(c.Pos())
						if !strings.Contains(rest, "reason=") || len(strings.TrimSpace(strings.SplitAfter(rest, "reason=")[1])) == 0 {
							f.MalformedBlockAnns = append(f.MalformedBlockAnns, c.Pos())
							continue
						}
						m := f.BlockAnnotations[pos.Filename]
						if m == nil {
							m = make(map[int]bool)
							f.BlockAnnotations[pos.Filename] = m
						}
						m[pos.Line] = true
					case strings.HasPrefix(text, "swaplint:lockorder"):
						rest := strings.TrimSpace(strings.TrimPrefix(text, "swaplint:lockorder"))
						decl := LockOrderDecl{
							Pos:  c.Pos(),
							File: prog.Fset.Position(c.Pos()).Filename,
						}
						for _, part := range strings.Split(rest, "<") {
							if name := strings.TrimSpace(part); name != "" {
								decl.Classes = append(decl.Classes, name)
							}
						}
						if len(decl.Classes) < 2 {
							decl.Bad = true
						}
						f.LockOrderDecls = append(f.LockOrderDecls, decl)
					}
				}
			}
		}
	}
}

// BlockAnnotated reports whether a well-formed //swaplint:block
// directive covers the position (same line or the line above).
func (f *Facts) BlockAnnotated(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	m := f.BlockAnnotations[p.Filename]
	if m == nil {
		return false
	}
	return m[p.Line] || m[p.Line-1]
}
