// Package rec is facts testdata: summary propagation must converge on
// mutually recursive functions (one SCC sharing one summary).
package rec

func a(n int) {
	if n > 0 {
		b(n - 1)
	}
	ch := make(chan int)
	<-ch
}

func b(n int) {
	a(n)
}

// c is outside the SCC but reaches it.
func c() {
	b(3)
}

// pure never blocks.
func pure(n int) int {
	return n * 2
}
