// Package iface is facts testdata: calls through an interface must be
// widened to every concrete implementation (CHA), so a blocking
// implementation taints the interface call site.
package iface

type I interface{ M() }

type blocky struct{ ch chan int }

func (b blocky) M() { <-b.ch }

type calm struct{}

func (calm) M() {}

// use calls through the interface: conservatively may block.
func use(i I) {
	i.M()
}

// direct calls the non-blocking implementation only.
func direct(c calm) {
	c.M()
}
