package facts_test

import (
	"testing"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/facts"
	"swapservellm/internal/lint/linttest"
)

func load(t *testing.T, pkgs ...string) *facts.Facts {
	t.Helper()
	fset, loaded := linttest.Load(t, "testdata", pkgs...)
	return facts.Of(&lint.Program{Fset: fset, Packages: loaded})
}

// Mutual recursion forms one SCC: propagation must converge with both
// members carrying the blocking summary (and sharing it), and the
// summary must flow to callers outside the component.
func TestSCCConvergence(t *testing.T) {
	f := load(t, "example.com/rec")
	a := f.Summaries["example.com/rec.a"]
	b := f.Summaries["example.com/rec.b"]
	if a == nil || b == nil {
		t.Fatalf("missing summaries: a=%v b=%v", a, b)
	}
	if a.Block == nil {
		t.Errorf("a blocks directly; summary lost it")
	}
	if b.Block == nil {
		t.Errorf("b reaches a's block through the cycle; summary did not converge")
	}
	if a != b {
		t.Errorf("SCC members must share one summary: a=%p b=%p", a, b)
	}
	if c := f.Summaries["example.com/rec.c"]; c == nil || c.Block == nil {
		t.Errorf("c reaches the blocking SCC; summary = %+v", c)
	}
	if p := f.Summaries["example.com/rec.pure"]; p != nil && (p.Block != nil || p.Wait != nil) {
		t.Errorf("pure must not block or wait: %+v", p)
	}
}

// A call through an interface must be widened to every implementation:
// one blocking implementation taints the interface call, while a
// direct call to the calm implementation stays clean.
func TestInterfaceWidening(t *testing.T) {
	f := load(t, "example.com/iface")
	if m := f.Summaries["(example.com/iface.blocky).M"]; m == nil || m.Block == nil {
		t.Fatalf("blocky.M blocks; summary = %+v", m)
	}
	use := f.Summaries["example.com/iface.use"]
	if use == nil || use.Block == nil {
		t.Errorf("use calls through the interface and must inherit blocky.M's block; summary = %+v", use)
	}
	direct := f.Summaries["example.com/iface.direct"]
	if direct != nil && direct.Block != nil {
		t.Errorf("direct calls only the calm implementation: %+v", direct)
	}
}
