package facts

import (
	"go/ast"
	"go/token"
	"go/types"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/callgraph"
)

// heldSet tracks the locks held at the current point of the walk, in
// acquisition order.
type heldSet struct {
	locks []HeldLock
}

func newHeldSet() *heldSet { return &heldSet{} }

func (h *heldSet) copyHeld() *heldSet {
	cp := make([]HeldLock, len(h.locks))
	copy(cp, h.locks)
	return &heldSet{locks: cp}
}

func (h *heldSet) snapshot() []HeldLock {
	if len(h.locks) == 0 {
		return nil
	}
	cp := make([]HeldLock, len(h.locks))
	copy(cp, h.locks)
	return cp
}

func (h *heldSet) acquire(l HeldLock) { h.locks = append(h.locks, l) }

// release removes the most recent matching acquisition.
func (h *heldSet) release(c Class) {
	key := c.key()
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.locks[i].Class.key() == key {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

// walker collects one function's operation stream. The gated flag is
// set while walking the body of a closure passed to Gate.Block (its
// blocking is sanctioned); the concurrent flag while walking bodies
// spawned on their own goroutine (`go` statements, Gate.Go).
type walker struct {
	facts *Facts
	prog  *lint.Program
	pkg   *lint.Package
	res   *callgraph.Resolver
	ff    *FuncFacts

	gated      bool
	concurrent bool

	// localClass remembers lock classes flowing through local
	// variables: `lock := ct.evictLock(id)` with an annotated helper,
	// or `mu := &s.mu` aliases.
	localClass map[types.Object]Class
}

func (w *walker) info() *types.Info { return w.pkg.Info }

func (w *walker) emit(op Op) {
	op.Concurrent = op.Concurrent || w.concurrent
	w.ff.Ops = append(w.ff.Ops, op)
}

// walkBody processes a statement list against held.
func (w *walker) walkBody(body *ast.BlockStmt, held *heldSet) {
	if body == nil {
		return
	}
	for _, stmt := range body.List {
		w.walkStmt(stmt, held)
	}
}

// walkStmt mirrors lockcheck's discipline: statements at one nesting
// level update held in source order; conditionally-executed blocks are
// walked against a copy so their acquisitions do not leak out.
func (w *walker) walkStmt(stmt ast.Stmt, held *heldSet) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			w.walkExpr(lhs, held)
		}
		w.trackLocalClass(s, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan, held)
		w.walkExpr(s.Value, held)
		w.emit(Op{Kind: OpBlock, Pos: s.Arrow, Detail: "channel send", Gated: w.gated, Held: held.snapshot()})
	case *ast.IncDecStmt:
		w.walkExpr(s.X, held)
	case *ast.GoStmt:
		w.walkConcurrentCall(s.Call, held)
	case *ast.DeferStmt:
		w.walkDefer(s, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkExpr(s.Cond, held)
		w.walkBody(s.Body, held.copyHeld())
		if s.Else != nil {
			w.walkStmt(s.Else, held.copyHeld())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, held)
		}
		body := held.copyHeld()
		w.walkBody(s.Body, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.walkExpr(s.X, held)
		if t := w.typeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.emit(Op{Kind: OpBlock, Pos: s.For, Detail: "range over channel", Gated: w.gated, Held: held.snapshot()})
			}
		}
		w.walkBody(s.Body, held.copyHeld())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := held.copyHeld()
				for _, e := range cc.List {
					w.walkExpr(e, branch)
				}
				for _, st := range cc.Body {
					w.walkStmt(st, branch)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmt(s.Assign, held)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := held.copyHeld()
				for _, st := range cc.Body {
					w.walkStmt(st, branch)
				}
			}
		}
	case *ast.SelectStmt:
		w.walkSelect(s, held)
	case *ast.BlockStmt:
		w.walkBody(s, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// walkSelect classifies the select itself (a clock wait when a case
// receives from Clock.After/time.After, non-blocking with a default,
// otherwise a raw block) and walks the clause bodies. The comm
// operations themselves are covered by the select-level op and not
// emitted individually.
func (w *walker) walkSelect(s *ast.SelectStmt, held *heldSet) {
	hasDefault := false
	waitsOnClock := false
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if recv := commRecv(cc.Comm); recv != nil {
			if call, ok := recv.X.(*ast.CallExpr); ok && w.isClockAfter(call) {
				waitsOnClock = true
			}
		}
	}
	switch {
	case waitsOnClock:
		w.emit(Op{Kind: OpWait, Pos: s.Select, Detail: "select on clock.After", Held: held.snapshot()})
	case !hasDefault:
		w.emit(Op{Kind: OpBlock, Pos: s.Select, Detail: "select", Gated: w.gated, Held: held.snapshot()})
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		branch := held.copyHeld()
		// Walk nested calls inside the comm expression (e.g. the After
		// argument) without re-emitting the channel operation.
		if cc.Comm != nil {
			if recv := commRecv(cc.Comm); recv != nil {
				if call, ok := recv.X.(*ast.CallExpr); ok {
					for _, arg := range call.Args {
						w.walkExpr(arg, branch)
					}
				}
			}
		}
		for _, st := range cc.Body {
			w.walkStmt(st, branch)
		}
	}
}

// commRecv extracts the `<-ch` expression of a select comm statement.
func commRecv(comm ast.Stmt) *ast.UnaryExpr {
	var expr ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		expr = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			expr = c.Rhs[0]
		}
	}
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}

// walkDefer records deferred gate exits and treats other deferred
// calls as running with the lock state at the defer statement — an
// approximation that keeps unlock pairing out of scope (lockcheck owns
// pairing; held locks simply persist past deferred unlocks here, which
// is the sound direction for wait/block evidence).
func (w *walker) walkDefer(s *ast.DeferStmt, held *heldSet) {
	if fn := w.calleeOf(s.Call); fn != nil {
		if isGateMethod(fn, "Exit") {
			w.emit(Op{Kind: OpGateExit, Pos: s.Call.Pos(), Deferred: true})
			return
		}
		if kind, read, ok := mutexOpOf(fn); ok && (kind == "Unlock") {
			_ = read
			// Deferred unlock: held persists until return; nothing to emit.
			return
		}
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.walkBody(lit.Body, held.copyHeld())
		return
	}
	w.walkCallExpr(s.Call, held)
}

// walkConcurrentCall handles `go f(args)`: arguments are evaluated on
// the current goroutine, the call body runs with an empty lock set and
// does not contribute to the caller's summary.
func (w *walker) walkConcurrentCall(call *ast.CallExpr, held *heldSet) {
	for _, arg := range call.Args {
		w.walkExpr(arg, held)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		prevConc := w.concurrent
		w.concurrent = true
		w.walkBody(lit.Body, newHeldSet())
		w.concurrent = prevConc
		return
	}
	w.walkExpr(call.Fun, held)
	for _, key := range w.resolveCallees(call) {
		w.emit(Op{Kind: OpCall, Pos: call.Pos(), Callee: key, Concurrent: true})
	}
}

// walkExpr scans an expression for operations. Calls and function
// literals are handled structurally; everything else recurses.
func (w *walker) walkExpr(expr ast.Expr, held *heldSet) {
	switch e := expr.(type) {
	case nil:
		return
	case *ast.CallExpr:
		w.walkCallExpr(e, held)
	case *ast.FuncLit:
		// A literal not consumed by a recognized construct: assume it
		// may run synchronously wherever it flows, against a copy of the
		// current lock state.
		w.walkBody(e.Body, held.copyHeld())
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if call, ok := e.X.(*ast.CallExpr); ok && w.isClockAfter(call) {
				w.emit(Op{Kind: OpWait, Pos: e.OpPos, Detail: "<-clock.After", Held: held.snapshot()})
				for _, arg := range call.Args {
					w.walkExpr(arg, held)
				}
				return
			}
			w.emit(Op{Kind: OpBlock, Pos: e.OpPos, Detail: "channel receive", Gated: w.gated, Held: held.snapshot()})
		}
		w.walkExpr(e.X, held)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, held)
		w.walkExpr(e.Y, held)
	case *ast.ParenExpr:
		w.walkExpr(e.X, held)
	case *ast.StarExpr:
		w.walkExpr(e.X, held)
	case *ast.SelectorExpr:
		w.walkExpr(e.X, held)
	case *ast.IndexExpr:
		w.walkExpr(e.X, held)
		w.walkExpr(e.Index, held)
	case *ast.SliceExpr:
		w.walkExpr(e.X, held)
		w.walkExpr(e.Low, held)
		w.walkExpr(e.High, held)
		w.walkExpr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, held)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value, held)
	}
}

// walkCallExpr classifies one call: mutex operation, gate-protocol
// call, intrinsic wait/block, or resolved call edge.
func (w *walker) walkCallExpr(call *ast.CallExpr, held *heldSet) {
	fn := w.calleeOf(call)
	if fn == nil {
		// Builtins, conversions, calls through function values: walk
		// operands; an unresolved call contributes nothing (optimistic).
		w.walkExpr(call.Fun, held)
		for _, arg := range call.Args {
			w.walkExpr(arg, held)
		}
		return
	}

	// Mutex Lock/RLock/Unlock/RUnlock.
	if kind, read, ok := mutexOpOf(fn); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			w.walkExpr(sel.X, held)
			class := w.classOf(sel.X)
			switch kind {
			case "Lock":
				w.emit(Op{Kind: OpAcquire, Pos: call.Pos(), Class: class, Read: read, Gated: w.gated, Held: held.snapshot()})
				held.acquire(HeldLock{Class: class, Read: read, Gated: w.gated, Pos: call.Pos()})
			case "Unlock":
				w.emit(Op{Kind: OpRelease, Pos: call.Pos(), Class: class, Read: read})
				held.release(class)
			}
		}
		return
	}

	// Gate protocol calls.
	if recvNamed(fn, "internal/simclock", "Gate") {
		w.walkGateCall(call, fn, held)
		return
	}

	// Clock waits and external blocking intrinsics.
	if detail, kind, ok := intrinsicOf(fn); ok {
		for _, arg := range call.Args {
			w.walkExpr(arg, held)
		}
		w.walkExpr(call.Fun, held)
		op := Op{Pos: call.Pos(), Detail: detail, Held: held.snapshot()}
		if kind == OpBlock {
			op.Kind = OpBlock
			op.Gated = w.gated
		} else {
			op.Kind = OpWait
		}
		w.emit(op)
		return
	}

	// Ordinary call: walk operands, then record resolved edges.
	w.walkExpr(call.Fun, held)
	for _, arg := range call.Args {
		w.walkExpr(arg, held)
	}
	for _, key := range w.resolveCallees(call) {
		w.emit(Op{Kind: OpCall, Pos: call.Pos(), Callee: key, Gated: w.gated, Held: held.snapshot()})
	}
}

// walkGateCall handles the simclock.Gate protocol methods.
func (w *walker) walkGateCall(call *ast.CallExpr, fn *types.Func, held *heldSet) {
	// The receiver may itself be a call (simclock.GateFor(clock)); scan
	// it for nested operations.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X, held)
	}
	switch fn.Name() {
	case "Enter":
		w.emit(Op{Kind: OpGateEnter, Pos: call.Pos()})
	case "Exit":
		w.emit(Op{Kind: OpGateExit, Pos: call.Pos()})
	case "Wait":
		for _, arg := range call.Args {
			w.walkExpr(arg, held)
		}
		w.emit(Op{Kind: OpWait, Pos: call.Pos(), Detail: "Gate.Wait", Held: held.snapshot()})
	case "Run":
		if len(call.Args) == 1 {
			w.walkGateArg(call.Args[0], held, false)
		}
	case "Go":
		if len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.FuncLit); ok {
				prevConc := w.concurrent
				w.concurrent = true
				w.walkBody(lit.Body, newHeldSet())
				w.concurrent = prevConc
			} else if key, ok := w.funcValueKey(call.Args[0]); ok {
				w.emit(Op{Kind: OpCall, Pos: call.Pos(), Callee: key, Concurrent: true})
			}
		}
	case "Block", "BlockIO":
		if len(call.Args) == 1 {
			w.walkBlockArg(call.Args[0], held, fn.Name())
		}
	}
}

// walkGateArg walks a Gate.Run argument: literals inline, named
// functions as ordinary edges.
func (w *walker) walkGateArg(arg ast.Expr, held *heldSet, gated bool) {
	if lit, ok := arg.(*ast.FuncLit); ok {
		prev := w.gated
		w.gated = w.gated || gated
		w.walkBody(lit.Body, held.copyHeld())
		w.gated = prev
		return
	}
	if key, ok := w.funcValueKey(arg); ok {
		w.emit(Op{Kind: OpCall, Pos: arg.Pos(), Callee: key, Gated: gated || w.gated, Held: held.snapshot()})
		return
	}
	w.walkExpr(arg, held)
}

// walkBlockArg handles Gate.Block / Gate.BlockIO arguments, the heart
// of the gate discipline:
//
//   - gate.Block(mu.Lock) is a gated acquisition that persists after
//     the call (the canonical "acquire a contended mutex while shedding
//     the run token" idiom);
//   - gate.Block(wg.Wait) and friends are sanctioned blocks (waits);
//   - gate.Block(func() { ... }) walks the closure inline with the
//     SAME lock state (its acquisitions persist) under the gated flag.
func (w *walker) walkBlockArg(arg ast.Expr, held *heldSet, method string) {
	if lit, ok := arg.(*ast.FuncLit); ok {
		prev := w.gated
		w.gated = true
		w.walkBody(lit.Body, held)
		w.gated = prev
		return
	}
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if mv := w.methodValueOf(sel); mv != nil {
			if kind, read, ok := mutexOpOf(mv); ok {
				w.walkExpr(sel.X, held)
				class := w.classOf(sel.X)
				switch kind {
				case "Lock":
					w.emit(Op{Kind: OpAcquire, Pos: arg.Pos(), Class: class, Read: read, Gated: true, Held: held.snapshot()})
					held.acquire(HeldLock{Class: class, Read: read, Gated: true, Pos: arg.Pos()})
				case "Unlock":
					w.emit(Op{Kind: OpRelease, Pos: arg.Pos(), Class: class, Read: read})
					held.release(class)
				}
				return
			}
			if detail, _, ok := intrinsicOf(mv); ok {
				w.walkExpr(sel.X, held)
				w.emit(Op{Kind: OpBlock, Pos: arg.Pos(), Detail: "gate." + method + "(" + detail + ")", Gated: true, Held: held.snapshot()})
				return
			}
			w.walkExpr(sel.X, held)
			w.emit(Op{Kind: OpCall, Pos: arg.Pos(), Callee: callgraph.Key(mv), Gated: true, Held: held.snapshot()})
			return
		}
	}
	if key, ok := w.funcValueKey(arg); ok {
		w.emit(Op{Kind: OpCall, Pos: arg.Pos(), Callee: key, Gated: true, Held: held.snapshot()})
		return
	}
	// Unknown function value: the construct itself declares sanctioned
	// blocking; record it so summaries see a wait.
	w.walkExpr(arg, held)
	w.emit(Op{Kind: OpBlock, Pos: arg.Pos(), Detail: "gate." + method, Gated: true, Held: held.snapshot()})
}

// trackLocalClass records lock classes flowing into local variables:
// annotated helper calls (`lock := ct.evictLock(id)` where evictLock
// carries //swaplint:lockclass) and direct aliases (`mu := &s.mu`).
func (w *walker) trackLocalClass(s *ast.AssignStmt, held *heldSet) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.info().Defs[id]
		if obj == nil {
			obj = w.info().Uses[id]
		}
		if obj == nil {
			continue
		}
		var class Class
		switch rhs := s.Rhs[i].(type) {
		case *ast.CallExpr:
			if fn := w.calleeOf(rhs); fn != nil {
				if name, ok := w.facts.LockClasses[callgraph.Key(fn)]; ok {
					class = Class{Name: name, Expr: id.Name}
				}
			}
		case *ast.UnaryExpr:
			if rhs.Op == token.AND {
				class = w.classOf(rhs.X)
				class.Expr = id.Name
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			class = w.classOf(s.Rhs[i])
			class.Expr = id.Name
		}
		if class.Name != "" {
			w.localClass[obj] = class
		}
	}
}
