package facts

import (
	"sort"

	"swapservellm/internal/lint/callgraph"
)

// Graph builds the program call graph from the collected operation
// streams (memoization lives in compute; analyzers that want the raw
// graph can rebuild it cheaply from Funcs).
func (f *Facts) Graph() *callgraph.Graph {
	g := callgraph.NewGraph()
	for _, ff := range f.Funcs {
		g.AddNode(ff.Key)
		for _, op := range ff.Ops {
			if op.Kind == OpCall {
				g.AddEdge(ff.Key, callgraph.Edge{To: op.Callee, Concurrent: op.Concurrent, Gated: op.Gated})
			}
		}
	}
	return g
}

// propagate computes Summaries bottom-up over the call graph's
// strongly connected components. Components arrive callee-first, so a
// summary consults only already-final callee summaries (or members of
// its own component, which share the combined summary — that sharing
// is what makes mutual recursion converge in one pass).
func (f *Facts) propagate() {
	byKey := make(map[string]*FuncFacts, len(f.Funcs))
	for _, ff := range f.Funcs {
		if _, ok := byKey[ff.Key]; !ok {
			byKey[ff.Key] = ff
		}
	}
	g := f.Graph()
	for _, comp := range g.SCCs() {
		inComp := make(map[string]bool, len(comp))
		for _, k := range comp {
			inComp[k] = true
		}
		sorted := make([]string, len(comp))
		copy(sorted, comp)
		sort.Strings(sorted)

		sum := &Summary{Acquires: make(map[string]*Acquire)}
		for _, key := range sorted {
			ff := byKey[key]
			if ff == nil {
				continue
			}
			for i := range ff.Ops {
				op := &ff.Ops[i]
				if op.Concurrent {
					continue
				}
				switch op.Kind {
				case OpWait:
					if sum.Wait == nil {
						sum.Wait = &Trace{Detail: op.Detail, Pos: op.Pos}
					}
				case OpBlock:
					if op.Gated {
						if sum.Wait == nil {
							sum.Wait = &Trace{Detail: op.Detail, Pos: op.Pos}
						}
					} else if sum.Block == nil && !f.BlockAnnotated(f.fset, op.Pos) {
						// //swaplint:block-annotated sites are sanctioned
						// and do not cascade a Block summary to callers.
						sum.Block = &Trace{Detail: op.Detail, Pos: op.Pos}
					}
				case OpAcquire:
					if op.Class.Known() {
						if _, ok := sum.Acquires[op.Class.Name]; !ok {
							sum.Acquires[op.Class.Name] = &Acquire{
								Trace: Trace{Detail: "acquire " + op.Class.Name, Pos: op.Pos},
								Read:  op.Read,
							}
						}
					}
				case OpCall:
					if inComp[op.Callee] {
						continue // shares this summary
					}
					callee := f.Summaries[op.Callee]
					if callee == nil {
						continue // external or unresolved: optimistic
					}
					step := Step{Func: callgraph.DisplayName(op.Callee), Pos: op.Pos}
					if callee.Wait != nil && sum.Wait == nil {
						sum.Wait = callee.Wait.Prepend(step)
					}
					if callee.Block != nil {
						if op.Gated {
							// Blocking reached through Gate.Block is
							// sanctioned: the run token is shed, so the
							// callee's stall becomes a clock wait.
							if sum.Wait == nil {
								sum.Wait = callee.Block.Prepend(step)
							}
						} else if sum.Block == nil {
							sum.Block = callee.Block.Prepend(step)
						}
					}
					for _, name := range sortedAcquireNames(callee.Acquires) {
						if _, ok := sum.Acquires[name]; !ok {
							acq := callee.Acquires[name]
							sum.Acquires[name] = &Acquire{
								Trace: *acq.Trace.Prepend(step),
								Read:  acq.Read,
							}
						}
					}
				}
			}
		}
		for _, key := range comp {
			f.Summaries[key] = sum
		}
	}
}

// sortedAcquireNames returns the map's keys in sorted order for
// deterministic trace selection.
func sortedAcquireNames(m map[string]*Acquire) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
