package gatecheck_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/blockcheck"
	"swapservellm/internal/lint/gatecheck"
	"swapservellm/internal/lint/lockorder"
)

// moduleRoot locates the repository root relative to this source file.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
}

func runAnalyzers(t *testing.T, dir string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	fset, pkgs, err := lint.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return lint.NewRunner(analyzers...).Run(fset, pkgs)
}

// The tree must stay clean under the interprocedural analyzers: every
// wait-across-hold is gated, nothing blocks ungated inside a critical
// section, and the observed lock order matches the declaration.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	requireGo(t)
	diags := runAnalyzers(t, moduleRoot(t), gatecheck.New(), blockcheck.New(), lockorder.New())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// Deleting one gate.Block in internal/core must make gatecheck fail
// with a diagnostic naming the mutex and the wait path — the mutation
// check that proves the analyzer guards the invariant rather than
// vacuously passing.
func TestMutationDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and loads the whole module")
	}
	requireGo(t)
	root := moduleRoot(t)
	tmp := t.TempDir()
	copyModule(t, root, tmp)

	sched := filepath.Join(tmp, "internal", "core", "scheduler.go")
	src, err := os.ReadFile(sched)
	if err != nil {
		t.Fatal(err)
	}
	const gated = "simclock.GateFor(s.clock).Block(b.swapMu.Lock)"
	if !strings.Contains(string(src), gated) {
		t.Fatalf("scheduler.go no longer contains %q; update the mutation", gated)
	}
	mutated := strings.Replace(string(src), gated, "b.swapMu.Lock()", 1)
	if err := os.WriteFile(sched, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runAnalyzers(t, tmp, gatecheck.New())
	var hit bool
	for _, d := range diags {
		if d.Analyzer != "gatecheck" {
			continue
		}
		if strings.Contains(d.Message, "core.Backend.swapMu") &&
			strings.Contains(d.Message, "can be held across a simulated-clock wait") &&
			strings.Contains(d.Message, "→") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("gatecheck did not flag the ungated swapMu acquisition; diagnostics: %v", diags)
	}
}

// copyModule mirrors the module source tree (skipping .git and
// testdata fixtures, which carry deliberate violations).
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (name == ".git" || name == "testdata" || name == ".github") {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
}
