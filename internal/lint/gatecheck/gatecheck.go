// Package gatecheck enforces the virtual-time gate discipline
// interprocedurally: any mutex that can be held while the simulated
// clock advances — a clock.Sleep, Gate.Wait, <-clock.After, or
// sanctioned Gate.Block blocking reached on any call path — must be
// acquired through simclock.Gate.Block at EVERY acquisition site
// module-wide, so goroutines contending on it shed their run token and
// quiescence detection cannot stall. One ungated acquisition is enough
// to deadlock the advancer: the waiter parks invisibly while holding
// its token.
//
// The check is class-level: the facts package attributes each mutex to
// a module-wide lock class (owning type + field); if wait-across-hold
// evidence exists anywhere for a class, every ungated acquisition of
// that class is reported, with a representative wait path naming the
// call chain down to the sleep.
//
// gatecheck also verifies Gate.Enter/Gate.Exit pairing within each
// function: an Enter must be followed by an Exit (or a deferred Exit)
// in the same body.
package gatecheck

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/callgraph"
	"swapservellm/internal/lint/facts"
)

// New returns the gatecheck analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "gatecheck",
		Doc:  "mutexes held across simulated-clock waits must be acquired via simclock.Gate.Block at every site; Gate.Enter/Exit must pair",
		Run:  run,
	}
}

// waitEvidence is one representative "class held across a wait" path.
type waitEvidence struct {
	path string         // "(*Scheduler).EnsureRunning → clock.Sleep"
	pos  token.Position // position of the terminal wait
}

// acqSite is one acquisition of a known class.
type acqSite struct {
	class string
	pos   token.Pos
	gated bool
	pkg   *types.Package
	expr  string
}

type global struct {
	evidence map[string]*waitEvidence
	acquires []acqSite
}

func analyze(prog *lint.Program) *global {
	return prog.Cached("gatecheck.global", func() interface{} {
		f := facts.Of(prog)
		g := &global{evidence: make(map[string]*waitEvidence)}
		record := func(held []facts.HeldLock, path string, pos token.Pos) {
			for _, h := range held {
				if !h.Class.Known() {
					continue
				}
				if _, ok := g.evidence[h.Class.Name]; !ok {
					g.evidence[h.Class.Name] = &waitEvidence{path: path, pos: prog.Fset.Position(pos)}
				}
			}
		}
		for _, ff := range f.Funcs {
			for i := range ff.Ops {
				op := &ff.Ops[i]
				switch op.Kind {
				case facts.OpAcquire:
					if op.Class.Known() {
						g.acquires = append(g.acquires, acqSite{
							class: op.Class.Name, pos: op.Pos, gated: op.Gated,
							pkg: ff.Pkg.Types, expr: op.Class.Expr,
						})
					}
				case facts.OpWait:
					record(op.Held, ff.Display+" → "+op.Detail, op.Pos)
				case facts.OpBlock:
					if op.Gated {
						record(op.Held, ff.Display+" → "+op.Detail, op.Pos)
					}
				case facts.OpCall:
					sum := f.Summaries[op.Callee]
					if sum == nil {
						continue
					}
					step := facts.Step{Func: callgraph.DisplayName(op.Callee), Pos: op.Pos}
					if sum.Wait != nil {
						t := sum.Wait.Prepend(step)
						record(op.Held, ff.Display+" → "+t.String(), t.Pos)
					} else if op.Gated && sum.Block != nil {
						t := sum.Block.Prepend(step)
						record(op.Held, ff.Display+" → "+t.String(), t.Pos)
					}
				}
			}
		}
		return g
	}).(*global)
}

func run(pass *lint.Pass) error {
	g := analyze(pass.Program)
	for _, a := range g.acquires {
		if a.pkg != pass.Pkg || a.gated {
			continue
		}
		ev := g.evidence[a.class]
		if ev == nil {
			continue
		}
		expr := a.expr
		if expr == "" {
			expr = a.class
		}
		pass.Reportf(a.pos, "mutex %s can be held across a simulated-clock wait (%s at %s) but is acquired here without gate.Block; use simclock.GateFor(clock).Block(%s.Lock) so waiters shed their run token",
			a.class, ev.path, shortPos(ev.pos), expr)
	}
	checkPairing(pass)
	return nil
}

// checkPairing verifies Gate.Enter/Exit pairing per function body in
// this package: every Enter needs a later explicit Exit or a deferred
// Exit recorded anywhere in the body.
func checkPairing(pass *lint.Pass) {
	f := facts.Of(pass.Program)
	for _, ff := range f.Funcs {
		if ff.Pkg.Types != pass.Pkg {
			continue
		}
		var enters []token.Pos
		var exits []token.Pos
		deferredExits := 0
		for _, op := range ff.Ops {
			switch op.Kind {
			case facts.OpGateEnter:
				enters = append(enters, op.Pos)
			case facts.OpGateExit:
				if op.Deferred {
					deferredExits++
				} else {
					exits = append(exits, op.Pos)
				}
			}
		}
		if len(enters) == 0 {
			continue
		}
		sort.Slice(exits, func(i, j int) bool { return exits[i] < exits[j] })
		used := make([]bool, len(exits))
		for _, enter := range enters {
			matched := false
			for i, exit := range exits {
				if !used[i] && exit > enter {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched && deferredExits > 0 {
				deferredExits--
				matched = true
			}
			if !matched {
				pass.Reportf(enter, "Gate.Enter without a matching Gate.Exit in %s; defer g.Exit() immediately after Enter so the gate's goroutine accounting balances on all paths", ff.Display)
			}
		}
	}
}

func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
