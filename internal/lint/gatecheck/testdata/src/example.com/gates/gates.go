// Package gates is gatecheck testdata: any mutex that can be held
// across a simulated-clock wait must be acquired through
// simclock.Gate.Block at every site module-wide, and Gate.Enter must
// pair with Gate.Exit.
package gates

import (
	"sync"
	"time"

	"swapservellm/internal/simclock"
)

type backend struct {
	swapMu sync.Mutex
	clock  simclock.Clock
}

// runGated holds swapMu across a simulated sleep the sanctioned way:
// the acquisition goes through the gate, so contending goroutines shed
// their run token.
func (b *backend) runGated() {
	simclock.GateFor(b.clock).Block(b.swapMu.Lock)
	defer b.swapMu.Unlock()
	b.clock.Sleep(time.Millisecond)
}

// The pre-refactor regression pattern: the same class acquired with a
// plain Lock and held across the sleep. One ungated site is enough to
// park a waiter without shedding its token and stall the advancer.
func (b *backend) runUngated() {
	b.swapMu.Lock() // want `mutex gates\.backend\.swapMu can be held across a simulated-clock wait .*clock\.Sleep.* but is acquired here without gate\.Block`
	defer b.swapMu.Unlock()
	b.clock.Sleep(time.Millisecond)
}

type poller struct {
	mu    sync.Mutex
	clock simclock.Clock
}

// pause sleeps; its summary carries the wait.
func (p *poller) pause() {
	p.clock.Sleep(time.Millisecond)
}

// tick never sleeps directly — the wait is reached through pause's
// summary, so the ungated acquisition is still reported, with the call
// path in the message.
func (p *poller) tick() {
	p.mu.Lock() // want `mutex gates\.poller\.mu can be held across a simulated-clock wait \(.*pause.*clock\.Sleep.*\) but is acquired here without gate\.Block`
	defer p.mu.Unlock()
	p.pause()
}

type looper struct {
	mu    sync.Mutex
	clock simclock.Clock
	stop  chan struct{}
}

// loopGated establishes Gate.Wait evidence for looper.mu (gated here).
func (l *looper) loopGated() {
	gate := simclock.GateFor(l.clock)
	gate.Block(l.mu.Lock)
	defer l.mu.Unlock()
	gate.Wait(time.Millisecond, l.stop)
}

// The check is class-level: this body never waits, but the class has
// wait evidence elsewhere, so the plain Lock is still a hazard — the
// holder in loopGated may be asleep on the clock while this waiter
// parks with its token.
func (l *looper) loopUngated() {
	l.mu.Lock() // want `mutex gates\.looper\.mu can be held across a simulated-clock wait`
	defer l.mu.Unlock()
}

// A class with no wait evidence anywhere needs no gating.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// --- Enter/Exit pairing ---

func (l *looper) enterBalanced() {
	g := simclock.GateFor(l.clock)
	g.Enter()
	defer g.Exit()
}

func (l *looper) enterExplicit() {
	g := simclock.GateFor(l.clock)
	g.Enter()
	g.Exit()
}

func (l *looper) enterLeaky() {
	g := simclock.GateFor(l.clock)
	g.Enter() // want `Gate\.Enter without a matching Gate\.Exit`
}

// Cross-function registration is legitimate when documented.
func (l *looper) enterHandoff() {
	g := simclock.GateFor(l.clock)
	//swaplint:ignore gatecheck the paired Exit runs in the done callback
	g.Enter()
}
