package gatecheck

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestGatecheck(t *testing.T) {
	linttest.Run(t, "testdata", New(), "example.com/gates")
}
