// Package locks is lockcheck testdata: the *Locked convention,
// double-lock detection, and Lock/Unlock pairing.
package locks

import (
	"sync"

	"swapservellm/internal/simclock"
)

type dealer struct {
	mu    sync.Mutex
	count int
}

// --- convention: *Locked callees need the mutex held ---

func (d *dealer) bumpLocked() {
	d.count++
}

func (d *dealer) Bump() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bumpLocked()
}

func (d *dealer) BumpForgot() {
	d.bumpLocked() // want `call to d.bumpLocked without holding d's mutex`
}

// A *Locked method may call sibling *Locked methods freely.
func (d *dealer) doubleLocked() {
	d.bumpLocked()
}

// After unlocking, the convention is violated again.
func (d *dealer) BumpAfterUnlock() {
	d.mu.Lock()
	d.bumpLocked()
	d.mu.Unlock()
	d.bumpLocked() // want `call to d.bumpLocked without holding d's mutex`
}

// Lock state does not leak out of a conditional block.
func (d *dealer) CondLock(b bool) {
	if b {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.bumpLocked()
	}
	d.bumpLocked() // want `call to d.bumpLocked without holding d's mutex`
}

// Goroutines never inherit the caller's lock state.
func (d *dealer) SpawnWhileHeld() {
	d.mu.Lock()
	defer d.mu.Unlock()
	go d.bumpLocked() // want `call to d.bumpLocked without holding d's mutex`
	go func() {
		d.bumpLocked() // want `call to d.bumpLocked without holding d's mutex`
	}()
}

// Calling a Locked method on a DIFFERENT receiver is not covered by the
// seeded state of this *Locked method.
func (d *dealer) crossLocked(other *dealer) {
	other.bumpLocked() // want `call to other.bumpLocked without holding other's mutex`
}

// Package-level Locked helpers only need some lock in scope.
var tableMu sync.Mutex

func rebalanceLocked() {}

func Rebalance() {
	tableMu.Lock()
	defer tableMu.Unlock()
	rebalanceLocked()
}

func RebalanceForgot() {
	rebalanceLocked() // want `call to rebalanceLocked without any mutex held`
}

// --- double lock ---

func (d *dealer) Incr() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.count++
}

func (d *dealer) DeadIncr() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Incr() // want `Incr acquires d.mu which is already held here: guaranteed deadlock`
}

// Same method on a different receiver is fine.
func (d *dealer) IncrOther(other *dealer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	other.Incr()
}

func globalIncr() {
	tableMu.Lock()
	defer tableMu.Unlock()
}

func DeadGlobal() {
	tableMu.Lock()
	defer tableMu.Unlock()
	globalIncr() // want `globalIncr acquires tableMu which is already held here: guaranteed deadlock`
}

// --- pairing ---

func (d *dealer) LeakyLock() {
	d.mu.Lock() // want `d.mu.Lock\(\) has no matching defer d.mu.Unlock\(\) or later Unlock\(\) in this function`
	d.count++
}

func (d *dealer) ExplicitUnlock() {
	d.mu.Lock()
	d.count++
	d.mu.Unlock()
}

func (d *dealer) DeferredInClosure() {
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
	}()
	d.count++
}

type shared struct {
	mu sync.RWMutex
	v  int
}

// RLock must pair with RUnlock specifically.
func (s *shared) ReadMismatch() int {
	s.mu.RLock() // want `s.mu.RLock\(\) has no matching defer s.mu.RUnlock\(\) or later RUnlock\(\) in this function`
	defer s.mu.Unlock()
	return s.v
}

func (s *shared) ReadOK() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v
}

// --- escape hatch ---

func (d *dealer) handoff() {
	//swaplint:ignore lockcheck ownership transfers to the receiver goroutine
	d.mu.Lock()
}

// --- closures invoked synchronously in the same function ---

// A Lock inside a closure that is assigned and invoked in the same
// function pairs with the enclosing function's deferred Unlock — no
// leak (this was a recorded false positive).
func (d *dealer) LockViaClosure() {
	lock := func() { d.mu.Lock() }
	lock()
	defer d.mu.Unlock()
	d.count++
}

// An unlock inside such a closure still pairs the enclosing Lock.
func (d *dealer) UnlockViaClosure() {
	d.mu.Lock()
	defer func() { d.mu.Unlock() }()
	d.count++
}

// --- gate-mediated acquisition ---

type gated struct {
	mu    sync.Mutex
	clock simclock.Clock
	n     int
}

func (g *gated) bumpLocked() { g.n++ }

// gate.Block(mu.Lock) is an acquisition: the *Locked convention and
// the pairing rule both see it.
func (g *gated) Bump() {
	simclock.GateFor(g.clock).Block(g.mu.Lock)
	defer g.mu.Unlock()
	g.bumpLocked()
}

// ... including when it leaks.
func (g *gated) Leaky() {
	simclock.GateFor(g.clock).Block(g.mu.Lock) // want `g.mu.Lock\(\) has no matching defer g.mu.Unlock\(\) or later Unlock\(\) in this function`
	g.n++
}

// Embedded mutex: the receiver itself is the lock.
type box struct {
	sync.Mutex
	n int
}

func (b *box) addLocked() { b.n++ }

func (b *box) Add() {
	b.Lock()
	defer b.Unlock()
	b.addLocked()
}

func (b *box) AddForgot() {
	b.addLocked() // want `call to b.addLocked without holding b's mutex`
}
