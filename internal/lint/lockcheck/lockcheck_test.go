package lockcheck

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, "testdata", New(), "example.com/locks")
}
