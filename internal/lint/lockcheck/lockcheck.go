// Package lockcheck enforces the repository's *Locked calling
// convention and basic mutex hygiene, statically:
//
//   - A function or method whose name ends in "Locked" asserts that its
//     caller already holds the relevant mutex. Calling one without a
//     preceding mu.Lock()/RLock() in scope (or from within another
//     *Locked function) is a forgotten-lock bug.
//   - Conversely, calling a non-Locked method that itself acquires the
//     receiver's mutex while that mutex is already held is a guaranteed
//     deadlock (sync.Mutex is not reentrant) — the static double-lock.
//   - Every mu.Lock()/RLock() must be paired with a defer mu.Unlock()
//     or an explicit unlock later in the same function; a function that
//     can return with the mutex held wedges every future locker.
//
// The lock-state tracking is a per-function structural walk: locks and
// unlocks at one nesting level update the state in source order, while
// changes inside conditionally-executed blocks (if/for/switch/select
// bodies) are checked with a copy and discarded — the common
// lock-check-unlock-early-return shape analyzes exactly; exotic flows
// can annotate //swaplint:ignore lockcheck <reason>.
//
// Goroutine bodies (`go func(){...}` and `go x.f()`) never inherit the
// caller's lock state.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"swapservellm/internal/lint"
)

// New returns the lockcheck analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "lockcheck",
		Doc:  "enforce the *Locked suffix convention, detect double locks, and require Lock/Unlock pairing",
	}
	a.Run = run
	return a
}

// mutexOp classifies one sync.(RW)Mutex method call.
type mutexOp int

const (
	opNone mutexOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

var opByName = map[string]mutexOp{
	"Lock":    opLock,
	"RLock":   opRLock,
	"Unlock":  opUnlock,
	"RUnlock": opRUnlock,
}

// acquireKey identifies which mutex a method acquires, relative to its
// receiver: "field:mu" (receiver field), "self" (embedded mutex locked
// via the receiver), or "global:mu" (package-level mutex variable).
type acquireKey = string

func run(pass *lint.Pass) error {
	s := &scanner{pass: pass, acquires: collectAcquires(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.scanFunc(fd)
		}
	}
	return nil
}

// collectAcquires maps every function in the package to the mutexes its
// body (excluding nested function literals) acquires.
func collectAcquires(pass *lint.Pass) map[*types.Func][]acquireKey {
	out := make(map[*types.Func][]acquireKey)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := receiverName(fd)
			var keys []acquireKey
			seen := map[acquireKey]bool{}
			inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				key, op := lockCall(pass, call)
				if key == "" || (op != opLock && op != opRLock) {
					return
				}
				var ak acquireKey
				switch {
				case recv != "" && key == recv:
					ak = "self"
				case recv != "" && strings.HasPrefix(key, recv+"."):
					ak = "field:" + strings.TrimPrefix(key, recv+".")
				case isGlobalMutex(pass, key):
					ak = "global:" + key
				default:
					return
				}
				if !seen[ak] {
					seen[ak] = true
					keys = append(keys, ak)
				}
			})
			if len(keys) > 0 {
				out[obj] = keys
			}
		}
	}
	return out
}

// isGlobalMutex reports whether key names a package-level mutex var.
func isGlobalMutex(pass *lint.Pass, key string) bool {
	if strings.Contains(key, ".") {
		return false
	}
	obj := pass.Pkg.Scope().Lookup(key)
	v, ok := obj.(*types.Var)
	return ok && lint.IsMutexType(v.Type())
}

// lockCall classifies call as a mutex operation, returning the rendered
// mutex expression ("d.mu"; the container for promoted embedded calls)
// and the operation. Both direct calls (mu.Lock()) and the gated
// idiom (gate.Block(mu.Lock), which acquires while shedding the run
// token) are recognized.
func lockCall(pass *lint.Pass, call *ast.CallExpr) (string, mutexOp) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if key, op := mutexMethodSel(pass, sel); op != opNone {
			return key, op
		}
		if isGateBlock(pass, sel) && len(call.Args) == 1 {
			if argSel, ok := call.Args[0].(*ast.SelectorExpr); ok {
				return mutexMethodSel(pass, argSel)
			}
		}
	}
	return "", opNone
}

// mutexMethodSel classifies a selector denoting (a value of) a mutex
// method — the Fun of a direct call or a method-value argument.
func mutexMethodSel(pass *lint.Pass, sel *ast.SelectorExpr) (string, mutexOp) {
	op, ok := opByName[sel.Sel.Name]
	if !ok {
		return "", opNone
	}
	// The selected method must belong to sync.Mutex / sync.RWMutex —
	// via the selection's receiver (covers embedded promotion) or the
	// type of the selected expression.
	isMutexMethod := false
	if selInfo, ok := pass.Info.Selections[sel]; ok {
		if fn, ok := selInfo.Obj().(*types.Func); ok {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && lint.IsMutexType(recv.Type()) {
				isMutexMethod = true
			}
		}
	}
	if !isMutexMethod {
		if tv, ok := pass.Info.Types[sel.X]; ok && tv.Type != nil && lint.IsMutexType(tv.Type) {
			isMutexMethod = true
		}
	}
	if !isMutexMethod {
		return "", opNone
	}
	return lint.ExprString(sel.X), op
}

// isGateBlock reports whether sel selects simclock.Gate's Block or
// BlockIO method.
func isGateBlock(pass *lint.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Block" && sel.Sel.Name != "BlockIO" {
		return false
	}
	var fn *types.Func
	if selInfo, ok := pass.Info.Selections[sel]; ok {
		fn, _ = selInfo.Obj().(*types.Func)
	} else if f, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		fn = f
	}
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return lint.NamedTypeIn(t, "internal/simclock", "Gate")
}

// inspectSkippingFuncLits visits every node under root except the
// bodies of nested function literals.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		fn(n)
		return true
	})
}

// lockEvent records one Lock/RLock for the pairing check.
type lockEvent struct {
	key  string
	read bool
	pos  token.Pos
}

type scanner struct {
	pass     *lint.Pass
	acquires map[*types.Func][]acquireKey

	// per-function state
	lockedFn bool
	recv     string
	locks    []lockEvent
	unlocks  []lockEvent // explicit unlocks (pos = unlock site)
	deferred []lockEvent // deferred unlocks (incl. inside deferred closures)
}

// scanFunc analyzes one function declaration.
func (s *scanner) scanFunc(fd *ast.FuncDecl) {
	s.lockedFn = strings.HasSuffix(fd.Name.Name, "Locked")
	s.recv = receiverName(fd)
	s.locks, s.unlocks, s.deferred = nil, nil, nil

	held := make(map[string]bool)
	if s.lockedFn && s.recv != "" {
		for _, key := range receiverMutexKeys(s.pass, fd, s.recv) {
			held[key] = true
		}
	}
	s.scanStmts(fd.Body.List, held)
	s.checkPairing()
}

// scanFuncLit analyzes a nested function literal as an independent
// function (it may run on any goroutine at any time): no inherited lock
// state, its own pairing scope. Pairing that the literal cannot settle
// on its own is handed to the enclosing function: its unlocks may
// satisfy an enclosing lock (`defer func() { ...; mu.Unlock() }()`),
// and a lock it leaves held may be released by the enclosing function
// when the closure is assigned and invoked synchronously there.
func (s *scanner) scanFuncLit(lit *ast.FuncLit) {
	saved := *s
	s.lockedFn = false
	s.locks, s.unlocks, s.deferred = nil, nil, nil
	s.scanStmts(lit.Body.List, make(map[string]bool))
	litLocks := s.unpairedLocks()
	litUnlocks := append(s.unlocks, s.deferred...)
	s.lockedFn, s.recv = saved.lockedFn, saved.recv
	s.locks, s.unlocks, s.deferred = saved.locks, saved.unlocks, saved.deferred
	s.deferred = append(s.deferred, litUnlocks...)
	s.locks = append(s.locks, litLocks...)
}

// receiverName returns the receiver identifier of a method ("" for
// functions and anonymous receivers).
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// receiverMutexKeys lists the held-state keys a *Locked method's
// convention implies: one per mutex field of the receiver's struct
// ("r.mu"), plus "r" itself for an embedded mutex.
func receiverMutexKeys(pass *lint.Pass, fd *ast.FuncDecl, recv string) []string {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var keys []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !lint.IsMutexType(f.Type()) {
			continue
		}
		if f.Embedded() {
			keys = append(keys, recv)
		} else {
			keys = append(keys, recv+"."+f.Name())
		}
	}
	return keys
}

// scanStmts walks one statement list, updating held in source order.
// Conditionally-executed nested blocks are scanned against a copy.
func (s *scanner) scanStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		s.scanStmt(stmt, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (s *scanner) scanStmt(stmt ast.Stmt, held map[string]bool) {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if key, op := lockCall(s.pass, call); key != "" && op != opNone {
				switch op {
				case opLock, opRLock:
					held[key] = true
					s.locks = append(s.locks, lockEvent{key: key, read: op == opRLock, pos: call.Pos()})
				case opUnlock, opRUnlock:
					delete(held, key)
					s.unlocks = append(s.unlocks, lockEvent{key: key, read: op == opRUnlock, pos: call.Pos()})
				}
				// Arguments of mutex calls are trivial; done.
				return
			}
		}
		s.checkExpr(stmt.X, held)
	case *ast.DeferStmt:
		if key, op := lockCall(s.pass, stmt.Call); key != "" && (op == opUnlock || op == opRUnlock) {
			s.deferred = append(s.deferred, lockEvent{key: key, read: op == opRUnlock, pos: stmt.Pos()})
			return
		}
		s.checkExpr(stmt.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the caller's lock state.
		s.checkExpr(stmt.Call, make(map[string]bool))
	case *ast.IfStmt:
		if stmt.Init != nil {
			s.scanStmt(stmt.Init, held)
		}
		s.checkExpr(stmt.Cond, held)
		s.scanStmts(stmt.Body.List, copyHeld(held))
		if stmt.Else != nil {
			s.scanStmt(stmt.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			s.scanStmt(stmt.Init, held)
		}
		if stmt.Cond != nil {
			s.checkExpr(stmt.Cond, held)
		}
		inner := copyHeld(held)
		if stmt.Post != nil {
			s.scanStmt(stmt.Post, inner)
		}
		s.scanStmts(stmt.Body.List, inner)
	case *ast.RangeStmt:
		s.checkExpr(stmt.X, held)
		s.scanStmts(stmt.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			s.scanStmt(stmt.Init, held)
		}
		if stmt.Tag != nil {
			s.checkExpr(stmt.Tag, held)
		}
		for _, clause := range stmt.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.checkExpr(e, held)
				}
				s.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			s.scanStmt(stmt.Init, held)
		}
		for _, clause := range stmt.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range stmt.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					s.scanStmt(cc.Comm, copyHeld(held))
				}
				s.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		s.scanStmts(stmt.List, held)
	case *ast.LabeledStmt:
		s.scanStmt(stmt.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range stmt.Rhs {
			s.checkExpr(e, held)
		}
		for _, e := range stmt.Lhs {
			s.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range stmt.Results {
			s.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		s.checkExpr(stmt.Decl, held)
	case *ast.SendStmt:
		s.checkExpr(stmt.Chan, held)
		s.checkExpr(stmt.Value, held)
	case *ast.IncDecStmt:
		s.checkExpr(stmt.X, held)
	}
}

// checkExpr inspects an expression (or decl) subtree for calls, applying
// the *Locked-convention and double-lock checks against held. Function
// literals are analyzed independently.
func (s *scanner) checkExpr(root ast.Node, held map[string]bool) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.scanFuncLit(lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Expression-position lock calls (rare) still update held so
		// subsequent statements see them.
		if key, op := lockCall(s.pass, call); key != "" && op != opNone {
			switch op {
			case opLock, opRLock:
				held[key] = true
				s.locks = append(s.locks, lockEvent{key: key, read: op == opRLock, pos: call.Pos()})
			case opUnlock, opRUnlock:
				delete(held, key)
				s.unlocks = append(s.unlocks, lockEvent{key: key, read: op == opRUnlock, pos: call.Pos()})
			}
			return true
		}
		s.checkLockedCall(call, held)
		s.checkDoubleLock(call, held)
		return true
	})
}

// checkLockedCall enforces that *Locked callees see their mutex held.
func (s *scanner) checkLockedCall(call *ast.CallExpr, held map[string]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if !strings.HasSuffix(fun.Name, "Locked") {
			return
		}
		if s.lockedFn || len(held) > 0 {
			return
		}
		s.pass.Reportf(call.Pos(),
			"call to %s without any mutex held: the *Locked suffix requires the caller to hold the lock", fun.Name)
	case *ast.SelectorExpr:
		if !strings.HasSuffix(fun.Sel.Name, "Locked") {
			return
		}
		// Package-qualified call: treat like a plain function call.
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := s.pass.Info.Uses[id].(*types.PkgName); isPkg {
				if s.lockedFn || len(held) > 0 {
					return
				}
				s.pass.Reportf(call.Pos(),
					"call to %s without any mutex held: the *Locked suffix requires the caller to hold the lock",
					lint.ExprString(fun))
				return
			}
		}
		recvStr := lint.ExprString(fun.X)
		if recvStr == "" {
			return // dynamic receiver; out of scope
		}
		if held[recvStr] {
			return
		}
		for key := range held {
			if strings.HasPrefix(key, recvStr+".") {
				return
			}
		}
		// A *Locked method calling a sibling *Locked method on its own
		// receiver is covered by the seeded held keys; reaching here
		// means no lock on recvStr's mutexes is in scope.
		s.pass.Reportf(call.Pos(),
			"call to %s.%s without holding %s's mutex: the *Locked suffix requires the caller to hold it",
			recvStr, fun.Sel.Name, recvStr)
	}
}

// checkDoubleLock flags calls into methods that acquire a mutex the
// caller already holds.
func (s *scanner) checkDoubleLock(call *ast.CallExpr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	var calleeObj types.Object
	var recvStr string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		calleeObj = s.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		calleeObj = s.pass.Info.Uses[fun.Sel]
		recvStr = lint.ExprString(fun.X)
	}
	fn, ok := calleeObj.(*types.Func)
	if !ok {
		return
	}
	for _, ak := range s.acquires[fn] {
		var key string
		switch {
		case ak == "self":
			key = recvStr
		case strings.HasPrefix(ak, "field:"):
			if recvStr == "" {
				continue
			}
			key = recvStr + "." + strings.TrimPrefix(ak, "field:")
		case strings.HasPrefix(ak, "global:"):
			key = strings.TrimPrefix(ak, "global:")
		}
		if key != "" && held[key] {
			s.pass.Reportf(call.Pos(),
				"%s acquires %s which is already held here: guaranteed deadlock (sync mutexes are not reentrant)",
				fn.Name(), key)
		}
	}
}

// unpairedLocks returns the recorded Lock/RLock events with no
// matching deferred or later explicit unlock in the current scope.
func (s *scanner) unpairedLocks() []lockEvent {
	var out []lockEvent
	for _, l := range s.locks {
		ok := false
		for _, d := range s.deferred {
			if d.key == l.key && d.read == l.read {
				ok = true
				break
			}
		}
		if !ok {
			for _, u := range s.unlocks {
				if u.key == l.key && u.read == l.read && u.pos > l.pos {
					ok = true
					break
				}
			}
		}
		if !ok {
			out = append(out, l)
		}
	}
	return out
}

// checkPairing requires every recorded Lock/RLock to have a matching
// deferred or later explicit unlock in the same function.
func (s *scanner) checkPairing() {
	for _, l := range s.unpairedLocks() {
		verb := "Lock"
		unlock := "Unlock"
		if l.read {
			verb, unlock = "RLock", "RUnlock"
		}
		s.pass.Reportf(l.pos,
			"%s.%s() has no matching defer %s.%s() or later %s() in this function: a return path leaks the lock",
			l.key, verb, l.key, unlock, unlock)
	}
}
