// Package ctxcheck enforces the context-first convention in the traced
// packages of the swap lifecycle.
//
// Lifecycle spans and cancellation both propagate through
// context.Context (internal/obs stores the tracer and the current span
// on the context), so the convention only works if every public entry
// point actually threads a context — and threads it in the standard
// position. ctxcheck reports two violations:
//
//   - an exported function, method, or interface method whose signature
//     includes a context.Context anywhere but the first parameter
//     (variadic tails, trailing options, and ctx-less getters are fine:
//     only a misplaced ctx is flagged);
//   - a struct field of type context.Context. Contexts are
//     call-scoped: storing one in a struct detaches its lifetime from
//     the call tree, leaks the span parentage across requests, and is
//     the canonical way cancellation stops working (go.dev/blog/context:
//     "do not store Contexts inside a struct type").
//
// Test files are exempt: test helpers legitimately close over contexts.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"swapservellm/internal/lint"
)

// tracedPkgs lists the import-path suffixes of packages whose public
// surfaces must follow the context-first convention. (Matched by suffix
// so testdata fakes qualify too.)
var tracedPkgs = []string{
	"internal/core",
	"internal/cluster",
	"internal/cudackpt",
	"internal/cgroup",
	"internal/container",
	"internal/obs",
}

// New returns the ctxcheck analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "ctxcheck",
		Doc:  "exported functions in traced packages take context.Context first; no context.Context struct fields",
	}
	a.Run = func(pass *lint.Pass) error {
		if !traced(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Name.IsExported() {
						checkParams(pass, n.Name.Name, n.Type)
					}
				case *ast.TypeSpec:
					switch t := n.Type.(type) {
					case *ast.StructType:
						checkStruct(pass, n.Name.Name, t)
					case *ast.InterfaceType:
						checkInterface(pass, t)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkParams reports a context.Context parameter that is not first.
func checkParams(pass *lint.Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isCtxExpr(pass, field.Type) && idx != 0 {
			pass.Reportf(field.Type.Pos(),
				"%s: context.Context must be the first parameter", name)
		}
		idx += n
	}
}

// checkStruct reports fields of type context.Context.
func checkStruct(pass *lint.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isCtxExpr(pass, field.Type) {
			pass.Reportf(field.Type.Pos(),
				"%s: context.Context stored in a struct field; pass it per call instead", typeName)
		}
	}
}

// checkInterface applies the parameter rule to exported interface
// methods, so the convention holds for implementations too.
func checkInterface(pass *lint.Pass, it *ast.InterfaceType) {
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok || len(m.Names) == 0 {
			continue // embedded interface
		}
		if m.Names[0].IsExported() {
			checkParams(pass, m.Names[0].Name, ft)
		}
	}
}

// isCtxExpr reports whether the expression's type is context.Context.
func isCtxExpr(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	return isCtxType(tv.Type)
}

// isCtxType reports whether t is the named type context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// traced reports whether the package path is in the enforced set.
func traced(path string) bool {
	for _, suffix := range tracedPkgs {
		if lint.PkgPathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
