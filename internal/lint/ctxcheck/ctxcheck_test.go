package ctxcheck

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestCtxcheck(t *testing.T) {
	linttest.Run(t, "testdata", New(), "swapservellm/internal/core", "example.com/free")
}
