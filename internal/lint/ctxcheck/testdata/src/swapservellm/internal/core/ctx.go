// Package core is ctxcheck testdata masquerading as a traced package
// (import-path suffix internal/core).
package core

import "context"

type Backend struct{}

// SwapIn follows the convention: ctx first.
func SwapIn(ctx context.Context, b *Backend) error { return nil }

// Name takes no context: getters are fine.
func (b *Backend) Name() string { return "" }

// SwapOut misplaces ctx.
func SwapOut(b *Backend, ctx context.Context) error { return nil } // want `SwapOut: context\.Context must be the first parameter`

// Drain misplaces ctx in a method signature.
func (b *Backend) Drain(name string, ctx context.Context) error { return nil } // want `Drain: context\.Context must be the first parameter`

// reserve is unexported: internal helpers may order params freely.
func reserve(owner string, ctx context.Context) error { return nil }

// worker stores a context in a field — the canonical leak.
type worker struct {
	ctx context.Context // want `worker: context\.Context stored in a struct field`
	b   *Backend
}

// Evictor's interface methods follow the same rule.
type Evictor interface {
	Evict(ctx context.Context, bytes int64) error
	Preempt(bytes int64, ctx context.Context) error // want `Preempt: context\.Context must be the first parameter`
}

// use silences unused-declaration noise in the stub type-checker.
var _ = reserve
var _ = worker{}
