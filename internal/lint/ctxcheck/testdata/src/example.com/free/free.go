// Package free is not a traced package: ctxcheck leaves it alone.
package free

import "context"

type holder struct {
	ctx context.Context // untraced package: allowed
}

func Late(name string, ctx context.Context) error { return nil }

var _ = holder{}
