package statecheck

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestStatecheck(t *testing.T) {
	linttest.Run(t, "testdata", New(), "example.com/machine")
}
