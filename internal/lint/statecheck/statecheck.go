// Package statecheck confines writes to annotated state-machine fields
// to their declared transition functions.
//
// The repository has several hand-rolled state machines (the cudackpt
// process lifecycle, the cgroup freezer hierarchy, the cluster node
// registry, the backend serving state). Each guards its invariants —
// legal edges, trace recording, CAS discipline — inside one or two
// transition functions; an ad-hoc assignment elsewhere bypasses all of
// it silently. A state field opts in with a directive on its
// declaration:
//
//	state atomic.Int32 //swaplint:state allow=transition,newNode
//
// statecheck then reports every write to the field — plain or compound
// assignment, ++/--, map-entry assignment or delete on a map-typed
// field, atomic Store/Swap/CompareAndSwap/Add calls, and composite
// literal initialization — from any function (in the field's package)
// whose name is not in the allow list. The check is package-local:
// annotated fields should be unexported.
package statecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"swapservellm/internal/lint"
)

// atomicWriters are methods of sync/atomic box types that mutate.
var atomicWriters = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"Add":            true,
	"CompareAndSwap": true,
}

// New returns the statecheck analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "statecheck",
		Doc:  "annotated state-machine fields may only be written by their declared transition functions",
	}
	a.Run = run
	return a
}

type annotation struct {
	allow map[string]bool
	field *types.Var
}

func run(pass *lint.Pass) error {
	annotated := collectAnnotations(pass)
	if len(annotated) == 0 {
		return nil
	}

	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil {
			obj = pass.Info.Defs[sel.Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return nil
		}
		return v
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						target := ast.Unparen(lhs)
						// f.groups[k] = v writes the annotated map field.
						if idx, ok := target.(*ast.IndexExpr); ok {
							target = ast.Unparen(idx.X)
						}
						if v := fieldOf(target); v != nil {
							flag(pass, annotated, fnName, n.Pos(), v, "assigned")
						}
					}
				case *ast.IncDecStmt:
					if v := fieldOf(n.X); v != nil {
						flag(pass, annotated, fnName, n.Pos(), v, "assigned")
					}
				case *ast.CallExpr:
					// delete(f.groups, k)
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
						if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
							if v := fieldOf(n.Args[0]); v != nil {
								flag(pass, annotated, fnName, n.Pos(), v, "mutated with delete")
							}
						}
					}
					// field.Store(x) / Swap / CompareAndSwap / Add
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && atomicWriters[sel.Sel.Name] {
						if v := fieldOf(sel.X); v != nil {
							flag(pass, annotated, fnName, n.Pos(), v, "written via "+sel.Sel.Name)
						}
					}
				case *ast.CompositeLit:
					tv, ok := pass.Info.Types[n]
					if !ok || tv.Type == nil {
						return true
					}
					st, ok := tv.Type.Underlying().(*types.Struct)
					if !ok {
						return true
					}
					for i, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok {
								if v, ok := pass.Info.Uses[key].(*types.Var); ok && v.IsField() {
									flag(pass, annotated, fnName, kv.Pos(), v, "initialized in composite literal")
								}
							}
							continue
						}
						// positional literal
						if i < st.NumFields() {
							flag(pass, annotated, fnName, elt.Pos(), st.Field(i), "initialized in composite literal")
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// flag reports a write to an annotated field from a disallowed function.
func flag(pass *lint.Pass, annotated map[*types.Var]annotation, fnName string, pos token.Pos, v *types.Var, how string) {
	ann, ok := annotated[v]
	if !ok || ann.allow[fnName] {
		return
	}
	allowed := make([]string, 0, len(ann.allow))
	for name := range ann.allow {
		allowed = append(allowed, name)
	}
	sort.Strings(allowed)
	pass.Reportf(pos,
		"state field %s %s outside its transition functions (allowed: %s)",
		v.Name(), how, strings.Join(allowed, ", "))
}

// collectAnnotations finds //swaplint:state directives on struct fields.
func collectAnnotations(pass *lint.Pass) map[*types.Var]annotation {
	out := make(map[*types.Var]annotation)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := commentText(field)
				idx := strings.Index(text, "swaplint:state")
				if idx < 0 {
					continue
				}
				rest := strings.Fields(text[idx+len("swaplint:state"):])
				allow := make(map[string]bool)
				bad := len(rest) == 0
				for _, tok := range rest {
					if !strings.HasPrefix(tok, "allow=") {
						bad = true
						break
					}
					for _, name := range strings.Split(strings.TrimPrefix(tok, "allow="), ",") {
						if name != "" {
							allow[name] = true
						}
					}
				}
				if bad || len(allow) == 0 {
					pass.Reportf(field.Pos(), "malformed directive: want //swaplint:state allow=<func>[,<func>...]")
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = annotation{allow: allow, field: v}
					}
				}
			}
			return true
		})
	}
	return out
}

// commentText concatenates a field's doc and trailing comments. Raw
// comment text is used because CommentGroup.Text() strips
// directive-style comments — exactly the //swaplint:state ones.
func commentText(field *ast.Field) string {
	var sb strings.Builder
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			sb.WriteString(strings.TrimPrefix(c.Text, "//"))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
