// Package machine is statecheck testdata: three annotated state
// machines (plain field, atomic field, map field).
package machine

import (
	"sync"
	"sync/atomic"
)

type procState int

const (
	running procState = iota
	locked
)

type proc struct {
	mu    sync.Mutex
	state procState //swaplint:state allow=transition,newProc
	other int
}

func newProc() *proc {
	return &proc{state: running}
}

func (p *proc) transition(to procState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state = to
}

func (p *proc) badDirect() {
	p.state = locked // want `state field state assigned outside its transition functions \(allowed: newProc, transition\)`
	p.other = 7      // unannotated fields are free
}

func badLiteral() *proc {
	return &proc{state: locked} // want `state field state initialized in composite literal outside its transition functions`
}

func badPositional() proc {
	return proc{sync.Mutex{}, locked, 0} // want `state field state initialized in composite literal outside its transition functions`
}

type node struct {
	state atomic.Int32 //swaplint:state allow=cas
}

func (n *node) cas(from, to int32) bool {
	return n.state.CompareAndSwap(from, to)
}

func (n *node) badStore() {
	n.state.Store(3) // want `state field state written via Store outside its transition functions \(allowed: cas\)`
	_ = n.state.Load()
}

type freezer struct {
	groups map[string]int //swaplint:state allow=setState,remove
}

func (f *freezer) setState(k string, v int) {
	f.groups[k] = v
}

func (f *freezer) remove(k string) {
	delete(f.groups, k)
}

func (f *freezer) badWrite(k string) {
	f.groups[k] = 9     // want `state field groups assigned outside its transition functions \(allowed: remove, setState\)`
	delete(f.groups, k) // want `state field groups mutated with delete outside its transition functions \(allowed: remove, setState\)`
	_ = f.groups[k]     // reads are fine
}

func (f *freezer) ignored(k string) {
	//swaplint:ignore statecheck test fixture resets state directly
	f.groups[k] = 1
}

type malformed struct {
	//swaplint:state
	state int // want `malformed directive: want //swaplint:state allow=`
}

var _ = malformed{}
