// Package lockorder builds the module-wide lock-order graph from the
// facts package's acquisition summaries and reports two things:
//
//   - cycles in the observed order — two lock classes each acquired
//     while the other is held, on any pair of call paths, which is a
//     potential deadlock (lockdep-style);
//
//   - inversions of the declared order: the sanctioned acquisition
//     order is declared in ONE source-of-truth comment
//
//     //swaplint:lockorder core.Controller.mu < core.Backend.swapMu < ...
//
//     (several chains may be declared, but all in the same file), and
//     any observed edge contradicting the declaration's transitive
//     closure is reported at the acquisition site with the call path.
//
// Edges are recorded both for direct nested acquisitions (B locked
// while A held in one body) and interprocedurally (a call made while A
// is held reaching a function whose summary acquires B). Read-read
// self-edges (nested RLocks of one class) are not edges; everything
// else is.
package lockorder

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/callgraph"
	"swapservellm/internal/lint/facts"
)

// New returns the lockorder analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "lockorder",
		Doc:  "module-wide lock-order graph: report acquisition cycles (potential deadlock) and inversions of the declared //swaplint:lockorder order",
		Run:  run,
	}
}

// edge is the first observed acquisition of `to` while `from` is held.
type edge struct {
	from, to string
	pos      token.Pos
	pkg      *types.Package
	path     string // call path to the inner acquisition, "" when direct
}

type global struct {
	// edges keyed "from\x00to", first observation wins (walk order is
	// deterministic).
	edges map[string]*edge
	order []*edge // insertion order for deterministic iteration
	// declared maps "before\x00after" for the transitive closure of the
	// //swaplint:lockorder declarations.
	declared map[string]bool
	declPos  map[string]token.Pos // first declaration position per file
}

func key2(from, to string) string { return from + "\x00" + to }

func analyze(prog *lint.Program) *global {
	return prog.Cached("lockorder.global", func() interface{} {
		f := facts.Of(prog)
		g := &global{edges: make(map[string]*edge), declared: make(map[string]bool)}
		add := func(e *edge) {
			k := key2(e.from, e.to)
			if _, ok := g.edges[k]; !ok {
				g.edges[k] = e
				g.order = append(g.order, e)
			}
		}
		for _, ff := range f.Funcs {
			for i := range ff.Ops {
				op := &ff.Ops[i]
				switch op.Kind {
				case facts.OpAcquire:
					if !op.Class.Known() {
						continue
					}
					for _, h := range op.Held {
						if !h.Class.Known() {
							continue
						}
						if h.Class.Name == op.Class.Name && h.Read && op.Read {
							continue
						}
						add(&edge{from: h.Class.Name, to: op.Class.Name, pos: op.Pos, pkg: ff.Pkg.Types})
					}
				case facts.OpCall:
					if op.Concurrent || len(op.Held) == 0 {
						continue
					}
					sum := f.Summaries[op.Callee]
					if sum == nil {
						continue
					}
					for _, name := range sortedNames(sum.Acquires) {
						acq := sum.Acquires[name]
						for _, h := range op.Held {
							if !h.Class.Known() {
								continue
							}
							if h.Class.Name == name && h.Read && acq.Read {
								continue
							}
							t := acq.Trace.Prepend(facts.Step{Func: callgraph.DisplayName(op.Callee), Pos: op.Pos})
							add(&edge{from: h.Class.Name, to: name, pos: op.Pos, pkg: ff.Pkg.Types, path: t.String()})
						}
					}
				}
			}
		}
		g.declOrder(f)
		return g
	}).(*global)
}

// declOrder builds the transitive closure of the declared order.
func (g *global) declOrder(f *facts.Facts) {
	for _, d := range f.LockOrderDecls {
		if d.Bad {
			continue
		}
		for i := 0; i < len(d.Classes)-1; i++ {
			g.declared[key2(d.Classes[i], d.Classes[i+1])] = true
		}
	}
	// Floyd–Warshall style closure over the (small) class set.
	classes := make(map[string]bool)
	for k := range g.declared {
		parts := strings.SplitN(k, "\x00", 2)
		classes[parts[0]] = true
		classes[parts[1]] = true
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, k := range names {
		for _, i := range names {
			for _, j := range names {
				if g.declared[key2(i, k)] && g.declared[key2(k, j)] {
					g.declared[key2(i, j)] = true
				}
			}
		}
	}
}

func run(pass *lint.Pass) error {
	g := analyze(pass.Program)
	f := facts.Of(pass.Program)

	reportDecls(pass, f)

	// Declared-order inversions: an observed edge from→to where the
	// declaration says to < from.
	for _, e := range g.order {
		if e.pkg != pass.Pkg {
			continue
		}
		if g.declared[key2(e.to, e.from)] {
			detail := ""
			if e.path != "" {
				detail = " via " + e.path
			}
			pass.Reportf(e.pos, "lock-order inversion: %s acquired while %s is held%s, but the declared order is %s < %s",
				e.to, e.from, detail, e.to, e.from)
		}
	}

	// Cycles in the observed graph (potential deadlock), reported once
	// at a deterministic representative edge.
	for _, cyc := range g.cycles() {
		rep := g.edges[key2(cyc[0], cyc[1%len(cyc)])]
		if rep == nil || rep.pkg != pass.Pkg {
			continue
		}
		var sites []string
		for i := range cyc {
			e := g.edges[key2(cyc[i], cyc[(i+1)%len(cyc)])]
			if e == nil {
				continue
			}
			sites = append(sites, fmt.Sprintf("%s acquired while %s held at %s", e.to, e.from, shortPos(pass.Fset.Position(e.pos))))
		}
		pass.Reportf(rep.pos, "potential deadlock: lock-order cycle %s → %s (%s)",
			strings.Join(cyc, " → "), cyc[0], strings.Join(sites, "; "))
	}
	return nil
}

// reportDecls validates the //swaplint:lockorder declarations: they
// must be well-formed and all live in a single file.
func reportDecls(pass *lint.Pass, f *facts.Facts) {
	files := make(map[string]token.Pos)
	var fileNames []string
	for _, d := range f.LockOrderDecls {
		if _, ok := files[d.File]; !ok {
			files[d.File] = d.Pos
			fileNames = append(fileNames, d.File)
		}
	}
	sort.Strings(fileNames)
	for _, d := range f.LockOrderDecls {
		if !fileInPass(pass, d.Pos) {
			continue
		}
		if d.Bad {
			pass.Reportf(d.Pos, "malformed directive: want //swaplint:lockorder <class> < <class> [< ...]")
			continue
		}
		if len(fileNames) > 1 && d.File != fileNames[0] {
			pass.Reportf(d.Pos, "lock order must be declared in a single source-of-truth file; it is already declared in %s", shortFile(fileNames[0]))
		}
	}
}

// cycles returns the strongly connected components of the observed
// edge graph that contain a cycle (size > 1, or a non-read self-loop),
// each rotated to start at its lexicographically smallest class and
// ordered so consecutive elements are real edges.
func (g *global) cycles() [][]string {
	cg := callgraph.NewGraph()
	for _, e := range g.order {
		cg.AddNode(e.from)
		cg.AddNode(e.to)
		cg.AddEdge(e.from, callgraph.Edge{To: e.to})
	}
	var out [][]string
	for _, comp := range cg.SCCs() {
		if len(comp) == 1 {
			c := comp[0]
			if _, ok := g.edges[key2(c, c)]; ok {
				out = append(out, []string{c})
			}
			continue
		}
		sort.Strings(comp)
		inComp := make(map[string]bool, len(comp))
		for _, c := range comp {
			inComp[c] = true
		}
		// Order the component as an actual cycle path starting from the
		// smallest class, following edges greedily (deterministic; for
		// the common 2-cycles this is exact).
		path := []string{comp[0]}
		seen := map[string]bool{comp[0]: true}
		for len(path) < len(comp) {
			cur := path[len(path)-1]
			nextFound := ""
			for _, cand := range comp {
				if !seen[cand] && g.edges[key2(cur, cand)] != nil {
					nextFound = cand
					break
				}
			}
			if nextFound == "" {
				// Not a simple cycle through all members; fall back to
				// sorted order (sites list will skip missing edges).
				path = comp
				break
			}
			seen[nextFound] = true
			path = append(path, nextFound)
		}
		out = append(out, path)
	}
	return out
}

func sortedNames(m map[string]*facts.Acquire) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func fileInPass(pass *lint.Pass, pos token.Pos) bool {
	name := pass.Fset.Position(pos).Filename
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename == name {
			return true
		}
	}
	return false
}

func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

func shortFile(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[i+1:]
	}
	return name
}
