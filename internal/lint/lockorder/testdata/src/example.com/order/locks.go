// Package order is lockorder testdata: declared-order inversions and
// observed acquisition cycles. This file is the single source of truth
// for the sanctioned order.
//
//swaplint:lockorder order.pair.a < order.pair.b
//swaplint:lockorder order.duo.c < order.duo.d
//swaplint:lockorder order.trio.e < order.trio.f

package order
