package order

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// Acquiring a while b is held inverts the declared a < b order.
func (p *pair) inverted() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want `lock-order inversion: order\.pair\.a acquired while order\.pair\.b is held, but the declared order is order\.pair\.a < order\.pair\.b`
	defer p.a.Unlock()
}

type duo struct {
	c sync.Mutex
	d sync.Mutex
}

// lockC's summary acquires c.
func (q *duo) lockC() {
	q.c.Lock()
	defer q.c.Unlock()
}

// The inversion is reached through a call: reported at the call site
// with the path to the inner acquisition.
func (q *duo) viaCall() {
	q.d.Lock()
	defer q.d.Unlock()
	q.lockC() // want `lock-order inversion: order\.duo\.c acquired while order\.duo\.d is held via .*lockC.*, but the declared order is order\.duo\.c < order\.duo\.d`
}

type ring struct {
	x sync.Mutex
	y sync.Mutex
}

// xy and yx together form an undeclared two-lock cycle: each class is
// acquired while the other is held, on different call paths — a
// potential deadlock, reported once at the representative edge.
func (r *ring) xy() {
	r.x.Lock()
	defer r.x.Unlock()
	r.y.Lock() // want `potential deadlock: lock-order cycle order\.ring\.x → order\.ring\.y → order\.ring\.x`
	defer r.y.Unlock()
}

func (r *ring) yx() {
	r.y.Lock()
	defer r.y.Unlock()
	r.x.Lock()
	defer r.x.Unlock()
}

type trio struct {
	e sync.Mutex
	f sync.Mutex
}

// Nested acquisition in the declared direction is fine.
func (tr *trio) forwardOnly() {
	tr.e.Lock()
	defer tr.e.Unlock()
	tr.f.Lock()
	defer tr.f.Unlock()
}
