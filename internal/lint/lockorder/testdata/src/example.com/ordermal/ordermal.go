// Package ordermal seeds one malformed //swaplint:lockorder directive
// (fewer than two classes).
//
//swaplint:lockorder ordermal.only

package ordermal
