// Package orderdup declares the lock order in two files — checked
// programmatically because the diagnostic lands on the directive
// comment's own line.
//
//swaplint:lockorder orderdup.pair.a < orderdup.pair.b

package orderdup

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}
