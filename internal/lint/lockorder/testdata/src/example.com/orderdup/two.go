// A stray second declaration file: the sanctioned order must live in
// one place.
//
//swaplint:lockorder orderdup.pair.b < orderdup.pair.c

package orderdup
