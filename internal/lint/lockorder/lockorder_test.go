package lockorder

import (
	"strings"
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, "testdata", New(), "example.com/order")
}

// Declarations spread over two files: the one outside the (sorted-
// first) source-of-truth file is reported.
func TestMultiFileDeclaration(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata", New(), "example.com/orderdup")
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "single source-of-truth file") {
			found = true
			if !strings.HasSuffix(d.Pos.Filename, "two.go") {
				t.Errorf("finding should land on the stray file, got %s", d.Pos)
			}
		}
	}
	if !found {
		t.Errorf("no single-file violation in %v", diags)
	}
}

// A declaration with fewer than two classes is malformed.
func TestMalformedDeclaration(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata", New(), "example.com/ordermal")
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed directive") && strings.Contains(d.Message, "swaplint:lockorder") {
			found = true
		}
	}
	if !found {
		t.Errorf("no malformed-declaration finding in %v", diags)
	}
}
