package clockcheck

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestClockcheck(t *testing.T) {
	linttest.Run(t, "testdata", New(),
		"swapservellm/internal/core",
		"swapservellm/internal/experiments",
		"example.com/free",
	)
}
