// Package core is clockcheck testdata masquerading as a deterministic
// package (import-path suffix internal/core).
package core

import (
	"time"

	"swapservellm/internal/simclock"
)

type server struct {
	clock simclock.Clock
}

func bad(s *server) {
	_ = time.Now()                             // want `direct wall-clock call time\.Now`
	time.Sleep(time.Second)                    // want `direct wall-clock call time\.Sleep`
	<-time.After(time.Millisecond)             // want `direct wall-clock call time\.After`
	_ = time.Since(time.Time{})                // want `direct wall-clock call time\.Since`
	_ = time.NewTimer(time.Second)             // want `direct wall-clock call time\.NewTimer`
	_ = time.NewTicker(time.Second)            // want `direct wall-clock call time\.NewTicker`
	_ = time.Tick(time.Second)                 // want `direct wall-clock call time\.Tick`
	_ = time.AfterFunc(time.Second, func() {}) // want `direct wall-clock call time\.AfterFunc`
	_ = time.Until(time.Time{})                // want `direct wall-clock call time\.Until`
}

func good(s *server) {
	_ = s.clock.Now()
	s.clock.Sleep(time.Second) // durations and types are fine
	<-s.clock.After(3 * time.Millisecond)
	_ = s.clock.Since(time.Time{})
	var d time.Duration = 5 * time.Second
	_ = d.String()
	_, _ = time.ParseDuration("1s") // not a wall-clock call
}

func ignored() {
	_ = time.Now() //swaplint:ignore clockcheck wall time feeds the scaled clock origin only
	//swaplint:ignore clockcheck directive on the preceding line also suppresses
	time.Sleep(time.Second)
}
