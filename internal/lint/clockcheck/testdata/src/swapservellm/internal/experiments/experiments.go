// Package experiments is clockcheck testdata for the virtual-only rule
// (import-path suffix internal/experiments): constructing a scaled
// clock is forbidden, the Virtual clock is not.
package experiments

import (
	"time"

	"swapservellm/internal/simclock"
)

var epoch = time.Time{}

func bad() {
	_ = simclock.NewScaled(epoch, 4000)  // want `scaled clock simclock\.NewScaled in virtual-only package`
	_ = simclock.NewScaledFromWall(4000) // want `scaled clock simclock\.NewScaledFromWall in virtual-only package`
}

func good() {
	clock := simclock.NewVirtual(epoch)
	_ = clock.Now()
	// Wall-clock calls are allowed here: experiments is not in the
	// deterministic set (its tests bound themselves with wall timeouts),
	// only scaled-clock construction is banned.
	_ = time.Now()
}

func ignored() {
	//swaplint:ignore clockcheck calibration harness compares virtual against scaled timings
	_ = simclock.NewScaled(epoch, 100)
}
