// Package free is clockcheck testdata for a package outside the
// deterministic set: wall-clock use is allowed.
package free

import "time"

func fine() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}
