// Package clockcheck forbids direct wall-clock calls in the
// deterministic packages of the simulation.
//
// Chaos-seed replay and every latency measurement in this repository
// are only sound if simulated code observes time exclusively through
// an injected simclock.Clock: a single time.Now or time.Sleep smuggles
// wall time into the simulated timeline, breaking both the compression
// factor and deterministic replays. clockcheck reports any call to
// time.Now, time.Sleep, time.Since, time.Until, time.After,
// time.AfterFunc, time.Tick, time.NewTimer, or time.NewTicker inside a
// deterministic package. Duration/Time types and constants
// (time.Second, time.Duration, ...) remain free to use.
//
// Test files are exempt: tests drive Manual clocks but also bound
// themselves with real wall-clock timeouts, which is legitimate.
// internal/simclock itself is the abstraction over the wall clock and
// is not a deterministic package.
//
// The experiment harness carries one further rule, enforced in test
// files too: internal/experiments must not construct scaled clocks
// (simclock.NewScaled, simclock.NewScaledFromWall). Experiments run on
// simclock.NewVirtual — the discrete-event clock whose runs are
// deterministic and race-clean — and a scaled clock smuggled into one
// trial reintroduces wall-clock waiting and timing-dependent results
// for the whole suite. A genuinely exceptional site can carry a
// //swaplint:ignore clockcheck <reason> directive.
package clockcheck

import (
	"go/ast"
	"go/types"

	"swapservellm/internal/lint"
)

// deterministicPkgs lists the import-path suffixes of packages that
// must consult the simulation clock only. (Matched by suffix so
// testdata fakes qualify too.)
var deterministicPkgs = []string{
	"internal/core",
	"internal/sched",
	"internal/cudackpt",
	"internal/cgroup",
	"internal/chaos",
	"internal/cluster",
	"internal/gpu",
	"internal/perfmodel",
	"internal/engine",
	"internal/openai",
	"internal/container",
	"internal/storage",
	"internal/invariant",
	"internal/ckptstore",
	"internal/obs",
	"internal/proxy",
	"internal/proxy/ir",
}

// virtualOnlyPkgs lists import-path suffixes where constructing a
// scaled clock is forbidden: these packages run on the Virtual
// discrete-event clock exclusively.
var virtualOnlyPkgs = []string{
	"internal/experiments",
}

// scaledCtors lists the simclock constructors banned in virtual-only
// packages.
var scaledCtors = map[string]bool{
	"NewScaled":         true,
	"NewScaledFromWall": true,
}

// forbidden lists the wall-clock entry points of package time.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// New returns the clockcheck analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "clockcheck",
		Doc:  "forbid direct time.Now/Sleep/After/... in deterministic packages; use internal/simclock",
	}
	a.Run = func(pass *lint.Pass) error {
		wallClock := deterministic(pass.Pkg.Path())
		virtOnly := virtualOnly(pass.Pkg.Path())
		if !wallClock && !virtOnly {
			return nil
		}
		for _, f := range pass.Files {
			// The wall-clock rule exempts test files; the virtual-only
			// rule does not — a scaled clock in an experiment _test.go
			// de-determinizes the suite just the same.
			checkWall := wallClock && !pass.IsTestFile(f.Pos())
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
				if !ok {
					return true
				}
				from := pkgName.Imported().Path()
				if checkWall && from == "time" && forbidden[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"direct wall-clock call time.%s in deterministic package %s: use an injected simclock.Clock",
						sel.Sel.Name, pass.Pkg.Name())
					return true
				}
				if virtOnly && scaledCtors[sel.Sel.Name] &&
					lint.PkgPathHasSuffix(from, "internal/simclock") {
					pass.Reportf(sel.Pos(),
						"scaled clock simclock.%s in virtual-only package %s: experiments run on simclock.NewVirtual",
						sel.Sel.Name, pass.Pkg.Name())
				}
				return true
			})
		}
		return nil
	}
	return a
}

// virtualOnly reports whether the package path is in the Virtual-only set.
func virtualOnly(path string) bool {
	for _, suffix := range virtualOnlyPkgs {
		if lint.PkgPathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// deterministic reports whether the package path is in the enforced set.
func deterministic(path string) bool {
	for _, suffix := range deterministicPkgs {
		if lint.PkgPathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
