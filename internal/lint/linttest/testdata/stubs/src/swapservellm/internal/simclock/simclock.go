// Package simclock is a source stub of the repository's clock
// abstraction, sufficient for type-checking swaplint testdata.
package simclock

import "time"

type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
	Since(t time.Time) time.Duration
}
