// Package simclock is a source stub of the repository's clock
// abstraction, sufficient for type-checking swaplint testdata.
package simclock

import "time"

type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
	Since(t time.Time) time.Duration
}

type Scaled struct{}

func (*Scaled) Now() time.Time                       { return time.Time{} }
func (*Scaled) Sleep(time.Duration)                  {}
func (*Scaled) After(time.Duration) <-chan time.Time { return nil }
func (*Scaled) Since(time.Time) time.Duration        { return 0 }

func NewScaled(origin time.Time, factor float64) *Scaled { return &Scaled{} }
func NewScaledFromWall(factor float64) *Scaled           { return &Scaled{} }

type Virtual struct{}

func (*Virtual) Now() time.Time                       { return time.Time{} }
func (*Virtual) Sleep(time.Duration)                  {}
func (*Virtual) After(time.Duration) <-chan time.Time { return nil }
func (*Virtual) Since(time.Time) time.Duration        { return 0 }

func NewVirtual(origin time.Time) *Virtual { return &Virtual{} }

func (*Virtual) Gate() *Gate { return &Gate{} }

// Gate is the run-token gate of the virtual clock: goroutines Enter it
// to count as runnable and Block/BlockIO/Wait through it so the clock
// only advances when every registered goroutine is quiescent.
type Gate struct{}

func GateFor(clock Clock) *Gate { return &Gate{} }

func (g *Gate) Enter()                                            {}
func (g *Gate) Exit()                                             {}
func (g *Gate) Run(fn func())                                     { fn() }
func (g *Gate) Go(fn func())                                      { go fn() }
func (g *Gate) Block(fn func())                                   { fn() }
func (g *Gate) BlockIO(fn func())                                 { fn() }
func (g *Gate) Wait(d time.Duration, done ...<-chan struct{}) int { return -1 }
