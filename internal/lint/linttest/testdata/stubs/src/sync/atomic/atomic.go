// Package atomic is a tiny source stub of the standard library package,
// sufficient for type-checking swaplint testdata.
package atomic

type Int32 struct{ v int32 }

func (x *Int32) Load() int32                        { return x.v }
func (x *Int32) Store(val int32)                    { x.v = val }
func (x *Int32) Swap(new int32) int32               { return 0 }
func (x *Int32) Add(delta int32) int32              { return 0 }
func (x *Int32) CompareAndSwap(old, new int32) bool { return false }

type Int64 struct{ v int64 }

func (x *Int64) Load() int64                        { return x.v }
func (x *Int64) Store(val int64)                    { x.v = val }
func (x *Int64) Swap(new int64) int64               { return 0 }
func (x *Int64) Add(delta int64) int64              { return 0 }
func (x *Int64) CompareAndSwap(old, new int64) bool { return false }

type Bool struct{ v uint32 }

func (x *Bool) Load() bool         { return false }
func (x *Bool) Store(val bool)     {}
func (x *Bool) Swap(new bool) bool { return false }
