// Package sync is a tiny source stub of the standard library package,
// sufficient for type-checking swaplint testdata.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return false }

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()          {}
func (m *RWMutex) Unlock()        {}
func (m *RWMutex) RLock()         {}
func (m *RWMutex) RUnlock()       {}
func (m *RWMutex) TryLock() bool  { return false }
func (m *RWMutex) TryRLock() bool { return false }

type WaitGroup struct{ state int64 }

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}

type Locker interface {
	Lock()
	Unlock()
}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}

type Once struct{ done uint32 }

func (o *Once) Do(f func()) {}
