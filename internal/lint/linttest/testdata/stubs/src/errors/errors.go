// Package errors is a tiny source stub of the standard library package,
// sufficient for type-checking swaplint testdata.
package errors

func New(text string) error {
	return &errorString{text}
}

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

func Is(err, target error) bool     { return false }
func As(err error, target any) bool { return false }
func Join(errs ...error) error      { return nil }
func Unwrap(err error) error        { return nil }
