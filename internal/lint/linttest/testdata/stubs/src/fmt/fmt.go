// Package fmt is a tiny source stub of the standard library package,
// sufficient for type-checking swaplint testdata.
package fmt

func Errorf(format string, a ...any) error        { return nil }
func Sprintf(format string, a ...any) string      { return "" }
func Printf(format string, a ...any) (int, error) { return 0, nil }
func Println(a ...any) (int, error)               { return 0, nil }
func Sprint(a ...any) string                      { return "" }
