// Package io is a tiny source stub of the standard library package,
// sufficient for type-checking swaplint testdata.
package io

import "errors"

var EOF = errors.New("EOF")

type Reader interface {
	Read(p []byte) (n int, err error)
}
