// Package context is a tiny source replica of the standard library's
// context package, sufficient for type-checking analyzer testdata.
package context

// Context is the stub interface; analyzers match it by the named type
// context.Context, so the method set is irrelevant.
type Context interface {
	Err() error
}

type CancelFunc func()

func Background() Context { return nil }

func TODO() Context { return nil }

func WithCancel(parent Context) (Context, CancelFunc) { return parent, func() {} }

func WithoutCancel(parent Context) Context { return parent }
