// Package time is a tiny source stub of the standard library package,
// sufficient for type-checking swaplint testdata.
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

func (d Duration) String() string { return "" }

type Time struct{ wall uint64 }

func (t Time) Add(d Duration) Time { return t }
func (t Time) Sub(u Time) Duration { return 0 }
func (t Time) Before(u Time) bool  { return false }
func (t Time) After(u Time) bool   { return false }
func (t Time) UnixNano() int64     { return 0 }
func (t Time) IsZero() bool        { return true }
func (t Time) Equal(u Time) bool   { return false }
func (t Time) String() string      { return "" }

func Now() Time                                { return Time{} }
func Sleep(d Duration)                         {}
func Since(t Time) Duration                    { return 0 }
func Until(t Time) Duration                    { return 0 }
func After(d Duration) <-chan Time             { return nil }
func Tick(d Duration) <-chan Time              { return nil }
func ParseDuration(s string) (Duration, error) { return 0, nil }

type Timer struct{ C <-chan Time }

func (t *Timer) Stop() bool            { return false }
func (t *Timer) Reset(d Duration) bool { return false }

func NewTimer(d Duration) *Timer            { return &Timer{} }
func AfterFunc(d Duration, f func()) *Timer { return &Timer{} }

type Ticker struct{ C <-chan Time }

func (t *Ticker) Stop()            {}
func (t *Ticker) Reset(d Duration) {}

func NewTicker(d Duration) *Ticker { return &Ticker{} }
