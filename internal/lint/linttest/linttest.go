// Package linttest is a hermetic golden-test harness for swaplint
// analyzers, modelled on golang.org/x/tools/go/analysis/analysistest
// but with no dependencies outside the standard library.
//
// An analyzer's test data lives under <analyzer>/testdata/src/<path>,
// where <path> is the fake package's import path. Expected findings are
// declared on the offending line with
//
//	// want "regexp" ["regexp" ...]
//
// Each diagnostic on a line must match one want pattern and vice versa.
// Imports resolve against the analyzer's own testdata/src first, then
// against the shared stub tree in linttest/testdata/stubs/src (tiny
// source replicas of time, sync, fmt, errors, ... sufficient for
// type-checking).
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"swapservellm/internal/lint"
)

// Run analyzes each listed fake package (paths under testdata/src,
// e.g. "example.com/clocks") with the analyzer, runs its Finish hook,
// and compares diagnostics against the // want comments in those
// packages' files.
func Run(t *testing.T, testdataDir string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset, pkgs := Load(t, testdataDir, pkgPaths...)
	diags := lint.NewRunner(a).Run(fset, pkgs)
	checkWants(t, fset, pkgs, diags)
}

// Diagnostics analyzes the listed fake packages and returns the raw
// diagnostics without want-comment matching — for cases where the
// finding lands on a directive comment's own line, which cannot also
// carry a want comment.
func Diagnostics(t *testing.T, testdataDir string, a *lint.Analyzer, pkgPaths ...string) []lint.Diagnostic {
	t.Helper()
	fset, pkgs := Load(t, testdataDir, pkgPaths...)
	return lint.NewRunner(a).Run(fset, pkgs)
}

// Load parses and type-checks the listed testdata packages against the
// shared stub tree, returning them with their FileSet — for tests that
// consult lint.Program facilities (call graph, facts) directly rather
// than running an analyzer.
func Load(t *testing.T, testdataDir string, pkgPaths ...string) (*token.FileSet, []*lint.Package) {
	t.Helper()
	fset := token.NewFileSet()
	imp := newSrcImporter(fset, []string{
		filepath.Join(testdataDir, "src"),
		stubRoot(t),
	})

	var pkgs []*lint.Package
	for _, path := range pkgPaths {
		dir := filepath.Join(testdataDir, "src", filepath.FromSlash(path))
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", path, err)
		}
		pkgs = append(pkgs, &lint.Package{ImportPath: path, Dir: dir, Files: files, Types: tpkg, Info: info})
	}
	return fset, pkgs
}

// checkWants matches diagnostics against want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type wantKey struct {
		file string
		line int
	}
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, pat := range splitQuoted(t, strings.TrimPrefix(text, "want ")) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						k := wantKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	keys := make([]wantKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// splitQuoted parses `"a" "b"` (or backtick-quoted patterns) into its
// quoted segments.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("bad want syntax: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("unterminated want pattern: %q", s)
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}

// stubRoot locates linttest/stubs/src relative to this source file.
func stubRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("linttest: cannot locate stub packages")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "stubs", "src")
}

// parseDir parses every .go file in dir (sorted for determinism).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// srcImporter type-checks imports from source found under its roots,
// caching results. It implements types.Importer.
type srcImporter struct {
	fset  *token.FileSet
	roots []string
	pkgs  map[string]*types.Package
}

func newSrcImporter(fset *token.FileSet, roots []string) *srcImporter {
	return &srcImporter{fset: fset, roots: roots, pkgs: make(map[string]*types.Package)}
}

func (im *srcImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	var lastErr error
	for _, root := range im.roots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		files, err := parseDir(im.fset, dir)
		if err != nil {
			lastErr = err
			continue
		}
		conf := types.Config{Importer: im}
		pkg, err := conf.Check(path, im.fset, files, nil)
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = pkg
		return pkg, nil
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, &importError{path}
}

// Fall back to the real compiler importer? No: tests must be hermetic,
// so a missing stub is a loud failure naming the path to add.
type importError struct{ path string }

func (e *importError) Error() string {
	return "linttest: no stub package for import " + e.path + " (add one under testdata/src or linttest/testdata/stubs/src)"
}

// ensure interface compliance
var _ types.Importer = (*srcImporter)(nil)
