// Package lint is a self-contained static-analysis framework — a small
// stdlib-only analogue of golang.org/x/tools/go/analysis — that hosts
// the swaplint analyzer suite enforcing this repository's concurrency,
// determinism, and fault-site invariants:
//
//   - clockcheck: no direct wall-clock calls in deterministic packages
//     (use internal/simclock).
//   - ctxcheck: exported functions in traced packages take
//     context.Context as the first parameter; contexts are never stored
//     in struct fields.
//   - lockcheck: the *Locked calling convention, double-lock detection,
//     and Lock/Unlock pairing.
//   - sitecheck: chaos fault-site strings must resolve to registered
//     chaos.Site constants.
//   - statecheck: annotated state-machine fields are written only
//     through their declared transition functions.
//   - errwrap: fmt.Errorf error operands use %w; error comparisons use
//     errors.Is / errors.As.
//
// Findings can be suppressed with a directive on (or immediately above)
// the offending line:
//
//	//swaplint:ignore <analyzer> <reason>
//
// The analyzer field may name one analyzer or be "all"; the reason is
// mandatory — a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check. Run is invoked once per loaded package;
// Finish, when set, is invoked once after every package has been
// analyzed, for whole-program checks (e.g. unused fault sites).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish runs after all packages. It may call pass.Reportf with
	// positions collected during the per-package runs.
	Finish func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker errors (best-effort loading).
	TypeErrors []error
}

// Program is the whole set of packages one Runner.Run call analyzes,
// shared by every pass. Interprocedural facilities (the call graph,
// per-function blocking summaries) hang off it through Cached, so they
// are built once per run no matter how many analyzers consult them.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	mu    sync.Mutex
	cache map[string]interface{}
}

// Cached returns the value memoized under key, invoking build on the
// first request. Analyzers use it to share one derived structure (e.g.
// the interprocedural call graph) across packages and analyzer
// instances without recomputation.
func (p *Program) Cached(key string, build func() interface{}) interface{} {
	p.mu.Lock()
	if p.cache == nil {
		p.cache = make(map[string]interface{})
	}
	if v, ok := p.cache[key]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	// Build without the lock held: builders may themselves call Cached
	// (an analyzer's derived structure consulting the shared facts). Two
	// concurrent first requests may both build; the first store wins.
	v := build()
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.cache[key]; ok {
		return prev
	}
	p.cache[key] = v
	return v
}

// Pass carries one analyzer's view of one package. During Finish the
// package-specific fields (Files, Pkg, Info) are nil. Program is always
// set and spans every package of the run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Program  *Program

	runner *Runner
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.runner.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.runner.diags = append(p.runner.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreDirective is one parsed //swaplint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	reason   string
	pos      token.Pos
}

// Runner executes a set of analyzers over loaded packages and collects
// their diagnostics.
type Runner struct {
	Analyzers []*Analyzer

	fset *token.FileSet
	// ignores maps filename -> line -> directives covering that line.
	ignores map[string]map[int][]ignoreDirective
	diags   []Diagnostic
}

// NewRunner builds a runner for the given analyzers.
func NewRunner(analyzers ...*Analyzer) *Runner {
	return &Runner{Analyzers: analyzers}
}

// Run analyzes every package with every analyzer, then runs Finish
// hooks, returning diagnostics sorted by position. Packages must share
// fset.
func (r *Runner) Run(fset *token.FileSet, pkgs []*Package) []Diagnostic {
	r.fset = fset
	r.ignores = make(map[string]map[int][]ignoreDirective)
	r.diags = nil
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			r.indexIgnores(f)
		}
	}
	prog := &Program{Fset: fset, Packages: pkgs}
	for _, pkg := range pkgs {
		for _, a := range r.Analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, Program: prog, runner: r}
			if err := a.Run(pass); err != nil {
				r.diags = append(r.diags, Diagnostic{
					Pos:      token.Position{Filename: pkg.ImportPath},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	for _, a := range r.Analyzers {
		if a.Finish == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Program: prog, runner: r}
		if err := a.Finish(pass); err != nil {
			r.diags = append(r.diags, Diagnostic{Analyzer: a.Name, Message: fmt.Sprintf("internal error: %v", err)})
		}
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	// Drop exact duplicates (an analyzer may visit shared positions from
	// both the per-package and Finish phases).
	out := r.diags[:0]
	for i, d := range r.diags {
		if i == 0 || d != r.diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// indexIgnores parses every swaplint:ignore directive in f and reports
// malformed ones as findings of the pseudo-analyzer "swaplint".
func (r *Runner) indexIgnores(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "swaplint:ignore") {
				continue
			}
			rest := strings.TrimPrefix(text, "swaplint:ignore")
			fields := strings.Fields(rest)
			pos := r.fset.Position(c.Pos())
			if len(fields) < 2 {
				r.diags = append(r.diags, Diagnostic{
					Pos:      pos,
					Analyzer: "swaplint",
					Message:  "malformed directive: want //swaplint:ignore <analyzer> <reason>",
				})
				continue
			}
			dir := ignoreDirective{analyzer: fields[0], reason: strings.Join(fields[1:], " "), pos: c.Pos()}
			m := r.ignores[pos.Filename]
			if m == nil {
				m = make(map[int][]ignoreDirective)
				r.ignores[pos.Filename] = m
			}
			m[pos.Line] = append(m[pos.Line], dir)
		}
	}
}

// suppressed reports whether a directive on the diagnostic's line (or
// the line immediately above) covers the analyzer.
func (r *Runner) suppressed(analyzer string, pos token.Position) bool {
	m := r.ignores[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range m[line] {
			if d.analyzer == analyzer || d.analyzer == "all" {
				return true
			}
		}
	}
	return false
}

// --- shared type helpers used by several analyzers ---

// ExprString renders a selector/identifier chain ("d.mu", "c.reg") for
// use as a lock-state key; non-chain expressions render as "".
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := ExprString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	}
	return ""
}

// IsMutexType reports whether t (or what it points to) is sync.Mutex or
// sync.RWMutex.
func IsMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// PkgPathHasSuffix reports whether path equals suffix or ends with
// "/"+suffix — matching both real import paths and testdata fakes.
func PkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// NamedTypeIn reports whether t is the named type pkgSuffix.name (the
// package matched by import-path suffix).
func NamedTypeIn(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PkgPathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}
