package errwrap

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestErrwrap(t *testing.T) {
	linttest.Run(t, "testdata", New(), "example.com/wrap")
}
