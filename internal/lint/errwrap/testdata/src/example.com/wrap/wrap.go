// Package wrap is errwrap testdata.
package wrap

import (
	"errors"
	"fmt"
	"io"
)

var errSentinel = errors.New("sentinel")

type apiError struct{ code int }

func (e *apiError) Error() string { return "api" }

func badWrap(err error) {
	_ = fmt.Errorf("failed: %v", err)            // want `error operand of fmt\.Errorf formatted with %v`
	_ = fmt.Errorf("failed: %s", err)            // want `error operand of fmt\.Errorf formatted with %s`
	_ = fmt.Errorf("op %s failed: %v", "x", err) // want `error operand of fmt\.Errorf formatted with %v`
	ae := &apiError{}
	_ = fmt.Errorf("api said %v", ae) // want `error operand of fmt\.Errorf formatted with %v`
}

func goodWrap(err error) {
	_ = fmt.Errorf("failed: %w", err)
	_ = fmt.Errorf("%w: extra context %d", err, 7)
	_ = fmt.Errorf("op %q failed: %w", "x", err)
	_ = fmt.Errorf("no error operands %d %s", 1, "x")
	_ = fmt.Errorf("type only: %T", err)
	_ = fmt.Errorf("widths %*d and %w", 3, 7, err)
	_ = fmt.Errorf("indexed formats are skipped: %[1]v", err)
	_ = fmt.Errorf("percent literal 100%% then %w", err)
}

func badCompare(err error) bool {
	if err == io.EOF { // want `error compared with ==: use errors\.Is`
		return true
	}
	if err != errSentinel { // want `error compared with !=: use !errors\.Is`
		return false
	}
	switch err {
	case io.EOF: // want `error switched against "io\.EOF" with ==`
		return true
	}
	return false
}

func goodCompare(err error) bool {
	if err == nil || nil != err {
		return true
	}
	if errors.Is(err, io.EOF) {
		return true
	}
	var target *apiError
	return errors.As(err, &target)
}

func ignoredCompare(err error) bool {
	//swaplint:ignore errwrap identity comparison is intentional here
	return err == errSentinel
}
