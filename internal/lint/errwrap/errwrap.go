// Package errwrap enforces error wrapping and comparison hygiene:
//
//   - fmt.Errorf calls whose operands include an error must format it
//     with %w, so call chains stay inspectable with errors.Is/As (the
//     invariant checkers and the retry helper classify failures by
//     unwrapping to sentinels like chaos.ErrInjected).
//   - error values must not be compared with == or != (except against
//     nil); use errors.Is, which sees through wrapping.
//
// Formats using explicit argument indexes (%[1]v) are beyond the
// analyzer and are skipped.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"swapservellm/internal/lint"
)

// New returns the errwrap analyzer.
func New() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "errwrap",
		Doc:  "fmt.Errorf error operands use %w; error comparisons use errors.Is",
	}
	a.Run = func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorf(pass, n)
				case *ast.BinaryExpr:
					checkComparison(pass, n)
				case *ast.SwitchStmt:
					checkSwitch(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkErrorf flags fmt.Errorf("...%v...", err) where err should be %w.
func checkErrorf(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed arguments: out of scope
	}
	operands := call.Args[1:]
	for i, v := range verbs {
		if i >= len(operands) {
			break
		}
		if v == 'w' || v == 'T' {
			continue
		}
		opType := pass.Info.Types[operands[i]].Type
		if opType == nil || !implementsError(opType) {
			continue
		}
		pass.Reportf(operands[i].Pos(),
			"error operand of fmt.Errorf formatted with %%%c: use %%w so the cause stays unwrappable (or errors.Is-able)", v)
	}
}

// parseVerbs returns the verb letter consuming each successive operand.
// The bool result is false when the format uses explicit indexes.
func parseVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		// width (a * consumes an operand)
		for i < len(format) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if format[i] == '[' {
				return nil, false
			}
			if format[i] >= '0' && format[i] <= '9' || format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// checkComparison flags err == target / err != target for error-typed
// non-nil operands.
func checkComparison(pass *lint.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isNil(pass, be.X) || isNil(pass, be.Y) {
		return
	}
	xt := pass.Info.Types[be.X].Type
	yt := pass.Info.Types[be.Y].Type
	if xt == nil || yt == nil || !implementsError(xt) || !implementsError(yt) {
		return
	}
	op := "errors.Is(err, target)"
	if be.Op == token.NEQ {
		op = "!errors.Is(err, target)"
	}
	pass.Reportf(be.Pos(),
		"error compared with %s: use %s, which sees through %%w wrapping", be.Op, op)
}

// checkSwitch flags `switch err { case sentinel: }` over error values.
func checkSwitch(pass *lint.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := pass.Info.Types[sw.Tag].Type
	if tagType == nil || !implementsError(tagType) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isNil(pass, e) {
				continue
			}
			if t := pass.Info.Types[e].Type; t != nil && implementsError(t) {
				pass.Reportf(e.Pos(),
					"error switched against %s with ==: use errors.Is, which sees through %%w wrapping",
					strconv.Quote(lint.ExprString(e)))
			}
		}
	}
}

// isNil reports whether e is the predeclared nil.
func isNil(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType)
}
