// Package sitecheck pins chaos fault-site strings to the declared
// registry in internal/chaos.
//
// Fault injection is consulted by Site name; a typo'd site string
// compiles fine and silently never injects, which defeats the chaos
// soak without failing anything. sitecheck reports:
//
//   - any string literal used as a chaos.Site — whether or not the
//     value matches a registered site, code must reference the declared
//     constant (chaos.SiteCkptLock, ...) so typos cannot survive;
//   - declared Site constants missing from the chaos.Sites() registry
//     listing;
//   - declared Site constants never consulted by any analyzed package
//     outside internal/chaos (dead sites) — reported only on full-tree
//     runs that load both the registry and at least one consumer.
//
// The chaos package's own files (including its tests, which exercise
// the engine with synthetic sites) are exempt from the literal rule.
package sitecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"swapservellm/internal/lint"
)

const chaosPkgSuffix = "internal/chaos"

type siteDecl struct {
	name  string
	value string
	pos   token.Pos
}

type literalUse struct {
	value string
	pos   token.Pos
}

type checker struct {
	declared     map[string]siteDecl // constant name -> decl
	declaredVals map[string]string   // site value -> constant name
	fromSource   bool                // declared came from analyzed chaos source
	literals     []literalUse
	usedConsts   map[string]bool // constant names referenced outside chaos
	sitesFn      *sitesFnInfo
}

type sitesFnInfo struct {
	pos        token.Pos
	referenced map[string]bool
}

// New returns the sitecheck analyzer.
func New() *lint.Analyzer {
	c := &checker{
		declared:     make(map[string]siteDecl),
		declaredVals: make(map[string]string),
		usedConsts:   make(map[string]bool),
	}
	a := &lint.Analyzer{
		Name: "sitecheck",
		Doc:  "chaos fault-site strings must be declared chaos.Site constants; report unused or unregistered sites",
	}
	a.Run = func(pass *lint.Pass) error {
		if lint.PkgPathHasSuffix(pass.Pkg.Path(), chaosPkgSuffix) {
			c.collectDecls(pass)
			c.checkSitesFn(pass)
			return nil
		}
		c.collectUses(pass)
		return nil
	}
	a.Finish = func(pass *lint.Pass) error {
		c.finish(pass)
		return nil
	}
	return a
}

// collectDecls records every Site constant declared in the chaos
// package's source.
func (c *checker) collectDecls(pass *lint.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		cst, ok := scope.Lookup(name).(*types.Const)
		if !ok || !lint.NamedTypeIn(cst.Type(), chaosPkgSuffix, "Site") {
			continue
		}
		value := strings.Trim(cst.Val().ExactString(), `"`)
		c.declared[name] = siteDecl{name: name, value: value, pos: cst.Pos()}
		c.declaredVals[value] = name
		c.fromSource = true
	}
}

// checkSitesFn verifies the Sites() registry listing references every
// declared constant.
func (c *checker) checkSitesFn(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Sites" || fd.Recv != nil {
				continue
			}
			info := &sitesFnInfo{pos: fd.Pos(), referenced: make(map[string]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if cst, ok := pass.Info.Uses[id].(*types.Const); ok &&
					lint.NamedTypeIn(cst.Type(), chaosPkgSuffix, "Site") {
					info.referenced[cst.Name()] = true
				}
				return true
			})
			c.sitesFn = info
		}
	}
}

// collectUses records Site-typed string literals and Site constant
// references in a non-chaos package.
func (c *checker) collectUses(pass *lint.Pass) {
	// ensureDeclared falls back to the imported chaos package when the
	// registry source is not among the analyzed packages (partial runs).
	ensureDeclared := func(t types.Type) {
		if len(c.declared) > 0 {
			return
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return
		}
		scope := named.Obj().Pkg().Scope()
		for _, name := range scope.Names() {
			if cst, ok := scope.Lookup(name).(*types.Const); ok &&
				lint.NamedTypeIn(cst.Type(), chaosPkgSuffix, "Site") {
				value := strings.Trim(cst.Val().ExactString(), `"`)
				c.declared[name] = siteDecl{name: name, value: value, pos: cst.Pos()}
				c.declaredVals[value] = name
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if cst, ok := pass.Info.Uses[n].(*types.Const); ok &&
					lint.NamedTypeIn(cst.Type(), chaosPkgSuffix, "Site") {
					c.usedConsts[cst.Name()] = true
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				tv, ok := pass.Info.Types[n]
				if !ok || tv.Type == nil || !lint.NamedTypeIn(tv.Type, chaosPkgSuffix, "Site") {
					return true
				}
				ensureDeclared(tv.Type)
				c.literals = append(c.literals, literalUse{
					value: strings.Trim(n.Value, `"`+"`"),
					pos:   n.Pos(),
				})
			case *ast.CallExpr:
				// Explicit conversion chaos.Site("...") — the literal keeps
				// type string, so catch it at the conversion.
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[n.Fun]
				if !ok || !tv.IsType() || !lint.NamedTypeIn(tv.Type, chaosPkgSuffix, "Site") {
					return true
				}
				lit, ok := n.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				ensureDeclared(tv.Type)
				c.literals = append(c.literals, literalUse{
					value: strings.Trim(lit.Value, `"`+"`"),
					pos:   lit.Pos(),
				})
			}
			return true
		})
	}
}

// finish reports literal misuse, registry listing gaps, and dead sites.
func (c *checker) finish(pass *lint.Pass) {
	for _, use := range c.literals {
		if name, ok := c.declaredVals[use.value]; ok {
			pass.Reportf(use.pos,
				"string literal %q used as chaos.Site: reference the declared constant chaos.%s so typos cannot disable injection",
				use.value, name)
		} else {
			pass.Reportf(use.pos,
				"site %q does not resolve to any declared chaos.Site constant in internal/chaos",
				use.value)
		}
	}
	if c.sitesFn != nil {
		var missing []string
		for name := range c.declared {
			if !c.sitesFn.referenced[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			pass.Reportf(c.sitesFn.pos,
				"site constant %s is missing from the Sites() registry listing", name)
		}
	}
	// A literal that names a registered site still consults it at
	// runtime: count it as a use so one defect yields one finding (the
	// literal), not a cascading dead-site report as well.
	for _, use := range c.literals {
		if name, ok := c.declaredVals[use.value]; ok {
			c.usedConsts[name] = true
		}
	}
	// Dead sites: only judged when the registry source and at least one
	// consumer were both in the analyzed set, so partial runs stay quiet.
	if c.fromSource && len(c.usedConsts) > 0 {
		var unused []string
		for name := range c.declared {
			if !c.usedConsts[name] {
				unused = append(unused, name)
			}
		}
		sort.Strings(unused)
		for _, name := range unused {
			pass.Reportf(c.declared[name].pos,
				"site constant %s is declared but no analyzed package consults it (dead fault site)", name)
		}
	}
}
