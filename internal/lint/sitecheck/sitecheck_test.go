package sitecheck

import (
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestSitecheck(t *testing.T) {
	linttest.Run(t, "testdata", New(),
		"swapservellm/internal/chaos",
		"example.com/user",
	)
}
