// Package chaos is sitecheck testdata: a fake site registry.
package chaos

type Site string

const (
	SiteAlpha Site = "alpha.one"
	SiteBeta  Site = "beta.two"
	SiteDead  Site = "dead.site" // want `site constant SiteDead is declared but no analyzed package consults it`
	SiteGone  Site = "gone.site" // want `site constant SiteGone is declared but no analyzed package consults it`
)

func Sites() []Site { // want `site constant SiteGone is missing from the Sites\(\) registry listing`
	return []Site{SiteAlpha, SiteBeta, SiteDead}
}

// Synthetic sites inside the chaos package itself are exempt from the
// literal rule (the engine's own tests use them).
func selfTest() Site {
	return Site("synthetic.site")
}
