// Package user is sitecheck testdata: a consumer of the fake registry.
package user

import "swapservellm/internal/chaos"

func consult(s chaos.Site) {}

func uses() {
	consult(chaos.SiteAlpha) // the right way

	consult("alpha.one")       // want `string literal "alpha.one" used as chaos\.Site: reference the declared constant chaos\.SiteAlpha`
	_ = chaos.Site("beta.two") // want `string literal "beta.two" used as chaos\.Site: reference the declared constant chaos\.SiteBeta`

	consult("bogus.site") // want `site "bogus.site" does not resolve to any declared chaos\.Site constant`

	var s chaos.Site = "nope.either" // want `site "nope.either" does not resolve to any declared chaos\.Site constant`
	_ = s

	//swaplint:ignore sitecheck exercising an unregistered site on purpose
	consult("deliberate.unregistered")
}
