package callgraph

import (
	"reflect"
	"testing"
)

func TestDisplayName(t *testing.T) {
	cases := map[string]string{
		"(swapservellm/internal/core.*Controller).SwapOut": "(*core.Controller).SwapOut",
		"(example.com/iface.blocky).M":                     "(iface.blocky).M",
		"swapservellm/internal/core.retryTransient":        "core.retryTransient",
		"main.run":   "main.run",
		"standalone": "standalone",
	}
	for in, want := range cases {
		if got := DisplayName(in); got != want {
			t.Errorf("DisplayName(%q) = %q, want %q", in, got, want)
		}
	}
}

// SCCs must come out callee-first (a component before any component
// that calls into it) with mutually recursive functions grouped.
func TestSCCsCalleeFirst(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddNode(n)
	}
	// a <-> b (one SCC), b -> c, d -> a, c standalone leaf.
	g.AddEdge("a", Edge{To: "b"})
	g.AddEdge("b", Edge{To: "a"})
	g.AddEdge("b", Edge{To: "c"})
	g.AddEdge("d", Edge{To: "a"})

	comps := g.SCCs()
	index := make(map[string]int)
	for i, comp := range comps {
		for _, n := range comp {
			index[n] = i
		}
	}
	if index["a"] != index["b"] {
		t.Errorf("a and b are mutually recursive and must share a component: %v", comps)
	}
	if !(index["c"] < index["b"]) {
		t.Errorf("callee c must be emitted before its caller's component: %v", comps)
	}
	if !(index["a"] < index["d"]) {
		t.Errorf("component {a,b} must be emitted before caller d: %v", comps)
	}
	var all []string
	for _, comp := range comps {
		all = append(all, comp...)
	}
	if len(all) != 4 {
		t.Fatalf("every node appears exactly once, got %v", comps)
	}
}

// A self-loop is its own component.
func TestSCCSelfLoop(t *testing.T) {
	g := NewGraph()
	g.AddNode("x")
	g.AddEdge("x", Edge{To: "x"})
	comps := g.SCCs()
	if !reflect.DeepEqual(comps, [][]string{{"x"}}) {
		t.Errorf("SCCs = %v, want [[x]]", comps)
	}
}
