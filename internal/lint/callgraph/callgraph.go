// Package callgraph builds the interprocedural call graph the
// gatecheck, blockcheck, and lockorder analyzers share. Resolution is
// CHA-style (class-hierarchy analysis): static calls resolve to their
// single callee, while a call through an interface method widens
// conservatively to every named type in the program — source packages
// and their export-data imports alike — that implements the interface.
//
// Functions are identified by their types.Func full name (e.g.
// "(swapservellm/internal/core.*Controller).SwapOut"): the loader
// type-checks each target package independently against export data, so
// the same function is represented by distinct types.Func objects in
// different packages' views, and only the full-name string is a stable
// cross-package identity.
//
// The package also provides Tarjan strongly-connected components over
// the graph, emitted callee-first, which is the evaluation order the
// facts package uses to propagate per-function summaries bottom-up
// (mutually recursive functions converge because an SCC's members share
// one combined summary).
package callgraph

import (
	"go/types"
	"sort"
	"strings"

	"swapservellm/internal/lint"
)

// Key returns fn's stable cross-package identity.
func Key(fn *types.Func) string { return fn.FullName() }

// DisplayName compresses a function key for diagnostics:
// "(swapservellm/internal/core.*Controller).SwapOut" becomes
// "(*core.Controller).SwapOut" and package-level functions keep a
// short "core.retryTransient" form.
func DisplayName(key string) string {
	shorten := func(path string) string {
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	if strings.HasPrefix(key, "(") {
		end := strings.Index(key, ")")
		if end < 0 {
			return key
		}
		recv := key[1:end]
		star := ""
		if i := strings.Index(recv, "*"); i >= 0 {
			star = "*"
			recv = recv[:i] + recv[i+1:]
		}
		if i := strings.LastIndex(recv, "."); i >= 0 {
			recv = shorten(recv[:i]) + "." + recv[i+1:]
		}
		return "(" + star + recv + ")" + key[end+1:]
	}
	if i := strings.LastIndex(key, "."); i >= 0 {
		return shorten(key[:i]) + "." + key[i+1:]
	}
	return key
}

// Resolver answers "which concrete methods can this interface call
// reach": the conservative widening of CHA. It indexes every named type
// visible to the program — the source-checked target packages plus the
// transitive closure of their export-data imports — because a call site
// in one package references interface objects from its own type-check
// universe, and types.Implements only matches within a universe.
type Resolver struct {
	named []*types.Named
	cache map[string][]string
}

// NewResolver indexes the named types of prog's packages and imports.
func NewResolver(prog *lint.Program) *Resolver {
	r := &Resolver{cache: make(map[string][]string)}
	seen := make(map[*types.Package]bool)
	var addScope func(pkg *types.Package)
	addScope = func(pkg *types.Package) {
		if pkg == nil || seen[pkg] {
			return
		}
		seen[pkg] = true
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				r.named = append(r.named, named)
			}
		}
		for _, imp := range pkg.Imports() {
			addScope(imp)
		}
	}
	for _, pkg := range prog.Packages {
		addScope(pkg.Types)
	}
	return r
}

// Implementations returns the keys of every concrete method the
// interface method m may dispatch to, under CHA widening. The result
// is deduplicated by key (the same type appears once per type-check
// universe) and cached per (interface, method).
func (r *Resolver) Implementations(iface *types.Interface, m *types.Func) []string {
	cacheKey := Key(m)
	if got, ok := r.cache[cacheKey]; ok {
		return got
	}
	var keys []string
	dedup := make(map[string]bool)
	for _, named := range r.named {
		if types.IsInterface(named) {
			continue
		}
		var impl types.Type
		if types.Implements(named, iface) {
			impl = named
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			impl = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			k := Key(fn)
			if !dedup[k] {
				dedup[k] = true
				keys = append(keys, k)
			}
		}
	}
	r.cache[cacheKey] = keys
	return keys
}

// Edge is one call site: the callee's key plus flags describing how the
// callee runs relative to the caller.
type Edge struct {
	To string
	// Concurrent marks `go f()` and Gate.Go spawns: the callee runs on
	// its own goroutine, so its blocking does not block the caller and
	// it does not inherit the caller's lock state.
	Concurrent bool
	// Gated marks calls made through Gate.Block/BlockIO: the caller's
	// run token is shed while the callee runs, so callee blocking is
	// sanctioned (it becomes a clock wait, not a stall).
	Gated bool
}

// Graph is the program call graph over function keys. Only functions
// with bodies in the program appear as nodes; edges may point at keys
// without nodes (externals), which SCCs ignores.
type Graph struct {
	Nodes map[string][]Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{Nodes: make(map[string][]Edge)} }

// AddNode ensures key exists as a node.
func (g *Graph) AddNode(key string) {
	if _, ok := g.Nodes[key]; !ok {
		g.Nodes[key] = nil
	}
}

// AddEdge records a call from caller to callee.
func (g *Graph) AddEdge(caller string, e Edge) {
	g.Nodes[caller] = append(g.Nodes[caller], e)
}

// SCCs returns the strongly connected components of the graph in
// callee-first order: every component is emitted after all components
// it calls into. Edges to keys without nodes are skipped. Roots are
// visited in sorted key order so the result is deterministic.
func (g *Graph) SCCs() [][]string {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[string]*nodeState, len(g.Nodes))
	var stack []string
	var sccs [][]string
	next := 0

	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Iterative Tarjan: the frames carry the edge cursor so deep call
	// chains cannot overflow the goroutine stack.
	type frame struct {
		key  string
		edge int
	}
	var strongconnect func(root string)
	strongconnect = func(root string) {
		frames := []frame{{key: root}}
		states[root] = &nodeState{index: next, lowlink: next, onStack: true}
		next++
		stack = append(stack, root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			st := states[f.key]
			advanced := false
			for f.edge < len(g.Nodes[f.key]) {
				e := g.Nodes[f.key][f.edge]
				f.edge++
				if _, isNode := g.Nodes[e.To]; !isNode {
					continue
				}
				cs, visited := states[e.To]
				if !visited {
					states[e.To] = &nodeState{index: next, lowlink: next, onStack: true}
					next++
					stack = append(stack, e.To)
					frames = append(frames, frame{key: e.To})
					advanced = true
					break
				}
				if cs.onStack && cs.index < st.lowlink {
					st.lowlink = cs.index
				}
			}
			if advanced {
				continue
			}
			if st.lowlink == st.index {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[top].onStack = false
					comp = append(comp, top)
					if top == f.key {
						break
					}
				}
				sccs = append(sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := states[frames[len(frames)-1].key]
				if st.lowlink < parent.lowlink {
					parent.lowlink = st.lowlink
				}
			}
		}
	}
	for _, k := range keys {
		if _, visited := states[k]; !visited {
			strongconnect(k)
		}
	}
	return sccs
}
