// Package blocks is blockcheck testdata: no channel, WaitGroup, or
// select blocking inside a critical section unless it runs under the
// gate or carries a //swaplint:block annotation.
package blocks

import (
	"sync"

	"swapservellm/internal/simclock"
)

type box struct {
	mu    sync.Mutex
	ch    chan int
	clock simclock.Clock
}

func (b *box) sendHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 // want `channel send while holding blocks\.box\.mu`
}

func (b *box) recvHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	<-b.ch // want `channel receive while holding blocks\.box\.mu`
}

func (b *box) wgHeld(wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Wait() // want `WaitGroup\.Wait while holding blocks\.box\.mu`
}

func (b *box) selectHeld(done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select while holding blocks\.box\.mu`
	case <-b.ch:
	case <-done:
	}
}

// Blocking outside any critical section is fine.
func (b *box) recvFree() {
	<-b.ch
}

// Gated blocking sheds the run token — sanctioned (the gate discipline
// of the acquisition itself is gatecheck's concern, not blockcheck's).
func (b *box) recvGated() {
	b.mu.Lock()
	defer b.mu.Unlock()
	simclock.GateFor(b.clock).Block(func() { <-b.ch })
}

// Annotated: the author certifies the send cannot stall the gate.
func (b *box) sendAnnotated() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 //swaplint:block reason=buffered handoff channel with capacity checked above
}

// drain blocks; its summary carries the channel receive.
func (b *box) drain() {
	<-b.ch
}

// Calling a blocking function while holding the lock is reported at
// the call site, naming the path down to the blocking operation.
func (b *box) drainHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drain() // want `call may block \(.*drain.*channel receive.*\) while holding blocks\.box\.mu`
}

// The annotation also covers interprocedural blocking.
func (b *box) drainAnnotated() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drain() //swaplint:block reason=ch is closed before drainAnnotated can run
}

// A goroutine spawned under the lock does not inherit the critical
// section.
func (b *box) spawnHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.drain()
}
