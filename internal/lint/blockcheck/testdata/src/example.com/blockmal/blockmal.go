// Package blockmal seeds one malformed //swaplint:block annotation —
// checked programmatically because the diagnostic lands on the
// directive comment's own line, which cannot also carry a want
// comment.
package blockmal

import "sync"

type bin struct {
	mu sync.Mutex
	ch chan int
}

func (b *bin) send() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 //swaplint:block because it cannot stall
}
