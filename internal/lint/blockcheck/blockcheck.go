// Package blockcheck forbids blocking outside the gate token protocol
// while inside a critical section: no channel send/receive, select,
// sync.WaitGroup.Wait, network, or subprocess call may be reachable —
// directly or through any call chain — while a mutex is held, unless
// it runs under simclock.Gate.Block/BlockIO (which sheds the run
// token) or the site carries an explicit annotation:
//
//	//swaplint:block reason=<why this cannot stall the gate>
//
// A goroutine that parks inside a critical section without shedding
// its token stalls virtual-time quiescence detection for the whole
// process; one that parks while another goroutine needs its lock to
// finish deadlocks the advancer. The interprocedural summaries come
// from the facts package; blocking reached behind Gate.Block is
// already reclassified as a sanctioned wait there and is gatecheck's
// concern, not this analyzer's.
package blockcheck

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"

	"swapservellm/internal/lint"
	"swapservellm/internal/lint/callgraph"
	"swapservellm/internal/lint/facts"
)

// New returns the blockcheck analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "blockcheck",
		Doc:  "no channel, WaitGroup, network, or subprocess blocking inside a critical section unless gated or annotated //swaplint:block reason=...",
		Run:  run,
	}
}

type finding struct {
	pos token.Pos
	pkg *types.Package
	msg string
}

type global struct {
	findings []finding
}

func analyze(prog *lint.Program) *global {
	return prog.Cached("blockcheck.global", func() interface{} {
		f := facts.Of(prog)
		g := &global{}
		for _, ff := range f.Funcs {
			for i := range ff.Ops {
				op := &ff.Ops[i]
				if len(op.Held) == 0 || op.Gated {
					continue
				}
				switch op.Kind {
				case facts.OpBlock:
					if f.BlockAnnotated(prog.Fset, op.Pos) {
						continue
					}
					g.findings = append(g.findings, finding{
						pos: op.Pos, pkg: ff.Pkg.Types,
						msg: op.Detail + " while holding " + heldDesc(op.Held) + "; wrap it in gate.Block/BlockIO or annotate //swaplint:block reason=...",
					})
				case facts.OpCall:
					if op.Concurrent {
						continue
					}
					sum := f.Summaries[op.Callee]
					if sum == nil || sum.Block == nil {
						continue
					}
					if f.BlockAnnotated(prog.Fset, op.Pos) {
						continue
					}
					t := sum.Block.Prepend(facts.Step{Func: callgraph.DisplayName(op.Callee), Pos: op.Pos})
					g.findings = append(g.findings, finding{
						pos: op.Pos, pkg: ff.Pkg.Types,
						msg: "call may block (" + t.String() + " at " + shortPos(prog.Fset.Position(t.Pos)) + ") while holding " + heldDesc(op.Held) + "; gate the call or annotate //swaplint:block reason=...",
					})
				}
			}
		}
		return g
	}).(*global)
}

func run(pass *lint.Pass) error {
	g := analyze(pass.Program)
	for _, fd := range g.findings {
		if fd.pkg == pass.Pkg {
			pass.Reportf(fd.pos, "%s", fd.msg)
		}
	}
	f := facts.Of(pass.Program)
	for _, pos := range f.MalformedBlockAnns {
		if fileInPass(pass, pos) {
			pass.Reportf(pos, "malformed directive: want //swaplint:block reason=<why this cannot stall the gate>")
		}
	}
	return nil
}

// heldDesc names the most recently acquired lock of the critical
// section.
func heldDesc(held []facts.HeldLock) string {
	h := held[len(held)-1]
	s := h.Class.String()
	if n := len(held) - 1; n == 1 {
		s += " (and 1 other lock)"
	} else if n > 1 {
		s += fmt.Sprintf(" (and %d other locks)", n)
	}
	return s
}

func fileInPass(pass *lint.Pass, pos token.Pos) bool {
	name := pass.Fset.Position(pos).Filename
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename == name {
			return true
		}
	}
	return false
}

func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
