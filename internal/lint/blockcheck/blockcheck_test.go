package blockcheck

import (
	"strings"
	"testing"

	"swapservellm/internal/lint/linttest"
)

func TestBlockcheck(t *testing.T) {
	linttest.Run(t, "testdata", New(), "example.com/blocks")
}

// A //swaplint:block directive without reason= is itself a finding and
// does not suppress the blocking diagnostic.
func TestMalformedAnnotation(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata", New(), "example.com/blockmal")
	var malformed, blocking bool
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed directive") && strings.Contains(d.Message, "swaplint:block reason=") {
			malformed = true
		}
		if strings.Contains(d.Message, "channel send while holding") {
			blocking = true
		}
	}
	if !malformed {
		t.Errorf("no malformed-directive finding in %v", diags)
	}
	if !blocking {
		t.Errorf("malformed annotation must not suppress the blocking finding; got %v", diags)
	}
}
