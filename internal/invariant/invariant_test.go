package invariant

import (
	"context"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/gpu"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

const gib = int64(1) << 30

func newDriver(t *testing.T) (*cudackpt.Driver, *gpu.Topology) {
	t.Helper()
	clock := simclock.NewScaled(time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC), simclock.DefaultScale)
	topo := gpu.NewTopology(perfmodel.GPUH100, 1, 80*gib)
	return cudackpt.NewDriver(clock, perfmodel.H100(), 0), topo
}

func TestCheckDriverCleanAndDirty(t *testing.T) {
	d, topo := newDriver(t)
	dev, _ := topo.Device(0)
	dev.Alloc("p", 10*gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)

	var r Report
	CheckDriver(&r, d, topo)
	if !r.Ok() {
		t.Fatalf("clean running state flagged: %s", r.String())
	}

	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	r = Report{}
	CheckDriver(&r, d, topo)
	if !r.Ok() {
		t.Fatalf("clean checkpointed state flagged: %s", r.String())
	}

	// Corrupt one side of the reconciliation: a checkpointed process
	// that still holds device memory must be flagged.
	dev.Alloc("p", gib)
	r = Report{}
	CheckDriver(&r, d, topo)
	if r.Ok() {
		t.Fatal("checkpointed process holding device memory not flagged")
	}
	if !strings.Contains(r.String(), "driver.accounting") {
		t.Fatalf("unexpected violations: %s", r.String())
	}
}

func TestCheckCkptTrace(t *testing.T) {
	tr := chaos.NewTrace()
	tr.Record("ckpt", "p", "running", "locked")
	tr.Record("ckpt", "p", "locked", "checkpointed")
	tr.Record("ckpt", "p", "checkpointed", "locked")
	tr.Record("ckpt", "p", "locked", "running")
	var r Report
	CheckCkptTrace(&r, tr)
	if !r.Ok() {
		t.Fatalf("legal cycle flagged: %s", r.String())
	}

	// A double-checkpoint breaks continuity.
	tr.Record("ckpt", "q", "running", "locked")
	tr.Record("ckpt", "q", "locked", "checkpointed")
	tr.Record("ckpt", "q", "locked", "checkpointed")
	r = Report{}
	CheckCkptTrace(&r, tr)
	if r.Ok() {
		t.Fatal("double checkpoint not flagged")
	}

	// An illegal edge (running -> checkpointed) is flagged even when
	// continuity holds.
	tr2 := chaos.NewTrace()
	tr2.Record("ckpt", "x", "running", "checkpointed")
	r = Report{}
	CheckCkptTrace(&r, tr2)
	if r.Ok() {
		t.Fatal("illegal edge not flagged")
	}
}

func TestCheckNodeTrace(t *testing.T) {
	tr := chaos.NewTrace()
	tr.Record("node", "n1", "joining", "healthy")
	tr.Record("node", "n1", "healthy", "down")
	tr.Record("node", "n1", "down", "healthy")
	tr.Record("node", "n1", "healthy", "draining")
	tr.Record("node", "n1", "draining", "healthy")
	var r Report
	CheckNodeTrace(&r, tr)
	if !r.Ok() {
		t.Fatalf("legal node lifecycle flagged: %s", r.String())
	}

	// down -> draining is not a legal edge.
	tr.Record("node", "n2", "joining", "down")
	tr.Record("node", "n2", "down", "draining")
	r = Report{}
	CheckNodeTrace(&r, tr)
	if r.Ok() {
		t.Fatal("down -> draining not flagged")
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Accept("a")
	l.Accept("b")
	l.Accept("c")
	l.Finish("a")
	l.Finish("b")
	l.Finish("b") // double termination
	l.Finish("ghost")
	var r Report
	l.Check(&r)
	if len(r.Violations) != 3 {
		t.Fatalf("violations = %d (%s), want 3 (b twice, c never, ghost orphan)", len(r.Violations), r.String())
	}
}

func TestCheckDriverMidTransferConservation(t *testing.T) {
	// The conservation rule must hold at every chunk boundary of an
	// in-flight checkpoint and restore: device bytes + image bytes ==
	// transfer goal, with the host pledge equal to the un-transferred
	// remainder. The check runs from the chunk hook, i.e. genuinely
	// mid-transfer.
	d, topo := newDriver(t)
	dev, _ := topo.Device(0)
	dev.Alloc("p", 10*gib)
	d.Register("p", dev, perfmodel.EngineVLLM, gib)

	boundaries := 0
	var failures []string
	d.OnChunk(func(ev cudackpt.ChunkEvent) {
		boundaries++
		var r Report
		CheckDriver(&r, d, topo)
		if !r.Ok() {
			failures = append(failures, r.String())
		}
	})

	if _, err := d.Suspend(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Resume(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if boundaries < 20 {
		t.Fatalf("expected >= 20 chunk boundaries for a 10 GiB round trip, got %d", boundaries)
	}
	if len(failures) > 0 {
		t.Fatalf("invariants violated mid-transfer:\n%s", strings.Join(failures, "\n"))
	}
}
