// Package invariant is the system-wide consistency checker the chaos
// harness runs after (and during) fault injection. Each check reconciles
// two independent views of the same state — driver bookkeeping vs device
// allocations, backend states vs driver states, transition logs vs the
// legal state machines — so a fault that corrupts either side surfaces
// as a reported Violation instead of silent drift.
package invariant

import (
	"fmt"
	"strings"
	"sync"

	"swapservellm/internal/chaos"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/gpu"
)

// Violation is one invariant breach.
type Violation struct {
	// Check names the invariant that failed (e.g. "driver.accounting").
	Check string
	// Subject is the entity in breach (a pid, backend, node, request).
	Subject string
	// Detail is the human-readable discrepancy.
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	return fmt.Sprintf("%s[%s]: %s", v.Check, v.Subject, v.Detail)
}

// Report accumulates violations across checks. The zero value is ready
// to use.
type Report struct {
	Violations []Violation
}

// Addf appends a violation.
func (r *Report) Addf(check, subject, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Check:   check,
		Subject: subject,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// Ok reports whether no invariant was violated.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders all violations, one per line.
func (r *Report) String() string {
	if r.Ok() {
		return "ok"
	}
	lines := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		lines[i] = v.String()
	}
	return strings.Join(lines, "\n")
}

// CheckDriver reconciles the checkpoint driver's bookkeeping against
// the GPU devices: a checkpointed process holds no device memory and
// its image is charged to exactly one tier; a resident process holds no
// image; the host/disk usage totals equal the sum over images; no
// device is over-committed. A process mid-chunked-transfer is instead
// held to the conservation rule — its device allocation plus its image
// must equal the transfer's total at every chunk boundary — and the
// host pledge must equal the un-transferred remainder of every in-flight
// checkpoint. The whole driver view comes from one consistent snapshot,
// so the check is safe to run concurrently with in-flight transfers.
func CheckDriver(r *Report, d *cudackpt.Driver, topo *gpu.Topology) {
	snap := d.Audit()
	var wantHost, wantDisk, wantPledged int64
	for _, p := range snap.Procs {
		if p.ImageBytes < 0 {
			r.Addf("driver.accounting", p.PID, "negative image size %d", p.ImageBytes)
		}
		if p.Transferring {
			if p.DeviceBytes+p.ImageBytes != p.TransferGoal {
				r.Addf("driver.conservation", p.PID,
					"mid-transfer device bytes %d + image bytes %d != transfer goal %d",
					p.DeviceBytes, p.ImageBytes, p.TransferGoal)
			}
			// In-flight image bytes are charged to the image's tier; a
			// checkpoint in flight (Locked) additionally pledges the
			// un-transferred remainder against the host cap.
			if p.Loc == cudackpt.LocDisk {
				wantDisk += p.ImageBytes
			} else {
				wantHost += p.ImageBytes
			}
			if p.State == cudackpt.StateLocked {
				wantPledged += p.TransferGoal - p.ImageBytes
			}
			continue
		}
		if p.State == cudackpt.StateCheckpointed {
			if p.DeviceBytes != 0 {
				r.Addf("driver.accounting", p.PID,
					"checkpointed but still holds %d device bytes", p.DeviceBytes)
			}
			if p.Loc == cudackpt.LocDisk {
				wantDisk += p.ImageBytes
			} else {
				wantHost += p.ImageBytes
			}
		} else if p.ImageBytes != 0 {
			r.Addf("driver.accounting", p.PID,
				"state %v but holds a %d-byte image", p.State, p.ImageBytes)
		}
	}
	if snap.HostUsed != wantHost {
		r.Addf("driver.accounting", "host",
			"HostUsed=%d but checkpointed RAM images sum to %d", snap.HostUsed, wantHost)
	}
	if snap.DiskUsed != wantDisk {
		r.Addf("driver.accounting", "disk",
			"DiskUsed=%d but spilled images sum to %d", snap.DiskUsed, wantDisk)
	}
	if snap.HostPledged != wantPledged {
		r.Addf("driver.pledge", "host",
			"HostPledged=%d but in-flight checkpoints still owe %d", snap.HostPledged, wantPledged)
	}
	for _, dev := range topo.Devices() {
		// One Owners() snapshot keeps the per-device view consistent even
		// while transfers resize allocations concurrently.
		var used int64
		for _, o := range dev.Owners() {
			if o.Bytes < 0 {
				r.Addf("gpu.accounting", fmt.Sprintf("gpu%d", dev.ID()),
					"owner %s holds negative bytes %d", o.Name, o.Bytes)
			}
			used += o.Bytes
		}
		if used < 0 {
			r.Addf("gpu.accounting", fmt.Sprintf("gpu%d", dev.ID()), "negative usage %d", used)
		}
		if used > dev.Total() {
			r.Addf("gpu.accounting", fmt.Sprintf("gpu%d", dev.ID()),
				"used %d exceeds capacity %d", used, dev.Total())
		}
	}
}

// legalCkpt is the cuda-checkpoint state machine: the only transitions
// the driver may commit. Anything else — in particular a repeated
// checkpoint or restore — is a violation.
var legalCkpt = map[string][]string{
	"running":      {"locked"},
	"locked":       {"checkpointed", "running"},
	"checkpointed": {"locked"},
}

// legalNode is the cluster registry state machine (see
// cluster.NodeState): joining promotes or dies, healthy drains or dies,
// draining returns or dies, down only rejoins through healthy.
var legalNode = map[string][]string{
	"joining":  {"healthy", "down"},
	"healthy":  {"draining", "down"},
	"draining": {"healthy", "down"},
	"down":     {"healthy"},
}

// CheckCkptTrace validates every "ckpt" transition in the trace against
// the driver state machine, per process: each event must continue from
// the previous event's target state (processes start Running), and each
// step must be legal. A double-checkpoint or double-restore breaks the
// continuity and is reported.
func CheckCkptTrace(r *Report, tr *chaos.Trace) {
	checkTrace(r, tr, "ckpt", "running", legalCkpt)
}

// CheckNodeTrace validates every "node" transition against the registry
// state machine (nodes start Joining).
func CheckNodeTrace(r *Report, tr *chaos.Trace) {
	checkTrace(r, tr, "node", "joining", legalNode)
}

func checkTrace(r *Report, tr *chaos.Trace, kind, initial string, legal map[string][]string) {
	last := make(map[string]string)
	for _, ev := range tr.Events() {
		if ev.Kind != kind {
			continue
		}
		prev, seen := last[ev.Subject]
		if !seen {
			prev = initial
		}
		if ev.From != prev {
			r.Addf(kind+".continuity", ev.Subject,
				"event #%d claims transition from %q but the last recorded state is %q",
				ev.Seq, ev.From, prev)
		}
		if !contains(legal[ev.From], ev.To) {
			r.Addf(kind+".transition", ev.Subject,
				"event #%d: illegal transition %q -> %q", ev.Seq, ev.From, ev.To)
		}
		last[ev.Subject] = ev.To
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// Ledger proves every accepted request terminates exactly once. The
// workload calls Accept when a request is admitted and Finish when its
// response (success or error) arrives; Check flags requests that never
// finished or finished more than once.
type Ledger struct {
	mu       sync.Mutex
	accepted map[string]int
	orphans  []string
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{accepted: make(map[string]int)}
}

// Accept records the admission of a request.
func (l *Ledger) Accept(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.accepted[id]; !dup {
		l.accepted[id] = 0
	}
}

// Finish records one termination (success or failure) of a request.
func (l *Ledger) Finish(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.accepted[id]; !ok {
		l.orphans = append(l.orphans, id)
		return
	}
	l.accepted[id]++
}

// Check reports every accepted request whose termination count is not
// exactly one, and every termination for a request never accepted.
func (l *Ledger) Check(r *Report) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.accepted))
	for id := range l.accepted {
		ids = append(ids, id)
	}
	sortStrings(ids)
	for _, id := range ids {
		if n := l.accepted[id]; n != 1 {
			r.Addf("request.termination", id, "terminated %d times, want exactly 1", n)
		}
	}
	for _, id := range l.orphans {
		r.Addf("request.termination", id, "terminated without being accepted")
	}
}

// sortStrings is a dependency-free insertion sort (the ledger is small).
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
