package invariant

import (
	"context"
	"errors"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// TestExchangeCanceledMidRestoreLeavesConsistentState cancels a
// sequential swap-exchange between the target's restore chunks and
// checks the whole-system rollback contract with the same invariants
// the chaos soak uses: the aborted swap-in rolls the target back to
// SwappedOut, every driver/task-manager ledger balances at quiescence,
// and a fresh ctx can still swap the target in. It lives here (not in
// package core) because CheckServer would otherwise be an import cycle.
func TestExchangeCanceledMidRestoreLeavesConsistentState(t *testing.T) {
	cfg := config.Default()
	cfg.Models = []config.Model{
		{Name: "llama3.2:1b-fp16", Engine: "vllm"},
		{Name: "llama3.2:3b-fp16", Engine: "vllm", KeepWarm: true},
	}
	epoch := time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)
	s, err := core.New(cfg, core.Options{Clock: simclock.NewScaled(epoch, 20000)})
	if err != nil {
		t.Fatal(err)
	}
	startCtx, cancelStart := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelStart()
	if err := s.Start(startCtx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	target, _ := s.Backend("llama3.2:1b-fp16")
	victim, _ := s.Backend("llama3.2:3b-fp16")

	// Cancel after the target's second committed restore chunk: the
	// victim's checkpoint has fully landed, the target's H2D transfer is
	// mid-flight.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var restored int
	s.Driver().OnChunk(func(ev cudackpt.ChunkEvent) {
		if ev.PID == target.Container().ID() && ev.Dir == perfmodel.DirH2D {
			restored++
			if restored == 2 {
				cancel()
			}
		}
	})
	err = s.Controller().SwapExchange(ctx, victim, target)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SwapExchange = %v, want context.Canceled", err)
	}
	if st := target.State(); st != core.BackendSwappedOut {
		t.Fatalf("target state after cancelled restore = %v, want swapped-out", st)
	}
	if st := victim.State(); st != core.BackendSwappedOut {
		t.Fatalf("victim state after cancelled exchange = %v, want swapped-out", st)
	}

	// The aborted exchange must leave no half-claimed capacity behind:
	// the same quiescent-state audit the chaos harness runs.
	var r Report
	CheckServer(&r, s)
	if !r.Ok() {
		t.Fatalf("invariants violated after cancelled exchange:\n%s", r.String())
	}

	// The rollback is recoverable, not just consistent: a live ctx
	// swaps the target in from its intact host image.
	if err := s.Controller().SwapIn(context.Background(), target); err != nil {
		t.Fatalf("SwapIn retry after cancel: %v", err)
	}
	if st := target.State(); st != core.BackendRunning {
		t.Fatalf("target state after retry = %v, want running", st)
	}
	r = Report{}
	CheckServer(&r, s)
	if !r.Ok() {
		t.Fatalf("invariants violated after recovery swap-in:\n%s", r.String())
	}
}

// TestExchangeCanceledMidCheckpointRecoversVictim cancels the exchange
// while the victim's checkpoint is still draining. The sequential path
// surfaces the cancellation from SwapOut; the rollback must return the
// victim to Running (its device state never fully left) and the system
// must audit clean.
func TestExchangeCanceledMidCheckpointRecoversVictim(t *testing.T) {
	cfg := config.Default()
	cfg.Models = []config.Model{
		{Name: "llama3.2:1b-fp16", Engine: "vllm"},
		{Name: "llama3.2:3b-fp16", Engine: "vllm", KeepWarm: true},
	}
	epoch := time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)
	s, err := core.New(cfg, core.Options{Clock: simclock.NewScaled(epoch, 20000)})
	if err != nil {
		t.Fatal(err)
	}
	startCtx, cancelStart := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelStart()
	if err := s.Start(startCtx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	target, _ := s.Backend("llama3.2:1b-fp16")
	victim, _ := s.Backend("llama3.2:3b-fp16")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var saved int
	s.Driver().OnChunk(func(ev cudackpt.ChunkEvent) {
		if ev.PID == victim.Container().ID() && ev.Dir == perfmodel.DirD2H {
			saved++
			if saved == 2 {
				cancel()
			}
		}
	})
	err = s.Controller().SwapExchange(ctx, victim, target)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SwapExchange = %v, want context.Canceled", err)
	}
	if st := victim.State(); st != core.BackendRunning {
		t.Fatalf("victim state after cancelled checkpoint = %v, want running", st)
	}
	if st := target.State(); st != core.BackendSwappedOut {
		t.Fatalf("target state after cancelled exchange = %v, want swapped-out", st)
	}
	var r Report
	CheckServer(&r, s)
	if !r.Ok() {
		t.Fatalf("invariants violated after cancelled checkpoint:\n%s", r.String())
	}
}
