package invariant

import (
	"swapservellm/internal/core"
	"swapservellm/internal/cudackpt"
)

// CheckServer validates a quiescent (no in-flight requests) single-node
// deployment: every backend has settled into Running, SwappedOut, or —
// under persistent injected faults that exhaust every rollback — Failed;
// for the live states the backend state agrees with the driver's
// checkpoint state for its container, no reservation headroom leaked,
// and nothing is stuck waiting for capacity. Call only after the
// workload has drained — transitional states are legitimate mid-request.
func CheckServer(r *Report, s *core.Server) {
	for _, b := range s.Backends() {
		st := b.State()
		if st == core.BackendFailed {
			// A legal terminal state when rollbacks were themselves faulted;
			// the driver accounting below still must balance.
			continue
		}
		if st != core.BackendRunning && st != core.BackendSwappedOut {
			r.Addf("backend.settled", b.Name(), "state %v at quiescence", st)
			continue
		}
		ds, err := s.Driver().State(b.Container().ID())
		if err != nil {
			r.Addf("backend.driver", b.Name(), "driver state: %v", err)
			continue
		}
		switch {
		case st == core.BackendSwappedOut && ds != cudackpt.StateCheckpointed:
			r.Addf("backend.driver", b.Name(), "swapped out but driver state is %v", ds)
		case st == core.BackendRunning && ds != cudackpt.StateRunning:
			r.Addf("backend.driver", b.Name(), "running but driver state is %v", ds)
		}
		if p := b.Pending(); p != 0 {
			r.Addf("backend.settled", b.Name(), "%d pending requests at quiescence", p)
		}
	}
	for i := 0; i < s.Topology().Len(); i++ {
		if got := s.TaskManager().Reserved(i); got != 0 {
			r.Addf("taskmgr.reservations", "gpu", "gpu %d holds %d reserved bytes at quiescence", i, got)
		}
	}
	if n := s.TaskManager().PendingCount(); n != 0 {
		r.Addf("taskmgr.reservations", "queue", "%d reservations still pending at quiescence", n)
	}
	CheckDriver(r, s.Driver(), s.Topology())
}
