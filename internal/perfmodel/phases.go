package perfmodel

import (
	"math"
	"time"

	"swapservellm/internal/models"
)

// Multimodal prompt costing: attached media charge the prompt budget in
// token equivalents (the projector output consumed by the LLM), on top
// of the encoder time the testbed charges per image / per second.
const (
	// VisionTokensPerImage is the prompt-token equivalent of one image
	// (a 24×24 patch grid, the LLaVA/CLIP ViT-L convention).
	VisionTokensPerImage = 576
	// AudioTokensPerSec is the prompt-token equivalent of one second of
	// audio (the Whisper-style 50 Hz frame rate after the encoder).
	AudioTokensPerSec = 50
)

// batchEfficiency is the throughput multiplier an encoder-only forward
// pass gains from batching n inputs together: saturating from 1× at
// batch 1 toward 4× as the batch fills the GPU (1 + 3·(1 − e^(−n/16))).
// Embedding and rerank servers batch aggressively, which is why their
// compute curves are much cheaper per input than chat prefill.
func batchEfficiency(n int) float64 {
	if n < 1 {
		n = 1
	}
	return 1 + 3*(1-math.Exp(-float64(n)/16))
}

// encodePassTime is one batched encoder-only forward pass over
// totalTokens of input split across batch inputs, at the prefill
// compute rate scaled by the batch-shape efficiency.
func (t Testbed) encodePassTime(e EngineKind, m models.Model, batch, totalTokens int) time.Duration {
	if totalTokens <= 0 {
		return 0
	}
	rate := t.PrefillTokensPerSec(e, m) * batchEfficiency(batch)
	return time.Duration(float64(totalTokens) / rate * float64(time.Second))
}

// EmbedTime returns the simulated duration to embed a batch of inputs
// totalling totalTokens: one encoder pass plus a per-batch pooling
// overhead.
func (t Testbed) EmbedTime(e EngineKind, m models.Model, batch, totalTokens int) time.Duration {
	if batch <= 0 {
		return 0
	}
	return 2*time.Millisecond + t.encodePassTime(e, m, batch, totalTokens)
}

// RerankTime returns the simulated duration to score docs query-document
// pairs totalling totalTokens. Cross-encoder scoring re-reads the query
// with every document, so totalTokens should already count the query
// once per pair; the batch shape is the document count.
func (t Testbed) RerankTime(e EngineKind, m models.Model, docs, totalTokens int) time.Duration {
	if docs <= 0 {
		return 0
	}
	return 2*time.Millisecond + t.encodePassTime(e, m, docs, totalTokens)
}

// VisionEncodeTime returns the encoder time for images attached images.
func (t Testbed) VisionEncodeTime(images int) time.Duration {
	if images <= 0 {
		return 0
	}
	return time.Duration(images) * t.VisionEncodePerImage
}

// AudioEncodeTime returns the encoder time for seconds of attached audio.
func (t Testbed) AudioEncodeTime(seconds float64) time.Duration {
	if seconds <= 0 {
		return 0
	}
	return time.Duration(seconds * float64(t.AudioEncodePerSec))
}
