package perfmodel

import (
	"testing"
	"time"

	"swapservellm/internal/models"
)

func phasesModel() models.Model {
	return models.Model{
		Name: "m", Family: models.FamilyLLaMA,
		Params: 1_000_000_000, Quant: models.QuantFP16,
	}
}

func TestBatchEfficiencyShape(t *testing.T) {
	if got := batchEfficiency(1); got < 1 || got > 1.3 {
		t.Fatalf("batchEfficiency(1) = %v, want ~1", got)
	}
	if batchEfficiency(8) <= batchEfficiency(1) || batchEfficiency(64) <= batchEfficiency(8) {
		t.Fatal("batch efficiency must grow with batch size")
	}
	if got := batchEfficiency(1 << 20); got > 4 {
		t.Fatalf("batch efficiency must saturate under 4x, got %v", got)
	}
}

func TestEmbedTimeBatchShape(t *testing.T) {
	tb := H100()
	m := phasesModel()
	// Embedding 32 chunks in one call must beat 32 singleton calls: the
	// batched pass amortizes and gains encoder efficiency.
	batched := tb.EmbedTime(EngineVLLM, m, 32, 32*300)
	var serial time.Duration
	for i := 0; i < 32; i++ {
		serial += tb.EmbedTime(EngineVLLM, m, 1, 300)
	}
	if batched >= serial {
		t.Fatalf("batched embed (%v) must be cheaper than serial (%v)", batched, serial)
	}
	if tb.EmbedTime(EngineVLLM, m, 0, 300) != 0 {
		t.Fatal("empty batch must cost nothing")
	}
	if tb.EmbedTime(EngineVLLM, m, 4, 600) <= tb.EmbedTime(EngineVLLM, m, 4, 300) {
		t.Fatal("more tokens must cost more at a fixed batch shape")
	}
}

func TestRerankTimeScalesWithDocs(t *testing.T) {
	tb := A100()
	m := phasesModel()
	few := tb.RerankTime(EngineVLLM, m, 2, 2*400)
	many := tb.RerankTime(EngineVLLM, m, 10, 10*400)
	if many <= few {
		t.Fatalf("10 docs (%v) must cost more than 2 (%v)", many, few)
	}
	if tb.RerankTime(EngineVLLM, m, 0, 0) != 0 {
		t.Fatal("empty rerank must cost nothing")
	}
}

func TestMultimodalEncodeTimes(t *testing.T) {
	tb := H100()
	if tb.VisionEncodeTime(0) != 0 || tb.AudioEncodeTime(0) != 0 {
		t.Fatal("no attachments, no encoder cost")
	}
	if got := tb.VisionEncodeTime(3); got != 3*tb.VisionEncodePerImage {
		t.Fatalf("VisionEncodeTime(3) = %v", got)
	}
	if got := tb.AudioEncodeTime(2.5); got != time.Duration(2.5*float64(tb.AudioEncodePerSec)) {
		t.Fatalf("AudioEncodeTime(2.5) = %v", got)
	}
	// Both testbeds must carry the encoder constants.
	if A100().VisionEncodePerImage <= 0 || A100().AudioEncodePerSec <= 0 {
		t.Fatal("A100 profile missing multimodal encoder constants")
	}
}
