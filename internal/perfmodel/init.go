package perfmodel

import (
	"math"
	"time"

	"swapservellm/internal/models"
)

// mathPow is math.Pow; declared here so perfmodel.go's fitted-curve helper
// reads cleanly.
func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }

// InitBreakdown decomposes an engine's cold-start initialization into the
// phases reported in Table 1. Engines that skip a phase report zero for it.
type InitBreakdown struct {
	// Load is the model-weight loading time (storage read + H2D copy).
	Load time.Duration
	// Compile is the torch.compile / JIT kernel-compilation time.
	Compile time.Duration
	// CUDAGraph is the CUDA-graph capture time.
	CUDAGraph time.Duration
	// Other covers the remaining engine startup work: process launch,
	// tokenizer initialization, memory profiling, KV-cache allocation.
	Other time.Duration
}

// Total returns the full engine initialization time (sum of phases).
func (b InitBreakdown) Total() time.Duration {
	return b.Load + b.Compile + b.CUDAGraph + b.Other
}

// scale multiplies the compute phases (Compile, CUDAGraph, Other) by f,
// leaving the I/O-bound Load untouched.
func (b InitBreakdown) scale(f float64) InitBreakdown {
	b.Compile = time.Duration(float64(b.Compile) * f)
	b.CUDAGraph = time.Duration(float64(b.CUDAGraph) * f)
	b.Other = time.Duration(float64(b.Other) * f)
	return b
}

// EngineInit returns the initialization breakdown for engine e serving
// model m on this testbed, reading weights from tier. Exact Table 1 anchors
// are used when available (vLLM on H100 with FP16 models); the parametric
// formulas below cover everything else.
func (t Testbed) EngineInit(e EngineKind, m models.Model, tier StorageTier) InitBreakdown {
	switch e {
	case EngineVLLM:
		return t.vllmInit(m, tier)
	case EngineOllama:
		return t.ollamaInit(m, tier)
	case EngineSGLang:
		return t.sglangInit(m, tier)
	case EngineTRTLLM:
		return t.trtllmInit(m, tier)
	default:
		return t.vllmInit(m, tier)
	}
}

// loadPhase models reading the weight file from storage and copying it to
// the device.
func (t Testbed) loadPhase(m models.Model, tier StorageTier) time.Duration {
	w := m.WeightBytes()
	return t.StorageReadTime(tier, w) + t.H2DTime(w)
}

// secs converts a float seconds value to a Duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// vllmInit: anchored to Table 1 for the ten measured models; the fallback
// fits compile ≈ torch.compile time and CUDA-graph capture growth in model
// size, with Gemma's larger vocabulary/architecture constants.
func (t Testbed) vllmInit(m models.Model, tier StorageTier) InitBreakdown {
	if a, ok := table1Anchor(m.Name); ok && t.GPU == GPUH100 && tier == TierDisk {
		return a
	}
	b := InitBreakdown{Load: t.loadPhase(m, tier)}
	pb := m.ParamsB()
	if m.Family == models.FamilyGemma || m.Family == models.FamilyGemma3 {
		b.Compile = secs(39 + 1.5*pb)
		b.CUDAGraph = secs(20 + 0.45*pb)
		b.Other = secs(15 + 0.9*pb)
	} else {
		b.Compile = secs(14.5 + 2.0*pb)
		b.CUDAGraph = secs(13.5 + 0.55*pb)
		b.Other = secs(3 + 0.6*pb)
	}
	return b.scale(t.InitScale)
}

// ollamaInit: llama.cpp runners skip compilation and graph capture entirely
// (§2.3) — loading the GGUF file dominates, plus runner spawn/tokenizer.
// Fitted to Figure 6b: 1B FP16 loads in 1.96 s, 14B FP16 in 5.93 s on H100.
func (t Testbed) ollamaInit(m models.Model, tier StorageTier) InitBreakdown {
	pb := m.ParamsB()
	b := InitBreakdown{
		Load:  t.loadPhase(m, tier),
		Other: secs(1.2 + 0.03*pb),
	}
	return b.scale(t.InitScale)
}

// sglangInit: no torch.compile by default, but CUDA-graph capture and a
// heavier runtime bring it to ~22 s for LLaMA 3.1-8B (Figure 2).
func (t Testbed) sglangInit(m models.Model, tier StorageTier) InitBreakdown {
	pb := m.ParamsB()
	b := InitBreakdown{
		Load:      t.loadPhase(m, tier),
		CUDAGraph: secs(10 + 0.35*pb),
		Other:     secs(3 + 0.20*pb),
	}
	return b.scale(t.InitScale)
}

// trtllmInit: the TensorRT engine build (JIT kernel selection and graph
// optimization) dominates, reaching ~124 s for LLaMA 3.1-8B (Figure 2).
func (t Testbed) trtllmInit(m models.Model, tier StorageTier) InitBreakdown {
	pb := m.ParamsB()
	b := InitBreakdown{
		Load:    t.loadPhase(m, tier),
		Compile: secs(80 + 2.5*pb),
		Other:   secs(3.5 + 0.35*pb),
	}
	return b.scale(t.InitScale)
}

// EngineBootOverhead is the runtime boot cost outside the engine's own
// initialization log: container image setup plus Python/CUDA runtime
// imports. Table 1 measures vLLM's internal init (55.41 s for LLaMA
// 3.1-8B) while Figure 2's end-to-end cold start is 87.28 s — the ~31 s
// difference is this boot overhead. Ollama's static Go binary boots almost
// instantly; SGLang's and TensorRT-LLM's boots are fitted to Figure 2.
func EngineBootOverhead(e EngineKind) time.Duration {
	switch e {
	case EngineVLLM:
		return secs(30.7)
	case EngineSGLang:
		return secs(0.3)
	case EngineTRTLLM:
		return secs(14.0)
	case EngineOllama:
		return secs(0.1)
	default:
		return 0
	}
}

// ColdStart returns the full cold-start latency as measured in Figure 2:
// container create + start + runtime boot + engine initialization.
func (t Testbed) ColdStart(e EngineKind, m models.Model, tier StorageTier) time.Duration {
	return t.ContainerCreate + t.ContainerStart +
		time.Duration(float64(EngineBootOverhead(e))*t.InitScale) +
		t.EngineInit(e, m, tier).Total()
}
