// PCIe link contention model for chunked checkpoint transfers.
//
// PCIe is full duplex: a device-to-host (D2H) checkpoint stream and a
// host-to-device (H2D) restore stream cross the same link without
// slowing each other down, which is what makes pipelined model
// exchange profitable (ServerlessLLM, arXiv:2401.14351). Two streams
// in the *same* direction, however, share the link's bandwidth. The
// checkpoint driver registers every in-flight chunk on its device's
// link and stretches the chunk's transfer time by the number of
// concurrent same-direction streams sampled when the chunk starts.
package perfmodel

import "sync"

// Direction is a PCIe transfer direction.
type Direction int

const (
	// DirD2H is device-to-host (checkpoint save).
	DirD2H Direction = iota
	// DirH2D is host-to-device (checkpoint restore).
	DirH2D
)

// String returns the conventional CUDA name for the direction.
func (d Direction) String() string {
	if d == DirD2H {
		return "d2h"
	}
	return "h2d"
}

// PCIeLink tracks the in-flight transfer streams on one device's PCIe
// link, one counter per direction. The zero value is ready to use.
type PCIeLink struct {
	mu     sync.Mutex
	active [2]int
}

// Begin registers a transfer stream in dir and returns the resulting
// number of concurrent same-direction streams (including the new one).
// The caller multiplies its chunk transfer time by the returned factor:
// same-direction streams split the link's bandwidth evenly, while the
// opposite direction is unaffected (full duplex).
func (l *PCIeLink) Begin(dir Direction) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.active[dir]++
	return l.active[dir]
}

// End deregisters a stream previously registered with Begin.
func (l *PCIeLink) End(dir Direction) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active[dir] > 0 {
		l.active[dir]--
	}
}

// Active returns the number of in-flight streams in dir.
func (l *PCIeLink) Active(dir Direction) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active[dir]
}
