package perfmodel

import (
	"testing"
	"testing/quick"
	"time"

	"swapservellm/internal/models"
)

func sec(d time.Duration) float64 { return d.Seconds() }

// within checks v ∈ [lo, hi].
func within(t *testing.T, name string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %.2f, want in [%.2f, %.2f]", name, v, lo, hi)
	}
}

func TestTable1AnchorsVerbatim(t *testing.T) {
	// The anchored breakdowns must reproduce the paper's Table 1 columns.
	h := H100()
	cases := []struct {
		model                    string
		load, compile, cg, total float64
	}{
		{"deepseek-r1:14b-fp16", 5.17, 43.18, 21.00, 82.39},
		{"deepseek-r1:8b-fp16", 3.05, 29.13, 17.00, 55.17},
		{"deepseek-r1:7b-fp16", 2.88, 26.58, 16.33, 51.03},
		{"deepseek-r1:1.5b-fp16", 1.01, 26.52, 16.00, 49.81},
		{"gemma3:27b-fp16", 9.11, 79.67, 32.33, 160.30},
		{"gemma3:12b-fp16", 4.35, 63.42, 27.00, 123.71},
		{"gemma3:4b-fp16", 1.91, 47.50, 22.00, 89.26},
		{"llama3.1:8b-fp16", 3.11, 29.33, 17.00, 55.41},
		{"llama3.2:3b-fp16", 1.48, 26.38, 16.00, 49.41},
		{"llama3.2:1b-fp16", 0.85, 16.85, 14.00, 34.14},
	}
	for _, c := range cases {
		m := models.Default().MustLookup(c.model)
		b := h.EngineInit(EngineVLLM, m, TierDisk)
		const eps = 0.02
		if d := sec(b.Load) - c.load; d > eps || d < -eps {
			t.Errorf("%s Load = %.2f, want %.2f", c.model, sec(b.Load), c.load)
		}
		if d := sec(b.Compile) - c.compile; d > eps || d < -eps {
			t.Errorf("%s Compile = %.2f, want %.2f", c.model, sec(b.Compile), c.compile)
		}
		if d := sec(b.CUDAGraph) - c.cg; d > eps || d < -eps {
			t.Errorf("%s CUDAGraph = %.2f, want %.2f", c.model, sec(b.CUDAGraph), c.cg)
		}
		if d := sec(b.Total()) - c.total; d > eps || d < -eps {
			t.Errorf("%s Total = %.2f, want %.2f", c.model, sec(b.Total()), c.total)
		}
	}
}

func TestFigure2ColdStartAnchors(t *testing.T) {
	// §5.2: loading LLaMA 3.1-8B takes 4.38s with Ollama, 21.68s with
	// SGLang, 87.28s with vLLM, 124.48s with TensorRT-LLM on H100,
	// including container startup. We require the right magnitudes and the
	// strict ordering Ollama < SGLang < vLLM < TRT-LLM.
	h := H100()
	m := models.Default().MustLookup("llama3.1:8b-fp16")
	ollama := sec(h.ColdStart(EngineOllama, m, TierDisk))
	sglang := sec(h.ColdStart(EngineSGLang, m, TierDisk))
	vllm := sec(h.ColdStart(EngineVLLM, m, TierDisk))
	trt := sec(h.ColdStart(EngineTRTLLM, m, TierDisk))

	within(t, "ollama cold start", ollama, 3.0, 7.0)
	within(t, "sglang cold start", sglang, 16.0, 27.0)
	within(t, "vllm cold start", vllm, 82.0, 92.0)
	within(t, "trtllm cold start", trt, 110.0, 140.0)
	if !(ollama < sglang && sglang < vllm && vllm < trt) {
		t.Errorf("cold-start ordering violated: %v < %v < %v < %v", ollama, sglang, vllm, trt)
	}
}

func TestFigure6aSwapInAnchors(t *testing.T) {
	// Figure 6a: vLLM backend occupying 72–73 GB swaps in between ~5.5s
	// (LLaMA 3.2-1B FP16) and ~7.5s (DS-R1 14B FP16) on H100.
	h := H100()
	small := models.Default().MustLookup("llama3.2:1b-fp16")
	large := models.Default().MustLookup("deepseek-r1:14b-fp16")
	tSmall := sec(h.CheckpointRestore(72*int64(GiB), small.WeightBytes(), EngineVLLM))
	tLarge := sec(h.CheckpointRestore(73*int64(GiB), large.WeightBytes(), EngineVLLM))
	within(t, "vllm swap-in 1B", tSmall, 5.0, 6.2)
	within(t, "vllm swap-in 14B", tLarge, 6.8, 8.0)
	if tSmall >= tLarge {
		t.Errorf("swap-in not increasing with weight size: %v >= %v", tSmall, tLarge)
	}
}

func TestFigure6bSwapInAnchors(t *testing.T) {
	// Figure 6b: Ollama backends using 3.6 GB and 30.5 GB swap in at
	// ~0.75s and ~4.6s on H100; baseline Ollama loads take 1.96s and 5.93s.
	h := H100()
	small := models.Default().MustLookup("llama3.2:1b-fp16")
	large := models.Default().MustLookup("deepseek-r1:14b-fp16")
	swapSmall := sec(h.CheckpointRestore(gib(3.6), small.WeightBytes(), EngineOllama))
	swapLarge := sec(h.CheckpointRestore(gib(30.5), large.WeightBytes(), EngineOllama))
	within(t, "ollama swap-in 1B", swapSmall, 0.6, 1.0)
	within(t, "ollama swap-in 14B", swapLarge, 4.0, 5.2)

	loadSmall := sec(h.EngineInit(EngineOllama, small, TierDisk).Total())
	loadLarge := sec(h.EngineInit(EngineOllama, large, TierDisk).Total())
	within(t, "ollama load 1B", loadSmall, 1.4, 2.6)
	within(t, "ollama load 14B", loadLarge, 4.8, 7.2)
	// SwapServeLLM must beat Ollama's own loading for both models (§5.3).
	if swapSmall >= loadSmall || swapLarge >= loadLarge {
		t.Errorf("swap-in must outperform Ollama loading: %v/%v vs %v/%v",
			swapSmall, swapLarge, loadSmall, loadLarge)
	}
}

func TestFigure5OllamaLoadingRanges(t *testing.T) {
	// Figure 5 (A100): DS-R1 1.5B disk 4.7–11.3s, memory 2.46–2.72s;
	// 14B disk 22.8–41.9s, memory 3.7–5s. Sweep Q4 → FP16.
	a := A100()
	cat := models.Default()
	type band struct {
		model          string
		diskLo, diskHi float64
		memLo, memHi   float64
	}
	// Generous bands around the paper's reported ranges: the fitted curve
	// must land inside them across the quantization sweep.
	bands := []band{
		{"deepseek-r1:1.5b", 3.5, 13.0, 1.8, 3.4},
		{"deepseek-r1:14b", 14.0, 48.0, 2.8, 6.0},
	}
	for _, b := range bands {
		for _, q := range []string{"-q4", "-fp16"} {
			m := cat.MustLookup(b.model + q)
			disk := sec(a.EngineInit(EngineOllama, m, TierDisk).Total())
			mem := sec(a.EngineInit(EngineOllama, m, TierTmpfs).Total())
			within(t, b.model+q+" disk", disk, b.diskLo, b.diskHi)
			within(t, b.model+q+" memory", mem, b.memLo, b.memHi)
			if mem >= disk {
				t.Errorf("%s%s: memory load %v not faster than disk %v", b.model, q, mem, disk)
			}
		}
	}
}

func TestFigure5SnapshotBeatsBothTiers(t *testing.T) {
	// Figure 5: SwapServeLLM snapshot restore beats both disk and memory
	// loading for every model/quantization on the A100 testbed.
	a := A100()
	cat := models.Default()
	for _, name := range []string{
		"deepseek-r1:1.5b-q4", "deepseek-r1:1.5b-q8", "deepseek-r1:1.5b-fp16",
		"deepseek-r1:7b-q4", "deepseek-r1:7b-fp16",
		"deepseek-r1:8b-q4", "deepseek-r1:8b-fp16",
		"deepseek-r1:14b-q4", "deepseek-r1:14b-q8", "deepseek-r1:14b-fp16",
	} {
		m := cat.MustLookup(name)
		// Ollama GPU footprint ≈ weights + small KV + CUDA context.
		gpuBytes := m.WeightBytes() + m.KVCacheBytes(2048) + gib(0.85)
		snap := sec(a.CheckpointRestore(gpuBytes, m.WeightBytes(), EngineOllama))
		disk := sec(a.EngineInit(EngineOllama, m, TierDisk).Total())
		mem := sec(a.EngineInit(EngineOllama, m, TierTmpfs).Total())
		if snap >= mem || snap >= disk {
			t.Errorf("%s: snapshot %v not fastest (disk %v, mem %v)", name, snap, disk, mem)
		}
	}
}

func TestFigure5SnapshotAnchor15B(t *testing.T) {
	// DS-R1 1.5B snapshot restore: 0.87–1.21s across quantizations (A100).
	a := A100()
	cat := models.Default()
	for _, q := range []string{"-q4", "-fp16"} {
		m := cat.MustLookup("deepseek-r1:1.5b" + q)
		gpuBytes := m.WeightBytes() + m.KVCacheBytes(2048) + gib(0.85)
		snap := sec(a.CheckpointRestore(gpuBytes, m.WeightBytes(), EngineOllama))
		within(t, "1.5b"+q+" snapshot", snap, 0.6, 1.5)
	}
	// DS-R1 14B: 2.44–3.68s.
	for _, q := range []string{"-q4", "-fp16"} {
		m := cat.MustLookup("deepseek-r1:14b" + q)
		gpuBytes := m.WeightBytes() + m.KVCacheBytes(2048) + gib(0.85)
		snap := sec(a.CheckpointRestore(gpuBytes, m.WeightBytes(), EngineOllama))
		within(t, "14b"+q+" snapshot", snap, 1.6, 4.4)
	}
}

func TestHeadlineSpeedups(t *testing.T) {
	// §6: 18–31× speedup over vLLM cold starts; §1: ~2.6× faster than
	// Ollama for LLaMA 3.2 1B and ~29% faster for DS-R1 14B on H100.
	h := H100()
	cat := models.Default()

	small := cat.MustLookup("llama3.2:1b-fp16")
	large := cat.MustLookup("deepseek-r1:14b-fp16")

	vllmColdSmall := sec(h.ColdStart(EngineVLLM, small, TierDisk))
	vllmColdLarge := sec(h.ColdStart(EngineVLLM, large, TierDisk))
	swapSmall := sec(h.CheckpointRestore(72*int64(GiB), small.WeightBytes(), EngineVLLM))
	swapLarge := sec(h.CheckpointRestore(73*int64(GiB), large.WeightBytes(), EngineVLLM))

	// Note Figure 6a quotes cold starts of 101–173s (which include longer
	// measured runs); our Figure 2 style cold starts give 34–82s engine
	// init. The speedup band is wide accordingly.
	spSmall := vllmColdSmall / swapSmall
	spLarge := vllmColdLarge / swapLarge
	if spSmall < 4 || spLarge < 8 {
		t.Errorf("vLLM speedups too small: %.1fx (1B), %.1fx (14B)", spSmall, spLarge)
	}

	ollamaSmall := sec(h.EngineInit(EngineOllama, small, TierDisk).Total())
	ollamaLarge := sec(h.EngineInit(EngineOllama, large, TierDisk).Total())
	ssSmall := sec(h.CheckpointRestore(gib(3.6), small.WeightBytes(), EngineOllama))
	ssLarge := sec(h.CheckpointRestore(gib(30.5), large.WeightBytes(), EngineOllama))
	within(t, "ollama 1B speedup", ollamaSmall/ssSmall, 1.8, 3.5)  // ~2.6x
	within(t, "ollama 14B speedup", ollamaLarge/ssLarge, 1.1, 1.6) // ~29%
}

func TestCheckpointRestoreMonotonicInState(t *testing.T) {
	h := H100()
	f := func(a, b uint8) bool {
		ga := int64(a) * int64(GiB) / 4
		gb := int64(b) * int64(GiB) / 4
		ta := h.CheckpointRestore(ga, 0, EngineVLLM)
		tb := h.CheckpointRestore(gb, 0, EngineVLLM)
		if ga < gb {
			return ta <= tb
		}
		return tb <= ta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSavePositive(t *testing.T) {
	for _, tb := range []Testbed{A100(), H100()} {
		d := tb.CheckpointSave(10 * int64(GiB))
		if d <= tb.CkptLock {
			t.Errorf("%s: save of 10GiB took %v, want > lock overhead", tb.Name, d)
		}
		if d > 5*time.Second {
			t.Errorf("%s: save of 10GiB took %v, want < 5s", tb.Name, d)
		}
	}
}

func TestStorageTiersOrdered(t *testing.T) {
	// tmpfs must always beat disk for the same size, on both testbeds.
	f := func(raw uint16) bool {
		size := int64(raw)*int64(GiB)/64 + 1
		for _, tb := range []Testbed{A100(), H100()} {
			if tb.StorageReadTime(TierTmpfs, size) > tb.StorageReadTime(TierDisk, size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStorageReadZero(t *testing.T) {
	h := H100()
	if d := h.StorageReadTime(TierDisk, 0); d != 0 {
		t.Errorf("zero-size read took %v", d)
	}
	if d := h.H2DTime(-5); d != 0 {
		t.Errorf("negative-size H2D took %v", d)
	}
}

func TestDecodeRates(t *testing.T) {
	h := H100()
	cat := models.Default()
	small := cat.MustLookup("llama3.2:1b-fp16")
	large := cat.MustLookup("deepseek-r1:14b-fp16")
	tpsSmall := h.DecodeTokensPerSec(EngineVLLM, small)
	tpsLarge := h.DecodeTokensPerSec(EngineVLLM, large)
	if tpsSmall <= tpsLarge {
		t.Errorf("smaller model must decode faster: %v <= %v", tpsSmall, tpsLarge)
	}
	within(t, "vllm 14B decode t/s", tpsLarge, 20, 100)
	// Engine ordering per the Red Hat benchmarking analysis: TRT > vLLM >
	// SGLang > Ollama.
	v := h.DecodeTokensPerSec(EngineVLLM, large)
	o := h.DecodeTokensPerSec(EngineOllama, large)
	s := h.DecodeTokensPerSec(EngineSGLang, large)
	tr := h.DecodeTokensPerSec(EngineTRTLLM, large)
	if !(tr > v && v > s && s > o) {
		t.Errorf("engine decode ordering violated: trt=%v vllm=%v sglang=%v ollama=%v", tr, v, s, o)
	}
}

func TestTokenTimeLinear(t *testing.T) {
	h := H100()
	m := models.Default().MustLookup("llama3.1:8b-fp16")
	t100 := h.TokenTime(EngineVLLM, m, 100)
	t200 := h.TokenTime(EngineVLLM, m, 200)
	ratio := float64(t200) / float64(t100)
	within(t, "token time ratio", ratio, 1.99, 2.01)
	if h.TokenTime(EngineVLLM, m, 0) != 0 {
		t.Error("zero tokens should take zero time")
	}
}

func TestPrefillFasterThanDecodePerToken(t *testing.T) {
	h := H100()
	m := models.Default().MustLookup("llama3.1:8b-fp16")
	if h.PrefillTokensPerSec(EngineVLLM, m) <= h.DecodeTokensPerSec(EngineVLLM, m) {
		t.Error("prefill must process tokens faster than decode")
	}
}

func TestEngineKindValid(t *testing.T) {
	for _, e := range []EngineKind{EngineVLLM, EngineOllama, EngineSGLang, EngineTRTLLM} {
		if !e.Valid() {
			t.Errorf("%s should be valid", e)
		}
	}
	if EngineKind("llamafile").Valid() {
		t.Error("unknown engine should be invalid")
	}
}

func TestTestbedByName(t *testing.T) {
	if tb, ok := TestbedByName("a100"); !ok || tb.GPU != GPUA100 {
		t.Error("a100 lookup failed")
	}
	if tb, ok := TestbedByName("h100"); !ok || tb.GPU != GPUH100 {
		t.Error("h100 lookup failed")
	}
	if _, ok := TestbedByName("v100"); ok {
		t.Error("v100 should not resolve")
	}
}

func TestA100SlowerInitThanH100(t *testing.T) {
	// The A100 compute phases are scaled up; a non-anchored model must
	// initialize slower there.
	m := models.Default().MustLookup("gemma:7b-fp16")
	a := sec(A100().EngineInit(EngineVLLM, m, TierTmpfs).Total())
	h := sec(H100().EngineInit(EngineVLLM, m, TierTmpfs).Total())
	if a <= h {
		t.Errorf("A100 init %v not slower than H100 %v", a, h)
	}
}

func TestTable1ModelsAllAnchored(t *testing.T) {
	for _, name := range Table1Models() {
		if _, ok := table1Anchor(name); !ok {
			t.Errorf("Table1Models entry %s has no anchor", name)
		}
		if _, ok := models.Default().Lookup(name); !ok {
			t.Errorf("Table1Models entry %s not in catalog", name)
		}
	}
}

func TestInitBreakdownScaleLeavesLoad(t *testing.T) {
	b := InitBreakdown{Load: time.Second, Compile: time.Second, CUDAGraph: time.Second, Other: time.Second}
	s := b.scale(2)
	if s.Load != time.Second {
		t.Error("scale must not change Load")
	}
	if s.Compile != 2*time.Second || s.CUDAGraph != 2*time.Second || s.Other != 2*time.Second {
		t.Error("scale did not multiply compute phases")
	}
}

func TestBWCurveCap(t *testing.T) {
	c := bwCurve{BW0: GiB, Exp: 1.0, Cap: 2 * GiB}
	if bw := c.bandwidth(100 * int64(GiB)); bw != 2*GiB {
		t.Errorf("bandwidth not capped: %v", bw)
	}
}

func TestResumeOverheadPerEngine(t *testing.T) {
	if EngineResumeOverhead(EngineVLLM) != 0 {
		t.Error("vLLM resume overhead should be zero (sleep-mode fast path)")
	}
	if EngineResumeOverhead(EngineOllama) <= 0 {
		t.Error("Ollama resume overhead should be positive")
	}
}

// gib converts a float GiB count to bytes.
func gib(g float64) int64 { return int64(g * GiB) }

func TestD2HTime(t *testing.T) {
	h := H100()
	// 20 GiB at the 20 GiB/s save bandwidth = 1 second.
	if d := h.D2HTime(20 * int64(GiB)); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("D2HTime(20GiB) = %v, want ~1s", d)
	}
	if d := h.D2HTime(0); d != 0 {
		t.Fatalf("D2HTime(0) = %v", d)
	}
}

func TestEngineBootOverheads(t *testing.T) {
	// vLLM's Python/CUDA boot dominates (Figure 2 minus Table 1 ≈ 31s);
	// Ollama's static binary boots almost instantly.
	v := EngineBootOverhead(EngineVLLM)
	o := EngineBootOverhead(EngineOllama)
	if v < 25*time.Second || v > 36*time.Second {
		t.Fatalf("vLLM boot overhead = %v", v)
	}
	if o > time.Second {
		t.Fatalf("Ollama boot overhead = %v", o)
	}
	if EngineBootOverhead(EngineKind("other")) != 0 {
		t.Fatal("unknown engine boot overhead should be 0")
	}
}

func TestColdStartComposition(t *testing.T) {
	// ColdStart = container create + start + boot + init total.
	h := H100()
	m := models.Default().MustLookup("llama3.2:3b-fp16")
	want := h.ContainerCreate + h.ContainerStart +
		EngineBootOverhead(EngineOllama) + h.EngineInit(EngineOllama, m, TierDisk).Total()
	if got := h.ColdStart(EngineOllama, m, TierDisk); got != want {
		t.Fatalf("ColdStart = %v, want %v", got, want)
	}
}

// Property: cold start strictly decreases when weights move from disk to
// tmpfs, for every engine (I/O is always on the cold path).
func TestColdStartTierProperty(t *testing.T) {
	h := H100()
	cat := models.Default()
	for _, engine := range []EngineKind{EngineVLLM, EngineOllama, EngineSGLang, EngineTRTLLM} {
		for _, name := range []string{"llama3.2:3b-fp16", "deepseek-r1:7b-q4", "gemma:7b-fp16"} {
			m := cat.MustLookup(name)
			disk := h.ColdStart(engine, m, TierDisk)
			tmpfs := h.ColdStart(engine, m, TierTmpfs)
			// vLLM H100 FP16 models hit the verbatim Table 1 anchor for the
			// disk tier, which bakes in the measured load; tmpfs switches to
			// the parametric path, so only require non-strict improvement
			// within a small tolerance there.
			if engine == EngineVLLM {
				if tmpfs > disk+5*time.Second {
					t.Errorf("%s/%s: tmpfs %v much slower than disk %v", engine, name, tmpfs, disk)
				}
				continue
			}
			if tmpfs >= disk {
				t.Errorf("%s/%s: tmpfs %v not faster than disk %v", engine, name, tmpfs, disk)
			}
		}
	}
}
