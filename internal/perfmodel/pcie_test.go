package perfmodel

import "testing"

func TestPCIeLinkSameDirectionContends(t *testing.T) {
	var l PCIeLink
	if got := l.Begin(DirD2H); got != 1 {
		t.Fatalf("first D2H stream factor = %d, want 1", got)
	}
	if got := l.Begin(DirD2H); got != 2 {
		t.Fatalf("second D2H stream factor = %d, want 2", got)
	}
	l.End(DirD2H)
	if got := l.Active(DirD2H); got != 1 {
		t.Fatalf("active after End = %d, want 1", got)
	}
	l.End(DirD2H)
	if got := l.Active(DirD2H); got != 0 {
		t.Fatalf("active after both End = %d, want 0", got)
	}
}

func TestPCIeLinkFullDuplex(t *testing.T) {
	var l PCIeLink
	l.Begin(DirD2H)
	// An opposite-direction stream sees an uncontended link.
	if got := l.Begin(DirH2D); got != 1 {
		t.Fatalf("H2D factor with D2H active = %d, want 1 (full duplex)", got)
	}
	if got := l.Active(DirD2H); got != 1 {
		t.Fatalf("D2H active = %d, want 1", got)
	}
	l.End(DirH2D)
	l.End(DirD2H)
}

func TestPCIeLinkEndClampsAtZero(t *testing.T) {
	var l PCIeLink
	l.End(DirH2D) // spurious End must not underflow
	if got := l.Active(DirH2D); got != 0 {
		t.Fatalf("active = %d, want 0", got)
	}
	if got := l.Begin(DirH2D); got != 1 {
		t.Fatalf("factor after spurious End = %d, want 1", got)
	}
}

func TestDirectionString(t *testing.T) {
	if DirD2H.String() != "d2h" || DirH2D.String() != "h2d" {
		t.Fatalf("direction names = %q, %q", DirD2H, DirH2D)
	}
}
