// Package perfmodel provides the calibrated performance model for the
// SwapServeLLM simulation: how long engine initialization phases, model
// loads from each storage tier, GPU checkpoint/restore transfers, container
// lifecycle operations, and token generation take on the paper's two
// testbeds (A100 SXM4 80 GB and H100 HBM3 80 GB).
//
// Constants were fitted to the measured anchors in the paper (Table 1,
// Figures 2, 5, 6); the exact Table 1 rows are kept verbatim in an anchor
// table (calibration.go) while parametric formulas cover every other model
// so uncatalogued configurations still behave plausibly.
package perfmodel

import (
	"time"

	"swapservellm/internal/models"
)

// GPUKind identifies a GPU product.
type GPUKind string

// GPU products used in the evaluation.
const (
	GPUA100 GPUKind = "A100-SXM4-80GB"
	GPUH100 GPUKind = "H100-HBM3-80GB"
)

// EngineKind identifies an inference engine.
type EngineKind string

// The four engines integrated by the paper (§4).
const (
	EngineVLLM   EngineKind = "vllm"
	EngineOllama EngineKind = "ollama"
	EngineSGLang EngineKind = "sglang"
	EngineTRTLLM EngineKind = "trtllm"
)

// Valid reports whether e names a supported engine.
func (e EngineKind) Valid() bool {
	switch e {
	case EngineVLLM, EngineOllama, EngineSGLang, EngineTRTLLM:
		return true
	}
	return false
}

// StorageTier identifies where model weights are read from.
type StorageTier string

// Storage tiers compared in Figure 5.
const (
	TierDisk  StorageTier = "disk"
	TierTmpfs StorageTier = "tmpfs"
)

// GiB is one gibibyte as a float, for bandwidth arithmetic.
const GiB = float64(1 << 30)

// bwCurve is a size-dependent effective bandwidth: bw(size) =
// BW0 * (size/GiB)^Exp, capped at Cap. Large sequential reads achieve
// better effective bandwidth than small ones (readahead, parallel shards),
// which the paper's Figure 5 ranges exhibit.
type bwCurve struct {
	BW0 float64 // bytes/s at a 1 GiB transfer
	Exp float64 // power-law exponent
	Cap float64 // upper bound, bytes/s (0 = uncapped)
}

// duration returns the transfer time for size bytes.
func (c bwCurve) duration(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	bw := c.bandwidth(size)
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// bandwidth returns the effective bandwidth in bytes/s for a transfer of
// size bytes.
func (c bwCurve) bandwidth(size int64) float64 {
	gb := float64(size) / GiB
	if gb < 1.0/64 {
		gb = 1.0 / 64
	}
	bw := c.BW0 * pow(gb, c.Exp)
	if c.Cap > 0 && bw > c.Cap {
		bw = c.Cap
	}
	if bw < 1 {
		bw = 1
	}
	return bw
}

// pow is a small positive-base power helper (avoids importing math for
// clarity of the fitted curves; delegates to math.Pow).
func pow(base, exp float64) float64 {
	return mathPow(base, exp)
}

// Testbed captures the hardware profile of one evaluation server (§5.1).
type Testbed struct {
	Name        string
	GPU         GPUKind
	GPUMemBytes int64
	// GPUCount is the number of identical GPUs in the server.
	GPUCount int
	// HBMBandwidth is the GPU memory bandwidth in bytes/s; batch-1 decode
	// throughput is modelled as memory-bandwidth-bound.
	HBMBandwidth float64
	// TensorFLOPS is the dense FP16 tensor throughput in FLOP/s, used for
	// the compute-bound prefill model.
	TensorFLOPS float64

	// Storage read curves per tier (includes format parsing costs).
	DiskRead  bwCurve
	TmpfsRead bwCurve
	// Peer fetch curves for the checkpoint store's P2P restore path:
	// reading a chunk out of a replica node's host RAM (PeerRAMRead) or
	// off its disk (PeerDiskRead), both through the datacenter fabric.
	// Calibrated against 2×100GbE RoCE: peer RAM sustains near-line-rate
	// and beats the local NVMe curve at every chunk size, which is what
	// makes locality-aware restore-source selection profitable
	// (ServerlessLLM §5); peer disk stacks the remote disk read under the
	// same fabric and lands slightly below local disk.
	PeerRAMRead  bwCurve
	PeerDiskRead bwCurve
	// H2D is the host-to-device copy bandwidth in bytes/s.
	H2D float64

	// Checkpoint/restore transfer model (cuda-checkpoint over PCIe).
	RestoreBW bwCurve
	SaveBW    bwCurve
	// WeightTouchBW models the post-restore first-touch cost proportional
	// to the weight bytes (page faults, allocator rebuild); 0 disables it.
	WeightTouchBW float64
	// CkptLock is the fixed cost of locking/unlocking the CUDA process.
	CkptLock time.Duration

	// Container lifecycle constants.
	ContainerCreate time.Duration
	ContainerStart  time.Duration
	ContainerStop   time.Duration
	FreezeLatency   time.Duration
	ThawLatency     time.Duration

	// InitScale multiplies engine initialization compute phases
	// (compilation, CUDA-graph capture) relative to the H100 anchors.
	InitScale float64

	// VisionEncodePerImage is the vision-tower cost per attached image in
	// multimodal chat (ViT forward pass, independent of the LLM size).
	VisionEncodePerImage time.Duration
	// AudioEncodePerSec is the audio-encoder cost per second of attached
	// audio input.
	AudioEncodePerSec time.Duration
}

// H100 returns the H100 testbed profile from §5.1 (26-core Xeon Platinum
// 8480, 221 GB RAM, NVMe storage, CUDA 13, driver 580.65). Fitted to
// Figure 2, Figure 6, and Table 1.
func H100() Testbed {
	return Testbed{
		Name:          "h100",
		GPU:           GPUH100,
		GPUMemBytes:   80 * int64(GiB),
		GPUCount:      1,
		HBMBandwidth:  3350 * 1e9,
		TensorFLOPS:   989e12,
		DiskRead:      bwCurve{BW0: 2.59 * GiB, Exp: 0.31, Cap: 9 * GiB},
		TmpfsRead:     bwCurve{BW0: 9 * GiB, Exp: 0.20, Cap: 24 * GiB},
		PeerRAMRead:   bwCurve{BW0: 11 * GiB, Exp: 0.08, Cap: 16 * GiB},
		PeerDiskRead:  bwCurve{BW0: 2.1 * GiB, Exp: 0.28, Cap: 7 * GiB},
		H2D:           55 * GiB,
		RestoreBW:     bwCurve{BW0: 13.3 * GiB, Exp: 0, Cap: 13.3 * GiB},
		SaveBW:        bwCurve{BW0: 20 * GiB, Exp: 0, Cap: 20 * GiB},
		WeightTouchBW: 16 * GiB,
		CkptLock:      100 * time.Millisecond,

		ContainerCreate: 400 * time.Millisecond,
		ContainerStart:  800 * time.Millisecond,
		ContainerStop:   300 * time.Millisecond,
		FreezeLatency:   30 * time.Millisecond,
		ThawLatency:     30 * time.Millisecond,
		InitScale:       1.0,

		VisionEncodePerImage: 45 * time.Millisecond,
		AudioEncodePerSec:    20 * time.Millisecond,
	}
}

// A100 returns the A100 testbed profile from §5.1 (12-core Xeon Gold 6342,
// 1 TB SSD, CUDA 12.8, driver 570.86). Fitted to Figure 5.
func A100() Testbed {
	return Testbed{
		Name:          "a100",
		GPU:           GPUA100,
		GPUMemBytes:   80 * int64(GiB),
		GPUCount:      1,
		HBMBandwidth:  2039 * 1e9,
		TensorFLOPS:   312e12,
		DiskRead:      bwCurve{BW0: 0.30 * GiB, Exp: 0.28, Cap: 1.0 * GiB},
		TmpfsRead:     bwCurve{BW0: 6.5 * GiB, Exp: 0.25, Cap: 20 * GiB},
		PeerRAMRead:   bwCurve{BW0: 5.5 * GiB, Exp: 0.10, Cap: 10 * GiB},
		PeerDiskRead:  bwCurve{BW0: 0.25 * GiB, Exp: 0.26, Cap: 0.9 * GiB},
		H2D:           22 * GiB,
		RestoreBW:     bwCurve{BW0: 3.3 * GiB, Exp: 0.30, Cap: 11 * GiB},
		SaveBW:        bwCurve{BW0: 10 * GiB, Exp: 0, Cap: 10 * GiB},
		WeightTouchBW: 0, // folded into the sublinear restore curve
		CkptLock:      150 * time.Millisecond,

		ContainerCreate: 500 * time.Millisecond,
		ContainerStart:  900 * time.Millisecond,
		ContainerStop:   350 * time.Millisecond,
		FreezeLatency:   40 * time.Millisecond,
		ThawLatency:     40 * time.Millisecond,
		InitScale:       1.3,

		VisionEncodePerImage: 80 * time.Millisecond,
		AudioEncodePerSec:    35 * time.Millisecond,
	}
}

// TestbedByName returns a testbed profile by its short name ("a100",
// "h100").
func TestbedByName(name string) (Testbed, bool) {
	switch name {
	case "a100":
		return A100(), true
	case "h100":
		return H100(), true
	}
	return Testbed{}, false
}

// readCurve returns the storage read curve for tier.
func (t Testbed) readCurve(tier StorageTier) bwCurve {
	if tier == TierTmpfs {
		return t.TmpfsRead
	}
	return t.DiskRead
}

// StorageReadTime returns the time to read size bytes from tier, including
// format parsing.
func (t Testbed) StorageReadTime(tier StorageTier, size int64) time.Duration {
	return t.readCurve(tier).duration(size)
}

// PeerRAMReadTime returns the time to fetch size bytes out of a peer
// node's host RAM over the datacenter fabric.
func (t Testbed) PeerRAMReadTime(size int64) time.Duration {
	return t.PeerRAMRead.duration(size)
}

// PeerDiskReadTime returns the time to fetch size bytes off a peer
// node's disk over the datacenter fabric.
func (t Testbed) PeerDiskReadTime(size int64) time.Duration {
	return t.PeerDiskRead.duration(size)
}

// H2DTime returns the time to copy size bytes host-to-device.
func (t Testbed) H2DTime(size int64) time.Duration {
	if size <= 0 || t.H2D <= 0 {
		return 0
	}
	return time.Duration(float64(size) / t.H2D * float64(time.Second))
}

// D2HTime returns the time to copy size bytes device-to-host at the
// checkpoint-save bandwidth (also the path vLLM's sleep mode uses to
// offload weights).
func (t Testbed) D2HTime(size int64) time.Duration {
	return t.SaveBW.duration(size)
}

// EngineResumeOverhead is the engine-specific fixed cost to verify the API
// is live again after a checkpoint restore (fitted to Figures 5/6).
func EngineResumeOverhead(e EngineKind) time.Duration {
	switch e {
	case EngineOllama:
		return 250 * time.Millisecond
	case EngineVLLM:
		return 0
	default:
		return 100 * time.Millisecond
	}
}

// CheckpointSave returns the time for a swap-out: lock the CUDA process and
// copy gpuBytes of device state to host memory.
func (t Testbed) CheckpointSave(gpuBytes int64) time.Duration {
	return t.CkptLock + t.SaveBW.duration(gpuBytes)
}

// CheckpointRestore returns the time for a swap-in: copy gpuBytes of saved
// device state back, first-touch the weight pages, and resume the engine.
//
// H100 fit: t = 0.1 + mem/13.3GiB/s + weights/16GiB/s + resume
// (Figure 6a: 72 GB vLLM ⇒ 5.5–7.5 s; Figure 6b: 3.6 GB ⇒ 0.75 s,
// 30.5 GB ⇒ 4.6 s). A100 fit: t = 0.15 + mem/(3.3·mem^0.3 GiB/s) + resume
// (Figure 5 snapshot series).
func (t Testbed) CheckpointRestore(gpuBytes, weightBytes int64, e EngineKind) time.Duration {
	d := t.CkptLock + t.RestoreBW.duration(gpuBytes)
	if t.WeightTouchBW > 0 && weightBytes > 0 {
		d += time.Duration(float64(weightBytes) / t.WeightTouchBW * float64(time.Second))
	}
	return d + EngineResumeOverhead(e)
}

// DecodeTokensPerSec returns the single-request decode throughput for the
// model on this testbed. Batch-1 decoding is memory-bandwidth-bound: each
// generated token streams the full weight set from HBM, at an efficiency
// factor that depends on the engine's kernel quality.
func (t Testbed) DecodeTokensPerSec(e EngineKind, m models.Model) float64 {
	w := float64(m.WeightBytes())
	if w <= 0 {
		return 0
	}
	tps := 0.4 * t.HBMBandwidth / w * engineDecodeEfficiency(e)
	if tps < 1 {
		tps = 1
	}
	return tps
}

// engineDecodeEfficiency is the relative decode-kernel quality per engine,
// aligned with the Red Hat Ollama-vs-vLLM benchmarking analysis cited in
// §2.3.
func engineDecodeEfficiency(e EngineKind) float64 {
	switch e {
	case EngineVLLM:
		return 1.0
	case EngineOllama:
		return 0.55
	case EngineSGLang:
		return 0.95
	case EngineTRTLLM:
		return 1.10
	default:
		return 0.5
	}
}

// PrefillTokensPerSec returns the compute-bound prompt-processing rate:
// roughly 2·params FLOPs per token at half peak utilization.
func (t Testbed) PrefillTokensPerSec(e EngineKind, m models.Model) float64 {
	p := float64(m.Params)
	if p <= 0 {
		return 0
	}
	rate := 0.5 * t.TensorFLOPS / (2 * p) * engineDecodeEfficiency(e)
	if rate < 10 {
		rate = 10
	}
	return rate
}

// TokenTime returns the simulated duration to decode n tokens.
func (t Testbed) TokenTime(e EngineKind, m models.Model, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	tps := t.DecodeTokensPerSec(e, m)
	return time.Duration(float64(n) / tps * float64(time.Second))
}

// PrefillTime returns the simulated duration to process an n-token prompt.
func (t Testbed) PrefillTime(e EngineKind, m models.Model, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / t.PrefillTokensPerSec(e, m) * float64(time.Second))
}
