package perfmodel

import "time"

// table1Anchors holds the verbatim vLLM initialization breakdown measured
// in Table 1 of the paper (H100, weights on NVMe disk). Total is implied:
// Total = Load + Compile + CUDAGraph + Other, with Other derived from the
// published Total minus the three measured phases.
var table1Anchors = map[string]InitBreakdown{
	// model name:            load     compile   cuda-graphs  other (derived)
	"deepseek-r1:14b-fp16":  anchor(5.17, 43.18, 21.00, 82.39),
	"deepseek-r1:8b-fp16":   anchor(3.05, 29.13, 17.00, 55.17),
	"deepseek-r1:7b-fp16":   anchor(2.88, 26.58, 16.33, 51.03),
	"deepseek-r1:1.5b-fp16": anchor(1.01, 26.52, 16.00, 49.81),
	"gemma3:27b-fp16":       anchor(9.11, 79.67, 32.33, 160.30),
	"gemma3:12b-fp16":       anchor(4.35, 63.42, 27.00, 123.71),
	"gemma3:4b-fp16":        anchor(1.91, 47.50, 22.00, 89.26),
	"llama3.1:8b-fp16":      anchor(3.11, 29.33, 17.00, 55.41),
	"llama3.2:3b-fp16":      anchor(1.48, 26.38, 16.00, 49.41),
	"llama3.2:1b-fp16":      anchor(0.85, 16.85, 14.00, 34.14),
}

// anchor builds an InitBreakdown from the paper's Load/Compile/CG/Total
// columns, deriving Other as the remainder.
func anchor(load, compile, cg, total float64) InitBreakdown {
	other := total - load - compile - cg
	if other < 0 {
		other = 0
	}
	return InitBreakdown{
		Load:      secsf(load),
		Compile:   secsf(compile),
		CUDAGraph: secsf(cg),
		Other:     secsf(other),
	}
}

func secsf(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// table1Anchor returns the measured breakdown for the named model, if it is
// one of the ten models in Table 1.
func table1Anchor(name string) (InitBreakdown, bool) {
	b, ok := table1Anchors[name]
	return b, ok
}

// Table1Models lists the models in Table 1, in the paper's row order.
func Table1Models() []string {
	return []string{
		"deepseek-r1:14b-fp16",
		"deepseek-r1:8b-fp16",
		"deepseek-r1:7b-fp16",
		"deepseek-r1:1.5b-fp16",
		"gemma3:27b-fp16",
		"gemma3:12b-fp16",
		"gemma3:4b-fp16",
		"llama3.1:8b-fp16",
		"llama3.2:3b-fp16",
		"llama3.2:1b-fp16",
	}
}
