package ckptstore

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// This file is the delta-reassembly property test: across randomized
// checkpoint / restore / re-checkpoint / demote / promote sequences,
// a full restore of any live image must reassemble exactly the bytes of
// its base (weight) chunks plus the deltas of its latest dirty
// generation — every chunk reachable from some tier, fetched exactly
// once, totals matching the manifest. The test-side model mirrors the
// driver's chunkPlanLocked keying so the expected manifests are derived
// independently of the store under test.

// imageModel is the test's independent account of one process's image.
type imageModel struct {
	key    string
	ckey   string // content key (model name) shared across replicas
	chunks int64  // image size in chunks
	gen    int64  // dirty generation
	weight int64  // weight-region chunks (dedup across replicas)
	live   bool   // has a committed, un-released manifest
}

const propChunkBytes = int64(1 << 20)

// plan mirrors cudackpt's chunkPlanLocked: weight chunks keyed by the
// content key, pristine dynamic chunks by (ckey, "z"), dirty dynamic
// chunks by (pid, "d", gen).
func (im *imageModel) plan() []ChunkRef {
	refs := make([]ChunkRef, im.chunks)
	size := strconv.FormatInt(propChunkBytes, 10)
	gen := strconv.FormatInt(im.gen, 10)
	for i := int64(0); i < im.chunks; i++ {
		idx := strconv.FormatInt(i, 10)
		var id ChunkID
		switch {
		case i < im.weight:
			id = ChunkKey(im.ckey, "w", idx, size)
		case im.gen == 0:
			id = ChunkKey(im.ckey, "z", idx, size)
		default:
			id = ChunkKey(im.key, "d", idx, size, gen)
		}
		refs[i] = ChunkRef{ID: id, Bytes: propChunkBytes}
	}
	return refs
}

// fullRestore opens a restore session, fetches the whole range, and
// verifies the reassembly totals the manifest exactly.
func fullRestore(s *Store, im *imageModel) error {
	sess, err := s.OpenRestore(context.Background(), im.key)
	if err != nil {
		return err
	}
	total := im.chunks * propChunkBytes
	ferr := sess.FetchRange(0, total)
	sess.Close(ferr)
	if ferr != nil {
		return ferr
	}
	var got int64
	for _, n := range sess.bySource {
		got += n
	}
	if got != total {
		return fmt.Errorf("restore of %q reassembled %d bytes, manifest is %d", im.key, got, total)
	}
	for i, f := range sess.fetched {
		if !f {
			return fmt.Errorf("restore of %q left chunk %d unfetched", im.key, i)
		}
	}
	// Cross-check against the independently derived manifest: same
	// chunk IDs, same order.
	want := im.plan()
	if len(sess.refs) != len(want) {
		return fmt.Errorf("manifest of %q has %d chunks, model says %d", im.key, len(sess.refs), len(want))
	}
	for i := range want {
		if sess.refs[i] != want[i] {
			return fmt.Errorf("manifest of %q chunk %d = %+v, model says %+v (base+delta keying drifted)",
				im.key, i, sess.refs[i], want[i])
		}
	}
	return nil
}

// TestPropertyDeltaReassembly drives randomized operation sequences
// over a shared-content-key replica set and checks, after every
// operation, that the store self-checks and every live image fully
// reassembles from base + deltas.
func TestPropertyDeltaReassembly(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clock := simclock.NewScaled(testEpoch, 50000)
			tb, _ := perfmodel.TestbedByName("h100")
			// A finite cache cap so trims happen mid-sequence.
			s := New(clock, tb, WithHostCap(64*propChunkBytes))

			// Three replicas of model A (shared weights) and one of model B.
			images := []*imageModel{
				{key: "a0", ckey: "modelA", chunks: 8, weight: 5},
				{key: "a1", ckey: "modelA", chunks: 8, weight: 5},
				{key: "a2", ckey: "modelA", chunks: 8, weight: 5},
				{key: "b0", ckey: "modelB", chunks: 6, weight: 4},
			}

			for step := 0; step < 400; step++ {
				im := images[rng.Intn(len(images))]
				switch op := rng.Intn(6); {
				case op <= 1: // checkpoint (or re-checkpoint)
					refs := im.plan()
					clean := s.PlanCheckpoint(im.key, refs)
					if rng.Intn(8) == 0 {
						s.AbortCheckpoint(im.key)
					} else {
						st := s.CommitCheckpoint(context.Background(), im.key)
						if st.NewBytes+st.DedupBytes != im.chunks*propChunkBytes {
							t.Fatalf("step %d: commit bytes %d+%d != image %d",
								step, st.NewBytes, st.DedupBytes, im.chunks*propChunkBytes)
						}
						for i, c := range clean {
							if c && refs[i].Bytes == 0 {
								t.Fatalf("step %d: zero-byte clean chunk", step)
							}
						}
						im.live = true
					}
				case op == 2: // restore in place (image stays checkpointed)
					if im.live {
						if err := fullRestore(s, im); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					}
				case op == 3: // restore out: image leaves the store, KV dirties
					if im.live {
						if err := fullRestore(s, im); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						s.Release(im.key)
						im.live = false
						im.gen++ // served traffic before the next checkpoint
					}
				case op == 4: // demote to disk
					if im.live {
						if _, _, err := s.Demote(context.Background(), im.key); err != nil {
							t.Fatalf("step %d: demote: %v", step, err)
						}
					}
				default: // promote back to host RAM
					if im.live {
						if _, _, err := s.Promote(context.Background(), im.key); err != nil {
							t.Fatalf("step %d: promote: %v", step, err)
						}
					}
				}
				if err := s.SelfCheck(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}

			// Epilogue: every live image must still fully reassemble.
			for _, im := range images {
				if im.live {
					if err := fullRestore(s, im); err != nil {
						t.Fatalf("epilogue: %v", err)
					}
				}
			}
		})
	}
}

// TestPropertyConcurrentReplicas exercises the same protocol from
// concurrent goroutines (one per replica, shared weight chunks) so the
// race detector sees the store's real interleavings.
func TestPropertyConcurrentReplicas(t *testing.T) {
	clock := simclock.NewScaled(testEpoch, 50000)
	tb, _ := perfmodel.TestbedByName("h100")
	s := New(clock, tb, WithHostCap(48*propChunkBytes))

	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			im := &imageModel{key: fmt.Sprintf("p%d", g), ckey: "modelA", chunks: 6, weight: 4}
			for iter := 0; iter < 30; iter++ {
				s.PlanCheckpoint(im.key, im.plan())
				s.CommitCheckpoint(context.Background(), im.key)
				if iter%3 == 0 {
					if _, _, err := s.Demote(context.Background(), im.key); err != nil {
						errc <- err
						return
					}
					if _, _, err := s.Promote(context.Background(), im.key); err != nil {
						errc <- err
						return
					}
				}
				if err := fullRestore(s, im); err != nil {
					errc <- err
					return
				}
				s.Release(im.key)
				im.gen++
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
