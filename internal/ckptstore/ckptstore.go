// Package ckptstore is the content-addressed, multi-tier checkpoint
// substrate underneath the cuda-checkpoint driver (ServerlessLLM's
// checkpoint store, PAPERS.md). Checkpoint images are decomposed into
// fixed-size chunks identified by a content key: chunks shared across
// models, versions, and repeated checkpoints of the same process are
// stored once and refcounted. The store tracks two local tiers — host
// RAM and disk — plus peer nodes' stores as remote restore sources, and
// plans every restore per chunk against the perfmodel's tier/link
// calibration: a chunk already in local host RAM is free, and a chunk
// in a replica's host RAM across the fabric beats the local NVMe read.
//
// The store keeps the *physical* (deduplicated) ledger; the driver's
// logical per-image accounting (host cap, disk usage, the invariant
// checker's conservation sums) is unchanged. Physical usage is always
// at most the logical usage for live images; chunks whose last
// reference is released stay cached in their tier (LRU-evicted under
// the host cap) which is what makes re-checkpointing a previously
// swapped model a near-no-op: the unchanged chunks are still resident,
// so the driver skips their D2H copy entirely (delta checkpoints).
package ckptstore

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// Tier identifies a local storage tier in the GPU→host→disk ladder
// (the GPU end lives in the driver; the store manages the host and
// disk rungs).
type Tier int

// Local tiers.
const (
	// TierHost: chunk bytes resident in host RAM — restore reads are
	// free (the H2D copy is the only cost).
	TierHost Tier = iota
	// TierDisk: chunk bytes on local disk — restore pays the calibrated
	// disk read.
	TierDisk
)

// String returns the lowercase tier name.
func (t Tier) String() string {
	if t == TierDisk {
		return "disk"
	}
	return "host"
}

// ChunkID is a content address: equal IDs mean equal chunk payloads, so
// the store keeps one copy however many images reference it.
type ChunkID string

// ChunkKey derives a ChunkID from identity components (model content
// key, region tag, chunk index, dirt generation). FNV-64a stands in for
// the payload hash the real system computes — the simulation addresses
// content by provenance, which is exact for the regions it models.
func ChunkKey(parts ...string) ChunkID {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return ChunkID(fmt.Sprintf("%016x", h.Sum64()))
}

// ChunkRef is one chunk of an image manifest, in image order.
type ChunkRef struct {
	ID    ChunkID
	Bytes int64
}

// chunk is the store's record of one content-addressed payload.
type chunk struct {
	id    ChunkID
	bytes int64
	// refs counts manifests (live images) referencing the chunk,
	// whatever their residency. pins counts in-flight checkpoint plans
	// that promised to skip this chunk's transfer — the host copy must
	// survive until they commit or abort.
	refs int
	pins int
	// hostRefs counts host-resident manifests referencing the chunk: a
	// chunk with hostRefs > 0 is load-bearing for a RAM image and is
	// never dropped from host RAM by demotion or cache trimming.
	hostRefs int
	inHost   bool
	onDisk   bool
	lastUsed time.Time
	seq      int64 // LRU tiebreak, deterministic under the virtual clock
}

// manifest is one live checkpoint image: an ordered chunk list plus the
// tier its restore reads from by default.
type manifest struct {
	key      string
	chunks   []ChunkRef
	resident Tier
}

// bytesTotal sums the manifest's logical size.
func (m *manifest) bytesTotal() int64 {
	var n int64
	for _, c := range m.chunks {
		n += c.Bytes
	}
	return n
}

// Peer is a remote restore source: another node's store (or any stand-in
// implementing the lookup). Lookups are made without holding the calling
// store's lock, so two stores may consult each other concurrently.
type Peer interface {
	// PeerID names the peer for traces and counters.
	PeerID() string
	// LookupChunk reports whether the peer holds id in host RAM and/or
	// on disk.
	LookupChunk(id ChunkID) (inHost, onDisk bool)
}

// pending is an in-flight checkpoint plan: the chunk set the driver is
// transferring, with the clean (transfer-skipped) chunks pinned.
type pending struct {
	refs   []ChunkRef
	pinned []ChunkID
}

// Store is one node's checkpoint store. All methods are safe for
// concurrent use; simulated sleeps happen outside the lock.
type Store struct {
	clock  simclock.Clock
	tb     perfmodel.Testbed
	nodeID string
	reg    *metrics.Registry
	inj    *chaos.Injector

	mu        sync.Mutex
	chunks    map[ChunkID]*chunk
	manifests map[string]*manifest
	pendings  map[string]*pending
	peers     []Peer
	hostCap   int64
	hostBytes int64 // physical bytes resident in host RAM
	diskBytes int64 // physical bytes resident on disk
	seq       int64
}

// Option configures a Store.
type Option func(*Store)

// WithRegistry publishes the store's per-tier byte counters into reg.
func WithRegistry(reg *metrics.Registry) Option {
	return func(s *Store) { s.reg = reg }
}

// WithChaos installs the fault injector consulted at the
// ckptstore.fetch and ckptstore.promote sites.
func WithChaos(inj *chaos.Injector) Option {
	return func(s *Store) { s.inj = inj }
}

// WithNodeID names the store in traces and peer lookups.
func WithNodeID(id string) Option {
	return func(s *Store) { s.nodeID = id }
}

// WithHostCap bounds the physical host-RAM bytes the store caches;
// unreferenced chunks are LRU-evicted beyond it (0 = unlimited).
func WithHostCap(capBytes int64) Option {
	return func(s *Store) { s.hostCap = capBytes }
}

// New builds a store timing tier moves against tb on clock.
func New(clock simclock.Clock, tb perfmodel.Testbed, opts ...Option) *Store {
	s := &Store{
		clock:     clock,
		tb:        tb,
		nodeID:    "local",
		chunks:    make(map[ChunkID]*chunk),
		manifests: make(map[string]*manifest),
		pendings:  make(map[string]*pending),
	}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	return s
}

// PeerID implements Peer so stores can be wired to each other directly.
func (s *Store) PeerID() string { return s.nodeID }

// LookupChunk implements Peer.
func (s *Store) LookupChunk(id ChunkID) (inHost, onDisk bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.chunks[id]
	if !ok {
		return false, false
	}
	return c.inHost, c.onDisk
}

// SetPeers installs the remote restore sources consulted by restore and
// promotion planning.
func (s *Store) SetPeers(peers []Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = peers
}

// SetChaos installs (or, with nil, removes) the fault injector.
func (s *Store) SetChaos(inj *chaos.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
}

// PlanCheckpoint registers an in-flight checkpoint for key and reports,
// per chunk, whether its content is already resident in local host RAM —
// the driver skips the D2H transfer for those (delta checkpoint). Clean
// chunks are pinned so concurrent demotion or cache trimming cannot drop
// their host copy before the checkpoint commits. Every plan must be
// closed by CommitCheckpoint or AbortCheckpoint.
func (s *Store) PlanCheckpoint(key string, refs []ChunkRef) []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &pending{refs: append([]ChunkRef(nil), refs...)}
	clean := make([]bool, len(refs))
	for i, r := range refs {
		c, ok := s.chunks[r.ID]
		if ok && c.inHost {
			clean[i] = true
			c.pins++
			p.pinned = append(p.pinned, r.ID)
		}
	}
	s.pendings[key] = p
	return clean
}

// AbortCheckpoint drops key's in-flight plan, unpinning its clean
// chunks. The store is left exactly as before PlanCheckpoint.
func (s *Store) AbortCheckpoint(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.abortLocked(key)
}

func (s *Store) abortLocked(key string) {
	p, ok := s.pendings[key]
	if !ok {
		return
	}
	for _, id := range p.pinned {
		if c, ok := s.chunks[id]; ok {
			c.pins--
		}
	}
	delete(s.pendings, key)
}

// PutStats reports a committed checkpoint's dedup outcome.
type PutStats struct {
	// NewBytes were not resident and landed via the driver's D2H copy.
	NewBytes int64
	// DedupBytes were already host-resident; their transfer was skipped.
	DedupBytes int64
	// Chunks is the manifest length.
	Chunks int
}

// CommitCheckpoint finalizes key's in-flight plan into a host-resident
// manifest, replacing any previous manifest under the same key (a
// re-checkpoint). Returns the dedup stats and emits the ckpt.dedup span
// plus the ckpt_dedup_bytes / ckpt_new_bytes counters.
func (s *Store) CommitCheckpoint(ctx context.Context, key string) PutStats {
	_, span := obs.Start(ctx, "ckpt.dedup",
		obs.String("key", key), obs.String("node", s.nodeID))
	s.mu.Lock()
	p, ok := s.pendings[key]
	if !ok {
		// Put without a plan: treat every chunk as new.
		p = &pending{}
	}
	s.abortLocked(key)
	if old, ok := s.manifests[key]; ok {
		s.releaseLocked(old)
	}
	var st PutStats
	st.Chunks = len(p.refs)
	now := s.clock.Now()
	for _, r := range p.refs {
		c, ok := s.chunks[r.ID]
		if !ok {
			c = &chunk{id: r.ID, bytes: r.Bytes}
			s.chunks[r.ID] = c
		}
		if c.inHost {
			st.DedupBytes += r.Bytes
		} else {
			c.inHost = true
			s.hostBytes += r.Bytes
			st.NewBytes += r.Bytes
		}
		c.refs++
		c.hostRefs++
		c.lastUsed = now
		s.seq++
		c.seq = s.seq
	}
	s.manifests[key] = &manifest{key: key, chunks: append([]ChunkRef(nil), p.refs...), resident: TierHost}
	s.trimCacheLocked()
	s.mu.Unlock()
	span.SetAttr(
		obs.Int64("new_bytes", st.NewBytes),
		obs.Int64("dedup_bytes", st.DedupBytes),
		obs.Int("chunks", st.Chunks))
	span.End()
	s.reg.Counter("ckpt_dedup_bytes").Add(float64(st.DedupBytes))
	s.reg.Counter("ckpt_new_bytes").Add(float64(st.NewBytes))
	return st
}

// Release drops key's manifest after its image left the store (the
// restore completed, or the process unregistered). Chunk references are
// decremented; fully unreferenced chunks stay cached in their tier —
// the delta-checkpoint working set — until trimmed under the host cap.
func (s *Store) Release(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[key]
	if !ok {
		return
	}
	s.releaseLocked(m)
	delete(s.manifests, key)
}

func (s *Store) releaseLocked(m *manifest) {
	for _, r := range m.chunks {
		c, ok := s.chunks[r.ID]
		if !ok {
			continue
		}
		c.refs--
		if m.resident == TierHost {
			c.hostRefs--
		}
	}
}

// Demote moves key's manifest residency from host RAM to disk, dropping
// the host copy of every chunk this manifest alone keeps hot. Chunks
// shared with another host-resident manifest (or pinned by an in-flight
// checkpoint) keep their host copy — the shared-chunk guarantee the
// spill LRU relies on. Returns the bytes written to disk and the write
// time the caller must sleep.
func (s *Store) Demote(ctx context.Context, key string) (written int64, sleep time.Duration, err error) {
	s.mu.Lock()
	m, ok := s.manifests[key]
	if !ok {
		s.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownManifest, key)
	}
	if m.resident == TierDisk {
		s.mu.Unlock()
		return 0, 0, nil
	}
	var dropped int64
	for _, r := range m.chunks {
		c := s.chunks[r.ID]
		c.hostRefs--
		if c.hostRefs > 0 || c.pins > 0 || !c.inHost {
			continue
		}
		if !c.onDisk {
			c.onDisk = true
			s.diskBytes += c.bytes
			written += c.bytes
		}
		c.inHost = false
		s.hostBytes -= c.bytes
		dropped += c.bytes
	}
	m.resident = TierDisk
	s.mu.Unlock()
	// Only the bytes actually written pay the disk-tier write; chunks
	// already on disk (from an earlier demotion) are free.
	sleep = s.tb.StorageReadTime(perfmodel.TierDisk, written)
	s.reg.Counter("ckpt_demote_bytes").Add(float64(written))
	s.reg.Counter("ckpt_demote_shared_kept_bytes").Add(float64(m.bytesTotal() - dropped))
	return written, sleep, nil
}

// Resident reports where key's manifest restore reads from by default.
func (s *Store) Resident(key string) (Tier, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[key]
	if !ok {
		return TierHost, false
	}
	return m.resident, true
}

// MissingHostBytes returns how many of key's manifest bytes are not in
// local host RAM — what a promotion would actually move. Zero for a
// fully host-resident (or unknown) manifest.
func (s *Store) MissingHostBytes(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[key]
	if !ok {
		return 0
	}
	var missing int64
	for _, r := range m.chunks {
		if c, ok := s.chunks[r.ID]; !ok || !c.inHost {
			missing += r.Bytes
		}
	}
	return missing
}

// HostChunkFrac returns the fraction of key's manifest bytes resident
// in local host RAM (1 for fully hot, 0 for unknown or fully cold) —
// the chunk-locality signal the cluster placement layer advertises.
func (s *Store) HostChunkFrac(key string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[key]
	if !ok {
		return 0
	}
	total := m.bytesTotal()
	if total == 0 {
		return 1
	}
	var hot int64
	for _, r := range m.chunks {
		if c, ok := s.chunks[r.ID]; ok && c.inHost {
			hot += r.Bytes
		}
	}
	return float64(hot) / float64(total)
}

// Stats is a consistent snapshot of the store's physical ledger.
type Stats struct {
	// Manifests is the live image count; Chunks the distinct chunk count.
	Manifests int
	Chunks    int
	// HostBytes / DiskBytes are physical (deduplicated) tier footprints.
	HostBytes int64
	DiskBytes int64
	// LogicalBytes sums every live manifest's size — what the tiers
	// would hold without dedup.
	LogicalBytes int64
	// UniqueBytes sums each referenced chunk once.
	UniqueBytes int64
}

// DedupRatio is logical over unique bytes (1 = no sharing).
func (st Stats) DedupRatio() float64 {
	if st.UniqueBytes == 0 {
		return 1
	}
	return float64(st.LogicalBytes) / float64(st.UniqueBytes)
}

// Stats returns the current physical ledger snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Manifests: len(s.manifests), Chunks: len(s.chunks),
		HostBytes: s.hostBytes, DiskBytes: s.diskBytes}
	for _, m := range s.manifests {
		st.LogicalBytes += m.bytesTotal()
	}
	for _, c := range s.chunks {
		if c.refs > 0 {
			st.UniqueBytes += c.bytes
		}
	}
	return st
}

// trimCacheLocked LRU-evicts unreferenced, unpinned cached chunks from
// host RAM until physical usage fits the cap. Chunks holding a live
// image's only copy are never touched. Caller holds s.mu.
func (s *Store) trimCacheLocked() {
	if s.hostCap <= 0 || s.hostBytes <= s.hostCap {
		return
	}
	var victims []*chunk
	for _, c := range s.chunks {
		if c.inHost && c.refs == 0 && c.pins == 0 {
			victims = append(victims, c)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if !victims[i].lastUsed.Equal(victims[j].lastUsed) {
			return victims[i].lastUsed.Before(victims[j].lastUsed)
		}
		return victims[i].seq < victims[j].seq
	})
	for _, c := range victims {
		if s.hostBytes <= s.hostCap {
			return
		}
		c.inHost = false
		s.hostBytes -= c.bytes
		s.reg.Counter("ckpt_cache_evicted_bytes").Add(float64(c.bytes))
		if !c.onDisk {
			delete(s.chunks, c.id)
		}
	}
}

// SelfCheck verifies the store's internal invariants: tier byte totals
// match the chunk flags, refcounts match the manifest lists, no count is
// negative, and every live manifest's chunks are reachable from its
// resident tier (host-resident ⇒ in host RAM; disk-resident ⇒ on disk
// or still cached in RAM). The chaos soak calls this after every
// operation.
func (s *Store) SelfCheck() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var host, disk int64
	refs := make(map[ChunkID]int)
	hostRefs := make(map[ChunkID]int)
	for id, c := range s.chunks {
		if c.refs < 0 || c.hostRefs < 0 || c.pins < 0 {
			return fmt.Errorf("ckptstore: chunk %s has negative counts refs=%d hostRefs=%d pins=%d",
				id, c.refs, c.hostRefs, c.pins)
		}
		if c.inHost {
			host += c.bytes
		}
		if c.onDisk {
			disk += c.bytes
		}
		if !c.inHost && !c.onDisk {
			return fmt.Errorf("ckptstore: chunk %s resident in no tier", id)
		}
	}
	if host != s.hostBytes || disk != s.diskBytes {
		return fmt.Errorf("ckptstore: tier totals host=%d disk=%d, chunks sum host=%d disk=%d",
			s.hostBytes, s.diskBytes, host, disk)
	}
	for key, m := range s.manifests {
		for _, r := range m.chunks {
			c, ok := s.chunks[r.ID]
			if !ok {
				return fmt.Errorf("ckptstore: manifest %q references missing chunk %s", key, r.ID)
			}
			if c.bytes != r.Bytes {
				return fmt.Errorf("ckptstore: manifest %q chunk %s size %d != stored %d", key, r.ID, r.Bytes, c.bytes)
			}
			refs[r.ID]++
			if m.resident == TierHost {
				hostRefs[r.ID]++
				if !c.inHost {
					return fmt.Errorf("ckptstore: host-resident manifest %q chunk %s not in host RAM", key, r.ID)
				}
			}
		}
	}
	for id, c := range s.chunks {
		if c.refs != refs[id] {
			return fmt.Errorf("ckptstore: chunk %s refs=%d, manifests reference it %d times", id, c.refs, refs[id])
		}
		if c.hostRefs != hostRefs[id] {
			return fmt.Errorf("ckptstore: chunk %s hostRefs=%d, host manifests reference it %d times", id, c.hostRefs, hostRefs[id])
		}
	}
	return nil
}
