package ckptstore

import (
	"context"
	"fmt"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
)

// This file is the restore-source machinery: every chunk of a restoring
// (or promoting) manifest is planned against the cheapest reachable
// source under the perfmodel's calibration — local host RAM is free,
// then typically a replica's host RAM over the fabric, then local disk,
// then a replica's disk. Fetches consult the ckptstore.fetch /
// ckptstore.promote chaos sites with bounded retries, then fall back to
// the next-best source, so a torn disk read or a dropped peer
// connection degrades a restore instead of failing it.

// fetchRetries bounds per-source retries of a faulted chunk fetch
// before the planner falls back to the next-best source (mirrors the
// driver's chunk-transfer retry budget).
const fetchRetries = 3

// Source identifies where a chunk fetch reads from.
type Source int

// Restore sources, in the order used to break cost ties.
const (
	SrcHostRAM Source = iota
	SrcPeerRAM
	SrcLocalDisk
	SrcPeerDisk
)

// String returns the snake_case source name used in counters and spans.
func (s Source) String() string {
	switch s {
	case SrcHostRAM:
		return "host_ram"
	case SrcPeerRAM:
		return "peer_ram"
	case SrcLocalDisk:
		return "local_disk"
	default:
		return "peer_disk"
	}
}

// candidate is one reachable source for one chunk, with its modelled
// read cost.
type candidate struct {
	src  Source
	peer string // peer ID for SrcPeerRAM / SrcPeerDisk
	cost time.Duration
}

// sourceCost returns the modelled read time for size bytes from src.
func (s *Store) sourceCost(src Source, size int64) time.Duration {
	switch src {
	case SrcHostRAM:
		return 0
	case SrcPeerRAM:
		return s.tb.PeerRAMReadTime(size)
	case SrcLocalDisk:
		return s.tb.StorageReadTime(perfmodel.TierDisk, size)
	default:
		return s.tb.PeerDiskReadTime(size)
	}
}

// chunkState is a lock-consistent snapshot of one chunk's local tiers.
type chunkState struct {
	inHost bool
	onDisk bool
}

// planChunk ranks the reachable sources for one chunk, cheapest first.
// st is the local snapshot; peer lookups run without the store lock.
func (s *Store) planChunk(r ChunkRef, st chunkState, peers []Peer) []candidate {
	var cands []candidate
	if st.inHost {
		cands = append(cands, candidate{src: SrcHostRAM})
	}
	if st.onDisk {
		cands = append(cands, candidate{src: SrcLocalDisk, cost: s.sourceCost(SrcLocalDisk, r.Bytes)})
	}
	for _, p := range peers {
		inHost, onDisk := p.LookupChunk(r.ID)
		if inHost {
			cands = append(cands, candidate{src: SrcPeerRAM, peer: p.PeerID(), cost: s.sourceCost(SrcPeerRAM, r.Bytes)})
		} else if onDisk {
			cands = append(cands, candidate{src: SrcPeerDisk, peer: p.PeerID(), cost: s.sourceCost(SrcPeerDisk, r.Bytes)})
		}
	}
	// Stable insertion order makes ties deterministic: equal-cost
	// sources resolve by the Source ordering, then peer list order.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.cost < a.cost || (b.cost == a.cost && b.src < a.src) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	return cands
}

// injAt consults the fault injector without holding the store lock
// across the injector's own lock.
func (s *Store) injAt(site chaos.Site) chaos.Outcome {
	s.mu.Lock()
	inj := s.inj
	s.mu.Unlock()
	return inj.At(site)
}

// fetchChunk executes one chunk fetch against its ranked candidates:
// bounded retries per source (a faulted attempt burns its read time),
// then fallback to the next-best source. On success the chunk's bytes
// are cached in local host RAM. Returns the source that served it.
func (s *Store) fetchChunk(ctx context.Context, site chaos.Site, r ChunkRef, cands []candidate) (Source, error) {
	var lastErr error
	for _, cand := range cands {
		if cand.src == SrcHostRAM || cand.src == SrcLocalDisk {
			// Local candidates re-validate against the live tier state:
			// the snapshot may predate a concurrent demotion or trim.
			s.mu.Lock()
			c, ok := s.chunks[r.ID]
			valid := ok && ((cand.src == SrcHostRAM && c.inHost) || (cand.src == SrcLocalDisk && c.onDisk))
			s.mu.Unlock()
			if !valid {
				continue
			}
		}
		if cand.src == SrcHostRAM {
			s.commitFetch(r, SrcHostRAM)
			return SrcHostRAM, nil
		}
		for attempt := 0; attempt < fetchRetries; attempt++ {
			out := s.injAt(site)
			if out.Err != nil {
				lastErr = out.Err
				obs.AnnotateFault(ctx, string(site), out.Err)
				// The read ran and failed; its time is burned.
				s.clock.Sleep(cand.cost)
				continue
			}
			s.clock.Sleep(cand.cost + out.Delay)
			s.commitFetch(r, cand.src)
			return cand.src, nil
		}
	}
	if lastErr != nil {
		return SrcHostRAM, fmt.Errorf("%w %s (%d bytes): last source failed: %w", ErrNoSource, r.ID, r.Bytes, lastErr)
	}
	return SrcHostRAM, fmt.Errorf("%w %s (%d bytes)", ErrNoSource, r.ID, r.Bytes)
}

// commitFetch lands a fetched chunk in the local host cache and records
// the per-source byte counter.
func (s *Store) commitFetch(r ChunkRef, src Source) {
	s.mu.Lock()
	c, ok := s.chunks[r.ID]
	if !ok {
		// A peer-sourced chunk the local store had never seen.
		c = &chunk{id: r.ID, bytes: r.Bytes}
		s.chunks[r.ID] = c
	}
	if !c.inHost {
		c.inHost = true
		s.hostBytes += c.bytes
	}
	c.lastUsed = s.clock.Now()
	s.seq++
	c.seq = s.seq
	s.trimCacheLocked()
	s.mu.Unlock()
	s.reg.Counter("ckpt_fetch_bytes_" + src.String()).Add(float64(r.Bytes))
}

// RestoreSession is one planned restore of a manifest: per-chunk ranked
// sources captured at open time, fetched incrementally as the driver's
// H2D pipeline advances through the image. The session owns the
// ckpt.fetch span; callers must Close it.
type RestoreSession struct {
	s        *Store
	ctx      context.Context
	key      string
	refs     []ChunkRef
	starts   []int64 // image offset of each chunk
	cands    [][]candidate
	fetched  []bool
	span     *obs.Span
	bySource map[Source]int64
}

// OpenRestore plans a restore of key's manifest: every chunk gets a
// ranked source list (local RAM free, then whatever the perfmodel says
// is fastest among peer RAM, local disk, and peer disk). Fails if any
// chunk is reachable from no source.
func (s *Store) OpenRestore(ctx context.Context, key string) (*RestoreSession, error) {
	s.mu.Lock()
	m, ok := s.manifests[key]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownManifest, key)
	}
	refs := append([]ChunkRef(nil), m.chunks...)
	states := make([]chunkState, len(refs))
	for i, r := range refs {
		if c, ok := s.chunks[r.ID]; ok {
			states[i] = chunkState{inHost: c.inHost, onDisk: c.onDisk}
		}
	}
	peers := s.peers
	s.mu.Unlock()

	ctx, span := obs.Start(ctx, "ckpt.fetch",
		obs.String("key", key), obs.String("node", s.nodeID))
	rs := &RestoreSession{
		s: s, ctx: ctx, key: key, refs: refs,
		starts:   make([]int64, len(refs)),
		cands:    make([][]candidate, len(refs)),
		fetched:  make([]bool, len(refs)),
		span:     span,
		bySource: make(map[Source]int64),
	}
	var off int64
	var total int64
	for i, r := range refs {
		rs.starts[i] = off
		off += r.Bytes
		total += r.Bytes
		rs.cands[i] = s.planChunk(r, states[i], peers)
		if len(rs.cands[i]) == 0 {
			span.EndErr(fmt.Errorf("%w %s", ErrNoSource, r.ID))
			return nil, fmt.Errorf("%w %s (%d bytes) of manifest %q", ErrNoSource, r.ID, r.Bytes, key)
		}
	}
	span.SetAttr(obs.Int64("bytes", total), obs.Int("chunks", len(refs)))
	return rs, nil
}

// FetchRange fetches every not-yet-fetched chunk whose image offset
// falls in [from, to), sleeping for the source reads. The driver calls
// this ahead of each H2D chunk so fetch time lands on the restore's
// critical path exactly where the bytes are needed.
func (rs *RestoreSession) FetchRange(from, to int64) error {
	for i, r := range rs.refs {
		if rs.fetched[i] || rs.starts[i] < from || rs.starts[i] >= to {
			continue
		}
		src, err := rs.s.fetchChunk(rs.ctx, chaos.SiteCkptFetch, r, rs.cands[i])
		if err != nil {
			return err
		}
		rs.fetched[i] = true
		rs.bySource[src] += r.Bytes
	}
	return nil
}

// PlanTime returns the modelled total fetch time of the best-ranked
// sources — the perfmodel estimate a scheduler can use before starting.
func (rs *RestoreSession) PlanTime() time.Duration {
	var d time.Duration
	for i := range rs.refs {
		if len(rs.cands[i]) > 0 {
			d += rs.cands[i][0].cost
		}
	}
	return d
}

// Close ends the session's ckpt.fetch span, recording the per-source
// byte split. err is the restore's outcome (nil on success).
func (rs *RestoreSession) Close(err error) {
	for _, src := range []Source{SrcHostRAM, SrcPeerRAM, SrcLocalDisk, SrcPeerDisk} {
		if n := rs.bySource[src]; n > 0 {
			rs.span.SetAttr(obs.Int64("bytes_"+src.String(), n))
		}
	}
	rs.span.EndErr(err)
}

// Promote moves key's manifest residency from disk back to host RAM,
// fetching only the chunks not already host-resident — from whichever
// source (local disk, peer RAM, peer disk) the perfmodel ranks fastest,
// with bounded-retry fallback under the ckptstore.promote fault site.
// Chunks another hot manifest already keeps in RAM are deduplicated for
// free. Returns the bytes actually moved and the bytes deduplicated.
func (s *Store) Promote(ctx context.Context, key string) (moved, dedup int64, err error) {
	ctx, span := obs.Start(ctx, "ckpt.promote",
		obs.String("key", key), obs.String("node", s.nodeID))
	defer func() { span.EndErr(err) }()

	s.mu.Lock()
	m, ok := s.manifests[key]
	if !ok {
		s.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownManifest, key)
	}
	if m.resident == TierHost {
		s.mu.Unlock()
		return 0, 0, nil
	}
	refs := append([]ChunkRef(nil), m.chunks...)
	states := make([]chunkState, len(refs))
	for i, r := range refs {
		if c, ok := s.chunks[r.ID]; ok {
			states[i] = chunkState{inHost: c.inHost, onDisk: c.onDisk}
		}
	}
	peers := s.peers
	s.mu.Unlock()

	for i, r := range refs {
		if states[i].inHost {
			dedup += r.Bytes
			continue
		}
		cands := s.planChunk(r, states[i], peers)
		if len(cands) == 0 {
			return moved, dedup, fmt.Errorf("%w %s (%d bytes) of manifest %q", ErrNoSource, r.ID, r.Bytes, key)
		}
		if _, ferr := s.fetchChunk(ctx, chaos.SiteCkptPromote, r, cands); ferr != nil {
			return moved, dedup, ferr
		}
		moved += r.Bytes
	}

	s.mu.Lock()
	// Re-validate: the manifest may have been released or re-demoted
	// while fetching; promotion commits only against the live record.
	m, ok = s.manifests[key]
	if !ok {
		s.mu.Unlock()
		return moved, dedup, fmt.Errorf("%w: %q released mid-promotion", ErrUnknownManifest, key)
	}
	if m.resident == TierDisk {
		for _, r := range m.chunks {
			if c, ok := s.chunks[r.ID]; ok {
				c.hostRefs++
				if !c.inHost {
					// A trim raced the fetch; the promoted image must be
					// whole in RAM, so the chunk is re-pinned hot.
					c.inHost = true
					s.hostBytes += c.bytes
				}
			}
		}
		m.resident = TierHost
	}
	s.mu.Unlock()
	span.SetAttr(obs.Int64("moved_bytes", moved), obs.Int64("dedup_bytes", dedup))
	s.reg.Counter("ckpt_promote_bytes_moved").Add(float64(moved))
	s.reg.Counter("ckpt_promote_bytes_dedup").Add(float64(dedup))
	return moved, dedup, nil
}
