package ckptstore

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

var testEpoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

// testStore builds a store on a fast scaled clock (sleeps are ~free in
// wall time but still advance the simulated clock deterministically).
func testStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 20000)
	tb, _ := perfmodel.TestbedByName("h100")
	return New(clock, tb, opts...)
}

// refsFor builds an n-chunk manifest of size bytes each, keyed by name.
func refsFor(name string, n int, bytes int64) []ChunkRef {
	refs := make([]ChunkRef, n)
	for i := range refs {
		refs[i] = ChunkRef{ID: ChunkKey(name, "w", strconv.Itoa(i)), Bytes: bytes}
	}
	return refs
}

// checkpoint runs the full plan/commit protocol for key.
func checkpoint(s *Store, key string, refs []ChunkRef) PutStats {
	s.PlanCheckpoint(key, refs)
	return s.CommitCheckpoint(context.Background(), key)
}

func mustSelfCheck(t *testing.T, s *Store) {
	t.Helper()
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkKeyDeterministicAndDistinct(t *testing.T) {
	a := ChunkKey("model", "w", "0")
	if a != ChunkKey("model", "w", "0") {
		t.Fatal("equal parts produced different IDs")
	}
	for _, other := range [][]string{
		{"model", "w", "1"},
		{"model", "z", "0"},
		{"model2", "w", "0"},
		{"modelw", "0"}, // separator must prevent part-boundary collisions
	} {
		if ChunkKey(other...) == a {
			t.Fatalf("parts %v collided with [model w 0]", other)
		}
	}
}

func TestCommitDedupAcrossKeys(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 4, 100)

	st1 := checkpoint(s, "a", refs)
	if st1.NewBytes != 400 || st1.DedupBytes != 0 {
		t.Fatalf("first commit: %+v", st1)
	}
	// A second image with identical content stores nothing new.
	st2 := checkpoint(s, "b", refs)
	if st2.NewBytes != 0 || st2.DedupBytes != 400 {
		t.Fatalf("second commit: %+v", st2)
	}
	stats := s.Stats()
	if stats.HostBytes != 400 || stats.LogicalBytes != 800 || stats.UniqueBytes != 400 {
		t.Fatalf("stats: %+v", stats)
	}
	if r := stats.DedupRatio(); r != 2 {
		t.Fatalf("dedup ratio = %v, want 2", r)
	}
	mustSelfCheck(t, s)
}

func TestPlanReportsCleanChunksAfterRelease(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 3, 50)
	checkpoint(s, "a", refs)

	// Restore completes: the manifest is released but the chunk payloads
	// stay cached — the delta-checkpoint working set.
	s.Release("a")
	mustSelfCheck(t, s)

	clean := s.PlanCheckpoint("a", refs)
	for i, c := range clean {
		if !c {
			t.Fatalf("chunk %d not clean after release+replan", i)
		}
	}
	st := s.CommitCheckpoint(context.Background(), "a")
	if st.NewBytes != 0 || st.DedupBytes != 150 {
		t.Fatalf("re-checkpoint after release: %+v", st)
	}
	mustSelfCheck(t, s)
}

func TestDemoteKeepsSharedChunksHot(t *testing.T) {
	s := testStore(t)
	shared := refsFor("m", 2, 100)
	extra := ChunkRef{ID: ChunkKey("a", "d", "0"), Bytes: 60}

	checkpoint(s, "a", append(append([]ChunkRef(nil), shared...), extra))
	checkpoint(s, "b", shared)

	written, sleep, err := s.Demote(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	// Only a's exclusive chunk goes to disk; the two chunks shared with
	// host-resident b keep their host copies.
	if written != 60 {
		t.Fatalf("written = %d, want 60", written)
	}
	if sleep <= 0 {
		t.Fatal("demote of non-empty exclusive set must cost time")
	}
	if tier, ok := s.Resident("a"); !ok || tier != TierDisk {
		t.Fatalf("a resident = %v/%v", tier, ok)
	}
	for _, r := range shared {
		if inHost, _ := s.LookupChunk(r.ID); !inHost {
			t.Fatalf("shared chunk %s lost its host copy", r.ID)
		}
	}
	if inHost, onDisk := s.LookupChunk(extra.ID); inHost || !onDisk {
		t.Fatalf("exclusive chunk host=%v disk=%v, want disk only", inHost, onDisk)
	}
	mustSelfCheck(t, s)

	// Promoting back moves only the exclusive chunk; shared bytes dedup.
	moved, dedup, err := s.Promote(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 60 || dedup != 200 {
		t.Fatalf("promote moved=%d dedup=%d, want 60/200", moved, dedup)
	}
	if tier, _ := s.Resident("a"); tier != TierHost {
		t.Fatal("a not host-resident after promote")
	}
	mustSelfCheck(t, s)
}

func TestPinPreventsDemotionDrop(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 2, 100)
	checkpoint(s, "a", refs)

	// An in-flight delta checkpoint of b pinned a's chunks as clean.
	clean := s.PlanCheckpoint("b", refs)
	if !clean[0] || !clean[1] {
		t.Fatal("chunks not clean for b")
	}
	// Demoting a must not drop the pinned host copies.
	if _, _, err := s.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if inHost, _ := s.LookupChunk(r.ID); !inHost {
			t.Fatalf("pinned chunk %s dropped from host RAM", r.ID)
		}
	}
	s.CommitCheckpoint(context.Background(), "b")
	mustSelfCheck(t, s)
}

func TestAbortCheckpointRestoresState(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 2, 100)
	checkpoint(s, "a", refs)
	s.PlanCheckpoint("b", refs)
	s.AbortCheckpoint("b")
	mustSelfCheck(t, s)
	if _, ok := s.Resident("b"); ok {
		t.Fatal("aborted checkpoint left a manifest")
	}
}

func TestTrimCacheEvictsLRUUnreferenced(t *testing.T) {
	s := testStore(t, WithHostCap(250))
	// Two images, then both released: 200 bytes cached, under the cap.
	checkpoint(s, "a", refsFor("ma", 1, 100))
	checkpoint(s, "b", refsFor("mb", 1, 100))
	s.Release("a")
	s.Release("b")
	// A third, live image pushes physical host bytes to 300 > 250: the
	// LRU cached chunk (a's) must go; the live image must not.
	checkpoint(s, "c", refsFor("mc", 1, 100))
	mustSelfCheck(t, s)

	if inHost, _ := s.LookupChunk(ChunkKey("ma", "w", "0")); inHost {
		t.Fatal("oldest unreferenced chunk survived the trim")
	}
	if inHost, _ := s.LookupChunk(ChunkKey("mb", "w", "0")); !inHost {
		t.Fatal("newer cached chunk evicted out of LRU order")
	}
	if inHost, _ := s.LookupChunk(ChunkKey("mc", "w", "0")); !inHost {
		t.Fatal("live image chunk evicted")
	}
	if st := s.Stats(); st.HostBytes != 200 {
		t.Fatalf("host bytes = %d, want 200", st.HostBytes)
	}
}

// peerStub is a canned remote inventory.
type peerStub struct {
	id     string
	inHost map[ChunkID]bool
	onDisk map[ChunkID]bool
}

func (p *peerStub) PeerID() string { return p.id }
func (p *peerStub) LookupChunk(id ChunkID) (bool, bool) {
	return p.inHost[id], p.onDisk[id]
}

func TestRestorePlanRanksPeerRAMOverLocalDisk(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 2, 1<<30)
	checkpoint(s, "a", refs)
	if _, _, err := s.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	// A peer holds chunk 0 in host RAM; on the H100 testbed the fabric
	// read from peer RAM beats the local NVMe read.
	peer := &peerStub{id: "n2", inHost: map[ChunkID]bool{refs[0].ID: true}}
	s.SetPeers([]Peer{peer})

	sess, err := s.OpenRestore(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.FetchRange(0, 2<<30); err != nil {
		t.Fatal(err)
	}
	sess.Close(nil)
	if got := sess.bySource[SrcPeerRAM]; got != 1<<30 {
		t.Fatalf("peer RAM served %d bytes, want chunk 0 (%d)", got, 1<<30)
	}
	if got := sess.bySource[SrcLocalDisk]; got != 1<<30 {
		t.Fatalf("local disk served %d bytes, want chunk 1 (%d)", got, 1<<30)
	}
	mustSelfCheck(t, s)
}

func TestFetchFaultFallsBackToNextSource(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 1, 1<<20)
	checkpoint(s, "a", refs)
	if _, _, err := s.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	peer := &peerStub{id: "n2", inHost: map[ChunkID]bool{refs[0].ID: true}}
	s.SetPeers([]Peer{peer})
	// Exhaust the peer-RAM source's entire retry budget: the fetch must
	// fall back to local disk instead of failing the restore.
	s.SetChaos(chaos.FailNext(chaos.SiteCkptFetch, fetchRetries))

	sess, err := s.OpenRestore(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.FetchRange(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	sess.Close(nil)
	if sess.bySource[SrcLocalDisk] != 1<<20 {
		t.Fatalf("bySource = %v, want local_disk fallback", sess.bySource)
	}
	mustSelfCheck(t, s)
}

func TestFetchFailsWhenEverySourceFaults(t *testing.T) {
	s := testStore(t)
	refs := refsFor("m", 1, 1<<20)
	checkpoint(s, "a", refs)
	if _, _, err := s.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	s.SetChaos(chaos.FailNext(chaos.SiteCkptFetch, fetchRetries))

	sess, err := s.OpenRestore(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	err = sess.FetchRange(0, 1<<20)
	if !errors.Is(err, ErrNoSource) {
		t.Fatalf("err = %v, want ErrNoSource", err)
	}
	sess.Close(err)
	mustSelfCheck(t, s)
}

func TestOpenRestoreUnknownManifest(t *testing.T) {
	s := testStore(t)
	if _, err := s.OpenRestore(context.Background(), "ghost"); !errors.Is(err, ErrUnknownManifest) {
		t.Fatalf("err = %v, want ErrUnknownManifest", err)
	}
}

func TestPromoteFromPeerWhenLocalDiskMissing(t *testing.T) {
	// A manifest whose chunks exist only on a peer (e.g. advertised via
	// the cluster registry) can still be promoted: every byte comes over
	// the fabric.
	s := testStore(t)
	refs := refsFor("m", 2, 1<<20)
	checkpoint(s, "a", refs)
	if _, _, err := s.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	// Another image pushed a's exclusive chunks out... simulate the
	// peer-only case by a second store demote + trim being the only copy
	// holder: here we just verify peer fetch is used when it is cheapest.
	peer := &peerStub{id: "n2", inHost: map[ChunkID]bool{refs[0].ID: true, refs[1].ID: true}}
	s.SetPeers([]Peer{peer})
	moved, dedup, err := s.Promote(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2<<20 || dedup != 0 {
		t.Fatalf("promote moved=%d dedup=%d", moved, dedup)
	}
	if v := s.reg.Counter("ckpt_fetch_bytes_peer_ram").Value(); v != float64(2<<20) {
		t.Fatalf("peer_ram fetch counter = %v, want %v", v, float64(2<<20))
	}
	mustSelfCheck(t, s)
}

func TestReleaseUnknownAndDoubleRelease(t *testing.T) {
	s := testStore(t)
	s.Release("ghost") // no-op
	checkpoint(s, "a", refsFor("m", 1, 10))
	s.Release("a")
	s.Release("a") // second release must not double-decrement
	mustSelfCheck(t, s)
}

func TestMissingHostBytesAndFrac(t *testing.T) {
	s := testStore(t)
	shared := refsFor("m", 1, 100)
	solo := ChunkRef{ID: ChunkKey("a", "d", "0"), Bytes: 300}
	checkpoint(s, "a", append([]ChunkRef{solo}, shared...))
	checkpoint(s, "b", shared)
	if _, _, err := s.Demote(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if got := s.MissingHostBytes("a"); got != 300 {
		t.Fatalf("MissingHostBytes = %d, want 300", got)
	}
	if got := s.HostChunkFrac("a"); got != 0.25 {
		t.Fatalf("HostChunkFrac = %v, want 0.25", got)
	}
	if got := s.HostChunkFrac("ghost"); got != 0 {
		t.Fatalf("unknown frac = %v, want 0", got)
	}
}

func TestRegistryCountersPublished(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := simclock.NewScaled(testEpoch, 20000)
	tb, _ := perfmodel.TestbedByName("h100")
	s := New(clock, tb, WithRegistry(reg), WithNodeID("n1"))
	checkpoint(s, "a", refsFor("m", 2, 100))
	checkpoint(s, "b", refsFor("m", 2, 100))
	if got := reg.Counter("ckpt_new_bytes").Value(); got != 200 {
		t.Fatalf("ckpt_new_bytes = %v", got)
	}
	if got := reg.Counter("ckpt_dedup_bytes").Value(); got != 200 {
		t.Fatalf("ckpt_dedup_bytes = %v", got)
	}
	if s.PeerID() != "n1" {
		t.Fatalf("PeerID = %q", s.PeerID())
	}
}
