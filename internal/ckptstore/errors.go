package ckptstore

import "errors"

// The store's error vocabulary. Every error returned by this package
// wraps exactly one of these sentinels, so callers branch with
// errors.Is:
//
//   - ErrUnknownManifest: the key names no live manifest (never
//     checkpointed, or already released). The caller holds a stale
//     handle.
//   - ErrNoSource: a chunk is reachable from no restore source — every
//     candidate (local host, local disk, peer RAM, peer disk) was
//     missing or exhausted its bounded retries under injected faults.
//     The restore or promotion aborts; the manifest is untouched.
//
// Fetch paths additionally surface chaos.ErrInjected (wrapped) when the
// final retry of the last-resort source fails.
var (
	ErrUnknownManifest = errors.New("ckptstore: unknown manifest")
	ErrNoSource        = errors.New("ckptstore: no restore source for chunk")
)
