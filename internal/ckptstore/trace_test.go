package ckptstore

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// tracedLifecycle runs a fixed checkpoint → delta re-checkpoint →
// demote → restore-with-fault → promote sequence under a tracer and
// returns the deterministic WriteTree rendering plus the registry.
func tracedLifecycle(t *testing.T) (string, *metrics.Registry) {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 20000)
	tracer := obs.NewTracer(clock)
	reg := metrics.NewRegistry()
	tracer.SetRegistry(reg)
	tb, _ := perfmodel.TestbedByName("h100")
	s := New(clock, tb, WithRegistry(reg), WithNodeID("n1"))
	ctx := obs.WithTracer(context.Background(), tracer)

	refs := refsFor("m", 3, 1<<20)

	// Base checkpoint: everything is new.
	s.PlanCheckpoint("a", refs)
	s.CommitCheckpoint(ctx, "a")
	// Replica checkpoint: everything dedups.
	s.PlanCheckpoint("b", refs)
	s.CommitCheckpoint(ctx, "b")
	// Demote b (shared chunks kept hot by a), then a (writes to disk).
	if _, _, err := s.Demote(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Demote(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	// Restore a with one faulted fetch: the retry is annotated on the
	// ckpt.fetch span.
	s.SetChaos(chaos.FailNext(chaos.SiteCkptFetch, 1))
	sess, err := s.OpenRestore(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.FetchRange(0, 3<<20); err != nil {
		t.Fatal(err)
	}
	sess.Close(nil)
	s.Release("a")
	// Promote b back: its bytes are already hot from a's restore.
	if _, _, err := s.Promote(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tracer.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), reg
}

// TestGoldenTraceLifecycle pins the ckpt.dedup / ckpt.fetch /
// ckpt.promote span shapes: two fresh runs must render byte-identically
// and match testdata/golden_lifecycle_tree.txt (regenerate with -update
// after an intentional change).
func TestGoldenTraceLifecycle(t *testing.T) {
	first, _ := tracedLifecycle(t)
	second, _ := tracedLifecycle(t)
	if first != second {
		t.Fatalf("two identical runs rendered different trees:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}

	golden := filepath.Join("testdata", "golden_lifecycle_tree.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if first != string(want) {
		t.Fatalf("trace tree deviates from golden file (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", first, want)
	}

	for _, must := range []string{
		"- ckpt.dedup",
		"- ckpt.fetch",
		"- ckpt.promote",
		"dedup_bytes=3145728", // replica checkpoint fully deduped
		"bytes_local_disk=",   // restore read a's exclusive bytes from disk
		"fault",               // the injected fetch fault is annotated
	} {
		if !strings.Contains(first, must) {
			t.Errorf("trace tree missing %q:\n%s", must, first)
		}
	}
}

// TestLifecycleCounters pins the per-tier byte counters the lifecycle
// must leave in the metrics registry.
func TestLifecycleCounters(t *testing.T) {
	_, reg := tracedLifecycle(t)
	mb := float64(1 << 20)
	for counter, want := range map[string]float64{
		"ckpt_new_bytes":                3 * mb, // base checkpoint
		"ckpt_dedup_bytes":              3 * mb, // replica checkpoint
		"ckpt_fetch_bytes_local_disk":   3 * mb, // restore of a
		"ckpt_promote_bytes_dedup":      3 * mb, // b promoted over hot bytes
		"ckpt_promote_bytes_moved":      0,
		"ckpt_demote_shared_kept_bytes": 3 * mb, // b's demote kept shared chunks
	} {
		if got := reg.Counter(counter).Value(); got != want {
			t.Errorf("%s = %v, want %v", counter, got, want)
		}
	}
}
