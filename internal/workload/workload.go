// Package workload generates the synthetic inference workloads used to
// reproduce the paper's motivation figures: the weekly token-volume
// pattern of Azure's Coding and Conversational traces (Figure 1), bursty
// time-varying request arrivals for serving experiments, and the
// month-long sporadic multi-model cluster trace behind the GPU
// utilization analysis (Figure 3).
package workload

import (
	"math"
	"math/rand"
	"time"
)

// Class is a workload class with distinct token-length characteristics
// (§1: large-input/small-output requests are compute-intensive; the
// reverse are memory-bound).
type Class string

// The two Azure trace classes of Figure 1, plus the non-generative
// classes the multi-protocol front door serves (embedding and rerank
// calls from RAG pipelines, and vision-tagged chat).
const (
	ClassCoding         Class = "coding"
	ClassConversational Class = "conversational"
	ClassEmbedding      Class = "embedding"
	ClassRerank         Class = "rerank"
	ClassVision         Class = "vision"
)

// TokenProfile describes a class's token-length distribution.
type TokenProfile struct {
	// MeanInput/MeanOutput are the log-normal medians.
	MeanInput, MeanOutput float64
	// SigmaInput/SigmaOutput are the log-normal shape parameters.
	SigmaInput, SigmaOutput float64
}

// Profile returns the token profile for a class, matching the qualitative
// shape of the Azure traces: coding requests carry long contexts and
// short completions; conversational requests are the reverse.
func Profile(c Class) TokenProfile {
	switch c {
	case ClassCoding:
		return TokenProfile{MeanInput: 2000, SigmaInput: 0.9, MeanOutput: 40, SigmaOutput: 0.7}
	case ClassEmbedding:
		// RAG-chunk embedding: modest inputs, no generated output (the
		// response is the vector; output tokens are zero on the wire but
		// kept at 1 so downstream accounting never divides by zero).
		return TokenProfile{MeanInput: 300, SigmaInput: 0.6, MeanOutput: 1, SigmaOutput: 0.01}
	case ClassRerank:
		// Query plus a page of candidate documents per call.
		return TokenProfile{MeanInput: 1500, SigmaInput: 0.5, MeanOutput: 1, SigmaOutput: 0.01}
	case ClassVision:
		// Vision chat: the image's 576-token projector output dominates
		// the text prompt; answers are conversational-length.
		return TokenProfile{MeanInput: 900, SigmaInput: 0.5, MeanOutput: 180, SigmaOutput: 0.7}
	default: // conversational
		return TokenProfile{MeanInput: 700, SigmaInput: 0.8, MeanOutput: 250, SigmaOutput: 0.8}
	}
}

// Request is one generated inference request.
type Request struct {
	At           time.Time
	Class        Class
	Model        string
	InputTokens  int
	OutputTokens int
}

// DiurnalRate returns the request-rate multiplier in [0,1] for a moment
// in the weekly cycle: weekday business-hours peak (8 AM – 5 PM, the
// Figure 1 zoom), an evening shoulder for conversational traffic, and a
// weekend trough.
func DiurnalRate(c Class, t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	weekday := t.Weekday()
	weekend := weekday == time.Saturday || weekday == time.Sunday

	// Business-hours bell centred at 12:30 with the 8–17 span.
	business := math.Exp(-math.Pow(hour-12.5, 2) / (2 * 3.5 * 3.5))
	// Evening shoulder for conversational usage (19:00–23:00).
	evening := math.Exp(-math.Pow(hour-21, 2) / (2 * 2 * 2))
	// Overnight floor.
	const floor = 0.06

	// Overnight batch window for pipeline-driven traffic (1:00–5:00).
	overnight := math.Exp(-math.Pow(hour-3, 2) / (2 * 1.5 * 1.5))

	var v float64
	switch c {
	case ClassCoding:
		v = floor + 0.94*business
		if weekend {
			v *= 0.25
		}
	case ClassEmbedding:
		// Ingestion pipelines: flatter daytime load plus a nightly
		// re-index batch window, barely affected by weekends.
		v = floor + 0.45*business + 0.50*overnight
		if v > 1 {
			v = 1
		}
		if weekend {
			v *= 0.85
		}
	case ClassRerank:
		// Rerank rides search traffic: business-hours shaped, no evening
		// shoulder, moderate weekend dip.
		v = floor + 0.80*business
		if weekend {
			v *= 0.45
		}
	case ClassVision:
		// Vision chat follows conversational usage with a stronger
		// evening shoulder (consumer photo queries).
		v = floor + 0.55*business + 0.45*evening
		if v > 1 {
			v = 1
		}
		if weekend {
			v *= 0.70
		}
	default:
		v = floor + 0.70*business + 0.35*evening
		if v > 1 {
			v = 1
		}
		if weekend {
			v *= 0.55
		}
	}
	return v
}

// Generator produces deterministic synthetic workloads.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// lognormal draws a log-normal sample with the given median and sigma.
func (g *Generator) lognormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*g.rng.NormFloat64())
}

// Tokens draws an (input, output) token pair for a class.
func (g *Generator) Tokens(c Class) (in, out int) {
	p := Profile(c)
	in = int(g.lognormal(p.MeanInput, p.SigmaInput)) + 1
	out = int(g.lognormal(p.MeanOutput, p.SigmaOutput)) + 1
	const maxTokens = 128 * 1024
	if in > maxTokens {
		in = maxTokens
	}
	if out > maxTokens {
		out = maxTokens
	}
	return in, out
}

// Arrivals generates a non-homogeneous Poisson arrival sequence for a
// class between start and end: peakPerHour scales the diurnal curve, and
// burstiness > 1 adds gamma-distributed rate noise (the unpredictable
// bursts of §1).
func (g *Generator) Arrivals(c Class, model string, start, end time.Time, peakPerHour, burstiness float64) []Request {
	if burstiness < 1 {
		burstiness = 1
	}
	var out []Request
	// Thinning with 1-minute steps: cheap and accurate enough at the
	// hour-scale rates we reproduce.
	const step = time.Minute
	for t := start; t.Before(end); t = t.Add(step) {
		rate := peakPerHour * DiurnalRate(c, t) / 60 // per minute
		// Burst noise: multiply by a gamma(k, 1/k) factor with k =
		// 1/(burstiness-1+eps): higher burstiness, heavier tails.
		if burstiness > 1 {
			k := 1 / (burstiness - 1)
			rate *= g.gamma(k) / k
		}
		n := g.poisson(rate)
		for i := 0; i < n; i++ {
			in, outTok := g.Tokens(c)
			out = append(out, Request{
				At:           t.Add(time.Duration(g.rng.Float64() * float64(step))),
				Class:        c,
				Model:        model,
				InputTokens:  in,
				OutputTokens: outTok,
			})
		}
	}
	return out
}

// poisson draws a Poisson sample (Knuth for small lambda, normal
// approximation for large).
func (g *Generator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(lambda + math.Sqrt(lambda)*g.rng.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// gamma draws a gamma(shape, 1) sample (Marsaglia-Tsang).
func (g *Generator) gamma(shape float64) float64 {
	if shape < 1 {
		u := g.rng.Float64()
		return g.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// HourlyBucket aggregates token volume over one hour (a Figure 1 sample).
type HourlyBucket struct {
	Start        time.Time
	Requests     int
	InputTokens  int64
	OutputTokens int64
}

// BucketHourly aggregates requests into hourly token-volume buckets
// covering [start, end).
func BucketHourly(reqs []Request, start, end time.Time) []HourlyBucket {
	n := int(end.Sub(start) / time.Hour)
	if n <= 0 {
		return nil
	}
	buckets := make([]HourlyBucket, n)
	for i := range buckets {
		buckets[i].Start = start.Add(time.Duration(i) * time.Hour)
	}
	for _, r := range reqs {
		if r.At.Before(start) {
			continue // duration division truncates toward zero
		}
		idx := int(r.At.Sub(start) / time.Hour)
		if idx >= n {
			continue
		}
		buckets[idx].Requests++
		buckets[idx].InputTokens += int64(r.InputTokens)
		buckets[idx].OutputTokens += int64(r.OutputTokens)
	}
	return buckets
}
