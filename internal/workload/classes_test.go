package workload

import (
	"testing"
	"time"
)

func TestNewClassProfiles(t *testing.T) {
	for _, c := range []Class{ClassEmbedding, ClassRerank, ClassVision} {
		p := Profile(c)
		if p.MeanInput <= 0 || p.MeanOutput <= 0 {
			t.Fatalf("%s profile = %+v", c, p)
		}
	}
	if Profile(ClassEmbedding).MeanOutput > 2 || Profile(ClassRerank).MeanOutput > 2 {
		t.Fatal("encoder classes must not generate meaningful output tokens")
	}
	if Profile(ClassVision).MeanOutput < 50 {
		t.Fatal("vision chat must generate conversational-length answers")
	}
}

func TestNewClassDiurnalRates(t *testing.T) {
	// A Monday in the experiment epoch's week.
	monday := time.Date(2025, 11, 17, 0, 0, 0, 0, time.UTC)
	at := func(h int) time.Time { return monday.Add(time.Duration(h) * time.Hour) }

	for _, c := range []Class{ClassEmbedding, ClassRerank, ClassVision} {
		for h := 0; h < 24; h++ {
			v := DiurnalRate(c, at(h))
			if v <= 0 || v > 1 {
				t.Fatalf("%s rate at %02d:00 = %v, want (0,1]", c, h, v)
			}
		}
	}
	// Embedding's overnight re-index window: 3 AM beats 3 AM coding load.
	if DiurnalRate(ClassEmbedding, at(3)) <= DiurnalRate(ClassCoding, at(3)) {
		t.Fatal("embedding must carry an overnight batch window coding lacks")
	}
	// Rerank follows search: noon ≫ midnight.
	if DiurnalRate(ClassRerank, at(12)) < 4*DiurnalRate(ClassRerank, at(0)) {
		t.Fatal("rerank must be business-hours shaped")
	}
	// Vision has an evening shoulder: 21:00 beats 09:00 by less than
	// conversational-style margins but must clearly beat the overnight floor.
	if DiurnalRate(ClassVision, at(21)) < 3*DiurnalRate(ClassVision, at(3)) {
		t.Fatal("vision must carry an evening shoulder")
	}
	// Weekend behavior: embedding barely dips, coding collapses.
	saturday := time.Date(2025, 11, 22, 12, 0, 0, 0, time.UTC)
	embedDip := DiurnalRate(ClassEmbedding, saturday) / DiurnalRate(ClassEmbedding, at(12))
	codingDip := DiurnalRate(ClassCoding, saturday) / DiurnalRate(ClassCoding, at(12))
	if embedDip <= codingDip {
		t.Fatal("pipeline traffic must be less weekend-sensitive than coding")
	}
}

func TestNewClassArrivalsGenerate(t *testing.T) {
	g := NewGenerator(7)
	start := time.Date(2025, 11, 17, 0, 0, 0, 0, time.UTC)
	reqs := g.Arrivals(ClassEmbedding, "embed-model", start, start.Add(24*time.Hour), 120, 1.2)
	if len(reqs) == 0 {
		t.Fatal("no embedding arrivals generated")
	}
	for _, r := range reqs {
		if r.Class != ClassEmbedding || r.Model != "embed-model" || r.InputTokens <= 0 {
			t.Fatalf("request = %+v", r)
		}
	}
}
