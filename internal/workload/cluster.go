package workload

import (
	"math"
	"time"
)

// ClusterModel describes one model deployed on the shared cluster GPU in
// the Figure 3 study.
type ClusterModel struct {
	Name string
	// MemBytes is the GPU memory the model's engine reserves while
	// resident.
	MemBytes int64
	// PeakPerHour is the model's request rate at its busiest hour.
	PeakPerHour float64
	// Burstiness > 1 adds heavy-tailed rate noise.
	Burstiness float64
	// Class shapes its token distribution and diurnal curve.
	Class Class
}

// ClusterSample is one point of the Figure 3 series: GPU compute
// utilization and memory consumption at a sampling instant.
type ClusterSample struct {
	T           time.Time
	Utilization float64 // [0,1] compute utilization
	MemBytes    int64   // resident GPU memory
}

// ClusterTrace reproduces the Figure 3 methodology: six models served
// from a single 80 GB H100 by a small academic group over a month, with
// dedicated (always-resident) provisioning. Memory stays near the sum of
// the deployed models while compute utilization is low and spiky —
// exactly the underutilization the paper motivates against.
//
// busyPerRequest is the GPU-seconds of compute one request occupies;
// sampleEvery sets the series resolution.
func ClusterTrace(g *Generator, ms []ClusterModel, start time.Time, days int,
	busyPerRequest time.Duration, sampleEvery time.Duration) []ClusterSample {
	end := start.Add(time.Duration(days) * 24 * time.Hour)

	// Generate each model's arrivals and convert to busy intervals.
	type interval struct{ s, e time.Time }
	var busy []interval
	var residentMem int64
	for _, m := range ms {
		residentMem += m.MemBytes
		reqs := g.Arrivals(m.Class, m.Name, start, end, m.PeakPerHour, m.Burstiness)
		for _, r := range reqs {
			// Busy time scales with the request's output length relative
			// to the class median, bounded to keep single requests sane.
			p := Profile(r.Class)
			scale := float64(r.OutputTokens) / p.MeanOutput
			if scale > 10 {
				scale = 10
			}
			d := time.Duration(float64(busyPerRequest) * scale)
			busy = append(busy, interval{r.At, r.At.Add(d)})
		}
	}

	// Sample utilization: fraction of each sampling window covered by busy
	// intervals (capped at 1; overlapping models share the GPU).
	n := int(end.Sub(start) / sampleEvery)
	samples := make([]ClusterSample, n)
	// Accumulate busy seconds per window.
	busySec := make([]float64, n)
	for _, iv := range busy {
		sIdx := int(iv.s.Sub(start) / sampleEvery)
		eIdx := int(iv.e.Sub(start) / sampleEvery)
		for i := sIdx; i <= eIdx && i < n; i++ {
			if i < 0 {
				continue
			}
			winStart := start.Add(time.Duration(i) * sampleEvery)
			winEnd := winStart.Add(sampleEvery)
			overlap := minTime(iv.e, winEnd).Sub(maxTime(iv.s, winStart))
			if overlap > 0 {
				busySec[i] += overlap.Seconds()
			}
		}
	}
	win := sampleEvery.Seconds()
	for i := range samples {
		u := busySec[i] / win
		if u > 1 {
			u = 1
		}
		samples[i] = ClusterSample{
			T:           start.Add(time.Duration(i) * sampleEvery),
			Utilization: u,
			MemBytes:    residentMem,
		}
	}
	return samples
}

// UtilizationStats summarizes a cluster trace: mean and p95 utilization
// and the mean resident memory fraction of capacity.
func UtilizationStats(samples []ClusterSample, capacityBytes int64) (meanUtil, p95Util, memFrac float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	var sum float64
	var mem float64
	utils := make([]float64, len(samples))
	for i, s := range samples {
		sum += s.Utilization
		mem += float64(s.MemBytes)
		utils[i] = s.Utilization
	}
	meanUtil = sum / float64(len(samples))
	memFrac = mem / float64(len(samples)) / float64(capacityBytes)
	// p95 via partial sort.
	sortFloats(utils)
	idx := int(math.Ceil(0.95*float64(len(utils)))) - 1
	if idx < 0 {
		idx = 0
	}
	p95Util = utils[idx]
	return meanUtil, p95Util, memFrac
}

func sortFloats(v []float64) {
	// Insertion sort is fine at Figure 3 sample counts; avoids another
	// import.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
