package workload

import (
	"testing"
	"time"
)

var monday = time.Date(2025, 11, 17, 0, 0, 0, 0, time.UTC) // a Monday

func TestDiurnalRateShape(t *testing.T) {
	// Business hours beat overnight on a weekday for both classes.
	noon := monday.Add(12 * time.Hour)
	threeAM := monday.Add(3 * time.Hour)
	for _, c := range []Class{ClassCoding, ClassConversational} {
		if DiurnalRate(c, noon) <= DiurnalRate(c, threeAM) {
			t.Errorf("%s: noon rate not above 3AM", c)
		}
	}
	// Weekends are quieter than weekdays at the same hour.
	saturdayNoon := monday.AddDate(0, 0, 5).Add(12 * time.Hour)
	if DiurnalRate(ClassCoding, saturdayNoon) >= DiurnalRate(ClassCoding, noon) {
		t.Error("coding: weekend not quieter than weekday")
	}
	// Coding drops off harder on weekends than conversational (Figure 1).
	codingDrop := DiurnalRate(ClassCoding, saturdayNoon) / DiurnalRate(ClassCoding, noon)
	convDrop := DiurnalRate(ClassConversational, saturdayNoon) / DiurnalRate(ClassConversational, noon)
	if codingDrop >= convDrop {
		t.Errorf("weekend drop: coding %.2f vs conversational %.2f", codingDrop, convDrop)
	}
	// Rates stay in [0, 1].
	for h := 0; h < 24*7; h++ {
		at := monday.Add(time.Duration(h) * time.Hour)
		for _, c := range []Class{ClassCoding, ClassConversational} {
			if r := DiurnalRate(c, at); r < 0 || r > 1 {
				t.Fatalf("rate out of range at %v: %v", at, r)
			}
		}
	}
}

func TestTokenProfiles(t *testing.T) {
	// Figure 1 / §1: coding is input-heavy, conversational output-heavy.
	coding := Profile(ClassCoding)
	conv := Profile(ClassConversational)
	if coding.MeanInput/coding.MeanOutput <= conv.MeanInput/conv.MeanOutput {
		t.Fatal("coding input:output ratio not above conversational")
	}
}

func TestTokensDeterministic(t *testing.T) {
	a := NewGenerator(42)
	b := NewGenerator(42)
	for i := 0; i < 100; i++ {
		ai, ao := a.Tokens(ClassCoding)
		bi, bo := b.Tokens(ClassCoding)
		if ai != bi || ao != bo {
			t.Fatal("same seed produced different tokens")
		}
		if ai <= 0 || ao <= 0 {
			t.Fatal("non-positive token count")
		}
	}
}

func TestTokensClassSkew(t *testing.T) {
	g := NewGenerator(7)
	var codingIn, codingOut, convIn, convOut int64
	const n = 2000
	for i := 0; i < n; i++ {
		ci, co := g.Tokens(ClassCoding)
		vi, vo := g.Tokens(ClassConversational)
		codingIn += int64(ci)
		codingOut += int64(co)
		convIn += int64(vi)
		convOut += int64(vo)
	}
	if codingIn <= convIn {
		t.Error("coding inputs not longer than conversational on average")
	}
	if codingOut >= convOut {
		t.Error("coding outputs not shorter than conversational on average")
	}
}

func TestArrivalsDiurnal(t *testing.T) {
	g := NewGenerator(1)
	day := monday
	reqs := g.Arrivals(ClassCoding, "m", day, day.Add(24*time.Hour), 600, 1)
	if len(reqs) == 0 {
		t.Fatal("no arrivals generated")
	}
	var business, night int
	for _, r := range reqs {
		h := r.At.Hour()
		switch {
		case h >= 8 && h < 17:
			business++
		case h < 6:
			night++
		}
		if r.At.Before(day) || !r.At.Before(day.Add(24*time.Hour)) {
			t.Fatalf("arrival outside window: %v", r.At)
		}
		if r.Model != "m" || r.Class != ClassCoding {
			t.Fatalf("bad request metadata: %+v", r)
		}
	}
	if business <= 3*night {
		t.Fatalf("business hours %d vs night %d: diurnal shape missing", business, night)
	}
}

func TestArrivalsBurstinessIncreasesVariance(t *testing.T) {
	smooth := NewGenerator(3).Arrivals(ClassCoding, "m", monday, monday.Add(24*time.Hour), 600, 1)
	bursty := NewGenerator(3).Arrivals(ClassCoding, "m", monday, monday.Add(24*time.Hour), 600, 4)
	varOf := func(reqs []Request) float64 {
		counts := make([]float64, 24*60)
		for _, r := range reqs {
			counts[int(r.At.Sub(monday)/time.Minute)]++
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		var ss float64
		for _, c := range counts {
			ss += (c - mean) * (c - mean)
		}
		return ss / float64(len(counts))
	}
	if varOf(bursty) <= varOf(smooth) {
		t.Fatal("burstiness did not increase per-minute variance")
	}
}

func TestBucketHourly(t *testing.T) {
	start := monday
	reqs := []Request{
		{At: start.Add(10 * time.Minute), InputTokens: 100, OutputTokens: 10},
		{At: start.Add(50 * time.Minute), InputTokens: 200, OutputTokens: 20},
		{At: start.Add(90 * time.Minute), InputTokens: 300, OutputTokens: 30},
		{At: start.Add(-time.Minute), InputTokens: 999, OutputTokens: 999}, // outside
	}
	buckets := BucketHourly(reqs, start, start.Add(2*time.Hour))
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Requests != 2 || buckets[0].InputTokens != 300 || buckets[0].OutputTokens != 30 {
		t.Fatalf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Requests != 1 || buckets[1].InputTokens != 300 {
		t.Fatalf("bucket 1 = %+v", buckets[1])
	}
	if BucketHourly(reqs, start, start) != nil {
		t.Fatal("empty window should return nil")
	}
}

func TestClusterTraceShape(t *testing.T) {
	// Figure 3's core observation: dedicated provisioning keeps memory
	// consumption high (models resident) while mean compute utilization
	// stays low.
	g := NewGenerator(11)
	const gib = int64(1) << 30
	ms := []ClusterModel{
		{Name: "m1", MemBytes: 16 * gib, PeakPerHour: 12, Burstiness: 3, Class: ClassCoding},
		{Name: "m2", MemBytes: 14 * gib, PeakPerHour: 8, Burstiness: 3, Class: ClassConversational},
		{Name: "m3", MemBytes: 10 * gib, PeakPerHour: 4, Burstiness: 2, Class: ClassCoding},
		{Name: "m4", MemBytes: 8 * gib, PeakPerHour: 3, Burstiness: 2, Class: ClassConversational},
		{Name: "m5", MemBytes: 6 * gib, PeakPerHour: 2, Burstiness: 2, Class: ClassCoding},
		{Name: "m6", MemBytes: 6 * gib, PeakPerHour: 2, Burstiness: 2, Class: ClassConversational},
	}
	samples := ClusterTrace(g, ms, monday, 30, 2*time.Second, 15*time.Minute)
	if len(samples) != 30*24*4 {
		t.Fatalf("samples = %d", len(samples))
	}
	meanUtil, p95, memFrac := UtilizationStats(samples, 80*gib)
	if meanUtil <= 0 || meanUtil > 0.35 {
		t.Fatalf("mean utilization = %.3f, want low but positive", meanUtil)
	}
	if p95 < meanUtil {
		t.Fatalf("p95 %.3f below mean %.3f", p95, meanUtil)
	}
	// Memory stays pinned at the resident sum (~75%% of 80 GiB).
	if memFrac < 0.7 || memFrac > 0.8 {
		t.Fatalf("memory fraction = %.3f, want ~0.75", memFrac)
	}
}

func TestUtilizationStatsEmpty(t *testing.T) {
	m, p, f := UtilizationStats(nil, 1)
	if m != 0 || p != 0 || f != 0 {
		t.Fatal("empty stats not zero")
	}
}
