package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Trace CSV format, one request per row:
//
//	timestamp,model,class,input_tokens,output_tokens
//
// with RFC3339 timestamps — the shape of the Azure public traces the
// paper's Figure 1 draws on, so recorded or synthesized traces can be
// replayed through the serving stack.
const traceHeader = "timestamp,model,class,input_tokens,output_tokens"

// WriteTrace writes requests as trace CSV, sorted by arrival time.
func WriteTrace(w io.Writer, reqs []Request) error {
	sorted := append([]Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At.Before(sorted[j].At) })
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for _, r := range sorted {
		if _, err := fmt.Fprintf(bw, "%s,%s,%s,%d,%d\n",
			r.At.UTC().Format(time.RFC3339Nano), r.Model, r.Class, r.InputTokens, r.OutputTokens); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses trace CSV, returning requests sorted by arrival time.
func ReadTrace(r io.Reader) ([]Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []Request
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == traceHeader {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("workload: trace line %d: want 5 fields, got %d", line, len(fields))
		}
		at, err := time.Parse(time.RFC3339Nano, fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad timestamp: %w", line, err)
		}
		in, err := strconv.Atoi(fields[3])
		if err != nil || in < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad input_tokens %q", line, fields[3])
		}
		outTok, err := strconv.Atoi(fields[4])
		if err != nil || outTok < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad output_tokens %q", line, fields[4])
		}
		out = append(out, Request{
			At:           at,
			Model:        fields[1],
			Class:        Class(fields[2]),
			InputTokens:  in,
			OutputTokens: outTok,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out, nil
}

// ReplaySchedule converts a trace into relative firing offsets from the
// first arrival, for a driver that paces requests against a clock.
func ReplaySchedule(reqs []Request) []time.Duration {
	if len(reqs) == 0 {
		return nil
	}
	sorted := append([]Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At.Before(sorted[j].At) })
	t0 := sorted[0].At
	out := make([]time.Duration, len(sorted))
	for i, r := range sorted {
		out[i] = r.At.Sub(t0)
	}
	return out
}
