package workload

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	g := NewGenerator(5)
	reqs := g.Arrivals(ClassCoding, "llama3.1:8b-fp16", monday, monday.Add(3*time.Hour), 300, 2)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round-tripped %d of %d requests", len(got), len(reqs))
	}
	// Output is time-sorted.
	for i := 1; i < len(got); i++ {
		if got[i].At.Before(got[i-1].At) {
			t.Fatal("trace not sorted by arrival")
		}
	}
	// Token totals preserved.
	var wantIn, gotIn int64
	for _, r := range reqs {
		wantIn += int64(r.InputTokens)
	}
	for _, r := range got {
		gotIn += int64(r.InputTokens)
		if r.Model != "llama3.1:8b-fp16" || r.Class != ClassCoding {
			t.Fatalf("metadata lost: %+v", r)
		}
	}
	if wantIn != gotIn {
		t.Fatalf("input tokens %d != %d", gotIn, wantIn)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"wrong fields", "2025-01-01T00:00:00Z,m,coding,5\n"},
		{"bad timestamp", "not-a-time,m,coding,5,5\n"},
		{"bad input", "2025-01-01T00:00:00Z,m,coding,x,5\n"},
		{"negative output", "2025-01-01T00:00:00Z,m,coding,5,-1\n"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadTraceSkipsHeaderAndBlank(t *testing.T) {
	in := "timestamp,model,class,input_tokens,output_tokens\n\n2025-01-01T00:00:00Z,m,coding,5,6\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].InputTokens != 5 || got[0].OutputTokens != 6 {
		t.Fatalf("got = %+v", got)
	}
}

func TestReplaySchedule(t *testing.T) {
	reqs := []Request{
		{At: monday.Add(10 * time.Second)},
		{At: monday},
		{At: monday.Add(4 * time.Second)},
	}
	sched := ReplaySchedule(reqs)
	want := []time.Duration{0, 4 * time.Second, 10 * time.Second}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("schedule = %v", sched)
		}
	}
	if ReplaySchedule(nil) != nil {
		t.Fatal("empty schedule should be nil")
	}
}
