package openai

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func BenchmarkSSEWriteChunk(b *testing.B) {
	var buf bytes.Buffer
	w := NewSSEWriter(&buf)
	chunk := &ChatCompletionChunk{
		ID:      "chatcmpl-bench",
		Object:  "chat.completion.chunk",
		Model:   "llama3.2:1b-fp16",
		Choices: []DeltaChoice{{Delta: Message{Content: " token"}}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w.WriteChunk(chunk)
	}
}

func BenchmarkSSERoundTrip(b *testing.B) {
	var buf bytes.Buffer
	w := NewSSEWriter(&buf)
	chunk := &ChatCompletionChunk{
		ID:      "c",
		Choices: []DeltaChoice{{Delta: Message{Content: " hello"}}},
	}
	for i := 0; i < 64; i++ {
		w.WriteChunk(chunk)
	}
	w.WriteDone()
	stream := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewSSEReader(bytes.NewReader(stream))
		for {
			if _, err := r.Next(); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRequestValidate(b *testing.B) {
	req := &ChatCompletionRequest{
		Model: "llama3.1:8b-fp16",
		Messages: []Message{
			{Role: "system", Content: "be helpful"},
			{Role: "user", Content: "summarize this document please"},
		},
		MaxTokens: 128,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := req.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
