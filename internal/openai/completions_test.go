package openai

import (
	"encoding/json"
	"testing"
)

func TestPromptFieldUnmarshalString(t *testing.T) {
	var req CompletionRequest
	if err := json.Unmarshal([]byte(`{"model":"m","prompt":"hello"}`), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Prompt) != 1 || req.Prompt[0] != "hello" {
		t.Fatalf("prompt = %v", req.Prompt)
	}
}

func TestPromptFieldUnmarshalArray(t *testing.T) {
	var req CompletionRequest
	if err := json.Unmarshal([]byte(`{"model":"m","prompt":["a","b"]}`), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Prompt) != 2 || req.Prompt[1] != "b" {
		t.Fatalf("prompt = %v", req.Prompt)
	}
}

func TestPromptFieldUnmarshalNullAndBad(t *testing.T) {
	var req CompletionRequest
	if err := json.Unmarshal([]byte(`{"model":"m","prompt":null}`), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Prompt) != 0 {
		t.Fatalf("null prompt = %v", req.Prompt)
	}
	if err := json.Unmarshal([]byte(`{"model":"m","prompt":42}`), &req); err == nil {
		t.Fatal("numeric prompt accepted")
	}
}

func TestPromptFieldMarshal(t *testing.T) {
	single, err := json.Marshal(PromptField{"one"})
	if err != nil || string(single) != `"one"` {
		t.Fatalf("single = %s, %v", single, err)
	}
	multi, err := json.Marshal(PromptField{"a", "b"})
	if err != nil || string(multi) != `["a","b"]` {
		t.Fatalf("multi = %s, %v", multi, err)
	}
}

func TestCompletionRequestValidate(t *testing.T) {
	valid := CompletionRequest{Model: "m", Prompt: PromptField{"p"}}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CompletionRequest{
		{Prompt: PromptField{"p"}},
		{Model: "m"},
		{Model: "m", Prompt: PromptField{"p"}, MaxTokens: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	temp := 3.0
	withTemp := valid
	withTemp.Temperature = &temp
	if err := withTemp.Validate(); err == nil {
		t.Error("temperature 3 accepted")
	}
}

func TestChatMinTokensValidate(t *testing.T) {
	r := ChatCompletionRequest{
		Model:     "m",
		Messages:  []Message{{Role: "user", Content: "x"}},
		MinTokens: -1,
	}
	if err := r.Validate(); err == nil {
		t.Fatal("negative min_tokens accepted")
	}
	r.MinTokens = 10
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}
