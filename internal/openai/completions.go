package openai

import (
	"context"
	"encoding/json"
	"fmt"
)

// Completion issues a blocking legacy completion.
func (c *Client) Completion(ctx context.Context, req *CompletionRequest) (*CompletionResponse, error) {
	req.Stream = false
	resp, err := c.post(ctx, "/v1/completions", req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("openai: decode completion: %w", err)
	}
	return &out, nil
}
