package openai

import (
	"context"
	"encoding/json"
	"fmt"
)

// PromptField accepts the completions API's prompt as either a single
// string or an array of strings (the specification allows both).
type PromptField []string

// UnmarshalJSON implements json.Unmarshaler.
func (p *PromptField) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*p = nil
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*p = PromptField{s}
		return nil
	}
	var ss []string
	if err := json.Unmarshal(b, &ss); err == nil {
		*p = PromptField(ss)
		return nil
	}
	return fmt.Errorf("openai: prompt must be a string or array of strings")
}

// MarshalJSON implements json.Marshaler: a single prompt round-trips as a
// plain string.
func (p PromptField) MarshalJSON() ([]byte, error) {
	if len(p) == 1 {
		return json.Marshal(p[0])
	}
	return json.Marshal([]string(p))
}

// CompletionRequest is the legacy POST /v1/completions payload.
type CompletionRequest struct {
	Model       string      `json:"model"`
	Prompt      PromptField `json:"prompt"`
	MaxTokens   int         `json:"max_tokens,omitempty"`
	Temperature *float64    `json:"temperature,omitempty"`
	Seed        *int64      `json:"seed,omitempty"`
	Stream      bool        `json:"stream,omitempty"`
	User        string      `json:"user,omitempty"`
}

// Validate checks the request's structural requirements.
func (r *CompletionRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("openai: missing required field: model")
	}
	if len(r.Prompt) == 0 {
		return fmt.Errorf("openai: prompt must be non-empty")
	}
	if r.MaxTokens < 0 {
		return fmt.Errorf("openai: max_tokens must be non-negative")
	}
	if r.Temperature != nil && (*r.Temperature < 0 || *r.Temperature > 2) {
		return fmt.Errorf("openai: temperature must be in [0, 2]")
	}
	return nil
}

// CompletionChoice is one completion alternative.
type CompletionChoice struct {
	Text         string  `json:"text"`
	Index        int     `json:"index"`
	FinishReason *string `json:"finish_reason"`
}

// CompletionResponse is the /v1/completions response body — the same
// shape is used for SSE stream chunks.
type CompletionResponse struct {
	ID      string             `json:"id"`
	Object  string             `json:"object"`
	Created int64              `json:"created"`
	Model   string             `json:"model"`
	Choices []CompletionChoice `json:"choices"`
	Usage   *Usage             `json:"usage,omitempty"`
}

// Completion issues a blocking legacy completion.
func (c *Client) Completion(ctx context.Context, req *CompletionRequest) (*CompletionResponse, error) {
	req.Stream = false
	resp, err := c.post(ctx, "/v1/completions", req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("openai: decode completion: %w", err)
	}
	return &out, nil
}
