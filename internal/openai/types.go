// Package openai implements the subset of the OpenAI API specification
// that SwapServeLLM proxies: chat completions (blocking and SSE
// streaming), model listing, and the standard error envelope. The router
// in internal/core exposes these types; the simulated engines serve them.
package openai

import (
	"encoding/json"
	"fmt"
)

// Message is one chat turn.
type Message struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// ChatCompletionRequest is the POST /v1/chat/completions payload.
type ChatCompletionRequest struct {
	Model     string    `json:"model"`
	Messages  []Message `json:"messages"`
	Stream    bool      `json:"stream,omitempty"`
	MaxTokens int       `json:"max_tokens,omitempty"`
	// MinTokens is the vLLM extension forcing at least this many output
	// tokens before EOS is considered.
	MinTokens   int      `json:"min_tokens,omitempty"`
	Temperature *float64 `json:"temperature,omitempty"`
	Seed        *int64   `json:"seed,omitempty"`
	User        string   `json:"user,omitempty"`
}

// Validate checks the request's structural requirements.
func (r *ChatCompletionRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("openai: missing required field: model")
	}
	if len(r.Messages) == 0 {
		return fmt.Errorf("openai: messages must be non-empty")
	}
	for i, m := range r.Messages {
		switch m.Role {
		case "system", "user", "assistant", "tool":
		default:
			return fmt.Errorf("openai: messages[%d] has invalid role %q", i, m.Role)
		}
	}
	if r.MaxTokens < 0 {
		return fmt.Errorf("openai: max_tokens must be non-negative")
	}
	if r.MinTokens < 0 {
		return fmt.Errorf("openai: min_tokens must be non-negative")
	}
	if r.Temperature != nil && (*r.Temperature < 0 || *r.Temperature > 2) {
		return fmt.Errorf("openai: temperature must be in [0, 2]")
	}
	return nil
}

// Usage reports token accounting for a completion.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// Choice is one completion alternative in a blocking response.
type Choice struct {
	Index        int     `json:"index"`
	Message      Message `json:"message"`
	FinishReason string  `json:"finish_reason"`
}

// ChatCompletionResponse is the blocking response body.
type ChatCompletionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   Usage    `json:"usage"`
}

// DeltaChoice is one streamed increment.
type DeltaChoice struct {
	Index        int     `json:"index"`
	Delta        Message `json:"delta"`
	FinishReason *string `json:"finish_reason"`
}

// ChatCompletionChunk is one SSE event in a streaming response.
type ChatCompletionChunk struct {
	ID      string        `json:"id"`
	Object  string        `json:"object"`
	Created int64         `json:"created"`
	Model   string        `json:"model"`
	Choices []DeltaChoice `json:"choices"`
	Usage   *Usage        `json:"usage,omitempty"`
}

// ModelInfo describes one served model in GET /v1/models.
type ModelInfo struct {
	ID      string `json:"id"`
	Object  string `json:"object"`
	Created int64  `json:"created"`
	OwnedBy string `json:"owned_by"`
}

// ModelList is the GET /v1/models response body.
type ModelList struct {
	Object string      `json:"object"`
	Data   []ModelInfo `json:"data"`
}

// APIError is the OpenAI error detail object.
type APIError struct {
	Message string `json:"message"`
	Type    string `json:"type"`
	Code    string `json:"code,omitempty"`
	Param   string `json:"param,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("openai: %s (%s)", e.Message, e.Type)
}

// ErrorEnvelope is the wire format for API errors.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

// NewErrorEnvelope builds an error envelope with the given type and
// message.
func NewErrorEnvelope(typ, msg string) ErrorEnvelope {
	return ErrorEnvelope{Error: APIError{Message: msg, Type: typ}}
}

// MarshalJSONString renders v as a compact JSON string, panicking on
// marshal failure (only used with types defined in this package, which
// cannot fail).
func MarshalJSONString(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("openai: marshal: %v", err))
	}
	return string(b)
}
