// Package openai implements the subset of the OpenAI API specification
// that SwapServeLLM proxies: chat completions (blocking and SSE
// streaming), model listing, and the standard error envelope. The wire
// types themselves now live in internal/proxy/ir — the protocol-neutral
// intermediate representation the multi-protocol front door translates
// through — and are re-exported here as type aliases so pre-IR callers
// (the engines, the node router, the client) keep compiling unchanged.
package openai

import (
	"encoding/json"
	"fmt"

	"swapservellm/internal/proxy/ir"
)

// Wire-type aliases into the IR package (the canonical definitions).
type (
	// Message is one chat turn.
	Message = ir.Message
	// ContentPart is one element of a multimodal content array.
	ContentPart = ir.ContentPart
	// ImageURL carries one image reference.
	ImageURL = ir.ImageURL
	// InputAudio carries one audio clip.
	InputAudio = ir.InputAudio
	// ChatCompletionRequest is the POST /v1/chat/completions payload.
	ChatCompletionRequest = ir.ChatCompletionRequest
	// Usage reports token accounting for a completion.
	Usage = ir.Usage
	// Choice is one completion alternative in a blocking response.
	Choice = ir.Choice
	// ChatCompletionResponse is the blocking response body.
	ChatCompletionResponse = ir.ChatCompletionResponse
	// DeltaChoice is one streamed increment.
	DeltaChoice = ir.DeltaChoice
	// ChatCompletionChunk is one SSE event in a streaming response.
	ChatCompletionChunk = ir.ChatCompletionChunk
	// PromptField accepts the completions prompt as string or array.
	PromptField = ir.PromptField
	// CompletionRequest is the legacy POST /v1/completions payload.
	CompletionRequest = ir.CompletionRequest
	// CompletionChoice is one completion alternative.
	CompletionChoice = ir.CompletionChoice
	// CompletionResponse is the /v1/completions response body.
	CompletionResponse = ir.CompletionResponse
	// InputField accepts the embeddings input as string or array.
	InputField = ir.InputField
	// EmbeddingsRequest is the POST /v1/embeddings payload.
	EmbeddingsRequest = ir.EmbeddingsRequest
	// Embedding is one output vector.
	Embedding = ir.Embedding
	// EmbeddingsResponse is the /v1/embeddings response body.
	EmbeddingsResponse = ir.EmbeddingsResponse
	// RerankRequest is the POST /v1/rerank payload.
	RerankRequest = ir.RerankRequest
	// RerankResult is one scored document.
	RerankResult = ir.RerankResult
	// RerankResponse is the /v1/rerank response body.
	RerankResponse = ir.RerankResponse
	// ModelInfo describes one served model in GET /v1/models.
	ModelInfo = ir.ModelInfo
	// ModelList is the GET /v1/models response body.
	ModelList = ir.ModelList
	// APIError is the OpenAI error detail object.
	APIError = ir.APIError
	// ErrorEnvelope is the wire format for API errors.
	ErrorEnvelope = ir.ErrorEnvelope
)

// NewErrorEnvelope builds an error envelope with the given type and
// message.
func NewErrorEnvelope(typ, msg string) ErrorEnvelope {
	return ir.NewErrorEnvelope(typ, msg)
}

// MarshalJSONString renders v as a compact JSON string, panicking on
// marshal failure (only used with types defined in the IR package,
// which cannot fail).
func MarshalJSONString(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("openai: marshal: %v", err))
	}
	return string(b)
}
