package openai

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func f64(v float64) *float64 { return &v }

func TestRequestValidate(t *testing.T) {
	valid := ChatCompletionRequest{
		Model:    "llama3.2:1b-fp16",
		Messages: []Message{{Role: "user", Content: "hello"}},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ChatCompletionRequest)
	}{
		{"missing model", func(r *ChatCompletionRequest) { r.Model = "" }},
		{"no messages", func(r *ChatCompletionRequest) { r.Messages = nil }},
		{"bad role", func(r *ChatCompletionRequest) { r.Messages = []Message{{Role: "robot", Content: "x"}} }},
		{"negative max_tokens", func(r *ChatCompletionRequest) { r.MaxTokens = -1 }},
		{"temperature too high", func(r *ChatCompletionRequest) { r.Temperature = f64(3) }},
		{"temperature negative", func(r *ChatCompletionRequest) { r.Temperature = f64(-0.1) }},
	}
	for _, c := range cases {
		r := valid
		r.Messages = append([]Message(nil), valid.Messages...)
		c.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: invalid request accepted", c.name)
		}
	}
}

func TestValidRoles(t *testing.T) {
	for _, role := range []string{"system", "user", "assistant", "tool"} {
		r := ChatCompletionRequest{Model: "m", Messages: []Message{{Role: role, Content: "x"}}}
		if err := r.Validate(); err != nil {
			t.Errorf("role %s rejected: %v", role, err)
		}
	}
}

func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSSEWriter(&buf)
	chunks := []*ChatCompletionChunk{
		{ID: "c1", Object: "chat.completion.chunk", Model: "m", Choices: []DeltaChoice{{Delta: Message{Role: "assistant"}}}},
		{ID: "c1", Object: "chat.completion.chunk", Model: "m", Choices: []DeltaChoice{{Delta: Message{Content: "Hello"}}}},
		{ID: "c1", Object: "chat.completion.chunk", Model: "m", Choices: []DeltaChoice{{Delta: Message{Content: " world"}}}},
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteDone(); err != nil {
		t.Fatal(err)
	}

	r := NewSSEReader(&buf)
	var got []*ChatCompletionChunk
	for {
		c, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if len(got) != len(chunks) {
		t.Fatalf("round-tripped %d chunks, want %d", len(got), len(chunks))
	}
	for i := range chunks {
		if got[i].Choices[0].Delta.Content != chunks[i].Choices[0].Delta.Content {
			t.Errorf("chunk %d content = %q, want %q", i,
				got[i].Choices[0].Delta.Content, chunks[i].Choices[0].Delta.Content)
		}
	}
}

func TestSSEReaderSkipsCommentsAndBlank(t *testing.T) {
	input := ": keep-alive\n\n\ndata: {\"id\":\"x\"}\n\ndata: [DONE]\n\n"
	r := NewSSEReader(strings.NewReader(input))
	c, err := r.Next()
	if err != nil || c.ID != "x" {
		t.Fatalf("Next = %+v, %v", c, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after [DONE], got %v", err)
	}
}

func TestSSEReaderMalformed(t *testing.T) {
	r := NewSSEReader(strings.NewReader("data: {not json}\n\n"))
	if _, err := r.Next(); err == nil {
		t.Fatal("malformed chunk accepted")
	}
}

func TestSSEReaderEOFWithoutDone(t *testing.T) {
	r := NewSSEReader(strings.NewReader(""))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v", err)
	}
}

// Property: any chunk survives a write/read round trip.
func TestSSEChunkRoundTripProperty(t *testing.T) {
	f := func(id, content string, idx uint8) bool {
		// SSE is line-oriented; JSON escaping must keep newlines safe.
		in := &ChatCompletionChunk{
			ID:      id,
			Object:  "chat.completion.chunk",
			Choices: []DeltaChoice{{Index: int(idx), Delta: Message{Content: content}}},
		}
		var buf bytes.Buffer
		w := NewSSEWriter(&buf)
		if err := w.WriteChunk(in); err != nil {
			return false
		}
		w.WriteDone()
		out, err := NewSSEReader(&buf).Next()
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.Choices[0].Delta.Content == content && out.Choices[0].Index == int(idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAPIErrorError(t *testing.T) {
	e := &APIError{Message: "model not found", Type: "invalid_request_error"}
	if !strings.Contains(e.Error(), "model not found") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusNotFound, "invalid_request_error", "no such model")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Message != "no such model" || env.Error.Type != "invalid_request_error" {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestClientChatCompletion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/chat/completions" {
			t.Errorf("path = %s", r.URL.Path)
		}
		var req ChatCompletionRequest
		json.NewDecoder(r.Body).Decode(&req)
		WriteJSON(w, http.StatusOK, ChatCompletionResponse{
			ID:      "cmpl-1",
			Object:  "chat.completion",
			Model:   req.Model,
			Choices: []Choice{{Message: Message{Role: "assistant", Content: "hi"}, FinishReason: "stop"}},
			Usage:   Usage{PromptTokens: 3, CompletionTokens: 1, TotalTokens: 4},
		})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	resp, err := c.ChatCompletion(context.Background(), &ChatCompletionRequest{
		Model:    "llama3.2:1b-fp16",
		Messages: []Message{{Role: "user", Content: "hello"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Content != "hi" || resp.Usage.TotalTokens != 4 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestClientStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := NewSSEWriter(w)
		for _, tok := range []string{"a", "b", "c"} {
			sw.WriteChunk(&ChatCompletionChunk{ID: "s1", Choices: []DeltaChoice{{Delta: Message{Content: tok}}}})
		}
		sw.WriteDone()
	}))
	defer srv.Close()

	var got []string
	err := NewClient(srv.URL).ChatCompletionStream(context.Background(),
		&ChatCompletionRequest{Model: "m", Messages: []Message{{Role: "user", Content: "x"}}},
		func(c *ChatCompletionChunk) error {
			got = append(got, c.Choices[0].Delta.Content)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "abc" {
		t.Fatalf("stream = %v", got)
	}
}

func TestClientErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, "invalid_request_error", "unknown model")
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).ChatCompletion(context.Background(), &ChatCompletionRequest{
		Model: "x", Messages: []Message{{Role: "user", Content: "y"}},
	})
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if apiErr.Message != "unknown model" {
		t.Fatalf("message = %q", apiErr.Message)
	}
}

func TestClientListModels(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/models" {
			t.Errorf("path = %s", r.URL.Path)
		}
		WriteJSON(w, http.StatusOK, ModelList{Object: "list", Data: []ModelInfo{{ID: "m1", Object: "model"}}})
	}))
	defer srv.Close()
	list, err := NewClient(srv.URL).ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Data) != 1 || list.Data[0].ID != "m1" {
		t.Fatalf("list = %+v", list)
	}
}

func TestWaitHealthy(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := NewClient(srv.URL).WaitHealthy(ctx, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if calls < 3 {
		t.Fatalf("health called %d times", calls)
	}
}

func TestWaitHealthyTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := NewClient(srv.URL).WaitHealthy(ctx, 5*time.Millisecond); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestMarshalJSONString(t *testing.T) {
	s := MarshalJSONString(Message{Role: "user", Content: "hi"})
	if !strings.Contains(s, `"role":"user"`) {
		t.Fatalf("marshal = %s", s)
	}
}
