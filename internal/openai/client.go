package openai

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"swapservellm/internal/simclock"
)

// Client is a minimal OpenAI-compatible HTTP client used by the model
// workers to forward requests to engine backends, and by the examples and
// load generators to drive the SwapServeLLM router.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with no timeout (streams can be
	// long-lived); set one to bound request duration.
	HTTPClient *http.Client
	// Clock paces health-check polling; defaults to the real clock. Tests
	// and simulations inject a scaled clock so WaitHealthy intervals
	// compress with the rest of the timeline.
	Clock simclock.Clock
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) clock() simclock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return simclock.Real{}
}

// post issues a JSON POST and returns the raw response.
func (c *Client) post(ctx context.Context, path string, body interface{}) (*http.Response, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("openai: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.httpClient().Do(req)
}

// decodeError converts a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Message == "" {
		return fmt.Errorf("openai: http %d", resp.StatusCode)
	}
	return &env.Error
}

// ChatCompletion issues a blocking chat completion. The whole round trip
// runs as gate-tracked IO on the installed clock: under a Virtual clock
// simulated time may advance while the engine generates, which is what
// simulates generation latency. With the default real clock the gate is
// a no-op.
func (c *Client) ChatCompletion(ctx context.Context, req *ChatCompletionRequest) (out *ChatCompletionResponse, err error) {
	simclock.GateFor(c.clock()).BlockIO(func() { out, err = c.chatCompletion(ctx, req) })
	return out, err
}

func (c *Client) chatCompletion(ctx context.Context, req *ChatCompletionRequest) (*ChatCompletionResponse, error) {
	req.Stream = false
	resp, err := c.post(ctx, "/v1/chat/completions", req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out ChatCompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("openai: decode response: %w", err)
	}
	return &out, nil
}

// ChatCompletionStream issues a streaming chat completion, invoking fn for
// every chunk. It returns after the [DONE] sentinel or on error. As with
// ChatCompletion, the request and the full stream consumption run as
// gate-tracked IO on the installed clock.
func (c *Client) ChatCompletionStream(ctx context.Context, req *ChatCompletionRequest, fn func(*ChatCompletionChunk) error) (err error) {
	simclock.GateFor(c.clock()).BlockIO(func() { err = c.chatCompletionStream(ctx, req, fn) })
	return err
}

func (c *Client) chatCompletionStream(ctx context.Context, req *ChatCompletionRequest, fn func(*ChatCompletionChunk) error) error {
	req.Stream = true
	resp, err := c.post(ctx, "/v1/chat/completions", req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	r := NewSSEReader(resp.Body)
	for {
		chunk, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
}

// ListModels fetches GET /v1/models.
func (c *Client) ListModels(ctx context.Context) (*ModelList, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out ModelList
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("openai: decode model list: %w", err)
	}
	return &out, nil
}

// WaitHealthy polls GET /health until the server responds 200, the context
// is cancelled, or the deadline elapses.
func (c *Client) WaitHealthy(ctx context.Context, interval time.Duration) error {
	gate := simclock.GateFor(c.clock())
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/health", nil)
		if err != nil {
			return err
		}
		var resp *http.Response
		gate.BlockIO(func() { resp, err = c.httpClient().Do(req) })
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if gate.Wait(interval, ctx.Done()) == 0 {
			return ctx.Err()
		}
	}
}
