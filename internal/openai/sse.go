package openai

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"swapservellm/internal/proxy/ir"
)

// DoneSentinel is the terminal SSE data payload.
const DoneSentinel = ir.DoneSentinel

// SSEWriter streams chat-completion chunks as server-sent events.
type SSEWriter struct {
	w       io.Writer
	flusher http.Flusher
}

// NewSSEWriter prepares w for SSE streaming. If w is an http.ResponseWriter
// the proper headers are set and each event is flushed immediately.
func NewSSEWriter(w io.Writer) *SSEWriter {
	s := &SSEWriter{w: w}
	if rw, ok := w.(http.ResponseWriter); ok {
		rw.Header().Set("Content-Type", "text/event-stream")
		rw.Header().Set("Cache-Control", "no-cache")
		rw.Header().Set("Connection", "keep-alive")
		if f, ok := rw.(http.Flusher); ok {
			s.flusher = f
		}
	}
	return s
}

// WriteChunk emits one chunk as a data event.
func (s *SSEWriter) WriteChunk(c *ChatCompletionChunk) error {
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("openai: marshal chunk: %w", err)
	}
	if _, err := fmt.Fprintf(s.w, "data: %s\n\n", b); err != nil {
		return err
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return nil
}

// WriteDone emits the terminal [DONE] event.
func (s *SSEWriter) WriteDone() error {
	if _, err := fmt.Fprintf(s.w, "data: %s\n\n", DoneSentinel); err != nil {
		return err
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return nil
}

// SSEReader decodes a stream of chat-completion chunks.
type SSEReader struct {
	scanner *bufio.Scanner
}

// NewSSEReader wraps r for reading SSE events.
func NewSSEReader(r io.Reader) *SSEReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &SSEReader{scanner: sc}
}

// Next returns the next chunk, or io.EOF after the [DONE] sentinel or end
// of stream.
func (r *SSEReader) Next() (*ChatCompletionChunk, error) {
	for r.scanner.Scan() {
		line := strings.TrimSpace(r.scanner.Text())
		if line == "" || strings.HasPrefix(line, ":") {
			continue
		}
		data, ok := strings.CutPrefix(line, "data:")
		if !ok {
			continue
		}
		data = strings.TrimSpace(data)
		if data == DoneSentinel {
			return nil, io.EOF
		}
		var chunk ChatCompletionChunk
		if err := json.Unmarshal([]byte(data), &chunk); err != nil {
			return nil, fmt.Errorf("openai: decode chunk: %w", err)
		}
		return &chunk, nil
	}
	if err := r.scanner.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// WriteJSON writes v to w with the given HTTP status.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes an OpenAI error envelope with the given HTTP status.
func WriteError(w http.ResponseWriter, status int, typ, msg string) {
	WriteJSON(w, status, NewErrorEnvelope(typ, msg))
}
