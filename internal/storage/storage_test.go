package storage

import (
	"errors"
	"testing"
	"time"

	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

const gib = int64(1) << 30

func newStore(t *testing.T) (*ModelStore, *simclock.Scaled) {
	t.Helper()
	clock := simclock.NewScaled(time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC), simclock.DefaultScale)
	return NewModelStore(clock, perfmodel.A100()), clock
}

func TestPutStatDelete(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Put("llama.gguf", 16*gib, perfmodel.TierDisk); err != nil {
		t.Fatal(err)
	}
	b, err := s.Stat("llama.gguf")
	if err != nil || b.Bytes != 16*gib || b.Tier != perfmodel.TierDisk {
		t.Fatalf("Stat = %+v, %v", b, err)
	}
	if err := s.Delete("llama.gguf"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("llama.gguf"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat after delete: %v", err)
	}
	if err := s.Delete("llama.gguf"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Put("zero", 0, perfmodel.TierDisk); err == nil {
		t.Error("zero-size put accepted")
	}
	if err := s.Put("bad-tier", gib, perfmodel.StorageTier("tape")); err == nil {
		t.Error("unknown tier accepted")
	}
	s.Put("dup", gib, perfmodel.TierDisk)
	if err := s.Put("dup", gib, perfmodel.TierDisk); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate put: %v", err)
	}
}

func TestReadTakesTierTime(t *testing.T) {
	s, clock := newStore(t)
	s.Put("disk.gguf", 8*gib, perfmodel.TierDisk)
	s.Put("mem.gguf", 8*gib, perfmodel.TierTmpfs)

	t0 := clock.Now()
	if _, err := s.Read("disk.gguf"); err != nil {
		t.Fatal(err)
	}
	diskDur := clock.Since(t0)

	t1 := clock.Now()
	if _, err := s.Read("mem.gguf"); err != nil {
		t.Fatal(err)
	}
	memDur := clock.Since(t1)

	if memDur >= diskDur {
		t.Fatalf("tmpfs read %v not faster than disk %v", memDur, diskDur)
	}
	// The A100 disk curve puts an 8 GiB read in the tens of seconds.
	if diskDur < 5*time.Second {
		t.Fatalf("disk read of 8 GiB took only %v simulated", diskDur)
	}
}

func TestReadUnknown(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Read("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read unknown: %v", err)
	}
}

func TestPromote(t *testing.T) {
	s, clock := newStore(t)
	s.Put("m.gguf", 4*gib, perfmodel.TierDisk)
	t0 := clock.Now()
	if err := s.Promote("m.gguf", perfmodel.TierTmpfs); err != nil {
		t.Fatal(err)
	}
	if clock.Since(t0) <= 0 {
		t.Fatal("promote should take simulated time")
	}
	b, _ := s.Stat("m.gguf")
	if b.Tier != perfmodel.TierTmpfs {
		t.Fatalf("tier after promote = %s", b.Tier)
	}
	// Promoting to the same tier is a no-op.
	t1 := clock.Now()
	if err := s.Promote("m.gguf", perfmodel.TierTmpfs); err != nil {
		t.Fatal(err)
	}
	if d := clock.Since(t1); d > time.Second {
		t.Fatalf("same-tier promote took %v", d)
	}
	if err := s.Promote("ghost", perfmodel.TierDisk); !errors.Is(err, ErrNotFound) {
		t.Fatalf("promote unknown: %v", err)
	}
}

func TestListSortedAndTierUsage(t *testing.T) {
	s, _ := newStore(t)
	s.Put("b.gguf", 2*gib, perfmodel.TierDisk)
	s.Put("a.gguf", 1*gib, perfmodel.TierTmpfs)
	s.Put("c.gguf", 4*gib, perfmodel.TierDisk)
	list := s.List()
	if len(list) != 3 || list[0].Name != "a.gguf" || list[2].Name != "c.gguf" {
		t.Fatalf("List = %+v", list)
	}
	usage := s.TierUsage()
	if usage[perfmodel.TierDisk] != 6*gib || usage[perfmodel.TierTmpfs] != gib {
		t.Fatalf("TierUsage = %+v", usage)
	}
}
