package storage

import (
	"errors"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/perfmodel"
)

func TestTornWriteRecovery(t *testing.T) {
	s, _ := newStore(t)
	s.SetChaos(chaos.FailNext(chaos.SiteStorageWrite, 1))

	err := s.Put("llama.gguf", 16*gib, perfmodel.TierDisk)
	if !errors.Is(err, ErrTorn) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Put = %v, want torn+injected", err)
	}
	// The torn partial occupies the name but cannot be read or promoted.
	b, serr := s.Stat("llama.gguf")
	if serr != nil || !b.Torn {
		t.Fatalf("Stat = %+v, %v", b, serr)
	}
	if _, rerr := s.Read("llama.gguf"); !errors.Is(rerr, ErrTorn) {
		t.Fatalf("Read torn = %v", rerr)
	}
	if perr := s.Promote("llama.gguf", perfmodel.TierTmpfs); !errors.Is(perr, ErrTorn) {
		t.Fatalf("Promote torn = %v", perr)
	}
	// A retried Put replaces the partial and heals the blob.
	if err := s.Put("llama.gguf", 16*gib, perfmodel.TierDisk); err != nil {
		t.Fatalf("retried Put: %v", err)
	}
	if _, err := s.Read("llama.gguf"); err != nil {
		t.Fatalf("Read after heal: %v", err)
	}
	// The healed blob is whole again: a further Put is a duplicate.
	if err := s.Put("llama.gguf", 16*gib, perfmodel.TierDisk); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Put after heal = %v", err)
	}
}

func TestReadFaultAndDelay(t *testing.T) {
	s, clock := newStore(t)
	if err := s.Put("m.gguf", 8*gib, perfmodel.TierDisk); err != nil {
		t.Fatal(err)
	}
	s.SetChaos(chaos.FailNext(chaos.SiteStorageRead, 1))
	if _, err := s.Read("m.gguf"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Read = %v, want injected", err)
	}
	t0 := clock.Now()
	if _, err := s.Read("m.gguf"); err != nil {
		t.Fatalf("Read after fault cleared: %v", err)
	}
	base := clock.Since(t0)

	const extra = time.Minute
	s.SetChaos(chaos.NewInjector(chaos.Plan{Seed: 1, Rules: []chaos.Rule{
		{Site: chaos.SiteStorageRead, Delay: extra},
	}}))
	t1 := clock.Now()
	if _, err := s.Read("m.gguf"); err != nil {
		t.Fatal(err)
	}
	// Tolerance absorbs the scaled clock's real-time measurement jitter.
	if slow := clock.Since(t1); slow < base+extra-time.Second {
		t.Fatalf("degraded read %v not slower than %v by ~%v", slow, base, extra)
	}
}
