package storage

import (
	"fmt"
	"testing"
	"time"

	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

func benchStore(b *testing.B) *ModelStore {
	b.Helper()
	clock := simclock.NewScaled(time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC), 1e6)
	return NewModelStore(clock, perfmodel.H100())
}

func BenchmarkStatLookup(b *testing.B) {
	s := benchStore(b)
	for i := 0; i < 64; i++ {
		s.Put(fmt.Sprintf("m%d.gguf", i), gib, perfmodel.TierDisk)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Stat("m32.gguf")
	}
}

func BenchmarkTierUsage(b *testing.B) {
	s := benchStore(b)
	for i := 0; i < 64; i++ {
		tier := perfmodel.TierDisk
		if i%2 == 0 {
			tier = perfmodel.TierTmpfs
		}
		s.Put(fmt.Sprintf("m%d.gguf", i), gib, tier)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TierUsage()
	}
}
