// Package storage simulates the model-weight storage tiers compared in
// Figure 5 of the paper: the default disk store and a memory-backed
// (tmpfs) filesystem. Reads take the calibrated time for the tier and blob
// size, enacted on the simulation clock, so engines loading weights
// experience the same I/O bottlenecks the paper measures.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"swapservellm/internal/chaos"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("storage: blob not found")
	ErrExists   = errors.New("storage: blob already exists")
	// ErrTorn marks a blob whose write was interrupted: the partial file
	// occupies the name but cannot be read. Recover by re-Putting it.
	ErrTorn = errors.New("storage: torn blob")
)

// Blob is one stored model-weight file (GGUF or safetensors shard set).
type Blob struct {
	Name  string
	Bytes int64
	Tier  perfmodel.StorageTier
	// Torn marks a partial blob left behind by an interrupted write;
	// reads fail until the blob is re-Put.
	Torn bool
}

// ModelStore holds model weights across tiers and simulates read latency.
// All methods are safe for concurrent use; reads on distinct blobs proceed
// concurrently.
type ModelStore struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed

	mu       sync.RWMutex
	blobs    map[string]Blob
	chaosInj *chaos.Injector
}

// SetChaos installs (or, with nil, removes) the fault injector. Reads
// consult chaos.SiteStorageRead (error or extra latency); writes
// consult chaos.SiteStorageWrite — a fired fault tears the write,
// leaving an unreadable partial blob that a retried Put replaces.
func (s *ModelStore) SetChaos(in *chaos.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chaosInj = in
}

// NewModelStore creates an empty store timed against tb on clock.
func NewModelStore(clock simclock.Clock, tb perfmodel.Testbed) *ModelStore {
	return &ModelStore{clock: clock, testbed: tb, blobs: make(map[string]Blob)}
}

// Put registers a blob. Storing a duplicate name fails.
func (s *ModelStore) Put(name string, bytes int64, tier perfmodel.StorageTier) error {
	if bytes <= 0 {
		return fmt.Errorf("storage: blob %q must have positive size", name)
	}
	if tier != perfmodel.TierDisk && tier != perfmodel.TierTmpfs {
		return fmt.Errorf("storage: unknown tier %q", tier)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, dup := s.blobs[name]; dup && !prev.Torn {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if err := s.chaosInj.At(chaos.SiteStorageWrite).Err; err != nil {
		// Torn write: the partial file occupies the name but is useless.
		s.blobs[name] = Blob{Name: name, Bytes: bytes, Tier: tier, Torn: true}
		return fmt.Errorf("storage: writing %s: %w", name, errors.Join(ErrTorn, err))
	}
	s.blobs[name] = Blob{Name: name, Bytes: bytes, Tier: tier}
	return nil
}

// Stat returns a blob's metadata without reading it.
func (s *ModelStore) Stat(name string) (Blob, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[name]
	if !ok {
		return Blob{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return b, nil
}

// Read simulates reading the blob fully (storage read at the tier's
// effective bandwidth) and returns its metadata. Torn blobs are
// unreadable until re-Put.
func (s *ModelStore) Read(name string) (Blob, error) {
	b, err := s.Stat(name)
	if err != nil {
		return Blob{}, err
	}
	if b.Torn {
		return Blob{}, fmt.Errorf("%w: %s", ErrTorn, name)
	}
	s.mu.RLock()
	out := s.chaosInj.At(chaos.SiteStorageRead)
	s.mu.RUnlock()
	if out.Err != nil {
		return Blob{}, fmt.Errorf("storage: reading %s: %w", name, out.Err)
	}
	s.clock.Sleep(s.testbed.StorageReadTime(b.Tier, b.Bytes) + out.Delay)
	return b, nil
}

// Promote moves a blob to another tier (e.g. staging weights into tmpfs),
// simulating the copy time: a read at the source tier's bandwidth.
func (s *ModelStore) Promote(name string, tier perfmodel.StorageTier) error {
	b, err := s.Stat(name)
	if err != nil {
		return err
	}
	if b.Torn {
		return fmt.Errorf("%w: %s", ErrTorn, name)
	}
	if b.Tier == tier {
		return nil
	}
	s.clock.Sleep(s.testbed.StorageReadTime(b.Tier, b.Bytes))
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Tier = tier
	s.blobs[name] = b
	return nil
}

// Delete removes a blob.
func (s *ModelStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.blobs, name)
	return nil
}

// List returns all blobs sorted by name.
func (s *ModelStore) List() []Blob {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Blob, 0, len(s.blobs))
	for _, b := range s.blobs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TierUsage returns the total bytes stored per tier.
func (s *ModelStore) TierUsage() map[perfmodel.StorageTier]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	usage := make(map[perfmodel.StorageTier]int64, 2)
	for _, b := range s.blobs {
		usage[b.Tier] += b.Bytes
	}
	return usage
}
