// Package storage simulates the model-weight storage tiers compared in
// Figure 5 of the paper: the default disk store and a memory-backed
// (tmpfs) filesystem. Reads take the calibrated time for the tier and blob
// size, enacted on the simulation clock, so engines loading weights
// experience the same I/O bottlenecks the paper measures.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("storage: blob not found")
	ErrExists   = errors.New("storage: blob already exists")
)

// Blob is one stored model-weight file (GGUF or safetensors shard set).
type Blob struct {
	Name  string
	Bytes int64
	Tier  perfmodel.StorageTier
}

// ModelStore holds model weights across tiers and simulates read latency.
// All methods are safe for concurrent use; reads on distinct blobs proceed
// concurrently.
type ModelStore struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed

	mu    sync.RWMutex
	blobs map[string]Blob
}

// NewModelStore creates an empty store timed against tb on clock.
func NewModelStore(clock simclock.Clock, tb perfmodel.Testbed) *ModelStore {
	return &ModelStore{clock: clock, testbed: tb, blobs: make(map[string]Blob)}
}

// Put registers a blob. Storing a duplicate name fails.
func (s *ModelStore) Put(name string, bytes int64, tier perfmodel.StorageTier) error {
	if bytes <= 0 {
		return fmt.Errorf("storage: blob %q must have positive size", name)
	}
	if tier != perfmodel.TierDisk && tier != perfmodel.TierTmpfs {
		return fmt.Errorf("storage: unknown tier %q", tier)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.blobs[name]; dup {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	s.blobs[name] = Blob{Name: name, Bytes: bytes, Tier: tier}
	return nil
}

// Stat returns a blob's metadata without reading it.
func (s *ModelStore) Stat(name string) (Blob, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[name]
	if !ok {
		return Blob{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return b, nil
}

// Read simulates reading the blob fully (storage read at the tier's
// effective bandwidth) and returns its metadata.
func (s *ModelStore) Read(name string) (Blob, error) {
	b, err := s.Stat(name)
	if err != nil {
		return Blob{}, err
	}
	s.clock.Sleep(s.testbed.StorageReadTime(b.Tier, b.Bytes))
	return b, nil
}

// Promote moves a blob to another tier (e.g. staging weights into tmpfs),
// simulating the copy time: a read at the source tier's bandwidth.
func (s *ModelStore) Promote(name string, tier perfmodel.StorageTier) error {
	b, err := s.Stat(name)
	if err != nil {
		return err
	}
	if b.Tier == tier {
		return nil
	}
	s.clock.Sleep(s.testbed.StorageReadTime(b.Tier, b.Bytes))
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Tier = tier
	s.blobs[name] = b
	return nil
}

// Delete removes a blob.
func (s *ModelStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.blobs, name)
	return nil
}

// List returns all blobs sorted by name.
func (s *ModelStore) List() []Blob {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Blob, 0, len(s.blobs))
	for _, b := range s.blobs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TierUsage returns the total bytes stored per tier.
func (s *ModelStore) TierUsage() map[perfmodel.StorageTier]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	usage := make(map[perfmodel.StorageTier]int64, 2)
	for _, b := range s.blobs {
		usage[b.Tier] += b.Bytes
	}
	return usage
}
