package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/metrics"
	"swapservellm/internal/simclock"
)

// NodeRegistry tracks cluster membership and health. A background loop
// probes every node's /health endpoint on the heartbeat interval
// (simulated time); a node that misses missLimit consecutive probes
// transitions to down, and a down node whose probe succeeds again
// rejoins as healthy. The gateway additionally reports proxy-level
// connection failures here so a dead node is fenced before the next
// heartbeat fires (passive failure detection).
type NodeRegistry struct {
	clock     simclock.Clock
	reg       *metrics.Registry
	interval  time.Duration
	missLimit int
	probe     *http.Client

	chaosInj *chaos.Injector
	trace    *chaos.Trace

	mu    sync.RWMutex
	nodes map[string]*Node
	order []string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// SetChaos installs (or removes) the fault injector. Every health probe
// consults chaos.SiteHeartbeat: a fired fault makes the probe report
// the node dead regardless of the HTTP result, so a burst of firings
// simulates a crashed node and the probes succeeding again afterwards
// simulate its restart.
func (r *NodeRegistry) SetChaos(in *chaos.Injector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chaosInj = in
}

// SetTrace installs the transition audit log on every registered node
// (and nodes added later).
func (r *NodeRegistry) SetTrace(t *chaos.Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		n.trace = t
	}
	r.trace = t
}

// NewNodeRegistry builds a registry; interval is in simulated time.
func NewNodeRegistry(clock simclock.Clock, reg *metrics.Registry, interval time.Duration, missLimit int) *NodeRegistry {
	if missLimit <= 0 {
		missLimit = 3
	}
	return &NodeRegistry{
		clock:     clock,
		reg:       reg,
		interval:  interval,
		missLimit: missLimit,
		probe:     &http.Client{Timeout: 5 * time.Second},
		nodes:     make(map[string]*Node),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Add registers a node (state joining until its first heartbeat).
func (r *NodeRegistry) Add(n *Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.nodes[n.ID()]; dup {
		return
	}
	n.trace = r.trace
	r.nodes[n.ID()] = n
	r.order = append(r.order, n.ID())
	sort.Strings(r.order)
}

// Node looks up a member by ID.
func (r *NodeRegistry) Node(id string) (*Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.nodes[id]
	return n, ok
}

// Nodes returns every member sorted by ID.
func (r *NodeRegistry) Nodes() []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Node, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.nodes[id])
	}
	return out
}

// Start launches the heartbeat loop. It probes once synchronously so
// nodes that are already serving join immediately.
func (r *NodeRegistry) Start() {
	r.Sweep()
	simclock.GateFor(r.clock).Go(r.run)
}

// Stop halts the heartbeat loop and waits for it to exit, shedding the
// run token while the loop goroutine drains.
func (r *NodeRegistry) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	simclock.GateFor(r.clock).Block(func() { <-r.done })
}

func (r *NodeRegistry) run() {
	defer close(r.done)
	gate := simclock.GateFor(r.clock)
	for gate.Wait(r.interval, r.stop) < 0 {
		r.Sweep()
	}
}

// Sweep probes every node once and applies the state machine. Exported
// so tests (and the gateway after a passive failure report) can force a
// re-evaluation without waiting for the interval.
func (r *NodeRegistry) Sweep() {
	for _, n := range r.Nodes() {
		r.probeNode(n)
	}
	r.publish()
}

// probeNode performs one health check and advances n's state machine.
func (r *NodeRegistry) probeNode(n *Node) {
	r.reg.Counter("cluster_heartbeat_probes").Inc()
	alive := r.healthy(n)
	switch {
	case alive:
		n.missed.Store(0)
		switch n.State() {
		case NodeJoining:
			if n.transition(NodeHealthy) {
				r.reg.Counter("cluster_node_joins").Inc()
			}
		case NodeDown:
			if n.transition(NodeHealthy) {
				r.reg.Counter("cluster_node_rejoins").Inc()
			}
		}
	default:
		if n.missed.Add(1) >= int32(r.missLimit) && n.State() != NodeDown {
			if n.transition(NodeDown) {
				r.reg.Counter("cluster_node_downs").Inc()
			}
		}
	}
}

// healthy performs the HTTP probe against the node router. An injected
// heartbeat fault makes the probe report the node dead.
func (r *NodeRegistry) healthy(n *Node) bool {
	r.mu.RLock()
	in := r.chaosInj
	r.mu.RUnlock()
	if in.At(chaos.SiteHeartbeat).Err != nil {
		return false
	}
	url := n.URL()
	if url == "http://" || url == "" {
		return false
	}
	var resp *http.Response
	var err error
	simclock.GateFor(r.clock).BlockIO(func() { resp, err = r.probe.Get(url + "/health") })
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ReportFailure records a proxy-level connection failure against a
// node: the gateway observed it dead mid-request, so it is fenced
// immediately rather than after missLimit heartbeat intervals. The next
// successful probe still brings it back.
func (r *NodeRegistry) ReportFailure(id string) {
	n, ok := r.Node(id)
	if !ok {
		return
	}
	if n.State() != NodeDown && !r.healthy(n) {
		n.missed.Store(int32(r.missLimit))
		if n.transition(NodeDown) {
			r.reg.Counter("cluster_node_downs").Inc()
		}
		r.publish()
	}
}

// Drain moves a healthy node to draining: in-flight work completes but
// the placement engine stops offering it.
func (r *NodeRegistry) Drain(id string) error {
	n, ok := r.Node(id)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownNode, id)
	}
	if n.State() == NodeHealthy {
		n.transition(NodeDraining)
	}
	return nil
}

// Undrain returns a draining node to healthy.
func (r *NodeRegistry) Undrain(id string) error {
	n, ok := r.Node(id)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownNode, id)
	}
	if n.State() == NodeDraining {
		n.transition(NodeHealthy)
	}
	return nil
}

// Candidates builds the placement view for a model: every healthy node
// that deploys it, sorted by node ID. Nodes in joining, draining, or
// down states are excluded.
func (r *NodeRegistry) Candidates(model string) []Candidate {
	var out []Candidate
	for _, n := range r.Nodes() {
		if n.State() != NodeHealthy {
			continue
		}
		pres, deployed := n.presence(model)
		if !deployed {
			continue
		}
		out = append(out, Candidate{
			NodeID:        n.ID(),
			Presence:      pres,
			Load:          n.load(),
			FreeGPUBytes:  n.srv.GPUFree(),
			HostChunkFrac: n.chunkFrac(model),
		})
	}
	return out
}

// publish refreshes the per-node gauges after a sweep or state change.
func (r *NodeRegistry) publish() {
	var healthy int64
	for _, n := range r.Nodes() {
		rep := n.Report()
		if n.State() == NodeHealthy {
			healthy++
		}
		id := n.ID()
		r.reg.Gauge("node_state_" + id).Set(float64(n.State()))
		r.reg.Gauge("node_load_" + id).Set(float64(rep.Load))
		r.reg.Gauge("node_swap_ins_" + id).Set(float64(rep.SwapIns))
		r.reg.Gauge("node_swap_outs_" + id).Set(float64(rep.SwapOuts))
		r.reg.Gauge("node_snapshot_ram_bytes_" + id).Set(float64(rep.SnapshotRAMBytes))
		r.reg.Gauge("node_free_gpu_bytes_" + id).Set(float64(rep.FreeGPUBytes))
		if rep.ChunkStore {
			// The chunk inventory the node advertises: deduplicated tier
			// footprints plus what content addressing is saving.
			r.reg.Gauge("node_chunk_host_bytes_" + id).Set(float64(rep.ChunkHostBytes))
			r.reg.Gauge("node_chunk_disk_bytes_" + id).Set(float64(rep.ChunkDiskBytes))
			r.reg.Gauge("node_chunk_dedup_saved_bytes_" + id).Set(float64(rep.ChunkDedupSavedBytes))
		}
	}
	r.reg.Gauge("cluster_nodes_healthy").Set(float64(healthy))
}
