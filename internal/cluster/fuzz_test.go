package cluster

import (
	"testing"

	"swapservellm/internal/chaos"
	"swapservellm/internal/invariant"
)

// FuzzNodeTransitions drives the registry state machine with arbitrary
// transition request sequences and checks two properties on every
// input: transition() accepts a request iff the edge is in
// legalNodeEdges (an illegal request leaves the state untouched), and
// the committed transition trace always satisfies the node invariants
// (continuity from joining, legal edges only).
func FuzzNodeTransitions(f *testing.F) {
	// Seed corpus: the full legal lifecycle, the crash/rejoin cycle,
	// classic illegal requests (joining→draining, down→draining), and
	// repeated same-state no-ops.
	f.Add([]byte{1, 2, 1, 3, 1})       // healthy→draining→healthy→down→healthy
	f.Add([]byte{3, 1, 3, 1})          // crash/rejoin twice
	f.Add([]byte{2})                   // joining→draining (illegal)
	f.Add([]byte{3, 2})                // down→draining (illegal)
	f.Add([]byte{1, 1, 1})             // same-state no-ops
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0}) // every attempt back to joining (illegal)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, seq []byte) {
		tr := chaos.NewTrace()
		n := newNode("fuzz-node", nil, 0)
		n.trace = tr

		cur := NodeJoining
		for i, b := range seq {
			to := NodeState(b % 4)
			legal := legalTransition(cur, to)
			ok := n.transition(to)
			if ok != legal {
				t.Fatalf("step %d: transition(%v→%v) = %v, legal = %v", i, cur, to, ok, legal)
			}
			if ok {
				cur = to
			}
			if got := n.State(); got != cur {
				t.Fatalf("step %d: state = %v, want %v (request %v, accepted=%v)", i, got, cur, to, ok)
			}
		}

		var rep invariant.Report
		invariant.CheckNodeTrace(&rep, tr)
		if !rep.Ok() {
			t.Fatalf("trace violations after %v:\n%s", seq, rep.String())
		}
		// No-op requests (including rejected ones) must not appear in the
		// trace: every event is a real state change.
		for _, ev := range tr.Events() {
			if ev.From == ev.To {
				t.Fatalf("self-loop recorded in trace: %+v", ev)
			}
		}
	})
}
