package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/engine"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

var testEpoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

// twoNodeConfig builds a cluster config with the model replicated on
// both nodes.
func twoNodeConfig(model string) config.Cluster {
	cfg := config.DefaultCluster()
	// Heartbeats are driven explicitly via Sweep in tests; keep the
	// interval long so the background loop stays out of the way.
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: []config.Model{{Name: model, Engine: "ollama"}}},
		{Name: "node-b", Models: []config.Model{{Name: model, Engine: "ollama"}}},
	}
	return cfg
}

// startCluster builds and starts a cluster, tearing it down with the
// test.
func startCluster(t *testing.T, cfg config.Cluster, scale float64) *Cluster {
	t.Helper()
	c, err := NewWithOptions(cfg, Options{Clock: simclock.NewScaled(testEpoch, scale)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func gatewayChat(t *testing.T, url, model string, maxTokens int) *openai.ChatCompletionResponse {
	t.Helper()
	seed := int64(7)
	resp, err := openai.NewClient(url).ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:     model,
		Messages:  []openai.Message{{Role: "user", Content: "hello cluster"}},
		Seed:      &seed,
		MaxTokens: maxTokens,
	})
	if err != nil {
		t.Fatalf("chat via gateway: %v", err)
	}
	return resp
}

func TestClusterServesAndReportsStatus(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)

	resp := gatewayChat(t, c.URL(), model, 4)
	if resp.Usage.CompletionTokens != 4 {
		t.Fatalf("completion tokens = %d", resp.Usage.CompletionTokens)
	}
	if got := c.Registry().Counter("gateway_requests_total").Value(); got != 1 {
		t.Fatalf("gateway_requests_total = %v", got)
	}

	// Status reports both nodes healthy with the model deployed.
	hr, err := http.Get(c.URL() + "/admin/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var st struct {
		Placement string   `json:"placement"`
		Nodes     []Report `json:"nodes"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Placement != "locality" || len(st.Nodes) != 2 {
		t.Fatalf("status = %+v", st)
	}
	for _, n := range st.Nodes {
		if n.State != "healthy" {
			t.Fatalf("node %s state = %s", n.ID, n.State)
		}
		if len(n.Models) != 1 || n.Models[0].Model != model {
			t.Fatalf("node %s inventory = %+v", n.ID, n.Models)
		}
	}
}

func TestLocalityRoutingSticksToWarmNode(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)

	// First request: both nodes hold only a RAM snapshot (init leaves
	// backends swapped out), so the placement is a miss that lands on
	// node-a by deterministic tie-break and swaps it in.
	gatewayChat(t, c.URL(), model, 2)
	// Subsequent requests must stick to the now-warm node-a. Each asks
	// for a distinct token budget so the response cache (keyed on the
	// canonical body) misses and placement actually runs.
	for i := 0; i < 3; i++ {
		gatewayChat(t, c.URL(), model, 3+i)
	}

	reg := c.Registry()
	if got := reg.Counter("placement_node_node-a").Value(); got != 4 {
		t.Fatalf("node-a placements = %v, want 4", got)
	}
	if got := reg.Counter("placement_node_node-b").Value(); got != 0 {
		t.Fatalf("node-b placements = %v, want 0", got)
	}
	if hits := reg.Counter("placement_hits").Value(); hits != 3 {
		t.Fatalf("placement_hits = %v, want 3 (first was a cold miss)", hits)
	}
	if ratio := reg.Gauge("placement_hit_ratio").Value(); ratio != 0.75 {
		t.Fatalf("placement_hit_ratio = %v, want 0.75", ratio)
	}
}

func TestDrainExcludesNode(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)

	// Drain node-a (the deterministic first choice) via the admin API.
	resp, err := http.Post(c.URL()+"/admin/v1/cluster/drain?node=node-a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n, _ := c.Node("node-a"); n.State() != NodeDraining {
		t.Fatalf("node-a state = %v", n.State())
	}

	for i := 0; i < 3; i++ {
		gatewayChat(t, c.URL(), model, 2+i) // distinct bodies: no cache hits
	}
	if got := c.Registry().Counter("placement_node_node-b").Value(); got != 3 {
		t.Fatalf("node-b placements = %v, want all 3 while node-a drains", got)
	}

	// Undrain restores eligibility.
	resp, err = http.Post(c.URL()+"/admin/v1/cluster/undrain?node=node-a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n, _ := c.Node("node-a"); n.State() != NodeHealthy {
		t.Fatalf("node-a state after undrain = %v", n.State())
	}
}

func TestModelsUnionAcrossNodes(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: []config.Model{{Name: "llama3.2:1b-fp16", Engine: "ollama"}}},
		{Name: "node-b", Models: []config.Model{{Name: "deepseek-r1:1.5b-q4", Engine: "ollama"}}},
	}
	c := startCluster(t, cfg, 5000)

	list, err := openai.NewClient(c.URL()).ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, m := range list.Data {
		got[m.ID] = true
	}
	if !got["llama3.2:1b-fp16"] || !got["deepseek-r1:1.5b-q4"] || len(got) != 2 {
		t.Fatalf("models union = %v", got)
	}
}

func TestHeartbeatMarksNodeDownAndRoutesAround(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)

	if err := c.KillNode("node-b"); err != nil {
		t.Fatal(err)
	}
	// One missed probe is not enough; missLimit (3) consecutive are.
	c.NodeRegistry().Sweep()
	if n, _ := c.Node("node-b"); n.State() != NodeHealthy {
		t.Fatalf("node-b down after a single miss: %v", n.State())
	}
	c.NodeRegistry().Sweep()
	c.NodeRegistry().Sweep()
	if n, _ := c.Node("node-b"); n.State() != NodeDown {
		t.Fatalf("node-b state after %d misses = %v", 3, n.State())
	}

	// The cluster still serves from the surviving node.
	gatewayChat(t, c.URL(), model, 2)
	if got := c.Registry().Counter("placement_node_node-a").Value(); got != 1 {
		t.Fatalf("node-a placements = %v", got)
	}
	// Gateway health stays green with one node up.
	hr, err := http.Get(c.URL() + "/health")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("gateway health = %d", hr.StatusCode)
	}
}

func TestFailoverBufferedRequest(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)

	// Warm node-a so it is the clear locality winner, then kill it
	// abruptly. The registry still believes it is healthy, so the
	// gateway's next placement goes there, hits a connection error,
	// fences the node, and retries on node-b — invisibly to the client.
	gatewayChat(t, c.URL(), model, 2)
	if err := c.KillNode("node-a"); err != nil {
		t.Fatal(err)
	}
	resp := gatewayChat(t, c.URL(), model, 4)
	if resp.Usage.CompletionTokens != 4 {
		t.Fatalf("completion tokens = %d", resp.Usage.CompletionTokens)
	}
	reg := c.Registry()
	if got := reg.Counter("cross_node_retries").Value(); got != 1 {
		t.Fatalf("cross_node_retries = %v", got)
	}
	if got := reg.Counter("failover_successes").Value(); got != 1 {
		t.Fatalf("failover_successes = %v", got)
	}
	if n, _ := c.Node("node-a"); n.State() != NodeDown {
		t.Fatalf("node-a not fenced after connection failure: %v", n.State())
	}
}

// TestFailoverMidStream is the acceptance scenario: a streaming request
// whose first node is killed mid-stream completes on the second node,
// with the client seeing one seamless, complete stream.
func TestFailoverMidStream(t *testing.T) {
	const model = "llama3.1:8b-fp16"
	// A slower clock (~16 ms simulated per token for an 8B model, scale
	// 200 → dozens of wall-milliseconds per stream) leaves ample time to
	// kill the serving node between chunks.
	c := startCluster(t, twoNodeConfig(model), 200)

	const prompt = "stream a long answer please"
	seed := int64(7)
	// MinTokens forces a stream far larger than kernel socket buffers
	// (~320 KiB of SSE events), so the killed node cannot have finished
	// writing ahead of the client: TCP backpressure guarantees the kill
	// lands mid-stream regardless of goroutine scheduling.
	req := &openai.ChatCompletionRequest{
		Model:     model,
		Messages:  []openai.Message{{Role: "user", Content: prompt}},
		Seed:      &seed,
		MinTokens: 2000,
	}

	// The generator is deterministic, so the exact expected transcript is
	// known up front: identical on both replicas, which is what makes
	// skip-ahead stream resumption exact.
	var gen engine.Generator
	full := engine.PromptText(req.Messages)
	n := gen.CompletionLength(full, seed, 0)
	if n < req.MinTokens {
		n = req.MinTokens
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		want.WriteString(gen.Token(full, seed, i))
	}

	var got strings.Builder
	var chunks int
	killed := false
	err := openai.NewClient(c.URL()).ChatCompletionStream(context.Background(), req,
		func(ch *openai.ChatCompletionChunk) error {
			chunks++
			for _, choice := range ch.Choices {
				got.WriteString(choice.Delta.Content)
			}
			if chunks == 3 && !killed {
				killed = true
				if err := c.KillNode("node-a"); err != nil {
					t.Errorf("killing node-a: %v", err)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("stream did not complete across failover: %v", err)
	}

	if got.String() != want.String() {
		t.Fatalf("resumed stream diverged:\n got %q\nwant %q", got.String(), want.String())
	}
	// Role preamble + n tokens + finish chunk.
	if wantChunks := n + 2; chunks != wantChunks {
		t.Fatalf("chunks = %d, want %d (no duplicates or gaps across failover)", chunks, wantChunks)
	}
	reg := c.Registry()
	if got := reg.Counter("cross_node_retries").Value(); got < 1 {
		t.Fatalf("cross_node_retries = %v, want >= 1 (stream must have failed over)", got)
	}
	if got := reg.Counter("failover_successes").Value(); got < 1 {
		t.Fatalf("failover_successes = %v", got)
	}
}

func TestGatewayMetricsEndpoints(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)
	gatewayChat(t, c.URL(), model, 2)

	resp, err := http.Get(c.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# TYPE", "gateway_requests_total", "placement_hit_ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q", want)
		}
	}

	resp2, err := http.Get(c.URL() + "/metrics.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf2 := new(strings.Builder)
	if _, err := io.Copy(buf2, resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf2.String(), "kind,name,field,value") {
		t.Errorf("csv export header missing: %q", buf2.String()[:40])
	}
}

func TestUnrouteableModel(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)
	_, err := openai.NewClient(c.URL()).ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:    "gemma:7b-fp16", // valid catalog model, deployed nowhere
		Messages: []openai.Message{{Role: "user", Content: "hi"}},
	})
	if err == nil || !strings.Contains(err.Error(), "not available") {
		t.Fatalf("expected not-available error, got %v", err)
	}
}
