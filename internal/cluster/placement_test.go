package cluster

import (
	"testing"
)

func cand(id string, p Presence, load int, free int64) Candidate {
	return Candidate{NodeID: id, Presence: p, Load: load, FreeGPUBytes: free}
}

func selectID(t *testing.T, p Policy, cands []Candidate) string {
	t.Helper()
	idx, ok := p.Select("m", cands)
	if !ok {
		t.Fatal("policy returned no candidate")
	}
	return cands[idx].NodeID
}

func TestLocalityFirstPrefersWarm(t *testing.T) {
	p := LocalityFirst{}
	cands := []Candidate{
		cand("a", PresenceDisk, 0, 100),
		cand("b", PresenceWarm, 9, 0), // loaded, but warm wins outright
		cand("c", PresenceRAM, 0, 100),
	}
	if got := selectID(t, p, cands); got != "b" {
		t.Fatalf("picked %q, want warm node b", got)
	}
}

func TestLocalityFirstOrdering(t *testing.T) {
	// Warm > RAM > disk > none, per the presence ladder.
	p := LocalityFirst{}
	cands := []Candidate{
		cand("a", PresenceNone, 0, 0),
		cand("b", PresenceDisk, 0, 0),
		cand("c", PresenceRAM, 0, 0),
	}
	if got := selectID(t, p, cands); got != "c" {
		t.Fatalf("picked %q, want ram node c", got)
	}
}

func TestLocalityFirstTieBreaksByLoad(t *testing.T) {
	p := LocalityFirst{}
	cands := []Candidate{
		cand("a", PresenceRAM, 5, 100),
		cand("b", PresenceRAM, 1, 100),
	}
	if got := selectID(t, p, cands); got != "b" {
		t.Fatalf("picked %q, want less-loaded node b", got)
	}
	// Fully symmetric candidates break toward the lexically first ID, so
	// repeated placements are deterministic.
	cands = []Candidate{
		cand("y", PresenceRAM, 1, 100),
		cand("x", PresenceRAM, 1, 100),
	}
	if got := selectID(t, p, cands); got != "x" {
		t.Fatalf("picked %q, want lexical first x", got)
	}
}

func TestLeastLoadedIgnoresPresence(t *testing.T) {
	p := LeastLoaded{}
	cands := []Candidate{
		cand("a", PresenceWarm, 4, 100),
		cand("b", PresenceNone, 2, 100),
	}
	if got := selectID(t, p, cands); got != "b" {
		t.Fatalf("picked %q, want least-loaded node b", got)
	}
	// Equal load: more free GPU memory wins.
	cands = []Candidate{
		cand("a", PresenceWarm, 2, 10),
		cand("b", PresenceNone, 2, 100),
	}
	if got := selectID(t, p, cands); got != "b" {
		t.Fatalf("picked %q, want free-GPU node b", got)
	}
}

func TestRandomSeededDeterministic(t *testing.T) {
	cands := []Candidate{
		cand("a", PresenceWarm, 0, 0),
		cand("b", PresenceWarm, 0, 0),
		cand("c", PresenceWarm, 0, 0),
	}
	run := func(seed int64) []string {
		p := NewRandom(seed)
		var out []string
		for i := 0; i < 20; i++ {
			out = append(out, selectID(t, p, cands))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Over 20 draws of 3 nodes, more than one node must appear.
	seen := make(map[string]bool)
	for _, id := range a {
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("random policy stuck on one node: %v", seen)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "locality",
		"locality":     "locality",
		"least-loaded": "least-loaded",
		"random":       "random",
	} {
		p, ok := PolicyByName(name, 1)
		if !ok || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PolicyByName("warmest", 1); ok {
		t.Fatal("unknown policy accepted")
	}
}

func TestPresenceString(t *testing.T) {
	if PresenceWarm.String() != "warm" || PresenceRAM.String() != "ram" ||
		PresenceDisk.String() != "disk" || PresenceNone.String() != "none" {
		t.Fatal("presence strings wrong")
	}
}

func TestNodeStateString(t *testing.T) {
	for s, want := range map[NodeState]string{
		NodeJoining: "joining", NodeHealthy: "healthy",
		NodeDraining: "draining", NodeDown: "down",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
