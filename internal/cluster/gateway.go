package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/obs"
	"swapservellm/internal/openai"
)

// gateway is the cluster's OpenAI-compatible front door. It terminates
// client requests, asks the placement policy which node should serve
// each one, and proxies to that node's router — relaying SSE streams
// chunk by chunk. When a node dies mid-request or reports overload the
// gateway fails the request over to another replica: buffered JSON
// responses retry invisibly, and interrupted streams resume on the new
// node by skipping the events the client has already received (node
// generation is deterministic for identical requests, so the resumed
// stream continues exactly where the dead node stopped).
type gateway struct {
	c *Cluster
}

// maxBodyBytes bounds client payloads (mirrors the node router).
const maxBodyBytes = 1 << 20

// proxyOutcome classifies one forwarding attempt.
type proxyOutcome int

const (
	// outcomeDone: the response (success or a client-caused error) was
	// delivered; stop.
	outcomeDone proxyOutcome = iota
	// outcomeRetry: the node failed in a way another replica can absorb
	// (connection refused/reset, queue full, backend failure).
	outcomeRetry
	// outcomeFatal: the client is gone or the stream is unrecoverable.
	outcomeFatal
)

// handler builds the gateway's http.Handler.
func (g *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", g.auth(g.proxy("/v1/chat/completions", validateChat)))
	mux.HandleFunc("/v1/completions", g.auth(g.proxy("/v1/completions", validateCompletion)))
	mux.HandleFunc("/v1/models", g.auth(g.listModels))
	mux.HandleFunc("/health", g.health)
	mux.HandleFunc("/cluster/status", g.auth(g.status))
	mux.HandleFunc("/cluster/drain", g.auth(g.drain(true)))
	mux.HandleFunc("/cluster/undrain", g.auth(g.drain(false)))
	mux.HandleFunc("/metrics", g.auth(g.metricsProm))
	mux.HandleFunc("/metrics.csv", g.auth(g.metricsCSV))
	mux.Handle("/debug/trace", g.c.tracer.Handler())
	return mux
}

// auth enforces the optional bearer token at the gateway edge.
func (g *gateway) auth(next http.HandlerFunc) http.HandlerFunc {
	token := g.c.cfg.Global.AuthToken
	if token == "" {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if got != token {
			openai.WriteError(w, http.StatusUnauthorized, "invalid_api_key", "invalid or missing API key")
			return
		}
		next(w, r)
	}
}

// validateChat checks a chat-completions payload and extracts the model.
func validateChat(body []byte) (string, error) {
	var req openai.ChatCompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("malformed JSON: %w", err)
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	return req.Model, nil
}

// validateCompletion checks a legacy completions payload.
func validateCompletion(body []byte) (string, error) {
	var req openai.CompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("malformed JSON: %w", err)
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	return req.Model, nil
}

func (g *gateway) proxy(path string, validate func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g.serveProxy(w, r, path, validate)
	}
}

// serveProxy runs the place → forward → maybe-fail-over loop for one
// client request.
func (g *gateway) serveProxy(w http.ResponseWriter, r *http.Request, path string, validate func([]byte) (string, error)) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "reading body: "+err.Error())
		return
	}
	model, err := validate(body)
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	class, err := g.c.classFor(model, r.Header.Get("X-Priority-Class"))
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}

	g.c.reg.Counter("gateway_requests_total").Inc()

	ctx := g.c.traceCtx(r.Context())
	var span *obs.Span
	ctx, span = obs.Start(ctx, "gateway.request",
		obs.String("model", model), obs.String("path", path),
		obs.String("class", class))
	defer span.End()

	// Predictive scheduling: feed the demand predictor with every
	// offered arrival, then run admission control. A shed is a 429 with
	// Retry-After — the client's cue to back off until the class's
	// guaranteed share refills.
	if sc := g.c.sched; sc != nil {
		now := g.c.clock.Now()
		sc.pred.Observe(model, now)
		if sc.adm != nil {
			wait := sc.adm.PredictedWait(class)
			dec := sc.adm.Decide(class, wait, now)
			if !dec.Admit {
				span.Fail(fmt.Errorf("shed class %s (%s): predicted wait %s", class, dec.Reason, wait))
				retry := int(dec.RetryAfter / time.Second)
				if retry < 1 {
					retry = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(retry))
				openai.WriteError(w, http.StatusTooManyRequests, "rate_limit_exceeded",
					fmt.Sprintf("class %q shed under load: predicted wait %s exceeds the class SLO; retry after %ds", class, wait.Round(time.Millisecond), retry))
				return
			}
			sc.adm.NoteStart(class)
			t0 := now
			defer func() { sc.adm.NoteDone(class, g.c.clock.Since(t0)) }()
		}
	}

	// stream tracks SSE delivery across attempts so a failover resumes
	// where the dead node stopped.
	stream := &sseRelay{w: w, inj: g.c.chaosInj}
	tried := make(map[string]bool)
	var lastErr string

	for attempt := 0; attempt < g.c.retryLimit; attempt++ {
		id, warm, ok := g.place(model, tried)
		if !ok {
			break
		}
		tried[id] = true
		span.Event("place", obs.String("node", id),
			obs.Bool("warm", warm), obs.Int("attempt", attempt))
		if attempt == 0 {
			g.recordPlacement(id, warm)
			if sc := g.c.sched; sc != nil && sc.pw != nil {
				sc.pw.NotePlacement(model, warm, g.c.clock.Now())
			}
		} else {
			g.c.reg.Counter("cross_node_retries").Inc()
		}
		node, ok := g.c.registry.Node(id)
		if !ok {
			continue
		}
		outcome, errMsg := g.forward(ctx, node, path, body, r.Header.Get("Authorization"), class, stream)
		switch outcome {
		case outcomeDone:
			if attempt > 0 {
				g.c.reg.Counter("failover_successes").Inc()
			}
			return
		case outcomeFatal:
			span.Fail(fmt.Errorf("%s", errMsg))
			return
		}
		span.Event("failover", obs.String("node", id), obs.String("error", errMsg))
		lastErr = errMsg
	}

	// Every eligible node was tried (or none existed).
	g.c.reg.Counter("gateway_unrouteable").Inc()
	span.Fail(fmt.Errorf("unrouteable after %d attempts", len(tried)))
	if stream.started {
		// Mid-stream with no replica left: all we can do is end the
		// stream; the missing [DONE] tells the client it was truncated.
		return
	}
	if len(tried) == 0 {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not available on any healthy node", model))
		return
	}
	msg := fmt.Sprintf("all %d eligible nodes failed for %q", len(tried), model)
	if lastErr != "" {
		msg += ": " + lastErr
	}
	openai.WriteError(w, http.StatusServiceUnavailable, "no_available_node", msg)
}

// place asks the policy for the next node, excluding already-tried
// ones. Returns the node ID and whether the placement was a locality
// hit (warm backend).
func (g *gateway) place(model string, tried map[string]bool) (string, bool, bool) {
	cands := g.c.registry.Candidates(model)
	if len(tried) > 0 {
		kept := cands[:0]
		for _, c := range cands {
			if !tried[c.NodeID] {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	if len(cands) == 0 {
		return "", false, false
	}
	idx, ok := g.c.policy.Select(model, cands)
	if !ok || idx < 0 || idx >= len(cands) {
		return "", false, false
	}
	return cands[idx].NodeID, cands[idx].Presence == PresenceWarm, true
}

// recordPlacement updates the placement-quality metrics for a
// first-attempt routing decision.
func (g *gateway) recordPlacement(nodeID string, warm bool) {
	total := g.c.reg.Counter("placement_total")
	hits := g.c.reg.Counter("placement_hits")
	total.Inc()
	if warm {
		hits.Inc()
	} else {
		g.c.reg.Counter("placement_misses").Inc()
	}
	g.c.reg.Counter("placement_node_" + nodeID).Inc()
	if t := total.Value(); t > 0 {
		g.c.reg.Gauge("placement_hit_ratio").Set(hits.Value() / t)
	}
}

// forward sends the request to one node and relays its response. The
// error string is only meaningful for outcomeRetry.
func (g *gateway) forward(ctx context.Context, node *Node, path string, body []byte, authHeader, class string, stream *sseRelay) (proxyOutcome, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.URL()+path, bytes.NewReader(body))
	if err != nil {
		return outcomeRetry, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	if authHeader != "" {
		req.Header.Set("Authorization", authHeader)
	}
	if class != "" {
		// Thread the resolved priority class through the request
		// envelope so node-side tooling can attribute work to classes.
		req.Header.Set("X-Priority-Class", class)
	}
	// An injected proxy fault is indistinguishable from a refused
	// connection: fence the node and try a replica. A delay-only outcome
	// models a slow upstream link.
	if out := g.c.chaosInj.At(chaos.SiteProxy); out.Err != nil || out.Delay > 0 {
		if out.Delay > 0 {
			g.c.clock.Sleep(out.Delay)
		}
		if out.Err != nil {
			obs.AnnotateFault(ctx, string(chaos.SiteProxy), out.Err)
			g.c.registry.ReportFailure(node.ID())
			return outcomeRetry, fmt.Sprintf("node %s: %v", node.ID(), out.Err)
		}
	}
	resp, err := g.c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcomeFatal, ctx.Err().Error()
		}
		// Connection-level failure: the node is gone. Fence it now rather
		// than waiting for the heartbeat loop to notice.
		g.c.registry.ReportFailure(node.ID())
		return outcomeRetry, err.Error()
	}
	defer resp.Body.Close()

	if retriableStatus(resp.StatusCode) {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return outcomeRetry, fmt.Sprintf("node %s: HTTP %d: %s", node.ID(), resp.StatusCode, bytes.TrimSpace(msg))
	}

	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return stream.relay(ctx, node, resp)
	}

	// Buffered (non-streaming) response: read it fully before touching
	// the client connection so a mid-body failure can still fail over.
	full, err := io.ReadAll(resp.Body)
	if err != nil {
		g.c.registry.ReportFailure(node.ID())
		return outcomeRetry, fmt.Sprintf("node %s: reading response: %v", node.ID(), err)
	}
	copyHeaders(stream.w.Header(), resp.Header)
	stream.w.WriteHeader(resp.StatusCode)
	stream.w.Write(full)
	return outcomeDone, ""
}

// retriableStatus reports whether a node-level status is worth trying
// on another replica: queue saturation and backend failures are, client
// errors are not.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// sseRelay streams SSE events to the client while counting delivered
// events, so a retry on another node can skip what the client already
// has and continue the stream seamlessly.
type sseRelay struct {
	w         http.ResponseWriter
	inj       *chaos.Injector
	started   bool
	delivered int
}

// relay pipes one node's SSE response to the client. On a clean [DONE]
// it reports outcomeDone; on a mid-stream read failure it reports
// outcomeRetry so the caller can resume on another node.
func (s *sseRelay) relay(ctx context.Context, node *Node, resp *http.Response) (proxyOutcome, string) {
	if !s.started {
		copyHeaders(s.w.Header(), resp.Header)
		s.w.WriteHeader(resp.StatusCode)
		s.started = true
	}
	flusher, _ := s.w.(http.Flusher)
	br := bufio.NewReader(resp.Body)
	skip := s.delivered
	for {
		event, err := readSSEEvent(br)
		if err != nil {
			// A partial event cut off mid-write is discarded: the replica
			// will re-send it whole at the same position.
			return outcomeRetry, fmt.Sprintf("node %s: stream interrupted after %d events: %v", node.ID(), s.delivered, err)
		}
		// Injected mid-stream disconnect: drop the connection here, as if
		// the node died between two events. The event just read is
		// discarded — the replica re-sends it at the same position.
		if ferr := s.inj.At(chaos.SiteSSE).Err; ferr != nil {
			obs.AnnotateFault(ctx, string(chaos.SiteSSE), ferr)
			return outcomeRetry, fmt.Sprintf("node %s: stream cut after %d events: %v", node.ID(), s.delivered, ferr)
		}
		done := strings.TrimSpace(strings.TrimPrefix(event, "data:")) == openai.DoneSentinel
		if !done && skip > 0 {
			skip--
			continue
		}
		if _, werr := io.WriteString(s.w, event+"\n\n"); werr != nil {
			return outcomeFatal, "client gone"
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return outcomeDone, ""
		}
		s.delivered++
	}
}

// readSSEEvent reads one blank-line-delimited SSE event (without the
// trailing blank line). A non-nil error may accompany a final partial
// event.
func readSSEEvent(br *bufio.Reader) (string, error) {
	var lines []string
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		if err != nil {
			return strings.Join(lines, "\n"), err
		}
		if line == "" {
			if len(lines) == 0 {
				continue // leading keep-alive blank line
			}
			return strings.Join(lines, "\n"), nil
		}
		lines = append(lines, line)
	}
}

// listModels reports the union of models deployed on healthy nodes.
func (g *gateway) listModels(w http.ResponseWriter, r *http.Request) {
	list := openai.ModelList{Object: "list"}
	seen := make(map[string]bool)
	for _, n := range g.c.registry.Nodes() {
		if n.State() != NodeHealthy {
			continue
		}
		for _, b := range n.Server().Backends() {
			if seen[b.Name()] {
				continue
			}
			seen[b.Name()] = true
			list.Data = append(list.Data, openai.ModelInfo{
				ID:      b.Name(),
				Object:  "model",
				Created: g.c.clock.Now().Unix(),
				OwnedBy: string(b.EngineKind()),
			})
		}
	}
	openai.WriteJSON(w, http.StatusOK, list)
}

// health reports gateway liveness: OK once at least one node is
// healthy.
func (g *gateway) health(w http.ResponseWriter, r *http.Request) {
	var healthy int
	for _, n := range g.c.registry.Nodes() {
		if n.State() == NodeHealthy {
			healthy++
		}
	}
	if healthy == 0 {
		openai.WriteError(w, http.StatusServiceUnavailable, "no_healthy_nodes", "no cluster node is healthy")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// status reports every node's capacity/utilization report.
func (g *gateway) status(w http.ResponseWriter, r *http.Request) {
	var out struct {
		Placement string   `json:"placement"`
		Nodes     []Report `json:"nodes"`
	}
	out.Placement = g.c.policy.Name()
	for _, n := range g.c.registry.Nodes() {
		out.Nodes = append(out.Nodes, n.Report())
	}
	openai.WriteJSON(w, http.StatusOK, out)
}

// drain moves a node into (or out of) the draining state.
func (g *gateway) drain(enter bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
			return
		}
		id := r.URL.Query().Get("node")
		var err error
		if enter {
			err = g.c.registry.Drain(id)
		} else {
			err = g.c.registry.Undrain(id)
		}
		if err != nil {
			openai.WriteError(w, http.StatusNotFound, "invalid_request_error", err.Error())
			return
		}
		n, _ := g.c.registry.Node(id)
		openai.WriteJSON(w, http.StatusOK, map[string]string{"node": id, "state": n.State().String()})
	}
}

func (g *gateway) metricsProm(w http.ResponseWriter, r *http.Request) {
	g.c.reg.Handler().ServeHTTP(w, r)
}

func (g *gateway) metricsCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	g.c.reg.WriteCSV(w)
}
