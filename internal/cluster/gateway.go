package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/obs"
	"swapservellm/internal/openai"
	"swapservellm/internal/proxy"
	"swapservellm/internal/proxy/ir"
)

// gateway is the cluster's multi-protocol front door. Every inference
// route is one row of the proxy endpoint table: the row names the
// codec that decodes the client wire format (OpenAI /v1/* or Ollama
// /api/*) into the IR, the canonical upstream path the request
// forwards to, the stream framing back toward the client (SSE or
// NDJSON), the default priority class, and cacheability. The gateway
// consults the IR-keyed response cache before placement, then asks the
// placement policy which node should serve the request and proxies to
// that node's router — translating buffered responses and stream
// events back into the client's protocol on the way out.
//
// When a node dies mid-request or reports overload the gateway fails
// the request over to another replica: buffered JSON responses retry
// invisibly, and interrupted streams resume on the new node by
// skipping the canonical upstream events the client has already
// received. Because every protocol forwards the same canonical
// encoding and stream events map 1:1 onto client frames, the
// delivered-event count is framing-agnostic — resume is exact under
// SSE and NDJSON alike.
type gateway struct {
	c     *Cluster
	front *proxy.Front
}

// maxBodyBytes bounds client payloads (mirrors the node router).
const maxBodyBytes = 1 << 20

// proxyOutcome classifies one forwarding attempt.
type proxyOutcome int

const (
	// outcomeDone: the response (success or a client-caused error) was
	// delivered; stop.
	outcomeDone proxyOutcome = iota
	// outcomeRetry: the node failed in a way another replica can absorb
	// (connection refused/reset, queue full, backend failure).
	outcomeRetry
	// outcomeFatal: the client is gone or the stream is unrecoverable.
	outcomeFatal
)

// handler builds the gateway's http.Handler: one loop over the
// endpoint table for the inference routes, plus the versioned admin
// mux and the observability endpoints.
func (g *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range g.front.Table() {
		ep := ep
		switch {
		case ep.Upstream != "":
			mux.HandleFunc(ep.Path, g.auth(func(w http.ResponseWriter, r *http.Request) {
				g.serveEndpoint(w, r, ep)
			}))
		case ep.Path == "/v1/models":
			mux.HandleFunc(ep.Path, g.auth(g.listModels))
		case ep.Path == "/api/tags":
			mux.HandleFunc(ep.Path, g.auth(g.listTags))
		}
	}
	mux.HandleFunc("/health", g.health)
	mux.Handle("/admin/", g.adminMux())
	mux.HandleFunc("/metrics", g.auth(g.metricsProm))
	mux.HandleFunc("/metrics.csv", g.auth(g.metricsCSV))
	mux.Handle("/debug/trace", g.c.tracer.Handler())
	return mux
}

// adminMux is the versioned operator surface, kept separate from the
// inference routes so protocol translation never sees admin traffic.
func (g *gateway) adminMux() *http.ServeMux {
	admin := http.NewServeMux()
	admin.HandleFunc("/admin/v1/cluster/status", g.auth(g.status))
	admin.HandleFunc("/admin/v1/cluster/drain", g.auth(g.drain(true)))
	admin.HandleFunc("/admin/v1/cluster/undrain", g.auth(g.drain(false)))
	admin.HandleFunc("/admin/v1/models/revision", g.auth(g.bumpRevision))
	return admin
}

// auth enforces the optional bearer token at the gateway edge.
func (g *gateway) auth(next http.HandlerFunc) http.HandlerFunc {
	token := g.c.cfg.Global.AuthToken
	if token == "" {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if got != token {
			openai.WriteError(w, http.StatusUnauthorized, "invalid_api_key", "invalid or missing API key")
			return
		}
		next(w, r)
	}
}

// serveEndpoint runs one endpoint-table row: decode the client wire
// format into the IR, consult the response cache, then place → forward
// → maybe-fail-over.
func (g *gateway) serveEndpoint(w http.ResponseWriter, r *http.Request, ep proxy.Endpoint) {
	if r.Method != ep.Method {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use "+ep.Method)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "reading body: "+err.Error())
		return
	}
	req, err := g.front.Decode(ep, body)
	if err != nil {
		g.writeDecodeError(w, err)
		return
	}
	class, err := g.c.classFor(req.Model, r.Header.Get("X-Priority-Class"), ep.Class)
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	canonical, err := g.front.EncodeUpstream(req)
	if err != nil {
		openai.WriteError(w, http.StatusServiceUnavailable, "translate_failed", err.Error())
		return
	}

	g.c.reg.Counter("gateway_requests_total").Inc()
	g.c.reg.Counter("gateway_requests_" + ep.MetricName()).Inc()

	ctx := g.c.traceCtx(r.Context())
	var span *obs.Span
	ctx, span = obs.Start(ctx, "gateway.request",
		obs.String("model", req.Model), obs.String("path", ep.Path),
		obs.String("protocol", string(ep.Protocol)), obs.String("class", class))
	defer span.End()

	// The response cache sits in front of placement and admission: a
	// hit never consumes node capacity, so it is served even when the
	// class would otherwise be shed. The key is the canonical upstream
	// encoding, so protocol siblings (/api/chat and /v1/chat/completions)
	// share entries.
	noStore := strings.Contains(r.Header.Get("Cache-Control"), "no-store")
	if !req.Stream {
		if cached, ok := g.front.CacheLookup(ep, req.Model, canonical, noStore); ok {
			out, terr := g.front.TranslateResponse(ep, cached)
			if terr == nil {
				span.Event("cache.hit", obs.String("endpoint", ep.Path))
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Cache", "hit")
				w.WriteHeader(http.StatusOK)
				w.Write(out)
				return
			}
			span.Event("cache.translate_error", obs.String("error", terr.Error()))
		}
	}

	// Predictive scheduling: feed the demand predictor with every
	// offered arrival, then run admission control. A shed is a 429 with
	// Retry-After — the client's cue to back off until the class's
	// guaranteed share refills.
	if sc := g.c.sched; sc != nil {
		now := g.c.clock.Now()
		sc.pred.Observe(req.Model, now)
		if sc.adm != nil {
			wait := sc.adm.PredictedWait(class)
			dec := sc.adm.Decide(class, wait, now)
			if !dec.Admit {
				span.Fail(fmt.Errorf("shed class %s (%s): predicted wait %s", class, dec.Reason, wait))
				retry := int(dec.RetryAfter / time.Second)
				if retry < 1 {
					retry = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(retry))
				openai.WriteError(w, http.StatusTooManyRequests, "rate_limit_exceeded",
					fmt.Sprintf("class %q shed under load: predicted wait %s exceeds the class SLO; retry after %ds", class, wait.Round(time.Millisecond), retry))
				return
			}
			sc.adm.NoteStart(class)
			t0 := now
			defer func() { sc.adm.NoteDone(class, g.c.clock.Since(t0)) }()
		}
	}

	// stream tracks delivery across attempts so a failover resumes
	// where the dead node stopped, translating each canonical upstream
	// event into the endpoint's framing.
	stream := &streamRelay{w: w, inj: g.c.chaosInj, tr: g.front.Translator(ep)}
	tried := make(map[string]bool)
	var lastErr string

	for attempt := 0; attempt < g.c.retryLimit; attempt++ {
		id, warm, ok := g.place(req.Model, tried)
		if !ok {
			break
		}
		tried[id] = true
		span.Event("place", obs.String("node", id),
			obs.Bool("warm", warm), obs.Int("attempt", attempt))
		if attempt == 0 {
			g.recordPlacement(id, warm)
			if sc := g.c.sched; sc != nil && sc.pw != nil {
				sc.pw.NotePlacement(req.Model, warm, g.c.clock.Now())
			}
		} else {
			g.c.reg.Counter("cross_node_retries").Inc()
		}
		node, ok := g.c.registry.Node(id)
		if !ok {
			continue
		}
		outcome, errMsg := g.forward(ctx, node, ep, req.Model, canonical, r.Header.Get("Authorization"), class, stream)
		switch outcome {
		case outcomeDone:
			if attempt > 0 {
				g.c.reg.Counter("failover_successes").Inc()
			}
			return
		case outcomeFatal:
			span.Fail(fmt.Errorf("%s", errMsg))
			return
		}
		span.Event("failover", obs.String("node", id), obs.String("error", errMsg))
		lastErr = errMsg
	}

	// Every eligible node was tried (or none existed).
	g.c.reg.Counter("gateway_unrouteable").Inc()
	span.Fail(fmt.Errorf("unrouteable after %d attempts", len(tried)))
	if stream.started {
		// Mid-stream with no replica left: all we can do is end the
		// stream; the missing terminal frame ([DONE] or the done:true
		// line) tells the client it was truncated.
		return
	}
	if len(tried) == 0 {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not available on any healthy node", req.Model))
		return
	}
	msg := fmt.Sprintf("all %d eligible nodes failed for %q", len(tried), req.Model)
	if lastErr != "" {
		msg += ": " + lastErr
	}
	openai.WriteError(w, http.StatusServiceUnavailable, "no_available_node", msg)
}

// writeDecodeError maps a front-door decode failure onto the wire: an
// injected translation fault is a well-formed 503 (the pipeline is
// degraded, not the request), anything else is the client's 400.
func (g *gateway) writeDecodeError(w http.ResponseWriter, err error) {
	if errors.Is(err, proxy.ErrTranslate) {
		g.c.reg.Counter("gateway_translate_failures").Inc()
		openai.WriteError(w, http.StatusServiceUnavailable, "translate_failed", err.Error())
		return
	}
	openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
}

// place asks the policy for the next node, excluding already-tried
// ones. Returns the node ID and whether the placement was a locality
// hit (warm backend).
func (g *gateway) place(model string, tried map[string]bool) (string, bool, bool) {
	cands := g.c.registry.Candidates(model)
	if len(tried) > 0 {
		kept := cands[:0]
		for _, c := range cands {
			if !tried[c.NodeID] {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	if len(cands) == 0 {
		return "", false, false
	}
	idx, ok := g.c.policy.Select(model, cands)
	if !ok || idx < 0 || idx >= len(cands) {
		return "", false, false
	}
	return cands[idx].NodeID, cands[idx].Presence == PresenceWarm, true
}

// recordPlacement updates the placement-quality metrics for a
// first-attempt routing decision.
func (g *gateway) recordPlacement(nodeID string, warm bool) {
	total := g.c.reg.Counter("placement_total")
	hits := g.c.reg.Counter("placement_hits")
	total.Inc()
	if warm {
		hits.Inc()
	} else {
		g.c.reg.Counter("placement_misses").Inc()
	}
	g.c.reg.Counter("placement_node_" + nodeID).Inc()
	if t := total.Value(); t > 0 {
		g.c.reg.Gauge("placement_hit_ratio").Set(hits.Value() / t)
	}
}

// forward sends the canonical request to one node's upstream path and
// relays its response. The error string is only meaningful for
// outcomeRetry.
func (g *gateway) forward(ctx context.Context, node *Node, ep proxy.Endpoint, model string, canonical []byte, authHeader, class string, stream *streamRelay) (proxyOutcome, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.URL()+ep.Upstream, bytes.NewReader(canonical))
	if err != nil {
		return outcomeRetry, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	if authHeader != "" {
		req.Header.Set("Authorization", authHeader)
	}
	if class != "" {
		// Thread the resolved priority class through the request
		// envelope so node-side tooling can attribute work to classes.
		req.Header.Set("X-Priority-Class", class)
	}
	// An injected proxy fault is indistinguishable from a refused
	// connection: fence the node and try a replica. A delay-only outcome
	// models a slow upstream link.
	if out := g.c.chaosInj.At(chaos.SiteProxy); out.Err != nil || out.Delay > 0 {
		if out.Delay > 0 {
			g.c.clock.Sleep(out.Delay)
		}
		if out.Err != nil {
			obs.AnnotateFault(ctx, string(chaos.SiteProxy), out.Err)
			g.c.registry.ReportFailure(node.ID())
			return outcomeRetry, fmt.Sprintf("node %s: %v", node.ID(), out.Err)
		}
	}
	resp, err := g.c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcomeFatal, ctx.Err().Error()
		}
		// Connection-level failure: the node is gone. Fence it now rather
		// than waiting for the heartbeat loop to notice.
		g.c.registry.ReportFailure(node.ID())
		return outcomeRetry, err.Error()
	}
	defer resp.Body.Close()

	if retriableStatus(resp.StatusCode) {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return outcomeRetry, fmt.Sprintf("node %s: HTTP %d: %s", node.ID(), resp.StatusCode, bytes.TrimSpace(msg))
	}

	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return stream.relay(ctx, node, resp)
	}

	// Buffered (non-streaming) response: read it fully before touching
	// the client connection so a mid-body failure can still fail over.
	full, err := io.ReadAll(resp.Body)
	if err != nil {
		g.c.registry.ReportFailure(node.ID())
		return outcomeRetry, fmt.Sprintf("node %s: reading response: %v", node.ID(), err)
	}
	return g.deliverBuffered(ep, model, canonical, stream.w, resp, full)
}

// deliverBuffered writes a fully-read node response to the client: a
// canonical 200 is translated into the endpoint's protocol and stored
// in the response cache; error envelopes pass through untouched.
func (g *gateway) deliverBuffered(ep proxy.Endpoint, model string, canonical []byte, w http.ResponseWriter, resp *http.Response, full []byte) (proxyOutcome, string) {
	if resp.StatusCode == http.StatusOK {
		out, err := g.front.TranslateResponse(ep, full)
		if err != nil {
			g.c.reg.Counter("gateway_translate_failures").Inc()
			openai.WriteError(w, http.StatusServiceUnavailable, "translate_failed", err.Error())
			return outcomeDone, ""
		}
		g.front.CacheStore(ep, model, canonical, full)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(out)
		return outcomeDone, ""
	}
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	w.Write(full)
	return outcomeDone, ""
}

// retriableStatus reports whether a node-level status is worth trying
// on another replica: queue saturation and backend failures are, client
// errors are not.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// streamRelay translates the node's canonical SSE stream into the
// endpoint's client framing while counting delivered canonical events,
// so a retry on another node can skip what the client already has and
// continue the stream seamlessly. The count is over upstream events —
// which map 1:1 onto client frames in every registered codec — so the
// same resume arithmetic is exact under SSE and NDJSON alike.
type streamRelay struct {
	w         http.ResponseWriter
	inj       *chaos.Injector
	tr        *proxy.StreamTranslator
	started   bool
	delivered int
}

// relay pipes one node's canonical SSE response to the client. On a
// clean terminal event it reports outcomeDone; on a mid-stream read
// failure it reports outcomeRetry so the caller can resume on another
// node.
func (s *streamRelay) relay(ctx context.Context, node *Node, resp *http.Response) (proxyOutcome, string) {
	if !s.started {
		s.w.Header().Set("Content-Type", s.tr.ContentType())
		s.w.WriteHeader(resp.StatusCode)
		s.started = true
	}
	flusher, _ := s.w.(http.Flusher)
	br := bufio.NewReader(resp.Body)
	skip := s.delivered
	for {
		event, err := ir.ReadSSEEvent(br)
		if err != nil {
			// A partial event cut off mid-write is discarded: the replica
			// will re-send it whole at the same position.
			return outcomeRetry, fmt.Sprintf("node %s: stream interrupted after %d events: %v", node.ID(), s.delivered, err)
		}
		// Injected mid-stream disconnect: drop the connection here, as if
		// the node died between two events. The event just read is
		// discarded — the replica re-sends it at the same position.
		if ferr := s.inj.At(chaos.SiteSSE).Err; ferr != nil {
			obs.AnnotateFault(ctx, string(chaos.SiteSSE), ferr)
			return outcomeRetry, fmt.Sprintf("node %s: stream cut after %d events: %v", node.ID(), s.delivered, ferr)
		}
		done := strings.TrimSpace(strings.TrimPrefix(event, "data:")) == ir.DoneSentinel
		if !done && skip > 0 {
			skip--
			continue
		}
		frames, _, terr := s.tr.Frames(event)
		if terr != nil {
			// The upstream stream is our own deterministic engine output; a
			// replica would produce the same bytes, so retrying cannot help.
			return outcomeFatal, fmt.Sprintf("node %s: %v", node.ID(), terr)
		}
		if len(frames) > 0 {
			if _, werr := s.w.Write(frames); werr != nil {
				return outcomeFatal, "client gone"
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done {
			return outcomeDone, ""
		}
		s.delivered++
	}
}

// listModels reports the union of models deployed on healthy nodes,
// with each model's protocol capabilities.
func (g *gateway) listModels(w http.ResponseWriter, r *http.Request) {
	list := openai.ModelList{Object: "list"}
	seen := make(map[string]bool)
	for _, n := range g.c.registry.Nodes() {
		if n.State() != NodeHealthy {
			continue
		}
		for _, b := range n.Server().Backends() {
			if seen[b.Name()] {
				continue
			}
			seen[b.Name()] = true
			list.Data = append(list.Data, openai.ModelInfo{
				ID:           b.Name(),
				Object:       "model",
				Created:      g.c.clock.Now().Unix(),
				OwnedBy:      string(b.EngineKind()),
				Capabilities: b.Model().Capabilities(),
			})
		}
	}
	openai.WriteJSON(w, http.StatusOK, list)
}

// listTags is the Ollama protocol's model listing (GET /api/tags): the
// same healthy-node union rendered in the Ollama wire shape.
func (g *gateway) listTags(w http.ResponseWriter, r *http.Request) {
	var tags ir.OllamaTagsResponse
	seen := make(map[string]bool)
	for _, n := range g.c.registry.Nodes() {
		if n.State() != NodeHealthy {
			continue
		}
		for _, b := range n.Server().Backends() {
			if seen[b.Name()] {
				continue
			}
			seen[b.Name()] = true
			tags.Models = append(tags.Models, proxy.TagFor(b.Name(), b.Model()))
		}
	}
	openai.WriteJSON(w, http.StatusOK, tags)
}

// health reports gateway liveness: OK once at least one node is
// healthy.
func (g *gateway) health(w http.ResponseWriter, r *http.Request) {
	var healthy int
	for _, n := range g.c.registry.Nodes() {
		if n.State() == NodeHealthy {
			healthy++
		}
	}
	if healthy == 0 {
		openai.WriteError(w, http.StatusServiceUnavailable, "no_healthy_nodes", "no cluster node is healthy")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// status reports every node's capacity/utilization report.
func (g *gateway) status(w http.ResponseWriter, r *http.Request) {
	var out struct {
		Placement string   `json:"placement"`
		Nodes     []Report `json:"nodes"`
	}
	out.Placement = g.c.policy.Name()
	for _, n := range g.c.registry.Nodes() {
		out.Nodes = append(out.Nodes, n.Report())
	}
	openai.WriteJSON(w, http.StatusOK, out)
}

// drain moves a node into (or out of) the draining state.
func (g *gateway) drain(enter bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
			return
		}
		id := r.URL.Query().Get("node")
		var err error
		if enter {
			err = g.c.registry.Drain(id)
		} else {
			err = g.c.registry.Undrain(id)
		}
		if err != nil {
			openai.WriteError(w, http.StatusNotFound, "invalid_request_error", err.Error())
			return
		}
		n, _ := g.c.registry.Node(id)
		openai.WriteJSON(w, http.StatusOK, map[string]string{"node": id, "state": n.State().String()})
	}
}

// bumpRevision advances a model's response-cache revision, invalidating
// its cached entries — the operator hook for weight updates (a new
// fine-tune under the same name must never serve predecessor answers).
func (g *gateway) bumpRevision(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	model := r.URL.Query().Get("model")
	if model == "" {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "model query parameter required")
		return
	}
	rev := g.front.BumpRevision(model)
	openai.WriteJSON(w, http.StatusOK, map[string]interface{}{"model": model, "revision": rev})
}

func (g *gateway) metricsProm(w http.ResponseWriter, r *http.Request) {
	g.c.reg.Handler().ServeHTTP(w, r)
}

func (g *gateway) metricsCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	g.c.reg.WriteCSV(w)
}
