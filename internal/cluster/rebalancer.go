package cluster

import (
	"context"
	"time"

	"swapservellm/internal/core"
	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

// rebalancer is the cluster's background snapshot-placement optimizer.
// Each sweep finds nodes whose host snapshot RAM is above the
// high-water fraction of the cap ("hot") and moves their coldest idle
// image's RAM residency to an idle replica node: the replica promotes
// its disk copy into RAM (paying the disk read through the storage
// cost model) and the hot node demotes its copy to disk (paying the
// write). The next request for that model then finds a RAM-resident
// snapshot on the idle node — a fast hot-swap resume instead of a disk
// restore — while the hot node regains headroom for the models it is
// actually serving.
type rebalancer struct {
	c         *Cluster
	interval  time.Duration
	highWater float64
	capBytes  int64

	stop chan struct{}
	done chan struct{}

	// testHookBeforeCommit, when set, runs after a (hot, dst) pair is
	// selected but before the Promote/Demote commit — a seam for tests
	// that race a node-state change against the migration.
	testHookBeforeCommit func(dst *Node)
}

// nodeSnap is one node's membership view captured at the start of a
// sweep. All placement decisions in the sweep read this snapshot, not
// the live registry, so a node flapping mid-sweep cannot make the
// rebalancer reason from two inconsistent views; the commit itself
// re-validates against live state.
type nodeSnap struct {
	node     *Node
	state    NodeState
	hostUsed int64
}

func newRebalancer(c *Cluster, interval time.Duration, highWater float64, capBytes int64) *rebalancer {
	return &rebalancer{
		c:         c,
		interval:  interval,
		highWater: highWater,
		capBytes:  capBytes,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

func (rb *rebalancer) run() {
	defer close(rb.done)
	gate := simclock.GateFor(rb.c.clock)
	for gate.Wait(rb.interval, rb.stop) < 0 {
		rb.Sweep(rb.c.traceCtx(context.Background()))
	}
}

func (rb *rebalancer) halt() {
	close(rb.stop)
	simclock.GateFor(rb.c.clock).Block(func() { <-rb.done })
}

// Sweep performs one rebalancing pass, returning how many migrations
// it executed. Exported for tests and the swapgateway admin surface.
//
// The pass reads one consistent membership snapshot taken up front.
// Without it, a node marked down by the heartbeat loop between the
// hot-node scan and the destination scan could be selected as a
// migration target (or a freshly-rejoined node double-counted),
// because each check would observe a different registry state. The
// snapshot makes every decision in the sweep agree on who was healthy
// when the sweep began; the Promote/Demote commit then re-validates
// both ends against live state and aborts if either has since left
// healthy.
func (rb *rebalancer) Sweep(ctx context.Context) int {
	rb.c.reg.Counter("rebalance_sweeps").Inc()
	if rb.capBytes <= 0 {
		return 0
	}
	ctx = rb.c.traceCtx(ctx)
	ctx, span := obs.Start(ctx, "rebalance.sweep")
	defer span.End()
	snaps := make([]nodeSnap, 0)
	for _, n := range rb.c.registry.Nodes() {
		snaps = append(snaps, nodeSnap{
			node:     n,
			state:    n.State(),
			hostUsed: n.Server().Driver().HostUsed(),
		})
	}
	hi := int64(rb.highWater * float64(rb.capBytes))
	var migrated int
	for _, hot := range snaps {
		if hot.state != NodeHealthy {
			continue
		}
		if hot.hostUsed <= hi {
			continue
		}
		if rb.migrateFrom(ctx, hot.node, snaps, hi) {
			migrated++
		}
	}
	if migrated > 0 {
		rb.c.reg.Counter("rebalance_migrations").Add(float64(migrated))
	}
	span.SetAttr(obs.Int("migrated", migrated))
	return migrated
}

// migrateFrom moves one image's RAM residency off the hot node. It
// walks the node's swapped-out, RAM-resident, idle backends from
// coldest to warmest and takes the first with a willing destination.
func (rb *rebalancer) migrateFrom(ctx context.Context, hot *Node, snaps []nodeSnap, hi int64) bool {
	for _, b := range coldestFirst(hot.Server()) {
		dst, ok := rb.destinationFor(hot, snaps, b, hi)
		if !ok {
			continue
		}
		db, _ := dst.Server().Backend(b.Name())
		if rb.testHookBeforeCommit != nil {
			rb.testHookBeforeCommit(dst)
		}
		// Commit-time re-validation: the snapshot the selection used may
		// be stale by now — a heartbeat sweep or a proxy failure report
		// can mark either end down between selection and commit. Moving
		// the only RAM-resident copy onto a dead node (or stripping a
		// down node's copy) would strand the image, so abort instead.
		if hot.State() != NodeHealthy || dst.State() != NodeHealthy {
			rb.c.reg.Counter("rebalance_aborted_stale").Inc()
			continue
		}
		// With a content-addressed store on the destination, the migration
		// moves chunk references, not the whole image: only the bytes not
		// already host-resident there (chunks shared with a hot replica of
		// the same model cost nothing). Record what dedup saves.
		var dedupSaved int64
		dstPid := db.Container().ID()
		if st := dst.Server().CkptStore(); st != nil {
			if bytes, err := dst.Server().Driver().ImageBytes(dstPid); err == nil {
				if _, known := st.Resident(dstPid); known {
					dedupSaved = bytes - st.MissingHostBytes(dstPid)
				}
			}
		}
		// Promote the replica first: if it fails (raced past the headroom
		// check), the hot node keeps its RAM copy and nothing is lost.
		if err := dst.Server().Driver().Promote(ctx, dstPid); err != nil {
			continue
		}
		if err := hot.Server().Driver().Demote(ctx, b.Container().ID()); err != nil {
			continue
		}
		obs.AddEvent(ctx, "migrate",
			obs.String("model", b.Name()),
			obs.String("from", hot.ID()), obs.String("to", dst.ID()))
		if dedupSaved > 0 {
			rb.c.reg.Counter("rebalance_dedup_saved_bytes").Add(float64(dedupSaved))
		}
		rb.c.reg.Counter("rebalance_promotions_" + dst.ID()).Inc()
		rb.c.reg.Counter("rebalance_demotions_" + hot.ID()).Inc()
		return true
	}
	return false
}

// destinationFor finds a replica node — healthy in the sweep snapshot —
// whose copy of b's model is a disk-resident snapshot and which has RAM
// headroom to promote it without crossing the high-water mark itself.
func (rb *rebalancer) destinationFor(hot *Node, snaps []nodeSnap, b *core.Backend, hi int64) (*Node, bool) {
	for _, snap := range snaps {
		n := snap.node
		if n.ID() == hot.ID() || snap.state != NodeHealthy {
			continue
		}
		rb2, ok := n.Server().Backend(b.Name())
		if !ok || rb2.State() != core.BackendSwappedOut {
			continue
		}
		drv := n.Server().Driver()
		loc, err := drv.ImageLocation(rb2.Container().ID())
		if err != nil || loc.String() != "disk" {
			continue
		}
		bytes, err := drv.ImageBytes(rb2.Container().ID())
		if err != nil || snap.hostUsed+bytes > hi {
			continue
		}
		return n, true
	}
	return nil, false
}

// coldestFirst lists the node's migration candidates — swapped-out,
// RAM-resident images belonging to idle backends — least recently
// accessed first.
func coldestFirst(srv *core.Server) []*core.Backend {
	var out []*core.Backend
	for _, b := range srv.Backends() {
		if b.State() != core.BackendSwappedOut {
			continue
		}
		if b.QueueLen() > 0 || b.Pending() > 0 || b.Active() > 0 {
			continue
		}
		loc, err := srv.Driver().ImageLocation(b.Container().ID())
		if err != nil || loc.String() != "ram" {
			continue
		}
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].LastAccessed().Before(out[j-1].LastAccessed()); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
