package cluster

import (
	"time"

	"swapservellm/internal/core"
)

// rebalancer is the cluster's background snapshot-placement optimizer.
// Each sweep finds nodes whose host snapshot RAM is above the
// high-water fraction of the cap ("hot") and moves their coldest idle
// image's RAM residency to an idle replica node: the replica promotes
// its disk copy into RAM (paying the disk read through the storage
// cost model) and the hot node demotes its copy to disk (paying the
// write). The next request for that model then finds a RAM-resident
// snapshot on the idle node — a fast hot-swap resume instead of a disk
// restore — while the hot node regains headroom for the models it is
// actually serving.
type rebalancer struct {
	c         *Cluster
	interval  time.Duration
	highWater float64
	capBytes  int64

	stop chan struct{}
	done chan struct{}
}

func newRebalancer(c *Cluster, interval time.Duration, highWater float64, capBytes int64) *rebalancer {
	return &rebalancer{
		c:         c,
		interval:  interval,
		highWater: highWater,
		capBytes:  capBytes,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

func (rb *rebalancer) run() {
	defer close(rb.done)
	for {
		select {
		case <-rb.stop:
			return
		case <-rb.c.clock.After(rb.interval):
			rb.Sweep()
		}
	}
}

func (rb *rebalancer) halt() {
	close(rb.stop)
	<-rb.done
}

// Sweep performs one rebalancing pass, returning how many migrations
// it executed. Exported for tests and the swapgateway admin surface.
func (rb *rebalancer) Sweep() int {
	rb.c.reg.Counter("rebalance_sweeps").Inc()
	if rb.capBytes <= 0 {
		return 0
	}
	hi := int64(rb.highWater * float64(rb.capBytes))
	var migrated int
	for _, hot := range rb.c.registry.Nodes() {
		if hot.State() != NodeHealthy {
			continue
		}
		if hot.Server().Driver().HostUsed() <= hi {
			continue
		}
		if rb.migrateFrom(hot, hi) {
			migrated++
		}
	}
	if migrated > 0 {
		rb.c.reg.Counter("rebalance_migrations").Add(float64(migrated))
	}
	return migrated
}

// migrateFrom moves one image's RAM residency off the hot node. It
// walks the node's swapped-out, RAM-resident, idle backends from
// coldest to warmest and takes the first with a willing destination.
func (rb *rebalancer) migrateFrom(hot *Node, hi int64) bool {
	for _, b := range coldestFirst(hot.Server()) {
		dst, ok := rb.destinationFor(hot, b)
		if !ok {
			continue
		}
		db, _ := dst.Server().Backend(b.Name())
		// Promote the replica first: if it fails (raced past the headroom
		// check), the hot node keeps its RAM copy and nothing is lost.
		if err := dst.Server().Driver().Promote(db.Container().ID()); err != nil {
			continue
		}
		if err := hot.Server().Driver().Demote(b.Container().ID()); err != nil {
			continue
		}
		rb.c.reg.Counter("rebalance_promotions_" + dst.ID()).Inc()
		rb.c.reg.Counter("rebalance_demotions_" + hot.ID()).Inc()
		return true
	}
	return false
}

// destinationFor finds a healthy replica node whose copy of b's model
// is a disk-resident snapshot and which has RAM headroom to promote it
// without crossing the high-water mark itself.
func (rb *rebalancer) destinationFor(hot *Node, b *core.Backend) (*Node, bool) {
	hi := int64(rb.highWater * float64(rb.capBytes))
	for _, n := range rb.c.registry.Nodes() {
		if n.ID() == hot.ID() || n.State() != NodeHealthy {
			continue
		}
		rb2, ok := n.Server().Backend(b.Name())
		if !ok || rb2.State() != core.BackendSwappedOut {
			continue
		}
		drv := n.Server().Driver()
		loc, err := drv.ImageLocation(rb2.Container().ID())
		if err != nil || loc.String() != "disk" {
			continue
		}
		bytes, err := drv.ImageBytes(rb2.Container().ID())
		if err != nil || drv.HostUsed()+bytes > hi {
			continue
		}
		return n, true
	}
	return nil, false
}

// coldestFirst lists the node's migration candidates — swapped-out,
// RAM-resident images belonging to idle backends — least recently
// accessed first.
func coldestFirst(srv *core.Server) []*core.Backend {
	var out []*core.Backend
	for _, b := range srv.Backends() {
		if b.State() != core.BackendSwappedOut {
			continue
		}
		if b.QueueLen() > 0 || b.Pending() > 0 || b.Active() > 0 {
			continue
		}
		loc, err := srv.Driver().ImageLocation(b.Container().ID())
		if err != nil || loc.String() != "ram" {
			continue
		}
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].LastAccessed().Before(out[j-1].LastAccessed()); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
