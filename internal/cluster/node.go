// Package cluster federates multiple SwapServeLLM nodes — each a full
// core.Server with its own simulated GPU topology, engines, and
// snapshot store — behind one OpenAI-compatible gateway. It adds the
// fleet-scale mechanisms the single-node system cannot express: a node
// registry with heartbeats and a node state machine, a pluggable
// placement engine (locality-first routing to nodes already holding a
// warm backend or snapshot, following ServerlessLLM's locality-aware
// scheduling), gateway-level failover that retries a request on another
// node when its first node dies mid-stream or reports overload, and a
// rebalancer that migrates cold snapshot images from hot nodes to idle
// ones using the existing checkpoint/storage cost models.
package cluster

import (
	"fmt"
	"sync/atomic"

	"swapservellm/internal/chaos"
	"swapservellm/internal/core"
)

// NodeState is a cluster member's lifecycle state.
type NodeState int32

// Node states: joining → healthy ⇄ down, healthy → draining.
const (
	// NodeJoining: the node's backends are initializing; it receives no
	// traffic until its first successful heartbeat.
	NodeJoining NodeState = iota
	// NodeHealthy: heartbeats are current; the node is placeable.
	NodeHealthy
	// NodeDraining: the node finishes in-flight work but receives no new
	// placements (operator-initiated, e.g. ahead of maintenance).
	NodeDraining
	// NodeDown: heartbeats missed (or a proxy attempt failed hard); the
	// node is skipped until probes succeed again.
	NodeDown
)

// String returns the lowercase state name.
func (s NodeState) String() string {
	switch s {
	case NodeJoining:
		return "joining"
	case NodeHealthy:
		return "healthy"
	case NodeDraining:
		return "draining"
	case NodeDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Node is one cluster member: a full single-node SwapServeLLM
// deployment plus the cluster-side bookkeeping (state machine, missed
// heartbeats).
type Node struct {
	id  string
	srv *core.Server

	// state advances only via transition (legal-edge CAS + trace record)
	// after the initial Store in newNode.
	state  atomic.Int32 //swaplint:state allow=newNode,transition
	missed atomic.Int32

	// trace, when set, receives every committed state transition as a
	// "node" event for invariant checking.
	trace *chaos.Trace

	// snapshotCapBytes mirrors the node's host snapshot cap so the
	// rebalancer can compute RAM pressure without re-deriving config.
	snapshotCapBytes int64
}

// newNode wraps a built (not yet started) server.
func newNode(id string, srv *core.Server, snapshotCapBytes int64) *Node {
	n := &Node{id: id, srv: srv, snapshotCapBytes: snapshotCapBytes}
	n.state.Store(int32(NodeJoining))
	return n
}

// ID returns the node's cluster-unique name.
func (n *Node) ID() string { return n.id }

// Server exposes the underlying deployment (for tests and tools).
func (n *Node) Server() *core.Server { return n.srv }

// URL returns the node router's base URL (empty before start).
func (n *Node) URL() string { return n.srv.URL() }

// State returns the node's lifecycle state.
func (n *Node) State() NodeState { return NodeState(n.state.Load()) }

// legalNodeEdges is the registry state machine: the only transitions a
// member may take. Down nodes must rejoin through healthy; joining
// nodes cannot drain.
var legalNodeEdges = map[NodeState][]NodeState{
	NodeJoining:  {NodeHealthy, NodeDown},
	NodeHealthy:  {NodeDraining, NodeDown},
	NodeDraining: {NodeHealthy, NodeDown},
	NodeDown:     {NodeHealthy},
}

// legalTransition reports whether from -> to is an allowed edge
// (same-state is a legal no-op).
func legalTransition(from, to NodeState) bool {
	if from == to {
		return true
	}
	for _, next := range legalNodeEdges[from] {
		if next == to {
			return true
		}
	}
	return false
}

// transition moves the node to the target state if the edge is legal,
// reporting whether the state is now the target. Illegal requests are
// rejected without touching the state. A CAS loop makes concurrent
// probe/drain/failure paths race-safe: each committed step is
// individually legal and recorded in the trace.
func (n *Node) transition(to NodeState) bool {
	for {
		cur := NodeState(n.state.Load())
		if cur == to {
			return true
		}
		if !legalTransition(cur, to) {
			return false
		}
		if n.state.CompareAndSwap(int32(cur), int32(to)) {
			n.trace.Record("node", n.id, cur.String(), to.String())
			return true
		}
	}
}

// Report is a node's capacity/utilization report: what the registry
// records on each heartbeat and what placement decisions consume.
type Report struct {
	ID    string `json:"id"`
	State string `json:"state"`
	URL   string `json:"url"`
	// Load is the outstanding work across all backends: queued plus
	// dequeued plus in-flight requests.
	Load int `json:"load"`
	// FreeGPUBytes / TotalGPUBytes describe device capacity.
	FreeGPUBytes  int64 `json:"free_gpu_bytes"`
	TotalGPUBytes int64 `json:"total_gpu_bytes"`
	// SnapshotRAMBytes is host memory held by checkpoint images;
	// SnapshotCapBytes is the configured cap (0 = unlimited).
	SnapshotRAMBytes int64 `json:"snapshot_ram_bytes"`
	SnapshotCapBytes int64 `json:"snapshot_cap_bytes,omitempty"`
	// SwapIns / SwapOuts total hot-swap operations across backends.
	SwapIns  int64 `json:"swap_ins"`
	SwapOuts int64 `json:"swap_outs"`
	// ChunkStore reports whether the node runs the content-addressed
	// checkpoint store; the chunk fields below are meaningful only then.
	ChunkStore bool `json:"chunk_store,omitempty"`
	// ChunkHostBytes / ChunkDiskBytes are the store's physical
	// (deduplicated) tier footprints — the chunk inventory the registry
	// advertises for peer-fetch and placement decisions.
	ChunkHostBytes int64 `json:"chunk_host_bytes,omitempty"`
	ChunkDiskBytes int64 `json:"chunk_disk_bytes,omitempty"`
	// ChunkDedupSavedBytes is logical-minus-unique manifest bytes: what
	// content addressing is currently saving on this node.
	ChunkDedupSavedBytes int64 `json:"chunk_dedup_saved_bytes,omitempty"`
	// Models is the node-local backend/snapshot inventory.
	Models []core.ModelInventory `json:"models"`
}

// Report samples the node's current capacity, load, and inventory.
func (n *Node) Report() Report {
	inv := n.srv.Inventory()
	rep := Report{
		ID:               n.id,
		State:            n.State().String(),
		URL:              n.URL(),
		FreeGPUBytes:     n.srv.GPUFree(),
		TotalGPUBytes:    n.srv.GPUTotal(),
		SnapshotRAMBytes: n.srv.Driver().HostUsed(),
		SnapshotCapBytes: n.snapshotCapBytes,
		Models:           inv,
	}
	for _, mi := range inv {
		rep.Load += mi.Load()
	}
	for _, b := range n.srv.Backends() {
		in, out := b.SwapCounts()
		rep.SwapIns += in
		rep.SwapOuts += out
	}
	if st := n.srv.CkptStore(); st != nil {
		stats := st.Stats()
		rep.ChunkStore = true
		rep.ChunkHostBytes = stats.HostBytes
		rep.ChunkDiskBytes = stats.DiskBytes
		rep.ChunkDedupSavedBytes = stats.LogicalBytes - stats.UniqueBytes
	}
	return rep
}

// chunkFrac returns the fraction of the model's checkpoint bytes already
// host-resident in the node's content-addressed store (0 with no store
// or no committed manifest) — the chunk-locality placement signal.
func (n *Node) chunkFrac(model string) float64 {
	st := n.srv.CkptStore()
	if st == nil {
		return 0
	}
	b, ok := n.srv.Backend(model)
	if !ok || b.Container() == nil {
		return 0
	}
	return st.HostChunkFrac(b.Container().ID())
}

// presence returns the node's locality class for a model, and whether
// the model is deployed on this node at all.
func (n *Node) presence(model string) (Presence, bool) {
	b, ok := n.srv.Backend(model)
	if !ok {
		return PresenceNone, false
	}
	switch b.State() {
	case core.BackendRunning:
		return PresenceWarm, true
	case core.BackendSwapping, core.BackendInitializing:
		// A transition is in flight; the backend will shortly be warm (or
		// swapped out). Treat as RAM-class: routable, nearly warm.
		return PresenceRAM, true
	case core.BackendFailed:
		return PresenceNone, false
	}
	// Swapped out: locality depends on where the image resides.
	if ctr := b.Container(); ctr != nil {
		if loc, err := n.srv.Driver().ImageLocation(ctr.ID()); err == nil {
			if loc.String() == "disk" {
				return PresenceDisk, true
			}
			return PresenceRAM, true
		}
	}
	return PresenceDisk, true
}

// load returns the node's total outstanding work.
func (n *Node) load() int {
	var total int
	for _, b := range n.srv.Backends() {
		total += b.QueueLen() + int(b.Pending()) + int(b.Active())
	}
	return total
}
