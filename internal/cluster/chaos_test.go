package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/config"
	"swapservellm/internal/engine"
	"swapservellm/internal/invariant"
	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
)

// startChaosCluster builds and starts a cluster with a chaos injector
// and transition trace installed at construction.
func startChaosCluster(t *testing.T, cfg config.Cluster, scale float64, inj *chaos.Injector, tr *chaos.Trace) *Cluster {
	t.Helper()
	c, err := NewWithOptions(cfg, Options{
		Clock: simclock.NewScaled(testEpoch, scale),
		Chaos: inj,
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

// expectedTranscript computes the deterministic stream a request
// produces: identical on every replica, which is what makes skip-ahead
// resumption exact.
func expectedTranscript(req *openai.ChatCompletionRequest) (string, int) {
	var gen engine.Generator
	full := engine.PromptText(req.Messages)
	n := gen.CompletionLength(full, *req.Seed, 0)
	if n < req.MinTokens {
		n = req.MinTokens
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		want.WriteString(gen.Token(full, *req.Seed, i))
	}
	return want.String(), n
}

const seedForStream = int64(7)

// TestSSECutPointMatrix is the failover acceptance matrix: for each cut
// point k, the chaos plan "cluster.sse: after=k times=1" severs the
// relayed stream deterministically after exactly k delivered events.
// The gateway must resume on the replica with no duplicated and no
// missing chunks, so the client transcript is byte-identical to the
// uncut stream at every cut point.
func TestSSECutPointMatrix(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	for _, cut := range []int{0, 1, 2, 5, 15, 31} {
		t.Run(fmt.Sprintf("after=%d", cut), func(t *testing.T) {
			plan := chaos.MustParsePlan(fmt.Sprintf("seed=1; cluster.sse: after=%d times=1", cut))
			inj := chaos.NewInjector(plan)
			c := startChaosCluster(t, twoNodeConfig(model), 5000, inj, nil)

			seed := seedForStream
			req := &openai.ChatCompletionRequest{
				Model:     model,
				Messages:  []openai.Message{{Role: "user", Content: "stream across a cut"}},
				Seed:      &seed,
				MinTokens: 30,
			}
			want, n := expectedTranscript(req)

			var got strings.Builder
			var chunks int
			err := openai.NewClient(c.URL()).ChatCompletionStream(context.Background(), req,
				func(ch *openai.ChatCompletionChunk) error {
					chunks++
					for _, choice := range ch.Choices {
						got.WriteString(choice.Delta.Content)
					}
					return nil
				})
			if err != nil {
				t.Fatalf("stream did not survive cut after %d events: %v", cut, err)
			}
			if got.String() != want {
				t.Fatalf("transcript diverged at cut %d:\n got %q\nwant %q", cut, got.String(), want)
			}
			// Role preamble + n tokens + finish chunk, exactly once each.
			if wantChunks := n + 2; chunks != wantChunks {
				t.Fatalf("chunks = %d, want %d (duplicates or gaps across cut %d)", chunks, wantChunks, cut)
			}
			if fired := inj.Stats()[chaos.SiteSSE].Fired; fired != 1 {
				t.Fatalf("sse faults fired = %d, want 1", fired)
			}
			if retries := c.Registry().Counter("cross_node_retries").Value(); retries != 1 {
				t.Fatalf("cross_node_retries = %v, want 1", retries)
			}
		})
	}
}

// TestHeartbeatFaultCrashAndRejoin drives the registry state machine
// through a simulated crash/restart with heartbeat faults: three
// consecutive injected probe misses (occurrences 1, 3, 5 — node-b's
// slot in each sweep) mark only node-b down, traffic routes around it,
// and the next clean sweep rejoins it. The recorded transition trace
// must contain only legal edges.
func TestHeartbeatFaultCrashAndRejoin(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	tr := chaos.NewTrace()
	c := startChaosCluster(t, twoNodeConfig(model), 5000, nil, tr)

	// Install the injector after Start so the initial sweep does not
	// consume heartbeat occurrences: sweeps probe nodes in ID order, so
	// node-b's probes are occurrences 1, 3, 5.
	inj := chaos.NewInjector(chaos.MustParsePlan(
		"seed=1; cluster.heartbeat: after=1 times=1" +
			"; cluster.heartbeat: after=3 times=1" +
			"; cluster.heartbeat: after=5 times=1"))
	c.NodeRegistry().SetChaos(inj)

	reg := c.NodeRegistry()
	reg.Sweep()
	reg.Sweep()
	if n, _ := c.Node("node-b"); n.State() != NodeHealthy {
		t.Fatalf("node-b down before missLimit: %v", n.State())
	}
	reg.Sweep()
	if n, _ := c.Node("node-b"); n.State() != NodeDown {
		t.Fatalf("node-b state after 3 injected misses = %v", n.State())
	}
	if n, _ := c.Node("node-a"); n.State() != NodeHealthy {
		t.Fatalf("node-a state = %v, want healthy (faults targeted node-b)", n.State())
	}

	// The survivor keeps serving during the outage.
	gatewayChat(t, c.URL(), model, 2)
	if got := c.Registry().Counter("placement_node_node-a").Value(); got != 1 {
		t.Fatalf("node-a placements = %v", got)
	}

	// Probes succeed again: the node restarts into healthy.
	reg.Sweep()
	if n, _ := c.Node("node-b"); n.State() != NodeHealthy {
		t.Fatalf("node-b did not rejoin: %v", n.State())
	}

	var rep invariant.Report
	invariant.CheckNodeTrace(&rep, tr)
	if !rep.Ok() {
		t.Fatalf("node transition trace violations:\n%s", rep.String())
	}
	// The full crash/restart cycle must be on record for node-b.
	var sawDown, sawRejoin bool
	for _, ev := range tr.Events() {
		if ev.Subject == "node-b" && ev.To == "down" {
			sawDown = true
		}
		if ev.Subject == "node-b" && ev.From == "down" && ev.To == "healthy" {
			sawRejoin = true
		}
	}
	if !sawDown || !sawRejoin {
		t.Fatalf("trace missing crash/rejoin cycle: down=%v rejoin=%v\n%v", sawDown, sawRejoin, tr.Events())
	}
}

// TestProxyFaultFailsOverWithoutFencing: an injected proxy-level
// failure retries the request on the replica, but because the node
// itself still answers health probes it must not be fenced — transient
// gateway-side blips should not take capacity out of rotation.
func TestProxyFaultFailsOverWithoutFencing(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	inj := chaos.NewInjector(chaos.MustParsePlan("seed=1; cluster.proxy: times=1"))
	c := startChaosCluster(t, twoNodeConfig(model), 5000, inj, nil)

	resp := gatewayChat(t, c.URL(), model, 4)
	if resp.Usage.CompletionTokens != 4 {
		t.Fatalf("completion tokens = %d", resp.Usage.CompletionTokens)
	}
	reg := c.Registry()
	if got := reg.Counter("cross_node_retries").Value(); got != 1 {
		t.Fatalf("cross_node_retries = %v, want 1", got)
	}
	if got := reg.Counter("failover_successes").Value(); got != 1 {
		t.Fatalf("failover_successes = %v, want 1", got)
	}
	for _, id := range []string{"node-a", "node-b"} {
		if n, _ := c.Node(id); n.State() != NodeHealthy {
			t.Fatalf("%s fenced by a transient proxy fault: %v", id, n.State())
		}
	}
}

// TestRebalancerRechecksStateAtCommit is the regression test for the
// heartbeat/rebalancer race: a node marked down between the sweep's
// placement decision and the Promote/Demote commit must abort the
// migration instead of moving the only RAM-resident copy onto a dead
// node. Under the old ordering — placement checks only, no commit-time
// re-validation — this test fails with the image migrated to the down
// node.
func TestRebalancerRechecksStateAtCommit(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: []config.Model{
			{Name: "llama3.2:1b-fp16", Engine: "ollama"},
			{Name: "llama3.2:3b-fp16", Engine: "ollama"},
		}},
		{Name: "node-b", Models: []config.Model{
			{Name: "llama3.2:1b-fp16", Engine: "ollama"},
		}},
	}
	c := startCluster(t, cfg, 5000)

	nodeA, _ := c.Node("node-a")
	nodeB, _ := c.Node("node-b")
	drvA, drvB := nodeA.Server().Driver(), nodeB.Server().Driver()
	bA1, _ := nodeA.Server().Backend("llama3.2:1b-fp16")
	bB1, _ := nodeB.Server().Backend("llama3.2:1b-fp16")
	if err := drvB.Demote(context.Background(), bB1.Container().ID()); err != nil {
		t.Fatal(err)
	}

	rb := newRebalancer(c, time.Second, 0.75, drvA.HostUsed())
	// The race, made deterministic: node-b dies (heartbeat verdict)
	// after the sweep has selected it as the destination but before the
	// migration commits.
	rb.testHookBeforeCommit = func(dst *Node) { dst.transition(NodeDown) }

	if got := rb.Sweep(context.Background()); got != 0 {
		t.Fatalf("sweep migrated %d images onto a node that died pre-commit", got)
	}
	if loc, _ := drvA.ImageLocation(bA1.Container().ID()); loc.String() != "ram" {
		t.Fatalf("hot node lost its RAM copy to an aborted migration: %v", loc)
	}
	if loc, _ := drvB.ImageLocation(bB1.Container().ID()); loc.String() != "disk" {
		t.Fatalf("down node's replica moved: %v", loc)
	}
	if got := c.Registry().Counter("rebalance_aborted_stale").Value(); got < 1 {
		t.Fatalf("rebalance_aborted_stale = %v, want >= 1", got)
	}

	// Once the node rejoins, the same sweep succeeds.
	rb.testHookBeforeCommit = nil
	if !nodeB.transition(NodeHealthy) {
		t.Fatal("node-b could not rejoin")
	}
	if got := rb.Sweep(context.Background()); got != 1 {
		t.Fatalf("post-rejoin sweep migrated %d images, want 1", got)
	}
	if loc, _ := drvB.ImageLocation(bB1.Container().ID()); loc.String() != "ram" {
		t.Fatalf("node-b image after migration = %v, want ram", loc)
	}
}
