package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"swapservellm/internal/chaos"
	"swapservellm/internal/engine"
	"swapservellm/internal/openai"
	"swapservellm/internal/proxy/ir"
)

// postGateway posts a JSON body to a gateway path with optional extra
// headers and returns the raw response.
func postGateway(t *testing.T, url, path, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestNDJSONCutPointMatrix generalizes the SSE failover acceptance
// matrix to the Ollama framing: for each cut point k, the chaos plan
// severs the relayed canonical stream after exactly k delivered
// events. Because the gateway counts canonical upstream events — not
// client frames — the resume arithmetic is identical under NDJSON, and
// the client's line sequence must be free of duplicates and gaps at
// every cut point.
func TestNDJSONCutPointMatrix(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	const prompt = "stream across a cut"

	// The deterministic transcript the canonicalized /api/chat request
	// produces (no num_predict: the natural completion length).
	seed := seedForStream
	canonical := &openai.ChatCompletionRequest{
		Model:    model,
		Messages: []openai.Message{{Role: "user", Content: prompt}},
		Seed:     &seed,
	}
	want, n := expectedTranscript(canonical)
	if n < 8 {
		t.Fatalf("natural completion length %d too short to cut meaningfully", n)
	}

	for _, cut := range []int{0, 1, 2, 5, n / 2, n} {
		t.Run(fmt.Sprintf("after=%d", cut), func(t *testing.T) {
			plan := chaos.MustParsePlan(fmt.Sprintf("seed=1; cluster.sse: after=%d times=1", cut))
			inj := chaos.NewInjector(plan)
			c := startChaosCluster(t, twoNodeConfig(model), 5000, inj, nil)

			body := fmt.Sprintf(`{"model":%q,"messages":[{"role":"user","content":%q}],"options":{"seed":7}}`,
				model, prompt)
			resp := postGateway(t, c.URL(), "/api/chat", body, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("content type = %q, want application/x-ndjson", ct)
			}

			var got strings.Builder
			var lines int
			var last ir.OllamaChatChunk
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if len(bytes.TrimSpace(sc.Bytes())) == 0 {
					continue
				}
				lines++
				if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
					t.Fatalf("line %d is not a chat chunk: %v", lines, err)
				}
				got.WriteString(last.Message.Content)
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("stream did not survive cut after %d events: %v", cut, err)
			}

			if !last.Done {
				t.Fatalf("final line not done:true — stream truncated at cut %d", cut)
			}
			if got.String() != want {
				t.Fatalf("transcript diverged at cut %d:\n got %q\nwant %q", cut, got.String(), want)
			}
			// Role preamble + n tokens + the done line, exactly once each
			// (the SSE [DONE] sentinel has no NDJSON frame).
			if wantLines := n + 2; lines != wantLines {
				t.Fatalf("lines = %d, want %d (duplicates or gaps across cut %d)", lines, wantLines, cut)
			}
			if last.EvalCount != n {
				t.Fatalf("done line eval_count = %d, want %d", last.EvalCount, n)
			}
			if fired := inj.Stats()[chaos.SiteSSE].Fired; fired != 1 {
				t.Fatalf("sse faults fired = %d, want 1", fired)
			}
			if retries := c.Registry().Counter("cross_node_retries").Value(); retries != 1 {
				t.Fatalf("cross_node_retries = %v, want 1", retries)
			}
		})
	}
}

// TestGatewayCacheRevisionCorrectness proves the response cache's
// safety property end to end: identical requests hit (across
// protocols, since the key is the canonical encoding), and a model
// revision bump via the admin API invalidates every cached answer so a
// re-deployed model can never serve its predecessor's responses.
func TestGatewayCacheRevisionCorrectness(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)
	reg := c.Registry()

	openaiBody := fmt.Sprintf(`{"model":%q,"messages":[{"role":"user","content":"say hi"}],"max_tokens":4,"seed":7}`, model)

	// First request: a miss, forwarded to a node and stored.
	first := postGateway(t, c.URL(), "/v1/chat/completions", openaiBody, nil)
	if first.StatusCode != http.StatusOK || first.Header.Get("X-Cache") == "hit" {
		t.Fatalf("first request: status %d, X-Cache %q", first.StatusCode, first.Header.Get("X-Cache"))
	}
	var miss openai.ChatCompletionResponse
	if err := json.NewDecoder(first.Body).Decode(&miss); err != nil {
		t.Fatal(err)
	}

	// Identical request: served from cache without touching placement.
	placed := reg.Counter("placement_total").Value()
	second := postGateway(t, c.URL(), "/v1/chat/completions", openaiBody, nil)
	if second.Header.Get("X-Cache") != "hit" {
		t.Fatal("identical request did not hit the cache")
	}
	var hit openai.ChatCompletionResponse
	if err := json.NewDecoder(second.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	if hit.Choices[0].Message.Content != miss.Choices[0].Message.Content {
		t.Fatal("cached response diverged from the original")
	}
	if got := reg.Counter("placement_total").Value(); got != placed {
		t.Fatalf("cache hit ran placement: %v -> %v", placed, got)
	}

	// The protocol sibling shares the entry: /api/generate canonicalizes
	// to the same upstream encoding, so it hits — translated into the
	// Ollama wire shape on the way out.
	genBody := fmt.Sprintf(`{"model":%q,"prompt":"say hi","stream":false,"options":{"num_predict":4,"seed":7}}`, model)
	gen := postGateway(t, c.URL(), "/api/generate", genBody, nil)
	if gen.Header.Get("X-Cache") != "hit" {
		t.Fatal("cross-protocol sibling did not share the cache entry")
	}
	var chunk ir.OllamaGenerateChunk
	if err := json.NewDecoder(gen.Body).Decode(&chunk); err != nil {
		t.Fatal(err)
	}
	if !chunk.Done || chunk.Response != miss.Choices[0].Message.Content {
		t.Fatalf("translated cache hit = %+v, want done response %q", chunk, miss.Choices[0].Message.Content)
	}

	// Cache-Control: no-store bypasses without poisoning accounting.
	bypass := postGateway(t, c.URL(), "/v1/chat/completions", openaiBody,
		map[string]string{"Cache-Control": "no-store"})
	if bypass.Header.Get("X-Cache") == "hit" {
		t.Fatal("no-store request served from cache")
	}
	if got := reg.Counter("proxy_cache_bypass").Value(); got < 1 {
		t.Fatalf("proxy_cache_bypass = %v, want >= 1", got)
	}

	// A revision bump (re-deployed weights under the same name) must
	// invalidate: the next identical request misses and re-forwards.
	rev := postGateway(t, c.URL(), "/admin/v1/models/revision?model="+model, "", nil)
	if rev.StatusCode != http.StatusOK {
		t.Fatalf("revision bump status = %d", rev.StatusCode)
	}
	var bumped struct {
		Model    string `json:"model"`
		Revision uint64 `json:"revision"`
	}
	if err := json.NewDecoder(rev.Body).Decode(&bumped); err != nil {
		t.Fatal(err)
	}
	if bumped.Revision != 1 {
		t.Fatalf("revision = %d, want 1", bumped.Revision)
	}
	placed = reg.Counter("placement_total").Value()
	after := postGateway(t, c.URL(), "/v1/chat/completions", openaiBody, nil)
	if after.Header.Get("X-Cache") == "hit" {
		t.Fatal("request served from cache across a model revision")
	}
	if got := reg.Counter("placement_total").Value(); got != placed+1 {
		t.Fatalf("post-bump request did not re-forward: placement_total %v -> %v", placed, got)
	}

	// Hit-ratio gauges surface in the registry (and thus in /metrics and
	// the CSV export, which render every counter and gauge).
	if reg.Gauge("proxy_cache_hit_ratio").Value() <= 0 {
		t.Fatal("proxy_cache_hit_ratio gauge not set")
	}
	if reg.Counter("proxy_cache_hits_v1_chat_completions").Value() < 1 {
		t.Fatal("per-endpoint hit counter not set")
	}
}

// TestGatewayTranslateFaultIs503 wires the proxy.translate chaos site
// through the gateway: an injected translation fault answers with a
// well-formed 503 (the pipeline is degraded, not the request), and the
// next request is served normally.
func TestGatewayTranslateFaultIs503(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	inj := chaos.NewInjector(chaos.MustParsePlan("seed=1; proxy.translate: times=1"))
	c := startChaosCluster(t, twoNodeConfig(model), 5000, inj, nil)

	body := fmt.Sprintf(`{"model":%q,"messages":[{"role":"user","content":"hi"}],"max_tokens":2,"seed":7}`, model)
	resp := postGateway(t, c.URL(), "/v1/chat/completions", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var env ir.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("503 body is not a well-formed error envelope: %v", err)
	}
	if env.Error.Type != "translate_failed" {
		t.Fatalf("error type = %q, want translate_failed", env.Error.Type)
	}
	if got := c.Registry().Counter("gateway_translate_failures").Value(); got != 1 {
		t.Fatalf("gateway_translate_failures = %v, want 1", got)
	}

	if resp := postGateway(t, c.URL(), "/v1/chat/completions", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault request: status = %d, want 200", resp.StatusCode)
	}
}

// TestGatewayListingsAndEncoders covers the remaining endpoint families
// end to end through the cluster gateway: both protocol listings
// (/v1/models with capabilities, /api/tags with catalog details) and
// the encoder endpoints (/v1/embeddings, /v1/rerank) forwarded through
// placement to a node's engine.
func TestGatewayListingsAndEncoders(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	c := startCluster(t, twoNodeConfig(model), 5000)

	list, err := openai.NewClient(c.URL()).ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Data) != 1 || list.Data[0].ID != model {
		t.Fatalf("models = %+v", list.Data)
	}
	caps := strings.Join(list.Data[0].Capabilities, ",")
	for _, want := range []string{"chat", "embeddings", "rerank", "vision"} {
		if !strings.Contains(caps, want) {
			t.Fatalf("capabilities %q missing %q", caps, want)
		}
	}

	tagsResp, err := http.Get(c.URL() + "/api/tags")
	if err != nil {
		t.Fatal(err)
	}
	defer tagsResp.Body.Close()
	var tags ir.OllamaTagsResponse
	if err := json.NewDecoder(tagsResp.Body).Decode(&tags); err != nil {
		t.Fatal(err)
	}
	if len(tags.Models) != 1 || tags.Models[0].Name != model ||
		tags.Models[0].Details.QuantizationLevel != "FP16" || tags.Models[0].Size <= 0 {
		t.Fatalf("tags = %+v", tags.Models)
	}

	embBody := fmt.Sprintf(`{"model":%q,"input":["alpha","beta"]}`, model)
	embResp := postGateway(t, c.URL(), "/v1/embeddings", embBody, nil)
	if embResp.StatusCode != http.StatusOK {
		t.Fatalf("embeddings status = %d", embResp.StatusCode)
	}
	var emb openai.EmbeddingsResponse
	if err := json.NewDecoder(embResp.Body).Decode(&emb); err != nil {
		t.Fatal(err)
	}
	if len(emb.Data) != 2 || len(emb.Data[0].Embedding) != engine.EmbeddingDim {
		t.Fatalf("embeddings = %+v", emb)
	}

	rrBody := fmt.Sprintf(`{"model":%q,"query":"swap latency","documents":["a","b","c"],"top_n":2}`, model)
	rrResp := postGateway(t, c.URL(), "/v1/rerank", rrBody, nil)
	if rrResp.StatusCode != http.StatusOK {
		t.Fatalf("rerank status = %d", rrResp.StatusCode)
	}
	var rr openai.RerankResponse
	if err := json.NewDecoder(rrResp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 2 || rr.Results[0].RelevanceScore < rr.Results[1].RelevanceScore {
		t.Fatalf("rerank = %+v", rr.Results)
	}
}
