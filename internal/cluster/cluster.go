package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/ckptstore"
	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/metrics"
	"swapservellm/internal/models"
	"swapservellm/internal/obs"
	"swapservellm/internal/proxy"
	"swapservellm/internal/simclock"
)

// Options tunes cluster construction.
type Options struct {
	// Clock is the shared simulation clock for every node (default: a
	// Scaled clock at simclock.DefaultScale starting now).
	Clock simclock.Clock
	// Registry collects cluster/gateway metrics; each node keeps its own
	// registry (default: a fresh registry).
	Registry *metrics.Registry
	// Policy overrides the configured placement policy.
	Policy Policy
	// Seed seeds the random placement baseline (default 1).
	Seed int64
	// Catalog overrides the model catalog (default: models.Default()).
	Catalog *models.Catalog
	// Chaos, when set, is the shared fault injector: it is installed on
	// the registry (heartbeat faults), the gateway (proxy/SSE faults),
	// and every node's driver, freezer, and store — one seeded plan
	// covers cluster- and node-level sites.
	Chaos *chaos.Injector
	// Trace, when set, receives node and checkpoint state transitions
	// for invariant checking.
	Trace *chaos.Trace
	// Tracer, when set, records swap-lifecycle spans cluster-wide: the
	// gateway, the rebalancer, and every node share it, so one trace
	// shows a request's placement, failover, and node-side swap work.
	// Exported at the gateway's /debug/trace.
	Tracer *obs.Tracer
}

// Option mutates Options during New (the functional mirror of
// core.ControllerOption).
type Option func(*Options)

// WithClock sets the shared simulation clock.
func WithClock(clock simclock.Clock) Option { return func(o *Options) { o.Clock = clock } }

// WithRegistry sets the cluster/gateway metrics registry.
func WithRegistry(reg *metrics.Registry) Option { return func(o *Options) { o.Registry = reg } }

// WithPolicy overrides the configured placement policy.
func WithPolicy(p Policy) Option { return func(o *Options) { o.Policy = p } }

// WithSeed seeds the random placement baseline.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithCatalog overrides the model catalog.
func WithCatalog(cat *models.Catalog) Option { return func(o *Options) { o.Catalog = cat } }

// WithChaos installs the shared fault injector.
func WithChaos(inj *chaos.Injector) Option { return func(o *Options) { o.Chaos = inj } }

// WithTrace installs the state-transition audit log.
func WithTrace(tr *chaos.Trace) Option { return func(o *Options) { o.Trace = tr } }

// WithTracer installs the cluster-wide lifecycle tracer.
func WithTracer(t *obs.Tracer) Option { return func(o *Options) { o.Tracer = t } }

// Cluster is the assembled multi-node deployment: the member nodes
// (each a full core.Server on its own simulated hardware), the node
// registry with its heartbeat loop, the placement policy, the gateway,
// and the snapshot rebalancer — all sharing one simulation clock.
type Cluster struct {
	cfg      config.Cluster
	clock    simclock.Clock
	reg      *metrics.Registry
	policy   Policy
	client   *http.Client
	chaosInj *chaos.Injector
	tracer   *obs.Tracer
	front    *proxy.Front

	registry   *NodeRegistry
	nodes      []*Node
	rebal      *rebalancer
	sched      *schedState
	retryLimit int

	httpServer *http.Server
	listener   net.Listener

	mu      sync.Mutex
	started bool
}

// New builds a cluster from its configuration, applying functional
// options. Nodes are constructed but not started.
func New(cfg config.Cluster, opts ...Option) (*Cluster, error) {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return NewWithOptions(cfg, o)
}

// NewWithOptions is the compatibility constructor taking the Options
// struct directly; New is the preferred entry point.
func NewWithOptions(cfg config.Cluster, opts Options) (*Cluster, error) {
	catalog := opts.Catalog
	if catalog == nil {
		catalog = models.Default()
	}
	if err := cfg.Validate(catalog); err != nil {
		return nil, err
	}
	clock := opts.Clock
	if clock == nil {
		clock = simclock.NewScaledFromWall(simclock.DefaultScale)
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	policy := opts.Policy
	if policy == nil {
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		p, ok := PolicyByName(cfg.Cluster.Placement, seed)
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownPolicy, cfg.Cluster.Placement)
		}
		policy = p
	}

	c := &Cluster{
		cfg:        cfg,
		clock:      clock,
		reg:        reg,
		policy:     policy,
		client:     &http.Client{},
		chaosInj:   opts.Chaos,
		tracer:     opts.Tracer,
		retryLimit: cfg.Cluster.RetryLimit,
		registry:   NewNodeRegistry(clock, reg, cfg.Heartbeat(), cfg.Cluster.HeartbeatMissLimit),
	}
	c.registry.SetChaos(opts.Chaos)
	c.registry.SetTrace(opts.Trace)

	// The multi-protocol front door: one endpoint table and response
	// cache shared by every gateway handler. The chaos injector covers
	// the proxy.translate and proxy.cache sites.
	c.front = proxy.New(
		proxy.WithCacheEntries(cfg.ProxyCacheEntries()),
		proxy.WithChaos(opts.Chaos),
		proxy.WithRegistry(reg),
		proxy.WithClock(clock),
	)

	// Predictive scheduling (nil when no classes are declared). Built
	// before the nodes so the TTL policy reaches each node's reaper.
	schedSt, err := buildSched(cfg, catalog, c)
	if err != nil {
		return nil, err
	}
	c.sched = schedSt

	var ttl core.TTLPolicy
	if schedSt != nil {
		ttl = schedSt.ttl
	}
	capBytes := int64(cfg.Global.SnapshotHostCapGiB * (1 << 30))
	for i := range cfg.Nodes {
		nc := cfg.Nodes[i]
		srv, err := core.New(cfg.NodeConfig(i), core.Options{
			Clock:    clock,
			GPUCount: nc.GPUCount,
			Chaos:    opts.Chaos,
			Trace:    opts.Trace,
			Tracer:   opts.Tracer,
			TTL:      ttl,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", nc.Name, err)
		}
		n := newNode(nc.Name, srv, capBytes)
		c.nodes = append(c.nodes, n)
		c.registry.Add(n)
	}

	if every := cfg.RebalanceEvery(); every > 0 {
		c.rebal = newRebalancer(c, every, cfg.Cluster.RebalanceHighWater, capBytes)
	}

	// Wire peer-to-peer chunk fetch: with ckpt_store enabled, every
	// node's content-addressed checkpoint store sees the other nodes'
	// stores as restore sources, so a promotion can pull a chunk from a
	// peer's host RAM (over the fabric) faster than from its own disk.
	stores := make([]*ckptstore.Store, len(c.nodes))
	for i, n := range c.nodes {
		stores[i] = n.Server().CkptStore()
	}
	for i, st := range stores {
		if st == nil {
			continue
		}
		var peers []ckptstore.Peer
		for j, p := range stores {
			if j != i && p != nil {
				peers = append(peers, p)
			}
		}
		st.SetPeers(peers)
	}
	return c, nil
}

// Start boots every node (concurrently — each initializes its own
// backends), then the heartbeat loop, the rebalancer, and finally the
// gateway listener.
func (c *Cluster) Start(ctx context.Context) error {
	ctx = c.traceCtx(ctx)
	gate := simclock.GateFor(c.clock)
	// c.mu is held across clock waits (node boots, subsystem drains), so
	// every acquisition must shed the run token.
	gate.Block(c.mu.Lock)
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("cluster: already started")
	}

	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		wg.Add(1)
		i, n := i, n
		gate.Go(func() {
			defer wg.Done()
			errs[i] = n.Server().Start(ctx)
		})
	}
	gate.Block(wg.Wait)
	for i, err := range errs {
		if err != nil {
			c.shutdownNodesLocked()
			return fmt.Errorf("cluster: starting node %q: %w", c.nodes[i].ID(), err)
		}
	}

	c.registry.Start()
	if c.rebal != nil {
		gate.Go(c.rebal.run)
	}
	if c.sched != nil && c.sched.pw != nil {
		c.sched.pw.Run(c.clock)
	}

	var ln net.Listener
	var err error
	gate.BlockIO(func() { ln, err = net.Listen("tcp", c.cfg.Listen) })
	if err != nil {
		if c.sched != nil && c.sched.pw != nil {
			c.sched.pw.Halt()
		}
		c.registry.Stop()
		if c.rebal != nil {
			c.rebal.halt()
		}
		c.shutdownNodesLocked()
		return fmt.Errorf("cluster: gateway listen: %w", err)
	}
	c.listener = ln
	//swaplint:block reason=handler() only wires the mux; its route closures run on gateway serve goroutines, never under c.mu
	c.httpServer = &http.Server{Handler: (&gateway{c: c, front: c.front}).handler()}
	go c.httpServer.Serve(ln)
	c.started = true
	return nil
}

// Shutdown stops the gateway, background loops, and every node.
func (c *Cluster) Shutdown() {
	simclock.GateFor(c.clock).Block(c.mu.Lock)
	defer c.mu.Unlock()
	if !c.started {
		return
	}
	c.started = false
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.httpServer.Shutdown(ctx)
	if c.sched != nil && c.sched.pw != nil {
		c.sched.pw.Halt()
	}
	if c.rebal != nil {
		c.rebal.halt()
	}
	c.registry.Stop()
	c.shutdownNodesLocked()
}

func (c *Cluster) shutdownNodesLocked() {
	for _, n := range c.nodes {
		n.Server().Shutdown()
	}
}

// Addr returns the gateway's bound address (empty before Start).
func (c *Cluster) Addr() string {
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

// URL returns the gateway's base URL.
func (c *Cluster) URL() string { return "http://" + c.Addr() }

// Clock returns the shared simulation clock.
func (c *Cluster) Clock() simclock.Clock { return c.clock }

// Registry returns the cluster/gateway metrics registry.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// Tracer returns the cluster-wide lifecycle tracer (nil when off).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// traceCtx installs the cluster's tracer on ctx so spans started in the
// gateway and rebalancer (and in the nodes they call into) record.
func (c *Cluster) traceCtx(ctx context.Context) context.Context {
	if c.tracer == nil || obs.TracerFrom(ctx) != nil {
		return ctx
	}
	return obs.WithTracer(ctx, c.tracer)
}

// Front returns the multi-protocol front door (endpoint table and
// response cache), for experiments and operator tooling.
func (c *Cluster) Front() *proxy.Front { return c.front }

// NodeRegistry returns the membership registry.
func (c *Cluster) NodeRegistry() *NodeRegistry { return c.registry }

// Nodes returns the members sorted by ID.
func (c *Cluster) Nodes() []*Node { return c.registry.Nodes() }

// Node looks up a member by ID.
func (c *Cluster) Node(id string) (*Node, bool) { return c.registry.Node(id) }

// Policy returns the active placement policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Rebalance forces one rebalancer sweep (0 if the rebalancer is
// disabled), for tests and operator tooling.
func (c *Cluster) Rebalance(ctx context.Context) int {
	if c.rebal == nil {
		return 0
	}
	return c.rebal.Sweep(ctx)
}

// KillNode abruptly shuts a node's server down without touching its
// registry state — simulating a node crash. The heartbeat loop (or the
// gateway's passive detection) will mark it down.
func (c *Cluster) KillNode(id string) error {
	n, ok := c.registry.Node(id)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownNode, id)
	}
	n.Server().Shutdown()
	return nil
}
