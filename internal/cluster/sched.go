package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/models"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/sched"
	"swapservellm/internal/simclock"
)

// schedState is the cluster's predictive-scheduling runtime: the demand
// predictor fed by every gateway arrival, the admission controller, the
// pre-warmer, and the TTL policy shared with every node's reaper. nil
// when the configuration declares no classes — the fleet then behaves
// exactly as before.
type schedState struct {
	cfg     config.SchedCfg
	pred    *sched.Predictor
	adm     *sched.Admission // nil when admission is off
	pw      *sched.Prewarmer // nil when prewarm is off
	ttl     core.TTLPolicy   // nil when ttl_policy is unset
	classOf map[string]string
}

// buildSched assembles the scheduling runtime from a validated
// configuration. Called before the nodes are constructed so the TTL
// policy can be handed to each node's reaper.
func buildSched(cfg config.Cluster, catalog *models.Catalog, c *Cluster) (*schedState, error) {
	sc := cfg.Scheduling
	if !sc.Enabled() {
		return nil, nil
	}
	st := &schedState{
		cfg:     sc,
		pred:    sched.NewPredictor(sc.PredictorWindow(), sc.PredictorBucket()),
		classOf: make(map[string]string),
	}

	// Model → class and model → engine maps from the node lists (a model
	// replicated across nodes must already agree on its class because
	// class is part of the model entry).
	engines := make(map[string]perfmodel.EngineKind)
	for _, n := range cfg.Nodes {
		for _, m := range n.Models {
			cl := m.Class
			if cl == "" {
				cl = sc.DefaultClass
			}
			if prev, ok := st.classOf[m.Name]; ok && prev != cl {
				return nil, fmt.Errorf("cluster: model %q declared with classes %q and %q", m.Name, prev, cl)
			}
			st.classOf[m.Name] = cl
			engines[m.Name] = perfmodel.EngineKind(m.Engine)
		}
	}

	tb, _ := perfmodel.TestbedByName(cfg.Testbed)
	restore := func(model string) time.Duration {
		m, ok := catalog.Lookup(model)
		if !ok {
			return 0
		}
		wb := m.WeightBytes()
		return tb.CheckpointRestore(wb, wb, engines[model])
	}

	// The TTL policy is shared across nodes: demand is fleet-wide, and a
	// model name means the same replica set everywhere.
	switch sc.TTLPolicy {
	case "fixed":
		st.ttl = &sched.FixedTTL{TTL: sc.TTL()}
	case "adaptive":
		st.ttl = sched.NewAdaptiveTTL(sc.TTL())
	case "predictive":
		st.ttl = sched.NewPredictiveTTL(st.pred, restore)
	}

	if sc.Admission {
		adm, err := sched.NewAdmission(sc, c.reg, c.chaosInj)
		if err != nil {
			return nil, err
		}
		st.adm = adm
	}

	if sc.Prewarm {
		names := make([]string, 0, len(st.classOf))
		for name := range st.classOf {
			names = append(names, name)
		}
		sort.Strings(names)
		st.pw = sched.NewPrewarmer(sched.PrewarmConfig{
			Predictor: st.pred,
			Models:    names,
			Horizon:   sc.PrewarmHorizon(),
			Interval:  sc.PrewarmInterval(),
			Threshold: sc.PrewarmThreshold,
			Issue:     c.prewarmModel,
			Registry:  c.reg,
			Chaos:     c.chaosInj,
		})
	}
	return st, nil
}

// classFor resolves a request's priority class: an explicit
// X-Priority-Class header wins (per-tenant override, validated against
// the declared classes), then the model's configured class, then the
// endpoint table's class tag (honored only when the deployment declares
// that class), then the default. Returns "" when scheduling is
// disabled.
func (c *Cluster) classFor(model, override, endpointClass string) (string, error) {
	if c.sched == nil {
		return "", nil
	}
	if override != "" {
		if _, ok := c.sched.cfg.Class(override); !ok {
			return "", fmt.Errorf("unknown priority class %q", override)
		}
		return override, nil
	}
	if cl, ok := c.sched.classOf[model]; ok {
		return cl, nil
	}
	if endpointClass != "" {
		if _, ok := c.sched.cfg.Class(endpointClass); ok {
			return endpointClass, nil
		}
	}
	return c.sched.cfg.DefaultClass, nil
}

// prewarmModel makes model warm somewhere: if no candidate already has
// it warm, the placement policy picks a node and the swap-in runs
// asynchronously there. Returns true when a pre-warm was started.
func (c *Cluster) prewarmModel(model string) bool {
	cands := c.registry.Candidates(model)
	if len(cands) == 0 {
		return false
	}
	for _, cand := range cands {
		if cand.Presence == PresenceWarm {
			return false
		}
	}
	idx, ok := c.policy.Select(model, cands)
	if !ok || idx < 0 || idx >= len(cands) {
		return false
	}
	n, ok := c.registry.Node(cands[idx].NodeID)
	if !ok {
		return false
	}
	b, ok := n.Server().Backend(model)
	if !ok {
		return false
	}
	simclock.GateFor(c.clock).Go(func() {
		ctx := c.traceCtx(context.Background())
		ctx, span := obs.Start(ctx, "sched.prewarm",
			obs.String("model", model), obs.String("node", n.ID()))
		err := n.Server().Scheduler().EnsureRunning(ctx, b)
		span.EndErr(err)
	})
	return true
}

// Sched exposes scheduling internals for tests and tooling: the demand
// predictor, admission controller, and pre-warmer (each may be nil).
func (c *Cluster) Sched() (*sched.Predictor, *sched.Admission, *sched.Prewarmer) {
	if c.sched == nil {
		return nil, nil, nil
	}
	return c.sched.pred, c.sched.adm, c.sched.pw
}
