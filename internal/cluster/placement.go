package cluster

import (
	"math/rand"
	"sync"
)

// Presence classifies how "close" a node is to serving a model, in
// decreasing order of swap-in cost saved: a warm (running) backend
// serves immediately; a RAM-resident snapshot restores at memcpy
// speed; a disk-spilled snapshot first pays a disk read; absence means
// the model is not deployed there at all.
type Presence int

// Presence classes, ordered so that a larger value is always a better
// placement for latency.
const (
	PresenceNone Presence = iota
	PresenceDisk
	PresenceRAM
	PresenceWarm
)

// String returns the lowercase presence name.
func (p Presence) String() string {
	switch p {
	case PresenceWarm:
		return "warm"
	case PresenceRAM:
		return "ram"
	case PresenceDisk:
		return "disk"
	default:
		return "none"
	}
}

// Candidate is one node eligible to serve a request, as seen by a
// placement policy. Candidates are always presented sorted by node ID
// so policies are deterministic given the same cluster state.
type Candidate struct {
	NodeID string
	// Presence is the node's locality class for the requested model.
	Presence Presence
	// Load is the node's total outstanding requests (all backends).
	Load int
	// FreeGPUBytes is unallocated device memory across the node's GPUs.
	FreeGPUBytes int64
	// HostChunkFrac is the fraction of the model's checkpoint bytes
	// already host-resident in the node's content-addressed store (0
	// without one). Within a presence class, more resident chunks mean
	// a cheaper restore — a disk-class node whose shared chunks are hot
	// restores mostly at memcpy speed.
	HostChunkFrac float64
}

// Policy chooses the node to serve a request. Implementations must be
// safe for concurrent use.
type Policy interface {
	Name() string
	// Select returns the chosen candidate's index, or false when no
	// candidate is acceptable. The slice is never empty.
	Select(model string, cands []Candidate) (int, bool)
}

// LocalityFirst prefers the node that needs the least data movement to
// serve the model — warm backend over RAM snapshot over disk snapshot
// — and breaks ties toward the least-loaded node. This is the
// ServerlessLLM-style locality-aware policy the cluster defaults to:
// routing to where the state already lives converts would-be cold
// starts into hot-swap resumes.
type LocalityFirst struct{}

// Name identifies the policy in configs and metrics.
func (LocalityFirst) Name() string { return "locality" }

// Select picks the best-presence candidate, tie-breaking by resident
// chunk fraction, then load, then free GPU memory, then node ID.
func (LocalityFirst) Select(model string, cands []Candidate) (int, bool) {
	best := -1
	for i, c := range cands {
		if best < 0 || betterLocality(c, cands[best]) {
			best = i
		}
	}
	return best, best >= 0
}

func betterLocality(a, b Candidate) bool {
	if a.Presence != b.Presence {
		return a.Presence > b.Presence
	}
	// Same presence class: prefer the node that already holds more of
	// the model's chunks in host RAM (chunk-level locality).
	if a.HostChunkFrac != b.HostChunkFrac {
		return a.HostChunkFrac > b.HostChunkFrac
	}
	return lessLoaded(a, b)
}

// LeastLoaded ignores locality and picks the node with the fewest
// outstanding requests — classic load balancing, included as the
// ablation baseline that shows why locality matters for swap-heavy
// serving.
type LeastLoaded struct{}

// Name identifies the policy in configs and metrics.
func (LeastLoaded) Name() string { return "least-loaded" }

// Select picks the least-loaded candidate, tie-breaking by free GPU
// memory then node ID.
func (LeastLoaded) Select(model string, cands []Candidate) (int, bool) {
	best := -1
	for i, c := range cands {
		if best < 0 || lessLoaded(c, cands[best]) {
			best = i
		}
	}
	return best, best >= 0
}

func lessLoaded(a, b Candidate) bool {
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	if a.FreeGPUBytes != b.FreeGPUBytes {
		return a.FreeGPUBytes > b.FreeGPUBytes
	}
	return a.NodeID < b.NodeID
}

// Random picks uniformly among candidates — the null-hypothesis
// baseline for the placement ablation.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a seeded uniform-random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name identifies the policy in configs and metrics.
func (*Random) Name() string { return "random" }

// Select picks a uniformly random candidate.
func (p *Random) Select(model string, cands []Candidate) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(len(cands)), true
}

// PolicyByName constructs the named placement policy ("locality",
// "least-loaded", or "random"); seed only affects "random".
func PolicyByName(name string, seed int64) (Policy, bool) {
	switch name {
	case "locality", "":
		return LocalityFirst{}, true
	case "least-loaded":
		return LeastLoaded{}, true
	case "random":
		return NewRandom(seed), true
	default:
		return nil, false
	}
}
