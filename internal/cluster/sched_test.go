package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
)

// schedConfig is a one-node deployment with two classes: a small gold
// model and a bronze model whose guaranteed share is nearly zero, so
// overload sheds it immediately once its single burst token is spent.
func schedConfig() config.Cluster {
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Scheduling = config.SchedCfg{
		Classes: []config.SchedClass{
			{Name: "gold", Priority: 0, SLOSec: 30, RatePerSec: 5},
			{Name: "bronze", Priority: 2, SLOSec: 1, RatePerSec: 0.01},
		},
		Admission: true,
	}
	cfg.Nodes = []config.Node{{Name: "node-a", Models: []config.Model{
		{Name: "llama3.2:1b-fp16", Engine: "ollama", Class: "gold"},
		{Name: "llama3.2:3b-fp16", Engine: "ollama", Class: "bronze"},
	}}}
	return cfg
}

// postChat sends a minimal chat request straight through the gateway,
// returning the raw response so status codes and headers are visible.
func postChat(t *testing.T, url, model, classHeader string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"model":%q,"messages":[{"role":"user","content":"hi"}],"max_tokens":2,"seed":7}`, model)
	req, err := http.NewRequest(http.MethodPost, url+"/v1/chat/completions", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Admission semantics are under test: bypass the response cache so
	// repeated identical requests actually reach the admission gate.
	req.Header.Set("Cache-Control", "no-store")
	if classHeader != "" {
		req.Header.Set("X-Priority-Class", classHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestGatewayAdmissionSheds429 drives the gateway into a shed: with a
// pile of bronze work in flight and the bronze bucket drained, a bronze
// request gets 429 + Retry-After while gold still flows.
func TestGatewayAdmissionSheds429(t *testing.T) {
	c := startCluster(t, schedConfig(), 5000)
	_, adm, _ := c.Sched()
	if adm == nil {
		t.Fatal("admission controller not built")
	}

	// Teach the service-time EWMA 10s per request, then park bronze
	// in-flight work so the bronze predicted wait dwarfs its 1s SLO.
	adm.NoteStart("bronze")
	adm.NoteDone("bronze", 10*time.Second)
	for i := 0; i < 10; i++ {
		adm.NoteStart("bronze")
	}

	// The bronze burst is one token; the first over-SLO request spends
	// it, the second is shed.
	first := postChat(t, c.URL(), "llama3.2:3b-fp16", "")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("guaranteed-share request: HTTP %d", first.StatusCode)
	}
	shed := postChat(t, c.URL(), "llama3.2:3b-fp16", "")
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload bronze request: HTTP %d, want 429", shed.StatusCode)
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// Gold is invisible to bronze backlog: admitted via slack.
	gold := postChat(t, c.URL(), "llama3.2:1b-fp16", "")
	if gold.StatusCode != http.StatusOK {
		t.Fatalf("gold request under bronze overload: HTTP %d", gold.StatusCode)
	}

	reg := c.Registry()
	if got := reg.Counter("sched_shed_bronze").Value(); got < 1 {
		t.Fatalf("sched_shed_bronze = %v", got)
	}
	if got := reg.Counter("sched_admitted_gold").Value(); got < 1 {
		t.Fatalf("sched_admitted_gold = %v", got)
	}

	// A per-tenant header override re-classes the request: the gold
	// model shed as bronze, and an unknown class rejected outright.
	if resp := postChat(t, c.URL(), "llama3.2:1b-fp16", "bronze"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("header-overridden request: HTTP %d, want 429", resp.StatusCode)
	}
	if resp := postChat(t, c.URL(), "llama3.2:1b-fp16", "platinum"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class header: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestClusterPrewarmModel exercises the pre-warm hook end to end: a
// cold model becomes warm without any request touching it.
func TestClusterPrewarmModel(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	cfg := schedConfig()
	c := startCluster(t, cfg, 5000)

	if !c.prewarmModel(model) {
		t.Fatal("prewarmModel refused a cold model")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cands := c.registry.Candidates(model)
		if len(cands) == 1 && cands[0].Presence == PresenceWarm {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("model never became warm after pre-warm")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Already warm: the hook declines rather than re-issuing.
	if c.prewarmModel(model) {
		t.Fatal("prewarmModel re-issued for a warm model")
	}
}

// TestClusterTTLPolicyEvicts installs a fixed TTL policy and checks the
// node reaper consults it: a served backend returns to its snapshot
// once idle past the TTL, with keep_alive_sec unset.
func TestClusterTTLPolicyEvicts(t *testing.T) {
	const model = "llama3.2:1b-fp16"
	cfg := schedConfig()
	cfg.Scheduling.Admission = false
	cfg.Scheduling.TTLPolicy = "fixed"
	cfg.Scheduling.TTLSec = 5
	c := startCluster(t, cfg, 5000)

	gatewayChat(t, c.URL(), model, 2)
	n, _ := c.Node("node-a")
	b, ok := n.Server().Backend(model)
	if !ok {
		t.Fatal("backend missing")
	}
	deadline := time.Now().Add(30 * time.Second)
	for b.State() == core.BackendRunning {
		if time.Now().After(deadline) {
			t.Fatal("TTL policy never evicted the idle backend")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
