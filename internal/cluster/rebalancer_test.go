package cluster

import (
	"context"
	"testing"
	"time"

	"swapservellm/internal/config"
)

// TestRebalancerMigratesColdSnapshot: a node whose snapshot RAM sits
// above the high-water mark sheds its coldest idle image to a replica
// node with headroom — the replica promotes its disk copy into RAM and
// the hot node demotes its copy to disk, both through the storage cost
// model.
func TestRebalancerMigratesColdSnapshot(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Nodes = []config.Node{
		// node-a holds two snapshots (hot); node-b replicates only the
		// first model and starts with its copy demoted to disk.
		{Name: "node-a", Models: []config.Model{
			{Name: "llama3.2:1b-fp16", Engine: "ollama"},
			{Name: "llama3.2:3b-fp16", Engine: "ollama"},
		}},
		{Name: "node-b", Models: []config.Model{
			{Name: "llama3.2:1b-fp16", Engine: "ollama"},
		}},
	}
	c := startCluster(t, cfg, 5000)

	nodeA, _ := c.Node("node-a")
	nodeB, _ := c.Node("node-b")
	drvA, drvB := nodeA.Server().Driver(), nodeB.Server().Driver()
	bA1, _ := nodeA.Server().Backend("llama3.2:1b-fp16")
	bA3, _ := nodeA.Server().Backend("llama3.2:3b-fp16")
	bB1, _ := nodeB.Server().Backend("llama3.2:1b-fp16")

	// Init leaves every backend swapped out with a RAM image; push
	// node-b's replica to disk so it is a promotion candidate.
	if err := drvB.Demote(context.Background(), bB1.Container().ID()); err != nil {
		t.Fatal(err)
	}

	// Cap chosen so node-a (two images) is above 0.75×cap while node-b
	// (empty RAM) can absorb the 1b image without crossing it.
	capBytes := drvA.HostUsed()
	rb := newRebalancer(c, time.Second, 0.75, capBytes)

	if got := rb.Sweep(context.Background()); got != 1 {
		t.Fatalf("first sweep migrated %d images, want 1", got)
	}
	// The smaller/colder 1b image moved: node-a now disk, node-b now RAM.
	if loc, _ := drvA.ImageLocation(bA1.Container().ID()); loc.String() != "disk" {
		t.Fatalf("node-a 1b image = %v, want disk", loc)
	}
	if loc, _ := drvB.ImageLocation(bB1.Container().ID()); loc.String() != "ram" {
		t.Fatalf("node-b 1b image = %v, want ram", loc)
	}
	// The un-replicated 3b image must not move.
	if loc, _ := drvA.ImageLocation(bA3.Container().ID()); loc.String() != "ram" {
		t.Fatalf("node-a 3b image = %v, want ram", loc)
	}
	if got := c.Registry().Counter("rebalance_migrations").Value(); got != 1 {
		t.Fatalf("rebalance_migrations = %v", got)
	}

	// Node-a dropped below the high-water mark; a second sweep is a
	// no-op.
	if got := rb.Sweep(context.Background()); got != 0 {
		t.Fatalf("second sweep migrated %d images, want 0", got)
	}

	// Placement now sees the migrated snapshot: node-b is the RAM-class
	// candidate for the 1b model, node-a only disk-class.
	cands := c.NodeRegistry().Candidates("llama3.2:1b-fp16")
	if len(cands) != 2 {
		t.Fatalf("candidates = %+v", cands)
	}
	byID := map[string]Presence{}
	for _, cd := range cands {
		byID[cd.NodeID] = cd.Presence
	}
	if byID["node-a"] != PresenceDisk || byID["node-b"] != PresenceRAM {
		t.Fatalf("presence after migration = %v", byID)
	}
}

// TestRebalancerDisabledWithoutCap: with no host snapshot cap there is
// no RAM pressure signal, so sweeps do nothing.
func TestRebalancerDisabledWithoutCap(t *testing.T) {
	c := startCluster(t, twoNodeConfig("llama3.2:1b-fp16"), 5000)
	rb := newRebalancer(c, time.Second, 0.75, 0)
	if got := rb.Sweep(context.Background()); got != 0 {
		t.Fatalf("capless sweep migrated %d images", got)
	}
}

// TestRebalancerSkipsBusyBackends: images belonging to backends with
// outstanding work are not migration candidates.
func TestRebalancerNeedsReplicaOnDisk(t *testing.T) {
	// Replica image still in RAM on node-b: nothing to promote, so the
	// hot node keeps its image even above the high-water mark.
	c := startCluster(t, twoNodeConfig("llama3.2:1b-fp16"), 5000)
	nodeA, _ := c.Node("node-a")
	rb := newRebalancer(c, time.Second, 0.5, nodeA.Server().Driver().HostUsed())
	if got := rb.Sweep(context.Background()); got != 0 {
		t.Fatalf("sweep migrated %d images without a disk-resident replica", got)
	}
}
