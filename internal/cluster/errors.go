package cluster

import "errors"

// The package's error vocabulary, consolidated so callers (and the
// swaplint errwrap analyzer) have canonical errors.Is targets:
//
//   - ErrUnknownNode: the named node is not a cluster member. Returned
//     by lookup-style operations (drain, undrain, kill); the gateway's
//     HTTP surface maps it to 404.
//   - ErrUnknownPolicy: the configured placement policy name has no
//     registered implementation; construction fails.
//
// Gateway and rebalancer paths additionally propagate (wrapped)
// sentinels from the layers below: core.ErrBackendFailed,
// cudackpt.ErrBadState / cudackpt.ErrHostMemory, chaos.ErrInjected, and
// context.Canceled / context.DeadlineExceeded for client disconnects.
var (
	ErrUnknownNode   = errors.New("cluster: unknown node")
	ErrUnknownPolicy = errors.New("cluster: unknown placement policy")
)
