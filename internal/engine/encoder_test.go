package engine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"swapservellm/internal/openai"
)

// postJSON posts a JSON body and decodes the JSON response into out.
func postJSON(t *testing.T, url string, body string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

func TestEmbeddingsEndpoint(t *testing.T) {
	_, srv, _ := readyEngine(t)
	var got openai.EmbeddingsResponse
	resp := postJSON(t, srv.URL+"/v1/embeddings",
		`{"model":"llama3.2:1b-fp16","input":["first chunk","second chunk"]}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got.Object != "list" || len(got.Data) != 2 {
		t.Fatalf("response = %+v", got)
	}
	for i, e := range got.Data {
		if e.Index != i || e.Object != "embedding" || len(e.Embedding) != EmbeddingDim {
			t.Fatalf("embedding %d = %+v", i, e)
		}
		for _, v := range e.Embedding {
			if v < -1 || v > 1 {
				t.Fatalf("component %v out of [-1,1]", v)
			}
		}
	}
	if got.Usage.PromptTokens <= 0 || got.Usage.TotalTokens != got.Usage.PromptTokens {
		t.Fatalf("usage = %+v", got.Usage)
	}

	// Determinism: the same input always embeds identically (the property
	// the response cache and replayed traces rely on).
	var again openai.EmbeddingsResponse
	postJSON(t, srv.URL+"/v1/embeddings",
		`{"model":"llama3.2:1b-fp16","input":["first chunk","second chunk"]}`, &again)
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("embeddings are not deterministic")
	}
	// Distinct inputs embed differently.
	if got.Data[0].Embedding[0] == got.Data[1].Embedding[0] {
		t.Fatal("distinct inputs produced an identical leading component (suspicious)")
	}
}

func TestRerankEndpoint(t *testing.T) {
	_, srv, _ := readyEngine(t)
	var got openai.RerankResponse
	resp := postJSON(t, srv.URL+"/v1/rerank",
		`{"model":"llama3.2:1b-fp16","query":"swap latency","documents":["doc a","doc b","doc c"],"top_n":2}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got.Results) != 2 {
		t.Fatalf("top_n not applied: %+v", got.Results)
	}
	if got.Results[0].RelevanceScore < got.Results[1].RelevanceScore {
		t.Fatalf("results not sorted by descending relevance: %+v", got.Results)
	}
	for _, r := range got.Results {
		if r.RelevanceScore < 0 || r.RelevanceScore > 1 {
			t.Fatalf("score %v out of [0,1]", r.RelevanceScore)
		}
		if r.Index < 0 || r.Index > 2 {
			t.Fatalf("index %d out of range", r.Index)
		}
	}

	var again openai.RerankResponse
	postJSON(t, srv.URL+"/v1/rerank",
		`{"model":"llama3.2:1b-fp16","query":"swap latency","documents":["doc a","doc b","doc c"],"top_n":2}`, &again)
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("rerank scores are not deterministic")
	}
}

func TestEncoderEndpointsRejectWrongModel(t *testing.T) {
	_, srv, _ := readyEngine(t)
	resp := postJSON(t, srv.URL+"/v1/embeddings", `{"model":"nonesuch","input":"x"}`, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("embeddings wrong model status = %d", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/v1/rerank", `{"model":"nonesuch","query":"q","documents":["d"]}`, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rerank wrong model status = %d", resp.StatusCode)
	}
}

func TestMultimodalChatCharging(t *testing.T) {
	// An attached image must charge the prompt budget with the projector
	// tokens (576/image) on top of the text tokens.
	_, srv, _ := readyEngine(t)
	textOnly := `{"model":"llama3.2:1b-fp16","messages":[{"role":"user","content":"describe"}],"max_tokens":4}`
	withImage := `{"model":"llama3.2:1b-fp16","messages":[{"role":"user","content":[{"type":"text","text":"describe"},{"type":"image_url","image_url":{"url":"data:image/png;base64,xyz"}}]}],"max_tokens":4}`

	var plain, vision openai.ChatCompletionResponse
	postJSON(t, srv.URL+"/v1/chat/completions", textOnly, &plain)
	postJSON(t, srv.URL+"/v1/chat/completions", withImage, &vision)
	if diff := vision.Usage.PromptTokens - plain.Usage.PromptTokens; diff != 576 {
		t.Fatalf("image charged %d prompt tokens, want 576 (plain %d, vision %d)",
			diff, plain.Usage.PromptTokens, vision.Usage.PromptTokens)
	}
}
