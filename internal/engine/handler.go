package engine

import (
	"encoding/json"
	"fmt"
	"net/http"

	"swapservellm/internal/openai"
	"swapservellm/internal/perfmodel"
)

// handler serves the OpenAI-compatible interface for one engine instance.
type handler struct {
	b *base
	// extra registers engine-specific routes (e.g. vLLM's sleep API).
	extra func(mux *http.ServeMux)
}

// Handler builds the engine's HTTP interface.
func (b *base) handlerWith(extra func(mux *http.ServeMux)) http.Handler {
	h := &handler{b: b, extra: extra}
	mux := http.NewServeMux()
	mux.HandleFunc("/health", h.health)
	mux.HandleFunc("/v1/models", h.listModels)
	mux.HandleFunc("/v1/chat/completions", h.chatCompletions)
	mux.HandleFunc("/v1/completions", h.completions)
	mux.HandleFunc("/v1/embeddings", h.embeddings)
	mux.HandleFunc("/v1/rerank", h.rerank)
	if extra != nil {
		extra(mux)
	}
	// The freezer gate wraps everything: a frozen process accepts TCP
	// connections (the kernel backlog) but never progresses them.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := h.b.gate.Wait(r.Context()); err != nil {
			return // client gave up while the process was frozen
		}
		mux.ServeHTTP(w, r)
	})
}

// health responds 200 once the engine is ready to serve.
func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	switch h.b.State() {
	case StateReady:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case StateSleeping:
		// Sleep mode still answers health checks (the process is alive).
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "sleeping")
	default:
		w.WriteHeader(http.StatusServiceUnavailable)
	}
}

// listModels reports the single served model.
func (h *handler) listModels(w http.ResponseWriter, r *http.Request) {
	m := h.b.cfg.Model
	openai.WriteJSON(w, http.StatusOK, openai.ModelList{
		Object: "list",
		Data: []openai.ModelInfo{{
			ID:      m.Name,
			Object:  "model",
			Created: h.b.cfg.Clock.Now().Unix(),
			OwnedBy: string(h.b.kind),
		}},
	})
}

// chatCompletions implements POST /v1/chat/completions with both blocking
// and SSE streaming responses, decoding tokens at the calibrated rate.
func (h *handler) chatCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	var req openai.ChatCompletionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if req.Model != h.b.cfg.Model.Name {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not served by this backend (serves %q)", req.Model, h.b.cfg.Model.Name))
		return
	}
	switch h.b.State() {
	case StateReady:
	case StateSleeping:
		openai.WriteError(w, http.StatusServiceUnavailable, "engine_sleeping",
			"engine is in sleep mode; wake it before serving")
		return
	default:
		openai.WriteError(w, http.StatusServiceUnavailable, "engine_not_ready",
			fmt.Sprintf("engine state: %v", h.b.State()))
		return
	}

	h.b.active.Add(1)
	h.updateBusy()
	defer func() {
		h.b.active.Add(-1)
		h.updateBusy()
	}()

	var (
		tok  Tokenizer
		gen  Generator
		tb   = h.b.cfg.Testbed
		kind = h.b.kind
		m    = h.b.cfg.Model
	)
	prompt := PromptText(req.Messages)
	promptTokens := tok.CountMessages(req.Messages)
	// Multimodal attachments charge the prompt budget in projector-token
	// equivalents on top of the encoder passes slept below.
	var images int
	var audioSec float64
	for _, msg := range req.Messages {
		images += msg.Images()
		audioSec += msg.AudioSeconds()
	}
	promptTokens += images*perfmodel.VisionTokensPerImage + int(audioSec*perfmodel.AudioTokensPerSec)
	var seed int64
	if req.Seed != nil {
		seed = *req.Seed
	}
	n := gen.CompletionLength(prompt, seed, req.MaxTokens)
	if req.MinTokens > 0 && n < req.MinTokens {
		n = req.MinTokens // vLLM min_tokens extension
		if req.MaxTokens > 0 && n > req.MaxTokens {
			n = req.MaxTokens
		}
	}
	finish := "stop"
	if req.MaxTokens > 0 && n == req.MaxTokens {
		finish = "length"
	}

	// Vision/audio encoders run first, then compute-bound prefill.
	tb0 := h.b.cfg.Clock
	if enc := tb.VisionEncodeTime(images) + tb.AudioEncodeTime(audioSec); enc > 0 {
		tb0.Sleep(enc)
	}
	tb0.Sleep(tb.PrefillTime(kind, m, promptTokens))

	id := fmt.Sprintf("chatcmpl-%s-%d", h.b.cfg.Owner, h.b.reqSeq.Add(1))
	created := tb0.Now().Unix()

	if req.Stream {
		h.streamCompletion(w, r, &req, id, created, prompt, seed, n, promptTokens, finish)
		return
	}

	// Blocking: decode every token, then respond.
	var content string
	for i := 0; i < n; i++ {
		if err := h.b.gate.Wait(r.Context()); err != nil {
			return
		}
		tb0.Sleep(tb.TokenTime(kind, m, 1))
		content += gen.Token(prompt, seed, i)
		if r.Context().Err() != nil {
			return
		}
	}
	openai.WriteJSON(w, http.StatusOK, openai.ChatCompletionResponse{
		ID:      id,
		Object:  "chat.completion",
		Created: created,
		Model:   m.Name,
		Choices: []openai.Choice{{
			Message:      openai.Message{Role: "assistant", Content: content},
			FinishReason: finish,
		}},
		Usage: openai.Usage{
			PromptTokens:     promptTokens,
			CompletionTokens: n,
			TotalTokens:      promptTokens + n,
		},
	})
}

// completions implements the legacy POST /v1/completions endpoint:
// plain-prompt generation with the same decode model as chat.
func (h *handler) completions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	var req openai.CompletionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if req.Model != h.b.cfg.Model.Name {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not served by this backend (serves %q)", req.Model, h.b.cfg.Model.Name))
		return
	}
	if h.b.State() != StateReady {
		openai.WriteError(w, http.StatusServiceUnavailable, "engine_not_ready",
			fmt.Sprintf("engine state: %v", h.b.State()))
		return
	}

	h.b.active.Add(1)
	h.updateBusy()
	defer func() {
		h.b.active.Add(-1)
		h.updateBusy()
	}()

	var (
		tok  Tokenizer
		gen  Generator
		tb   = h.b.cfg.Testbed
		kind = h.b.kind
		m    = h.b.cfg.Model
	)
	var seed int64
	if req.Seed != nil {
		seed = *req.Seed
	}
	clock := h.b.cfg.Clock
	id := fmt.Sprintf("cmpl-%s-%d", h.b.cfg.Owner, h.b.reqSeq.Add(1))
	created := clock.Now().Unix()

	var choices []openai.CompletionChoice
	var usage openai.Usage
	for idx, prompt := range req.Prompt {
		promptTokens := tok.CountText(prompt)
		n := gen.CompletionLength(prompt, seed, req.MaxTokens)
		finish := "stop"
		if req.MaxTokens > 0 && n == req.MaxTokens {
			finish = "length"
		}
		clock.Sleep(tb.PrefillTime(kind, m, promptTokens))
		var text string
		for i := 0; i < n; i++ {
			if err := h.b.gate.Wait(r.Context()); err != nil {
				return
			}
			clock.Sleep(tb.TokenTime(kind, m, 1))
			text += gen.Token(prompt, seed, i)
			if r.Context().Err() != nil {
				return
			}
		}
		fr := finish
		choices = append(choices, openai.CompletionChoice{Text: text, Index: idx, FinishReason: &fr})
		usage.PromptTokens += promptTokens
		usage.CompletionTokens += n
	}
	usage.TotalTokens = usage.PromptTokens + usage.CompletionTokens
	openai.WriteJSON(w, http.StatusOK, openai.CompletionResponse{
		ID:      id,
		Object:  "text_completion",
		Created: created,
		Model:   m.Name,
		Choices: choices,
		Usage:   &usage,
	})
}

// streamCompletion emits SSE chunks token by token.
func (h *handler) streamCompletion(w http.ResponseWriter, r *http.Request, req *openai.ChatCompletionRequest,
	id string, created int64, prompt string, seed int64, n, promptTokens int, finish string) {
	var gen Generator
	sw := openai.NewSSEWriter(w)
	m := h.b.cfg.Model

	// Role preamble chunk.
	if err := sw.WriteChunk(&openai.ChatCompletionChunk{
		ID: id, Object: "chat.completion.chunk", Created: created, Model: m.Name,
		Choices: []openai.DeltaChoice{{Delta: openai.Message{Role: "assistant"}}},
	}); err != nil {
		return
	}
	for i := 0; i < n; i++ {
		if err := h.b.gate.Wait(r.Context()); err != nil {
			return
		}
		h.b.cfg.Clock.Sleep(h.b.cfg.Testbed.TokenTime(h.b.kind, m, 1))
		if err := sw.WriteChunk(&openai.ChatCompletionChunk{
			ID: id, Object: "chat.completion.chunk", Created: created, Model: m.Name,
			Choices: []openai.DeltaChoice{{Delta: openai.Message{Content: gen.Token(prompt, seed, i)}}},
		}); err != nil {
			return
		}
	}
	fr := finish
	sw.WriteChunk(&openai.ChatCompletionChunk{
		ID: id, Object: "chat.completion.chunk", Created: created, Model: m.Name,
		Choices: []openai.DeltaChoice{{Delta: openai.Message{}, FinishReason: &fr}},
		Usage: &openai.Usage{
			PromptTokens:     promptTokens,
			CompletionTokens: n,
			TotalTokens:      promptTokens + n,
		},
	})
	sw.WriteDone()
}

// updateBusy reflects in-flight request count in the device's compute
// utilization.
func (h *handler) updateBusy() {
	share := 0.25 * float64(h.b.active.Load())
	for _, d := range h.b.cfg.Devices {
		d.SetBusy(h.b.cfg.Owner, share)
	}
}
