package engine

import (
	"fmt"

	"swapservellm/internal/perfmodel"
)

// New constructs an engine of the given kind.
func New(kind perfmodel.EngineKind, cfg Config) (Engine, error) {
	switch kind {
	case perfmodel.EngineVLLM:
		return NewVLLM(cfg)
	case perfmodel.EngineOllama:
		return NewOllama(cfg)
	case perfmodel.EngineSGLang:
		return NewSGLang(cfg)
	case perfmodel.EngineTRTLLM:
		return NewTRTLLM(cfg)
	default:
		return nil, fmt.Errorf("engine: unknown engine kind %q", kind)
	}
}
