package engine

import (
	"context"
	"net/http"

	"swapservellm/internal/perfmodel"
)

// TRTLLM simulates the TensorRT-LLM engine: the longest cold start of the
// four (the TensorRT engine build dominates — ~124 s for LLaMA 3.1-8B,
// Figure 2) in exchange for the best decode throughput, with a pooled
// KV cache like vLLM's.
type TRTLLM struct {
	*base
}

// DefaultTRTLLMMemoryUtilization mirrors TensorRT-LLM's
// free_gpu_memory_fraction default applied to the whole device.
const DefaultTRTLLMMemoryUtilization = 0.9

// NewTRTLLM constructs a TensorRT-LLM engine instance.
func NewTRTLLM(cfg Config) (*TRTLLM, error) {
	if cfg.GPUMemoryUtilization == 0 {
		cfg.GPUMemoryUtilization = DefaultTRTLLMMemoryUtilization
	}
	b, err := newBase(perfmodel.EngineTRTLLM, cfg)
	if err != nil {
		return nil, err
	}
	return &TRTLLM{base: b}, nil
}

// Init implements Engine.
func (t *TRTLLM) Init(ctx context.Context) (perfmodel.InitBreakdown, error) {
	pool := int64(t.cfg.GPUMemoryUtilization * float64(t.cfg.Device.Total()))
	return t.runInit(ctx, pool)
}

// Handler implements Engine.
func (t *TRTLLM) Handler() http.Handler { return t.handlerWith(nil) }

var _ Engine = (*TRTLLM)(nil)
