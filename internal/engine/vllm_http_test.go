package engine

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"swapservellm/internal/openai"
)

// vllmServer initializes a vLLM engine behind a test HTTP server.
func vllmServer(t *testing.T) (*VLLM, *httptest.Server) {
	t.Helper()
	r := newRig(t)
	e, err := NewVLLM(r.config(t, "vllm-http", "llama3.2:1b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return e, srv
}

func TestVLLMSleepEndpoint(t *testing.T) {
	e, srv := vllmServer(t)
	resp, err := http.Post(srv.URL+"/sleep?level=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sleep status = %d", resp.StatusCode)
	}
	if e.State() != StateSleeping {
		t.Fatalf("state = %v", e.State())
	}

	// Inference while sleeping is rejected with 503.
	seed := int64(1)
	_, err = openai.NewClient(srv.URL).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:    "llama3.2:1b-fp16",
			Messages: []openai.Message{{Role: "user", Content: "x"}},
			Seed:     &seed,
		})
	if err == nil {
		t.Fatal("request served while sleeping")
	}

	// Health still answers (the process is alive in sleep mode).
	hr, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("health while sleeping = %d", hr.StatusCode)
	}

	// Wake up and serve again.
	resp, err = http.Post(srv.URL+"/wake_up", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("wake status = %d", resp.StatusCode)
	}
	if e.State() != StateReady {
		t.Fatalf("state after wake = %v", e.State())
	}
	if _, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "llama3.2:1b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "x"}},
			Seed:      &seed,
			MaxTokens: 2,
		}); err != nil {
		t.Fatalf("request after wake: %v", err)
	}
}

func TestVLLMSleepEndpointLevel2(t *testing.T) {
	e, srv := vllmServer(t)
	resp, err := http.Post(srv.URL+"/sleep?level=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sleep level 2 status = %d", resp.StatusCode)
	}
	if e.State() != StateSleeping {
		t.Fatalf("state = %v", e.State())
	}
}

func TestVLLMSleepEndpointConflict(t *testing.T) {
	_, srv := vllmServer(t)
	// Wake without sleep: 409.
	resp, err := http.Post(srv.URL+"/wake_up", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wake while ready = %d", resp.StatusCode)
	}
	// Double sleep: 409 on the second.
	http.Post(srv.URL+"/sleep?level=1", "", nil)
	resp, err = http.Post(srv.URL+"/sleep?level=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double sleep = %d", resp.StatusCode)
	}
}
