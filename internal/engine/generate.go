package engine

import (
	"hash/fnv"

	"swapservellm/internal/openai"
)

// vocabulary is the word list the deterministic generator draws from. The
// content is immaterial to the experiments; determinism is what matters
// (§5.1 fixes temperature and seed for reproducible outputs).
var vocabulary = []string{
	"the", "model", "serves", "inference", "requests", "with", "low",
	"latency", "and", "high", "throughput", "across", "multiple", "GPU",
	"devices", "while", "memory", "is", "managed", "by", "a", "scheduler",
	"that", "swaps", "engines", "in", "out", "of", "device", "state",
	"checkpoints", "restore", "quickly", "because", "initialization",
	"phases", "are", "skipped", "tokens", "stream", "to", "clients",
	"over", "persistent", "connections", "as", "they", "decode",
}

// Generator produces deterministic completions: the same prompt, seed,
// and temperature-zero setting always yield the same token sequence, as
// §5.1 requires for reproducible evaluation.
type Generator struct{}

// hashSeed folds the prompt and request seed into a stream state.
func hashSeed(prompt string, seed int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(prompt))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// step advances the deterministic stream state.
func step(state uint64) uint64 {
	// SplitMix64 finalizer: good avalanche, no external deps.
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CompletionLength returns the number of tokens the model would generate
// for the prompt before emitting EOS, bounded by maxTokens when positive.
func (Generator) CompletionLength(prompt string, seed int64, maxTokens int) int {
	state := step(hashSeed(prompt, seed))
	n := 16 + int(state%240) // 16..255 tokens before a natural stop
	if maxTokens > 0 && n > maxTokens {
		n = maxTokens
	}
	return n
}

// Token returns the i-th output token (with a leading space separator
// after the first token).
func (Generator) Token(prompt string, seed int64, i int) string {
	state := hashSeed(prompt, seed)
	for k := 0; k <= i; k++ {
		state = step(state)
	}
	w := vocabulary[state%uint64(len(vocabulary))]
	if i == 0 {
		return w
	}
	return " " + w
}

// EmbeddingDim is the simulated embedding width. Real embedding models
// emit 768–4096 dims; 8 keeps response bodies small while preserving
// the property the experiments need — a deterministic vector per input.
const EmbeddingDim = 8

// Embedding returns the deterministic embedding vector for text: dim
// components in [-1, 1] with six decimal places, a pure function of the
// input so cached and replayed responses are byte-identical.
func (Generator) Embedding(text string, dim int) []float64 {
	state := hashSeed(text, 0)
	out := make([]float64, dim)
	for d := range out {
		state = step(state)
		out[d] = float64(state%2000001)/1e6 - 1
	}
	return out
}

// RerankScore returns the deterministic relevance score in [0, 1] (six
// decimal places) for a query-document pair.
func (Generator) RerankScore(query, doc string) float64 {
	state := step(hashSeed(query+"<|doc|>"+doc, 0))
	return float64(state%1000001) / 1e6
}

// PromptText flattens a chat into the prompt string fed to the stream
// state, mirroring a chat template.
func PromptText(msgs []openai.Message) string {
	var out string
	for _, m := range msgs {
		out += "<|" + m.Role + "|>" + m.Content
	}
	return out
}
