package engine

import (
	"hash/fnv"

	"swapservellm/internal/openai"
)

// vocabulary is the word list the deterministic generator draws from. The
// content is immaterial to the experiments; determinism is what matters
// (§5.1 fixes temperature and seed for reproducible outputs).
var vocabulary = []string{
	"the", "model", "serves", "inference", "requests", "with", "low",
	"latency", "and", "high", "throughput", "across", "multiple", "GPU",
	"devices", "while", "memory", "is", "managed", "by", "a", "scheduler",
	"that", "swaps", "engines", "in", "out", "of", "device", "state",
	"checkpoints", "restore", "quickly", "because", "initialization",
	"phases", "are", "skipped", "tokens", "stream", "to", "clients",
	"over", "persistent", "connections", "as", "they", "decode",
}

// Generator produces deterministic completions: the same prompt, seed,
// and temperature-zero setting always yield the same token sequence, as
// §5.1 requires for reproducible evaluation.
type Generator struct{}

// hashSeed folds the prompt and request seed into a stream state.
func hashSeed(prompt string, seed int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(prompt))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// step advances the deterministic stream state.
func step(state uint64) uint64 {
	// SplitMix64 finalizer: good avalanche, no external deps.
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CompletionLength returns the number of tokens the model would generate
// for the prompt before emitting EOS, bounded by maxTokens when positive.
func (Generator) CompletionLength(prompt string, seed int64, maxTokens int) int {
	state := step(hashSeed(prompt, seed))
	n := 16 + int(state%240) // 16..255 tokens before a natural stop
	if maxTokens > 0 && n > maxTokens {
		n = maxTokens
	}
	return n
}

// Token returns the i-th output token (with a leading space separator
// after the first token).
func (Generator) Token(prompt string, seed int64, i int) string {
	state := hashSeed(prompt, seed)
	for k := 0; k <= i; k++ {
		state = step(state)
	}
	w := vocabulary[state%uint64(len(vocabulary))]
	if i == 0 {
		return w
	}
	return " " + w
}

// PromptText flattens a chat into the prompt string fed to the stream
// state, mirroring a chat template.
func PromptText(msgs []openai.Message) string {
	var out string
	for _, m := range msgs {
		out += "<|" + m.Role + "|>" + m.Content
	}
	return out
}
