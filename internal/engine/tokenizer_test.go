package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"swapservellm/internal/openai"
)

func TestCountTextBasics(t *testing.T) {
	var tok Tokenizer
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"hi", 1},
		{"hello", 2},                     // 5 chars -> 2 tokens
		{"a b c", 3},                     // three short words
		{"hello, world!", 2 + 1 + 2 + 1}, // hello(2) ,(1) world(2) !(1)
	}
	for _, c := range cases {
		if got := tok.CountText(c.in); got != c.want {
			t.Errorf("CountText(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCountTextWhitespaceKinds(t *testing.T) {
	var tok Tokenizer
	if got := tok.CountText("a\tb\nc\rd"); got != 4 {
		t.Fatalf("CountText mixed whitespace = %d, want 4", got)
	}
}

func TestCountMessages(t *testing.T) {
	var tok Tokenizer
	msgs := []openai.Message{
		{Role: "system", Content: "be brief"},
		{Role: "user", Content: "hi"},
	}
	// 3 (prefix) + 4+3 ("be"=1 + "brief"=2) + 4+1 = 15
	if got := tok.CountMessages(msgs); got != 15 {
		t.Fatalf("CountMessages = %d, want 15", got)
	}
}

// Property: token counts are non-negative, zero only for empty text, and
// monotonic under concatenation with a separator.
func TestCountTextProperty(t *testing.T) {
	var tok Tokenizer
	f := func(a, b string) bool {
		ca, cb := tok.CountText(a), tok.CountText(b)
		if ca < 0 || cb < 0 {
			return false
		}
		joined := tok.CountText(a + " " + b)
		return joined >= ca && joined >= cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	var g Generator
	for i := 0; i < 5; i++ {
		if g.Token("prompt", 7, i) != g.Token("prompt", 7, i) {
			t.Fatal("Token not deterministic")
		}
	}
	if g.CompletionLength("p", 1, 0) != g.CompletionLength("p", 1, 0) {
		t.Fatal("CompletionLength not deterministic")
	}
}

func TestGeneratorSeedSensitivity(t *testing.T) {
	var g Generator
	same := true
	for i := 0; i < 8; i++ {
		if g.Token("prompt", 1, i) != g.Token("prompt", 2, i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorPromptSensitivity(t *testing.T) {
	var g Generator
	same := true
	for i := 0; i < 8; i++ {
		if g.Token("prompt A", 1, i) != g.Token("prompt B", 1, i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different prompts produced identical streams")
	}
}

func TestCompletionLengthBounds(t *testing.T) {
	var g Generator
	f := func(seed int64, prompt string) bool {
		n := g.CompletionLength(prompt, seed, 0)
		return n >= 16 && n <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if n := g.CompletionLength("p", 3, 5); n != 5 {
		t.Fatalf("maxTokens cap: got %d, want 5", n)
	}
}

func TestTokenSeparators(t *testing.T) {
	var g Generator
	if strings.HasPrefix(g.Token("p", 1, 0), " ") {
		t.Fatal("first token has leading space")
	}
	if !strings.HasPrefix(g.Token("p", 1, 1), " ") {
		t.Fatal("subsequent token missing separator")
	}
}

func TestPromptText(t *testing.T) {
	got := PromptText([]openai.Message{{Role: "user", Content: "hello"}})
	if !strings.Contains(got, "user") || !strings.Contains(got, "hello") {
		t.Fatalf("PromptText = %q", got)
	}
}
