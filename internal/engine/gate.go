package engine

import (
	"context"
	"sync"
)

// Gate models the effect of the cgroup freezer on a containerized engine
// process: while paused, the process makes no forward progress — new
// requests are not accepted and in-flight decode loops stall mid-token.
// The container runtime toggles the gate when freezing/thawing the
// engine's cgroup.
type Gate struct {
	mu     sync.Mutex
	paused bool
	resume chan struct{} // closed on resume; replaced on pause
}

// NewGate returns an open (running) gate.
func NewGate() *Gate {
	g := &Gate{resume: make(chan struct{})}
	close(g.resume)
	return g
}

// Pause closes the gate: subsequent Wait calls block.
func (g *Gate) Pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.paused {
		return
	}
	g.paused = true
	g.resume = make(chan struct{})
}

// Resume opens the gate, releasing all blocked waiters.
func (g *Gate) Resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.paused {
		return
	}
	g.paused = false
	close(g.resume)
}

// Paused reports whether the gate is closed.
func (g *Gate) Paused() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.paused
}

// Wait blocks until the gate is open or ctx is cancelled.
func (g *Gate) Wait(ctx context.Context) error {
	for {
		g.mu.Lock()
		paused, resume := g.paused, g.resume
		g.mu.Unlock()
		if !paused {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-resume:
		}
	}
}
