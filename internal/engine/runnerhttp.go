package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"swapservellm/internal/openai"
)

// Handler exposes the runner manager as an Ollama-style multi-model
// server: OpenAI-compatible inference endpoints that load the requested
// model on demand (evicting LRU runners under memory pressure), plus the
// /api/ps-style listing of resident runners. This is the baseline system
// the paper compares against (§2.3, Figure 5).
func (rm *RunnerManager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", rm.serveInference)
	mux.HandleFunc("/v1/completions", rm.serveInference)
	mux.HandleFunc("/v1/models", rm.serveModels)
	mux.HandleFunc("/api/ps", rm.servePS)
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// serveInference loads the requested model's runner on demand and
// delegates the request to it.
func (rm *RunnerManager) serveInference(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "reading body: "+err.Error())
		return
	}
	var probe struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if probe.Model == "" {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "missing required field: model")
		return
	}
	eng, err := rm.Acquire(r.Context(), probe.Model)
	if err != nil {
		openai.WriteError(w, http.StatusNotFound, "model_load_error", err.Error())
		return
	}
	// Delegate to the runner's own handler with the original body.
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	eng.Handler().ServeHTTP(w, r2)
}

// serveModels lists every model the catalog can serve.
func (rm *RunnerManager) serveModels(w http.ResponseWriter, r *http.Request) {
	list := openai.ModelList{Object: "list"}
	for _, name := range rm.catalog.Names() {
		list.Data = append(list.Data, openai.ModelInfo{
			ID:      name,
			Object:  "model",
			Created: rm.clock.Now().Unix(),
			OwnedBy: "ollama",
		})
	}
	openai.WriteJSON(w, http.StatusOK, list)
}

// psEntry mirrors `ollama ps` output: a resident runner and its memory.
type psEntry struct {
	Name     string  `json:"name"`
	SizeVRAM int64   `json:"size_vram"`
	SizeGiB  float64 `json:"size_gib"`
}

// servePS reports the loaded runners, most recently used first.
func (rm *RunnerManager) servePS(w http.ResponseWriter, r *http.Request) {
	var out struct {
		Models []psEntry `json:"models"`
	}
	rm.mu.Lock()
	loadedEntries := make(map[string]*runnerEntry, len(rm.runners))
	for name, e := range rm.runners {
		if e.eng != nil {
			loadedEntries[name] = e
		}
	}
	rm.mu.Unlock()
	for _, name := range rm.Loaded() {
		e, ok := loadedEntries[name]
		if !ok {
			continue
		}
		bytes := e.eng.GPUBytes()
		out.Models = append(out.Models, psEntry{
			Name:     name,
			SizeVRAM: bytes,
			SizeGiB:  float64(bytes) / (1 << 30),
		})
	}
	openai.WriteJSON(w, http.StatusOK, out)
}
