package engine

import (
	"context"
	"net/http"

	"swapservellm/internal/perfmodel"
)

// SGLang simulates the SGLang engine: RadixAttention runtime with pooled
// KV cache and CUDA-graph capture but no torch.compile by default, giving
// it a middle-ground cold start (~22 s for LLaMA 3.1-8B, Figure 2).
type SGLang struct {
	*base
}

// DefaultSGLangMemoryUtilization mirrors SGLang's mem_fraction_static
// default.
const DefaultSGLangMemoryUtilization = 0.85

// NewSGLang constructs an SGLang engine instance.
func NewSGLang(cfg Config) (*SGLang, error) {
	if cfg.GPUMemoryUtilization == 0 {
		cfg.GPUMemoryUtilization = DefaultSGLangMemoryUtilization
	}
	b, err := newBase(perfmodel.EngineSGLang, cfg)
	if err != nil {
		return nil, err
	}
	return &SGLang{base: b}, nil
}

// Init implements Engine.
func (s *SGLang) Init(ctx context.Context) (perfmodel.InitBreakdown, error) {
	pool := int64(s.cfg.GPUMemoryUtilization * float64(s.cfg.Device.Total()))
	return s.runInit(ctx, pool)
}

// Handler implements Engine.
func (s *SGLang) Handler() http.Handler { return s.handlerWith(nil) }

var _ Engine = (*SGLang)(nil)
