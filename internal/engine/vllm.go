package engine

import (
	"context"
	"fmt"
	"net/http"

	"swapservellm/internal/openai"
	"swapservellm/internal/perfmodel"
)

// VLLM simulates the vLLM engine: PagedAttention-style pooled KV cache
// (preallocating gpu_memory_utilization of device memory — the reason
// Figure 6a's backends occupy 72–73 GB), torch.compile and CUDA-graph
// capture during initialization (Table 1), and the sleep-mode API that
// SwapServeLLM uses to shrink checkpoints (§4.2).
type VLLM struct {
	*base
	sleepLevel int
}

// DefaultVLLMMemoryUtilization mirrors vLLM's gpu_memory_utilization
// default.
const DefaultVLLMMemoryUtilization = 0.9

// NewVLLM constructs a vLLM engine instance.
func NewVLLM(cfg Config) (*VLLM, error) {
	if cfg.GPUMemoryUtilization == 0 {
		cfg.GPUMemoryUtilization = DefaultVLLMMemoryUtilization
	}
	b, err := newBase(perfmodel.EngineVLLM, cfg)
	if err != nil {
		return nil, err
	}
	return &VLLM{base: b}, nil
}

// poolBytes is the steady-state device footprint: the configured fraction
// of total device memory.
func (v *VLLM) poolBytes() int64 {
	return int64(v.cfg.GPUMemoryUtilization * float64(v.cfg.Device.Total()))
}

// Init implements Engine.
func (v *VLLM) Init(ctx context.Context) (perfmodel.InitBreakdown, error) {
	return v.runInit(ctx, v.poolBytes())
}

// Handler implements Engine, adding vLLM's sleep-mode endpoints.
func (v *VLLM) Handler() http.Handler {
	return v.handlerWith(func(mux *http.ServeMux) {
		mux.HandleFunc("/sleep", func(w http.ResponseWriter, r *http.Request) {
			level := 1
			if l := r.URL.Query().Get("level"); l == "2" {
				level = 2
			}
			if err := v.Sleep(r.Context(), level); err != nil {
				openai.WriteError(w, http.StatusConflict, "sleep_failed", err.Error())
				return
			}
			w.WriteHeader(http.StatusOK)
		})
		mux.HandleFunc("/wake_up", func(w http.ResponseWriter, r *http.Request) {
			if err := v.Wake(r.Context()); err != nil {
				openai.WriteError(w, http.StatusConflict, "wake_failed", err.Error())
				return
			}
			w.WriteHeader(http.StatusOK)
		})
	})
}

// sleepResidualBytes is what stays on the device in sleep mode: the CUDA
// context and captured graphs.
const sleepResidualBytes = int64(768) << 20

// Sleep implements Sleeper. Level 1 offloads the weights to host memory
// (a D2H copy); level 2 discards them entirely. Both discard the KV-cache
// pool, shrinking the GPU state ahead of a checkpoint.
func (v *VLLM) Sleep(ctx context.Context, level int) error {
	if level != 1 && level != 2 {
		return fmt.Errorf("vllm: invalid sleep level %d", level)
	}
	if s := v.State(); s != StateReady {
		return fmt.Errorf("vllm: sleep from state %v", s)
	}
	if level == 1 {
		// Offload weights over PCIe.
		v.cfg.Clock.Sleep(v.cfg.Testbed.D2HTime(v.cfg.Model.WeightBytes()))
	}
	if err := v.resizeEach(sleepResidualBytes); err != nil {
		return err
	}
	v.sleepLevel = level
	v.setState(StateSleeping)
	return nil
}

// Wake implements Sleeper: weights return to the device and the KV pool
// is re-reserved. Fails if another tenant claimed the memory meanwhile.
func (v *VLLM) Wake(ctx context.Context) error {
	if s := v.State(); s != StateSleeping {
		return fmt.Errorf("vllm: wake from state %v", s)
	}
	w := v.cfg.Model.WeightBytes()
	if err := v.resizeEach(v.poolBytes()); err != nil {
		return err
	}
	switch v.sleepLevel {
	case 1:
		v.cfg.Clock.Sleep(v.cfg.Testbed.H2DTime(w))
	case 2:
		// Discarded weights must be re-read from storage.
		if v.cfg.Store != nil {
			if _, err := v.cfg.Store.Read(weightBlobName(v.cfg.Model)); err != nil {
				return err
			}
		} else {
			v.cfg.Clock.Sleep(v.cfg.Testbed.StorageReadTime(v.cfg.Tier, w))
		}
		v.cfg.Clock.Sleep(v.cfg.Testbed.H2DTime(w))
	}
	v.sleepLevel = 0
	v.setState(StateReady)
	return nil
}

var _ Engine = (*VLLM)(nil)
var _ Sleeper = (*VLLM)(nil)
