package engine

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swapservellm/internal/openai"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

// readyEngine initializes a small Ollama engine and returns it with a test
// HTTP server.
func readyEngine(t *testing.T) (*Ollama, *httptest.Server, *testRig) {
	t.Helper()
	r := newRig(t)
	e, err := NewOllama(r.config(t, "h-test", "llama3.2:1b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return e, srv, r
}

func chatReq(model, text string) *openai.ChatCompletionRequest {
	seed := int64(42)
	temp := 0.0
	return &openai.ChatCompletionRequest{
		Model:       model,
		Messages:    []openai.Message{{Role: "user", Content: text}},
		Seed:        &seed,
		Temperature: &temp,
		MaxTokens:   8,
	}
}

func TestChatCompletionBlocking(t *testing.T) {
	_, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)
	resp, err := c.ChatCompletion(context.Background(), chatReq("llama3.2:1b-fp16", "Hello there"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Role != "assistant" || resp.Choices[0].Message.Content == "" {
		t.Fatalf("choice = %+v", resp.Choices[0])
	}
	if resp.Usage.CompletionTokens != 8 || resp.Choices[0].FinishReason != "length" {
		t.Fatalf("usage = %+v finish = %s", resp.Usage, resp.Choices[0].FinishReason)
	}
	if resp.Usage.PromptTokens <= 0 {
		t.Fatal("prompt tokens not counted")
	}
}

func TestChatCompletionDeterministic(t *testing.T) {
	// §5.1: temperature 0 and a fixed seed must give identical outputs.
	_, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)
	var outs []string
	for i := 0; i < 2; i++ {
		resp, err := c.ChatCompletion(context.Background(), chatReq("llama3.2:1b-fp16", "determinism test"))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, resp.Choices[0].Message.Content)
	}
	if outs[0] != outs[1] {
		t.Fatalf("non-deterministic output: %q vs %q", outs[0], outs[1])
	}
}

func TestChatCompletionDifferentSeeds(t *testing.T) {
	_, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)
	get := func(seed int64) string {
		req := chatReq("llama3.2:1b-fp16", "seed test")
		req.Seed = &seed
		req.MaxTokens = 32
		resp, err := c.ChatCompletion(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Choices[0].Message.Content
	}
	if get(1) == get(99999) {
		t.Fatal("different seeds produced identical output (suspicious)")
	}
}

func TestChatCompletionStreaming(t *testing.T) {
	_, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)
	var chunks []string
	var sawFinish bool
	var usage *openai.Usage
	err := c.ChatCompletionStream(context.Background(), chatReq("llama3.2:1b-fp16", "stream me"),
		func(ch *openai.ChatCompletionChunk) error {
			if len(ch.Choices) > 0 {
				if ch.Choices[0].Delta.Content != "" {
					chunks = append(chunks, ch.Choices[0].Delta.Content)
				}
				if ch.Choices[0].FinishReason != nil {
					sawFinish = true
				}
			}
			if ch.Usage != nil {
				usage = ch.Usage
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 8 {
		t.Fatalf("got %d content chunks, want 8", len(chunks))
	}
	if !sawFinish || usage == nil || usage.CompletionTokens != 8 {
		t.Fatalf("finish=%v usage=%+v", sawFinish, usage)
	}
}

func TestStreamMatchesBlocking(t *testing.T) {
	_, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)
	blocking, err := c.ChatCompletion(context.Background(), chatReq("llama3.2:1b-fp16", "same output"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = c.ChatCompletionStream(context.Background(), chatReq("llama3.2:1b-fp16", "same output"),
		func(ch *openai.ChatCompletionChunk) error {
			if len(ch.Choices) > 0 {
				sb.WriteString(ch.Choices[0].Delta.Content)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != blocking.Choices[0].Message.Content {
		t.Fatalf("stream %q != blocking %q", sb.String(), blocking.Choices[0].Message.Content)
	}
}

func TestWrongModelRejected(t *testing.T) {
	_, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)
	_, err := c.ChatCompletion(context.Background(), chatReq("gemma3:4b-fp16", "hi"))
	apiErr, ok := err.(*openai.APIError)
	if !ok || !strings.Contains(apiErr.Message, "not served") {
		t.Fatalf("err = %v", err)
	}
}

func TestNotReadyRejected(t *testing.T) {
	r := newRig(t)
	e, _ := NewOllama(r.config(t, "h-notready", "llama3.2:1b-fp16"))
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	c := openai.NewClient(srv.URL)
	if _, err := c.ChatCompletion(context.Background(), chatReq("llama3.2:1b-fp16", "hi")); err == nil {
		t.Fatal("request to uninitialized engine accepted")
	}
	// Health must also be unavailable.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.WaitHealthy(ctx, 5*time.Millisecond); err == nil {
		t.Fatal("health check passed for uninitialized engine")
	}
}

func TestHealthWhenReady(t *testing.T) {
	_, srv, _ := readyEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := openai.NewClient(srv.URL).WaitHealthy(ctx, time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestListModels(t *testing.T) {
	_, srv, _ := readyEngine(t)
	list, err := openai.NewClient(srv.URL).ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Data) != 1 || list.Data[0].ID != "llama3.2:1b-fp16" {
		t.Fatalf("models = %+v", list)
	}
}

func TestMalformedRequests(t *testing.T) {
	_, srv, _ := readyEngine(t)
	// Malformed JSON body.
	resp, err := srv.Client().Post(srv.URL+"/v1/chat/completions", "application/json",
		strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON status = %d", resp.StatusCode)
	}
	// GET instead of POST.
	resp, err = srv.Client().Get(srv.URL + "/v1/chat/completions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestFrozenEngineBlocksRequests(t *testing.T) {
	e, srv, _ := readyEngine(t)
	e.Gate().Pause()

	done := make(chan error, 1)
	go func() {
		_, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(),
			chatReq("llama3.2:1b-fp16", "frozen"))
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("request to frozen engine completed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	e.Gate().Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("request after thaw failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not complete after thaw")
	}
}

func TestFreezeMidDecodeStallsStream(t *testing.T) {
	e, srv, _ := readyEngine(t)
	c := openai.NewClient(srv.URL)

	var mu sync.Mutex
	var count int
	started := make(chan struct{})
	done := make(chan error, 1)
	req := chatReq("llama3.2:1b-fp16", "long stream")
	req.MaxTokens = 64
	go func() {
		var once sync.Once
		done <- c.ChatCompletionStream(context.Background(), req, func(ch *openai.ChatCompletionChunk) error {
			mu.Lock()
			count++
			mu.Unlock()
			once.Do(func() { close(started) })
			return nil
		})
	}()

	<-started
	e.Gate().Pause()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	frozenAt := count
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	stillAt := count
	mu.Unlock()
	// Allow one in-flight chunk to land after the freeze, but no more.
	if stillAt > frozenAt+1 {
		t.Fatalf("stream advanced while frozen: %d -> %d", frozenAt, stillAt)
	}
	e.Gate().Resume()
	if err := <-done; err != nil {
		t.Fatalf("stream failed after thaw: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count < 64 {
		t.Fatalf("stream delivered %d chunks, want >= 64", count)
	}
}

func TestCancelledClientAbandonsDecode(t *testing.T) {
	_, srv, _ := readyEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	req := chatReq("llama3.2:1b-fp16", "cancel me")
	req.MaxTokens = 0 // natural length: decent number of tokens
	done := make(chan error, 1)
	go func() {
		done <- openai.NewClient(srv.URL).ChatCompletionStream(ctx, req,
			func(*openai.ChatCompletionChunk) error { return nil })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Log("stream completed before cancellation (fast decode); acceptable")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stream did not return")
	}
}

func TestBusyTrackingDuringDecode(t *testing.T) {
	// A mildly-scaled clock keeps the decode slow enough to observe.
	r := newRig(t)
	r.clock = simclock.NewScaled(testEpoch, 50)
	r.store = storage.NewModelStore(r.clock, r.tb)
	e, err := NewOllama(r.config(t, "busy-test", "llama3.2:1b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	req := chatReq("llama3.2:1b-fp16", "busy test")
	req.MaxTokens = 200
	done := make(chan error, 1)
	go func() {
		_, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(), req)
		done <- err
	}()
	// Utilization must rise above zero while decoding.
	deadline := time.After(5 * time.Second)
	for r.device.Utilization() == 0 {
		select {
		case <-deadline:
			t.Fatal("device never became busy")
		case err := <-done:
			t.Fatalf("request finished before busy observed: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if u := r.device.Utilization(); u != 0 {
		t.Fatalf("utilization after decode = %v", u)
	}
	_ = e
}
