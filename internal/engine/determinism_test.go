package engine

import (
	"context"
	"net/http/httptest"
	"testing"

	"swapservellm/internal/models"
	"swapservellm/internal/openai"
	"swapservellm/internal/perfmodel"
)

// TestCrossEngineDeterminism: with temperature 0 and a fixed seed, every
// engine produces the same completion for the same model and prompt —
// the generation model is engine-agnostic, as §5.1's setup requires for
// comparable measurements.
func TestCrossEngineDeterminism(t *testing.T) {
	outputs := make(map[perfmodel.EngineKind]string)
	for _, kind := range []perfmodel.EngineKind{
		perfmodel.EngineVLLM, perfmodel.EngineOllama, perfmodel.EngineSGLang, perfmodel.EngineTRTLLM,
	} {
		r := newRig(t)
		e, err := New(kind, r.config(t, "det-"+string(kind), "llama3.2:1b-fp16"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Init(context.Background()); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(e.Handler())
		seed := int64(1234)
		temp := 0.0
		resp, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(),
			&openai.ChatCompletionRequest{
				Model:       "llama3.2:1b-fp16",
				Messages:    []openai.Message{{Role: "user", Content: "deterministic?"}},
				Seed:        &seed,
				Temperature: &temp,
				MaxTokens:   12,
			})
		srv.Close()
		e.Shutdown()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		outputs[kind] = resp.Choices[0].Message.Content
	}
	ref := outputs[perfmodel.EngineVLLM]
	if ref == "" {
		t.Fatal("empty completion")
	}
	for kind, out := range outputs {
		if out != ref {
			t.Errorf("%s output diverged: %q vs %q", kind, out, ref)
		}
	}
}

// TestOllamaContextTokensSizeFootprint: larger configured contexts grow
// the runner's KV allocation.
func TestOllamaContextTokensSizeFootprint(t *testing.T) {
	small := OllamaFootprint(mustModel(t, "llama3.1:8b-fp16"), 2048)
	large := OllamaFootprint(mustModel(t, "llama3.1:8b-fp16"), 65536)
	if large <= small {
		t.Fatalf("footprint did not grow with context: %d vs %d", small, large)
	}
	// 65536 tokens × 128 KiB/token ≈ 8 GiB more than the 2048-token cache.
	delta := float64(large-small) / float64(gib)
	if delta < 7 || delta > 9 {
		t.Fatalf("KV delta = %.2f GiB, want ~7.9", delta)
	}
}

func mustModel(t *testing.T, name string) models.Model {
	t.Helper()
	return models.Default().MustLookup(name)
}
