package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestGateOpenByDefault(t *testing.T) {
	g := NewGate()
	if g.Paused() {
		t.Fatal("new gate is paused")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := g.Wait(ctx); err != nil {
		t.Fatalf("Wait on open gate: %v", err)
	}
}

func TestGatePauseBlocks(t *testing.T) {
	g := NewGate()
	g.Pause()
	if !g.Paused() {
		t.Fatal("Pause did not take effect")
	}
	released := make(chan struct{})
	go func() {
		g.Wait(context.Background())
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Wait returned while paused")
	case <-time.After(20 * time.Millisecond):
	}
	g.Resume()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after Resume")
	}
}

func TestGateWaitContextCancel(t *testing.T) {
	g := NewGate()
	g.Pause()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Wait(ctx); err == nil {
		t.Fatal("Wait ignored context cancellation")
	}
}

func TestGateIdempotentTransitions(t *testing.T) {
	g := NewGate()
	g.Pause()
	g.Pause() // no-op
	g.Resume()
	g.Resume() // no-op
	if g.Paused() {
		t.Fatal("gate paused after resume")
	}
}

func TestGateRepeatedCycles(t *testing.T) {
	g := NewGate()
	for i := 0; i < 10; i++ {
		g.Pause()
		g.Resume()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := g.Wait(ctx); err != nil {
		t.Fatalf("Wait after cycles: %v", err)
	}
}

func TestGateManyWaiters(t *testing.T) {
	g := NewGate()
	g.Pause()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Wait(context.Background())
		}()
	}
	time.Sleep(10 * time.Millisecond)
	g.Resume()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("not all waiters released")
	}
}

func TestGatePauseWhileWaiting(t *testing.T) {
	// A waiter that catches a Resume immediately followed by a Pause must
	// re-block (the loop re-checks).
	g := NewGate()
	g.Pause()
	entered := make(chan struct{})
	released := make(chan struct{})
	go func() {
		close(entered)
		g.Wait(context.Background())
		close(released)
	}()
	<-entered
	time.Sleep(5 * time.Millisecond)
	g.Resume()
	g.Pause() // immediately re-pause; the waiter may or may not escape
	select {
	case <-released:
		// Escaped through the open window: legal.
	case <-time.After(30 * time.Millisecond):
		// Still blocked: also legal. Release it.
		g.Resume()
		<-released
	}
}
