package engine

import (
	"context"
	"net/http"

	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// Ollama simulates the Ollama engine: a lightweight llama.cpp runner per
// model that skips compilation and graph capture (fast loads, lower
// decode throughput — §2.3), and allocates GPU memory proportional to the
// model rather than preallocating a pool. The multi-model runner
// scheduler with LRU unloading lives in RunnerManager.
type Ollama struct {
	*base
}

// NewOllama constructs an Ollama runner for one model.
func NewOllama(cfg Config) (*Ollama, error) {
	b, err := newBase(perfmodel.EngineOllama, cfg)
	if err != nil {
		return nil, err
	}
	return &Ollama{base: b}, nil
}

// OllamaFootprint returns the steady-state GPU bytes an Ollama runner
// needs for the model with a KV cache of ctxTokens tokens: weights + KV +
// CUDA context and compute buffers. Fitted to Figure 6b's reported usage
// (3.6 GB for LLaMA 3.2 1B FP16, 30.5 GB for DS-R1 14B FP16).
func OllamaFootprint(m models.Model, ctxTokens int) int64 {
	if ctxTokens <= 0 {
		ctxTokens = 2048 * 4
	}
	w := m.WeightBytes()
	overhead := int64(models.GiB)*9/10 + w/25 // 0.9 GiB + 4% of weights
	return w + m.KVCacheBytes(ctxTokens) + overhead
}

// Init implements Engine.
func (o *Ollama) Init(ctx context.Context) (perfmodel.InitBreakdown, error) {
	perDevice := OllamaFootprint(o.cfg.Model, o.cfg.ContextTokens) / int64(len(o.cfg.Devices))
	return o.runInit(ctx, perDevice)
}

// Handler implements Engine.
func (o *Ollama) Handler() http.Handler { return o.handlerWith(nil) }

var _ Engine = (*Ollama)(nil)
