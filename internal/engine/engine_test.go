package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

const gib = int64(1) << 30

var testEpoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

// testRig bundles the substrates an engine needs.
type testRig struct {
	clock  *simclock.Scaled
	tb     perfmodel.Testbed
	device *gpu.Device
	store  *storage.ModelStore
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 2000) // fast: unit tests only check behaviour
	tb := perfmodel.H100()
	return &testRig{
		clock:  clock,
		tb:     tb,
		device: gpu.NewDevice(0, tb.GPU, tb.GPUMemBytes),
		store:  storage.NewModelStore(clock, tb),
	}
}

func (r *testRig) config(t *testing.T, owner, modelName string) Config {
	t.Helper()
	m := models.Default().MustLookup(modelName)
	if err := StageWeights(r.store, perfmodel.TierDisk, m); err != nil {
		t.Fatal(err)
	}
	return Config{
		Owner:   owner,
		Model:   m,
		Testbed: r.tb,
		Clock:   r.clock,
		Device:  r.device,
		Store:   r.store,
		Tier:    perfmodel.TierDisk,
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t)
	m := models.Default().MustLookup("llama3.2:1b-fp16")
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing owner", Config{Model: m, Clock: r.clock, Device: r.device}},
		{"missing model", Config{Owner: "o", Clock: r.clock, Device: r.device}},
		{"missing clock", Config{Owner: "o", Model: m, Device: r.device}},
		{"missing device", Config{Owner: "o", Model: m, Clock: r.clock}},
	}
	for _, c := range cases {
		if _, err := NewVLLM(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFactory(t *testing.T) {
	r := newRig(t)
	for _, kind := range []perfmodel.EngineKind{
		perfmodel.EngineVLLM, perfmodel.EngineOllama, perfmodel.EngineSGLang, perfmodel.EngineTRTLLM,
	} {
		e, err := New(kind, r.config(t, "f-"+string(kind), "llama3.2:1b-fp16"))
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		if e.Kind() != kind {
			t.Errorf("Kind = %s, want %s", e.Kind(), kind)
		}
		if e.State() != StateCreated {
			t.Errorf("%s initial state = %v", kind, e.State())
		}
	}
	if _, err := New("llamafile", r.config(t, "x", "llama3.2:1b-fp16")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestVLLMInitAllocatesPool(t *testing.T) {
	r := newRig(t)
	e, err := NewVLLM(r.config(t, "vllm-1", "llama3.2:1b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	bd, err := e.Init(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if e.State() != StateReady {
		t.Fatalf("state = %v", e.State())
	}
	// vLLM preallocates 90% of the 80 GiB device — the Figure 6a footprint.
	if got := e.GPUBytes(); got != 72*gib {
		t.Fatalf("GPU footprint = %d, want %d", got, 72*gib)
	}
	// Table 1 anchor for llama3.2:1b-fp16: total 34.14s.
	if total := bd.Total().Seconds(); total < 33 || total > 36 {
		t.Fatalf("init breakdown total = %v", total)
	}
}

func TestVLLMInitTakesSimulatedTime(t *testing.T) {
	r := newRig(t)
	e, _ := NewVLLM(r.config(t, "vllm-t", "llama3.2:1b-fp16"))
	t0 := r.clock.Now()
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := r.clock.Since(t0)
	// Table 1: ~34s of engine init for the 1B model.
	if elapsed < 30*time.Second || elapsed > 60*time.Second {
		t.Fatalf("init took %v simulated, want ~34s", elapsed)
	}
}

func TestOllamaInitFootprint(t *testing.T) {
	r := newRig(t)
	e, err := NewOllama(r.config(t, "ollama-1", "llama3.2:1b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Figure 6b: LLaMA 3.2 1B FP16 uses ~3.6 GB under Ollama.
	got := float64(e.GPUBytes()) / float64(gib)
	if got < 3.0 || got > 4.2 {
		t.Fatalf("Ollama 1B footprint = %.2f GiB, want ~3.6", got)
	}
}

func TestOllama14BFootprint(t *testing.T) {
	r := newRig(t)
	e, _ := NewOllama(r.config(t, "ollama-14b", "deepseek-r1:14b-fp16"))
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Figure 6b: DS-R1 14B FP16 uses ~30.5 GB under Ollama.
	got := float64(e.GPUBytes()) / float64(gib)
	if got < 28 || got > 33 {
		t.Fatalf("Ollama 14B footprint = %.2f GiB, want ~30.5", got)
	}
}

func TestInitFromWrongState(t *testing.T) {
	r := newRig(t)
	e, _ := NewOllama(r.config(t, "o-dup", "llama3.2:1b-fp16"))
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err == nil {
		t.Fatal("double Init accepted")
	}
}

func TestInitOOMCleansUp(t *testing.T) {
	r := newRig(t)
	// Fill the device so the weights cannot be placed.
	r.device.Alloc("squatter", 79*gib)
	e, _ := NewVLLM(r.config(t, "v-oom", "deepseek-r1:14b-fp16"))
	if _, err := e.Init(context.Background()); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if e.State() != StateStopped {
		t.Fatalf("state after failed init = %v", e.State())
	}
	if got := r.device.OwnerUsage("v-oom"); got != 0 {
		t.Fatalf("leaked %d bytes after failed init", got)
	}
}

func TestInitMissingWeights(t *testing.T) {
	r := newRig(t)
	m := models.Default().MustLookup("llama3.2:1b-fp16")
	cfg := Config{
		Owner: "no-weights", Model: m, Testbed: r.tb, Clock: r.clock,
		Device: r.device, Store: r.store, Tier: perfmodel.TierDisk,
	}
	e, _ := NewVLLM(cfg)
	if _, err := e.Init(context.Background()); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("expected ErrNotFound for missing weights, got %v", err)
	}
}

func TestInitCancellation(t *testing.T) {
	r := newRig(t)
	e, _ := NewVLLM(r.config(t, "v-cancel", "llama3.1:8b-fp16"))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel partway through the (simulated ~87s) init.
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := e.Init(ctx); err == nil {
		t.Fatal("cancelled init returned nil error")
	}
	if e.State() != StateStopped {
		t.Fatalf("state = %v", e.State())
	}
	if got := r.device.OwnerUsage("v-cancel"); got != 0 {
		t.Fatalf("leaked %d bytes after cancelled init", got)
	}
}

func TestShutdownFreesMemory(t *testing.T) {
	r := newRig(t)
	e, _ := NewOllama(r.config(t, "o-down", "llama3.2:1b-fp16"))
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateStopped {
		t.Fatalf("state = %v", e.State())
	}
	if r.device.OwnerUsage("o-down") != 0 {
		t.Fatal("GPU memory not freed on shutdown")
	}
	// Idempotent.
	if err := e.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestAnalyticLoadWithoutStore(t *testing.T) {
	// Engines configured without a model store time the load phase
	// analytically.
	r := newRig(t)
	m := models.Default().MustLookup("llama3.2:1b-fp16")
	e, err := NewOllama(Config{
		Owner: "analytic", Model: m, Testbed: r.tb, Clock: r.clock, Device: r.device,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateReady {
		t.Fatalf("state = %v", e.State())
	}
}

func TestVLLMSleepWake(t *testing.T) {
	r := newRig(t)
	e, _ := NewVLLM(r.config(t, "v-sleep", "llama3.2:1b-fp16"))
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	full := e.GPUBytes()
	if err := e.Sleep(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateSleeping {
		t.Fatalf("state = %v", e.State())
	}
	slept := e.GPUBytes()
	if slept >= full/10 {
		t.Fatalf("sleep kept %d of %d bytes on device", slept, full)
	}
	if err := e.Wake(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateReady || e.GPUBytes() != full {
		t.Fatalf("wake state=%v bytes=%d want ready/%d", e.State(), e.GPUBytes(), full)
	}
}

func TestVLLMSleepLevel2(t *testing.T) {
	r := newRig(t)
	e, _ := NewVLLM(r.config(t, "v-sleep2", "llama3.2:1b-fp16"))
	e.Init(context.Background())
	if err := e.Sleep(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Wake(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.State() != StateReady {
		t.Fatalf("state = %v", e.State())
	}
}

func TestVLLMSleepErrors(t *testing.T) {
	r := newRig(t)
	e, _ := NewVLLM(r.config(t, "v-sleep-e", "llama3.2:1b-fp16"))
	if err := e.Sleep(context.Background(), 1); err == nil {
		t.Error("sleep before init accepted")
	}
	e.Init(context.Background())
	if err := e.Sleep(context.Background(), 3); err == nil {
		t.Error("invalid sleep level accepted")
	}
	if err := e.Wake(context.Background()); err == nil {
		t.Error("wake while ready accepted")
	}
	if err := e.Sleep(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Sleep(context.Background(), 1); err == nil {
		t.Error("double sleep accepted")
	}
}

func TestVLLMWakeBlockedByTenant(t *testing.T) {
	r := newRig(t)
	e, _ := NewVLLM(r.config(t, "v-blocked", "llama3.2:1b-fp16"))
	e.Init(context.Background())
	if err := e.Sleep(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Another tenant takes the freed memory.
	if err := r.device.Alloc("tenant", 70*gib); err != nil {
		t.Fatal(err)
	}
	if err := e.Wake(context.Background()); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("expected OOM on wake, got %v", err)
	}
	r.device.FreeOwner("tenant")
	if err := e.Wake(context.Background()); err != nil {
		t.Fatalf("wake after space freed: %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateCreated: "created", StateInitializing: "initializing",
		StateReady: "ready", StateSleeping: "sleeping", StateStopped: "stopped",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestStageWeightsIdempotent(t *testing.T) {
	r := newRig(t)
	m := models.Default().MustLookup("gemma3:4b-fp16")
	if err := StageWeights(r.store, perfmodel.TierDisk, m); err != nil {
		t.Fatal(err)
	}
	if err := StageWeights(r.store, perfmodel.TierDisk, m); err != nil {
		t.Fatalf("re-staging failed: %v", err)
	}
	if _, err := r.store.Stat(WeightBlobName(m)); err != nil {
		t.Fatal(err)
	}
}

func TestInitCacheSkipsCompile(t *testing.T) {
	r := newRig(t)
	cache := NewInitCache()
	cfg := r.config(t, "cache-1", "llama3.1:8b-fp16")
	cfg.InitCache = cache
	e1, _ := NewVLLM(cfg)
	bd1, err := e1.Init(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bd1.Compile <= 0 {
		t.Fatal("first init skipped compile despite cold cache")
	}
	e1.Shutdown()
	if cache.Len() != 1 {
		t.Fatalf("cache entries = %d", cache.Len())
	}

	cfg2 := r.config(t, "cache-2", "llama3.1:8b-fp16")
	cfg2.InitCache = cache
	e2, _ := NewVLLM(cfg2)
	t0 := r.clock.Now()
	bd2, err := e2.Init(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := r.clock.Since(t0)
	if bd2.Compile != 0 {
		t.Fatalf("warm-cache compile = %v, want 0", bd2.Compile)
	}
	if cache.Hits() != 1 {
		t.Fatalf("hits = %d", cache.Hits())
	}
	// The saved time is real: second init runs ~29s faster (Table 1's
	// compile column for L3.1-8B).
	saved := bd1.Total() - bd2.Total()
	if saved < 25*time.Second {
		t.Fatalf("warm cache saved only %v", saved)
	}
	if elapsed >= bd1.Total() {
		t.Fatalf("warm init took %v, not faster than cold %v", elapsed, bd1.Total())
	}
	// CUDA graphs are NOT cacheable: the phase still runs.
	if bd2.CUDAGraph != bd1.CUDAGraph {
		t.Fatalf("graph capture changed: %v vs %v", bd2.CUDAGraph, bd1.CUDAGraph)
	}
}

func TestInitCacheKeyedByModel(t *testing.T) {
	r := newRig(t)
	cache := NewInitCache()
	cfg := r.config(t, "cachek-1", "llama3.2:1b-fp16")
	cfg.InitCache = cache
	e1, _ := NewVLLM(cfg)
	e1.Init(context.Background())
	e1.Shutdown()
	// A different model misses.
	cfg2 := r.config(t, "cachek-2", "llama3.2:3b-fp16")
	cfg2.InitCache = cache
	e2, _ := NewVLLM(cfg2)
	bd, err := e2.Init(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Compile == 0 {
		t.Fatal("cache hit across different models")
	}
	if cache.Len() != 2 {
		t.Fatalf("entries = %d", cache.Len())
	}
}

func TestInitCacheNilSafe(t *testing.T) {
	var c *InitCache
	m := models.Default().MustLookup("llama3.2:1b-fp16")
	if c.Warm(perfmodel.EngineVLLM, m, perfmodel.GPUH100) {
		t.Fatal("nil cache reported warm")
	}
	c.Record(perfmodel.EngineVLLM, m, perfmodel.GPUH100) // must not panic
	if c.Hits() != 0 || c.Len() != 0 {
		t.Fatal("nil cache accounting wrong")
	}
}
