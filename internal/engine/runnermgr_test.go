package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

// smallDeviceManager builds a runner manager over a deliberately small
// GPU so eviction triggers quickly.
func smallDeviceManager(t *testing.T, deviceBytes int64) (*RunnerManager, *gpu.Device) {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 5000)
	tb := perfmodel.H100()
	dev := gpu.NewDevice(0, tb.GPU, deviceBytes)
	store := storage.NewModelStore(clock, tb)
	cat := models.Default()
	var ms []models.Model
	for _, name := range cat.Names() {
		ms = append(ms, cat.MustLookup(name))
	}
	if err := StageWeights(store, perfmodel.TierDisk, ms...); err != nil {
		t.Fatal(err)
	}
	return NewRunnerManager(clock, tb, dev, store, perfmodel.TierDisk, cat), dev
}

func TestRunnerLoadsOnDemand(t *testing.T) {
	rm, dev := smallDeviceManager(t, 80*gib)
	eng, err := rm.Acquire(context.Background(), "llama3.2:1b-fp16")
	if err != nil {
		t.Fatal(err)
	}
	if eng.State() != StateReady {
		t.Fatalf("state = %v", eng.State())
	}
	if dev.Used() == 0 {
		t.Fatal("no GPU memory in use after load")
	}
	if got := rm.Loaded(); len(got) != 1 || got[0] != "llama3.2:1b-fp16" {
		t.Fatalf("Loaded = %v", got)
	}
}

func TestRunnerReuse(t *testing.T) {
	rm, _ := smallDeviceManager(t, 80*gib)
	a, err := rm.Acquire(context.Background(), "llama3.2:1b-fp16")
	if err != nil {
		t.Fatal(err)
	}
	b, err := rm.Acquire(context.Background(), "llama3.2:1b-fp16")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Acquire created a new runner")
	}
}

func TestRunnerUnknownModel(t *testing.T) {
	rm, _ := smallDeviceManager(t, 80*gib)
	if _, err := rm.Acquire(context.Background(), "gpt-oss:999b"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunnerLRUEviction(t *testing.T) {
	// 9 GiB device: 1B-q4 (~1.9 GiB) and 1.5B-q4 (~2 GiB) fit together, but
	// a 7B-q4 (~5.5 GiB) forces the LRU runner out.
	rm, _ := smallDeviceManager(t, 9*gib)
	ctx := context.Background()
	if _, err := rm.Acquire(ctx, "llama3.2:1b-q4"); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Acquire(ctx, "deepseek-r1:1.5b-q4"); err != nil {
		t.Fatal(err)
	}
	// Touch the 1B so the 1.5B becomes LRU.
	if _, err := rm.Acquire(ctx, "llama3.2:1b-q4"); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Acquire(ctx, "deepseek-r1:7b-q4"); err != nil {
		t.Fatal(err)
	}
	loaded := rm.Loaded()
	for _, name := range loaded {
		if name == "deepseek-r1:1.5b-q4" {
			t.Fatalf("LRU runner not evicted: %v", loaded)
		}
	}
	found := false
	for _, name := range loaded {
		if name == "llama3.2:1b-q4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recently used runner evicted: %v", loaded)
	}
}

func TestRunnerModelTooLarge(t *testing.T) {
	rm, _ := smallDeviceManager(t, 4*gib)
	_, err := rm.Acquire(context.Background(), "deepseek-r1:14b-fp16")
	if !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("expected ErrModelTooLarge, got %v", err)
	}
}

func TestRunnerConcurrentAcquireSameModel(t *testing.T) {
	rm, _ := smallDeviceManager(t, 80*gib)
	const n = 8
	engines := make([]*Ollama, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := rm.Acquire(context.Background(), "llama3.2:1b-fp16")
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			engines[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent Acquire created multiple runners for one model")
		}
	}
}

func TestRunnerShutdown(t *testing.T) {
	rm, dev := smallDeviceManager(t, 80*gib)
	rm.Acquire(context.Background(), "llama3.2:1b-fp16")
	rm.Acquire(context.Background(), "deepseek-r1:1.5b-q4")
	rm.Shutdown()
	if len(rm.Loaded()) != 0 {
		t.Fatal("runners still loaded after shutdown")
	}
	if dev.Used() != 0 {
		t.Fatalf("GPU memory leaked: %d", dev.Used())
	}
}

func TestRunnerEvictionOrderMultiple(t *testing.T) {
	// Load three small models then demand one that requires evicting two.
	rm, _ := smallDeviceManager(t, 12*gib)
	ctx := context.Background()
	for _, name := range []string{"llama3.2:1b-q4", "deepseek-r1:1.5b-q4", "deepseek-r1:1.5b-q8"} {
		if _, err := rm.Acquire(ctx, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := rm.Acquire(ctx, "llama3.1:8b-q4"); err != nil {
		t.Fatalf("8b: %v", err)
	}
	loaded := rm.Loaded()
	if len(loaded) == 0 || loaded[0] != "llama3.1:8b-q4" {
		t.Fatalf("expected 8b most-recent, got %v", loaded)
	}
}
