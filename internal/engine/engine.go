// Package engine implements the four simulated inference engines that
// SwapServeLLM integrates (§4): vLLM, Ollama, SGLang, and TensorRT-LLM.
// Each engine reproduces the initialization phases, GPU memory behaviour,
// and serving characteristics that the paper measures — weight loading
// from a storage tier, torch.compile and CUDA-graph capture phases,
// KV-cache reservation policy, OpenAI-compatible HTTP serving with
// autoregressive decoding, and engine-specific features such as vLLM's
// sleep mode and Ollama's llama.cpp runner scheduler.
package engine

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

// State is an engine's lifecycle state.
type State int32

// Engine states.
const (
	StateCreated State = iota
	StateInitializing
	StateReady
	StateSleeping // vLLM sleep mode: weights offloaded to host
	StateStopped
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateInitializing:
		return "initializing"
	case StateReady:
		return "ready"
	case StateSleeping:
		return "sleeping"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Errors returned by engines.
var (
	ErrNotReady   = errors.New("engine: not ready")
	ErrStopped    = errors.New("engine: stopped")
	ErrBadRequest = errors.New("engine: bad request")
)

// Config parameterizes an engine instance.
type Config struct {
	// Owner is the GPU-allocation owner identity, conventionally the
	// container ID the engine runs in.
	Owner string
	// Model is the model this engine instance serves.
	Model models.Model
	// Testbed supplies the calibrated performance model.
	Testbed perfmodel.Testbed
	// Clock is the simulation clock.
	Clock simclock.Clock
	// Device is the GPU the engine allocates on (the first shard for
	// tensor-parallel configurations).
	Device *gpu.Device
	// Devices, when set, is the tensor-parallel topology: weights and
	// KV pools are split evenly across the listed GPUs (§6, Multi-GPU
	// Orchestration). Defaults to [Device].
	Devices []*gpu.Device
	// Store holds the model weights; when nil the load phase is timed
	// analytically from Tier.
	Store *storage.ModelStore
	// Tier is the storage tier weights are read from (default disk).
	Tier perfmodel.StorageTier
	// GPUMemoryUtilization is the fraction of device memory preallocated
	// by engines with pooled KV caches (vLLM/SGLang/TensorRT-LLM).
	// Zero selects the engine's default.
	GPUMemoryUtilization float64
	// ContextTokens sizes the KV cache for engines that allocate per
	// context (Ollama). Zero selects the engine default (2048 tokens ×
	// 4 parallel slots).
	ContextTokens int
	// InitCache, when set, shares compilation artifacts across cold
	// starts: vLLM's torch.compile cache / TensorRT-LLM engine plans. A
	// warm entry skips the compile phase.
	InitCache *InitCache
}

// validate fills defaults and rejects unusable configurations.
func (c *Config) validate() error {
	if c.Owner == "" {
		return errors.New("engine: config missing Owner")
	}
	if c.Model.Name == "" {
		return errors.New("engine: config missing Model")
	}
	if c.Clock == nil {
		return errors.New("engine: config missing Clock")
	}
	if c.Device == nil && len(c.Devices) > 0 {
		c.Device = c.Devices[0]
	}
	if c.Device == nil {
		return errors.New("engine: config missing Device")
	}
	if len(c.Devices) == 0 {
		c.Devices = []*gpu.Device{c.Device}
	}
	if c.Tier == "" {
		c.Tier = perfmodel.TierDisk
	}
	if c.ContextTokens == 0 {
		c.ContextTokens = 2048 * 4
	}
	return nil
}

// Engine is a simulated inference engine serving one model over an
// OpenAI-compatible HTTP interface.
type Engine interface {
	// Kind identifies the engine implementation.
	Kind() perfmodel.EngineKind
	// Model returns the served model.
	Model() models.Model
	// State returns the lifecycle state.
	State() State
	// Init performs the engine's cold-start initialization: loading
	// weights, compilation, graph capture, and GPU memory reservation.
	// It blocks in simulated time and returns the phase breakdown.
	Init(ctx context.Context) (perfmodel.InitBreakdown, error)
	// Handler returns the engine's HTTP interface.
	Handler() http.Handler
	// GPUBytes reports the engine's current device memory usage, summed
	// across tensor-parallel shards.
	GPUBytes() int64
	// Device returns the engine's primary GPU (the first shard).
	Device() *gpu.Device
	// Devices returns the engine's full GPU topology.
	Devices() []*gpu.Device
	// Gate is the execution gate toggled by the cgroup freezer.
	Gate() *Gate
	// Shutdown stops the engine and releases its GPU memory.
	Shutdown() error
}

// Sleeper is implemented by engines that support vLLM-style sleep mode
// (§4.2): offloading weights to host memory and discarding the KV cache
// to shrink the GPU state before a checkpoint.
type Sleeper interface {
	// Sleep enters sleep mode at the given level (1 = offload weights,
	// keep them in host RAM; 2 = discard weights entirely).
	Sleep(ctx context.Context, level int) error
	// Wake restores the engine to the ready state.
	Wake(ctx context.Context) error
}

// base carries the state shared by the four engine implementations.
type base struct {
	cfg  Config
	kind perfmodel.EngineKind

	state atomic.Int32
	gate  *Gate

	mu        sync.Mutex
	breakdown perfmodel.InitBreakdown
	active    atomic.Int32 // in-flight requests, for busy accounting
	reqSeq    atomic.Int64
}

func newBase(kind perfmodel.EngineKind, cfg Config) (*base, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &base{cfg: cfg, kind: kind, gate: NewGate()}
	b.state.Store(int32(StateCreated))
	return b, nil
}

// Kind implements Engine.
func (b *base) Kind() perfmodel.EngineKind { return b.kind }

// Model implements Engine.
func (b *base) Model() models.Model { return b.cfg.Model }

// State implements Engine.
func (b *base) State() State { return State(b.state.Load()) }

// Gate implements Engine.
func (b *base) Gate() *Gate { return b.gate }

// GPUBytes implements Engine.
func (b *base) GPUBytes() int64 {
	var total int64
	for _, d := range b.cfg.Devices {
		total += d.OwnerUsage(b.cfg.Owner)
	}
	return total
}

// Device implements Engine.
func (b *base) Device() *gpu.Device { return b.cfg.Device }

// Devices implements Engine.
func (b *base) Devices() []*gpu.Device { return b.cfg.Devices }

// allocEach reserves bytes split evenly across the engine's shards, with
// the remainder on the first. On failure, partial allocations are rolled
// back.
func (b *base) allocEach(total int64) error {
	n := int64(len(b.cfg.Devices))
	per := total / n
	rem := total - per*n
	for i, d := range b.cfg.Devices {
		want := per
		if i == 0 {
			want += rem
		}
		if err := d.Alloc(b.cfg.Owner, want); err != nil {
			for _, prev := range b.cfg.Devices[:i] {
				prev.FreeOwner(b.cfg.Owner)
			}
			return err
		}
	}
	return nil
}

// resizeEach sets each shard's allocation to exactly perDevice bytes.
func (b *base) resizeEach(perDevice int64) error {
	for _, d := range b.cfg.Devices {
		if err := d.Resize(b.cfg.Owner, perDevice); err != nil {
			return err
		}
	}
	return nil
}

// setState transitions the lifecycle state.
func (b *base) setState(s State) { b.state.Store(int32(s)) }

// InitBreakdown returns the breakdown recorded by Init (zero before).
func (b *base) InitBreakdown() perfmodel.InitBreakdown {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.breakdown
}

// runInit executes the shared initialization sequence. The weights
// allocation lands after the load phase (split across tensor-parallel
// shards); the remaining pool (KV cache, CUDA graphs, workspace) after
// the later phases, reaching perDeviceBytes on every shard.
func (b *base) runInit(ctx context.Context, perDeviceBytes int64) (perfmodel.InitBreakdown, error) {
	if s := b.State(); s != StateCreated {
		return perfmodel.InitBreakdown{}, fmt.Errorf("engine: init from state %v", s)
	}
	b.setState(StateInitializing)
	bd := b.cfg.Testbed.EngineInit(b.kind, b.cfg.Model, b.cfg.Tier)
	// A warm compilation cache (torch.compile artifacts / TensorRT plans)
	// skips the compile phase entirely.
	if b.cfg.InitCache.Warm(b.kind, b.cfg.Model, b.cfg.Testbed.GPU) {
		bd.Compile = 0
	}

	// Phase 1: load weights (storage read + H2D). Prefer the real store so
	// tier promotion and contention are observable.
	weights := b.cfg.Model.WeightBytes()
	if b.cfg.Store != nil {
		if _, err := b.cfg.Store.Read(weightBlobName(b.cfg.Model)); err != nil {
			b.setState(StateStopped)
			return bd, fmt.Errorf("engine: reading weights: %w", err)
		}
		b.cfg.Clock.Sleep(b.cfg.Testbed.H2DTime(weights))
	} else {
		b.cfg.Clock.Sleep(bd.Load)
	}
	if err := b.allocEach(weights); err != nil {
		b.setState(StateStopped)
		return bd, fmt.Errorf("engine: allocating weights: %w", err)
	}
	if err := ctx.Err(); err != nil {
		b.abortInit()
		return bd, err
	}

	// Phases 2-4: compilation, graph capture, runtime setup.
	for _, d := range []time.Duration{bd.Compile, bd.CUDAGraph, bd.Other} {
		b.cfg.Clock.Sleep(d)
		if err := ctx.Err(); err != nil {
			b.abortInit()
			return bd, err
		}
	}

	// Final reservation: grow every shard to its steady-state footprint.
	perWeights := weights / int64(len(b.cfg.Devices))
	if perDeviceBytes < perWeights {
		perDeviceBytes = perWeights
	}
	if err := b.resizeEach(perDeviceBytes); err != nil {
		b.abortInit()
		return bd, fmt.Errorf("engine: reserving KV pool: %w", err)
	}

	b.mu.Lock()
	b.breakdown = bd
	b.mu.Unlock()
	if bd.Compile > 0 {
		b.cfg.InitCache.Record(b.kind, b.cfg.Model, b.cfg.Testbed.GPU)
	}
	b.setState(StateReady)
	return bd, nil
}

// abortInit releases partial allocations after a failed or cancelled init.
func (b *base) abortInit() {
	for _, d := range b.cfg.Devices {
		d.FreeOwner(b.cfg.Owner)
	}
	b.setState(StateStopped)
}

// Shutdown implements Engine.
func (b *base) Shutdown() error {
	if b.State() == StateStopped {
		return nil
	}
	b.setState(StateStopped)
	for _, d := range b.cfg.Devices {
		d.SetBusy(b.cfg.Owner, 0)
		d.FreeOwner(b.cfg.Owner)
	}
	return nil
}

// weightBlobName is the storage key for a model's weight file.
func weightBlobName(m models.Model) string { return m.Name + ".weights" }

// WeightBlobName exposes the storage key used for a model's weights so
// deployments can pre-populate the model store.
func WeightBlobName(m models.Model) string { return weightBlobName(m) }

// StageWeights pre-populates store with the weight blobs for the given
// models on tier, as an inference deployment's model-pull step would.
func StageWeights(store *storage.ModelStore, tier perfmodel.StorageTier, ms ...models.Model) error {
	for _, m := range ms {
		err := store.Put(weightBlobName(m), m.WeightBytes(), tier)
		if err != nil && !errors.Is(err, storage.ErrExists) {
			return err
		}
	}
	return nil
}
