package engine

import (
	"fmt"
	"sync"

	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// InitCache models the on-disk compilation-artifact caches real engines
// keep between runs: vLLM's torch.compile cache and TensorRT-LLM's
// engine plans. A warm cache lets a subsequent cold start of the same
// (engine, model, GPU) triple skip its compilation phase — the standard
// mitigation for the Table 1 compile times, and the strongest cold-start
// baseline to compare hot-swapping against (CUDA-graph capture and the
// rest of initialization still run; only compilation is cacheable).
type InitCache struct {
	mu      sync.Mutex
	entries map[string]bool
	hits    int64
}

// NewInitCache returns an empty cache.
func NewInitCache() *InitCache {
	return &InitCache{entries: make(map[string]bool)}
}

// cacheKey identifies a compilation artifact.
func cacheKey(kind perfmodel.EngineKind, m models.Model, gpu perfmodel.GPUKind) string {
	return fmt.Sprintf("%s|%s|%s", kind, m.Name, gpu)
}

// Warm reports whether a compilation artifact exists for the triple,
// counting a hit when it does.
func (c *InitCache) Warm(kind perfmodel.EngineKind, m models.Model, gpu perfmodel.GPUKind) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[cacheKey(kind, m, gpu)] {
		c.hits++
		return true
	}
	return false
}

// Record stores the compilation artifact for the triple.
func (c *InitCache) Record(kind perfmodel.EngineKind, m models.Model, gpu perfmodel.GPUKind) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[cacheKey(kind, m, gpu)] = true
}

// Hits returns the number of cache hits served.
func (c *InitCache) Hits() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Len returns the number of cached artifacts.
func (c *InitCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
