package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swapservellm/internal/openai"
)

func runnerServer(t *testing.T, deviceBytes int64) (*RunnerManager, *httptest.Server) {
	t.Helper()
	rm, _ := smallDeviceManager(t, deviceBytes)
	srv := httptest.NewServer(rm.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(rm.Shutdown)
	return rm, srv
}

func TestRunnerHTTPChatLoadsOnDemand(t *testing.T) {
	rm, srv := runnerServer(t, 80*gib)
	seed := int64(5)
	resp, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     "llama3.2:1b-fp16",
			Messages:  []openai.Message{{Role: "user", Content: "hello ollama"}},
			Seed:      &seed,
			MaxTokens: 4,
		})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.CompletionTokens != 4 {
		t.Fatalf("usage = %+v", resp.Usage)
	}
	if got := rm.Loaded(); len(got) != 1 || got[0] != "llama3.2:1b-fp16" {
		t.Fatalf("Loaded = %v", got)
	}
}

func TestRunnerHTTPLegacyCompletions(t *testing.T) {
	_, srv := runnerServer(t, 80*gib)
	seed := int64(5)
	resp, err := openai.NewClient(srv.URL).Completion(context.Background(),
		&openai.CompletionRequest{
			Model:     "deepseek-r1:1.5b-q4",
			Prompt:    openai.PromptField{"complete me"},
			Seed:      &seed,
			MaxTokens: 3,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Choices) != 1 || resp.Choices[0].Text == "" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestRunnerHTTPEvictionVisibleInPS(t *testing.T) {
	// A small device: loading a second large model evicts the first,
	// observable through /api/ps.
	rm, srv := runnerServer(t, 9*gib)
	ask := func(model string) {
		seed := int64(1)
		_, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(),
			&openai.ChatCompletionRequest{
				Model:     model,
				Messages:  []openai.Message{{Role: "user", Content: "x"}},
				Seed:      &seed,
				MaxTokens: 2,
			})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
	}
	ask("llama3.2:1b-q4")
	ask("deepseek-r1:7b-q4") // forces 1b out on the 9 GiB device? both fit; then:
	ask("llama3.1:8b-q4")    // needs eviction

	resp, err := http.Get(srv.URL + "/api/ps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ps struct {
		Models []struct {
			Name    string  `json:"name"`
			SizeGiB float64 `json:"size_gib"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	if len(ps.Models) == 0 {
		t.Fatal("no resident runners in /api/ps")
	}
	if ps.Models[0].Name != "llama3.1:8b-q4" {
		t.Fatalf("most recent runner = %s", ps.Models[0].Name)
	}
	for _, m := range ps.Models {
		if m.SizeGiB <= 0 {
			t.Fatalf("runner %s reports no memory", m.Name)
		}
	}
	_ = rm
}

func TestRunnerHTTPErrors(t *testing.T) {
	_, srv := runnerServer(t, 80*gib)
	// Unknown model.
	seed := int64(1)
	_, err := openai.NewClient(srv.URL).ChatCompletion(context.Background(),
		&openai.ChatCompletionRequest{
			Model:    "mystery:1b",
			Messages: []openai.Message{{Role: "user", Content: "x"}},
			Seed:     &seed,
		})
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("unknown model: %v", err)
	}
	// Missing model field.
	resp, err := http.Post(srv.URL+"/v1/chat/completions", "application/json",
		strings.NewReader(`{"messages":[{"role":"user","content":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("missing model status = %d", resp.StatusCode)
	}
	// GET on inference endpoint.
	resp, err = http.Get(srv.URL + "/v1/chat/completions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestRunnerHTTPModels(t *testing.T) {
	_, srv := runnerServer(t, 80*gib)
	list, err := openai.NewClient(srv.URL).ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Data) < 10 {
		t.Fatalf("models = %d, want the full catalog", len(list.Data))
	}
}
