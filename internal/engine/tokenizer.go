package engine

import (
	"strings"

	"swapservellm/internal/openai"
)

// Tokenizer approximates LLM tokenization deterministically: whitespace
// and punctuation boundaries, with long words split every four bytes —
// close to the ~4 characters/token heuristic of BPE vocabularies.
type Tokenizer struct{}

// CountText returns the token count for one text string.
func (Tokenizer) CountText(s string) int {
	if s == "" {
		return 0
	}
	tokens := 0
	inWord := 0
	flush := func() {
		if inWord > 0 {
			tokens += (inWord + 3) / 4
			inWord = 0
		}
	}
	for _, r := range s {
		switch {
		case r == ' ' || r == '\n' || r == '\t' || r == '\r':
			flush()
		case strings.ContainsRune(".,;:!?()[]{}\"'`", r):
			flush()
			tokens++
		default:
			inWord++
		}
	}
	flush()
	return tokens
}

// CountMessages returns the prompt token count for a chat, including the
// per-message template overhead (role markers and separators).
func (t Tokenizer) CountMessages(msgs []openai.Message) int {
	const perMessageOverhead = 4
	total := 3 // chat template prefix
	for _, m := range msgs {
		total += perMessageOverhead + t.CountText(m.Content)
	}
	return total
}
