package engine

import (
	"context"
	"testing"

	"swapservellm/internal/openai"
)

func BenchmarkTokenizerCountText(b *testing.B) {
	const text = "The quick brown fox jumps over the lazy dog, again and again, " +
		"while the scheduler swaps inference engines in and out of GPU memory."
	var tok Tokenizer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.CountText(text)
	}
}

func BenchmarkTokenizerCountMessages(b *testing.B) {
	msgs := []openai.Message{
		{Role: "system", Content: "You are a helpful assistant."},
		{Role: "user", Content: "Explain transparent GPU checkpointing in two sentences."},
	}
	var tok Tokenizer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.CountMessages(msgs)
	}
}

func BenchmarkGeneratorToken(b *testing.B) {
	var gen Generator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.Token("benchmark prompt", 42, i%64)
	}
}

func BenchmarkCompletionLength(b *testing.B) {
	var gen Generator
	for i := 0; i < b.N; i++ {
		gen.CompletionLength("benchmark prompt", int64(i), 0)
	}
}

func BenchmarkGateWaitOpen(b *testing.B) {
	g := NewGate()
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Wait(ctx)
	}
}

// benchCtx returns a reusable background context.
func benchCtx() context.Context { return context.Background() }
