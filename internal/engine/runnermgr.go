package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

// RunnerManager simulates Ollama's native multi-model scheduler (§2.3):
// one llama.cpp runner per requested model, loaded on demand, with
// least-recently-used runners unloaded when GPU memory is insufficient.
// It is the strongest baseline the paper compares SwapServeLLM against
// (Figure 5), trading runtime optimizations for fast loads.
type RunnerManager struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed
	device  *gpu.Device
	store   *storage.ModelStore
	tier    perfmodel.StorageTier
	catalog *models.Catalog

	mu      sync.Mutex
	runners map[string]*runnerEntry
	seq     int64
}

type runnerEntry struct {
	eng      *Ollama
	lastUsed time.Time
	loading  chan struct{} // closed when the load completes
	loadErr  error
}

// ErrModelTooLarge is returned when a model cannot fit on the GPU even
// with every other runner unloaded.
var ErrModelTooLarge = errors.New("engine: model does not fit on the GPU")

// NewRunnerManager builds an Ollama-style scheduler over device, reading
// weights from store at tier and resolving model names via catalog.
func NewRunnerManager(clock simclock.Clock, tb perfmodel.Testbed, device *gpu.Device,
	store *storage.ModelStore, tier perfmodel.StorageTier, catalog *models.Catalog) *RunnerManager {
	return &RunnerManager{
		clock:   clock,
		testbed: tb,
		device:  device,
		store:   store,
		tier:    tier,
		catalog: catalog,
		runners: make(map[string]*runnerEntry),
	}
}

// Acquire returns a ready runner for the model, loading it (and evicting
// LRU runners as needed) if it is not resident. The returned engine is
// ready to serve.
func (rm *RunnerManager) Acquire(ctx context.Context, modelName string) (*Ollama, error) {
	m, ok := rm.catalog.Lookup(modelName)
	if !ok {
		return nil, fmt.Errorf("engine: unknown model %q", modelName)
	}

	rm.mu.Lock()
	if e, ok := rm.runners[modelName]; ok {
		loading := e.loading
		rm.mu.Unlock()
		select {
		case <-loading:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		rm.mu.Lock()
		if e2, still := rm.runners[modelName]; still && e2 == e && e.loadErr == nil {
			e.lastUsed = rm.clock.Now()
			rm.mu.Unlock()
			return e.eng, nil
		}
		rm.mu.Unlock()
		// The runner failed or was evicted while we waited; retry.
		return rm.Acquire(ctx, modelName)
	}

	// Claim the slot before the (slow) load so concurrent requests for the
	// same model share one runner.
	entry := &runnerEntry{loading: make(chan struct{}), lastUsed: rm.clock.Now()}
	rm.runners[modelName] = entry
	rm.seq++
	owner := fmt.Sprintf("ollama-runner-%d", rm.seq)
	rm.mu.Unlock()

	eng, err := rm.loadRunner(ctx, owner, m)

	rm.mu.Lock()
	entry.eng = eng
	entry.loadErr = err
	entry.lastUsed = rm.clock.Now()
	if err != nil {
		delete(rm.runners, modelName)
	}
	close(entry.loading)
	rm.mu.Unlock()

	if err != nil {
		return nil, err
	}
	return eng, nil
}

// loadRunner evicts until the model fits, then initializes a runner.
func (rm *RunnerManager) loadRunner(ctx context.Context, owner string, m models.Model) (*Ollama, error) {
	need := OllamaFootprint(m, 0)
	if need > rm.device.Total() {
		return nil, fmt.Errorf("%w: %s needs %d bytes, device has %d",
			ErrModelTooLarge, m.Name, need, rm.device.Total())
	}
	for rm.device.Free() < need {
		if !rm.evictLRU() {
			return nil, fmt.Errorf("%w: %s needs %d bytes, only %d free and nothing to evict",
				ErrModelTooLarge, m.Name, need, rm.device.Free())
		}
	}
	eng, err := NewOllama(Config{
		Owner:   owner,
		Model:   m,
		Testbed: rm.testbed,
		Clock:   rm.clock,
		Device:  rm.device,
		Store:   rm.store,
		Tier:    rm.tier,
	})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Init(ctx); err != nil {
		return nil, err
	}
	return eng, nil
}

// evictLRU unloads the least recently used idle runner, returning false
// when none is evictable.
func (rm *RunnerManager) evictLRU() bool {
	rm.mu.Lock()
	var victimName string
	var victim *runnerEntry
	for name, e := range rm.runners {
		if e.eng == nil { // still loading; not evictable
			continue
		}
		if victim == nil || e.lastUsed.Before(victim.lastUsed) {
			victim, victimName = e, name
		}
	}
	if victim == nil {
		rm.mu.Unlock()
		return false
	}
	delete(rm.runners, victimName)
	rm.mu.Unlock()

	// Unloading a llama.cpp runner is quick: kill the process, free VRAM.
	rm.clock.Sleep(100 * time.Millisecond)
	victim.eng.Shutdown()
	return true
}

// Loaded returns the resident model names sorted by most recent use.
func (rm *RunnerManager) Loaded() []string {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	type pair struct {
		name string
		t    time.Time
	}
	var ps []pair
	for name, e := range rm.runners {
		if e.eng != nil {
			ps = append(ps, pair{name, e.lastUsed})
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].t.After(ps[j].t) })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}

// Shutdown unloads every runner.
func (rm *RunnerManager) Shutdown() {
	rm.mu.Lock()
	entries := make([]*runnerEntry, 0, len(rm.runners))
	for name, e := range rm.runners {
		entries = append(entries, e)
		delete(rm.runners, name)
	}
	rm.mu.Unlock()
	for _, e := range entries {
		if e.eng != nil {
			e.eng.Shutdown()
		}
	}
}
