package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"swapservellm/internal/openai"
)

// Encoder-only endpoints: POST /v1/embeddings and POST /v1/rerank.
// These are served by the same engine instance as chat (the simulation
// treats every model as multi-headed) with their own perfmodel compute
// curves — a single batched forward pass instead of prefill + decode.

// acceptEncode runs the shared request admission for an encoder
// endpoint: model match and engine state. It returns false after
// writing the error response.
func (h *handler) acceptEncode(w http.ResponseWriter, model string) bool {
	if model != h.b.cfg.Model.Name {
		openai.WriteError(w, http.StatusNotFound, "invalid_request_error",
			fmt.Sprintf("model %q is not served by this backend (serves %q)", model, h.b.cfg.Model.Name))
		return false
	}
	if h.b.State() != StateReady {
		openai.WriteError(w, http.StatusServiceUnavailable, "engine_not_ready",
			fmt.Sprintf("engine state: %v", h.b.State()))
		return false
	}
	return true
}

// embeddings implements POST /v1/embeddings: one batched encoder pass
// over all inputs, then a deterministic vector per input.
func (h *handler) embeddings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	var req openai.EmbeddingsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if !h.acceptEncode(w, req.Model) {
		return
	}

	h.b.active.Add(1)
	h.updateBusy()
	defer func() {
		h.b.active.Add(-1)
		h.updateBusy()
	}()

	var (
		tok Tokenizer
		gen Generator
	)
	total := 0
	for _, text := range req.Input {
		total += tok.CountText(text)
	}
	if err := h.b.gate.Wait(r.Context()); err != nil {
		return
	}
	h.b.cfg.Clock.Sleep(h.b.cfg.Testbed.EmbedTime(h.b.kind, h.b.cfg.Model, len(req.Input), total))

	data := make([]openai.Embedding, len(req.Input))
	for i, text := range req.Input {
		data[i] = openai.Embedding{Object: "embedding", Index: i, Embedding: gen.Embedding(text, EmbeddingDim)}
	}
	openai.WriteJSON(w, http.StatusOK, openai.EmbeddingsResponse{
		Object: "list",
		Data:   data,
		Model:  h.b.cfg.Model.Name,
		Usage:  openai.Usage{PromptTokens: total, TotalTokens: total},
	})
}

// rerank implements POST /v1/rerank (the Cohere/Jina shape): one
// batched cross-encoder pass scoring every query-document pair, results
// sorted by descending relevance.
func (h *handler) rerank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		openai.WriteError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	var req openai.RerankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		openai.WriteError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if !h.acceptEncode(w, req.Model) {
		return
	}

	h.b.active.Add(1)
	h.updateBusy()
	defer func() {
		h.b.active.Add(-1)
		h.updateBusy()
	}()

	var (
		tok Tokenizer
		gen Generator
	)
	queryTokens := tok.CountText(req.Query)
	total := 0
	for _, doc := range req.Documents {
		total += queryTokens + tok.CountText(doc) // cross-encoder re-reads the query per pair
	}
	if err := h.b.gate.Wait(r.Context()); err != nil {
		return
	}
	h.b.cfg.Clock.Sleep(h.b.cfg.Testbed.RerankTime(h.b.kind, h.b.cfg.Model, len(req.Documents), total))

	results := make([]openai.RerankResult, len(req.Documents))
	for i, doc := range req.Documents {
		results[i] = openai.RerankResult{Index: i, RelevanceScore: gen.RerankScore(req.Query, doc)}
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].RelevanceScore != results[j].RelevanceScore {
			return results[i].RelevanceScore > results[j].RelevanceScore
		}
		return results[i].Index < results[j].Index
	})
	if req.TopN > 0 && req.TopN < len(results) {
		results = results[:req.TopN]
	}
	openai.WriteJSON(w, http.StatusOK, openai.RerankResponse{
		Model:   h.b.cfg.Model.Name,
		Results: results,
		Usage:   openai.Usage{PromptTokens: total, TotalTokens: total},
	})
}
