package engine

import (
	"context"
	"testing"

	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

func TestSGLangInitPool(t *testing.T) {
	r := newRig(t)
	e, err := NewSGLang(r.config(t, "sgl-1", "llama3.2:3b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	bd, err := e.Init(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// SGLang's mem_fraction_static default: 85% of the 80 GiB device.
	if got, want := e.GPUBytes(), int64(0.85*float64(80*gib)); got != want {
		t.Fatalf("pool = %d, want %d", got, want)
	}
	// No torch.compile phase, but CUDA-graph capture present.
	if bd.Compile != 0 {
		t.Fatalf("sglang compile phase = %v, want 0", bd.Compile)
	}
	if bd.CUDAGraph <= 0 {
		t.Fatal("sglang missing CUDA-graph phase")
	}
}

func TestTRTLLMInitPool(t *testing.T) {
	r := newRig(t)
	e, err := NewTRTLLM(r.config(t, "trt-1", "deepseek-r1:1.5b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	bd, err := e.Init(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.GPUBytes(), int64(0.9*float64(80*gib)); got != want {
		t.Fatalf("pool = %d, want %d", got, want)
	}
	// The TensorRT engine build dominates everything else.
	if bd.Compile < bd.Load+bd.CUDAGraph+bd.Other {
		t.Fatalf("trtllm build %v does not dominate breakdown %+v", bd.Compile, bd)
	}
}

func TestEngineInitOrderingAcrossKinds(t *testing.T) {
	// The Figure 2 ordering must hold for the engines' Init durations on
	// a shared model, measured through real Init calls.
	m := "llama3.2:1b-fp16"
	durations := make(map[perfmodel.EngineKind]float64)
	for _, kind := range []perfmodel.EngineKind{
		perfmodel.EngineOllama, perfmodel.EngineSGLang, perfmodel.EngineVLLM, perfmodel.EngineTRTLLM,
	} {
		r := newRig(t)
		e, err := New(kind, r.config(t, "ord-"+string(kind), m))
		if err != nil {
			t.Fatal(err)
		}
		bd, err := e.Init(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		durations[kind] = bd.Total().Seconds()
		e.Shutdown()
	}
	if !(durations[perfmodel.EngineOllama] < durations[perfmodel.EngineSGLang] &&
		durations[perfmodel.EngineSGLang] < durations[perfmodel.EngineVLLM] &&
		durations[perfmodel.EngineVLLM] < durations[perfmodel.EngineTRTLLM]) {
		t.Fatalf("init ordering violated: %+v", durations)
	}
}

func TestTensorParallelShardsEvenly(t *testing.T) {
	r := newRig(t)
	m := models.Default().MustLookup("llama3.3:70b-fp8")
	if err := StageWeights(r.store, perfmodel.TierDisk, m); err != nil {
		t.Fatal(err)
	}
	dev0 := r.device
	dev1 := gpu.NewDevice(1, r.tb.GPU, r.tb.GPUMemBytes)
	e, err := NewOllama(Config{
		Owner: "tp2", Model: m, Testbed: r.tb, Clock: r.clock,
		Devices: []*gpu.Device{dev0, dev1},
		Store:   r.store, Tier: perfmodel.TierDisk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	u0, u1 := dev0.OwnerUsage("tp2"), dev1.OwnerUsage("tp2")
	if u0 == 0 || u1 == 0 {
		t.Fatalf("shards not placed: %d / %d", u0, u1)
	}
	if u0 != u1 {
		t.Fatalf("uneven shards: %d vs %d", u0, u1)
	}
	total := OllamaFootprint(m, 0)
	if got := e.GPUBytes(); got < total-2 || got > total+2 {
		t.Fatalf("total footprint = %d, want ~%d", got, total)
	}
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if dev0.Used() != 0 || dev1.Used() != 0 {
		t.Fatal("shards leaked after shutdown")
	}
}

func TestTensorParallelOOMRollsBackAllShards(t *testing.T) {
	r := newRig(t)
	m := models.Default().MustLookup("llama3.3:70b-fp8")
	if err := StageWeights(r.store, perfmodel.TierDisk, m); err != nil {
		t.Fatal(err)
	}
	dev0 := r.device
	dev1 := gpu.NewDevice(1, r.tb.GPU, r.tb.GPUMemBytes)
	// Fill the second shard's device so the weight allocation fails there.
	dev1.Alloc("squatter", 79*gib)
	e, _ := NewOllama(Config{
		Owner: "tp-oom", Model: m, Testbed: r.tb, Clock: r.clock,
		Devices: []*gpu.Device{dev0, dev1},
		Store:   r.store, Tier: perfmodel.TierDisk,
	})
	if _, err := e.Init(context.Background()); err == nil {
		t.Fatal("init succeeded despite shard OOM")
	}
	if dev0.OwnerUsage("tp-oom") != 0 {
		t.Fatal("first shard not rolled back after OOM on second")
	}
}
