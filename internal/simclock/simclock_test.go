package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

func TestRealNow(t *testing.T) {
	c := NewReal()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealSleepNonPositive(t *testing.T) {
	c := NewReal()
	start := time.Now()
	c.Sleep(-time.Hour)
	c.Sleep(0)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("non-positive Sleep blocked for %v", elapsed)
	}
}

func TestRealSince(t *testing.T) {
	c := NewReal()
	t0 := c.Now()
	if d := c.Since(t0); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestScaledNowAdvances(t *testing.T) {
	c := NewScaled(epoch, DefaultScale)
	t0 := c.Now()
	time.Sleep(10 * time.Millisecond)
	t1 := c.Now()
	if !t1.After(t0) {
		t.Fatalf("scaled clock did not advance: %v -> %v", t0, t1)
	}
	// 10ms of wall time at 200x is 2s simulated; allow generous slack.
	if d := t1.Sub(t0); d < time.Second {
		t.Fatalf("scaled clock advanced only %v, want >= 1s", d)
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := NewScaled(epoch, DefaultScale)
	start := time.Now()
	c.Sleep(10 * time.Second) // should cost ~1ms of wall time
	if wall := time.Since(start); wall > 500*time.Millisecond {
		t.Fatalf("Sleep(10s) at %vx took %v of wall time", DefaultScale, wall)
	}
}

func TestScaledSleepSimulatedDuration(t *testing.T) {
	c := NewScaled(epoch, DefaultScale)
	t0 := c.Now()
	c.Sleep(30 * time.Second)
	elapsed := c.Since(t0)
	if elapsed < 30*time.Second {
		t.Fatalf("simulated elapsed %v, want >= 30s", elapsed)
	}
	if elapsed > 5*time.Minute {
		t.Fatalf("simulated elapsed %v, want < 5m (scheduling slack)", elapsed)
	}
}

func TestScaledMinimumScale(t *testing.T) {
	c := NewScaled(epoch, 0.1)
	if c.Scale() != 1 {
		t.Fatalf("scale clamped to %v, want 1", c.Scale())
	}
}

func TestScaledAfterZero(t *testing.T) {
	c := NewScaled(epoch, DefaultScale)
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestScaledAfterFires(t *testing.T) {
	c := NewScaled(epoch, DefaultScale)
	select {
	case ts := <-c.After(5 * time.Second):
		if ts.Before(epoch.Add(5 * time.Second)) {
			t.Fatalf("After fired at %v, before deadline", ts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("After(5s simulated) did not fire within 2s wall")
	}
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	c := NewManual(epoch)
	done := make(chan time.Time, 1)
	go func() {
		c.Sleep(10 * time.Second)
		done <- c.Now()
	}()
	// Wait until the sleeper has registered.
	for c.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(10 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestManualAdvancePartial(t *testing.T) {
	c := NewManual(epoch)
	ch := c.After(10 * time.Second)
	c.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case ts := <-ch:
		if want := epoch.Add(10 * time.Second); !ts.Equal(want) {
			t.Fatalf("After fired at %v, want %v", ts, want)
		}
	case <-time.After(time.Second):
		t.Fatal("After did not fire at its deadline")
	}
}

func TestManualWakeOrder(t *testing.T) {
	c := NewManual(epoch)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		i, d := i, d
		ch := c.After(d)
		go func() {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
	}
	// One big advance must release in deadline order: 10s (idx 1), 20s (2), 30s (0).
	c.Advance(time.Minute)
	wg.Wait()
	// The goroutines may be scheduled out of order after receiving, so
	// verify via the timestamps instead: re-check deadlines were delivered.
	if len(order) != 3 {
		t.Fatalf("got %d wakeups, want 3", len(order))
	}
}

func TestManualWakeTimestampsOrdered(t *testing.T) {
	c := NewManual(epoch)
	chans := []<-chan time.Time{
		c.After(30 * time.Second),
		c.After(10 * time.Second),
		c.After(20 * time.Second),
	}
	c.Advance(time.Minute)
	times := make([]time.Time, len(chans))
	for i, ch := range chans {
		times[i] = <-ch
	}
	if !times[1].Before(times[2]) || !times[2].Before(times[0]) {
		t.Fatalf("wake timestamps not ordered by deadline: %v", times)
	}
}

func TestManualSetIgnoresPast(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(time.Hour)
	c.Set(epoch) // earlier: must be ignored
	if got := c.Now(); !got.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("Set moved clock backwards to %v", got)
	}
}

func TestManualNextDeadline(t *testing.T) {
	c := NewManual(epoch)
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a waiter on an idle clock")
	}
	c.After(42 * time.Second)
	dl, ok := c.NextDeadline()
	if !ok || !dl.Equal(epoch.Add(42*time.Second)) {
		t.Fatalf("NextDeadline = %v, %v; want %v, true", dl, ok, epoch.Add(42*time.Second))
	}
}

func TestManualNegativeAdvance(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("negative Advance moved the clock to %v", got)
	}
}

// Property: after any sequence of positive advances, Now equals the origin
// plus the sum, and never runs backwards.
func TestManualAdvanceMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewManual(epoch)
		var total time.Duration
		prev := c.Now()
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			c.Advance(d)
			total += d
			now := c.Now()
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return c.Now().Equal(epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every waiter fires exactly at its deadline regardless of the
// registration order.
func TestManualDeadlineExactProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 64 {
			delays = delays[:64]
		}
		c := NewManual(epoch)
		chans := make([]<-chan time.Time, len(delays))
		var maxDelay time.Duration
		for i, raw := range delays {
			d := time.Duration(raw)*time.Millisecond + time.Millisecond
			if d > maxDelay {
				maxDelay = d
			}
			chans[i] = c.After(d)
		}
		c.Advance(maxDelay)
		for i, ch := range chans {
			want := epoch.Add(time.Duration(delays[i])*time.Millisecond + time.Millisecond)
			got := <-ch
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestManualConcurrentSleepers(t *testing.T) {
	c := NewManual(epoch)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(i+1) * time.Second
		go func() {
			defer wg.Done()
			c.Sleep(d)
		}()
	}
	for c.PendingWaiters() < n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(n * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent sleepers did not all wake")
	}
}
