package simclock

import (
	"container/heap"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"time"
)

var vtrace = os.Getenv("SIMCLOCK_TRACE") != ""

// ioGrace is the wall window after a BlockIO entry or exit during which
// the settle pass keeps using wall micro-sleeps: long enough for a
// localhost TCP hand-off to come back through netpoll and the receiving
// goroutine to reach its next clock interaction, short enough that a
// multi-thousand-chunk transfer replay pays it only at request
// boundaries.
const ioGrace = 10 * time.Millisecond

// Virtual is a concurrency-aware discrete-event clock: Sleep and After
// park their callers on a deadline heap, and time jumps straight to the
// next deadline once the system is quiescent — no wall-clock waiting at
// all. It is the experiment harness's clock (à la Revati's time-warp
// emulation): a month of simulated serving replays in however long the
// bookkeeping takes, and the resulting simulated timestamps are a pure
// function of the event deadlines, so repeated runs produce
// byte-identical artifacts.
//
// Quiescence is tracked by a token protocol (see Gate): every
// *registered* goroutine owns a run token while it is executing, gives
// the token up when it parks on the clock (Sleep / Gate.Wait) or blocks
// on another goroutine (Gate.Block / Gate.BlockIO), and gets it back
// when it resumes. When the outstanding-token count hits zero nothing
// registered can make progress without time moving, so an advancer
// fires the earliest deadline. Unregistered goroutines (net/http
// serving goroutines, engine handlers) may also park on the clock;
// their waiters carry no token, and the advancer runs a settle pass
// (yield rounds, escalating to short wall sleeps while registered
// goroutines are blocked in I/O) before each jump so late parkers are
// not left behind.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	waiters vheap

	// reg maps goroutine id -> Enter nesting depth for registered
	// goroutines.
	reg map[int64]int

	// running counts registered goroutines that currently hold their run
	// token (neither parked on the clock nor blocked). Time may only
	// advance when it is zero.
	running int
	// blocked / blockedIO count registered goroutines inside Gate.Block /
	// Gate.BlockIO. blockedIO > 0 switches the settle pass to wall-clock
	// micro-sleeps, since progress then depends on goroutines outside the
	// Go scheduler's immediate run queue (real HTTP round trips).
	blocked   int
	blockedIO int

	// gen increments on every state change visible to the settle pass:
	// waiter added, waiter fired, token acquired or released. The settle
	// pass commits only after gen holds still across several yield
	// rounds.
	gen uint64

	// advancing is true while an advancer goroutine is live.
	advancing bool

	// unregActive is set when an untokened waiter fires and cleared by a
	// stable settle: it records that unregistered goroutines are
	// interacting with the clock, so advances must settle even when
	// nothing is blocked.
	unregActive bool

	// unregOut counts untokened waiters that have fired without a new
	// untokened waiter being parked since: an estimate of how many
	// unregistered goroutines are off the heap doing real work. While it
	// is zero every known unregistered clock user is parked on a
	// deadline, so a settle pass can commit on scheduler yields alone —
	// the wall micro-sleeps that dominate a transfer's per-chunk cost are
	// reserved for the moments (request boundaries, response hand-offs)
	// when an unregistered goroutine really is in flight through netpoll.
	unregOut int

	// ioGraceUntil is a wall-clock deadline: settles stay in wall mode
	// until it passes. It is armed at every Gate.BlockIO entry and exit —
	// the moments when request or response bytes are in flight through
	// netpoll toward an unregistered goroutine that has not yet touched
	// the clock, so unregOut cannot know about it. Without the grace the
	// advancer replays every pending periodic timer at memory speed while
	// the kernel delivers the bytes, inflating simulated latencies by
	// orders of magnitude.
	ioGraceUntil time.Time

	wdArmed   bool
	wdTimeout time.Duration

	gate *Gate
}

// NewVirtual returns a virtual clock starting at origin. The zero
// origin is allowed but experiments conventionally pass a fixed epoch
// so artifacts carry stable absolute timestamps.
func NewVirtual(origin time.Time) *Virtual {
	v := &Virtual{
		now:       origin,
		reg:       make(map[int64]int),
		wdTimeout: 5 * time.Second,
	}
	v.gate = &Gate{v: v, clock: v}
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep parks the caller until virtual time advances by d. A registered
// caller releases its run token for the duration; an unregistered
// caller parks an untokened waiter (the advancer's settle pass keeps it
// from being left behind).
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	id := gid()
	v.mu.Lock()
	_, registered := v.reg[id]
	w := v.addWaiterLocked(d, registered)
	if registered {
		v.running--
		v.gen++
	}
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	<-w.ch
}

// After returns a channel that receives the virtual time once d has
// elapsed. The waiter carries no run token even for registered callers,
// because the caller does not necessarily block on it: registered code
// that wants to select on a timer together with other channels must use
// Gate.Wait, which does the token accounting. A registered goroutine
// that naked-selects on After deadlocks the virtual clock (its token is
// never released, so time cannot advance to fire the timer).
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.Now()
		return ch
	}
	v.mu.Lock()
	w := v.addWaiterLocked(d, false)
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	return w.ch
}

// Gate returns the clock's token gate. All calls return the same gate.
func (v *Virtual) Gate() *Gate { return v.gate }

// SetDeadlockTimeout adjusts the wall-clock watchdog that fires when
// every registered goroutine is blocked, no waiter is pending, and no
// state change occurs for the given duration — a real deadlock in the
// system under test. Zero disables the watchdog.
func (v *Virtual) SetDeadlockTimeout(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.wdTimeout = d
}

// addWaiterLocked pushes a waiter expiring d from now.
func (v *Virtual) addWaiterLocked(d time.Duration, tokened bool) *vwaiter {
	w := &vwaiter{
		deadline: v.now.Add(d),
		seq:      v.seq,
		ch:       make(chan time.Time, 1),
		tokened:  tokened,
	}
	v.seq++
	heap.Push(&v.waiters, w)
	if !tokened && v.unregOut > 0 {
		v.unregOut--
	}
	v.gen++
	return w
}

// maybeAdvanceLocked spawns an advancer when the system may be
// quiescent. The advancer is a dedicated short-lived goroutine, never a
// participant, so it can settle and fire without starving its own
// continuation.
func (v *Virtual) maybeAdvanceLocked() {
	if v.advancing || v.running != 0 {
		return
	}
	v.advancing = true
	go v.advanceLoop()
}

func (v *Virtual) advanceLoop() {
	v.mu.Lock()
	for v.running == 0 {
		if v.needSettleLocked() {
			//swaplint:ignore lockcheck settleLocked drops and reacquires v.mu around its yield rounds by design
			if !v.settleLocked() {
				break // a registered goroutine resumed during the settle
			}
		}
		if v.waiters.Len() == 0 {
			if v.blocked+v.blockedIO > 0 {
				v.armWatchdogLocked()
			}
			break
		}
		w := heap.Pop(&v.waiters).(*vwaiter)
		if w.deadline.After(v.now) {
			if vtrace && w.deadline.Sub(v.now) > 100*time.Millisecond {
				fmt.Printf("VTRACE jump %v -> %v (+%v) waiters=%d blocked=%d blockedIO=%d unregOut=%d tokened=%v\n",
					v.now.Format("15:04:05.000"), w.deadline.Format("15:04:05.000"),
					w.deadline.Sub(v.now), v.waiters.Len(), v.blocked, v.blockedIO, v.unregOut, w.tokened)
			}
			v.now = w.deadline
		}
		w.fired = true
		v.gen++
		if w.tokened {
			v.running++
		} else {
			v.unregActive = true
			v.unregOut++
		}
		w.ch <- v.now
	}
	v.advancing = false
	v.mu.Unlock()
}

// needSettleLocked reports whether the next jump must wait for the
// scheduler to quiesce first. Settling is needed whenever goroutines
// may be between states the token accounting cannot see: registered
// goroutines blocked on peers (their waker may have signalled and
// parked already, and the wakee needs CPU to re-acquire its token
// before time moves), or unregistered goroutines using the clock.
func (v *Virtual) needSettleLocked() bool {
	return v.blocked > 0 || v.blockedIO > 0 || v.unregActive
}

// settleLocked yields until the observable state (gen) holds still for
// three consecutive rounds with no run token outstanding. Rounds use
// escalating wall micro-sleeps only while an unregistered goroutine is
// off the heap (unregOut > 0) with registered callers blocked in I/O —
// a real HTTP hand-off needs wall time to come back through netpoll.
// In the transfer steady state (every unregistered actor parked on a
// chunk deadline) plain scheduler yields suffice, which is what keeps a
// multi-thousand-chunk checkpoint replay at microseconds per event.
// Returns false if a registered goroutine re-acquired its token, in
// which case the advance must abort.
func (v *Virtual) settleLocked() bool {
	stable := 0
	last := v.gen
	sleep := 20 * time.Microsecond
	for stable < 3 {
		if v.running > 0 {
			return false
		}
		io := v.blockedIO > 0 && (v.unregOut > 0 || time.Now().Before(v.ioGraceUntil))
		v.mu.Unlock()
		if io {
			time.Sleep(sleep)
			if sleep < 500*time.Microsecond {
				sleep *= 2
			}
		} else {
			for i := 0; i < 32; i++ {
				runtime.Gosched()
			}
		}
		//swaplint:ignore lockcheck reacquisition of the caller-held lock; settleLocked returns with v.mu held
		v.mu.Lock()
		if v.gen == last {
			stable++
		} else {
			stable = 0
			last = v.gen
			sleep = 20 * time.Microsecond
		}
	}
	if v.blockedIO == 0 {
		v.unregActive = false
	} else {
		// A wall-stable settle is the best evidence that no unregistered
		// goroutine is about to park: reset the in-flight estimate so a
		// handler that finished its response (fired its last timer and
		// went back to netpoll) does not tax every later jump.
		v.unregOut = 0
	}
	return v.running == 0
}

// armWatchdogLocked starts a wall timer that panics with a state dump
// if the clock stays wedged: zero tokens, blocked goroutines, an empty
// heap, and no state change for the timeout. That combination means the
// system under test deadlocked (nothing registered can run, and no
// timer exists to wake anything).
func (v *Virtual) armWatchdogLocked() {
	if v.wdArmed || v.wdTimeout <= 0 {
		return
	}
	v.wdArmed = true
	snap := v.gen
	timeout := v.wdTimeout
	time.AfterFunc(timeout, func() {
		v.mu.Lock()
		v.wdArmed = false
		stuck := v.gen == snap && v.running == 0 && v.waiters.Len() == 0 &&
			v.blocked+v.blockedIO > 0
		var dump string
		if stuck {
			dump = v.dumpLocked()
		}
		v.mu.Unlock()
		if stuck {
			panic(fmt.Sprintf("simclock: virtual clock deadlocked for %v: "+
				"every registered goroutine is blocked with no pending timer\n%s",
				timeout, dump))
		}
	})
}

func (v *Virtual) dumpLocked() string {
	head := fmt.Sprintf("virtual clock: now=%s registered=%d running=%d blocked=%d blockedIO=%d waiters=%d",
		v.now.Format(time.RFC3339Nano), len(v.reg), v.running, v.blocked, v.blockedIO, v.waiters.Len())
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return head + "\n" + string(buf[:n])
}

// vwaiter is one parked deadline. tokened records whether the parked
// goroutine gave up a run token that the advancer must grant back
// before (well, atomically with) waking it; fired lets Gate.Wait tell a
// cancelled waiter from one whose token was already returned.
type vwaiter struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time
	tokened  bool
	fired    bool
	index    int
}

// vheap orders waiters by deadline, ties broken by insertion sequence
// so same-instant wakes replay in a stable order.
type vheap []*vwaiter

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *vheap) Push(x any) {
	w := x.(*vwaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *vheap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// Gate is the token API registered goroutines thread through their
// spawn and blocking points so a Virtual clock can tell "everyone is
// waiting on the clock" from "someone is still computing". Obtain one
// with GateFor: for a Virtual clock it is the live gate; for every
// other clock it is a no-op shim (Go spawns plainly, Block runs its
// function inline, Wait falls back to a select on clock.After), so
// production code paths carry no virtual-time machinery at runtime.
//
// The protocol:
//
//   - Enter / Exit bracket a goroutine that participates in virtual
//     time (nestable; typically an experiment's main goroutine).
//   - Go spawns a registered goroutine. The child's run token is
//     reserved before the goroutine starts, so there is no window in
//     which the clock could advance past a spawn.
//   - Block(fn) marks the caller as waiting on another registered
//     goroutine (channel receive, WaitGroup.Wait, …) for fn's duration.
//   - BlockIO(fn) marks the caller as waiting on work outside the
//     token system — an HTTP round trip through net/http goroutines.
//   - Wait(d, done...) is the timer select: it parks on the clock like
//     Sleep but also wakes on any done channel, returning -1 for the
//     timer or the index of the channel that fired.
//
// Rules: a registered goroutine must not block on anything except via
// Sleep, Block, BlockIO, or Wait — in particular it must not
// naked-select on After. Violations freeze the virtual clock (the Go
// test timeout's stack dump shows the offender); a system-under-test
// deadlock while the clock is quiescent is caught by the watchdog
// panic instead.
type Gate struct {
	v     *Virtual
	clock Clock
}

// GateFor returns the gate for clock: Virtual's live gate, or a no-op
// gate (still carrying the clock, for Wait's fallback select) for Real,
// Scaled, and Manual clocks.
func GateFor(clock Clock) *Gate {
	if v, ok := clock.(*Virtual); ok {
		return v.gate
	}
	return &Gate{clock: clock}
}

// Enter registers the calling goroutine. Calls nest; each Enter must be
// matched by an Exit on the same goroutine.
func (g *Gate) Enter() {
	if g.v == nil {
		return
	}
	id := gid()
	v := g.v
	v.mu.Lock()
	if v.reg[id] == 0 {
		v.running++
	}
	v.reg[id]++
	v.gen++
	v.mu.Unlock()
}

// Exit unwinds one Enter. The outermost Exit releases the goroutine's
// run token.
func (g *Gate) Exit() {
	if g.v == nil {
		return
	}
	id := gid()
	v := g.v
	v.mu.Lock()
	v.reg[id]--
	if v.reg[id] <= 0 {
		delete(v.reg, id)
		v.running--
		v.gen++
		v.maybeAdvanceLocked()
	}
	v.mu.Unlock()
}

// Run registers the calling goroutine for the duration of fn.
func (g *Gate) Run(fn func()) {
	g.Enter()
	defer g.Exit()
	fn()
}

// Go runs fn on a new registered goroutine. The child's token is
// reserved under the clock lock before the goroutine is spawned, so the
// clock cannot advance between the spawn and the child's first
// instruction.
func (g *Gate) Go(fn func()) {
	if g.v == nil {
		go fn()
		return
	}
	v := g.v
	v.mu.Lock()
	v.running++
	v.gen++
	v.mu.Unlock()
	go func() {
		id := gid()
		v.mu.Lock()
		v.reg[id]++
		v.mu.Unlock()
		defer func() {
			v.mu.Lock()
			v.reg[id]--
			if v.reg[id] <= 0 {
				delete(v.reg, id)
			}
			v.running--
			v.gen++
			v.maybeAdvanceLocked()
			v.mu.Unlock()
		}()
		fn()
	}()
}

// Block runs fn with the caller's run token released, marking it as
// waiting on another registered goroutine. Unregistered callers just
// run fn.
func (g *Gate) Block(fn func()) { g.block(fn, false) }

// BlockIO runs fn with the caller's run token released, marking it as
// waiting on I/O outside the token system (an HTTP round trip whose
// serving goroutines are unregistered). The advancer settles with wall
// micro-sleeps while any BlockIO is outstanding.
func (g *Gate) BlockIO(fn func()) { g.block(fn, true) }

func (g *Gate) block(fn func(), io bool) {
	if g.v == nil {
		fn()
		return
	}
	id := gid()
	v := g.v
	v.mu.Lock()
	if _, ok := v.reg[id]; !ok {
		v.mu.Unlock()
		fn()
		return
	}
	v.running--
	if io {
		v.blockedIO++
		v.ioGraceUntil = time.Now().Add(ioGrace)
	} else {
		v.blocked++
	}
	v.gen++
	v.maybeAdvanceLocked()
	v.mu.Unlock()

	fn()

	v.mu.Lock()
	if io {
		v.blockedIO--
		// The response hand-off back toward whoever is awaiting this
		// round trip (another BlockIO caller, an unregistered proxy
		// handler) is still in flight through netpoll.
		v.ioGraceUntil = time.Now().Add(ioGrace)
	} else {
		v.blocked--
	}
	v.running++
	v.gen++
	v.mu.Unlock()
}

// Wait parks the caller for d of clock time, but wakes early if any of
// the done channels becomes ready. It returns -1 when the timer fired
// and i when done[i] fired first. It is the registered replacement for
// select { case <-stop: ...; case <-clock.After(d): ... } loops.
func (g *Gate) Wait(d time.Duration, done ...<-chan struct{}) int {
	if g.v == nil {
		return waitFallback(g.clock, d, done)
	}
	if d <= 0 {
		return -1
	}
	id := gid()
	v := g.v
	v.mu.Lock()
	_, registered := v.reg[id]
	w := v.addWaiterLocked(d, registered)
	if registered {
		v.running--
		v.gen++
	}
	v.maybeAdvanceLocked()
	v.mu.Unlock()

	idx := selectTimer(w.ch, done)
	if idx >= 0 {
		// Woken by a done channel: retract the waiter. If the advancer
		// fired it concurrently the token (if any) was already granted
		// back, so only the un-fired case needs fixing up.
		v.mu.Lock()
		if !w.fired {
			heap.Remove(&v.waiters, w.index)
			if w.tokened {
				v.running++
			} else {
				// An unregistered waiter leaves the heap alive: it is in
				// flight again as far as the settle pass can tell.
				v.unregOut++
			}
			v.gen++
		}
		v.mu.Unlock()
	}
	return idx
}

// waitFallback is Wait for non-virtual clocks: a plain select between
// the clock timer and the done channels.
func waitFallback(clock Clock, d time.Duration, done []<-chan struct{}) int {
	return selectTimer(clock.After(d), done)
}

// selectTimer selects between a timer channel and up to N done
// channels, returning -1 for the timer and the done index otherwise.
func selectTimer(timer <-chan time.Time, done []<-chan struct{}) int {
	switch len(done) {
	case 0:
		<-timer
		return -1
	case 1:
		select {
		case <-timer:
			return -1
		case <-done[0]:
			return 0
		}
	case 2:
		select {
		case <-timer:
			return -1
		case <-done[0]:
			return 0
		case <-done[1]:
			return 1
		}
	}
	cases := make([]reflect.SelectCase, len(done)+1)
	cases[0] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(timer)}
	for i, ch := range done {
		cases[i+1] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ch)}
	}
	chosen, _, _ := reflect.Select(cases)
	return chosen - 1
}

// gid returns the calling goroutine's id, parsed from the stack header
// ("goroutine N [running]:"). Goroutine-local identity is all the gate
// needs; the parse costs about a microsecond, far below the wall time
// virtual scheduling saves.
func gid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
