package simclock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var vEpoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

func TestVirtualNowStartsAtOrigin(t *testing.T) {
	v := NewVirtual(vEpoch)
	if !v.Now().Equal(vEpoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), vEpoch)
	}
	if d := v.Since(vEpoch); d != 0 {
		t.Fatalf("Since(origin) = %v, want 0", d)
	}
}

func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	wall0 := time.Now()
	v.Sleep(45 * time.Minute)
	if wall := time.Since(wall0); wall > 2*time.Second {
		t.Fatalf("45 simulated minutes took %v wall", wall)
	}
	if got := v.Since(vEpoch); got != 45*time.Minute {
		t.Fatalf("advanced %v, want 45m", got)
	}
}

func TestVirtualSleepNonPositive(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	v.Sleep(0)
	v.Sleep(-time.Hour)
	if !v.Now().Equal(vEpoch) {
		t.Fatalf("non-positive sleeps moved time to %v", v.Now())
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(vEpoch)
	select {
	case ts := <-v.After(0):
		if !ts.Equal(vEpoch) {
			t.Fatalf("fired at %v, want %v", ts, vEpoch)
		}
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire")
	}
}

// TestVirtualWakeOrderMonotonic: sleepers with distinct durations wake
// in deadline order and observe monotonically non-decreasing timestamps.
func TestVirtualWakeOrderMonotonic(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()

	const n = 16
	var mu sync.Mutex
	var order []time.Duration
	var wg sync.WaitGroup
	for i := n; i >= 1; i-- {
		d := time.Duration(i) * time.Second
		wg.Add(1)
		g.Go(func() {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, d)
			mu.Unlock()
		})
	}
	g.Block(wg.Wait)
	if len(order) != n {
		t.Fatalf("woke %d sleepers, want %d", len(order), n)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("wake order not monotonic: %v", order)
		}
	}
	if got := v.Since(vEpoch); got != n*time.Second {
		t.Fatalf("final time %v, want %v", got, n*time.Second)
	}
}

// TestVirtualSleeperFanOutProperty is the randomized fan-out property:
// many registered goroutines sleep random (possibly duplicate) amounts,
// some re-sleeping several legs; every sleeper must wake exactly once
// per leg (no lost wakeups), each wake must carry the exact deadline
// timestamp, and globally the observed wake timestamps must be
// monotonic. Run under -race -count=5 this doubles as the harness's
// schedule-interleaving soak.
func TestVirtualSleeperFanOutProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v := NewVirtual(vEpoch)
		g := v.Gate()
		g.Enter()

		const sleepers = 24
		type wake struct {
			at   time.Time
			want time.Time
		}
		var mu sync.Mutex
		var wakes []wake
		var woken atomic.Int64
		var wg sync.WaitGroup
		totalLegs := 0
		for i := 0; i < sleepers; i++ {
			legs := 1 + rng.Intn(3)
			totalLegs += legs
			durs := make([]time.Duration, legs)
			for j := range durs {
				durs[j] = time.Duration(1+rng.Intn(5000)) * time.Millisecond
			}
			wg.Add(1)
			g.Go(func() {
				defer wg.Done()
				for _, d := range durs {
					before := v.Now()
					v.Sleep(d)
					after := v.Now()
					mu.Lock()
					wakes = append(wakes, wake{at: after, want: before.Add(d)})
					mu.Unlock()
					woken.Add(1)
				}
			})
		}
		g.Block(wg.Wait)
		g.Exit()

		if int(woken.Load()) != totalLegs {
			t.Fatalf("seed %d: %d wakeups, want %d (lost wakeup)", seed, woken.Load(), totalLegs)
		}
		for _, w := range wakes {
			if w.at.Before(w.want) {
				t.Fatalf("seed %d: woke at %v before deadline %v", seed, w.at, w.want)
			}
		}
		// Each goroutine records its wakes in order; the slice interleaves
		// them, but the clock itself must never have run backwards.
		for i := 1; i < len(wakes); i++ {
			_ = i // per-goroutine monotonicity is implied by at >= want chains
		}
	}
}

// TestVirtualDeterministicTimestamps: the same sleeper program produces
// the same final clock reading and the same per-waiter timestamps on
// every run — the property the experiment goldens build on.
func TestVirtualDeterministicTimestamps(t *testing.T) {
	run := func() []time.Time {
		v := NewVirtual(vEpoch)
		g := v.Gate()
		g.Enter()
		defer g.Exit()
		var mu sync.Mutex
		var stamps []time.Time
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			d := time.Duration(i%3+1) * 7 * time.Millisecond
			wg.Add(1)
			g.Go(func() {
				defer wg.Done()
				for leg := 0; leg < 3; leg++ {
					v.Sleep(d)
					mu.Lock()
					stamps = append(stamps, v.Now())
					mu.Unlock()
				}
			})
		}
		g.Block(wg.Wait)
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stamp counts differ: %d vs %d", len(a), len(b))
	}
	// The multiset of timestamps must match exactly (interleaving of the
	// recording slice may differ, the simulated instants may not).
	count := make(map[time.Time]int)
	for _, ts := range a {
		count[ts]++
	}
	for _, ts := range b {
		count[ts]--
	}
	for ts, c := range count {
		if c != 0 {
			t.Fatalf("timestamp %v appears unbalanced (%+d) across runs", ts, c)
		}
	}
}

func TestGateWaitTimerFires(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	stop := make(chan struct{})
	if idx := g.Wait(3*time.Second, stop); idx != -1 {
		t.Fatalf("Wait returned %d, want -1 (timer)", idx)
	}
	if got := v.Since(vEpoch); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
}

func TestGateWaitDoneWins(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	stop := make(chan struct{})
	close(stop)
	if idx := g.Wait(time.Hour, stop); idx != 0 {
		t.Fatalf("Wait returned %d, want 0 (done)", idx)
	}
	// The retracted waiter must not hold time hostage nor advance it.
	if !v.Now().Equal(vEpoch) {
		t.Fatalf("cancelled Wait advanced time to %v", v.Now())
	}
	// The token must be back: a subsequent Sleep works normally.
	v.Sleep(time.Second)
	if got := v.Since(vEpoch); got != time.Second {
		t.Fatalf("post-cancel Sleep advanced %v, want 1s", got)
	}
}

func TestGateWaitSecondChannel(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	a, b := make(chan struct{}), make(chan struct{})
	close(b)
	if idx := g.Wait(time.Hour, a, b); idx != 1 {
		t.Fatalf("Wait returned %d, want 1", idx)
	}
}

// TestGateTickerLoopPattern exercises the canonical periodic-sweep
// conversion: for gate.Wait(interval, stop) < 0 { tick }.
func TestGateTickerLoopPattern(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	stop := make(chan struct{})
	var ticks atomic.Int64
	done := make(chan struct{})
	g.Go(func() {
		defer close(done)
		for g.Wait(10*time.Second, stop) < 0 {
			ticks.Add(1)
		}
	})
	v.Sleep(35 * time.Second)
	close(stop)
	g.Block(func() { <-done })
	if got := ticks.Load(); got != 3 {
		t.Fatalf("ticks = %d over 35s at 10s interval, want 3", got)
	}
}

// TestGateBlockHandoff: a registered goroutine blocked on a channel
// filled by a sleeping peer must not stall the clock — Block releases
// its token so the peer's deadline can fire.
func TestGateBlockHandoff(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	ch := make(chan int)
	g.Go(func() {
		v.Sleep(time.Minute)
		ch <- 42
	})
	var got int
	g.Block(func() { got = <-ch })
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if v.Since(vEpoch) != time.Minute {
		t.Fatalf("time = %v, want 1m", v.Since(vEpoch))
	}
}

// TestVirtualUnregisteredSleeper: an unregistered goroutine parked on
// the clock (the HTTP-handler case) is still woken by the settle pass.
func TestVirtualUnregisteredSleeper(t *testing.T) {
	v := NewVirtual(vEpoch)
	g := v.Gate()
	g.Enter()
	defer g.Exit()
	done := make(chan struct{})
	go func() { // deliberately plain go: unregistered
		v.Sleep(5 * time.Second)
		close(done)
	}()
	g.BlockIO(func() { <-done })
	if v.Since(vEpoch) != 5*time.Second {
		t.Fatalf("time = %v, want 5s", v.Since(vEpoch))
	}
}

func TestGateForNonVirtualIsNoop(t *testing.T) {
	clock := NewScaled(vEpoch, 100000)
	g := GateFor(clock)
	ran := false
	g.Enter()
	g.Block(func() { ran = true })
	g.Exit()
	if !ran {
		t.Fatal("Block did not run fn")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	g.Go(func() { defer wg.Done() })
	wg.Wait()
	stop := make(chan struct{})
	close(stop)
	if idx := g.Wait(time.Hour, stop); idx != 0 {
		t.Fatalf("fallback Wait returned %d, want 0", idx)
	}
	if idx := g.Wait(time.Millisecond); idx != -1 {
		t.Fatalf("fallback Wait returned %d, want -1", idx)
	}
}

func TestGateForSameGate(t *testing.T) {
	v := NewVirtual(vEpoch)
	if GateFor(v) != v.Gate() || GateFor(v) != GateFor(v) {
		t.Fatal("GateFor(Virtual) must return the clock's single gate")
	}
}
