package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Manual is a hand-advanced Clock for deterministic tests. Goroutines that
// Sleep on a Manual clock block until a call to Advance (or Set) moves the
// clock past their deadline. Advance wakes sleepers in deadline order so
// that timer callbacks observe monotonically non-decreasing times.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
	index    int
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *waiterHeap) Push(x interface{}) { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// NewManual returns a Manual clock initialized to start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (c *Manual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: blocks until Advance moves the clock past the
// deadline.
func (c *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After implements Clock.
func (c *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	heap.Push(&c.waiters, &waiter{deadline: c.now.Add(d), ch: ch})
	return ch
}

// Since implements Clock.
func (c *Manual) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Advance moves the clock forward by d, waking all sleepers whose deadline
// has been reached, in deadline order.
func (c *Manual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.set(c.now.Add(d))
	c.mu.Unlock()
}

// Set jumps the clock to t (which must not be earlier than the current
// time; earlier values are ignored) and wakes eligible sleepers.
func (c *Manual) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.set(t)
	}
	c.mu.Unlock()
}

// set advances to target, releasing waiters in deadline order. Caller holds mu.
func (c *Manual) set(target time.Time) {
	for len(c.waiters) > 0 && !c.waiters[0].deadline.After(target) {
		w := heap.Pop(&c.waiters).(*waiter)
		// The sleeper observes its own deadline, not the final target, so
		// a large Advance still produces ordered wake-up timestamps.
		c.now = w.deadline
		w.ch <- w.deadline
	}
	c.now = target
}

// PendingWaiters reports how many goroutines are currently blocked on the
// clock. Useful for tests that need to synchronize with sleepers.
func (c *Manual) PendingWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// NextDeadline returns the earliest pending deadline and true, or the zero
// time and false when no goroutine is waiting.
func (c *Manual) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		return time.Time{}, false
	}
	return c.waiters[0].deadline, true
}
