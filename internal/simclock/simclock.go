// Package simclock provides a pluggable clock abstraction that lets the
// SwapServeLLM simulation compress calibrated multi-second hardware
// latencies (model loads, CUDA-graph capture, PCIe transfers) into
// microseconds of wall time while reporting consistent simulated
// timestamps.
//
// Four implementations are provided:
//
//   - Real: the system clock, for live deployments of the framework.
//   - Scaled: simulated time runs Scale times faster than wall time; a
//     Sleep(87s) with Scale 10000 blocks for 8.7ms while Now() advances
//     by 87s. Concurrency interleavings remain realistic because all
//     goroutines share the same compression factor.
//   - Manual: a hand-advanced clock for deterministic unit tests.
//   - Virtual: a discrete-event clock that jumps straight to the next
//     deadline whenever the system is quiescent (see Gate). The
//     experiment harness runs on it: zero wall waiting and
//     byte-identical artifacts run-to-run.
package simclock

import (
	"runtime"
	"time"
)

// Clock is the time source used by every latency-inducing operation in the
// simulation. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time in the clock's (possibly simulated)
	// timeline.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of simulated time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)
	// After returns a channel that receives the simulated time after d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Since returns the simulated time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed directly by the operating system clock.
type Real struct{}

// NewReal returns a Clock that uses the wall clock without scaling.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Scaled is a Clock whose timeline advances Scale times faster than wall
// time. The zero value is not usable; construct with NewScaled.
type Scaled struct {
	origin time.Time // simulated time at start
	start  time.Time // wall time at start
	scale  float64
}

// DefaultScale is the compression factor used by tests and benchmarks:
// one simulated second costs 5ms of wall time. The scale trades wall time
// for accuracy — unscaled wall-clock overhead (scheduling, HTTP handling)
// is magnified by the scale factor when observed in simulated time, so
// experiments that measure end-to-end latency keep the factor moderate.
const DefaultScale = 200

// spinThreshold is the wall duration below which Sleep busy-waits instead
// of calling time.Sleep: the kernel timer granularity makes short sleeps
// overshoot by up to ~1ms, which the scale factor would magnify into
// seconds of simulated error.
const spinThreshold = 1500 * time.Microsecond

// NewScaled returns a Clock whose simulated timeline starts at origin and
// advances scale times faster than wall time. scale must be >= 1.
func NewScaled(origin time.Time, scale float64) *Scaled {
	if scale < 1 {
		scale = 1
	}
	return &Scaled{origin: origin, start: time.Now(), scale: scale}
}

// NewScaledFromWall returns a Scaled clock whose simulated timeline
// starts at the current wall time. It exists so deterministic packages
// can obtain a default clock without calling time.Now themselves (which
// swaplint's clockcheck forbids there).
func NewScaledFromWall(scale float64) *Scaled {
	return NewScaled(time.Now(), scale)
}

// Now implements Clock: origin plus the scaled wall-clock elapsed time.
func (c *Scaled) Now() time.Time {
	elapsed := time.Since(c.start)
	return c.origin.Add(time.Duration(float64(elapsed) * c.scale))
}

// Sleep implements Clock: blocks for d/Scale of wall time. The final
// stretch is spun rather than slept so that timer-granularity overshoot
// (which the scale factor would magnify) does not distort simulated
// latencies.
func (c *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	wall := time.Duration(float64(d) / c.scale)
	deadline := time.Now().Add(wall)
	if wall > spinThreshold {
		time.Sleep(wall - spinThreshold)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// After implements Clock. Unlike Sleep, After uses coarse (non-spinning)
// timers: it serves periodic background loops (reapers, prefetchers,
// backoffs) where sub-millisecond precision is irrelevant but burning a
// CPU on a spin wait would starve the simulation on small machines.
func (c *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.Now()
		return ch
	}
	wall := time.Duration(float64(d) / c.scale)
	// time.AfterFunc instead of a goroutine per call: an abandoned After
	// (a reaper tick dropped at shutdown) leaves only a runtime timer
	// that fires into a buffered channel, not a parked goroutine.
	time.AfterFunc(wall, func() { ch <- c.Now() })
	return ch
}

// Since implements Clock.
func (c *Scaled) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Scale reports the compression factor.
func (c *Scaled) Scale() float64 { return c.scale }
