// Package container simulates the Podman container runtime that
// SwapServeLLM manages inference-engine backends with: container lifecycle
// (create/start/pause/unpause/stop/remove), cgroup-freezer-backed pause,
// per-container network endpoints, and integration with the transparent
// GPU checkpoint driver. Each container hosts a simulated inference
// engine served over a real HTTP listener, so the SwapServeLLM router
// proxies requests exactly as it would against Podman-published ports.
package container

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/cgroup"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/engine"
	"swapservellm/internal/obs"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
)

// State is a container's lifecycle state, mirroring Podman's.
type State string

// Container states.
const (
	StateCreated State = "created"
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateStopped State = "stopped"
	StateRemoved State = "removed"
)

// Errors returned by the runtime.
var (
	ErrNotFound  = errors.New("container: no such container")
	ErrExists    = errors.New("container: name already in use")
	ErrBadState  = errors.New("container: invalid state for operation")
	ErrInitError = errors.New("container: engine initialization failed")
)

// EngineFactory builds the engine workload for a container, given the
// container ID to use as the GPU allocation owner.
type EngineFactory func(owner string) (engine.Engine, error)

// Spec describes a container to create.
type Spec struct {
	// Name is the unique container name.
	Name string
	// Image is the container image reference (informational).
	Image string
	// Engine builds the containerized engine workload.
	Engine EngineFactory
}

// Container is one managed container instance.
type Container struct {
	id     string
	name   string
	image  string
	ip     string
	cgPath string

	rt *Runtime

	mu       sync.Mutex
	state    State
	eng      engine.Engine
	server   *http.Server
	listener net.Listener
	port     int
	ready    chan struct{} // closed when engine init finishes
	initErr  error
}

// ID returns the container's unique identifier.
func (c *Container) ID() string { return c.id }

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// IP returns the container's address on the simulated bridge network.
func (c *Container) IP() string { return c.ip }

// Port returns the host TCP port the engine API is published on (0 until
// started).
func (c *Container) Port() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.port
}

// BaseURL returns the http endpoint of the published engine API.
func (c *Container) BaseURL() string {
	return fmt.Sprintf("http://127.0.0.1:%d", c.Port())
}

// State returns the lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Engine returns the containerized engine.
func (c *Container) Engine() engine.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng
}

// WaitReady blocks until the engine finishes initializing (or fails), or
// ctx is cancelled.
func (c *Container) WaitReady(ctx context.Context) error {
	c.mu.Lock()
	ready := c.ready
	c.mu.Unlock()
	if ready == nil {
		return fmt.Errorf("%w: container %s not started", ErrBadState, c.name)
	}
	cancelled := false
	simclock.GateFor(c.rt.clock).Block(func() {
		select {
		case <-ctx.Done():
			cancelled = true
		case <-ready:
		}
	})
	if cancelled {
		return ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.initErr != nil {
		return fmt.Errorf("%w: %w", ErrInitError, c.initErr)
	}
	return nil
}

// Info is a point-in-time inspection snapshot.
type Info struct {
	ID     string
	Name   string
	Image  string
	IP     string
	Port   int
	State  State
	Engine perfmodel.EngineKind
	Model  string
	Cgroup string
}

// Inspect returns the container's current metadata.
func (c *Container) Inspect() Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	info := Info{
		ID: c.id, Name: c.name, Image: c.image, IP: c.ip,
		Port: c.port, State: c.state, Cgroup: c.cgPath,
	}
	if c.eng != nil {
		info.Engine = c.eng.Kind()
		info.Model = c.eng.Model().Name
	}
	return info
}

// Runtime manages containers on one host.
type Runtime struct {
	clock   simclock.Clock
	testbed perfmodel.Testbed
	freezer *cgroup.Freezer
	driver  *cudackpt.Driver

	mu         sync.Mutex
	containers map[string]*Container // by name
	seq        int
}

// NewRuntime builds a runtime over the given substrates. The freezer and
// driver may be shared with other components (the engine controller uses
// the driver directly for checkpoints).
func NewRuntime(clock simclock.Clock, tb perfmodel.Testbed, fr *cgroup.Freezer, drv *cudackpt.Driver) *Runtime {
	rt := &Runtime{
		clock:      clock,
		testbed:    tb,
		freezer:    fr,
		driver:     drv,
		containers: make(map[string]*Container),
	}
	// Podman puts containers under machine.slice by convention.
	fr.Create("/machine.slice")
	return rt
}

// Driver exposes the GPU checkpoint driver (used by the engine
// controller).
func (rt *Runtime) Driver() *cudackpt.Driver { return rt.driver }

// Create creates a container from spec: allocates an identity, a cgroup,
// and the engine workload. The engine does not initialize until Start.
// ctx carries the active trace span.
func (rt *Runtime) Create(ctx context.Context, spec Spec) (ctr *Container, err error) {
	_, span := obs.Start(ctx, "ctr.create", obs.String("name", spec.Name))
	defer func() { span.EndErr(err) }()
	if spec.Name == "" {
		return nil, errors.New("container: spec missing Name")
	}
	if spec.Engine == nil {
		return nil, errors.New("container: spec missing Engine factory")
	}
	rt.mu.Lock()
	if _, dup := rt.containers[spec.Name]; dup {
		rt.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.Name)
	}
	rt.seq++
	id := fmt.Sprintf("ctr-%04d-%s", rt.seq, spec.Name)
	ip := fmt.Sprintf("10.88.0.%d", 1+rt.seq%250)
	rt.mu.Unlock()

	rt.clock.Sleep(rt.testbed.ContainerCreate)

	cgPath := "/machine.slice/libpod-" + id
	if err := rt.freezer.Create(cgPath); err != nil {
		return nil, fmt.Errorf("container: creating cgroup: %w", err)
	}
	eng, err := spec.Engine(id)
	if err != nil {
		rt.freezer.Remove(cgPath)
		return nil, fmt.Errorf("container: building engine: %w", err)
	}

	c := &Container{
		id:     id,
		name:   spec.Name,
		image:  spec.Image,
		ip:     ip,
		cgPath: cgPath,
		rt:     rt,
		state:  StateCreated,
		eng:    eng,
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.containers[spec.Name]; dup {
		rt.freezer.Remove(cgPath)
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.Name)
	}
	rt.containers[spec.Name] = c
	return c, nil
}

// Start launches the container: publishes the engine API on a host port
// and begins engine initialization in the background. Use WaitReady to
// block until the engine is serving.
func (rt *Runtime) Start(ctx context.Context, c *Container) (err error) {
	_, span := obs.Start(ctx, "ctr.start", obs.String("id", c.ID()))
	defer func() { span.EndErr(err) }()
	c.mu.Lock()
	// Only freshly created containers start: a stopped container's engine
	// process is gone, so (as with `podman run --rm` workloads) it must
	// be removed and recreated.
	if c.state != StateCreated {
		s := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: start from %s", ErrBadState, s)
	}
	c.mu.Unlock()

	rt.clock.Sleep(rt.testbed.ContainerStart)
	rt.clock.Sleep(time.Duration(float64(perfmodel.EngineBootOverhead(c.eng.Kind())) * rt.testbed.InitScale))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("container: publishing port: %w", err)
	}
	srv := &http.Server{Handler: c.eng.Handler()}
	go srv.Serve(ln)

	ready := make(chan struct{})
	c.mu.Lock()
	c.listener = ln
	c.server = srv
	c.port = ln.Addr().(*net.TCPAddr).Port
	c.ready = ready
	c.state = StateRunning
	eng := c.eng
	c.mu.Unlock()

	// Register the engine's GPU process with the checkpoint driver.
	if drv := rt.driver; drv != nil {
		// The device is embedded in the engine config; registration uses
		// the engine's view of its own weights.
		if err := drv.RegisterSharded(c.id, eng.Devices(), eng.Kind(), eng.Model().WeightBytes()); err != nil {
			// Already registered (restart): acceptable.
			if !errors.Is(err, cudackpt.ErrAlreadyExists) {
				ln.Close()
				return err
			}
		}
	}

	simclock.GateFor(rt.clock).Go(func() {
		_, initErr := eng.Init(context.Background())
		c.mu.Lock()
		c.initErr = initErr
		c.mu.Unlock()
		close(ready)
	})
	return nil
}

// Pause freezes the container's cgroup: the engine stops making
// progress. The lifecycle state commits only after the freezer write
// succeeds, so a failed freeze leaves the container Running. ctx
// carries the active trace span.
func (rt *Runtime) Pause(ctx context.Context, c *Container) (err error) {
	ctx, span := obs.Start(ctx, "ctr.pause", obs.String("id", c.ID()))
	defer func() { span.EndErr(err) }()
	c.mu.Lock()
	if c.state != StateRunning {
		s := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: pause from %s", ErrBadState, s)
	}
	eng := c.eng
	cg := c.cgPath
	c.mu.Unlock()

	if err := rt.freezer.Freeze(ctx, cg); err != nil {
		return err
	}
	c.mu.Lock()
	c.state = StatePaused
	c.mu.Unlock()
	eng.Gate().Pause()
	rt.clock.Sleep(rt.testbed.FreezeLatency)
	return nil
}

// Unpause thaws the container's cgroup. As with Pause, the state
// commits only after the freezer write succeeds: a failed thaw leaves
// the container Paused (and still frozen), so the caller can retry.
// ctx carries the active trace span.
func (rt *Runtime) Unpause(ctx context.Context, c *Container) (err error) {
	ctx, span := obs.Start(ctx, "ctr.unpause", obs.String("id", c.ID()))
	defer func() { span.EndErr(err) }()
	c.mu.Lock()
	if c.state != StatePaused {
		s := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: unpause from %s", ErrBadState, s)
	}
	eng := c.eng
	cg := c.cgPath
	c.mu.Unlock()

	if err := rt.freezer.Thaw(ctx, cg); err != nil {
		return err
	}
	c.mu.Lock()
	c.state = StateRunning
	c.mu.Unlock()
	rt.clock.Sleep(rt.testbed.ThawLatency)
	eng.Gate().Resume()
	return nil
}

// Stop terminates the container's workload and closes its published
// port. ctx carries the active trace span.
func (rt *Runtime) Stop(ctx context.Context, c *Container) (err error) {
	ctx, span := obs.Start(ctx, "ctr.stop", obs.String("id", c.ID()))
	defer func() { span.EndErr(err) }()
	c.mu.Lock()
	if c.state != StateRunning && c.state != StatePaused {
		s := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: stop from %s", ErrBadState, s)
	}
	wasPaused := c.state == StatePaused
	c.state = StateStopped
	srv := c.server
	eng := c.eng
	cg := c.cgPath
	c.server = nil
	c.listener = nil
	c.mu.Unlock()

	if wasPaused {
		rt.freezer.Thaw(ctx, cg)
		eng.Gate().Resume()
	}
	rt.clock.Sleep(rt.testbed.ContainerStop)
	if srv != nil {
		srv.Close()
	}
	if rt.driver != nil {
		rt.driver.Unregister(c.id)
	}
	return eng.Shutdown()
}

// Remove deletes a stopped or created container.
func (rt *Runtime) Remove(c *Container) error {
	c.mu.Lock()
	if c.state != StateStopped && c.state != StateCreated {
		s := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: remove from %s", ErrBadState, s)
	}
	c.state = StateRemoved
	cg := c.cgPath
	name := c.name
	c.mu.Unlock()

	rt.freezer.Remove(cg)
	rt.mu.Lock()
	delete(rt.containers, name)
	rt.mu.Unlock()
	return nil
}

// Get returns the container with the given name.
func (rt *Runtime) Get(name string) (*Container, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.containers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return c, nil
}

// List returns all containers sorted by name.
func (rt *Runtime) List() []*Container {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Container, 0, len(rt.containers))
	for _, c := range rt.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Shutdown stops and removes every container. It always runs to
// completion, so it uses a background context rather than taking one.
func (rt *Runtime) Shutdown() {
	for _, c := range rt.List() {
		switch c.State() {
		case StateRunning, StatePaused:
			rt.Stop(context.Background(), c)
		}
		if s := c.State(); s == StateStopped || s == StateCreated {
			rt.Remove(c)
		}
	}
}
