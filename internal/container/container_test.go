package container

import (
	"context"
	"errors"
	"testing"
	"time"

	"swapservellm/internal/cgroup"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/engine"
	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/openai"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

var testEpoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

type rig struct {
	clock   *simclock.Scaled
	tb      perfmodel.Testbed
	device  *gpu.Device
	store   *storage.ModelStore
	freezer *cgroup.Freezer
	driver  *cudackpt.Driver
	rt      *Runtime
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simclock.NewScaled(testEpoch, 5000)
	tb := perfmodel.H100()
	dev := gpu.NewDevice(0, tb.GPU, tb.GPUMemBytes)
	store := storage.NewModelStore(clock, tb)
	fr := cgroup.NewFreezer()
	drv := cudackpt.NewDriver(clock, tb, 0)
	return &rig{
		clock: clock, tb: tb, device: dev, store: store,
		freezer: fr, driver: drv,
		rt: NewRuntime(clock, tb, fr, drv),
	}
}

// spec builds a container spec hosting an Ollama engine for modelName.
func (r *rig) spec(t *testing.T, name, modelName string) Spec {
	t.Helper()
	m := models.Default().MustLookup(modelName)
	if err := engine.StageWeights(r.store, perfmodel.TierDisk, m); err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:  name,
		Image: "ollama/ollama:latest",
		Engine: func(owner string) (engine.Engine, error) {
			return engine.NewOllama(engine.Config{
				Owner: owner, Model: m, Testbed: r.tb, Clock: r.clock,
				Device: r.device, Store: r.store, Tier: perfmodel.TierDisk,
			})
		},
	}
}

// startReady creates, starts, and waits for a container.
func (r *rig) startReady(t *testing.T, name, modelName string) *Container {
	t.Helper()
	c, err := r.rt.Create(context.Background(), r.spec(t, name, modelName))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Start(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateAssignsIdentity(t *testing.T) {
	r := newRig(t)
	c, err := r.rt.Create(context.Background(), r.spec(t, "backend-a", "llama3.2:1b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() == "" || c.IP() == "" || c.Name() != "backend-a" {
		t.Fatalf("identity: id=%q ip=%q name=%q", c.ID(), c.IP(), c.Name())
	}
	if c.State() != StateCreated {
		t.Fatalf("state = %s", c.State())
	}
	// The cgroup must exist under machine.slice.
	if _, err := r.freezer.SelfState("/machine.slice/libpod-" + c.ID()); err != nil {
		t.Fatalf("cgroup missing: %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.rt.Create(context.Background(), Spec{Name: "", Engine: func(string) (engine.Engine, error) { return nil, nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.rt.Create(context.Background(), Spec{Name: "x"}); err == nil {
		t.Error("missing engine factory accepted")
	}
	r.rt.Create(context.Background(), r.spec(t, "dup", "llama3.2:1b-fp16"))
	if _, err := r.rt.Create(context.Background(), r.spec(t, "dup", "llama3.2:1b-fp16")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate name: %v", err)
	}
}

func TestStartServesEngineAPI(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-b", "llama3.2:1b-fp16")
	if c.State() != StateRunning || c.Port() == 0 {
		t.Fatalf("state=%s port=%d", c.State(), c.Port())
	}
	cli := openai.NewClient(c.BaseURL())
	seed := int64(1)
	resp, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:     "llama3.2:1b-fp16",
		Messages:  []openai.Message{{Role: "user", Content: "hello"}},
		Seed:      &seed,
		MaxTokens: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.CompletionTokens != 4 {
		t.Fatalf("usage = %+v", resp.Usage)
	}
}

func TestStartRegistersWithDriver(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-drv", "llama3.2:1b-fp16")
	if _, err := r.driver.State(c.ID()); err != nil {
		t.Fatalf("driver does not know the container process: %v", err)
	}
}

func TestWaitReadyBeforeStart(t *testing.T) {
	r := newRig(t)
	c, _ := r.rt.Create(context.Background(), r.spec(t, "pre", "llama3.2:1b-fp16"))
	if err := c.WaitReady(context.Background()); !errors.Is(err, ErrBadState) {
		t.Fatalf("WaitReady before start: %v", err)
	}
}

func TestPauseBlocksServing(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-p", "llama3.2:1b-fp16")
	if err := r.rt.Pause(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if c.State() != StatePaused {
		t.Fatalf("state = %s", c.State())
	}
	frozen, err := r.freezer.EffectivelyFrozen("/machine.slice/libpod-" + c.ID())
	if err != nil || !frozen {
		t.Fatalf("cgroup not frozen: %v %v", frozen, err)
	}

	// A request against the paused container must hang until unpause.
	done := make(chan error, 1)
	go func() {
		seed := int64(1)
		_, err := openai.NewClient(c.BaseURL()).ChatCompletion(context.Background(),
			&openai.ChatCompletionRequest{
				Model:     "llama3.2:1b-fp16",
				Messages:  []openai.Message{{Role: "user", Content: "x"}},
				Seed:      &seed,
				MaxTokens: 2,
			})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("request against paused container returned: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := r.rt.Unpause(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("request after unpause: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not complete after unpause")
	}
}

func TestPauseStateMachine(t *testing.T) {
	r := newRig(t)
	c, _ := r.rt.Create(context.Background(), r.spec(t, "sm", "llama3.2:1b-fp16"))
	if err := r.rt.Pause(context.Background(), c); !errors.Is(err, ErrBadState) {
		t.Fatalf("pause created container: %v", err)
	}
	if err := r.rt.Unpause(context.Background(), c); !errors.Is(err, ErrBadState) {
		t.Fatalf("unpause created container: %v", err)
	}
	r.rt.Start(context.Background(), c)
	c.WaitReady(context.Background())
	r.rt.Pause(context.Background(), c)
	if err := r.rt.Pause(context.Background(), c); !errors.Is(err, ErrBadState) {
		t.Fatalf("double pause: %v", err)
	}
	r.rt.Unpause(context.Background(), c)
	if err := r.rt.Unpause(context.Background(), c); !errors.Is(err, ErrBadState) {
		t.Fatalf("double unpause: %v", err)
	}
}

func TestStopReleasesResources(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-s", "llama3.2:1b-fp16")
	if r.device.Used() == 0 {
		t.Fatal("expected GPU usage while running")
	}
	if err := r.rt.Stop(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateStopped {
		t.Fatalf("state = %s", c.State())
	}
	if r.device.OwnerUsage(c.ID()) != 0 {
		t.Fatal("GPU memory not released on stop")
	}
	// The driver must no longer track the process.
	if _, err := r.driver.State(c.ID()); err == nil {
		t.Fatal("driver still tracks stopped container")
	}
}

func TestStopPausedContainer(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-sp", "llama3.2:1b-fp16")
	r.rt.Pause(context.Background(), c)
	if err := r.rt.Stop(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateStopped {
		t.Fatalf("state = %s", c.State())
	}
}

func TestRemove(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-r", "llama3.2:1b-fp16")
	if err := r.rt.Remove(c); !errors.Is(err, ErrBadState) {
		t.Fatalf("remove running container: %v", err)
	}
	r.rt.Stop(context.Background(), c)
	if err := r.rt.Remove(c); err != nil {
		t.Fatal(err)
	}
	if _, err := r.rt.Get("backend-r"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed container still listed: %v", err)
	}
	// Cgroup must be gone.
	if _, err := r.freezer.SelfState("/machine.slice/libpod-" + c.ID()); err == nil {
		t.Fatal("cgroup not removed")
	}
}

func TestGetAndList(t *testing.T) {
	r := newRig(t)
	r.rt.Create(context.Background(), r.spec(t, "zeta", "llama3.2:1b-fp16"))
	r.rt.Create(context.Background(), r.spec(t, "alpha", "deepseek-r1:1.5b-q4"))
	list := r.rt.List()
	if len(list) != 2 || list[0].Name() != "alpha" || list[1].Name() != "zeta" {
		t.Fatalf("List = %v", list)
	}
	if _, err := r.rt.Get("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.rt.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
}

func TestInspect(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "backend-i", "llama3.2:1b-fp16")
	info := c.Inspect()
	if info.Name != "backend-i" || info.State != StateRunning ||
		info.Engine != perfmodel.EngineOllama || info.Model != "llama3.2:1b-fp16" {
		t.Fatalf("info = %+v", info)
	}
	if info.Port == 0 || info.Cgroup == "" {
		t.Fatalf("info missing port/cgroup: %+v", info)
	}
}

func TestShutdownStopsEverything(t *testing.T) {
	r := newRig(t)
	r.startReady(t, "a", "llama3.2:1b-fp16")
	b := r.startReady(t, "b", "deepseek-r1:1.5b-q4")
	r.rt.Pause(context.Background(), b)
	r.rt.Shutdown()
	if len(r.rt.List()) != 0 {
		t.Fatalf("containers remain after shutdown: %v", r.rt.List())
	}
	if r.device.Used() != 0 {
		t.Fatalf("GPU memory leaked: %d", r.device.Used())
	}
}

func TestStartTakesSimulatedTime(t *testing.T) {
	r := newRig(t)
	c, _ := r.rt.Create(context.Background(), r.spec(t, "timing", "llama3.2:1b-fp16"))
	t0 := r.clock.Now()
	r.rt.Start(context.Background(), c)
	c.WaitReady(context.Background())
	elapsed := r.clock.Since(t0)
	// Ollama engine init ~2s + container start 0.8s + boot 0.1s.
	if elapsed < 2*time.Second || elapsed > 20*time.Second {
		t.Fatalf("start+init took %v simulated", elapsed)
	}
}

func TestEngineInitFailureSurfaced(t *testing.T) {
	r := newRig(t)
	// Fill the GPU so init fails with OOM.
	r.device.Alloc("squatter", 79*(int64(1)<<30))
	c, err := r.rt.Create(context.Background(), r.spec(t, "oom", "deepseek-r1:14b-fp16"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Start(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	err = c.WaitReady(context.Background())
	if !errors.Is(err, ErrInitError) {
		t.Fatalf("WaitReady = %v, want ErrInitError", err)
	}
}

func TestStoppedContainerCannotRestart(t *testing.T) {
	// A stopped container's engine process is gone: restart is an error;
	// remove and recreate instead.
	r := newRig(t)
	c := r.startReady(t, "norestart", "llama3.2:1b-fp16")
	r.rt.Stop(context.Background(), c)
	if err := r.rt.Start(context.Background(), c); !errors.Is(err, ErrBadState) {
		t.Fatalf("restart of stopped container: %v", err)
	}
	r.rt.Remove(c)
	c2 := r.startReady(t, "norestart", "llama3.2:1b-fp16")
	if c2.State() != StateRunning {
		t.Fatalf("recreated container state = %v", c2.State())
	}
}

func TestDoubleStart(t *testing.T) {
	r := newRig(t)
	c := r.startReady(t, "dstart", "llama3.2:1b-fp16")
	if err := r.rt.Start(context.Background(), c); !errors.Is(err, ErrBadState) {
		t.Fatalf("double start: %v", err)
	}
}
