package chaos

import (
	"fmt"
	"sync"
)

// Event is one recorded state transition of an audited component.
type Event struct {
	// Seq is the global record order (0-based).
	Seq int
	// Kind names the component class: "ckpt" for checkpoint-driver
	// process transitions, "node" for cluster node lifecycle.
	Kind string
	// Subject identifies the instance (process ID, node ID).
	Subject string
	// From and To are the transition endpoints (component state names).
	From, To string
}

// String renders the event for failure messages.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s: %s->%s", e.Seq, e.Kind, e.Subject, e.From, e.To)
}

// Trace is an append-only transition log that audited components write
// to, so the invariant checker can validate whole histories — e.g.
// that no process was ever checkpointed twice without a restore in
// between. A nil *Trace is a valid no-op sink.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record appends one transition. Safe on a nil receiver.
func (t *Trace) Record(kind, subject, from, to string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{
		Seq: len(t.events), Kind: kind, Subject: subject, From: from, To: to,
	})
}

// Events returns a copy of the recorded history in order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
