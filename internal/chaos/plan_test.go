package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("seed=42; cudackpt.restore: p=0.2 times=3; cudackpt.pcie: delay=10ms, p=0.5; cluster.sse: after=7 times=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 42, Rules: []Rule{
		{Site: SiteCkptRestore, P: 0.2, Times: 3},
		{Site: SiteCkptPCIe, Delay: 10 * time.Millisecond, P: 0.5},
		{Site: SiteSSE, After: 7, Times: 1},
	}}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("plan = %+v, want %+v", plan, want)
	}
}

func TestParsePlanDefaults(t *testing.T) {
	plan, err := ParsePlan("cudackpt.lock:")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 0 || len(plan.Rules) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if p := plan.Rules[0].probability(); p != 1 {
		t.Fatalf("default probability = %v, want 1", p)
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, text := range []string{
		"cudackpt.restore p=1",              // missing colon
		"cudackpt.restore: q=1",             // unknown key
		"cudackpt.restore: p=2",             // probability out of range
		"cudackpt.restore: p=-0.5",          // negative probability
		"cudackpt.restore: times=-1",        // negative count
		"cudackpt.restore: after=-2",        // negative skip
		"cudackpt.restore: delay=-5ms",      // negative delay
		"cudackpt.restore: delay=xyz",       // unparseable duration
		"cudackpt.restore: p",               // bare key
		"seed=abc; cudackpt.restore:",       // bad seed
		"cudackpt.restore:; seed=1",         // seed not first
		"seed=1; seed=2; cudackpt.restore:", // duplicate seed
		"BAD SITE: p=1",                     // illegal site characters
		": p=1",                             // empty site
	} {
		if _, err := ParsePlan(text); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", text)
		}
	}
}

// TestPlanStringRoundTrip: the canonical rendering reparses to the
// identical plan — the property the fuzz target checks at scale.
func TestPlanStringRoundTrip(t *testing.T) {
	plan := Plan{Seed: -7, Rules: []Rule{
		{Site: SiteCkptRestore, P: 0.125, Times: 2},
		{Site: SiteCkptPCIe, Delay: 1500 * time.Microsecond},
		{Site: SiteHeartbeat, After: 4},
		{Site: SiteCgroupThaw},
	}}
	text := plan.String()
	back, err := ParsePlan(text)
	if err != nil {
		t.Fatalf("reparsing %q: %v", text, err)
	}
	if !reflect.DeepEqual(plan, back) {
		t.Fatalf("round trip:\n  plan %+v\n  text %q\n  back %+v", plan, text, back)
	}
}

func TestFormatStats(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rules: []Rule{{Site: SiteCkptLock, Times: 1}}})
	in.At(SiteCkptLock)
	in.At(SiteCkptLock)
	in.At(SiteCkptRestore)
	got := FormatStats(in.Stats())
	if !strings.Contains(got, "cudackpt.lock=1/2") || !strings.Contains(got, "cudackpt.restore=0/1") {
		t.Fatalf("FormatStats = %q", got)
	}
}
