package chaos

import (
	"reflect"
	"testing"
)

// FuzzParsePlan feeds arbitrary text through the plan parser and, for
// every accepted plan, checks the parse→render→parse round trip is
// exact — the property seed replay depends on (a plan printed into a
// failure message must rebuild the identical schedule).
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=42",
		"seed=42; cudackpt.restore: p=0.2 times=3",
		"cudackpt.pcie: delay=10ms, p=0.5",
		"cluster.sse: after=7 times=1; cluster.heartbeat: times=3",
		"seed=-1; cgroup.freeze: p=0.05; cgroup.thaw: p=0.05",
		"storage.write: p=1 times=1; storage.read: after=2",
		"seed=9223372036854775807; cudackpt.lock:",
		"a.b-c_d: p=0.999999 after=100 times=100 delay=1h2m3s",
		"seed=1;;; cudackpt.unlock: p=1 ;",
		"seed=2; site: p=0.5,times=2,after=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		plan, err := ParsePlan(text)
		if err != nil {
			return // rejected input: nothing more to check
		}
		if verr := plan.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan its own Validate rejects: %v", text, verr)
		}
		canon := plan.String()
		back, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, text, err)
		}
		if !reflect.DeepEqual(normalizeRules(plan), normalizeRules(back)) {
			t.Fatalf("round trip diverged:\n  input %q\n  plan  %+v\n  canon %q\n  back  %+v", text, plan, canon, back)
		}
		// The schedule must be reproducible: two injectors over the same
		// plan agree on the first decisions at every declared site.
		a, b := NewInjector(plan), NewInjector(back)
		for _, r := range plan.Rules {
			for i := 0; i < 8; i++ {
				oa, ob := a.At(r.Site), b.At(r.Site)
				if (oa.Err != nil) != (ob.Err != nil) || oa.Delay != ob.Delay {
					t.Fatalf("plan %q: decision %d at %s diverged", canon, i, r.Site)
				}
			}
		}
	})
}

// normalizeRules maps a plan to value semantics for comparison (nil vs
// empty rule slices compare equal).
func normalizeRules(p Plan) Plan {
	if len(p.Rules) == 0 {
		p.Rules = nil
	}
	return p
}
