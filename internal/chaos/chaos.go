// Package chaos is the deterministic fault-schedule engine for the
// SwapServeLLM test harness. A Plan — a seed plus per-site rules —
// drives an Injector that every swappable layer consults at its
// injectable fault points (the checkpoint driver's lock / checkpoint /
// restore / unlock transitions and PCIe transfers, the cgroup freezer,
// the model store, and the cluster's heartbeat / proxy / SSE paths).
//
// Decisions are a pure function of (seed, site, occurrence index), so a
// failing schedule replays exactly from its seed regardless of how
// goroutines interleave across sites: the n-th checkpoint at a site
// fails (or stalls) on every run with that seed. This replaces the
// ad-hoc one-shot InjectFault mechanism that previously lived in
// internal/cudackpt.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Site identifies one injectable fault point in the system.
type Site string

// Injectable fault sites, one per swappable layer operation.
const (
	// SiteCkptLock / SiteCkptCheckpoint / SiteCkptRestore /
	// SiteCkptUnlock fail the corresponding cuda-checkpoint driver
	// transition before any state changes.
	SiteCkptLock       Site = "cudackpt.lock"
	SiteCkptCheckpoint Site = "cudackpt.checkpoint"
	SiteCkptRestore    Site = "cudackpt.restore"
	SiteCkptUnlock     Site = "cudackpt.unlock"
	// SiteCkptPCIe is latency-only: it stretches a checkpoint or restore
	// transfer, modelling a congested or degraded PCIe link.
	SiteCkptPCIe Site = "cudackpt.pcie"
	// SiteCkptChunk fails one chunk of a chunked checkpoint or restore
	// transfer mid-pipeline. The driver retries the chunk a bounded
	// number of times before aborting and rolling the transfer back.
	SiteCkptChunk Site = "cudackpt.chunk"
	// SiteCgroupFreeze / SiteCgroupThaw fail the freezer state write.
	SiteCgroupFreeze Site = "cgroup.freeze"
	SiteCgroupThaw   Site = "cgroup.thaw"
	// SiteStorageRead fails a model-store blob read; SiteStorageWrite
	// tears a blob write, leaving an unreadable partial blob behind.
	SiteStorageRead  Site = "storage.read"
	SiteStorageWrite Site = "storage.write"
	// SiteHeartbeat makes a registry health probe report the node dead;
	// a burst of missLimit firings simulates a node crash, and the
	// probes succeeding again afterwards simulates its restart.
	SiteHeartbeat Site = "cluster.heartbeat"
	// SiteProxy fails a gateway→node forward before it is attempted,
	// modelling a proxy-level connection timeout.
	SiteProxy Site = "cluster.proxy"
	// SiteSSE cuts a relayed SSE stream between events, modelling a
	// node dying (or its connection dropping) mid-stream.
	SiteSSE Site = "cluster.sse"
	// SiteSchedAdmit flips a gateway admission decision: an admit
	// becomes a shed and a shed becomes an admit, modelling a
	// mis-estimated queue delay.
	SiteSchedAdmit Site = "sched.admit"
	// SiteSchedPrefetch suppresses a predictive pre-warm the demand
	// predictor asked for, modelling a misprediction ahead of a ramp
	// (the prefetch is skipped; the ramp then pays the cold swap).
	SiteSchedPrefetch Site = "sched.prefetch"
	// SiteSchedEvict inverts a keep-alive/TTL eviction decision in the
	// reaper: a keep becomes an evict (premature reclaim) and an evict
	// becomes a keep (leaked residency), modelling a mispredicted TTL.
	SiteSchedEvict Site = "sched.evict"
	// SiteCkptFetch fails one chunk fetch in the checkpoint store's
	// restore path (a torn disk read or a dropped peer connection). The
	// store retries a bounded number of times, then falls back to the
	// next-best restore source for that chunk.
	SiteCkptFetch Site = "ckptstore.fetch"
	// SiteCkptPromote fails one chunk fetch during a tier promotion
	// (disk→RAM or peer→RAM), with the same bounded-retry fallback to
	// the next-best source.
	SiteCkptPromote Site = "ckptstore.promote"
	// SiteProxyTranslate fails the front door's protocol translation
	// (client wire → IR) for one request, modelling a codec bug or a
	// payload the translator cannot round-trip; the gateway answers with
	// a well-formed protocol error instead of forwarding garbage.
	SiteProxyTranslate Site = "proxy.translate"
	// SiteProxyCache degrades one response-cache lookup: the request
	// bypasses the cache (counted as a bypass, never a wrong answer) as
	// if the cache shard were briefly unavailable.
	SiteProxyCache Site = "proxy.cache"
)

// Sites lists every built-in site in sorted order.
func Sites() []Site {
	out := []Site{
		SiteCkptLock, SiteCkptCheckpoint, SiteCkptRestore, SiteCkptUnlock,
		SiteCkptPCIe, SiteCkptChunk, SiteCgroupFreeze, SiteCgroupThaw,
		SiteStorageRead, SiteStorageWrite,
		SiteHeartbeat, SiteProxy, SiteSSE,
		SiteSchedAdmit, SiteSchedPrefetch, SiteSchedEvict,
		SiteCkptFetch, SiteCkptPromote,
		SiteProxyTranslate, SiteProxyCache,
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrInjected marks failures produced by chaos injection. Layers wrap
// it with the site name; recovery paths must treat it like any other
// transient substrate failure.
var ErrInjected = errors.New("chaos: injected fault")

// Outcome is the injector's decision for one occurrence at a site.
// The zero Outcome means "proceed normally".
type Outcome struct {
	// Err is non-nil when the operation must fail.
	Err error
	// Delay is extra simulated latency to charge (latency faults).
	Delay time.Duration
}

// ruleState tracks one rule's firing progress.
type ruleState struct {
	rule  Rule
	fired int
}

// SiteStats reports injection activity at one site.
type SiteStats struct {
	// Occurrences counts how many times the site was consulted.
	Occurrences int
	// Fired counts how many consultations produced a fault.
	Fired int
}

// Injector evaluates a Plan at runtime. All methods are safe for
// concurrent use, and a nil *Injector is a valid no-op injector, so
// components can hold one unconditionally.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules map[Site][]*ruleState
	seen  map[Site]int
	fired map[Site]int
}

// NewInjector builds an injector executing plan.
func NewInjector(plan Plan) *Injector {
	in := &Injector{
		seed:  plan.Seed,
		rules: make(map[Site][]*ruleState),
		seen:  make(map[Site]int),
		fired: make(map[Site]int),
	}
	for _, r := range plan.Rules {
		in.rules[r.Site] = append(in.rules[r.Site], &ruleState{rule: r})
	}
	return in
}

// FailNext returns an injector that fails the next n occurrences at
// site — the one-shot idiom the legacy InjectFault API provided.
func FailNext(site Site, n int) *Injector {
	return NewInjector(Plan{Seed: 1, Rules: []Rule{{Site: site, P: 1, Times: n}}})
}

// At records one occurrence at site and returns the injection decision.
// With multiple rules for a site the first that fires wins; error rules
// and delay rules may both be armed on one site.
func (in *Injector) At(site Site) Outcome {
	if in == nil {
		return Outcome{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	occ := in.seen[site]
	in.seen[site] = occ + 1
	for idx, rs := range in.rules[site] {
		r := rs.rule
		if occ < r.After {
			continue
		}
		if r.Times > 0 && rs.fired >= r.Times {
			continue
		}
		if p := r.probability(); p < 1 && in.draw(site, idx, occ) >= p {
			continue
		}
		rs.fired++
		in.fired[site]++
		if r.Delay > 0 {
			return Outcome{Delay: r.Delay}
		}
		return Outcome{Err: fmt.Errorf("%w: %s (occurrence %d)", ErrInjected, site, occ)}
	}
	return Outcome{}
}

// Stats returns per-site consultation and firing counts for every site
// that has been consulted at least once.
func (in *Injector) Stats() map[Site]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]SiteStats, len(in.seen))
	for s, n := range in.seen {
		out[s] = SiteStats{Occurrences: n, Fired: in.fired[s]}
	}
	return out
}

// TotalFired returns the total number of faults injected so far.
func (in *Injector) TotalFired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var total int
	for _, n := range in.fired {
		total += n
	}
	return total
}

// Seed returns the plan seed the injector replays.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// draw produces a deterministic uniform value in [0,1) for the given
// (site, rule, occurrence) coordinate under the injector's seed.
func (in *Injector) draw(site Site, ruleIdx, occ int) float64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	x := uint64(in.seed) ^ h.Sum64() ^ (uint64(ruleIdx+1) << 48) ^ uint64(occ)*0x9e3779b97f4a7c15
	// splitmix64 finalizer: decorrelates the coordinate bits.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
