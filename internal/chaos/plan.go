package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Rule schedules faults at one site.
type Rule struct {
	// Site is the fault point the rule arms.
	Site Site
	// P is the per-occurrence firing probability in [0,1]; zero means 1
	// (always fire) so one-shot rules read naturally.
	P float64
	// After skips the first After occurrences at the site before the
	// rule becomes eligible (deterministic mid-stream cut points).
	After int
	// Times bounds the total number of firings (0 = unlimited).
	Times int
	// Delay, when positive, turns the fault into a latency injection of
	// that much simulated time instead of an error.
	Delay time.Duration
}

// probability returns the effective firing probability.
func (r Rule) probability() float64 {
	if r.P == 0 {
		return 1
	}
	return r.P
}

// validate rejects out-of-range rule fields.
func (r Rule) validate() error {
	if r.Site == "" {
		return fmt.Errorf("chaos: rule missing site")
	}
	for _, c := range string(r.Site) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("chaos: invalid site %q", r.Site)
		}
	}
	if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
		return fmt.Errorf("chaos: rule %s: probability %v outside [0,1]", r.Site, r.P)
	}
	if r.After < 0 {
		return fmt.Errorf("chaos: rule %s: negative after %d", r.Site, r.After)
	}
	if r.Times < 0 {
		return fmt.Errorf("chaos: rule %s: negative times %d", r.Site, r.Times)
	}
	if r.Delay < 0 {
		return fmt.Errorf("chaos: rule %s: negative delay %v", r.Site, r.Delay)
	}
	return nil
}

// Plan is a complete reproducible fault schedule: the seed plus the
// per-site rules. The same plan always injects the same faults at the
// same per-site occurrence indices.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// Validate checks every rule.
func (p Plan) Validate() error {
	for _, r := range p.Rules {
		if err := r.validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the plan in the canonical text form accepted by
// ParsePlan: "seed=N; site: k=v ...; site: k=v ...". Rules keep their
// declaration order.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", p.Seed)
	for _, r := range p.Rules {
		sb.WriteString("; ")
		sb.WriteString(string(r.Site))
		sb.WriteString(":")
		if r.P != 0 {
			fmt.Fprintf(&sb, " p=%s", strconv.FormatFloat(r.P, 'g', -1, 64))
		}
		if r.After != 0 {
			fmt.Fprintf(&sb, " after=%d", r.After)
		}
		if r.Times != 0 {
			fmt.Fprintf(&sb, " times=%d", r.Times)
		}
		if r.Delay != 0 {
			fmt.Fprintf(&sb, " delay=%s", r.Delay)
		}
	}
	return sb.String()
}

// ParsePlan parses the compact plan text form: semicolon-separated
// clauses, the first optionally "seed=N", the rest "site: key=value
// ...", with keys p / after / times / delay and values separated by
// spaces or commas. Example:
//
//	seed=42; cudackpt.restore: p=0.2 times=3; cudackpt.pcie: delay=10ms p=0.5
func ParsePlan(text string) (Plan, error) {
	var plan Plan
	seenSeed := false
	for _, clause := range strings.Split(text, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if strings.HasPrefix(clause, "seed=") {
			if seenSeed || len(plan.Rules) > 0 {
				return Plan{}, fmt.Errorf("chaos: seed clause must come first, once")
			}
			seed, err := strconv.ParseInt(strings.TrimPrefix(clause, "seed="), 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: bad seed in %q: %w", clause, err)
			}
			plan.Seed = seed
			seenSeed = true
			continue
		}
		site, kvs, ok := strings.Cut(clause, ":")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: clause %q is not 'site: k=v ...'", clause)
		}
		rule := Rule{Site: Site(strings.TrimSpace(site))}
		fields := strings.FieldsFunc(kvs, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
		for _, f := range fields {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return Plan{}, fmt.Errorf("chaos: %s: %q is not key=value", rule.Site, f)
			}
			var err error
			switch key {
			case "p":
				rule.P, err = strconv.ParseFloat(val, 64)
			case "after":
				rule.After, err = strconv.Atoi(val)
			case "times":
				rule.Times, err = strconv.Atoi(val)
			case "delay":
				rule.Delay, err = time.ParseDuration(val)
			default:
				return Plan{}, fmt.Errorf("chaos: %s: unknown key %q", rule.Site, key)
			}
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: %s: bad %s value %q: %w", rule.Site, key, val, err)
			}
		}
		if err := rule.validate(); err != nil {
			return Plan{}, err
		}
		plan.Rules = append(plan.Rules, rule)
	}
	return plan, nil
}

// MustParsePlan is ParsePlan for compile-time-constant plans in tests
// and experiments; it panics on error.
func MustParsePlan(text string) Plan {
	p, err := ParsePlan(text)
	if err != nil {
		panic(err)
	}
	return p
}

// WithSeed returns a copy of the plan with the seed replaced — the
// replay-by-seed workflow: keep the rules, sweep the seed.
func (p Plan) WithSeed(seed int64) Plan {
	out := Plan{Seed: seed, Rules: make([]Rule, len(p.Rules))}
	copy(out.Rules, p.Rules)
	return out
}

// sortedSiteNames is a helper for deterministic reporting.
func sortedSiteNames(m map[Site]SiteStats) []Site {
	out := make([]Site, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FormatStats renders injector stats as "site=fired/occurrences ..."
// in sorted site order (for logs and experiment rows).
func FormatStats(m map[Site]SiteStats) string {
	var sb strings.Builder
	for i, s := range sortedSiteNames(m) {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%d/%d", s, m[s].Fired, m[s].Occurrences)
	}
	return sb.String()
}
