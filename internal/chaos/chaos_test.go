package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestNilInjectorIsNoOp: components hold a possibly-nil injector and
// call it unconditionally.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if out := in.At(SiteCkptLock); out.Err != nil || out.Delay != 0 {
		t.Fatalf("nil injector produced %+v", out)
	}
	if in.TotalFired() != 0 || in.Stats() != nil || in.Seed() != 0 {
		t.Fatal("nil injector reported activity")
	}
}

// TestFailNextMatchesLegacyOneShot: FailNext fails exactly the next n
// occurrences, then stays quiet — the old InjectFault contract.
func TestFailNextMatchesLegacyOneShot(t *testing.T) {
	in := FailNext(SiteCkptRestore, 2)
	for i := 0; i < 2; i++ {
		if out := in.At(SiteCkptRestore); !errors.Is(out.Err, ErrInjected) {
			t.Fatalf("occurrence %d: err = %v, want injected", i, out.Err)
		}
	}
	if out := in.At(SiteCkptRestore); out.Err != nil {
		t.Fatalf("third occurrence fired: %v", out.Err)
	}
	// Other sites are untouched.
	if out := in.At(SiteCkptLock); out.Err != nil {
		t.Fatalf("unrelated site fired: %v", out.Err)
	}
}

// TestAfterSkipsOccurrences: an after=k rule leaves the first k
// occurrences alone and fires on occurrence k exactly.
func TestAfterSkipsOccurrences(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, Rules: []Rule{{Site: SiteSSE, After: 3, Times: 1}}})
	for i := 0; i < 3; i++ {
		if out := in.At(SiteSSE); out.Err != nil {
			t.Fatalf("occurrence %d fired early: %v", i, out.Err)
		}
	}
	if out := in.At(SiteSSE); !errors.Is(out.Err, ErrInjected) {
		t.Fatalf("occurrence 3 did not fire: %v", out.Err)
	}
	if out := in.At(SiteSSE); out.Err != nil {
		t.Fatalf("times=1 rule fired twice: %v", out.Err)
	}
}

// TestDelayRule: delay rules stall instead of erroring.
func TestDelayRule(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{Site: SiteCkptPCIe, Delay: 25 * time.Millisecond}}})
	out := in.At(SiteCkptPCIe)
	if out.Err != nil || out.Delay != 25*time.Millisecond {
		t.Fatalf("delay outcome = %+v", out)
	}
}

// TestDeterministicAcrossInterleavings: decisions at one site depend
// only on (seed, site, occurrence), not on activity at other sites or
// on goroutine interleaving.
func TestDeterministicAcrossInterleavings(t *testing.T) {
	plan := MustParsePlan("seed=1234; cudackpt.restore: p=0.3; cudackpt.checkpoint: p=0.3")

	sequence := func(interleave bool) []bool {
		in := NewInjector(plan)
		var out []bool
		for i := 0; i < 200; i++ {
			if interleave {
				// Unrelated traffic at another site between every draw.
				in.At(SiteCkptCheckpoint)
				in.At(SiteHeartbeat)
			}
			out = append(out, in.At(SiteCkptRestore).Err != nil)
		}
		return out
	}

	clean, noisy := sequence(false), sequence(true)
	fired := 0
	for i := range clean {
		if clean[i] != noisy[i] {
			t.Fatalf("occurrence %d: decision changed with cross-site interleaving", i)
		}
		if clean[i] {
			fired++
		}
	}
	// p=0.3 over 200 draws: sanity-check the hash is not degenerate.
	if fired < 30 || fired > 90 {
		t.Fatalf("p=0.3 fired %d/200 times", fired)
	}

	// A different seed produces a different schedule.
	other := NewInjector(plan.WithSeed(4321))
	same := true
	for i := 0; i < 200; i++ {
		if (other.At(SiteCkptRestore).Err != nil) != clean[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1234 and 4321 produced identical schedules")
	}
}

// TestConcurrentUse: the injector is safe under concurrent consultation
// and the total occurrence accounting stays exact.
func TestConcurrentUse(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, Rules: []Rule{{Site: SiteCkptLock, P: 0.5}}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				in.At(SiteCkptLock)
			}
		}()
	}
	wg.Wait()
	st := in.Stats()[SiteCkptLock]
	if st.Occurrences != 2000 {
		t.Fatalf("occurrences = %d, want 2000", st.Occurrences)
	}
	if st.Fired == 0 || st.Fired == 2000 {
		t.Fatalf("p=0.5 fired %d/2000", st.Fired)
	}
	if in.TotalFired() != st.Fired {
		t.Fatalf("TotalFired = %d, site fired = %d", in.TotalFired(), st.Fired)
	}
}

// TestTraceRecordsInOrder: the trace keeps a stable, sequenced history
// and tolerates a nil receiver.
func TestTraceRecordsInOrder(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Record("ckpt", "p1", "running", "locked")
	if nilTrace.Len() != 0 || nilTrace.Events() != nil {
		t.Fatal("nil trace recorded")
	}

	tr := NewTrace()
	tr.Record("ckpt", "p1", "running", "locked")
	tr.Record("ckpt", "p1", "locked", "checkpointed")
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("events = %+v", ev)
	}
	if ev[1].From != "locked" || ev[1].To != "checkpointed" {
		t.Fatalf("event 1 = %+v", ev[1])
	}
}
