package models

import (
	"strings"
	"testing"
)

func TestCapabilities(t *testing.T) {
	has := func(caps []string, want string) bool {
		for _, c := range caps {
			if c == want {
				return true
			}
		}
		return false
	}
	gemma3 := Model{Name: "gemma3:4b", Family: FamilyGemma3}
	llama := Model{Name: "llama3.2:1b", Family: FamilyLLaMA}
	coder := Model{Name: "deepseek-coder:6.7b", Family: FamilyDeepSeekCoder}

	for _, m := range []Model{gemma3, llama, coder} {
		caps := m.Capabilities()
		for _, base := range []string{"chat", "completion", "embeddings", "rerank"} {
			if !has(caps, base) {
				t.Fatalf("%s missing base capability %q: %v", m.Name, base, caps)
			}
		}
	}
	if !has(gemma3.Capabilities(), "vision") || !has(gemma3.Capabilities(), "audio") {
		t.Fatalf("gemma3 = %v", gemma3.Capabilities())
	}
	if !has(llama.Capabilities(), "vision") || has(llama.Capabilities(), "audio") {
		t.Fatalf("llama = %v", llama.Capabilities())
	}
	if has(coder.Capabilities(), "vision") {
		t.Fatalf("deepseek-coder = %v", coder.Capabilities())
	}
	if joined := strings.Join(coder.Capabilities(), ","); joined != "chat,completion,embeddings,rerank" {
		t.Fatalf("capability order must be stable, got %s", joined)
	}
}
