package models

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Catalog is a read-only registry of model definitions, keyed by canonical
// name. The zero value is empty; use NewCatalog or Default.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]Model
}

// NewCatalog builds a catalog from the given models. Duplicate names panic:
// the catalog is assembled from static definitions, so a duplicate is a
// programming error.
func NewCatalog(ms ...Model) *Catalog {
	c := &Catalog{byName: make(map[string]Model, len(ms))}
	for _, m := range ms {
		if _, dup := c.byName[m.Name]; dup {
			panic(fmt.Sprintf("models: duplicate catalog entry %q", m.Name))
		}
		c.byName[m.Name] = m
	}
	return c
}

// Lookup returns the model with the given canonical name.
func (c *Catalog) Lookup(name string) (Model, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.byName[name]
	return m, ok
}

// MustLookup is Lookup that panics on a missing name; for static experiment
// definitions where absence is a programming error.
func (c *Catalog) MustLookup(name string) Model {
	m, ok := c.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("models: unknown model %q", name))
	}
	return m
}

// Register adds a model definition, returning an error on duplicates.
func (c *Catalog) Register(m Model) error {
	if m.Name == "" {
		return fmt.Errorf("models: empty model name")
	}
	if !m.Quant.Valid() {
		return fmt.Errorf("models: model %q has invalid quantization %q", m.Name, m.Quant)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[m.Name]; dup {
		return fmt.Errorf("models: duplicate model %q", m.Name)
	}
	c.byName[m.Name] = m
	return nil
}

// Names returns all canonical names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of registered models.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byName)
}

// ByFamily returns all models of the given family, sorted by parameter
// count then name.
func (c *Catalog) ByFamily(f Family) []Model {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Model
	for _, m := range c.byName {
		if m.Family == f {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Params != out[j].Params {
			return out[i].Params < out[j].Params
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// def constructs a catalog entry; sizes follow the published architectures.
func def(name, display string, fam Family, paramsB float64, q Quantization, a Arch) Model {
	return Model{
		Name:        name,
		DisplayName: display,
		Family:      fam,
		Params:      int64(paramsB * 1e9),
		Quant:       q,
		Arch:        a,
	}
}

// Published transformer architectures for the evaluated models.
var (
	archLlama1B  = Arch{Layers: 16, HiddenDim: 2048, NumHeads: 32, NumKVHeads: 8, HeadDim: 64, VocabSize: 128256, ContextLen: 131072}
	archLlama3B  = Arch{Layers: 28, HiddenDim: 3072, NumHeads: 24, NumKVHeads: 8, HeadDim: 128, VocabSize: 128256, ContextLen: 131072}
	archLlama8B  = Arch{Layers: 32, HiddenDim: 4096, NumHeads: 32, NumKVHeads: 8, HeadDim: 128, VocabSize: 128256, ContextLen: 131072}
	archLlama70B = Arch{Layers: 80, HiddenDim: 8192, NumHeads: 64, NumKVHeads: 8, HeadDim: 128, VocabSize: 128256, ContextLen: 131072}
	archDS15B    = Arch{Layers: 28, HiddenDim: 1536, NumHeads: 12, NumKVHeads: 2, HeadDim: 128, VocabSize: 151936, ContextLen: 131072}
	archDS7B     = Arch{Layers: 28, HiddenDim: 3584, NumHeads: 28, NumKVHeads: 4, HeadDim: 128, VocabSize: 152064, ContextLen: 131072}
	archDS8B     = archLlama8B // R1-Distill-Llama-8B
	archDS14B    = Arch{Layers: 48, HiddenDim: 5120, NumHeads: 40, NumKVHeads: 8, HeadDim: 128, VocabSize: 152064, ContextLen: 131072}
	archDSC67B   = Arch{Layers: 32, HiddenDim: 4096, NumHeads: 32, NumKVHeads: 32, HeadDim: 128, VocabSize: 32256, ContextLen: 16384}
	archGemma7B  = Arch{Layers: 28, HiddenDim: 3072, NumHeads: 16, NumKVHeads: 16, HeadDim: 256, VocabSize: 256000, ContextLen: 8192}
	archGemma4B  = Arch{Layers: 34, HiddenDim: 2560, NumHeads: 8, NumKVHeads: 4, HeadDim: 256, VocabSize: 262144, ContextLen: 131072}
	archGemma12B = Arch{Layers: 48, HiddenDim: 3840, NumHeads: 16, NumKVHeads: 8, HeadDim: 256, VocabSize: 262144, ContextLen: 131072}
	archGemma27B = Arch{Layers: 62, HiddenDim: 5376, NumHeads: 32, NumKVHeads: 16, HeadDim: 128, VocabSize: 262144, ContextLen: 131072}
)

// catalogEntries lists every model variant referenced in the paper's
// evaluation (Figures 2, 5, 6; Table 1; §3.4 examples).
func catalogEntries() []Model {
	base := []Model{
		// LLaMA family.
		def("llama3.2:1b-fp16", "L3.2-1B", FamilyLLaMA, 1.24, QuantFP16, archLlama1B),
		def("llama3.2:3b-fp16", "L3.2-3B", FamilyLLaMA, 3.21, QuantFP16, archLlama3B),
		def("llama3.1:8b-fp16", "L3.1-8B", FamilyLLaMA, 8.03, QuantFP16, archLlama8B),
		def("llama3.3:70b-fp8", "L3.3-70B", FamilyLLaMA, 70.6, QuantFP8, archLlama70B),
		// DeepSeek-R1 distills (Figure 5 sweeps these across Q4/Q8/FP16).
		def("deepseek-r1:1.5b-fp16", "DS-1.5B", FamilyDeepSeekR1, 1.78, QuantFP16, archDS15B),
		def("deepseek-r1:7b-fp16", "DS-7B", FamilyDeepSeekR1, 7.62, QuantFP16, archDS7B),
		def("deepseek-r1:8b-fp16", "DS-8B", FamilyDeepSeekR1, 8.03, QuantFP16, archDS8B),
		def("deepseek-r1:14b-fp16", "DS-14B", FamilyDeepSeekR1, 14.77, QuantFP16, archDS14B),
		def("deepseek-coder:6.7b-fp16", "DSC-6.7B", FamilyDeepSeekCoder, 6.74, QuantFP16, archDSC67B),
		// Gemma.
		def("gemma:7b-fp16", "G-7B", FamilyGemma, 8.54, QuantFP16, archGemma7B),
		def("gemma3:4b-fp16", "G3-4B", FamilyGemma3, 4.3, QuantFP16, archGemma4B),
		def("gemma3:12b-fp16", "G3-12B", FamilyGemma3, 12.19, QuantFP16, archGemma12B),
		def("gemma3:27b-fp16", "G3-27B", FamilyGemma3, 27.01, QuantFP16, archGemma27B),
	}
	// Quantized GGUF variants for the Ollama loading experiments (Figure 5).
	quantSweep := []string{
		"deepseek-r1:1.5b-fp16",
		"deepseek-r1:7b-fp16",
		"deepseek-r1:8b-fp16",
		"deepseek-r1:14b-fp16",
		"llama3.2:1b-fp16",
		"llama3.1:8b-fp16",
	}
	byName := make(map[string]Model, len(base))
	for _, m := range base {
		byName[m.Name] = m
	}
	out := base
	for _, name := range quantSweep {
		m := byName[name]
		for _, q := range []Quantization{QuantQ4, QuantQ8} {
			v := m
			v.Quant = q
			v.Name = strings.Replace(m.Name, "-fp16", "-"+strings.ToLower(tagOf(q)), 1)
			v.DisplayName = m.DisplayName + " " + strings.ToUpper(tagOf(q))
			out = append(out, v)
		}
	}
	return out
}

// tagOf maps a quantization to the short tag used in catalog names.
func tagOf(q Quantization) string {
	switch q {
	case QuantQ4:
		return "q4"
	case QuantQ8:
		return "q8"
	case QuantFP8:
		return "fp8"
	default:
		return "fp16"
	}
}

var defaultCatalog = NewCatalog(catalogEntries()...)

// Default returns the shared catalog with every model variant used by the
// paper's evaluation.
func Default() *Catalog { return defaultCatalog }
