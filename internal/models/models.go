// Package models defines the LLM model catalog used throughout the
// SwapServeLLM reproduction: the LLaMA, DeepSeek, and Gemma model families
// evaluated in the paper, with their architectures, quantization levels,
// weight sizes, and GPU memory footprints.
package models

import (
	"fmt"
	"strings"
)

// Family identifies a model architecture family.
type Family string

// Model families evaluated in the paper (§5.1).
const (
	FamilyLLaMA         Family = "llama"
	FamilyDeepSeekR1    Family = "deepseek-r1"
	FamilyDeepSeekCoder Family = "deepseek-coder"
	FamilyGemma         Family = "gemma"
	FamilyGemma3        Family = "gemma3"
)

// Quantization identifies the numeric format of the stored weights.
type Quantization string

// Quantization levels used in the evaluation (Figure 5 sweeps Q4/Q8/FP16;
// LLaMA 3.3 70B is served in FP8 in §3.4).
const (
	QuantQ4   Quantization = "Q4_K_M"
	QuantQ8   Quantization = "Q8_0"
	QuantFP8  Quantization = "FP8"
	QuantFP16 Quantization = "FP16"
)

// BytesPerParam returns the effective storage bytes per parameter for the
// quantization, including GGUF block metadata overheads for the K-quants.
func (q Quantization) BytesPerParam() float64 {
	switch q {
	case QuantQ4:
		return 0.5625 // 4.5 bits/weight effective
	case QuantQ8:
		return 1.0625 // 8.5 bits/weight effective
	case QuantFP8:
		return 1.0
	case QuantFP16:
		return 2.0
	default:
		return 2.0
	}
}

// Valid reports whether q is one of the supported quantization levels.
func (q Quantization) Valid() bool {
	switch q {
	case QuantQ4, QuantQ8, QuantFP8, QuantFP16:
		return true
	}
	return false
}

// Arch holds the transformer architecture parameters that determine the
// KV-cache footprint and compute characteristics.
type Arch struct {
	Layers     int // number of transformer blocks
	HiddenDim  int // model (embedding) dimension
	NumHeads   int // attention heads
	NumKVHeads int // key/value heads (GQA)
	HeadDim    int // per-head dimension
	VocabSize  int // tokenizer vocabulary size
	ContextLen int // maximum context length supported
}

// Model describes one deployable model variant: an architecture at a
// specific parameter count and quantization.
type Model struct {
	// Name is the canonical identifier, e.g. "deepseek-r1:14b-fp16".
	Name string
	// DisplayName is the short label used in the paper's tables/figures,
	// e.g. "DS-14B".
	DisplayName string
	Family      Family
	// Params is the total parameter count.
	Params int64
	Quant  Quantization
	Arch   Arch
}

// String returns the canonical name.
func (m Model) String() string { return m.Name }

// ParamsB returns the parameter count in billions.
func (m Model) ParamsB() float64 { return float64(m.Params) / 1e9 }

// WeightBytes returns the on-disk/weight-file size in bytes for the model's
// quantization.
func (m Model) WeightBytes() int64 {
	return int64(float64(m.Params) * m.Quant.BytesPerParam())
}

// KVBytesPerToken returns the KV-cache bytes required per token of context
// (two tensors — K and V — per layer, over the KV heads, at the cache
// dtype width; FP16 cache assumed except for Q4/Q8 GGUF models which use
// FP16 caches as well in llama.cpp's default configuration).
func (m Model) KVBytesPerToken() int64 {
	const cacheBytesPerScalar = 2 // FP16 KV cache
	a := m.Arch
	if a.Layers == 0 || a.NumKVHeads == 0 || a.HeadDim == 0 {
		return 0
	}
	return int64(2 * a.Layers * a.NumKVHeads * a.HeadDim * cacheBytesPerScalar)
}

// KVCacheBytes returns the KV-cache bytes for a context of tokens tokens.
func (m Model) KVCacheBytes(tokens int) int64 {
	return m.KVBytesPerToken() * int64(tokens)
}

// Capabilities returns the protocol families the model serves, in the
// order reported by GET /v1/models. Every catalog model is
// multi-headed in the simulation (chat, legacy completions, embeddings,
// rerank); the multimodal families additionally take vision and — for
// Gemma 3 — audio attachments.
func (m Model) Capabilities() []string {
	caps := []string{"chat", "completion", "embeddings", "rerank"}
	switch m.Family {
	case FamilyGemma3:
		caps = append(caps, "vision", "audio")
	case FamilyLLaMA:
		caps = append(caps, "vision")
	}
	return caps
}

// WithQuant returns a copy of the model at a different quantization level,
// with the name rewritten accordingly.
func (m Model) WithQuant(q Quantization) Model {
	base := m.Name
	if i := strings.LastIndex(base, "-"); i > 0 {
		// The suffix after the final dash is the quant tag for catalog names
		// of the form "family:size-quant".
		if strings.Contains(base[i+1:], "b") == false {
			base = base[:i]
		}
	}
	m.Name = fmt.Sprintf("%s-%s", base, strings.ToLower(string(q)))
	m.Quant = q
	return m
}

// GiB is one gibibyte in bytes.
const GiB = 1 << 30

// MiB is one mebibyte in bytes.
const MiB = 1 << 20
