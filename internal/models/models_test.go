package models

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantBytesPerParam(t *testing.T) {
	cases := []struct {
		q    Quantization
		want float64
	}{
		{QuantQ4, 0.5625},
		{QuantQ8, 1.0625},
		{QuantFP8, 1.0},
		{QuantFP16, 2.0},
		{Quantization("bogus"), 2.0},
	}
	for _, c := range cases {
		if got := c.q.BytesPerParam(); got != c.want {
			t.Errorf("BytesPerParam(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantValid(t *testing.T) {
	for _, q := range []Quantization{QuantQ4, QuantQ8, QuantFP8, QuantFP16} {
		if !q.Valid() {
			t.Errorf("%s should be valid", q)
		}
	}
	if Quantization("INT3").Valid() {
		t.Error("INT3 should be invalid")
	}
}

func TestWeightBytesOrdering(t *testing.T) {
	// For a fixed parameter count, weight size must strictly increase with
	// bit width: Q4 < FP8 < Q8 < FP16.
	m := Default().MustLookup("deepseek-r1:14b-fp16")
	q4, q8 := m, m
	q4.Quant = QuantQ4
	q8.Quant = QuantQ8
	fp8 := m
	fp8.Quant = QuantFP8
	if !(q4.WeightBytes() < fp8.WeightBytes() && fp8.WeightBytes() < q8.WeightBytes() && q8.WeightBytes() < m.WeightBytes()) {
		t.Fatalf("weight sizes not ordered: q4=%d fp8=%d q8=%d fp16=%d",
			q4.WeightBytes(), fp8.WeightBytes(), q8.WeightBytes(), m.WeightBytes())
	}
}

func TestWeightBytesPlausible(t *testing.T) {
	// Sanity anchors: LLaMA 3.1 8B FP16 is ~16 GB, DS-R1 14B FP16 ~29.5 GB.
	cases := []struct {
		name         string
		minGB, maxGB float64
	}{
		{"llama3.1:8b-fp16", 14, 18},
		{"deepseek-r1:14b-fp16", 27, 32},
		{"deepseek-r1:1.5b-q4", 0.8, 1.3},
		{"llama3.3:70b-fp8", 65, 76},
	}
	for _, c := range cases {
		m := Default().MustLookup(c.name)
		gb := float64(m.WeightBytes()) / GiB
		if gb < c.minGB || gb > c.maxGB {
			t.Errorf("%s weight size %.2f GiB outside [%v, %v]", c.name, gb, c.minGB, c.maxGB)
		}
	}
}

func TestKVBytesPerToken(t *testing.T) {
	m := Default().MustLookup("llama3.1:8b-fp16")
	// 2 tensors * 32 layers * 8 KV heads * 128 head dim * 2 bytes = 131072.
	if got := m.KVBytesPerToken(); got != 131072 {
		t.Fatalf("KVBytesPerToken = %d, want 131072", got)
	}
	if got := m.KVCacheBytes(1000); got != 131072000 {
		t.Fatalf("KVCacheBytes(1000) = %d", got)
	}
}

func TestKVBytesZeroArch(t *testing.T) {
	m := Model{Name: "x", Quant: QuantFP16}
	if got := m.KVBytesPerToken(); got != 0 {
		t.Fatalf("zero arch KVBytesPerToken = %d, want 0", got)
	}
}

func TestCatalogLookup(t *testing.T) {
	c := Default()
	m, ok := c.Lookup("deepseek-r1:14b-fp16")
	if !ok {
		t.Fatal("deepseek-r1:14b-fp16 missing from catalog")
	}
	if m.DisplayName != "DS-14B" || m.Family != FamilyDeepSeekR1 {
		t.Fatalf("unexpected entry %+v", m)
	}
	if _, ok := c.Lookup("gpt-5"); ok {
		t.Fatal("unknown model found in catalog")
	}
}

func TestCatalogMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown model did not panic")
		}
	}()
	Default().MustLookup("nonexistent:model")
}

func TestCatalogContainsPaperModels(t *testing.T) {
	// Every model named in Table 1 and Figures 2/5/6 must be present.
	required := []string{
		"deepseek-r1:1.5b-fp16", "deepseek-r1:7b-fp16", "deepseek-r1:8b-fp16", "deepseek-r1:14b-fp16",
		"gemma3:4b-fp16", "gemma3:12b-fp16", "gemma3:27b-fp16",
		"llama3.1:8b-fp16", "llama3.2:1b-fp16", "llama3.2:3b-fp16",
		"gemma:7b-fp16", "deepseek-coder:6.7b-fp16", "llama3.3:70b-fp8",
		"deepseek-r1:14b-q4", "deepseek-r1:14b-q8", "deepseek-r1:1.5b-q4",
	}
	for _, name := range required {
		if _, ok := Default().Lookup(name); !ok {
			t.Errorf("catalog missing %s", name)
		}
	}
}

func TestCatalogRegister(t *testing.T) {
	c := NewCatalog()
	m := def("custom:1b-fp16", "C-1B", FamilyLLaMA, 1.0, QuantFP16, archLlama1B)
	if err := c.Register(m); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(m); err == nil {
		t.Fatal("duplicate Register did not fail")
	}
	if err := c.Register(Model{Name: "", Quant: QuantFP16}); err == nil {
		t.Fatal("empty-name Register did not fail")
	}
	if err := c.Register(Model{Name: "bad", Quant: "INT3"}); err == nil {
		t.Fatal("invalid-quant Register did not fail")
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	names := Default().Names()
	if len(names) != Default().Len() {
		t.Fatalf("Names length %d != Len %d", len(names), Default().Len())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestCatalogByFamilySorted(t *testing.T) {
	ds := Default().ByFamily(FamilyDeepSeekR1)
	if len(ds) < 4 {
		t.Fatalf("expected >=4 DeepSeek-R1 variants, got %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Params > ds[i].Params {
			t.Fatalf("ByFamily not sorted by params at %d", i)
		}
		if ds[i].Family != FamilyDeepSeekR1 {
			t.Fatalf("wrong family %s in result", ds[i].Family)
		}
	}
}

func TestNewCatalogDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCatalog with duplicates did not panic")
		}
	}()
	m := def("dup:1b-fp16", "D", FamilyLLaMA, 1, QuantFP16, archLlama1B)
	NewCatalog(m, m)
}

func TestQuantizedVariantsSmaller(t *testing.T) {
	c := Default()
	for _, base := range []string{"deepseek-r1:14b", "deepseek-r1:7b", "llama3.1:8b"} {
		fp16 := c.MustLookup(base + "-fp16")
		q8 := c.MustLookup(base + "-q8")
		q4 := c.MustLookup(base + "-q4")
		if !(q4.WeightBytes() < q8.WeightBytes() && q8.WeightBytes() < fp16.WeightBytes()) {
			t.Errorf("%s: quantized sizes not ordered", base)
		}
		if q4.Params != fp16.Params {
			t.Errorf("%s: quantization changed param count", base)
		}
	}
}

// Property: WeightBytes is monotonic in parameter count for any fixed
// quantization, and always positive for positive params.
func TestWeightBytesMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		pa, pb := int64(a)+1, int64(b)+1
		ma := Model{Params: pa * 1000, Quant: QuantQ4}
		mb := Model{Params: pb * 1000, Quant: QuantQ4}
		if pa < pb && ma.WeightBytes() > mb.WeightBytes() {
			return false
		}
		return ma.WeightBytes() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: KV cache grows linearly in token count.
func TestKVCacheLinearProperty(t *testing.T) {
	m := Default().MustLookup("llama3.2:3b-fp16")
	f := func(n uint16) bool {
		return m.KVCacheBytes(int(n)) == int64(n)*m.KVBytesPerToken()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamsB(t *testing.T) {
	m := Default().MustLookup("deepseek-r1:14b-fp16")
	if b := m.ParamsB(); b < 14 || b > 15 {
		t.Fatalf("ParamsB = %v, want ~14.77", b)
	}
}

func TestDisplayNamesForQuantVariants(t *testing.T) {
	m := Default().MustLookup("deepseek-r1:14b-q4")
	if !strings.Contains(m.DisplayName, "Q4") {
		t.Fatalf("quant variant display name %q missing quant tag", m.DisplayName)
	}
}
