package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// csvWrite writes rows (already formatted as comma-separated strings,
// header first) to w.
func csvWrite(w io.Writer, header string, rows []string) error {
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVFile writes the header and rows to path, creating parent
// directories — the artifact's "extract measurements into CSV" step.
func WriteCSVFile(path, header string, rows []string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return csvWrite(f, header, rows)
}

// Table1CSV renders Table 1 rows as CSV lines.
func Table1CSV(rows []Table1Row) (header string, out []string) {
	header = "model,display,total_s,load_s,compile_s,cuda_graphs_s,measured_total_s"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%s,%.2f,%.2f,%.2f,%.2f,%.2f",
			r.Model, r.DisplayName, r.TotalSec, r.LoadSec, r.CompileSec, r.CGSec, r.MeasuredTotalSec))
	}
	return header, out
}

// Figure2CSV renders Figure 2 rows as CSV lines.
func Figure2CSV(rows []Fig2Row) (header string, out []string) {
	header = "engine,model,display,cold_start_s"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%s,%s,%.2f", r.Engine, r.Model, r.DisplayName, r.ColdStartSec))
	}
	return header, out
}

// Figure5CSV renders Figure 5 rows as CSV lines.
func Figure5CSV(rows []Fig5Row) (header string, out []string) {
	header = "model,display,weights_gib,disk_s,memory_s,snapshot_s"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%s,%.2f,%.2f,%.2f,%.2f",
			r.Model, r.DisplayName, r.WeightsGiB, r.DiskSec, r.MemorySec, r.SnapshotSec))
	}
	return header, out
}

// Figure6aCSV renders Figure 6a rows as CSV lines.
func Figure6aCSV(rows []Fig6aRow) (header string, out []string) {
	header = "model,display,gpu_mem_gib,swap_in_s,cold_start_s"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%s,%.1f,%.2f,%.2f",
			r.Model, r.DisplayName, r.GPUMemGiB, r.SwapInSec, r.ColdStartSec))
	}
	return header, out
}

// Figure6bCSV renders Figure 6b rows as CSV lines.
func Figure6bCSV(rows []Fig6bRow) (header string, out []string) {
	header = "model,display,gpu_mem_gib,ollama_load_s,swap_in_s"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%s,%.1f,%.2f,%.2f",
			r.Model, r.DisplayName, r.GPUMemGiB, r.OllamaLoadSec, r.SwapInSec))
	}
	return header, out
}

// Figure1CSV renders the weekly token-volume series as CSV lines.
func Figure1CSV(series []Fig1Series) (header string, out []string) {
	header = "class,hour_start,requests,input_tokens,output_tokens"
	for _, s := range series {
		for _, b := range s.Buckets {
			out = append(out, fmt.Sprintf("%s,%s,%d,%d,%d",
				s.Class, b.Start.Format("2006-01-02T15:04:05Z"), b.Requests, b.InputTokens, b.OutputTokens))
		}
	}
	return header, out
}

// Figure3CSV renders the cluster utilization series as CSV lines.
func Figure3CSV(r Fig3Result) (header string, out []string) {
	header = "timestamp,utilization,mem_bytes"
	for _, s := range r.Samples {
		out = append(out, fmt.Sprintf("%s,%.4f,%d",
			s.T.Format("2006-01-02T15:04:05Z"), s.Utilization, s.MemBytes))
	}
	return header, out
}

// ElasticityCSV renders the elasticity ablation as CSV lines.
func ElasticityCSV(rows []ElasticityRow) (header string, out []string) {
	header = "strategy,mean_s,p99_s,mem_gib_s,swap_ins,idle_reaps,prefetches"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%.2f,%.2f,%.0f,%d,%.0f,%.0f",
			r.Strategy, r.MeanSec, r.P99Sec, r.MemGiBSec, r.SwapIns, r.IdleReaps, r.Prefetches))
	}
	return header, out
}
