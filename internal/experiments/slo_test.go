package experiments

import (
	"reflect"
	"testing"
)

// TestSLOAblationProperties checks the acceptance properties of the SLO
// ablation: the predictive arm must beat the reactive baseline on
// high-priority SLO attainment, shedding must be confined to the lowest
// class, and the whole run must be deterministic.
func TestSLOAblationProperties(t *testing.T) {
	res := SLOAblation(42)

	rows := map[string]map[string]SLOClassRow{}
	for _, r := range res.Rows {
		if rows[r.Arm] == nil {
			rows[r.Arm] = map[string]SLOClassRow{}
		}
		rows[r.Arm][r.Class] = r
	}
	for _, arm := range []string{"reactive", "predictive"} {
		for _, class := range []string{"interactive", "standard", "batch"} {
			r, ok := rows[arm][class]
			if !ok {
				t.Fatalf("missing row %s/%s", arm, class)
			}
			if r.Offered == 0 || r.Admitted+r.Shed != r.Offered {
				t.Fatalf("row %s/%s inconsistent: %+v", arm, class, r)
			}
		}
	}

	// The headline claim: predictive beats reactive on the top class.
	ri, pi := rows["reactive"]["interactive"], rows["predictive"]["interactive"]
	if pi.AttainPct <= ri.AttainPct {
		t.Errorf("predictive interactive attainment %.2f%% not above reactive %.2f%%",
			pi.AttainPct, ri.AttainPct)
	}

	// Sheds exist and are confined to the lowest class.
	if rows["predictive"]["batch"].Shed == 0 {
		t.Error("predictive arm shed nothing: admission control never engaged")
	}
	for _, arm := range []string{"reactive", "predictive"} {
		for _, class := range []string{"interactive", "standard"} {
			if n := rows[arm][class].Shed; n != 0 {
				t.Errorf("%s shed %d %s requests; shedding must stay in batch", arm, n, class)
			}
		}
	}
	// The reactive arm has no admission control at all.
	if n := rows["reactive"]["batch"].Shed; n != 0 {
		t.Errorf("reactive arm shed %d requests without an admission controller", n)
	}

	// The pre-warmer actually worked ahead of demand.
	for _, a := range res.Arms {
		switch a.Arm {
		case "reactive":
			if a.PrefetchIssued != 0 {
				t.Errorf("reactive arm issued %d prefetches", a.PrefetchIssued)
			}
		case "predictive":
			if a.PrefetchIssued == 0 || a.PrefetchHits == 0 {
				t.Errorf("predictive arm prefetch counters empty: %+v", a)
			}
			if a.PrefetchHits+a.PrefetchMisses > a.PrefetchIssued {
				t.Errorf("prefetch accounting inconsistent: %+v", a)
			}
		}
	}

	// Determinism: an identical second run yields identical rows, and the
	// rendered artifact is byte-identical.
	res2 := SLOAblation(42)
	if !reflect.DeepEqual(res, res2) {
		t.Error("two SLOAblation(42) runs differ")
	}
	if SLOBenchJSON(res) != SLOBenchJSON(res2) {
		t.Error("BENCH_slo.json bytes differ between identical runs")
	}
}
