package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/models"
	"swapservellm/internal/openai"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/workload"
)

// PolicyAblationRow reports one preemption policy's behaviour on a bursty
// multi-model workload: request latency percentiles and swap churn.
type PolicyAblationRow struct {
	Policy   string
	P50Sec   float64
	P99Sec   float64
	MeanSec  float64
	SwapIns  int64
	SwapOuts int64
	// HotSwapOuts counts evictions of the hot backend: the disruption the
	// demand-aware policy is designed to avoid.
	HotSwapOuts int64
	Served      int
	Errors      int
	ElapsedS    float64
}

// ablationModels is a four-model Ollama fleet whose footprints force
// constant preemption on a deliberately small topology.
var ablationModels = []string{
	"gemma:7b-fp16",
	"deepseek-coder:6.7b-fp16",
	"llama3.1:8b-fp16",
	"deepseek-r1:14b-fp16",
}

// AblationPreemptionPolicy compares the paper's demand-aware policy
// against LRU, largest-first, and round-robin baselines under a skewed
// workload: one hot model receives most requests while cold models
// receive sporadic traffic, so a demand-blind policy keeps evicting the
// hot backend.
func AblationPreemptionPolicy(scale float64, requests int, seed int64) ([]PolicyAblationRow, error) {
	var rows []PolicyAblationRow
	for _, policyName := range []string{"demand-aware", "lru", "largest-first", "round-robin"} {
		row, err := runPolicyTrial(policyName, scale, requests, seed)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", policyName, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runPolicyTrial runs one bursty trial under the named policy.
func runPolicyTrial(policyName string, scale float64, requests int, seed int64) (PolicyAblationRow, error) {
	policy, ok := core.PolicyByName(policyName)
	if !ok {
		return PolicyAblationRow{}, fmt.Errorf("unknown policy %q", policyName)
	}
	cfg := config.Default()
	// No response timeout: the trial needs every request's completion
	// latency, however long preemption churn delays it.
	cfg.Global.ResponseTimeoutSec = 0
	for _, name := range ablationModels {
		cfg.Models = append(cfg.Models, config.Model{Name: name, Engine: "ollama"})
	}
	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	s, err := core.New(cfg, core.Options{Clock: clock, Policy: policy})
	if err != nil {
		return PolicyAblationRow{}, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return PolicyAblationRow{}, err
	}

	// Constrain memory so two of the four models are co-resident but a
	// third always forces an eviction — the policy must then choose
	// between the hot backend and an idle one.
	dev, _ := s.Topology().Device(0)
	if err := dev.Alloc("ablation-squatter", 20*(int64(1)<<30)); err != nil {
		return PolicyAblationRow{}, err
	}

	// Skewed workload: the hot model receives continuous overlapping
	// streams from two "pumps" (sustained ongoing interactions), while
	// sporadic requests rotate across the cold models and force
	// evictions — the situation where demand-awareness matters.
	gen := workload.NewGenerator(seed)
	cli := openai.NewClient(s.URL())
	cli.Clock = clock
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      int
	)
	record := func(start time.Time, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs++
			return
		}
		latencies = append(latencies, clock.Since(start))
	}
	send := func(model string, outTok int) {
		seedv := int64(1)
		start := clock.Now()
		_, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
			Model:     model,
			Messages:  []openai.Message{{Role: "user", Content: "ablation request"}},
			Seed:      &seedv,
			MaxTokens: outTok,
		})
		record(start, err)
	}

	hotN := requests / 2
	coldN := requests - hotN
	t0 := clock.Now()
	var wg sync.WaitGroup
	for pump := 0; pump < 2; pump++ {
		wg.Add(1)
		gate.Go(func() {
			defer wg.Done()
			for i := 0; i < hotN/2; i++ {
				send(ablationModels[0], 120)
			}
		})
	}
	wg.Add(1)
	gate.Go(func() {
		defer wg.Done()
		for i := 0; i < coldN; i++ {
			_, outTok := gen.Tokens(workload.ClassConversational)
			if outTok > 32 {
				outTok = 32
			}
			send(ablationModels[1+i%3], outTok)
		}
	})
	gate.Block(wg.Wait)
	elapsed := clock.Since(t0)

	var swapIns, swapOuts, hotSwapOuts int64
	for _, b := range s.Backends() {
		in, out := b.SwapCounts()
		swapIns += in
		swapOuts += out
		if b.Name() == ablationModels[0] {
			hotSwapOuts = out - 1 // discount the mandatory init snapshot
		}
	}
	row := PolicyAblationRow{
		Policy:      policyName,
		SwapIns:     swapIns,
		SwapOuts:    swapOuts,
		HotSwapOuts: hotSwapOuts,
		Served:      len(latencies),
		Errors:      errs,
		ElapsedS:    elapsed.Seconds(),
	}
	row.P50Sec = quantile(latencies, 0.5)
	row.P99Sec = quantile(latencies, 0.99)
	row.MeanSec = mean(latencies)
	return row, nil
}

// quantile computes an exact quantile in seconds.
func quantile(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx].Seconds()
}

// PrintPolicyAblation renders the policy comparison.
func PrintPolicyAblation(w io.Writer, rows []PolicyAblationRow) {
	fprintf(w, "Ablation: preemption policy under skewed bursty load\n")
	fprintf(w, "%-14s %8s %8s %8s %9s %9s %10s %7s %7s\n",
		"Policy", "p50(s)", "p99(s)", "mean(s)", "swap-ins", "swap-outs", "hot-evict", "served", "errors")
	for _, r := range rows {
		fprintf(w, "%-14s %8.2f %8.2f %8.2f %9d %9d %10d %7d %7d\n",
			r.Policy, r.P50Sec, r.P99Sec, r.MeanSec, r.SwapIns, r.SwapOuts, r.HotSwapOuts, r.Served, r.Errors)
	}
}

// SleepModeAblationRow compares vLLM swap cycles with and without the
// sleep-mode fast path (§4.2).
type SleepModeAblationRow struct {
	SleepMode   bool
	SnapshotGiB float64
	SwapOutSec  float64
	SwapInSec   float64
}

// AblationSleepMode measures the vLLM sleep-mode optimization: snapshot
// size and swap-out/swap-in latency with the fast path on and off.
func AblationSleepMode(scale float64) ([]SleepModeAblationRow, error) {
	_ = scale // virtual time; retained for interface stability
	var rows []SleepModeAblationRow
	for _, sleep := range []bool{false, true} {
		row, err := runSleepModeTrial(sleep)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runSleepModeTrial measures one sleep-mode setting on a fresh server.
func runSleepModeTrial(sleep bool) (SleepModeAblationRow, error) {
	cfg := config.Default()
	cfg.Global.UseSleepMode = sleep
	cfg.Models = []config.Model{{Name: "llama3.1:8b-fp16", Engine: "vllm"}}
	clock, gate := virtualClock()
	defer gate.Exit()
	s, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		return SleepModeAblationRow{}, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return SleepModeAblationRow{}, err
	}
	b, _ := s.Backend("llama3.1:8b-fp16")
	ctx := context.Background()

	var outSamples, inSamples []time.Duration
	var snapshot float64
	for rep := 0; rep < Reps; rep++ {
		t0 := clock.Now()
		if err := s.Scheduler().EnsureRunning(ctx, b); err != nil {
			return SleepModeAblationRow{}, err
		}
		inSamples = append(inSamples, clock.Since(t0))

		t1 := clock.Now()
		if err := s.Controller().SwapOut(ctx, b); err != nil {
			return SleepModeAblationRow{}, err
		}
		outSamples = append(outSamples, clock.Since(t1))
		img, _ := s.Registry().Gauge("snapshot_bytes_"+b.Name()).Value(), error(nil)
		snapshot = img / float64(1<<30)
	}
	return SleepModeAblationRow{
		SleepMode:   sleep,
		SnapshotGiB: snapshot,
		SwapOutSec:  mean(outSamples),
		SwapInSec:   mean(inSamples),
	}, nil
}

// PrintSleepModeAblation renders the sleep-mode comparison.
func PrintSleepModeAblation(w io.Writer, rows []SleepModeAblationRow) {
	fprintf(w, "Ablation: vLLM sleep-mode fast path (LLaMA 3.1-8B, H100)\n")
	fprintf(w, "%-12s %13s %12s %11s\n", "Sleep mode", "Snapshot(GiB)", "Swap-out(s)", "Swap-in(s)")
	for _, r := range rows {
		mode := "off"
		if r.SleepMode {
			mode = "on"
		}
		fprintf(w, "%-12s %13.2f %12.2f %11.2f\n", mode, r.SnapshotGiB, r.SwapOutSec, r.SwapInSec)
	}
}

// ConsolidationRow compares provisioning strategies for a model fleet:
// dedicated GPUs vs SwapServeLLM hot-swapping on one GPU.
type ConsolidationRow struct {
	Strategy     string
	GPUs         int
	WorstLatency float64 // worst-case first-token wait, seconds
}

// AblationConsolidation quantifies §6's cost argument for a fleet of six
// high-throughput vLLM backends (each preallocating ~90% of an 80 GiB
// GPU): dedicated provisioning needs one GPU per model, serverless
// scale-from-zero pays the full cold start, and SwapServeLLM serves the
// whole fleet from one GPU at swap-in latency.
func AblationConsolidation() []ConsolidationRow {
	tb := perfmodel.H100()
	cat := models.Default()
	fleet := []string{
		"llama3.2:1b-fp16", "llama3.2:3b-fp16", "llama3.1:8b-fp16",
		"deepseek-r1:7b-fp16", "deepseek-r1:8b-fp16", "deepseek-r1:14b-fp16",
	}
	// vLLM's pooled KV cache claims 90% of the device: no two backends
	// co-reside, so dedicated provisioning needs one GPU per model.
	pool := int64(0.9 * float64(tb.GPUMemBytes))

	var worstSwap, worstCold time.Duration
	for _, name := range fleet {
		m := cat.MustLookup(name)
		if d := tb.CheckpointRestore(pool, m.WeightBytes(), perfmodel.EngineVLLM); d > worstSwap {
			worstSwap = d
		}
		if d := tb.ColdStart(perfmodel.EngineVLLM, m, perfmodel.TierDisk); d > worstCold {
			worstCold = d
		}
	}
	return []ConsolidationRow{
		{Strategy: "dedicated GPUs (always warm)", GPUs: len(fleet), WorstLatency: 0},
		{Strategy: "cold starts on demand (1 GPU)", GPUs: 1, WorstLatency: worstCold.Seconds()},
		{Strategy: "SwapServeLLM hot-swap (1 GPU)", GPUs: 1, WorstLatency: worstSwap.Seconds()},
	}
}

// PrintConsolidation renders the provisioning comparison.
func PrintConsolidation(w io.Writer, rows []ConsolidationRow) {
	fprintf(w, "Ablation: provisioning strategies for the six-model fleet (H100)\n")
	fprintf(w, "%-32s %5s %22s\n", "Strategy", "GPUs", "Worst first-wait (s)")
	for _, r := range rows {
		fprintf(w, "%-32s %5d %22.2f\n", r.Strategy, r.GPUs, r.WorstLatency)
	}
}
