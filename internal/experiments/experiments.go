// Package experiments regenerates every table and figure from the
// paper's evaluation (§5) against the simulated substrates: each
// experiment drives the real code paths — container runtime, engines,
// checkpoint driver, and the full SwapServeLLM server — on a virtual
// discrete-event clock and reports the measured simulated latencies.
// Time jumps straight to the next deadline whenever every participating
// goroutine is idle, so the suite spends no wall time sleeping and the
// direct-measurement experiments are byte-identical run to run.
//
// The per-experiment index in DESIGN.md maps each function here to the
// paper element it reproduces; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"time"

	"swapservellm/internal/cgroup"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/engine"
	"swapservellm/internal/gpu"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/simclock"
	"swapservellm/internal/storage"
)

// epoch is the fixed simulated-time origin for every experiment.
var epoch = time.Date(2025, 11, 16, 0, 0, 0, 0, time.UTC)

// Reps is the number of repetitions per measured configuration; the
// paper reports means over repeated runs.
const Reps = 3

// rig bundles the substrates for direct-measurement experiments. The
// rig runs on a Virtual clock with the calling goroutine registered as
// a participant; callers must defer r.done().
type rig struct {
	clock   *simclock.Virtual
	gate    *simclock.Gate
	tb      perfmodel.Testbed
	device  *gpu.Device
	store   *storage.ModelStore
	freezer *cgroup.Freezer
	driver  *cudackpt.Driver
}

// newRig builds a single-GPU rig on the given testbed. The scale
// parameter is retained for interface stability but unused: the Virtual
// clock advances by discrete-event jumps, so there is no wall-time
// ratio to configure.
func newRig(tb perfmodel.Testbed, scale float64) *rig {
	_ = scale
	clock := simclock.NewVirtual(epoch)
	gate := simclock.GateFor(clock)
	gate.Enter() //swaplint:ignore gatecheck registration spans functions: every caller pairs newRig with rig.done (Exit)
	return &rig{
		clock:   clock,
		gate:    gate,
		tb:      tb,
		device:  gpu.NewDevice(0, tb.GPU, tb.GPUMemBytes),
		store:   storage.NewModelStore(clock, tb),
		freezer: cgroup.NewFreezer(),
		driver:  cudackpt.NewDriver(clock, tb, 0),
	}
}

// done deregisters the calling goroutine from the rig's clock.
func (r *rig) done() { r.gate.Exit() }

// virtualClock builds the discrete-event clock server-driven experiments
// run on, registering the calling goroutine as a participant. Callers
// must defer gate.Exit().
func virtualClock() (*simclock.Virtual, *simclock.Gate) {
	clock := simclock.NewVirtual(epoch)
	gate := simclock.GateFor(clock)
	gate.Enter() //swaplint:ignore gatecheck registration spans functions: callers defer gate.Exit per the doc comment
	return clock, gate
}

// stage places a model's weights on the given tier, replacing any
// existing blob.
func (r *rig) stage(m models.Model, tier perfmodel.StorageTier) {
	r.store.Delete(engine.WeightBlobName(m))
	if err := r.store.Put(engine.WeightBlobName(m), m.WeightBytes(), tier); err != nil {
		panic(err)
	}
}

// engineConfig builds a config for a fresh engine instance.
func (r *rig) engineConfig(owner string, m models.Model, tier perfmodel.StorageTier) engine.Config {
	return engine.Config{
		Owner:   owner,
		Model:   m,
		Testbed: r.tb,
		Clock:   r.clock,
		Device:  r.device,
		Store:   r.store,
		Tier:    tier,
	}
}

// mean returns the average of a sample slice in seconds.
func mean(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return (sum / time.Duration(len(ds))).Seconds()
}

// gib converts bytes to GiB.
func gib(b int64) float64 { return float64(b) / float64(1<<30) }

// fprintf writes a formatted row, ignoring errors (experiment output is
// best-effort console text).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
