package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/perfmodel"
	"swapservellm/internal/workload"
)

func TestTable1CSV(t *testing.T) {
	h, rows := Table1CSV([]Table1Row{{
		Model: "m", DisplayName: "M", TotalSec: 1.5, LoadSec: 0.5, CompileSec: 0.7, CGSec: 0.3, MeasuredTotalSec: 1.49,
	}})
	if !strings.HasPrefix(h, "model,") || len(rows) != 1 {
		t.Fatalf("h=%q rows=%v", h, rows)
	}
	if rows[0] != "m,M,1.50,0.50,0.70,0.30,1.49" {
		t.Fatalf("row = %q", rows[0])
	}
}

func TestFigureCSVs(t *testing.T) {
	if _, rows := Figure2CSV([]Fig2Row{{Engine: perfmodel.EngineVLLM, Model: "m", DisplayName: "M", ColdStartSec: 2}}); len(rows) != 1 || !strings.Contains(rows[0], "vllm,m,M,2.00") {
		t.Fatalf("fig2 rows = %v", rows)
	}
	if _, rows := Figure5CSV([]Fig5Row{{Model: "m", DisplayName: "M", WeightsGiB: 1, DiskSec: 2, MemorySec: 1, SnapshotSec: 0.5}}); len(rows) != 1 {
		t.Fatalf("fig5 rows = %v", rows)
	}
	if _, rows := Figure6aCSV([]Fig6aRow{{Model: "m", DisplayName: "M", GPUMemGiB: 72, SwapInSec: 6, ColdStartSec: 80}}); !strings.Contains(rows[0], "72.0,6.00,80.00") {
		t.Fatalf("fig6a rows = %v", rows)
	}
	if _, rows := Figure6bCSV([]Fig6bRow{{Model: "m", DisplayName: "M", GPUMemGiB: 3.6, OllamaLoadSec: 2, SwapInSec: 1}}); !strings.Contains(rows[0], "3.6,2.00,1.00") {
		t.Fatalf("fig6b rows = %v", rows)
	}
	if _, rows := ElasticityCSV([]ElasticityRow{{Strategy: "s", MeanSec: 1, P99Sec: 2, MemGiBSec: 3, SwapIns: 4}}); !strings.Contains(rows[0], "s,1.00,2.00,3,4") {
		t.Fatalf("elasticity rows = %v", rows)
	}
}

func TestFigure1And3CSV(t *testing.T) {
	series := []Fig1Series{{
		Class: workload.ClassCoding,
		Buckets: []workload.HourlyBucket{{
			Start: time.Date(2025, 11, 17, 0, 0, 0, 0, time.UTC), Requests: 2, InputTokens: 10, OutputTokens: 3,
		}},
	}}
	_, rows := Figure1CSV(series)
	if len(rows) != 1 || !strings.Contains(rows[0], "coding,2025-11-17T00:00:00Z,2,10,3") {
		t.Fatalf("fig1 rows = %v", rows)
	}
	res := Fig3Result{Samples: []workload.ClusterSample{{
		T: time.Date(2025, 11, 3, 0, 0, 0, 0, time.UTC), Utilization: 0.25, MemBytes: 100,
	}}}
	_, rows = Figure3CSV(res)
	if len(rows) != 1 || !strings.Contains(rows[0], "0.2500,100") {
		t.Fatalf("fig3 rows = %v", rows)
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "out.csv")
	if err := WriteCSVFile(path, "a,b", []string{"1,2", "3,4"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if string(data) != want {
		t.Fatalf("file = %q", data)
	}
}
