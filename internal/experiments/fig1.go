package experiments

import (
	"io"
	"time"

	"swapservellm/internal/workload"
)

// Fig1Series is the weekly token-volume trace for one workload class
// (Figure 1): hourly input and output token counts over seven days.
type Fig1Series struct {
	Class   workload.Class
	Buckets []workload.HourlyBucket
}

// Figure1 reproduces Figure 1: a synthetic week of Coding and
// Conversational traffic with the Azure traces' qualitative shape —
// weekday business-hour bursts (the 8AM–5PM zoom), weekend troughs, and
// the classes' opposite input/output token skews.
func Figure1(seed int64) []Fig1Series {
	// Start on a Monday so the weekday/weekend structure is aligned.
	start := time.Date(2025, 11, 17, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 7)
	var out []Fig1Series
	for i, c := range []workload.Class{workload.ClassCoding, workload.ClassConversational} {
		g := workload.NewGenerator(seed + int64(i))
		reqs := g.Arrivals(c, string(c), start, end, 1200, 2.0)
		out = append(out, Fig1Series{
			Class:   c,
			Buckets: workload.BucketHourly(reqs, start, end),
		})
	}
	return out
}

// Fig1Summary condenses a series for reporting: total tokens, the
// weekday-peak to overnight-trough ratio, and the business-hours share.
type Fig1Summary struct {
	Class            workload.Class
	TotalInput       int64
	TotalOutput      int64
	PeakTroughRatio  float64
	BusinessShare    float64 // fraction of weekday tokens in 8AM–5PM
	WeekendReduction float64 // weekend vs weekday daily volume
}

// Summarize computes the figure's headline statistics for one series.
func Summarize(s Fig1Series) Fig1Summary {
	sum := Fig1Summary{Class: s.Class}
	var peak, trough int64 = 0, 1 << 62
	var weekdayTokens, weekendTokens, businessTokens int64
	weekdays, weekendDays := 0, 0
	seenWeekday := make(map[string]bool)
	for _, b := range s.Buckets {
		total := b.InputTokens + b.OutputTokens
		sum.TotalInput += b.InputTokens
		sum.TotalOutput += b.OutputTokens
		wd := b.Start.Weekday()
		weekend := wd == time.Saturday || wd == time.Sunday
		if weekend {
			weekendTokens += total
		} else {
			weekdayTokens += total
			if h := b.Start.Hour(); h >= 8 && h < 17 {
				businessTokens += total
			}
			if total > peak {
				peak = total
			}
			if h := b.Start.Hour(); h >= 2 && h < 5 && total < trough {
				trough = total
			}
		}
		day := b.Start.Format("2006-01-02")
		if !seenWeekday[day] {
			seenWeekday[day] = true
			if weekend {
				weekendDays++
			} else {
				weekdays++
			}
		}
	}
	if trough < 1 {
		trough = 1
	}
	sum.PeakTroughRatio = float64(peak) / float64(trough)
	if weekdayTokens > 0 {
		sum.BusinessShare = float64(businessTokens) / float64(weekdayTokens)
	}
	if weekdays > 0 && weekendDays > 0 && weekdayTokens > 0 {
		perWeekday := float64(weekdayTokens) / float64(weekdays)
		perWeekendDay := float64(weekendTokens) / float64(weekendDays)
		sum.WeekendReduction = 1 - perWeekendDay/perWeekday
	}
	return sum
}

// PrintFigure1 renders the weekly series summaries and a compact
// per-day breakdown.
func PrintFigure1(w io.Writer, series []Fig1Series) {
	fprintf(w, "Figure 1: weekly token volume, Coding vs Conversational (synthetic Azure-shaped trace)\n")
	for _, s := range series {
		sum := Summarize(s)
		fprintf(w, "%-15s total_in=%dM total_out=%dM in:out=%.1f peak:trough=%.0fx business_share=%.0f%% weekend_drop=%.0f%%\n",
			s.Class,
			sum.TotalInput/1e6, sum.TotalOutput/1e6,
			float64(sum.TotalInput)/float64(max64(sum.TotalOutput, 1)),
			sum.PeakTroughRatio, 100*sum.BusinessShare, 100*sum.WeekendReduction)
		// Daily totals give the weekly silhouette.
		daily := make(map[string]int64)
		var order []string
		for _, b := range s.Buckets {
			day := b.Start.Format("Mon")
			key := b.Start.Format("2006-01-02") + " " + day
			if _, seen := daily[key]; !seen {
				order = append(order, key)
			}
			daily[key] += b.InputTokens + b.OutputTokens
		}
		for _, day := range order {
			fprintf(w, "  %s %6.1fM tokens\n", day[len(day)-3:], float64(daily[day])/1e6)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
