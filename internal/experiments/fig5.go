package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"swapservellm/internal/engine"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// Fig5Row compares Ollama cold loads from disk and memory-backed storage
// against a SwapServeLLM in-memory snapshot restore, for one
// model/quantization on the A100 testbed (means over Reps runs).
type Fig5Row struct {
	Model       string
	DisplayName string
	WeightsGiB  float64
	DiskSec     float64
	MemorySec   float64
	SnapshotSec float64
}

// Figure5Models is the DeepSeek-R1/LLaMA × quantization sweep of the
// figure.
var Figure5Models = []string{
	"deepseek-r1:1.5b-q4", "deepseek-r1:1.5b-q8", "deepseek-r1:1.5b-fp16",
	"deepseek-r1:7b-q4", "deepseek-r1:7b-q8", "deepseek-r1:7b-fp16",
	"deepseek-r1:8b-q4", "deepseek-r1:8b-q8", "deepseek-r1:8b-fp16",
	"deepseek-r1:14b-q4", "deepseek-r1:14b-q8", "deepseek-r1:14b-fp16",
	"llama3.2:1b-q4", "llama3.2:1b-fp16",
	"llama3.1:8b-q4", "llama3.1:8b-fp16",
}

// Figure5 reproduces Figure 5 on the A100 testbed: per model it measures
// (a) an Ollama cold load with weights on disk, (b) the same with a
// memory-backed (tmpfs) store, and (c) a SwapServeLLM snapshot restore
// via the transparent GPU checkpoint driver.
func Figure5(scale float64) ([]Fig5Row, error) {
	r := newRig(perfmodel.A100(), scale)
	defer r.done()
	cat := models.Default()
	ctx := context.Background()

	var rows []Fig5Row
	for i, name := range Figure5Models {
		m := cat.MustLookup(name)
		row := Fig5Row{Model: name, DisplayName: m.DisplayName, WeightsGiB: gib(m.WeightBytes())}

		// (a) and (b): Ollama cold loads per tier. Median of five absorbs
		// host scheduling stalls that the simulation scale magnifies.
		const fig5Reps = 5
		for _, tier := range []perfmodel.StorageTier{perfmodel.TierDisk, perfmodel.TierTmpfs} {
			var samples []time.Duration
			for rep := 0; rep < fig5Reps; rep++ {
				r.stage(m, tier)
				owner := fmt.Sprintf("fig5-%d-%s-%d", i, tier, rep)
				eng, err := engine.NewOllama(r.engineConfig(owner, m, tier))
				if err != nil {
					return nil, err
				}
				t0 := r.clock.Now()
				if _, err := eng.Init(ctx); err != nil {
					return nil, fmt.Errorf("%s (%s): %w", name, tier, err)
				}
				samples = append(samples, r.clock.Since(t0))
				eng.Shutdown()
			}
			// Median absorbs wall-clock hiccups under CPU contention.
			if tier == perfmodel.TierDisk {
				row.DiskSec = median(samples).Seconds()
			} else {
				row.MemorySec = median(samples).Seconds()
			}
		}

		// (c): SwapServeLLM snapshot restore. Initialize once, checkpoint,
		// then measure suspend->resume cycles.
		r.stage(m, perfmodel.TierDisk)
		owner := fmt.Sprintf("fig5-snap-%d", i)
		eng, err := engine.NewOllama(r.engineConfig(owner, m, perfmodel.TierDisk))
		if err != nil {
			return nil, err
		}
		if _, err := eng.Init(ctx); err != nil {
			return nil, err
		}
		if err := r.driver.Register(owner, r.device, perfmodel.EngineOllama, m.WeightBytes()); err != nil {
			return nil, err
		}
		var samples []time.Duration
		for rep := 0; rep < fig5Reps; rep++ {
			if _, err := r.driver.Suspend(ctx, owner); err != nil {
				return nil, err
			}
			eng.Gate().Pause()
			t0 := r.clock.Now()
			if err := r.driver.Resume(ctx, owner); err != nil {
				return nil, err
			}
			eng.Gate().Resume()
			// The engine-resume verification the controller performs.
			r.clock.Sleep(perfmodel.EngineResumeOverhead(perfmodel.EngineOllama))
			samples = append(samples, r.clock.Since(t0))
		}
		row.SnapshotSec = median(samples).Seconds()
		r.driver.Unregister(owner)
		eng.Shutdown()

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure5 renders the loading comparison.
func PrintFigure5(w io.Writer, rows []Fig5Row) {
	fprintf(w, "Figure 5: Ollama model loading vs SwapServeLLM snapshots (A100, seconds)\n")
	fprintf(w, "%-14s %11s %9s %11s %13s\n", "Model", "Weights(GiB)", "Disk(s)", "Memory(s)", "Snapshot(s)")
	for _, r := range rows {
		fprintf(w, "%-14s %11.2f %9.2f %11.2f %13.2f\n",
			r.DisplayName, r.WeightsGiB, r.DiskSec, r.MemorySec, r.SnapshotSec)
	}
}
