package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/models"
	"swapservellm/internal/obs"
	"swapservellm/internal/simclock"
)

// PipelineRow is one point of the pipelined-swap ablation: the full
// model-switch latency (victim swap-out start to target serving) of a
// sequential exchange vs the full-duplex pipelined exchange, for one
// target model of the Figure 6 sweep.
type PipelineRow struct {
	Model          string
	DisplayName    string
	GPUMemGiB      float64
	SequentialSec  float64
	PipelinedSec   float64
	ImprovementPct float64
}

// pipelinePartner is the fixed running victim every exchange preempts:
// a vLLM backend (pool ≈90% of the device regardless of weights), so
// each trial is an 80 GiB-class exchange on the H100. It is chosen from
// the catalog outside the Figure 6 sweep because a config cannot list
// the same model twice.
const pipelinePartner = "deepseek-r1:8b-fp16"

// exchangeThroughServer builds a two-backend server (the target model,
// snapshotted by the init sequence, plus the keep-warm partner victim)
// and measures the median SwapExchange latency over repeated cycles,
// with the pipelined fast path on or off. The server runs on the
// caller's shared Virtual clock — one timeline across every trial, so a
// shared tracer sees a single consistent timebase — and the caller's
// goroutine must already be registered with that clock's gate.
func exchangeThroughServer(modelName string, pipelined bool, clock simclock.Clock, tracer *obs.Tracer) (latency time.Duration, gpuBytes int64, err error) {
	cfg := config.Default()
	cfg.Global.PipelinedSwap = pipelined
	cfg.Models = []config.Model{
		{Name: modelName, Engine: "vllm"},
		{Name: pipelinePartner, Engine: "vllm", KeepWarm: true},
	}
	s, err := core.New(cfg, core.Options{Clock: clock, Tracer: tracer})
	if err != nil {
		return 0, 0, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return 0, 0, err
	}
	target, _ := s.Backend(modelName)
	victim, _ := s.Backend(pipelinePartner)
	ctrl := s.Controller()
	ctx := context.Background()

	// One untimed warm-up round trip absorbs process cold-start effects
	// the simulation scale would otherwise magnify into seconds.
	if err := ctrl.SwapExchange(ctx, victim, target); err != nil {
		return 0, 0, fmt.Errorf("warm-up exchange %s: %w", modelName, err)
	}
	if err := ctrl.SwapExchange(ctx, target, victim); err != nil {
		return 0, 0, fmt.Errorf("warm-up re-arm %s: %w", modelName, err)
	}

	// Median of three cycles: each cycle times the exchange that brings
	// the sweep model in, then exchanges back (untimed) to re-arm.
	const cycles = 3
	var samples []time.Duration
	for rep := 0; rep < cycles; rep++ {
		t0 := s.Clock().Now()
		if err := ctrl.SwapExchange(ctx, victim, target); err != nil {
			return 0, 0, fmt.Errorf("exchange %s: %w", modelName, err)
		}
		samples = append(samples, s.Clock().Since(t0))
		gpuBytes = target.Container().Engine().GPUBytes()
		if err := ctrl.SwapExchange(ctx, target, victim); err != nil {
			return 0, 0, fmt.Errorf("re-arm exchange %s: %w", modelName, err)
		}
	}
	for i := 1; i < len(samples); i++ {
		for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
			samples[j], samples[j-1] = samples[j-1], samples[j]
		}
	}
	return samples[len(samples)/2], gpuBytes, nil
}

// AblationPipelinedSwap measures the full-duplex pipelined exchange
// against the sequential swap-out-then-swap-in baseline across the
// Figure 6 model sweep: the victim's D2H checkpoint and the target's
// H2D restore overlap on the full-duplex PCIe link, so the pipelined
// switch completes in roughly the slower transfer's time instead of the
// sum.
func AblationPipelinedSwap(scale float64) ([]PipelineRow, error) {
	return AblationPipelinedSwapTraced(scale, nil)
}

// AblationPipelinedSwapTraced is AblationPipelinedSwap with
// swap-lifecycle tracing: when traceOut is non-nil, every trial runs
// under one shared tracer and the combined Chrome trace_event JSON —
// swap.exchange spans nesting the ckpt.* phases and their per-chunk
// events, sequential and pipelined side by side — is written to
// traceOut at the end.
func AblationPipelinedSwapTraced(scale float64, traceOut io.Writer) ([]PipelineRow, error) {
	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	var tracer *obs.Tracer
	if traceOut != nil {
		tracer = obs.NewTracer(clock)
	}
	cat := models.Default()
	var rows []PipelineRow
	for _, name := range Figure6Models {
		m := cat.MustLookup(name)
		seq, bytes, err := exchangeThroughServer(name, false, clock, tracer)
		if err != nil {
			return nil, fmt.Errorf("sequential %s: %w", name, err)
		}
		pipe, _, err := exchangeThroughServer(name, true, clock, tracer)
		if err != nil {
			return nil, fmt.Errorf("pipelined %s: %w", name, err)
		}
		rows = append(rows, PipelineRow{
			Model:          name,
			DisplayName:    m.DisplayName,
			GPUMemGiB:      gib(bytes),
			SequentialSec:  seq.Seconds(),
			PipelinedSec:   pipe.Seconds(),
			ImprovementPct: 100 * (1 - pipe.Seconds()/seq.Seconds()),
		})
	}
	if traceOut != nil {
		if err := tracer.WriteTraceEvents(traceOut); err != nil {
			return nil, fmt.Errorf("writing trace: %w", err)
		}
	}
	return rows, nil
}

// PrintPipeline renders the pipelined-swap ablation.
func PrintPipeline(w io.Writer, rows []PipelineRow) {
	fprintf(w, "Ablation: sequential vs pipelined full-duplex swap exchange (vLLM, H100, seconds)\n")
	fprintf(w, "%-10s %12s %14s %13s %12s\n",
		"Model", "GPU mem(GiB)", "Sequential(s)", "Pipelined(s)", "Improvement")
	for _, r := range rows {
		fprintf(w, "%-10s %12.1f %14.2f %13.2f %11.1f%%\n",
			r.DisplayName, r.GPUMemGiB, r.SequentialSec, r.PipelinedSec, r.ImprovementPct)
	}
}

// PipelineCSV renders pipeline ablation rows as CSV lines.
func PipelineCSV(rows []PipelineRow) (header string, out []string) {
	header = "model,display,gpu_mem_gib,sequential_s,pipelined_s,improvement_pct"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%s,%.1f,%.2f,%.2f,%.1f",
			r.Model, r.DisplayName, r.GPUMemGiB, r.SequentialSec, r.PipelinedSec, r.ImprovementPct))
	}
	return header, out
}
