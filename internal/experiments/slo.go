package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/metrics"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
	"swapservellm/internal/sched"
	"swapservellm/internal/workload"
)

// The SLO ablation quantifies what the predictive scheduling subsystem
// buys over the reactive baseline: four simulated days of diurnal
// multi-model traffic replay through a discrete-event model of one
// H100 fleet whose restore path is a single serialized transfer link.
// Days one to three train the demand predictor; day four is measured
// under two arms sharing the identical trace:
//
//   - reactive:   fixed keep-alive TTL, no admission, no pre-warm —
//     the pre-sched fleet behaviour.
//   - predictive: predictor-informed TTL, pre-warm sweeps ahead of the
//     forecast ramps, and gateway admission with per-class token
//     buckets and queue-delay shedding.
//
// The simulation is pure virtual time — no goroutines, no clock — so
// the emitted BENCH_slo.json is byte-identical across runs.

// sloModel binds a catalog model to its priority class and demand shape.
type sloModel struct {
	name  string
	class string
	wl    workload.Class
	peak  float64 // peak requests/hour scaling the diurnal curve
}

// sloModels is the nine-model fleet: ~133 GB of fp16 weights contending
// for one 80 GiB device, so residency is always under pressure.
var sloModels = []sloModel{
	{"llama3.2:1b-fp16", "interactive", workload.ClassConversational, 240},
	{"llama3.2:3b-fp16", "interactive", workload.ClassConversational, 180},
	{"gemma3:4b-fp16", "interactive", workload.ClassConversational, 150},
	{"llama3.1:8b-fp16", "standard", workload.ClassCoding, 80},
	{"deepseek-r1:7b-fp16", "standard", workload.ClassCoding, 60},
	{"deepseek-coder:6.7b-fp16", "standard", workload.ClassCoding, 60},
	{"gemma:7b-fp16", "batch", workload.ClassCoding, 24},
	{"gemma3:12b-fp16", "batch", workload.ClassCoding, 18},
	{"deepseek-r1:14b-fp16", "batch", workload.ClassCoding, 12},
}

// sloClasses declares the three priority tiers. Interactive and
// standard rates are far above their offered load, so their guaranteed
// buckets never empty and shedding is confined to batch by
// construction of the priority-aware policy, not by luck.
func sloClasses() config.SchedCfg {
	return config.SchedCfg{
		Classes: []config.SchedClass{
			{Name: "interactive", Priority: 0, SLOSec: 2.5, RatePerSec: 5, Burst: 10},
			{Name: "standard", Priority: 1, SLOSec: 8, RatePerSec: 2, Burst: 4},
			{Name: "batch", Priority: 2, SLOSec: 10, RatePerSec: 0.001, Burst: 1},
		},
		Admission: true,
	}
}

// SLOClassRow is one (arm, class) measurement.
type SLOClassRow struct {
	Arm       string
	Class     string
	Offered   int
	Admitted  int
	Shed      int
	MeanSec   float64
	P99Sec    float64
	AttainPct float64 // % of admitted requests finishing within the class SLO
}

// SLOArmSummary aggregates one arm's fleet activity.
type SLOArmSummary struct {
	Arm            string
	Restores       int
	Evictions      int
	PrefetchIssued int
	PrefetchHits   int
	PrefetchMisses int
}

// SLOResult is the full ablation output.
type SLOResult struct {
	Rows []SLOClassRow
	Arms []SLOArmSummary
}

// sloEvent is one offered request in the measured day.
type sloEvent struct {
	at    time.Time
	model int // index into sloModels
}

// sloSim is the discrete-event fleet state for one arm.
type sloSim struct {
	tb       perfmodel.Testbed
	capacity int64
	used     int64
	warm     map[string]bool
	warmAt   map[string]time.Time // pending restore completion
	lastUsed map[string]time.Time
	linkFree time.Time
	weights  map[string]int64
	engines  map[string]perfmodel.EngineKind

	classOf map[string]string

	ttl       sched.TTLPolicy
	restores  int
	evictions int
}

func newSLOSim(ttl sched.TTLPolicy) *sloSim {
	tb := perfmodel.H100()
	s := &sloSim{
		tb:       tb,
		capacity: tb.GPUMemBytes,
		warm:     make(map[string]bool),
		warmAt:   make(map[string]time.Time),
		lastUsed: make(map[string]time.Time),
		weights:  make(map[string]int64),
		engines:  make(map[string]perfmodel.EngineKind),
		classOf:  make(map[string]string),
		ttl:      ttl,
	}
	cat := models.Default()
	for _, m := range sloModels {
		s.weights[m.name] = cat.MustLookup(m.name).WeightBytes()
		s.engines[m.name] = perfmodel.EngineOllama
		s.classOf[m.name] = m.class
	}
	return s
}

// restoreDur is the cold swap-in cost for model on the transfer link:
// read the checkpoint image off its tier, then restore over PCIe.
// Interactive-class images are pinned to host RAM; lower classes spill
// to disk under the snapshot host-memory cap, so their restores are
// several times slower — the congestion admission control works
// against.
func (s *sloSim) restoreDur(model string) time.Duration {
	wb := s.weights[model]
	tier := perfmodel.TierDisk
	if s.classOf[model] == "interactive" {
		tier = perfmodel.TierTmpfs
	}
	return s.tb.StorageReadTime(tier, wb) + s.tb.CheckpointRestore(wb, wb, s.engines[model])
}

// serviceDur is the decode time for a fixed 64-token completion.
func (s *sloSim) serviceDur(model string) time.Duration {
	tps := s.tb.DecodeTokensPerSec(s.engines[model], models.Default().MustLookup(model))
	return time.Duration(64 / tps * float64(time.Second))
}

// waitFor estimates the queue delay a request for model arriving at t
// would see, without mutating any state — the gateway's predicted wait.
func (s *sloSim) waitFor(model string, t time.Time) time.Duration {
	if s.warm[model] {
		if wa := s.warmAt[model]; wa.After(t) {
			return wa.Sub(t)
		}
		return 0
	}
	start := t
	if s.linkFree.After(start) {
		start = s.linkFree
	}
	return start.Sub(t) + s.restoreDur(model)
}

// restore makes model resident: evict under capacity pressure, queue
// the image transfer on the serialized link, and return the completion
// time. Swap-outs ride the full-duplex pipelined engine, so eviction
// itself does not occupy the link.
func (s *sloSim) restore(model string, t time.Time) time.Time {
	s.ensureCapacity(s.weights[model], model, t)
	start := t
	if s.linkFree.After(start) {
		start = s.linkFree
	}
	finish := start.Add(s.restoreDur(model))
	s.linkFree = finish
	s.used += s.weights[model]
	s.warm[model] = true
	s.warmAt[model] = finish
	s.lastUsed[model] = t
	s.restores++
	return finish
}

// ensureCapacity evicts least-recently-used resident models (never one
// mid-restore, never the incoming model) until need bytes fit.
func (s *sloSim) ensureCapacity(need int64, incoming string, t time.Time) {
	if s.capacity-s.used >= need {
		return
	}
	var cands []string
	for m, w := range s.warm {
		if w && m != incoming && !s.warmAt[m].After(t) {
			cands = append(cands, m)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ti, tj := s.lastUsed[cands[i]], s.lastUsed[cands[j]]
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return cands[i] < cands[j]
	})
	for _, m := range cands {
		if s.capacity-s.used >= need {
			return
		}
		s.evict(m, t)
	}
}

// evict reclaims model's residency.
func (s *sloSim) evict(model string, t time.Time) {
	s.used -= s.weights[model]
	s.warm[model] = false
	delete(s.warmAt, model)
	s.ttl.NoteEvict(model, t)
	s.evictions++
}

// sweepTTL is the reaper pass: consult the TTL policy for every idle
// resident model, in the fixed fleet order.
func (s *sloSim) sweepTTL(t time.Time) {
	for _, m := range sloModels {
		if !s.warm[m.name] || s.warmAt[m.name].After(t) {
			continue
		}
		idle := t.Sub(s.lastUsed[m.name])
		if idle > 0 && s.ttl.ShouldEvict(m.name, idle, t) {
			s.evict(m.name, t)
		}
	}
}

// sloTrace generates the deterministic four-day arrival trace shared by
// both arms: per-model NHPP arrivals from Monday through Thursday.
func sloTrace(seed int64) (training [][]time.Time, measured []sloEvent) {
	monday := epoch.Add(24 * time.Hour) // epoch is Sunday 2025-11-16
	thursday := monday.Add(3 * 24 * time.Hour)
	friday := monday.Add(4 * 24 * time.Hour)

	training = make([][]time.Time, len(sloModels))
	for i, m := range sloModels {
		gen := workload.NewGenerator(seed + int64(i)*101)
		for _, r := range gen.Arrivals(m.wl, m.name, monday, friday, m.peak, 2) {
			if r.At.Before(thursday) {
				training[i] = append(training[i], r.At)
			} else {
				measured = append(measured, sloEvent{at: r.At, model: i})
			}
		}
	}
	sort.SliceStable(measured, func(i, j int) bool { return measured[i].at.Before(measured[j].at) })
	return training, measured
}

// runSLOArm replays the measured day through one arm.
func runSLOArm(arm string, predictive bool, training [][]time.Time, measured []sloEvent) ([]SLOClassRow, SLOArmSummary) {
	cfg := sloClasses()
	reg := metrics.NewRegistry()

	const baseTTL = 120 * time.Second

	var pred *sched.Predictor
	var adm *sched.Admission
	var pw *sched.Prewarmer
	var ttl sched.TTLPolicy
	var sim *sloSim
	var simNow time.Time

	if predictive {
		pred = sched.NewPredictor(10*time.Minute, 15*time.Minute)
		for i := range sloModels {
			for _, at := range training[i] {
				pred.Observe(sloModels[i].name, at)
			}
		}
		var err error
		adm, err = sched.NewAdmission(cfg, reg, nil)
		if err != nil {
			panic(err)
		}
		pttl := sched.NewPredictiveTTL(pred, nil)
		pttl.Slack = 100
		pttl.Floor = 60 * time.Second
		ttl = pttl
		sim = newSLOSim(ttl)
		pttl.Restore = sim.restoreDur
		names := make([]string, len(sloModels))
		for i, m := range sloModels {
			names[i] = m.name
		}
		pw = sched.NewPrewarmer(sched.PrewarmConfig{
			Predictor: pred,
			Models:    names,
			Horizon:   5 * time.Minute,
			Interval:  time.Minute,
			Threshold: 3,
			Registry:  reg,
			Issue: func(m string) bool {
				if sim.warm[m] {
					return false
				}
				sim.restore(m, simNow)
				return true
			},
		})
	} else {
		ttl = &sched.FixedTTL{TTL: baseTTL}
		sim = newSLOSim(ttl)
	}

	classOf := make(map[int]string, len(sloModels))
	for i, m := range sloModels {
		classOf[i] = m.class
	}
	latencies := map[string][]time.Duration{}
	offered := map[string]int{}
	shed := map[string]int{}

	const ttlSweepEvery = 15 * time.Second
	monday := epoch.Add(24 * time.Hour)
	thursday := monday.Add(3 * 24 * time.Hour)
	nextTTL := thursday
	nextPW := thursday

	for _, ev := range measured {
		t := ev.at
		for !nextTTL.After(t) {
			sim.sweepTTL(nextTTL)
			nextTTL = nextTTL.Add(ttlSweepEvery)
		}
		if pw != nil {
			for !nextPW.After(t) {
				simNow = nextPW
				pw.Sweep(nextPW)
				nextPW = nextPW.Add(time.Minute)
			}
		}

		m := sloModels[ev.model]
		class := classOf[ev.model]
		offered[class]++
		if pred != nil {
			pred.Observe(m.name, t)
		}

		ready := sim.warm[m.name] && !sim.warmAt[m.name].After(t)
		if pw != nil {
			pw.NotePlacement(m.name, ready, t)
		}

		wait := sim.waitFor(m.name, t)
		if adm != nil {
			if dec := adm.Decide(class, wait, t); !dec.Admit {
				shed[class]++
				continue
			}
		}

		if !sim.warm[m.name] {
			sim.ttl.NoteAccess(m.name, t) // reactive swap-in signal
			finish := sim.restore(m.name, t)
			wait = finish.Sub(t)
		} else if wa := sim.warmAt[m.name]; wa.After(t) {
			wait = wa.Sub(t)
		} else {
			wait = 0
		}
		served := t.Add(wait)
		if served.After(sim.lastUsed[m.name]) {
			sim.lastUsed[m.name] = served
		}
		lat := wait + sim.serviceDur(m.name)
		latencies[class] = append(latencies[class], lat)
		if adm != nil {
			adm.NoteStart(class)
			adm.NoteDone(class, lat)
		}
	}

	var rows []SLOClassRow
	for _, c := range cfg.Classes {
		ls := latencies[c.Name]
		slo := c.SLO()
		within := 0
		for _, l := range ls {
			if l <= slo {
				within++
			}
		}
		att := 0.0
		if len(ls) > 0 {
			att = 100 * float64(within) / float64(len(ls))
		}
		rows = append(rows, SLOClassRow{
			Arm:       arm,
			Class:     c.Name,
			Offered:   offered[c.Name],
			Admitted:  len(ls),
			Shed:      shed[c.Name],
			MeanSec:   mean(ls),
			P99Sec:    quantile(ls, 0.99),
			AttainPct: att,
		})
	}
	sum := SLOArmSummary{
		Arm:            arm,
		Restores:       sim.restores,
		Evictions:      sim.evictions,
		PrefetchIssued: int(reg.Counter("sched_prefetch_issued").Value()),
		PrefetchHits:   int(reg.Counter("sched_prefetch_hits").Value()),
		PrefetchMisses: int(reg.Counter("sched_prefetch_misses").Value()),
	}
	return rows, sum
}

// SLOAblation runs the reactive-vs-predictive comparison on the shared
// trace. Deterministic for a given seed: byte-identical artifacts.
func SLOAblation(seed int64) *SLOResult {
	training, measured := sloTrace(seed)
	res := &SLOResult{}
	for _, arm := range []struct {
		name       string
		predictive bool
	}{
		{"reactive", false},
		{"predictive", true},
	} {
		rows, sum := runSLOArm(arm.name, arm.predictive, training, measured)
		res.Rows = append(res.Rows, rows...)
		res.Arms = append(res.Arms, sum)
	}
	return res
}

// PrintSLO renders the ablation tables.
func PrintSLO(w io.Writer, res *SLOResult) {
	fprintf(w, "Ablation: predictive SLO scheduling vs reactive baseline (one measured day, shared trace)\n")
	fprintf(w, "%-11s %-12s %8s %9s %6s %9s %9s %10s\n",
		"Arm", "Class", "offered", "admitted", "shed", "mean(s)", "p99(s)", "attain(%)")
	for _, r := range res.Rows {
		fprintf(w, "%-11s %-12s %8d %9d %6d %9.2f %9.2f %10.2f\n",
			r.Arm, r.Class, r.Offered, r.Admitted, r.Shed, r.MeanSec, r.P99Sec, r.AttainPct)
	}
	fprintf(w, "%-11s %9s %10s %9s %6s %7s\n", "Arm", "restores", "evictions", "prefetch", "hits", "misses")
	for _, a := range res.Arms {
		fprintf(w, "%-11s %9d %10d %9d %6d %7d\n",
			a.Arm, a.Restores, a.Evictions, a.PrefetchIssued, a.PrefetchHits, a.PrefetchMisses)
	}
}

// SLOCSV flattens the per-class rows for -csv output.
func SLOCSV(res *SLOResult) (string, []string) {
	header := "arm,class,offered,admitted,shed,mean_s,p99_s,slo_attainment_pct"
	var rows []string
	for _, r := range res.Rows {
		rows = append(rows, fmt.Sprintf("%s,%s,%d,%d,%d,%.3f,%.3f,%.2f",
			r.Arm, r.Class, r.Offered, r.Admitted, r.Shed, r.MeanSec, r.P99Sec, r.AttainPct))
	}
	return header, rows
}

// SLOBenchJSON renders the committed BENCH_slo.json artifact. Formatting
// is fixed-precision so the bytes are stable run to run.
func SLOBenchJSON(res *SLOResult) string {
	cfg := sloClasses()
	out := "{\n"
	out += "  \"benchmark\": \"SLOAblation\",\n"
	out += "  \"description\": \"One measured day of diurnal nine-model traffic (~133 GB fp16 weights on one 80 GiB H100, restores serialized on one transfer link) replayed through the reactive baseline and the predictive scheduling subsystem. Days 1-3 of the same trace train the demand predictor.\",\n"
	out += "  \"testbed\": \"h100\",\n"
	out += "  \"command\": \"go run ./cmd/swapbench -exp slo\",\n"
	out += "  \"classes\": [\n"
	for i, c := range cfg.Classes {
		comma := ","
		if i == len(cfg.Classes)-1 {
			comma = ""
		}
		out += fmt.Sprintf("    {\"name\": %q, \"priority\": %d, \"slo_s\": %.1f, \"guaranteed_rate_per_s\": %.3f}%s\n",
			c.Name, c.Priority, c.SLOSec, c.RatePerSec, comma)
	}
	out += "  ],\n"
	out += "  \"rows\": [\n"
	for i, r := range res.Rows {
		comma := ","
		if i == len(res.Rows)-1 {
			comma = ""
		}
		out += fmt.Sprintf("    {\"arm\": %q, \"class\": %q, \"offered\": %d, \"admitted\": %d, \"shed\": %d, \"mean_s\": %.3f, \"p99_s\": %.3f, \"slo_attainment_pct\": %.2f}%s\n",
			r.Arm, r.Class, r.Offered, r.Admitted, r.Shed, r.MeanSec, r.P99Sec, r.AttainPct, comma)
	}
	out += "  ],\n"
	out += "  \"arms\": [\n"
	for i, a := range res.Arms {
		comma := ","
		if i == len(res.Arms)-1 {
			comma = ""
		}
		out += fmt.Sprintf("    {\"arm\": %q, \"restores\": %d, \"evictions\": %d, \"prefetch_issued\": %d, \"prefetch_hits\": %d, \"prefetch_misses\": %d}%s\n",
			a.Arm, a.Restores, a.Evictions, a.PrefetchIssued, a.PrefetchHits, a.PrefetchMisses, comma)
	}
	out += "  ]\n}\n"
	return out
}
