package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// Fig6aRow is one point of Figure 6a: on-demand swap-in latency with a
// vLLM backend vs its cold-start latency, on the H100 testbed.
type Fig6aRow struct {
	Model        string
	DisplayName  string
	GPUMemGiB    float64
	SwapInSec    float64
	ColdStartSec float64
}

// Fig6bRow is one point of Figure 6b: SwapServeLLM swap-in latency vs
// Ollama's own model loading, on the H100 testbed.
type Fig6bRow struct {
	Model         string
	DisplayName   string
	GPUMemGiB     float64
	SwapInSec     float64
	OllamaLoadSec float64
}

// Figure6Models is the model sweep of both subfigures.
var Figure6Models = []string{
	"llama3.2:1b-fp16",
	"llama3.2:3b-fp16",
	"llama3.1:8b-fp16",
	"deepseek-r1:7b-fp16",
	"deepseek-r1:14b-fp16",
}

// swapInThroughServer builds a single-backend SwapServeLLM server, lets
// the init sequence snapshot it, and measures Reps full swap-in/swap-out
// cycles through the scheduler/controller path. The trial runs on its
// own Virtual clock (scale is retained for interface stability but
// unused), so the measured cycle is pure deadline arithmetic and
// identical on every run.
func swapInThroughServer(engineKind string, modelName string, scale float64) (swapIn time.Duration, gpuBytes int64, err error) {
	_ = scale
	clock, gate := virtualClock()
	defer gate.Exit()
	cfg := config.Default()
	cfg.Models = []config.Model{{Name: modelName, Engine: engineKind}}
	s, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		return 0, 0, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return 0, 0, err
	}
	b, _ := s.Backend(modelName)
	ctx := context.Background()

	// One untimed warm-up cycle absorbs process cold-start effects (HTTP
	// connection setup, page faults) that the simulation scale would
	// otherwise magnify into seconds.
	if err := s.Scheduler().EnsureRunning(ctx, b); err != nil {
		return 0, 0, err
	}
	if err := s.Controller().SwapOut(ctx, b); err != nil {
		return 0, 0, err
	}

	// Median of five cycles: robust against wall-clock scheduling hiccups.
	const cycles = 5
	var samples []time.Duration
	for rep := 0; rep < cycles; rep++ {
		t0 := s.Clock().Now()
		if err := s.Scheduler().EnsureRunning(ctx, b); err != nil {
			return 0, 0, fmt.Errorf("swap-in %s: %w", modelName, err)
		}
		samples = append(samples, s.Clock().Since(t0))
		gpuBytes = b.Container().Engine().GPUBytes()
		if err := s.Controller().SwapOut(ctx, b); err != nil {
			return 0, 0, fmt.Errorf("swap-out %s: %w", modelName, err)
		}
	}
	for i := 1; i < len(samples); i++ {
		for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
			samples[j], samples[j-1] = samples[j-1], samples[j]
		}
	}
	return samples[len(samples)/2], gpuBytes, nil
}

// Figure6a reproduces Figure 6a: swap-in latency of vLLM backends
// (each occupying ~90% of the H100) against their cold-start latency.
func Figure6a(scale float64) ([]Fig6aRow, error) {
	tb := perfmodel.H100()
	cat := models.Default()
	var rows []Fig6aRow
	for _, name := range Figure6Models {
		m := cat.MustLookup(name)
		swap, bytes, err := swapInThroughServer("vllm", name, scale)
		if err != nil {
			return nil, err
		}
		cold := tb.ColdStart(perfmodel.EngineVLLM, m, perfmodel.TierDisk)
		rows = append(rows, Fig6aRow{
			Model:        name,
			DisplayName:  m.DisplayName,
			GPUMemGiB:    gib(bytes),
			SwapInSec:    swap.Seconds(),
			ColdStartSec: cold.Seconds(),
		})
	}
	return rows, nil
}

// Figure6b reproduces Figure 6b: SwapServeLLM swap-in latency with
// Ollama backends against Ollama's native model loading.
func Figure6b(scale float64) ([]Fig6bRow, error) {
	tb := perfmodel.H100()
	cat := models.Default()
	var rows []Fig6bRow
	for _, name := range Figure6Models {
		m := cat.MustLookup(name)
		swap, bytes, err := swapInThroughServer("ollama", name, scale)
		if err != nil {
			return nil, err
		}
		load := tb.EngineInit(perfmodel.EngineOllama, m, perfmodel.TierDisk).Total()
		rows = append(rows, Fig6bRow{
			Model:         name,
			DisplayName:   m.DisplayName,
			GPUMemGiB:     gib(bytes),
			SwapInSec:     swap.Seconds(),
			OllamaLoadSec: load.Seconds(),
		})
	}
	return rows, nil
}

// PrintFigure6a renders the vLLM swap-in comparison.
func PrintFigure6a(w io.Writer, rows []Fig6aRow) {
	fprintf(w, "Figure 6a: on-demand swap-in with vLLM backends (H100, seconds)\n")
	fprintf(w, "%-10s %12s %11s %14s %9s\n", "Model", "GPU mem(GiB)", "Swap-in(s)", "Cold start(s)", "Speedup")
	for _, r := range rows {
		fprintf(w, "%-10s %12.1f %11.2f %14.2f %8.1fx\n",
			r.DisplayName, r.GPUMemGiB, r.SwapInSec, r.ColdStartSec, r.ColdStartSec/r.SwapInSec)
	}
}

// PrintFigure6b renders the Ollama comparison.
func PrintFigure6b(w io.Writer, rows []Fig6bRow) {
	fprintf(w, "Figure 6b: Ollama loading vs SwapServeLLM swap-in (H100, seconds)\n")
	fprintf(w, "%-10s %12s %15s %11s %9s\n", "Model", "GPU mem(GiB)", "Ollama load(s)", "Swap-in(s)", "Speedup")
	for _, r := range rows {
		fprintf(w, "%-10s %12.1f %15.2f %11.2f %8.1fx\n",
			r.DisplayName, r.GPUMemGiB, r.OllamaLoadSec, r.SwapInSec, r.OllamaLoadSec/r.SwapInSec)
	}
}
