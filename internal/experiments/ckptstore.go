package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/ckptstore"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/gpu"
	"swapservellm/internal/invariant"
	"swapservellm/internal/metrics"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// The checkpoint-store ablation quantifies the three wins of the
// content-addressed multi-tier store (internal/ckptstore) against the
// monolithic-image baseline, per model, on the H100 testbed's Virtual
// clock (byte-identical artifacts):
//
//   - delta checkpoints: an idle model's re-swap-out skips every chunk
//     still cached from the last checkpoint, so the steady-state
//     swap-out is a near-no-op compared to the first (full) one;
//   - dedup: a second replica of a model stores zero new bytes —
//     logical-over-unique is the measured dedup ratio;
//   - restore-source selection: a demoted image restores from a peer's
//     host RAM (over the fabric) faster than from local NVMe when the
//     perfmodel says the fabric is faster, which on the H100 testbed
//     it is.

// ckptStoreDynBytes is the dynamic (KV-cache) region appended to each
// model's weights to form its checkpoint image.
const ckptStoreDynBytes = int64(2) << 30

// ckptStoreModels is the measured model set.
var ckptStoreModels = []string{
	"llama3.1:8b-fp16",
	"gemma3:12b-fp16",
	"deepseek-r1:14b-fp16",
}

// CkptStoreRow is one model's measurements.
type CkptStoreRow struct {
	Model     string
	ImageGiB  float64
	FullSec   float64 // first (cold) swap-out
	DeltaSec  float64 // idle re-swap-out, every chunk clean
	DirtySec  float64 // re-swap-out after traffic dirtied the KV region
	SpeedupX  float64 // FullSec / DeltaSec
	Dedup     float64 // logical/unique after a second replica checkpoints
	DiskSec   float64 // restore of a demoted image from local disk
	PeerSec   float64 // same restore with a peer holding the chunks in RAM
	PeerGainX float64 // DiskSec / PeerSec
}

// CkptStoreResult is the full ablation output.
type CkptStoreResult struct {
	Rows []CkptStoreRow
}

// ckptRig is a driver+store pair on a shared virtual clock.
type ckptRig struct {
	driver *cudackpt.Driver
	store  *ckptstore.Store
	dev    *gpu.Device
	reg    *metrics.Registry
}

// newCkptRig builds one node's driver+store on the rig's clock. A
// non-zero hostCap bounds the driver's logical host ledger so spill
// demotions fire.
func newCkptRig(r *rig, node string, devIdx int, hostCap int64) *ckptRig {
	reg := metrics.NewRegistry()
	d := cudackpt.NewDriver(r.clock, r.tb, hostCap)
	d.EnableSpill()
	st := ckptstore.New(r.clock, r.tb,
		ckptstore.WithRegistry(reg), ckptstore.WithNodeID(node))
	d.AttachStore(st)
	return &ckptRig{
		driver: d,
		store:  st,
		dev:    gpu.NewDevice(devIdx, r.tb.GPU, r.tb.GPUMemBytes),
		reg:    reg,
	}
}

// registerImage registers pid's image (weights + dynamic region) on the
// node, keyed by the model's content key.
func (cr *ckptRig) registerImage(pid, ckey string, weights int64) error {
	cr.dev.Alloc(pid, weights+ckptStoreDynBytes)
	if err := cr.driver.Register(pid, cr.dev, perfmodel.EngineVLLM, weights); err != nil {
		return err
	}
	return cr.driver.SetContentKey(pid, ckey)
}

// AblationCheckpointStore measures the checkpoint-store wins per model.
func AblationCheckpointStore() (*CkptStoreResult, error) {
	catalog := models.Default()
	res := &CkptStoreResult{}
	for _, name := range ckptStoreModels {
		m := catalog.MustLookup(name)
		row, err := ckptStoreModelRow(name, m.WeightBytes())
		if err != nil {
			return nil, fmt.Errorf("ckptstore ablation %s: %w", name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ckptStoreModelRow runs the full measurement sequence for one model.
func ckptStoreModelRow(name string, weights int64) (CkptStoreRow, error) {
	r := newRig(perfmodel.H100(), 0)
	defer r.done()
	ctx := context.Background()
	image := weights + ckptStoreDynBytes
	row := CkptStoreRow{Model: name, ImageGiB: gib(image)}

	local := newCkptRig(r, "n1", 0, 0)
	if err := local.registerImage("p1", name, weights); err != nil {
		return row, err
	}

	// Full (cold) swap-out: every chunk crosses PCIe.
	t0 := r.clock.Now()
	if _, err := local.driver.Suspend(ctx, "p1"); err != nil {
		return row, err
	}
	row.FullSec = r.clock.Since(t0).Seconds()

	// Idle delta re-swap-out: the restore releases the manifest but the
	// chunk payloads stay cached, so the re-checkpoint skips every copy.
	if err := local.driver.Resume(ctx, "p1"); err != nil {
		return row, err
	}
	t1 := r.clock.Now()
	if _, err := local.driver.Suspend(ctx, "p1"); err != nil {
		return row, err
	}
	row.DeltaSec = r.clock.Since(t1).Seconds()
	if row.DeltaSec > 0 {
		row.SpeedupX = row.FullSec / row.DeltaSec
	}

	// Dedup: a second replica of the same model checkpoints into the
	// same chunks — logical doubles, unique does not.
	if err := local.registerImage("p2", name, weights); err != nil {
		return row, err
	}
	if _, err := local.driver.Suspend(ctx, "p2"); err != nil {
		return row, err
	}
	row.Dedup = local.store.Stats().DedupRatio()

	// Dirty re-swap-out: traffic re-keys the dynamic region; only those
	// chunks transfer.
	if err := local.driver.Resume(ctx, "p1"); err != nil {
		return row, err
	}
	local.driver.MarkDirty("p1")
	t2 := r.clock.Now()
	if _, err := local.driver.Suspend(ctx, "p1"); err != nil {
		return row, err
	}
	row.DirtySec = r.clock.Since(t2).Seconds()

	// Restore-source arms, each on a fresh single-image node so the
	// measured restore moves the whole image (no chunks shared with a
	// hot replica).
	disk, err := ckptStoreRestoreArm(r, name, weights, false)
	if err != nil {
		return row, err
	}
	row.DiskSec = disk.Seconds()
	peer, err := ckptStoreRestoreArm(r, name, weights, true)
	if err != nil {
		return row, err
	}
	row.PeerSec = peer.Seconds()
	if row.PeerSec > 0 {
		row.PeerGainX = row.DiskSec / row.PeerSec
	}
	return row, nil
}

// ckptStoreRestoreArm checkpoints one image, demotes it to local disk,
// and measures the restore — optionally with a peer node whose store
// holds every chunk hot in host RAM, which the restore planner then
// prefers over the local NVMe read.
func ckptStoreRestoreArm(r *rig, name string, weights int64, withPeer bool) (time.Duration, error) {
	ctx := context.Background()
	local := newCkptRig(r, "arm-local", 2, 0)
	if withPeer {
		peer := newCkptRig(r, "arm-peer", 3, 0)
		if err := peer.registerImage("p1", name, weights); err != nil {
			return 0, err
		}
		// The peer's checkpoint leaves the shared-content chunks hot in
		// its host RAM.
		if _, err := peer.driver.Suspend(ctx, "p1"); err != nil {
			return 0, err
		}
		local.store.SetPeers([]ckptstore.Peer{peer.store})
	}
	if err := local.registerImage("p1", name, weights); err != nil {
		return 0, err
	}
	if _, err := local.driver.Suspend(ctx, "p1"); err != nil {
		return 0, err
	}
	if err := local.driver.Demote(ctx, "p1"); err != nil {
		return 0, err
	}
	t0 := r.clock.Now()
	if err := local.driver.Resume(ctx, "p1"); err != nil {
		return 0, err
	}
	return r.clock.Since(t0), nil
}

// PrintCkptStore renders the ablation table.
func PrintCkptStore(w io.Writer, res *CkptStoreResult) {
	fprintf(w, "Checkpoint store: delta re-swap, dedup, and restore-source selection (H100)\n")
	fprintf(w, "%-24s %9s %9s %9s %9s %8s %7s %9s %9s %8s\n",
		"model", "image_gib", "full_s", "delta_s", "dirty_s", "delta_x", "dedup", "disk_s", "peer_s", "peer_x")
	for _, r := range res.Rows {
		fprintf(w, "%-24s %9.1f %9.3f %9.3f %9.3f %8.1f %7.2f %9.3f %9.3f %8.2f\n",
			r.Model, r.ImageGiB, r.FullSec, r.DeltaSec, r.DirtySec, r.SpeedupX, r.Dedup, r.DiskSec, r.PeerSec, r.PeerGainX)
	}
	fprintf(w, "delta_x: full over idle re-swap-out; peer_x: local-disk over peer-RAM restore.\n")
}

// CkptStoreCSV renders the rows as CSV lines.
func CkptStoreCSV(res *CkptStoreResult) (header string, out []string) {
	header = "model,image_gib,full_s,delta_s,dirty_s,delta_speedup_x,dedup_ratio,disk_restore_s,peer_restore_s,peer_speedup_x"
	for _, r := range res.Rows {
		out = append(out, fmt.Sprintf("%s,%.1f,%.4f,%.4f,%.4f,%.2f,%.3f,%.4f,%.4f,%.3f",
			r.Model, r.ImageGiB, r.FullSec, r.DeltaSec, r.DirtySec, r.SpeedupX, r.Dedup, r.DiskSec, r.PeerSec, r.PeerGainX))
	}
	return header, out
}

// CkptStoreBenchJSON renders the committed BENCH_ckptstore.json
// artifact. Formatting is fixed-precision so the bytes are stable run
// to run.
func CkptStoreBenchJSON(res *CkptStoreResult) string {
	out := "{\n"
	out += "  \"benchmark\": \"AblationCheckpointStore\",\n"
	out += "  \"description\": \"Content-addressed multi-tier checkpoint store on the H100 testbed: first (full) vs idle delta vs dirty re-swap-out latency, replica dedup ratio, and restore of a disk-demoted image from local NVMe vs a peer node's host RAM over the fabric. Virtual clock; byte-identical.\",\n"
	out += "  \"testbed\": \"h100\",\n"
	out += "  \"command\": \"go run ./cmd/swapbench -exp ckptstore\",\n"
	out += "  \"rows\": [\n"
	for i, r := range res.Rows {
		comma := ","
		if i == len(res.Rows)-1 {
			comma = ""
		}
		out += fmt.Sprintf("    {\"model\": %q, \"image_gib\": %.1f, \"full_swap_out_s\": %.4f, \"delta_swap_out_s\": %.4f, \"dirty_swap_out_s\": %.4f, \"delta_speedup_x\": %.2f, \"dedup_ratio\": %.3f, \"local_disk_restore_s\": %.4f, \"peer_ram_restore_s\": %.4f, \"peer_speedup_x\": %.3f}%s\n",
			r.Model, r.ImageGiB, r.FullSec, r.DeltaSec, r.DirtySec, r.SpeedupX, r.Dedup, r.DiskSec, r.PeerSec, r.PeerGainX, comma)
	}
	out += "  ]\n}\n"
	return out
}

// CkptStoreChaosRules is the checkpoint-store soak schedule: heavy
// fault rates on chunk fetches and promotions (forcing the
// bounded-retry fallback to the next-best source), plus the driver's
// usual lossy transfer chunks.
const CkptStoreChaosRules = "ckptstore.fetch: p=0.35" +
	"; ckptstore.promote: p=0.35" +
	"; cudackpt.chunk: p=0.02" +
	"; cudackpt.pcie: p=0.2 delay=25ms"

// ckptSoakOps is the operation count of one checkpoint-store soak trial.
const ckptSoakOps = 40

// ChaosCkptStoreSoak runs one seeded checkpoint-store trial: two
// replicas of one model plus an unrelated model cycle through
// suspend/resume/demote/promote on a spill-capped driver while fetch
// and promote faults fire; a peer node's hot store is wired in so the
// fallback ladder always has a further rung. After every operation the
// store self-checks and the driver's conservation invariants are
// audited; failed operations are retried a bounded number of times.
func ChaosCkptStoreSoak(seed int64, scale float64) (ChaosRow, error) {
	_ = scale // virtual time; retained for interface stability
	r := newRig(perfmodel.H100(), 0)
	defer r.done()
	ctx := context.Background()
	const model = "llama3.1:8b-fp16"
	weights := models.Default().MustLookup(model).WeightBytes()

	topo := gpu.NewTopology(r.tb.GPU, 1, r.tb.GPUMemBytes)
	// The spill cap holds two images but not three, so checkpoints
	// regularly demote a victim by chunk reference.
	localCap := 2*(weights+ckptStoreDynBytes) + ckptStoreDynBytes
	local := newCkptRig(r, "soak-local", 0, localCap)

	peer := newCkptRig(r, "soak-peer", 1, 0)
	if err := peer.registerImage("pp", model, weights); err != nil {
		return ChaosRow{}, err
	}
	if _, err := peer.driver.Suspend(ctx, "pp"); err != nil {
		return ChaosRow{}, err
	}
	local.store.SetPeers([]ckptstore.Peer{peer.store})

	pids := []string{"a0", "a1", "b0"}
	for _, pid := range pids[:2] {
		if err := local.registerImage(pid, model, weights); err != nil {
			return ChaosRow{}, err
		}
	}
	if err := local.registerImage("b0", "other-model", weights); err != nil {
		return ChaosRow{}, err
	}

	inj := chaos.NewInjector(chaos.MustParsePlan(CkptStoreChaosRules).WithSeed(seed))
	local.driver.SetChaos(inj)
	local.store.SetChaos(inj)

	row := ChaosRow{Scope: "ckptstore", Seed: seed}
	var rep invariant.Report
	var recoveries []time.Duration
	audit := func() {
		if err := local.store.SelfCheck(); err != nil {
			rep.Addf("ckptstore.selfcheck", "store", "%v", err)
		}
		invariant.CheckDriver(&rep, local.driver, topo)
	}

	// suspended tracks which images are currently checkpointed, so every
	// generated operation is legal and failures can only come from the
	// fault schedule.
	suspended := map[string]bool{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ckptSoakOps; i++ {
		pid := pids[rng.Intn(len(pids))]
		var op func() error
		if !suspended[pid] {
			op = func() error { _, err := local.driver.Suspend(ctx, pid); return err }
		} else {
			switch rng.Intn(3) {
			case 0:
				op = func() error { return local.driver.Resume(ctx, pid) }
			case 1:
				op = func() error { return local.driver.Demote(ctx, pid) }
			default:
				op = func() error { return local.driver.Promote(ctx, pid) }
			}
		}
		row.Requests++
		err := op()
		if errors.Is(err, cudackpt.ErrHostMemory) {
			// A capacity-refused promote is the spill cap working as
			// designed, not a fault — legal refusal, no retry.
			err = nil
		}
		if err == nil {
			audit()
		} else {
			row.Failed++
			tFail := r.clock.Now()
			if retryUntilOK(op) {
				row.Recovered++
				recoveries = append(recoveries, r.clock.Since(tFail))
			} else {
				row.Unrecovered++
			}
			audit()
		}
		// Refresh the state map from the driver, not the op outcome: a
		// failed promote leaves the image checkpointed on disk, a failed
		// suspend rolls back to running.
		if st, serr := local.driver.State(pid); serr == nil {
			suspended[pid] = st == cudackpt.StateCheckpointed
		}
	}
	audit()
	fillChaosRow(&row, &rep, inj, recoveries)
	return row, nil
}

// ChaosCkptStoreSweep runs the checkpoint-store soak over n consecutive
// seeds starting at start.
func ChaosCkptStoreSweep(start int64, n int, scale float64) ([]ChaosRow, error) {
	var rows []ChaosRow
	for seed := start; seed < start+int64(n); seed++ {
		row, err := ChaosCkptStoreSoak(seed, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
