package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"swapservellm/internal/container"
	"swapservellm/internal/engine"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// Fig2Row is one bar of Figure 2: end-to-end cold-start latency
// (container startup + engine initialization) for an engine/model pair on
// the H100 testbed.
type Fig2Row struct {
	Engine       perfmodel.EngineKind
	Model        string
	DisplayName  string
	ColdStartSec float64
}

// Figure2Models is the model set swept in the cold-start figure.
var Figure2Models = []string{
	"llama3.2:1b-fp16",
	"llama3.2:3b-fp16",
	"llama3.1:8b-fp16",
	"deepseek-r1:7b-fp16",
	"deepseek-r1:14b-fp16",
}

// Figure2Engines is the engine set of the figure, ordered as in the
// paper's discussion.
var Figure2Engines = []perfmodel.EngineKind{
	perfmodel.EngineOllama,
	perfmodel.EngineSGLang,
	perfmodel.EngineVLLM,
	perfmodel.EngineTRTLLM,
}

// Figure2 reproduces Figure 2: for every engine × model it creates a
// container, starts it, and measures until the engine is ready —
// the full cold-start path a serverless scale-out pays.
func Figure2(scale float64) ([]Fig2Row, error) {
	r := newRig(perfmodel.H100(), scale)
	defer r.done()
	rt := container.NewRuntime(r.clock, r.tb, r.freezer, r.driver)
	cat := models.Default()

	var rows []Fig2Row
	seq := 0
	for _, kind := range Figure2Engines {
		for _, name := range Figure2Models {
			m := cat.MustLookup(name)
			r.stage(m, perfmodel.TierDisk)
			// Median of Reps cold starts: robust against wall-clock
			// scheduling hiccups magnified by the simulation scale.
			var samples []time.Duration
			for rep := 0; rep < Reps; rep++ {
				seq++
				spec := container.Spec{
					Name:  fmt.Sprintf("fig2-%d", seq),
					Image: string(kind),
					Engine: func(owner string) (engine.Engine, error) {
						return engine.New(kind, r.engineConfig(owner, m, perfmodel.TierDisk))
					},
				}
				t0 := r.clock.Now()
				ctr, err := rt.Create(context.Background(), spec)
				if err != nil {
					return nil, err
				}
				if err := rt.Start(context.Background(), ctr); err != nil {
					return nil, err
				}
				if err := ctr.WaitReady(context.Background()); err != nil {
					return nil, fmt.Errorf("%s/%s: %w", kind, name, err)
				}
				samples = append(samples, r.clock.Since(t0))
				if err := rt.Stop(context.Background(), ctr); err != nil {
					return nil, err
				}
				rt.Remove(ctr)
			}
			rows = append(rows, Fig2Row{
				Engine:       kind,
				Model:        name,
				DisplayName:  m.DisplayName,
				ColdStartSec: median(samples).Seconds(),
			})
		}
	}
	return rows, nil
}

// median returns the middle sample (sorting a copy).
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// PrintFigure2 renders the cold-start matrix.
func PrintFigure2(w io.Writer, rows []Fig2Row) {
	fprintf(w, "Figure 2: cold-start latency incl. container startup (H100, seconds)\n")
	fprintf(w, "%-10s", "Model")
	for _, e := range Figure2Engines {
		fprintf(w, " %10s", e)
	}
	fprintf(w, "\n")
	for _, name := range Figure2Models {
		var display string
		cells := make(map[perfmodel.EngineKind]float64)
		for _, r := range rows {
			if r.Model == name {
				cells[r.Engine] = r.ColdStartSec
				display = r.DisplayName
			}
		}
		fprintf(w, "%-10s", display)
		for _, e := range Figure2Engines {
			fprintf(w, " %10.2f", cells[e])
		}
		fprintf(w, "\n")
	}
}

var _ = time.Second
