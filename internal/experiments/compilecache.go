package experiments

import (
	"context"
	"io"

	"swapservellm/internal/engine"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// CompileCacheRow compares cold-start mitigation strategies for one vLLM
// model: a plain cold start, a cold start with a warm compilation cache
// (torch.compile artifacts kept across runs — the strongest conventional
// mitigation), and a SwapServeLLM swap-in.
type CompileCacheRow struct {
	Scenario   string
	LatencySec float64
}

// AblationCompileCache measures the three strategies for LLaMA 3.1-8B on
// the H100 testbed. Even against a warm compile cache, hot-swapping wins
// by the CUDA-graph capture and runtime setup it also skips.
func AblationCompileCache(scale float64) ([]CompileCacheRow, error) {
	r := newRig(perfmodel.H100(), scale)
	defer r.done()
	m := models.Default().MustLookup("llama3.1:8b-fp16")
	r.stage(m, perfmodel.TierDisk)
	cache := engine.NewInitCache()
	ctx := context.Background()

	// Cold start, cold cache.
	cfg := r.engineConfig("cc-cold", m, perfmodel.TierDisk)
	cfg.InitCache = cache
	e1, err := engine.NewVLLM(cfg)
	if err != nil {
		return nil, err
	}
	t0 := r.clock.Now()
	if _, err := e1.Init(ctx); err != nil {
		return nil, err
	}
	coldCold := r.clock.Since(t0)
	e1.Shutdown()

	// Cold start, warm cache.
	cfg2 := r.engineConfig("cc-warm", m, perfmodel.TierDisk)
	cfg2.InitCache = cache
	e2, err := engine.NewVLLM(cfg2)
	if err != nil {
		return nil, err
	}
	t1 := r.clock.Now()
	if _, err := e2.Init(ctx); err != nil {
		return nil, err
	}
	coldWarm := r.clock.Since(t1)
	e2.Shutdown()

	// SwapServeLLM swap-in through the full stack.
	swap, _, err := swapInThroughServer("vllm", m.Name, scale)
	if err != nil {
		return nil, err
	}

	boot := perfmodel.EngineBootOverhead(perfmodel.EngineVLLM).Seconds()
	return []CompileCacheRow{
		{Scenario: "cold start, cold compile cache", LatencySec: coldCold.Seconds() + boot},
		{Scenario: "cold start, warm compile cache", LatencySec: coldWarm.Seconds() + boot},
		{Scenario: "SwapServeLLM swap-in", LatencySec: swap.Seconds()},
	}, nil
}

// PrintCompileCache renders the comparison.
func PrintCompileCache(w io.Writer, rows []CompileCacheRow) {
	fprintf(w, "Ablation: cold-start mitigations for vLLM LLaMA 3.1-8B (H100, incl. runtime boot)\n")
	fprintf(w, "%-34s %12s\n", "Scenario", "Latency(s)")
	for _, r := range rows {
		fprintf(w, "%-34s %12.2f\n", r.Scenario, r.LatencySec)
	}
}
