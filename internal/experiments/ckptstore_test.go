package experiments

import (
	"strings"
	"testing"
)

// TestCkptStoreDeterministic runs the ablation twice and requires
// byte-identical artifacts plus the headline properties the issue pins:
// idle delta re-swap-out at least 2× faster than the full one, and the
// peer-RAM restore beating the local-disk restore for every model.
func TestCkptStoreDeterministic(t *testing.T) {
	first, err := AblationCheckpointStore()
	if err != nil {
		t.Fatal(err)
	}
	second, err := AblationCheckpointStore()
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := CkptStoreBenchJSON(first), CkptStoreBenchJSON(second)
	if j1 != j2 {
		t.Fatalf("two runs produced different artifacts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
	if len(first.Rows) != len(ckptStoreModels) {
		t.Fatalf("got %d rows, want %d", len(first.Rows), len(ckptStoreModels))
	}
	for _, r := range first.Rows {
		if r.SpeedupX < 2 {
			t.Errorf("%s: delta speedup %.2fx < 2x (full %.3fs, delta %.3fs)",
				r.Model, r.SpeedupX, r.FullSec, r.DeltaSec)
		}
		if r.PeerSec >= r.DiskSec {
			t.Errorf("%s: peer-RAM restore %.3fs not faster than local disk %.3fs",
				r.Model, r.PeerSec, r.DiskSec)
		}
		if r.Dedup != 2 {
			t.Errorf("%s: dedup ratio %.3f, want exactly 2 (two identical replicas)", r.Model, r.Dedup)
		}
		if r.DirtySec <= r.DeltaSec || r.DirtySec >= r.FullSec {
			t.Errorf("%s: dirty re-swap %.4fs should sit between delta %.4fs and full %.4fs",
				r.Model, r.DirtySec, r.DeltaSec, r.FullSec)
		}
	}
	for _, must := range []string{
		"\"benchmark\": \"AblationCheckpointStore\"",
		"\"command\": \"go run ./cmd/swapbench -exp ckptstore\"",
		"peer_speedup_x",
	} {
		if !strings.Contains(j1, must) {
			t.Errorf("artifact missing %q", must)
		}
	}
}

// TestChaosCkptStoreSoak runs a couple of soak seeds and requires zero
// invariant violations and no unrecovered operations.
func TestChaosCkptStoreSoak(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		row, err := ChaosCkptStoreSoak(seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if row.Violations != 0 {
			t.Errorf("seed %d: %d invariant violations: %s", seed, row.Violations, row.ViolationText)
		}
		if row.Unrecovered != 0 {
			t.Errorf("seed %d: %d unrecovered operations", seed, row.Unrecovered)
		}
		if row.FaultsInjected == 0 {
			t.Errorf("seed %d: soak injected no faults — schedule inert", seed)
		}
		if row.Scope != "ckptstore" {
			t.Errorf("seed %d: scope %q", seed, row.Scope)
		}
	}
}
