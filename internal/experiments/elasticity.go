package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/openai"
)

// ElasticityRow quantifies the paper's cost-effectiveness claim for one
// provisioning strategy: request latency against the GPU memory actually
// occupied over the run (GiB·s — the resource a provider pays for).
type ElasticityRow struct {
	Strategy   string
	MeanSec    float64
	P99Sec     float64
	MemGiBSec  float64 // integral of device memory usage over the run
	SwapIns    int64
	IdleReaps  float64
	Prefetches float64
}

// elasticityModels are three Ollama backends with distinct burst periods.
var elasticityModels = []string{
	"llama3.2:1b-fp16",
	"llama3.2:3b-fp16",
	"deepseek-r1:7b-q4",
}

// AblationElasticity replays identical periodic-burst traffic under three
// strategies: always-warm (dedicated residency), reactive hot-swapping
// with a keep-alive window, and hot-swapping with the predictive
// prefetcher. It reports the latency/cost trade-off each strategy buys.
func AblationElasticity(scale float64, seed int64) ([]ElasticityRow, error) {
	type strategy struct {
		name      string
		keepWarm  bool
		keepAlive float64
		prefetch  bool
	}
	strategies := []strategy{
		{name: "always-warm", keepWarm: true},
		{name: "hot-swap (keep-alive 15s)", keepAlive: 15},
		{name: "hot-swap + prefetch", keepAlive: 15, prefetch: true},
	}
	var rows []ElasticityRow
	for _, st := range strategies {
		row, err := runElasticityTrial(st.name, st.keepWarm, st.keepAlive, st.prefetch, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", st.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runElasticityTrial runs one strategy for ~150 simulated seconds of
// periodic bursts.
func runElasticityTrial(name string, keepWarm bool, keepAliveSec float64, prefetch bool,
	scale float64, seed int64) (ElasticityRow, error) {
	cfg := config.Default()
	cfg.Global.ResponseTimeoutSec = 0
	cfg.Global.KeepAliveSec = keepAliveSec
	cfg.Global.Prefetch = prefetch
	for _, m := range elasticityModels {
		cfg.Models = append(cfg.Models, config.Model{Name: m, Engine: "ollama", KeepWarm: keepWarm})
	}
	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	s, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		return ElasticityRow{}, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return ElasticityRow{}, err
	}
	dev, _ := s.Topology().Device(0)

	// Fixed integration horizon so every strategy is charged over the
	// same simulated window regardless of how long its stragglers run.
	const runFor = 150 * time.Second
	horizon := clock.Now().Add(runFor)

	// Exact memory-cost accounting: the device accumulates used·dt on
	// every allocation change — no polling goroutine.
	dev.EnableUsageTracking(clock.Now)

	// Periodic bursts: model i sends a burst of two requests every
	// period_i, until the horizon.
	periods := []time.Duration{10 * time.Second, 25 * time.Second, 50 * time.Second}
	cli := openai.NewClient(s.URL())
	cli.Clock = clock
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	var wg sync.WaitGroup
	var firstErr error
	for i, model := range elasticityModels {
		wg.Add(1)
		model, period := model, periods[i]
		gate.Go(func() {
			defer wg.Done()
			for clock.Now().Before(horizon) {
				for r := 0; r < 2; r++ {
					seedv := seed
					t0 := clock.Now()
					_, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
						Model:     model,
						Messages:  []openai.Message{{Role: "user", Content: "burst"}},
						Seed:      &seedv,
						MaxTokens: 8,
					})
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					if err == nil {
						latencies = append(latencies, clock.Since(t0))
					}
					mu.Unlock()
				}
				if !clock.Now().Add(period).Before(horizon) {
					break
				}
				clock.Sleep(period)
			}
		})
	}
	gate.Block(wg.Wait)
	memIntegral := dev.UsageIntegral() / float64(1<<30) // GiB * simulated seconds
	if firstErr != nil {
		return ElasticityRow{}, firstErr
	}

	var swapIns int64
	for _, b := range s.Backends() {
		in, _ := b.SwapCounts()
		swapIns += in
	}
	return ElasticityRow{
		Strategy:   name,
		MeanSec:    mean(latencies),
		P99Sec:     quantile(latencies, 0.99),
		MemGiBSec:  memIntegral,
		SwapIns:    swapIns,
		IdleReaps:  s.Registry().Counter("idle_reaps").Value(),
		Prefetches: s.Registry().Counter("prefetch_swap_ins").Value(),
	}, nil
}

// PrintElasticity renders the strategy comparison.
func PrintElasticity(w io.Writer, rows []ElasticityRow) {
	fprintf(w, "Ablation: elasticity strategies, identical bursty traffic (~150s simulated)\n")
	fprintf(w, "%-26s %9s %8s %13s %9s %6s %10s\n",
		"Strategy", "mean(s)", "p99(s)", "mem(GiB*s)", "swap-ins", "reaps", "prefetches")
	for _, r := range rows {
		fprintf(w, "%-26s %9.2f %8.2f %13.0f %9d %6.0f %10.0f\n",
			r.Strategy, r.MeanSec, r.P99Sec, r.MemGiBSec, r.SwapIns, r.IdleReaps, r.Prefetches)
	}
}

// TieringRow compares restoring checkpoint images from host RAM against
// images spilled to disk under host-memory pressure.
type TieringRow struct {
	Scenario    string
	SwapInSec   float64
	Location    string
	SnapshotGiB float64
}

// AblationSnapshotTiering demonstrates the snapshot-tier extension: three
// 14B Ollama backends are snapshotted under a host cap that only holds
// two images, forcing one to disk; swap-in latency is then measured per
// tier.
func AblationSnapshotTiering(scale float64) ([]TieringRow, error) {
	cfg := config.Default()
	cfg.Global.SnapshotHostCapGiB = 40
	cfg.Global.SnapshotSpill = true
	modelsUsed := []string{"deepseek-r1:14b-fp16", "deepseek-r1:14b-q8", "deepseek-r1:14b-q4"}
	for _, m := range modelsUsed {
		cfg.Models = append(cfg.Models, config.Model{Name: m, Engine: "ollama"})
	}
	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	s, err := core.New(cfg, core.Options{Clock: clock})
	if err != nil {
		return nil, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return nil, err
	}

	// Measure each backend's swap-in from wherever its image landed after
	// the init sequence, leaving it resident so the tiers are not
	// reshuffled by further checkpoints (all three fit on the GPU
	// simultaneously).
	var rows []TieringRow
	for _, name := range modelsUsed {
		b, _ := s.Backend(name)
		loc, err := s.Driver().ImageLocation(b.Container().ID())
		if err != nil {
			return nil, err
		}
		img, _ := s.Driver().ImageBytes(b.Container().ID())
		t0 := clock.Now()
		if err := s.Scheduler().EnsureRunning(context.Background(), b); err != nil {
			return nil, err
		}
		rows = append(rows, TieringRow{
			Scenario:    name,
			SwapInSec:   clock.Since(t0).Seconds(),
			Location:    loc.String(),
			SnapshotGiB: float64(img) / float64(1<<30),
		})
	}
	return rows, nil
}

// PrintSnapshotTiering renders the tiering comparison.
func PrintSnapshotTiering(w io.Writer, rows []TieringRow) {
	fprintf(w, "Ablation: snapshot tiering under a 40 GiB host-memory cap\n")
	fprintf(w, "%-24s %10s %14s %12s\n", "Model", "Tier", "Snapshot(GiB)", "Swap-in(s)")
	for _, r := range rows {
		fprintf(w, "%-24s %10s %14.1f %12.2f\n", r.Scenario, r.Location, r.SnapshotGiB, r.SwapInSec)
	}
}
