package experiments

import (
	"math"
	"strings"
	"testing"

	"swapservellm/internal/perfmodel"
	"swapservellm/internal/workload"
)

// The experiment harness runs on a Virtual discrete-event clock: every
// trial is pure deadline arithmetic, so the calibration anchors below
// are asserted unconditionally — under -race, under -count=N, under any
// machine load. A drifting value is a real regression, never noise.

// close enough: |got-want| <= tol*want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.2f, want %.2f ±%.0f%%", name, got, want, 100*tol)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	want := map[string][4]float64{ // total, load, compile, cg
		"DS-14B":  {82.39, 5.17, 43.18, 21.00},
		"DS-8B":   {55.17, 3.05, 29.13, 17.00},
		"DS-7B":   {51.03, 2.88, 26.58, 16.33},
		"DS-1.5B": {49.81, 1.01, 26.52, 16.00},
		"G3-27B":  {160.30, 9.11, 79.67, 32.33},
		"G3-12B":  {123.71, 4.35, 63.42, 27.00},
		"G3-4B":   {89.26, 1.91, 47.50, 22.00},
		"L3.1-8B": {55.41, 3.11, 29.33, 17.00},
		"L3.2-3B": {49.41, 1.48, 26.38, 16.00},
		"L3.2-1B": {34.14, 0.85, 16.85, 14.00},
	}
	for _, r := range rows {
		w, ok := want[r.DisplayName]
		if !ok {
			t.Errorf("unexpected row %s", r.DisplayName)
			continue
		}
		within(t, r.DisplayName+" total", r.TotalSec, w[0], 0.01)
		within(t, r.DisplayName+" load", r.LoadSec, w[1], 0.02)
		within(t, r.DisplayName+" compile", r.CompileSec, w[2], 0.01)
		within(t, r.DisplayName+" cg", r.CGSec, w[3], 0.01)
		// The engine must have really slept the breakdown on the clock.
		within(t, r.DisplayName+" measured", r.MeasuredTotalSec, r.TotalSec, 0.10)
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure2Models)*len(Figure2Engines) {
		t.Fatalf("rows = %d", len(rows))
	}
	cold := make(map[string]map[perfmodel.EngineKind]float64)
	for _, r := range rows {
		if cold[r.Model] == nil {
			cold[r.Model] = make(map[perfmodel.EngineKind]float64)
		}
		cold[r.Model][r.Engine] = r.ColdStartSec
		if r.ColdStartSec <= 0 {
			t.Errorf("%s/%s non-positive cold start", r.Engine, r.Model)
		}
	}
	// Per-model engine ordering: Ollama < SGLang < vLLM < TRT-LLM.
	for model, byEngine := range cold {
		o, s, v, tr := byEngine[perfmodel.EngineOllama], byEngine[perfmodel.EngineSGLang],
			byEngine[perfmodel.EngineVLLM], byEngine[perfmodel.EngineTRTLLM]
		if !(o < s && s < v && v < tr) {
			t.Errorf("%s: ordering violated: ollama=%.1f sglang=%.1f vllm=%.1f trt=%.1f", model, o, s, v, tr)
		}
	}
	// §5.2 anchors for LLaMA 3.1-8B (generous bands; measurement noise).
	anchors := cold["llama3.1:8b-fp16"]
	within(t, "ollama 8B cold", anchors[perfmodel.EngineOllama], 4.38, 0.6)
	within(t, "sglang 8B cold", anchors[perfmodel.EngineSGLang], 21.68, 0.35)
	within(t, "vllm 8B cold", anchors[perfmodel.EngineVLLM], 87.28, 0.15)
	within(t, "trt 8B cold", anchors[perfmodel.EngineTRTLLM], 124.48, 0.15)
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure5Models) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]Fig5Row)
	for _, r := range rows {
		byName[r.Model] = r
		// The headline ordering of the figure: snapshot < memory < disk.
		if !(r.SnapshotSec < r.MemorySec && r.MemorySec < r.DiskSec) {
			t.Errorf("%s: ordering violated: snap=%.2f mem=%.2f disk=%.2f",
				r.Model, r.SnapshotSec, r.MemorySec, r.DiskSec)
		}
	}
	// Quantization effect: Q4 loads faster than FP16 from disk (§5.2).
	for _, base := range []string{"deepseek-r1:1.5b", "deepseek-r1:14b"} {
		if byName[base+"-q4"].DiskSec >= byName[base+"-fp16"].DiskSec {
			t.Errorf("%s: Q4 disk load not faster than FP16", base)
		}
	}
	// Anchor bands from §5.2 (A100).
	small := byName["deepseek-r1:1.5b-q4"]
	if small.DiskSec < 3.0 || small.DiskSec > 13 {
		t.Errorf("1.5B-q4 disk = %.2f, want 4.7-11.3 band", small.DiskSec)
	}
	if small.SnapshotSec < 0.5 || small.SnapshotSec > 1.7 {
		t.Errorf("1.5B-q4 snapshot = %.2f, want 0.87-1.21 band", small.SnapshotSec)
	}
	large := byName["deepseek-r1:14b-fp16"]
	if large.DiskSec < 25 || large.DiskSec > 55 {
		t.Errorf("14B-fp16 disk = %.2f, want ~41.9", large.DiskSec)
	}
	if large.SnapshotSec < 2.0 || large.SnapshotSec > 5.0 {
		t.Errorf("14B-fp16 snapshot = %.2f, want ~3.68", large.SnapshotSec)
	}
}

func TestFigure6aShape(t *testing.T) {
	rows, err := Figure6a(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure6Models) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// vLLM backends occupy ~90% of the 80 GiB device.
		within(t, r.Model+" gpu mem", r.GPUMemGiB, 72, 0.03)
		// Swap-in in the 5.5-7.5s band, far below cold start.
		if r.SwapInSec < 4.5 || r.SwapInSec > 9 {
			t.Errorf("%s swap-in = %.2f, want 5.5-7.5 band", r.Model, r.SwapInSec)
		}
		if sp := r.ColdStartSec / r.SwapInSec; sp < 5 {
			t.Errorf("%s speedup = %.1f, want >= 5", r.Model, sp)
		}
	}
	// Larger weights -> slower swap-in (first vs last).
	if rows[0].SwapInSec >= rows[len(rows)-1].SwapInSec {
		t.Errorf("swap-in not increasing with model size: %.2f vs %.2f",
			rows[0].SwapInSec, rows[len(rows)-1].SwapInSec)
	}
}

func TestFigure6bShape(t *testing.T) {
	rows, err := Figure6b(0)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Fig6bRow)
	for _, r := range rows {
		byName[r.Model] = r
		if r.SwapInSec >= r.OllamaLoadSec {
			t.Errorf("%s: swap-in %.2f not faster than Ollama load %.2f",
				r.Model, r.SwapInSec, r.OllamaLoadSec)
		}
	}
	small := byName["llama3.2:1b-fp16"]
	within(t, "1B gpu mem", small.GPUMemGiB, 3.6, 0.15)
	large := byName["deepseek-r1:14b-fp16"]
	within(t, "14B gpu mem", large.GPUMemGiB, 30.5, 0.1)
	// Relative ordering: swap-in grows with model size.
	if small.SwapInSec >= large.SwapInSec {
		t.Errorf("1B swap-in %.2f not below 14B swap-in %.2f",
			small.SwapInSec, large.SwapInSec)
	}
	// §5.3 anchors: 1B swap-in ~0.75s at ~3.6 GB; 14B ~4.6s at ~30.5 GB.
	if small.SwapInSec < 0.5 || small.SwapInSec > 1.3 {
		t.Errorf("1B swap-in = %.2f, want ~0.75", small.SwapInSec)
	}
	if large.SwapInSec < 3.5 || large.SwapInSec > 5.6 {
		t.Errorf("14B swap-in = %.2f, want ~4.6", large.SwapInSec)
	}
}

func TestHeadlineClaims(t *testing.T) {
	a, err := Figure6a(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure6b(0)
	if err != nil {
		t.Fatal(err)
	}
	h := Headline(a, b)
	// Speedups over vLLM cold starts: the paper reports 18-31x against
	// its (longer) measured cold starts; our Figure 2-style cold starts
	// give a lower but still dramatic band.
	if h.VLLMSpeedupMin < 5 || h.VLLMSpeedupMax < h.VLLMSpeedupMin {
		t.Errorf("vLLM speedups = %.1f-%.1f", h.VLLMSpeedupMin, h.VLLMSpeedupMax)
	}
	// ~2.6x for the 1B model over Ollama.
	if h.OllamaSmallSpeedup < 1.7 || h.OllamaSmallSpeedup > 3.8 {
		t.Errorf("Ollama small speedup = %.2f, want ~2.6", h.OllamaSmallSpeedup)
	}
	// ~29% for the 14B model.
	if h.OllamaLargeImprovement < 0.10 || h.OllamaLargeImprovement > 0.45 {
		t.Errorf("Ollama large improvement = %.0f%%, want ~29%%", 100*h.OllamaLargeImprovement)
	}
}

// TestHeadlineDeterministic: the headline claims derive from Virtual-
// clock trials, so two full runs must agree to the byte — not merely
// within a band.
func TestHeadlineDeterministic(t *testing.T) {
	render := func() string {
		a, err := Figure6a(0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure6b(0)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		PrintFigure6a(&sb, a)
		PrintFigure6b(&sb, b)
		PrintHeadline(&sb, Headline(a, b))
		return sb.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("headline output diverged across identical runs:\n%s\n--- vs ---\n%s", first, second)
	}
}

func TestFigure1Shape(t *testing.T) {
	series := Figure1(42)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	var coding, conv Fig1Summary
	for _, s := range series {
		if len(s.Buckets) != 7*24 {
			t.Fatalf("%s buckets = %d", s.Class, len(s.Buckets))
		}
		sum := Summarize(s)
		if s.Class == workload.ClassCoding {
			coding = sum
		} else {
			conv = sum
		}
	}
	// Coding is input-dominated; conversational output-heavy relative to it.
	codingRatio := float64(coding.TotalInput) / float64(coding.TotalOutput)
	convRatio := float64(conv.TotalInput) / float64(conv.TotalOutput)
	if codingRatio <= convRatio {
		t.Errorf("token ratios: coding %.1f vs conversational %.1f", codingRatio, convRatio)
	}
	// Strong diurnal pattern and weekend drop for coding.
	if coding.PeakTroughRatio < 3 {
		t.Errorf("coding peak:trough = %.1f, want >= 3", coding.PeakTroughRatio)
	}
	if coding.WeekendReduction < 0.4 {
		t.Errorf("coding weekend drop = %.0f%%, want >= 40%%", 100*coding.WeekendReduction)
	}
	if conv.WeekendReduction >= coding.WeekendReduction {
		t.Error("conversational weekend drop should be milder than coding")
	}
	if coding.BusinessShare < 0.5 {
		t.Errorf("coding business-hours share = %.0f%%, want >= 50%%", 100*coding.BusinessShare)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(7)
	if len(r.Samples) != 30*24*4 {
		t.Fatalf("samples = %d", len(r.Samples))
	}
	// Figure 3's point: memory pinned high, utilization low.
	if r.MemFrac < 0.7 || r.MemFrac > 0.95 {
		t.Errorf("memory fraction = %.2f, want ~0.85", r.MemFrac)
	}
	if r.MeanUtil > 0.30 {
		t.Errorf("mean utilization = %.2f, want low (<0.30)", r.MeanUtil)
	}
	if r.P95Util <= r.MeanUtil {
		t.Error("p95 utilization should exceed mean (spiky)")
	}
}

func TestAblationSleepMode(t *testing.T) {
	rows, err := AblationSleepMode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0], rows[1]
	if on.SnapshotGiB >= off.SnapshotGiB/10 {
		t.Errorf("sleep-mode snapshot %.2f GiB not ≪ %.2f GiB", on.SnapshotGiB, off.SnapshotGiB)
	}
	if on.SwapInSec >= off.SwapInSec {
		t.Errorf("sleep-mode swap-in %.2f not faster than %.2f", on.SwapInSec, off.SwapInSec)
	}
}

func TestAblationConsolidation(t *testing.T) {
	rows := AblationConsolidation()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	dedicated, cold, swap := rows[0], rows[1], rows[2]
	if dedicated.GPUs != 6 {
		t.Errorf("dedicated fleet needs %d GPUs, want 6", dedicated.GPUs)
	}
	if swap.GPUs != 1 || cold.GPUs != 1 {
		t.Error("on-demand strategies should use one GPU")
	}
	if swap.WorstLatency >= cold.WorstLatency {
		t.Errorf("hot-swap worst wait %.2f not below cold start %.2f",
			swap.WorstLatency, cold.WorstLatency)
	}
	if swap.WorstLatency <= 0 {
		t.Error("hot-swap worst wait must be positive")
	}
}

func TestAblationPreemptionPolicy(t *testing.T) {
	rows, err := AblationPreemptionPolicy(0, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := make(map[string]PolicyAblationRow)
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.Errors > 0 {
			t.Errorf("policy %s: %d errors", r.Policy, r.Errors)
		}
		if r.Served == 0 {
			t.Errorf("policy %s served nothing", r.Policy)
		}
	}
	// The demand-aware policy avoids evicting the hot backend (the one
	// with queued/active requests); demand-blind round-robin keeps
	// hitting it.
	da, rr := byPolicy["demand-aware"], byPolicy["round-robin"]
	if da.HotSwapOuts > rr.HotSwapOuts {
		t.Errorf("demand-aware hot evictions %d > round-robin %d", da.HotSwapOuts, rr.HotSwapOuts)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb, []Table1Row{{DisplayName: "X", TotalSec: 1}})
	PrintFigure2(&sb, []Fig2Row{{Engine: perfmodel.EngineVLLM, Model: "llama3.1:8b-fp16", DisplayName: "L", ColdStartSec: 1}})
	PrintFigure5(&sb, []Fig5Row{{DisplayName: "X"}})
	PrintFigure6a(&sb, []Fig6aRow{{DisplayName: "X", SwapInSec: 1, ColdStartSec: 2}})
	PrintFigure6b(&sb, []Fig6bRow{{DisplayName: "X", SwapInSec: 1, OllamaLoadSec: 2}})
	PrintHeadline(&sb, HeadlineResult{})
	PrintFigure1(&sb, Figure1(1))
	PrintFigure3(&sb, Fig3Result{})
	PrintPolicyAblation(&sb, []PolicyAblationRow{{Policy: "x"}})
	PrintSleepModeAblation(&sb, []SleepModeAblationRow{{}})
	PrintConsolidation(&sb, AblationConsolidation())
	if !strings.Contains(sb.String(), "Table 1") || !strings.Contains(sb.String(), "Figure 6b") {
		t.Fatal("printers produced unexpected output")
	}
}

func TestAblationElasticity(t *testing.T) {
	rows, err := AblationElasticity(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	warm, swap, pre := rows[0], rows[1], rows[2]
	// Always-warm pays the most memory; hot-swapping cuts it sharply.
	if swap.MemGiBSec >= warm.MemGiBSec*0.8 {
		t.Errorf("hot-swap memory %.0f GiB*s not well below always-warm %.0f", swap.MemGiBSec, warm.MemGiBSec)
	}
	// Always-warm has the best latency (no swap-ins at all).
	if warm.SwapIns != 0 {
		t.Errorf("always-warm performed %d swap-ins", warm.SwapIns)
	}
	// Always-warm latency must not be materially worse than hot-swap.
	if warm.MeanSec > swap.MeanSec*1.5 {
		t.Errorf("always-warm mean %.2f well above hot-swap %.2f", warm.MeanSec, swap.MeanSec)
	}
	// The prefetcher must fire and must not cost more memory than
	// always-warm.
	if pre.Prefetches == 0 {
		t.Error("prefetcher never fired")
	}
	if pre.MemGiBSec >= warm.MemGiBSec {
		t.Errorf("prefetch memory %.0f not below always-warm %.0f", pre.MemGiBSec, warm.MemGiBSec)
	}
}

func TestAblationSnapshotTiering(t *testing.T) {
	rows, err := AblationSnapshotTiering(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var ram, disk []TieringRow
	for _, r := range rows {
		if r.Location == "disk" {
			disk = append(disk, r)
		} else {
			ram = append(ram, r)
		}
	}
	if len(disk) == 0 {
		t.Fatal("no image was spilled under the 40 GiB cap")
	}
	if len(ram) == 0 {
		t.Fatal("every image spilled (cap accounting broken)")
	}
	// A disk-tier restore must pay the disk read on top of what a
	// RAM-resident restore of the same image would cost (analytic
	// same-size comparison; per-GiB ratios are unfair across sizes
	// because of fixed overheads).
	tb := perfmodel.H100()
	for _, r := range disk {
		imgBytes := int64(r.SnapshotGiB * float64(1<<30))
		ramEquiv := tb.CheckpointRestore(imgBytes, imgBytes, perfmodel.EngineOllama).Seconds()
		if r.SwapInSec <= ramEquiv+1 {
			t.Errorf("%s: disk swap-in %.2f s not above same-size RAM estimate %.2f s",
				r.Scenario, r.SwapInSec, ramEquiv)
		}
	}
}

func TestAblationCompileCache(t *testing.T) {
	rows, err := AblationCompileCache(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	coldCold, coldWarm, swap := rows[0], rows[1], rows[2]
	// The warm compile cache saves roughly Table 1's compile column
	// (29.3s for L3.1-8B).
	saved := coldCold.LatencySec - coldWarm.LatencySec
	if saved < 25 || saved > 34 {
		t.Errorf("warm cache saved %.1fs, want ~29", saved)
	}
	// But hot-swapping still beats the warm-cache cold start by a wide
	// margin: graph capture, runtime setup, and the Python boot remain.
	if swap.LatencySec*3 > coldWarm.LatencySec {
		t.Errorf("swap-in %.1fs not well below warm-cache cold start %.1fs",
			swap.LatencySec, coldWarm.LatencySec)
	}
}
