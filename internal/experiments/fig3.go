package experiments

import (
	"io"
	"time"

	"swapservellm/internal/workload"
)

// Fig3Result is the Figure 3 reproduction: a month of GPU utilization
// and memory samples for six models on one H100 under dedicated
// provisioning, plus summary statistics.
type Fig3Result struct {
	Samples  []workload.ClusterSample
	MeanUtil float64
	P95Util  float64
	MemFrac  float64
}

// figure3Fleet is the six-model academic deployment of the e-INFRA CZ
// study: a mix of mid-size models summing to ~61 GiB of resident memory.
func figure3Fleet() []workload.ClusterModel {
	const gib = int64(1) << 30
	return []workload.ClusterModel{
		{Name: "gemma:7b", MemBytes: 16 * gib, PeakPerHour: 14, Burstiness: 3, Class: workload.ClassConversational},
		{Name: "deepseek-coder:6.7b", MemBytes: 14 * gib, PeakPerHour: 10, Burstiness: 3, Class: workload.ClassCoding},
		{Name: "llama3.1:8b", MemBytes: 17 * gib, PeakPerHour: 6, Burstiness: 2.5, Class: workload.ClassConversational},
		{Name: "deepseek-r1:7b-q8", MemBytes: 9 * gib, PeakPerHour: 4, Burstiness: 2, Class: workload.ClassCoding},
		{Name: "llama3.2:3b", MemBytes: 8 * gib, PeakPerHour: 3, Burstiness: 2, Class: workload.ClassConversational},
		{Name: "llama3.2:1b", MemBytes: 4 * gib, PeakPerHour: 2, Burstiness: 2, Class: workload.ClassCoding},
	}
}

// Figure3 reproduces Figure 3: a month-long sporadic academic workload
// replayed against dedicated provisioning — memory pinned near the
// resident sum while compute utilization stays low and spiky.
func Figure3(seed int64) Fig3Result {
	g := workload.NewGenerator(seed)
	start := time.Date(2025, 11, 3, 0, 0, 0, 0, time.UTC) // a Monday
	samples := workload.ClusterTrace(g, figure3Fleet(), start, 30, 3*time.Second, 15*time.Minute)
	const capacity = int64(80) << 30
	mean, p95, memFrac := workload.UtilizationStats(samples, capacity)
	return Fig3Result{Samples: samples, MeanUtil: mean, P95Util: p95, MemFrac: memFrac}
}

// PrintFigure3 renders the summary and a weekly utilization silhouette.
func PrintFigure3(w io.Writer, r Fig3Result) {
	fprintf(w, "Figure 3: month of GPU utilization/memory, 6 models on 1xH100, dedicated provisioning\n")
	fprintf(w, "mean_util=%.1f%% p95_util=%.1f%% resident_memory=%.0f%% of 80GiB\n",
		100*r.MeanUtil, 100*r.P95Util, 100*r.MemFrac)
	// Daily mean utilization silhouette (30 values).
	perDay := make(map[int][]float64)
	for i, s := range r.Samples {
		day := i / (24 * 4)
		perDay[day] = append(perDay[day], s.Utilization)
		_ = s
	}
	fprintf(w, "daily mean utilization:")
	for day := 0; day < 30; day++ {
		var sum float64
		for _, u := range perDay[day] {
			sum += u
		}
		n := len(perDay[day])
		if n == 0 {
			continue
		}
		fprintf(w, " %.0f%%", 100*sum/float64(n))
	}
	fprintf(w, "\n")
}
