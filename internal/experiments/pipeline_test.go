package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestAblationPipelinedSwap asserts the headline property of the
// full-duplex exchange: for every 80 GiB-class vLLM pair in the sweep,
// the pipelined model switch (victim swap-out start to target serving)
// is at least 25% faster than the sequential baseline, because the D2H
// checkpoint and H2D restore overlap on the full-duplex PCIe link.
func TestAblationPipelinedSwap(t *testing.T) {
	if testing.Short() {
		t.Skip("ten-server A/B sweep is slow")
	}
	heavyMu.Lock()
	defer heavyMu.Unlock()
	// No skip-under-race gate: serialized against the other heavy sweeps
	// and retried once to absorb a transient load hiccup; under race only
	// the relative A/B property is asserted.
	retryMeasured(t, func() []string {
		rows, err := AblationPipelinedSwap(3000)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(Figure6Models) {
			t.Fatalf("rows = %d, want %d", len(rows), len(Figure6Models))
		}
		var errs []string
		for _, r := range rows {
			// vLLM pools ~90% of the 80 GiB device regardless of weights —
			// a byte count, immune to timing overhead.
			if math.Abs(r.GPUMemGiB-72) > 0.03*72 {
				errs = append(errs, fmt.Sprintf("%s gpu mem = %.2f, want ~72", r.Model, r.GPUMemGiB))
			}
			// The headline property is relative (both arms run on the same
			// clock), so it holds under race instrumentation too.
			if r.PipelinedSec >= r.SequentialSec {
				errs = append(errs, fmt.Sprintf("%s: pipelined %.2fs not faster than sequential %.2fs",
					r.Model, r.PipelinedSec, r.SequentialSec))
			}
			if raceEnabled {
				continue
			}
			// The ≥25% margin depends on absolute transfer timing and only
			// holds without instrumentation overhead.
			if r.ImprovementPct < 25 {
				errs = append(errs, fmt.Sprintf("%s: improvement %.1f%%, want >= 25%%", r.Model, r.ImprovementPct))
			}
		}
		return errs
	})
}

func TestPipelinePrinterAndCSV(t *testing.T) {
	rows := []PipelineRow{{
		Model: "llama3.1:8b-fp16", DisplayName: "L3.1-8B",
		GPUMemGiB: 72, SequentialSec: 10.2, PipelinedSec: 6.5, ImprovementPct: 36.3,
	}}
	var sb strings.Builder
	PrintPipeline(&sb, rows)
	if !strings.Contains(sb.String(), "pipelined") || !strings.Contains(sb.String(), "L3.1-8B") {
		t.Fatalf("printer output unexpected:\n%s", sb.String())
	}
	h, csv := PipelineCSV(rows)
	if !strings.HasPrefix(h, "model,") || len(csv) != 1 {
		t.Fatalf("csv unexpected: %q %v", h, csv)
	}
	if !strings.Contains(csv[0], "llama3.1:8b-fp16") {
		t.Fatalf("csv row unexpected: %q", csv[0])
	}
}
