package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAblationPipelinedSwap asserts the headline property of the
// full-duplex exchange: for every 80 GiB-class vLLM pair in the sweep,
// the pipelined model switch (victim swap-out start to target serving)
// is at least 25% faster than the sequential baseline, because the D2H
// checkpoint and H2D restore overlap on the full-duplex PCIe link. The
// sweep runs on a Virtual clock, so the margin holds unconditionally —
// including under -race.
func TestAblationPipelinedSwap(t *testing.T) {
	rows, err := AblationPipelinedSwap(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure6Models) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Figure6Models))
	}
	for _, r := range rows {
		// vLLM pools ~90% of the 80 GiB device regardless of weights.
		within(t, r.Model+" gpu mem", r.GPUMemGiB, 72, 0.03)
		if r.PipelinedSec >= r.SequentialSec {
			t.Errorf("%s: pipelined %.2fs not faster than sequential %.2fs",
				r.Model, r.PipelinedSec, r.SequentialSec)
		}
		if r.ImprovementPct < 25 {
			t.Errorf("%s: improvement %.1f%%, want >= 25%%", r.Model, r.ImprovementPct)
		}
	}
}

// TestPipelineGoldenDeterminism runs the traced pipelined-swap sweep
// twice and demands byte-identical artifacts: the CSV rows and the
// Chrome trace_event JSON. On the Virtual clock both are functions of
// the perfmodel alone; a single differing byte means nondeterminism
// leaked back into the harness (an unregistered goroutine, a map-order
// dependence, a wall-clock read).
func TestPipelineGoldenDeterminism(t *testing.T) {
	run := func() (string, string) {
		var trace bytes.Buffer
		rows, err := AblationPipelinedSwapTraced(0, &trace)
		if err != nil {
			t.Fatal(err)
		}
		h, lines := PipelineCSV(rows)
		return h + "\n" + strings.Join(lines, "\n"), trace.String()
	}
	csv1, trace1 := run()
	csv2, trace2 := run()
	if csv1 != csv2 {
		t.Errorf("pipeline CSV diverged across identical runs:\n%s\n--- vs ---\n%s", csv1, csv2)
	}
	if trace1 != trace2 {
		i := 0
		for i < len(trace1) && i < len(trace2) && trace1[i] == trace2[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		end := func(s string) string {
			hi := i + 120
			if hi > len(s) {
				hi = len(s)
			}
			return s[lo:hi]
		}
		t.Errorf("pipeline trace diverged at byte %d of %d/%d:\n%q\n--- vs ---\n%q",
			i, len(trace1), len(trace2), end(trace1), end(trace2))
	}
	if len(trace1) == 0 {
		t.Error("trace output is empty")
	}
}

func TestPipelinePrinterAndCSV(t *testing.T) {
	rows := []PipelineRow{{
		Model: "llama3.1:8b-fp16", DisplayName: "L3.1-8B",
		GPUMemGiB: 72, SequentialSec: 10.2, PipelinedSec: 6.5, ImprovementPct: 36.3,
	}}
	var sb strings.Builder
	PrintPipeline(&sb, rows)
	if !strings.Contains(sb.String(), "pipelined") || !strings.Contains(sb.String(), "L3.1-8B") {
		t.Fatalf("printer output unexpected:\n%s", sb.String())
	}
	h, csv := PipelineCSV(rows)
	if !strings.HasPrefix(h, "model,") || len(csv) != 1 {
		t.Fatalf("csv unexpected: %q %v", h, csv)
	}
	if !strings.Contains(csv[0], "llama3.1:8b-fp16") {
		t.Fatalf("csv row unexpected: %q", csv[0])
	}
}
