package experiments

import (
	"strings"
	"testing"
)

// TestAblationPipelinedSwap asserts the headline property of the
// full-duplex exchange: for every 80 GiB-class vLLM pair in the sweep,
// the pipelined model switch (victim swap-out start to target serving)
// is at least 25% faster than the sequential baseline, because the D2H
// checkpoint and H2D restore overlap on the full-duplex PCIe link.
func TestAblationPipelinedSwap(t *testing.T) {
	skipAnchorsUnderRace(t)
	if testing.Short() {
		t.Skip("ten-server A/B sweep is slow")
	}
	rows, err := AblationPipelinedSwap(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure6Models) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Figure6Models))
	}
	for _, r := range rows {
		// vLLM pools ~90% of the 80 GiB device regardless of weights.
		within(t, r.Model+" gpu mem", r.GPUMemGiB, 72, 0.03)
		if r.PipelinedSec >= r.SequentialSec {
			t.Errorf("%s: pipelined %.2fs not faster than sequential %.2fs",
				r.Model, r.PipelinedSec, r.SequentialSec)
		}
		if r.ImprovementPct < 25 {
			t.Errorf("%s: improvement %.1f%%, want >= 25%%", r.Model, r.ImprovementPct)
		}
	}
}

func TestPipelinePrinterAndCSV(t *testing.T) {
	rows := []PipelineRow{{
		Model: "llama3.1:8b-fp16", DisplayName: "L3.1-8B",
		GPUMemGiB: 72, SequentialSec: 10.2, PipelinedSec: 6.5, ImprovementPct: 36.3,
	}}
	var sb strings.Builder
	PrintPipeline(&sb, rows)
	if !strings.Contains(sb.String(), "pipelined") || !strings.Contains(sb.String(), "L3.1-8B") {
		t.Fatalf("printer output unexpected:\n%s", sb.String())
	}
	h, csv := PipelineCSV(rows)
	if !strings.HasPrefix(h, "model,") || len(csv) != 1 {
		t.Fatalf("csv unexpected: %q %v", h, csv)
	}
	if !strings.Contains(csv[0], "llama3.1:8b-fp16") {
		t.Fatalf("csv row unexpected: %q", csv[0])
	}
}
