package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"swapservellm/internal/cluster"
	"swapservellm/internal/config"
	"swapservellm/internal/openai"
	"swapservellm/internal/workload"
)

// ClusterPlacementRow reports one placement policy's behaviour on the
// three-node diurnal workload: time-to-first-token statistics, how
// often requests landed on an already-warm backend, and the swap and
// failover churn behind them.
type ClusterPlacementRow struct {
	Policy           string
	MeanTTFTSec      float64
	P50TTFTSec       float64
	P99TTFTSec       float64
	PlacementHitRate float64
	CrossNodeRetries int64
	SwapIns          int64
	Served           int
	Errors           int
	ElapsedS         float64
}

// clusterFleet is the twelve-model fleet spread over three nodes: model
// i is replicated on nodes i%3 and (i+1)%3, so every node hosts eight
// models — far more than one 80 GiB GPU can hold resident, forcing the
// hot-swap machinery to do the serving.
var clusterFleet = []string{
	"llama3.2:1b-fp16",
	"llama3.2:3b-fp16",
	"llama3.1:8b-fp16",
	"deepseek-r1:1.5b-fp16",
	"deepseek-r1:7b-fp16",
	"deepseek-r1:8b-fp16",
	"deepseek-r1:14b-fp16",
	"deepseek-coder:6.7b-fp16",
	"gemma:7b-fp16",
	"gemma3:4b-fp16",
	"gemma3:12b-fp16",
	"gemma3:27b-fp16",
}

// clusterDayCompression squeezes the simulated diurnal day into this
// many simulated seconds, keeping the day's shape (quiet nights, busy
// afternoons) while the trial stays tractable.
const clusterDaySec = 1200.0

// clusterTrialsPerPolicy pools this many independent diurnal days (seed,
// seed+1, ...) per policy so a single lucky trace cannot flip the
// comparison.
const clusterTrialsPerPolicy = 3

// AblationClusterPlacement compares the gateway's placement policies —
// locality-first against least-loaded and random baselines — on a
// three-node cluster serving a compressed diurnal day. Locality routing
// concentrates each model's traffic on the node whose backend is
// already warm, converting swap-ins into hot hits; the baselines
// scatter requests and pay the restore cost far more often. Each policy
// is measured over clusterTrialsPerPolicy independent days and the
// per-request TTFTs pooled.
func AblationClusterPlacement(scale float64, seed int64) ([]ClusterPlacementRow, error) {
	var rows []ClusterPlacementRow
	for _, policy := range []string{"locality", "least-loaded", "random"} {
		row := ClusterPlacementRow{Policy: policy}
		var ttfts []time.Duration
		var hits, total float64
		for trial := int64(0); trial < clusterTrialsPerPolicy; trial++ {
			res, err := runClusterTrial(policy, scale, seed+trial)
			if err != nil {
				return nil, fmt.Errorf("placement %s seed %d: %w", policy, seed+trial, err)
			}
			ttfts = append(ttfts, res.ttfts...)
			hits += res.hits
			total += res.total
			row.CrossNodeRetries += res.retries
			row.SwapIns += res.swapIns
			row.Served += len(res.ttfts)
			row.Errors += res.errs
			row.ElapsedS += res.elapsed.Seconds()
		}
		row.MeanTTFTSec = mean(ttfts)
		row.P50TTFTSec = quantile(ttfts, 0.5)
		row.P99TTFTSec = quantile(ttfts, 0.99)
		if total > 0 {
			row.PlacementHitRate = hits / total
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// clusterTrialConfig builds the three-node deployment for one trial.
func clusterTrialConfig(policy string) config.Cluster {
	cfg := config.DefaultCluster()
	cfg.Cluster.Placement = policy
	cfg.Cluster.HeartbeatSec = 20
	// No response timeout: the trial needs every request's TTFT, however
	// long placement misses delay it.
	cfg.Global.ResponseTimeoutSec = 0
	cfg.Nodes = []config.Node{{Name: "node-0"}, {Name: "node-1"}, {Name: "node-2"}}
	for i, name := range clusterFleet {
		m := config.Model{Name: name, Engine: "ollama"}
		cfg.Nodes[i%3].Models = append(cfg.Nodes[i%3].Models, m)
		cfg.Nodes[(i+1)%3].Models = append(cfg.Nodes[(i+1)%3].Models, m)
	}
	return cfg
}

// clusterArrivals generates the compressed diurnal trace: one day of
// per-model non-homogeneous Poisson arrivals squeezed into
// clusterDaySec simulated seconds. Returns per-request (offset, model,
// maxTokens), sorted by offset.
type clusterArrival struct {
	offset    time.Duration
	model     string
	maxTokens int
}

func clusterArrivals(seed int64) []clusterArrival {
	gen := workload.NewGenerator(seed)
	dayStart := epoch
	dayEnd := epoch.Add(24 * time.Hour)
	compress := clusterDaySec / (24 * time.Hour).Seconds()
	var out []clusterArrival
	for i, model := range clusterFleet {
		class := workload.ClassConversational
		if i%2 == 0 {
			class = workload.ClassCoding
		}
		for _, r := range gen.Arrivals(class, model, dayStart, dayEnd, 1.4, 2.0) {
			maxTok := r.OutputTokens
			if maxTok > 32 {
				maxTok = 32
			}
			if maxTok < 4 {
				maxTok = 4
			}
			out = append(out, clusterArrival{
				offset:    time.Duration(float64(r.At.Sub(dayStart)) * compress),
				model:     model,
				maxTokens: maxTok,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].offset < out[j].offset })
	return out
}

// clusterTrialResult carries one day's raw samples back to the pooling
// layer in AblationClusterPlacement.
type clusterTrialResult struct {
	ttfts       []time.Duration
	errs        int
	retries     int64
	swapIns     int64
	hits, total float64
	elapsed     time.Duration
}

// runClusterTrial serves the compressed diurnal day through one
// placement policy and measures streaming TTFT at the first chunk.
func runClusterTrial(policy string, scale float64, seed int64) (clusterTrialResult, error) {
	cfg := clusterTrialConfig(policy)
	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	c, err := cluster.New(cfg, cluster.WithClock(clock), cluster.WithSeed(seed))
	if err != nil {
		return clusterTrialResult{}, err
	}
	if err := c.Start(context.Background()); err != nil {
		return clusterTrialResult{}, err
	}
	defer c.Shutdown()

	arrivals := clusterArrivals(seed)
	cli := openai.NewClient(c.URL())
	cli.Clock = clock
	var (
		mu    sync.Mutex
		ttfts []time.Duration
		errs  int
	)

	t0 := clock.Now()
	var wg sync.WaitGroup
	for _, a := range arrivals {
		wg.Add(1)
		a := a
		gate.Go(func() {
			defer wg.Done()
			// Open-loop arrivals: wait for this request's slot in the
			// compressed day, then fire regardless of earlier completions.
			clock.Sleep(a.offset - clock.Since(t0))
			seedv := seed
			start := clock.Now()
			first := true
			err := cli.ChatCompletionStream(context.Background(), &openai.ChatCompletionRequest{
				Model:     a.model,
				Messages:  []openai.Message{{Role: "user", Content: "diurnal trace request"}},
				Seed:      &seedv,
				MaxTokens: a.maxTokens,
			}, func(ch *openai.ChatCompletionChunk) error {
				if first {
					first = false
					ttft := clock.Since(start)
					mu.Lock()
					ttfts = append(ttfts, ttft)
					mu.Unlock()
				}
				return nil
			})
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
			}
		})
	}
	gate.Block(wg.Wait)

	reg := c.Registry()
	res := clusterTrialResult{
		ttfts:   ttfts,
		errs:    errs,
		retries: int64(reg.Counter("cross_node_retries").Value()),
		hits:    reg.Counter("placement_hits").Value(),
		total:   reg.Counter("placement_total").Value(),
		elapsed: clock.Since(t0),
	}
	for _, n := range c.Nodes() {
		res.swapIns += n.Report().SwapIns
	}
	return res, nil
}

// PrintClusterPlacement renders the placement-policy comparison.
func PrintClusterPlacement(w io.Writer, rows []ClusterPlacementRow) {
	fprintf(w, "Ablation: cluster placement policy (3 nodes x 80 GiB, 12 models, compressed diurnal day)\n")
	fprintf(w, "%-14s %9s %9s %9s %9s %8s %9s %7s %7s\n",
		"Policy", "mean(s)", "p50(s)", "p99(s)", "hit-rate", "retries", "swap-ins", "served", "errors")
	for _, r := range rows {
		fprintf(w, "%-14s %9.2f %9.2f %9.2f %9.2f %8d %9d %7d %7d\n",
			r.Policy, r.MeanTTFTSec, r.P50TTFTSec, r.P99TTFTSec,
			r.PlacementHitRate, r.CrossNodeRetries, r.SwapIns, r.Served, r.Errors)
	}
}

// ClusterPlacementCSV renders cluster placement rows as CSV lines.
func ClusterPlacementCSV(rows []ClusterPlacementRow) (header string, out []string) {
	header = "policy,mean_ttft_s,p50_ttft_s,p99_ttft_s,placement_hit_rate,cross_node_retries,swap_ins,served,errors,elapsed_s"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%.4f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%.1f",
			r.Policy, r.MeanTTFTSec, r.P50TTFTSec, r.P99TTFTSec, r.PlacementHitRate,
			r.CrossNodeRetries, r.SwapIns, r.Served, r.Errors, r.ElapsedS))
	}
	return header, out
}
