package experiments

import "io"

// HeadlineResult summarizes the paper's headline claims from the
// Figure 6 measurements: 18–31× faster than vLLM cold starts, up to 29%
// faster than Ollama for large models, and ~2.6× for small ones.
type HeadlineResult struct {
	VLLMSpeedupMin float64
	VLLMSpeedupMax float64
	// OllamaSmallSpeedup is the speedup over Ollama loading for the
	// smallest model (paper: ~2.6×, LLaMA 3.2 1B FP16).
	OllamaSmallSpeedup float64
	// OllamaLargeImprovement is the relative improvement for the largest
	// model (paper: ~29%, DeepSeek-R1 14B FP16).
	OllamaLargeImprovement float64
}

// Headline derives the summary metrics from Figure 6 rows.
func Headline(a []Fig6aRow, b []Fig6bRow) HeadlineResult {
	var res HeadlineResult
	for i, r := range a {
		sp := r.ColdStartSec / r.SwapInSec
		if i == 0 || sp < res.VLLMSpeedupMin {
			res.VLLMSpeedupMin = sp
		}
		if sp > res.VLLMSpeedupMax {
			res.VLLMSpeedupMax = sp
		}
	}
	var smallest, largest *Fig6bRow
	for i := range b {
		r := &b[i]
		if smallest == nil || r.GPUMemGiB < smallest.GPUMemGiB {
			smallest = r
		}
		if largest == nil || r.GPUMemGiB > largest.GPUMemGiB {
			largest = r
		}
	}
	if smallest != nil && smallest.SwapInSec > 0 {
		res.OllamaSmallSpeedup = smallest.OllamaLoadSec / smallest.SwapInSec
	}
	if largest != nil && largest.OllamaLoadSec > 0 {
		res.OllamaLargeImprovement = 1 - largest.SwapInSec/largest.OllamaLoadSec
	}
	return res
}

// PrintHeadline renders the claim comparison.
func PrintHeadline(w io.Writer, h HeadlineResult) {
	fprintf(w, "Headline claims (paper -> measured):\n")
	fprintf(w, "  vLLM cold-start speedup: 18-31x -> %.1f-%.1fx\n", h.VLLMSpeedupMin, h.VLLMSpeedupMax)
	fprintf(w, "  Ollama small-model speedup: ~2.6x -> %.1fx\n", h.OllamaSmallSpeedup)
	fprintf(w, "  Ollama large-model improvement: ~29%% -> %.0f%%\n", 100*h.OllamaLargeImprovement)
}
