package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"swapservellm/internal/engine"
	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// Table1Row is one row of Table 1: the vLLM initialization breakdown for
// a model on the H100 testbed.
type Table1Row struct {
	Model       string
	DisplayName string
	TotalSec    float64
	LoadSec     float64
	CompileSec  float64
	CGSec       float64
	// MeasuredTotalSec is the end-to-end Init duration observed on the
	// simulation clock (validates that the engine really slept the
	// phases).
	MeasuredTotalSec float64
}

// Table1 reproduces Table 1: it cold-starts a vLLM engine for each of the
// ten models on an H100 rig and reports the phase breakdown.
func Table1(scale float64) ([]Table1Row, error) {
	r := newRig(perfmodel.H100(), scale)
	defer r.done()
	cat := models.Default()
	var rows []Table1Row
	for i, name := range perfmodel.Table1Models() {
		m := cat.MustLookup(name)
		r.stage(m, perfmodel.TierDisk)
		var bd perfmodel.InitBreakdown
		var samples []time.Duration
		for rep := 0; rep < Reps; rep++ {
			eng, err := engine.NewVLLM(r.engineConfig(fmt.Sprintf("t1-%d-%d", i, rep), m, perfmodel.TierDisk))
			if err != nil {
				return nil, err
			}
			t0 := r.clock.Now()
			bd, err = eng.Init(context.Background())
			if err != nil {
				return nil, fmt.Errorf("init %s: %w", name, err)
			}
			samples = append(samples, r.clock.Since(t0))
			eng.Shutdown()
		}
		rows = append(rows, Table1Row{
			Model:            name,
			DisplayName:      m.DisplayName,
			TotalSec:         bd.Total().Seconds(),
			LoadSec:          bd.Load.Seconds(),
			CompileSec:       bd.Compile.Seconds(),
			CGSec:            bd.CUDAGraph.Seconds(),
			MeasuredTotalSec: median(samples).Seconds(),
		})
	}
	return rows, nil
}

// PrintTable1 renders the rows in the paper's column layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1: vLLM initialization breakdown (H100, seconds)\n")
	fprintf(w, "%-10s %9s %8s %11s %7s %12s\n", "Model", "Total(s)", "Load(s)", "Compile(s)", "CG(s)", "Measured(s)")
	for _, r := range rows {
		fprintf(w, "%-10s %9.2f %8.2f %11.2f %7.2f %12.2f\n",
			r.DisplayName, r.TotalSec, r.LoadSec, r.CompileSec, r.CGSec, r.MeasuredTotalSec)
	}
}

// ensure time import stays (used in row math upstream).
var _ = time.Second
