package experiments

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"
)

// wallBudget is the wall-clock ceiling for one full pass of this
// package's tests. Every trial runs on the Virtual discrete-event
// clock, so a pass is pure bookkeeping: the dominant costs are the
// chaos seed sweeps and the settle passes around real HTTP hand-offs.
// Blowing this budget means wall waiting crept back in — a scaled
// clock smuggled into a trial, a settle regression in simclock, or an
// unregistered goroutine forcing the advancer into its slow path.
var wallBudget = flag.Duration("experiments.wallbudget", 120*time.Second,
	"wall-clock budget for one full pass of the experiments suite (0 disables)")

// TestMain asserts the suite's headline operational property alongside
// its functional ones: the whole package finishes within wallBudget of
// wall time. The check only applies to full passes — when -test.run
// filters the suite or -test.count repeats it, the elapsed time is not
// comparable to the budget, so the check is skipped.
func TestMain(m *testing.M) {
	flag.Parse()
	start := time.Now()
	code := m.Run()
	elapsed := time.Since(start)

	full := *wallBudget > 0 && !flag.Lookup("test.short").Value.(flag.Getter).Get().(bool)
	if f := flag.Lookup("test.run"); f != nil && f.Value.String() != "" {
		full = false
	}
	if f := flag.Lookup("test.count"); f != nil && f.Value.String() != "" && f.Value.String() != "1" {
		full = false
	}
	if code == 0 && full && elapsed > *wallBudget {
		fmt.Fprintf(os.Stderr,
			"FAIL: experiments suite took %v of wall time, budget %v — wall waiting crept back into the virtual-time harness\n",
			elapsed.Round(time.Millisecond), *wallBudget)
		code = 1
	}
	os.Exit(code)
}
