package experiments

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"swapservellm/internal/chaos"
	"swapservellm/internal/config"
	"swapservellm/internal/core"
	"swapservellm/internal/cudackpt"
	"swapservellm/internal/engine"
	"swapservellm/internal/invariant"
	"swapservellm/internal/openai"
	"swapservellm/internal/proxy/ir"
	"swapservellm/internal/simclock"

	"swapservellm/internal/cluster"
)

// ChaosRow summarizes one chaos soak trial: a seeded fault schedule
// replayed against a live deployment while the harness measures how the
// system absorbs each fault (recovery latency of the retry that follows
// a failed request) and then audits the system-wide invariants at
// quiescence. Violations must be zero on every seed; a non-zero count
// is a bug reproducible from the seed alone.
type ChaosRow struct {
	Scope          string // "node" (single server) or "cluster" (gateway + 2 nodes)
	Seed           int64
	Requests       int
	Failed         int // requests whose first attempt returned an error
	Recovered      int // failed requests whose bounded retry succeeded
	Unrecovered    int
	FaultsInjected int
	RecoveryP50Sec float64 // simulated seconds from first failure to recovery
	RecoveryMaxSec float64
	Violations     int
	ViolationText  string
}

// NodeChaosRules is the default single-node soak schedule: moderate
// error probabilities on every checkpoint/cgroup transition and on
// individual transfer chunks, a lossy PCIe link, and a degraded disk.
// The seed is swept per trial.
const NodeChaosRules = "cudackpt.lock: p=0.08" +
	"; cudackpt.checkpoint: p=0.1" +
	"; cudackpt.restore: p=0.12" +
	"; cudackpt.chunk: p=0.02" +
	"; cudackpt.pcie: p=0.25 delay=25ms" +
	"; cgroup.freeze: p=0.08" +
	"; cgroup.thaw: p=0.08" +
	"; storage.read: p=0.15 delay=40ms"

// ClusterChaosRules is the default cluster soak schedule: heartbeat
// loss (node crash/restart), proxy-level connection failures,
// mid-stream cuts (the cluster.sse site severs the relayed canonical
// stream whatever the client framing), front-door translation faults,
// and degraded response-cache lookups.
const ClusterChaosRules = "cluster.heartbeat: p=0.15" +
	"; cluster.proxy: p=0.1" +
	"; cluster.sse: p=0.04" +
	"; proxy.translate: p=0.05" +
	"; proxy.cache: p=0.25"

// SchedChaosRules is the predictive-scheduling soak schedule: forced
// admission mispredictions (sched.admit inverts each decision),
// suppressed pre-warms (sched.prefetch swallows the restore the
// predictor asked for), and inverted eviction verdicts (sched.evict
// flips the reaper's keep/evict call).
const SchedChaosRules = "sched.admit: p=0.25" +
	"; sched.prefetch: p=0.5" +
	"; sched.evict: p=0.3"

// chaosSoakRequests is the workload length of one trial.
const chaosSoakRequests = 16

// ChaosSoak runs one seeded single-node trial: two vLLM backends that
// cannot share the GPU (every alternation preempts, maximizing
// checkpoint/restore traffic) serve a sequential workload while the
// schedule injects faults. Failed requests are retried a bounded number
// of times; at quiescence the full invariant suite is checked.
func ChaosSoak(seed int64, scale float64) (ChaosRow, error) {
	cfg := config.Default()
	cfg.Global.ResponseTimeoutSec = 0
	cfg.Global.KeepAliveSec = 0
	cfg.Global.GPUMonitorSec = 0
	cfg.Global.Prefetch = false
	modelsUsed := []string{"llama3.2:1b-fp16", "llama3.2:3b-fp16"}
	for _, m := range modelsUsed {
		cfg.Models = append(cfg.Models, config.Model{Name: m, Engine: "vllm"})
	}

	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	tr := chaos.NewTrace()
	s, err := core.New(cfg, core.Options{Clock: clock, Trace: tr})
	if err != nil {
		return ChaosRow{}, err
	}
	defer s.Shutdown()
	if err := s.Start(context.Background()); err != nil {
		return ChaosRow{}, err
	}

	// Arm the injector only after startup so the schedule measures fault
	// tolerance of the serving path, not of initialization, and so seed
	// occurrence indices start at the same point on every run.
	inj := chaos.NewInjector(chaos.MustParsePlan(NodeChaosRules).WithSeed(seed))
	s.Driver().SetChaos(inj)
	s.Freezer().SetChaos(inj)
	s.Store().SetChaos(inj)

	// Audit the driver's accounting at every committed transfer chunk,
	// not just at quiescence: the conservation and pledge invariants
	// must hold mid-pipeline even while faults abort and roll back
	// transfers. Violations fold into the trial's report.
	var rep invariant.Report
	var repMu sync.Mutex
	s.Driver().OnChunk(func(cudackpt.ChunkEvent) {
		var chunkRep invariant.Report
		invariant.CheckDriver(&chunkRep, s.Driver(), s.Topology())
		if !chunkRep.Ok() {
			repMu.Lock()
			rep.Violations = append(rep.Violations, chunkRep.Violations...)
			repMu.Unlock()
		}
	})

	row := ChaosRow{Scope: "node", Seed: seed}
	led := invariant.NewLedger()
	cli := openai.NewClient(s.URL())
	cli.Clock = clock
	var recoveries []time.Duration
	for i := 0; i < chaosSoakRequests; i++ {
		model := modelsUsed[i%len(modelsUsed)]
		id := fmt.Sprintf("req-%d", i)
		led.Accept(id)
		row.Requests++
		if chatOnce(cli, model, seed) == nil {
			led.Finish(id)
			continue
		}
		row.Failed++
		tFail := clock.Now()
		if retryUntilOK(func() error { return chatOnce(cli, model, seed) }) {
			row.Recovered++
			recoveries = append(recoveries, clock.Since(tFail))
		} else {
			row.Unrecovered++
		}
		led.Finish(id)
	}

	invariant.CheckServer(&rep, s)
	invariant.CheckCkptTrace(&rep, tr)
	led.Check(&rep)
	fillChaosRow(&row, &rep, inj, recoveries)
	return row, nil
}

// ChaosClusterSoak runs one seeded cluster trial: a protocol-mixed
// workload through the two-node gateway — SSE and NDJSON streams
// alternating, with a periodic non-stream request exercising the
// response cache — while heartbeat, proxy, stream-cut, translation,
// and cache faults fire; every successful stream's transcript is
// compared byte-for-byte against the deterministic expectation (a
// failover that duplicates or drops an event is an invariant
// violation, not just a failure), and at quiescence the node
// transition trace and both servers are audited.
func ChaosClusterSoak(seed int64, scale float64) (ChaosRow, error) {
	const model = "llama3.2:1b-fp16"
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600 // swept manually between requests
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: []config.Model{{Name: model, Engine: "ollama"}}},
		{Name: "node-b", Models: []config.Model{{Name: model, Engine: "ollama"}}},
	}

	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	tr := chaos.NewTrace()
	inj := chaos.NewInjector(chaos.MustParsePlan(ClusterChaosRules).WithSeed(seed))
	// The plan has only cluster.* and proxy.* rules, so arming at
	// construction is safe: node startup consults none of them (the
	// front-door sites fire per request, never during startup).
	c, err := cluster.New(cfg, cluster.WithClock(clock), cluster.WithChaos(inj), cluster.WithTrace(tr))
	if err != nil {
		return ChaosRow{}, err
	}
	defer c.Shutdown()
	if err := c.Start(context.Background()); err != nil {
		return ChaosRow{}, err
	}

	row := ChaosRow{Scope: "cluster", Seed: seed}
	var rep invariant.Report
	led := invariant.NewLedger()
	var recoveries []time.Duration
	reqSeed := seed
	for i := 0; i < chaosSoakRequests; i++ {
		c.NodeRegistry().Sweep() // exercise heartbeat faults between requests
		id := fmt.Sprintf("stream-%d", i)
		led.Accept(id)
		row.Requests++
		// The workload mixes protocols: SSE, NDJSON, SSE, then one
		// non-stream request per cycle. The non-stream requests are
		// byte-identical, so after the first every repeat is a cache hit
		// unless a proxy.cache fault degrades the lookup to a bypass —
		// either way the answer must be correct, which is exactly the
		// property the cache faults probe.
		kind := i % 4
		attempt := func() error {
			if kind == 3 {
				status, _, err := chatOnceHTTP(c.URL(), model, reqSeed, clock)
				if err != nil {
					return err
				}
				if status != http.StatusOK {
					return fmt.Errorf("non-stream request: HTTP %d", status)
				}
				return nil
			}
			ndjson := kind == 1
			got, finished, err := streamOnceFramed(c.URL(), model, reqSeed, clock, ndjson)
			if err != nil {
				return err
			}
			if !finished {
				// Truncated without a finish marker: every replica was cut
				// mid-stream. The client can see this and retry, so it is a
				// failure, not a correctness violation.
				return fmt.Errorf("stream truncated after %d bytes", len(got))
			}
			// A stream that did finish must be byte-exact: a failover that
			// duplicated or dropped an event is an invariant violation.
			if want := expectedStreamFramed(reqSeed, ndjson); got != want {
				rep.Addf("stream.integrity", id,
					"failover transcript diverged: got %d bytes, want %d", len(got), len(want))
			}
			return nil
		}
		if attempt() == nil {
			led.Finish(id)
			continue
		}
		row.Failed++
		tFail := clock.Now()
		recovered := retryUntilOK(func() error {
			// A downed node needs a clean probe to rejoin before it can
			// absorb retries.
			c.NodeRegistry().Sweep()
			return attempt()
		})
		if recovered {
			row.Recovered++
			recoveries = append(recoveries, clock.Since(tFail))
		} else {
			row.Unrecovered++
		}
		led.Finish(id)
	}

	invariant.CheckNodeTrace(&rep, tr)
	for _, n := range c.Nodes() {
		invariant.CheckServer(&rep, n.Server())
	}
	led.Check(&rep)
	fillChaosRow(&row, &rep, inj, recoveries)
	return row, nil
}

// ChaosSchedSoak runs one seeded scheduling-subsystem trial: a two-node
// cluster with classes, admission, pre-warm, and a TTL policy active
// serves a sequential workload while sched.admit flips admission
// decisions, sched.prefetch suppresses pre-warms, and sched.evict
// inverts reaper verdicts. The soak asserts that mispredictions degrade
// only into well-formed sheds (every 429 carries Retry-After and is
// mirrored by a shed counter) and retriable latency — never into
// invariant violations.
func ChaosSchedSoak(seed int64, scale float64) (ChaosRow, error) {
	modelsUsed := []string{"llama3.2:1b-fp16", "llama3.2:3b-fp16"}
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Scheduling = config.SchedCfg{
		Classes: []config.SchedClass{
			{Name: "interactive", Priority: 0, SLOSec: 30, RatePerSec: 5},
			{Name: "batch", Priority: 1, SLOSec: 30, RatePerSec: 5},
		},
		Admission:          true,
		Prewarm:            true,
		PrewarmIntervalSec: 5,
		PrewarmThreshold:   0.01,
		TTLPolicy:          "fixed",
		TTLSec:             5,
	}
	nodeModels := []config.Model{
		{Name: modelsUsed[0], Engine: "ollama", Class: "interactive"},
		{Name: modelsUsed[1], Engine: "ollama", Class: "batch"},
	}
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: nodeModels},
		{Name: "node-b", Models: nodeModels},
	}

	_ = scale // virtual time; retained for interface stability
	clock, gate := virtualClock()
	defer gate.Exit()
	inj := chaos.NewInjector(chaos.MustParsePlan(SchedChaosRules).WithSeed(seed))
	// The plan has only sched.* rules: startup consults none of them
	// (the reaper and pre-warm loops begin with Start, after arming).
	c, err := cluster.New(cfg, cluster.WithClock(clock), cluster.WithChaos(inj))
	if err != nil {
		return ChaosRow{}, err
	}
	defer c.Shutdown()
	if err := c.Start(context.Background()); err != nil {
		return ChaosRow{}, err
	}

	row := ChaosRow{Scope: "sched", Seed: seed}
	var rep invariant.Report
	led := invariant.NewLedger()
	var recoveries []time.Duration
	sheds429 := 0
	attempt := func(model string) error {
		status, retryAfter, err := chatOnceHTTP(c.URL(), model, seed, clock)
		if err != nil {
			return err
		}
		switch status {
		case 200:
			return nil
		case 429:
			sheds429++
			// A shed must always be well-formed: machine-readable backoff.
			if n, convErr := strconv.Atoi(retryAfter); convErr != nil || n < 1 {
				rep.Addf("sched.shed", model, "429 with malformed Retry-After %q", retryAfter)
			}
			return fmt.Errorf("shed with Retry-After %s", retryAfter)
		default:
			return fmt.Errorf("unexpected HTTP %d", status)
		}
	}
	for i := 0; i < chaosSoakRequests; i++ {
		model := modelsUsed[i%len(modelsUsed)]
		id := fmt.Sprintf("sched-req-%d", i)
		led.Accept(id)
		row.Requests++
		if attempt(model) == nil {
			led.Finish(id)
			continue
		}
		row.Failed++
		tFail := clock.Now()
		if retryUntilOK(func() error { return attempt(model) }) {
			row.Recovered++
			recoveries = append(recoveries, clock.Since(tFail))
		} else {
			row.Unrecovered++
		}
		led.Finish(id)
	}

	// Quiesce before the audit: halt the pre-warm loop (with requests
	// stopped, nothing re-warms a model again) and let the short-TTL
	// reaper drain every backend to SwappedOut. Without this the
	// background pre-warm/evict churn keeps some backend legitimately
	// mid-swap at any instant the audit could run.
	if _, _, pw := c.Sched(); pw != nil {
		pw.Halt()
	}
	for waited := time.Duration(0); waited < 240*time.Second; waited += time.Second {
		drained := true
		for _, n := range c.Nodes() {
			for _, b := range n.Server().Backends() {
				if b.State() != core.BackendSwappedOut {
					drained = false
				}
			}
		}
		if drained {
			break
		}
		clock.Sleep(time.Second)
	}

	// Every client-visible 429 must be mirrored by exactly one shed
	// counter increment — admission accounting cannot drift.
	var counted float64
	for _, class := range []string{"interactive", "batch"} {
		counted += c.Registry().Counter("sched_shed_" + class).Value()
	}
	if int(counted) != sheds429 {
		rep.Addf("sched.accounting", "gateway",
			"shed counters %d != observed 429s %d", int(counted), sheds429)
	}

	for _, n := range c.Nodes() {
		invariant.CheckServer(&rep, n.Server())
	}
	led.Check(&rep)
	fillChaosRow(&row, &rep, inj, recoveries)
	return row, nil
}

// chatOnceHTTP issues one non-streaming request at the HTTP layer,
// returning the status code and Retry-After header so shed responses
// can be audited rather than folded into a client error. The round trip
// is declared as external I/O to the virtual clock so the server's
// handler goroutines can advance simulated time while this caller is
// parked inside net/http.
func chatOnceHTTP(url, model string, seed int64, clock simclock.Clock) (status int, retryAfter string, err error) {
	simclock.GateFor(clock).BlockIO(func() {
		body := fmt.Sprintf(`{"model":%q,"messages":[{"role":"user","content":"soak"}],"max_tokens":4,"seed":%d}`, model, seed)
		var resp *http.Response
		resp, err = http.Post(url+"/v1/chat/completions", "application/json", strings.NewReader(body))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if _, err = io.Copy(io.Discard, resp.Body); err != nil {
			return
		}
		status, retryAfter = resp.StatusCode, resp.Header.Get("Retry-After")
	})
	return status, retryAfter, err
}

// ChaosSchedSweep runs the scheduling soak over n consecutive seeds.
func ChaosSchedSweep(start int64, n int, scale float64) ([]ChaosRow, error) {
	var rows []ChaosRow
	for seed := start; seed < start+int64(n); seed++ {
		row, err := ChaosSchedSoak(seed, scale)
		if err != nil {
			return rows, fmt.Errorf("seed %d: %w", seed, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ChaosSweep runs the single-node soak over n consecutive seeds
// starting at start — the property-style loop: same rules, swept seed.
func ChaosSweep(start int64, n int, scale float64) ([]ChaosRow, error) {
	var rows []ChaosRow
	for seed := start; seed < start+int64(n); seed++ {
		row, err := ChaosSoak(seed, scale)
		if err != nil {
			return rows, fmt.Errorf("seed %d: %w", seed, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ChaosClusterSweep runs the cluster soak over n consecutive seeds.
func ChaosClusterSweep(start int64, n int, scale float64) ([]ChaosRow, error) {
	var rows []ChaosRow
	for seed := start; seed < start+int64(n); seed++ {
		row, err := ChaosClusterSoak(seed, scale)
		if err != nil {
			return rows, fmt.Errorf("seed %d: %w", seed, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// chatOnce issues one non-streaming request.
func chatOnce(cli *openai.Client, model string, seed int64) error {
	s := seed
	_, err := cli.ChatCompletion(context.Background(), &openai.ChatCompletionRequest{
		Model:     model,
		Messages:  []openai.Message{{Role: "user", Content: "soak"}},
		Seed:      &s,
		MaxTokens: 4,
	})
	return err
}

// chaosStreamMin / chaosStreamMax bound the soak's stream length:
// short enough that a double cut (both replicas severed on one
// request) stays an occasional failure rather than the norm, long
// enough that cuts land at varied positions.
const (
	chaosStreamMin = 12
	chaosStreamMax = 16
)

// streamOnceFramed issues one streaming request under either client
// framing: the OpenAI SSE wire or the Ollama NDJSON wire. Both
// canonicalize to the same upstream stream, so the concatenated
// transcript must agree modulo the length clamp (the Ollama wire has
// no min_tokens knob, so its expectation is the natural length capped
// at num_predict).
func streamOnceFramed(url, model string, seed int64, clock simclock.Clock, ndjson bool) (string, bool, error) {
	if ndjson {
		return streamOnceNDJSON(url, model, seed, clock)
	}
	return streamOnce(url, model, seed, clock)
}

// streamOnceNDJSON issues one /api/chat streaming request and consumes
// the NDJSON line stream, returning the concatenated completion text
// and whether the done:true line arrived.
func streamOnceNDJSON(url, model string, seed int64, clock simclock.Clock) (string, bool, error) {
	var got strings.Builder
	finished := false
	var err error
	simclock.GateFor(clock).BlockIO(func() {
		body := fmt.Sprintf(
			`{"model":%q,"messages":[{"role":"user","content":"soak stream"}],"options":{"seed":%d,"num_predict":%d}}`,
			model, seed, chaosStreamMax)
		var resp *http.Response
		resp, err = http.Post(url+"/api/chat", "application/json", strings.NewReader(body))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			err = fmt.Errorf("stream request: HTTP %d", resp.StatusCode)
			return
		}
		br := bufio.NewReader(resp.Body)
		for {
			line, rerr := ir.ReadNDJSONLine(br)
			if line != "" {
				var chunk ir.OllamaChatChunk
				if jerr := json.Unmarshal([]byte(line), &chunk); jerr != nil {
					err = fmt.Errorf("bad NDJSON line: %w", jerr)
					return
				}
				got.WriteString(chunk.Message.Content)
				if chunk.Done {
					finished = true
				}
			}
			if rerr != nil {
				return // EOF (clean or cut); finished tells which
			}
		}
	})
	return got.String(), finished, err
}

// streamOnce issues one streaming request, returning the concatenated
// completion text and whether the stream delivered its finish chunk —
// the relayed stream ends silently at EOF when every replica was cut,
// so only the finish marker distinguishes complete from truncated.
func streamOnce(url, model string, seed int64, clock simclock.Clock) (string, bool, error) {
	s := seed
	var got strings.Builder
	finished := false
	cli := openai.NewClient(url)
	cli.Clock = clock
	err := cli.ChatCompletionStream(context.Background(),
		&openai.ChatCompletionRequest{
			Model:     model,
			Messages:  []openai.Message{{Role: "user", Content: "soak stream"}},
			Seed:      &s,
			MinTokens: chaosStreamMin,
			MaxTokens: chaosStreamMax,
		},
		func(ch *openai.ChatCompletionChunk) error {
			for _, choice := range ch.Choices {
				got.WriteString(choice.Delta.Content)
				if choice.FinishReason != nil && *choice.FinishReason != "" {
					finished = true
				}
			}
			return nil
		})
	return got.String(), finished, err
}

// expectedStreamFramed computes the deterministic transcript a soak
// stream must observe — identical on every replica, which is what
// makes skip-ahead failover exact. It mirrors the engine handler's
// token-count clamp; the NDJSON request carries no min_tokens (the
// Ollama wire has no such knob), so its floor is zero.
func expectedStreamFramed(seed int64, ndjson bool) string {
	var gen engine.Generator
	full := engine.PromptText([]openai.Message{{Role: "user", Content: "soak stream"}})
	n := gen.CompletionLength(full, seed, chaosStreamMax)
	if !ndjson && n < chaosStreamMin {
		n = chaosStreamMin
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		want.WriteString(gen.Token(full, seed, i))
	}
	return want.String()
}

// retryUntilOK retries op up to five times, reporting whether it
// eventually succeeded.
func retryUntilOK(op func() error) bool {
	for attempt := 0; attempt < 5; attempt++ {
		if op() == nil {
			return true
		}
	}
	return false
}

// fillChaosRow finalizes a trial row from the invariant report,
// injector stats, and measured recovery latencies.
func fillChaosRow(row *ChaosRow, rep *invariant.Report, inj *chaos.Injector, recoveries []time.Duration) {
	row.FaultsInjected = inj.TotalFired()
	row.Violations = len(rep.Violations)
	if row.Violations > 0 {
		row.ViolationText = rep.String()
	}
	if len(recoveries) > 0 {
		row.RecoveryP50Sec = quantile(recoveries, 0.50)
		var max time.Duration
		for _, d := range recoveries {
			if d > max {
				max = d
			}
		}
		row.RecoveryMaxSec = max.Seconds()
	}
}

// PrintChaos renders a chaos sweep, one row per seed, plus totals.
func PrintChaos(w io.Writer, rows []ChaosRow) {
	fprintf(w, "Chaos soak: seeded fault schedules vs system-wide invariants\n")
	fprintf(w, "node rules:    %s\n", NodeChaosRules)
	fprintf(w, "cluster rules: %s\n", ClusterChaosRules)
	fprintf(w, "sched rules:   %s\n", SchedChaosRules)
	fprintf(w, "%-8s %6s %5s %7s %10s %7s %11s %11s %11s\n",
		"scope", "seed", "reqs", "failed", "recovered", "faults", "rec-p50(s)", "rec-max(s)", "violations")
	var faults, violations int
	for _, r := range rows {
		fprintf(w, "%-8s %6d %5d %7d %10d %7d %11.2f %11.2f %11d\n",
			r.Scope, r.Seed, r.Requests, r.Failed, r.Recovered, r.FaultsInjected,
			r.RecoveryP50Sec, r.RecoveryMaxSec, r.Violations)
		faults += r.FaultsInjected
		violations += r.Violations
		if r.ViolationText != "" {
			fprintf(w, "  seed %d violations:\n%s\n", r.Seed, r.ViolationText)
		}
	}
	fprintf(w, "total: %d seeds, %d faults injected, %d invariant violations\n",
		len(rows), faults, violations)
	if violations > 0 {
		fprintf(w, "replay a failing seed with: go test ./internal/experiments -run TestChaosSoak -chaos.seed=<seed>\n")
	}
}

// ChaosCSV renders chaos rows as CSV lines.
func ChaosCSV(rows []ChaosRow) (header string, out []string) {
	header = "scope,seed,requests,failed,recovered,unrecovered,faults,recovery_p50_s,recovery_max_s,violations"
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%d",
			r.Scope, r.Seed, r.Requests, r.Failed, r.Recovered, r.Unrecovered,
			r.FaultsInjected, r.RecoveryP50Sec, r.RecoveryMaxSec, r.Violations))
	}
	return header, out
}
