package experiments

import "testing"

// TestProtocolMixAblation runs the protocol-mix ablation twice and
// asserts the properties the committed artifact depends on: the trial
// is fully deterministic (the rendered JSON is byte-identical run to
// run), the cache-off arm records no cache activity, and the cache-on
// arm converts repeats — including the cross-protocol /api/generate
// twin of the OpenAI chat request — into hits without losing a single
// request.
func TestProtocolMixAblation(t *testing.T) {
	const seed = 42
	res, err := AblationProtocolMix(seed)
	if err != nil {
		t.Fatal(err)
	}

	arms := map[string]ProtomixArm{}
	for _, a := range res.Arms {
		arms[a.Arm] = a
	}
	off, on := arms["cache-off"], arms["cache-on"]
	if off.Requests == 0 || off.Requests != on.Requests {
		t.Fatalf("arm request counts diverge: off=%d on=%d", off.Requests, on.Requests)
	}
	if off.CacheHits != 0 || off.CacheMisses != 0 {
		t.Fatalf("cache-off arm recorded cache activity: %+v", off)
	}
	if on.CacheHits == 0 {
		t.Fatal("cache-on arm recorded no hits despite repeated prompts")
	}
	if on.CacheBypass == 0 {
		t.Fatal("no-store probes recorded no bypasses")
	}
	if on.Placements >= off.Placements {
		t.Fatalf("cache hits did not save placements: on=%d off=%d", on.Placements, off.Placements)
	}

	for _, r := range res.Rows {
		if r.OK != r.Requests {
			t.Fatalf("%s/%s: %d of %d requests failed", r.Arm, r.Kind, r.Requests-r.OK, r.Requests)
		}
		if r.Arm == "cache-off" && r.CacheHits != 0 {
			t.Fatalf("cache-off %s reported hits", r.Kind)
		}
	}
	perKind := map[string]ProtomixRow{}
	for _, r := range res.Rows {
		if r.Arm == "cache-on" {
			perKind[r.Kind] = r
		}
	}
	// The second chat slot repeats the first's body, so at least one hit
	// per cycle; generate shares the chat entry across protocols.
	if perKind["chat"].CacheHits == 0 {
		t.Fatal("repeated chat bodies never hit")
	}
	if perKind["generate"].CacheHits == 0 {
		t.Fatal("cross-protocol generate requests never hit the chat-stored entries")
	}
	// Streams are never cached.
	if perKind["chat-sse"].CacheHits != 0 || perKind["chat-ndjson"].CacheHits != 0 {
		t.Fatal("a streaming request reported a cache hit")
	}

	// Byte-identical regeneration is what lets CI assert the committed
	// BENCH_protomix.json is current.
	again, err := AblationProtocolMix(seed)
	if err != nil {
		t.Fatal(err)
	}
	if ProtomixBenchJSON(res) != ProtomixBenchJSON(again) {
		t.Fatal("two runs rendered different BENCH_protomix.json bytes")
	}
}
