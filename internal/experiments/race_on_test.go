//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// Its scheduling overhead leaks real milliseconds into the scaled
// simulation clock, so calibration anchors cannot be asserted tightly
// under -race.
const raceEnabled = true
