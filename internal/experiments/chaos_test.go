package experiments

import (
	"flag"
	"testing"
)

var (
	chaosSeed = flag.Int64("chaos.seed", 0,
		"replay a single chaos soak seed instead of sweeping")
	chaosSeeds = flag.Int("chaos.seeds", 50,
		"number of consecutive seeds in the chaos soak sweep")
)

// chaosScale is inert under the Virtual clock (trials run in virtual
// time regardless); retained because the soak entry points keep their
// scale parameter for interface stability.
const chaosScale = 0

// TestChaosSoak is the property-style randomized soak: the node fault
// schedule replayed over a sweep of seeds (default 50, -chaos.seeds to
// change), asserting zero invariant violations on every one. Failing
// seeds are printed for deterministic replay via -chaos.seed=<n>.
func TestChaosSoak(t *testing.T) {
	if *chaosSeed != 0 {
		row, err := ChaosSoak(*chaosSeed, chaosScale)
		if err != nil {
			t.Fatalf("seed %d: %v", *chaosSeed, err)
		}
		t.Logf("replay seed %d: %+v", *chaosSeed, row)
		if row.Violations != 0 {
			t.Fatalf("seed %d: %d invariant violations:\n%s",
				*chaosSeed, row.Violations, row.ViolationText)
		}
		return
	}

	var failing []int64
	var faults, failed, recovered int
	for seed := int64(1); seed <= int64(*chaosSeeds); seed++ {
		row, err := ChaosSoak(seed, chaosScale)
		if err != nil {
			t.Fatalf("seed %d: trial error: %v", seed, err)
		}
		faults += row.FaultsInjected
		failed += row.Failed
		recovered += row.Recovered
		if row.Violations != 0 {
			failing = append(failing, seed)
			t.Errorf("seed %d: %d invariant violations:\n%s",
				seed, row.Violations, row.ViolationText)
		}
	}
	t.Logf("%d seeds: %d faults injected, %d requests failed, %d recovered",
		*chaosSeeds, faults, failed, recovered)
	if len(failing) > 0 {
		t.Fatalf("failing seeds %v — replay each with -chaos.seed=<n>", failing)
	}
	if faults == 0 {
		t.Fatal("soak injected no faults: the schedule is not reaching the sites")
	}
}

// TestChaosClusterSoak sweeps the cluster schedule (heartbeat loss,
// proxy failures, SSE cuts) over a smaller seed range: streams must
// resume exactly across failovers and the node state machine must take
// only legal edges.
func TestChaosClusterSoak(t *testing.T) {
	if *chaosSeed != 0 {
		row, err := ChaosClusterSoak(*chaosSeed, chaosScale)
		if err != nil {
			t.Fatalf("seed %d: %v", *chaosSeed, err)
		}
		t.Logf("replay seed %d: %+v", *chaosSeed, row)
		if row.Violations != 0 {
			t.Fatalf("seed %d: %d invariant violations:\n%s",
				*chaosSeed, row.Violations, row.ViolationText)
		}
		return
	}

	seeds := *chaosSeeds
	if seeds > 10 {
		seeds = 10
	}
	var failing []int64
	var faults int
	for seed := int64(1); seed <= int64(seeds); seed++ {
		row, err := ChaosClusterSoak(seed, chaosScale)
		if err != nil {
			t.Fatalf("seed %d: trial error: %v", seed, err)
		}
		faults += row.FaultsInjected
		if row.Violations != 0 {
			failing = append(failing, seed)
			t.Errorf("seed %d: %d invariant violations:\n%s",
				seed, row.Violations, row.ViolationText)
		}
	}
	if len(failing) > 0 {
		t.Fatalf("failing seeds %v — replay each with -chaos.seed=<n>", failing)
	}
	if faults == 0 {
		t.Fatal("cluster soak injected no faults")
	}
}

// TestChaosSchedSoak sweeps the scheduling-subsystem schedule (forced
// admission mispredictions, suppressed pre-warms, inverted eviction
// verdicts): every shed must stay well-formed (Retry-After present,
// counters matching client-observed 429s) and the node invariants must
// hold at quiescence. Mispredictions may cost latency, never
// correctness.
func TestChaosSchedSoak(t *testing.T) {
	if *chaosSeed != 0 {
		row, err := ChaosSchedSoak(*chaosSeed, chaosScale)
		if err != nil {
			t.Fatalf("seed %d: %v", *chaosSeed, err)
		}
		t.Logf("replay seed %d: %+v", *chaosSeed, row)
		if row.Violations != 0 {
			t.Fatalf("seed %d: %d invariant violations:\n%s",
				*chaosSeed, row.Violations, row.ViolationText)
		}
		return
	}

	seeds := *chaosSeeds
	if seeds > 10 {
		seeds = 10
	}
	var failing []int64
	var faults int
	for seed := int64(1); seed <= int64(seeds); seed++ {
		row, err := ChaosSchedSoak(seed, chaosScale)
		if err != nil {
			t.Fatalf("seed %d: trial error: %v", seed, err)
		}
		faults += row.FaultsInjected
		if row.Violations != 0 {
			failing = append(failing, seed)
			t.Errorf("seed %d: %d invariant violations:\n%s",
				seed, row.Violations, row.ViolationText)
		}
	}
	if len(failing) > 0 {
		t.Fatalf("failing seeds %v — replay each with -chaos.seed=<n>", failing)
	}
	if faults == 0 {
		t.Fatal("sched soak injected no faults")
	}
}

// TestChaosSoakDeterministic: the same seed must produce the same fault
// schedule and the same workload outcome — the property that makes
// failing seeds replayable. (Latency fields carry real-clock jitter and
// are excluded.)
func TestChaosSoakDeterministic(t *testing.T) {
	a, err := ChaosSoak(7, chaosScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosSoak(7, chaosScale)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultsInjected != b.FaultsInjected || a.Failed != b.Failed ||
		a.Recovered != b.Recovered || a.Unrecovered != b.Unrecovered ||
		a.Violations != b.Violations {
		t.Fatalf("same seed diverged:\n run1 %+v\n run2 %+v", a, b)
	}
	if a.FaultsInjected == 0 {
		t.Fatal("seed 7 injected no faults")
	}
}
