package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"swapservellm/internal/cluster"
	"swapservellm/internal/config"
	"swapservellm/internal/simclock"
)

// The protocol-mix ablation measures the multi-protocol front door as
// a system: a fixed script of requests cycling through every endpoint
// family — OpenAI chat (buffered and SSE), Ollama chat (NDJSON) and
// generate, embeddings, and rerank — replayed through a two-node
// cluster twice, once with the IR-keyed response cache disabled and
// once enabled. The script repeats prompts across cycles, so the cache
// arm converts repeats into hits; and because the cache key is the
// canonical (protocol-independent) encoding, an /api/generate request
// hits on the entry its OpenAI chat twin stored. The trial runs in
// pure virtual time with a sequential workload, so the emitted
// BENCH_protomix.json is byte-identical across runs.

// ProtomixRow is one (arm, endpoint-kind) measurement.
type ProtomixRow struct {
	Arm       string
	Kind      string // endpoint family + framing label
	Protocol  string // "openai" or "ollama"
	Requests  int
	OK        int
	CacheHits int // client-visible X-Cache: hit responses
	MeanSec   float64
}

// ProtomixArm aggregates one arm's cache and placement activity.
type ProtomixArm struct {
	Arm         string
	Requests    int
	CacheHits   int
	CacheMisses int
	CacheBypass int
	Placements  int
	MeanSec     float64
	ElapsedS    float64
}

// ProtomixResult is the full ablation output.
type ProtomixResult struct {
	Rows []ProtomixRow
	Arms []ProtomixArm
}

// protomixModel is the single served model: small enough that both
// nodes hold it warm after the first placement, so the measured deltas
// come from the front door, not swap churn.
const protomixModel = "llama3.2:1b-fp16"

// protomixCycles is the number of times the eight-slot script repeats.
const protomixCycles = 6

// protomixPrompts is the prompt pool; each cycle uses one prompt, so a
// six-cycle run revisits every prompt and gives the cache repeats to
// convert.
var protomixPrompts = []string{
	"summarize the swap pipeline",
	"compare checkpoint tiers",
	"explain placement locality",
}

// protomixSlot describes one slot of the script cycle.
type protomixSlot struct {
	kind     string
	protocol string
	noStore  bool
}

// protomixScript is the eight-slot cycle: every endpoint family, both
// framings of the chat stream, a deliberate repeat (the cache's
// bread-and-butter), and a no-store probe of the bypass path.
var protomixScript = []protomixSlot{
	{kind: "chat", protocol: "openai"},
	{kind: "chat-sse", protocol: "openai"},
	{kind: "chat-ndjson", protocol: "ollama"},
	{kind: "embeddings", protocol: "openai"},
	{kind: "generate", protocol: "ollama"},
	{kind: "rerank", protocol: "openai"},
	{kind: "chat", protocol: "openai"}, // same body as slot 0: a repeat
	{kind: "chat", protocol: "openai", noStore: true},
}

// protomixBody renders the request body for a slot. The generate body
// canonicalizes to the same upstream encoding as the chat body for the
// same prompt — that equality is what makes the cross-protocol cache
// hit possible.
func protomixBody(kind, prompt string, seed int64) (path, body string) {
	switch kind {
	case "chat", "chat-sse":
		stream := ""
		if kind == "chat-sse" {
			stream = `,"stream":true`
		}
		return "/v1/chat/completions", fmt.Sprintf(
			`{"model":%q,"messages":[{"role":"user","content":%q}],"max_tokens":8,"seed":%d%s}`,
			protomixModel, prompt, seed, stream)
	case "chat-ndjson":
		return "/api/chat", fmt.Sprintf(
			`{"model":%q,"messages":[{"role":"user","content":%q}],"options":{"seed":%d,"num_predict":8}}`,
			protomixModel, prompt, seed)
	case "generate":
		return "/api/generate", fmt.Sprintf(
			`{"model":%q,"prompt":%q,"stream":false,"options":{"seed":%d,"num_predict":8}}`,
			protomixModel, prompt, seed)
	case "embeddings":
		return "/v1/embeddings", fmt.Sprintf(
			`{"model":%q,"input":[%q]}`, protomixModel, prompt)
	case "rerank":
		return "/v1/rerank", fmt.Sprintf(
			`{"model":%q,"query":%q,"documents":["swap","serve","llm"],"top_n":2}`,
			protomixModel, prompt)
	}
	panic("protomix: unknown kind " + kind)
}

// AblationProtocolMix runs both arms over the shared script.
func AblationProtocolMix(seed int64) (*ProtomixResult, error) {
	res := &ProtomixResult{}
	for _, arm := range []struct {
		name     string
		cacheOff bool
	}{
		{"cache-off", true},
		{"cache-on", false},
	} {
		rows, sum, err := runProtomixArm(arm.name, arm.cacheOff, seed)
		if err != nil {
			return nil, fmt.Errorf("arm %s: %w", arm.name, err)
		}
		res.Rows = append(res.Rows, rows...)
		res.Arms = append(res.Arms, sum)
	}
	return res, nil
}

// runProtomixArm replays the script against a fresh two-node cluster.
func runProtomixArm(arm string, cacheOff bool, seed int64) ([]ProtomixRow, ProtomixArm, error) {
	cfg := config.DefaultCluster()
	cfg.Cluster.HeartbeatSec = 3600
	cfg.Global.ResponseTimeoutSec = 0
	cfg.Global.KeepAliveSec = 0
	cfg.Proxy.CacheDisabled = cacheOff
	cfg.Nodes = []config.Node{
		{Name: "node-a", Models: []config.Model{{Name: protomixModel, Engine: "ollama"}}},
		{Name: "node-b", Models: []config.Model{{Name: protomixModel, Engine: "ollama"}}},
	}

	clock, gate := virtualClock()
	defer gate.Exit()
	c, err := cluster.New(cfg, cluster.WithClock(clock))
	if err != nil {
		return nil, ProtomixArm{}, err
	}
	defer c.Shutdown()
	if err := c.Start(context.Background()); err != nil {
		return nil, ProtomixArm{}, err
	}
	// Start probed every node synchronously, so both nodes are healthy;
	// halting the heartbeat loop here leaves the trial with zero pending
	// virtual timers. The clock then advances only through request
	// service time, which is what makes the measured latencies — and the
	// committed artifact — byte-identical run to run.
	c.NodeRegistry().Stop()

	perKind := map[string]*ProtomixRow{}
	var kindLats = map[string][]time.Duration{}
	var allLats []time.Duration
	sum := ProtomixArm{Arm: arm}
	t0 := clock.Now()
	for i := 0; i < protomixCycles*len(protomixScript); i++ {
		slot := protomixScript[i%len(protomixScript)]
		prompt := protomixPrompts[(i/len(protomixScript))%len(protomixPrompts)]
		path, body := protomixBody(slot.kind, prompt, seed)
		row, ok := perKind[slot.kind]
		if !ok {
			row = &ProtomixRow{Arm: arm, Kind: slot.kind, Protocol: slot.protocol}
			perKind[slot.kind] = row
		}
		row.Requests++
		sum.Requests++
		start := clock.Now()
		hit, err := protomixDo(c.URL(), path, body, slot.noStore, clock)
		if err != nil {
			return nil, ProtomixArm{}, fmt.Errorf("request %d (%s): %w", i, slot.kind, err)
		}
		d := clock.Since(start)
		row.OK++
		if hit {
			row.CacheHits++
		}
		kindLats[slot.kind] = append(kindLats[slot.kind], d)
		allLats = append(allLats, d)
	}
	sum.ElapsedS = clock.Since(t0).Seconds()
	sum.MeanSec = mean(allLats)

	reg := c.Registry()
	sum.CacheHits = int(reg.Counter("proxy_cache_hits").Value())
	sum.CacheMisses = int(reg.Counter("proxy_cache_misses").Value())
	sum.CacheBypass = int(reg.Counter("proxy_cache_bypass").Value())
	sum.Placements = int(reg.Counter("placement_total").Value())

	// Rows in script order (first occurrence), stable across runs.
	var rows []ProtomixRow
	seen := map[string]bool{}
	for _, slot := range protomixScript {
		if seen[slot.kind] {
			continue
		}
		seen[slot.kind] = true
		r := perKind[slot.kind]
		r.MeanSec = mean(kindLats[slot.kind])
		rows = append(rows, *r)
	}
	return rows, sum, nil
}

// protomixDo issues one scripted request and fully consumes the
// response (streamed or buffered), returning whether it was served
// from the gateway's response cache. The round trip is declared as
// external I/O so the virtual clock can advance while this caller is
// parked inside net/http.
func protomixDo(url, path, body string, noStore bool, clock simclock.Clock) (hit bool, err error) {
	simclock.GateFor(clock).BlockIO(func() {
		var req *http.Request
		req, err = http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if noStore {
			req.Header.Set("Cache-Control", "no-store")
		}
		var resp *http.Response
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if _, err = io.Copy(io.Discard, resp.Body); err != nil {
			return
		}
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
			return
		}
		hit = resp.Header.Get("X-Cache") == "hit"
	})
	return hit, err
}

// PrintProtomix renders the ablation tables.
func PrintProtomix(w io.Writer, res *ProtomixResult) {
	fprintf(w, "Ablation: protocol mix through the front door, response cache off vs on\n")
	fprintf(w, "%-10s %-12s %-8s %9s %4s %10s %9s\n",
		"Arm", "Endpoint", "Protocol", "requests", "ok", "cache-hits", "mean(s)")
	for _, r := range res.Rows {
		fprintf(w, "%-10s %-12s %-8s %9d %4d %10d %9.3f\n",
			r.Arm, r.Kind, r.Protocol, r.Requests, r.OK, r.CacheHits, r.MeanSec)
	}
	fprintf(w, "%-10s %9s %6s %8s %8s %11s %9s %11s\n",
		"Arm", "requests", "hits", "misses", "bypass", "placements", "mean(s)", "elapsed(s)")
	for _, a := range res.Arms {
		fprintf(w, "%-10s %9d %6d %8d %8d %11d %9.3f %11.3f\n",
			a.Arm, a.Requests, a.CacheHits, a.CacheMisses, a.CacheBypass,
			a.Placements, a.MeanSec, a.ElapsedS)
	}
}

// ProtomixCSV flattens the per-endpoint rows for -csv output.
func ProtomixCSV(res *ProtomixResult) (string, []string) {
	header := "arm,endpoint,protocol,requests,ok,cache_hits,mean_s"
	var rows []string
	for _, r := range res.Rows {
		rows = append(rows, fmt.Sprintf("%s,%s,%s,%d,%d,%d,%.3f",
			r.Arm, r.Kind, r.Protocol, r.Requests, r.OK, r.CacheHits, r.MeanSec))
	}
	return header, rows
}

// ProtomixBenchJSON renders the committed BENCH_protomix.json artifact.
// Formatting is fixed-precision so the bytes are stable run to run.
func ProtomixBenchJSON(res *ProtomixResult) string {
	out := "{\n"
	out += "  \"benchmark\": \"AblationProtocolMix\",\n"
	out += "  \"description\": \"A fixed script cycling every front-door endpoint family (OpenAI chat buffered+SSE, Ollama chat NDJSON, Ollama generate, embeddings, rerank) replayed through a two-node cluster with the IR-keyed response cache off and on. Repeated prompts become hits in the cache arm; /api/generate hits on entries stored by its OpenAI chat twin because the key is the canonical encoding.\",\n"
	out += "  \"testbed\": \"h100\",\n"
	out += "  \"command\": \"go run ./cmd/swapbench -exp protomix\",\n"
	out += "  \"rows\": [\n"
	for i, r := range res.Rows {
		comma := ","
		if i == len(res.Rows)-1 {
			comma = ""
		}
		out += fmt.Sprintf("    {\"arm\": %q, \"endpoint\": %q, \"protocol\": %q, \"requests\": %d, \"ok\": %d, \"cache_hits\": %d, \"mean_s\": %.3f}%s\n",
			r.Arm, r.Kind, r.Protocol, r.Requests, r.OK, r.CacheHits, r.MeanSec, comma)
	}
	out += "  ],\n"
	out += "  \"arms\": [\n"
	for i, a := range res.Arms {
		comma := ","
		if i == len(res.Arms)-1 {
			comma = ""
		}
		out += fmt.Sprintf("    {\"arm\": %q, \"requests\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \"cache_bypass\": %d, \"placements\": %d, \"mean_s\": %.3f, \"elapsed_s\": %.3f}%s\n",
			a.Arm, a.Requests, a.CacheHits, a.CacheMisses, a.CacheBypass, a.Placements, a.MeanSec, a.ElapsedS, comma)
	}
	out += "  ]\n}\n"
	return out
}
