package config

import (
	"strings"
	"testing"

	"swapservellm/internal/models"
)

func validCluster() Cluster {
	c := DefaultCluster()
	c.Nodes = []Node{
		{Name: "node-a", Models: []Model{{Name: "llama3.2:1b-fp16", Engine: "ollama"}}},
		{Name: "node-b", Models: []Model{{Name: "llama3.2:1b-fp16", Engine: "ollama"}}},
	}
	return c
}

func TestClusterValidateDefaults(t *testing.T) {
	c := validCluster()
	if err := c.Validate(models.Default()); err != nil {
		t.Fatal(err)
	}
	if c.Cluster.Placement != "locality" || c.Cluster.HeartbeatMissLimit != 3 || c.Cluster.RetryLimit != 2 {
		t.Fatalf("defaults not applied: %+v", c.Cluster)
	}
	if c.Nodes[0].Listen != "127.0.0.1:0" {
		t.Fatalf("node listen default = %q", c.Nodes[0].Listen)
	}
	// Per-model defaults flow through the single-node validation.
	if c.Nodes[0].Models[0].QueueCapacity != c.Global.QueueCapacity {
		t.Fatalf("node model queue capacity = %d", c.Nodes[0].Models[0].QueueCapacity)
	}
	if c.Nodes[0].Models[0].Image == "" {
		t.Fatal("node model image default missing")
	}
}

func TestClusterValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Cluster)
		want   string
	}{
		{"no nodes", func(c *Cluster) { c.Nodes = nil }, "at least one node"},
		{"dup node", func(c *Cluster) { c.Nodes[1].Name = "node-a" }, "duplicate node"},
		{"bad placement", func(c *Cluster) { c.Cluster.Placement = "warmest" }, "unknown placement"},
		{"bad model", func(c *Cluster) { c.Nodes[0].Models[0].Name = "nope" }, "not in catalog"},
		{"missing name", func(c *Cluster) { c.Nodes[0].Name = "" }, "missing name"},
		{"bad highwater", func(c *Cluster) { c.Cluster.RebalanceHighWater = 1.5 }, "rebalance_high_water"},
	}
	for _, tc := range cases {
		c := validCluster()
		tc.mutate(&c)
		err := c.Validate(models.Default())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestParseCluster(t *testing.T) {
	js := `{
		"listen": "127.0.0.1:8090",
		"testbed": "h100",
		"global": {"keep_alive_sec": 20, "queue_capacity": 32},
		"cluster": {"placement": "least-loaded", "heartbeat_sec": 1.5, "rebalance_sec": 10},
		"nodes": [
			{"name": "a", "models": [{"name": "llama3.2:1b-fp16", "engine": "ollama"}]},
			{"name": "b", "models": [{"name": "llama3.1:8b-fp16", "engine": "vllm"}]}
		]
	}`
	c, err := ParseCluster(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(models.Default()); err != nil {
		t.Fatal(err)
	}
	if c.Cluster.Placement != "least-loaded" || c.Cluster.HeartbeatSec != 1.5 {
		t.Fatalf("cluster section = %+v", c.Cluster)
	}
	if c.RebalanceEvery().Seconds() != 10 {
		t.Fatalf("rebalance interval = %v", c.RebalanceEvery())
	}
	nc := c.NodeConfig(1)
	if nc.Testbed != "h100" || nc.Global.KeepAliveSec != 20 || len(nc.Models) != 1 {
		t.Fatalf("node config = %+v", nc)
	}
}

func TestParseClusterUnknownField(t *testing.T) {
	if _, err := ParseCluster(strings.NewReader(`{"gatway": "typo"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
