package config

import (
	"errors"
	"fmt"
	"time"
)

// SchedClass declares one priority class for the predictive scheduler:
// an SLO target, a guaranteed admission share (token bucket), and a
// priority rank used by queue-delay load shedding.
type SchedClass struct {
	// Name is the class identifier models and request headers refer to.
	Name string `json:"name"`
	// Priority ranks classes; 0 is the most important. Shedding pressure
	// lands on higher numbers (lower priority) first because their
	// predicted wait includes every higher class's in-flight work.
	Priority int `json:"priority"`
	// SLOSec is the class's latency SLO in simulated seconds: a request
	// is admitted without spending a token while the predicted wait is
	// within this budget, and counted as attained when its latency is.
	SLOSec float64 `json:"slo_sec"`
	// RatePerSec is the class's guaranteed admission rate: the token
	// bucket refill. Even under full overload the class is admitted at
	// this rate, so no class starves.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the token-bucket depth (default: 2×RatePerSec, min 1).
	Burst float64 `json:"burst,omitempty"`
}

// SLO returns the class SLO as a Duration.
func (c SchedClass) SLO() time.Duration {
	return time.Duration(c.SLOSec * float64(time.Second))
}

// SchedCfg is the predictive-scheduling section of a cluster
// configuration. An empty Classes list disables the subsystem entirely
// (the fleet stays purely reactive, as before).
type SchedCfg struct {
	// Classes declares the priority classes. Empty disables scheduling.
	Classes []SchedClass `json:"classes,omitempty"`
	// DefaultClass is assigned to models (and requests) that do not name
	// one. Defaults to the lowest-priority declared class.
	DefaultClass string `json:"default_class,omitempty"`
	// Admission enables gateway admission control and load shedding.
	Admission bool `json:"admission,omitempty"`
	// PredictorWindowSec is the demand predictor's recent-rate EWMA
	// window in simulated seconds (default 600).
	PredictorWindowSec float64 `json:"predictor_window_sec,omitempty"`
	// PredictorBucketMin is the width of the predictor's time-of-day
	// histogram buckets in minutes (default 15; must divide 24h).
	PredictorBucketMin int `json:"predictor_bucket_min,omitempty"`
	// Prewarm enables predictive checkpoint prefetch / engine pre-warm
	// ahead of forecast ramps.
	Prewarm bool `json:"prewarm,omitempty"`
	// PrewarmHorizonSec is how far ahead the pre-warmer looks for
	// demand, in simulated seconds (default 300).
	PrewarmHorizonSec float64 `json:"prewarm_horizon_sec,omitempty"`
	// PrewarmIntervalSec is the pre-warm sweep interval in simulated
	// seconds (default 60).
	PrewarmIntervalSec float64 `json:"prewarm_interval_sec,omitempty"`
	// PrewarmThreshold is the expected number of arrivals within the
	// horizon that triggers a pre-warm (default 0.5).
	PrewarmThreshold float64 `json:"prewarm_threshold,omitempty"`
	// TTLPolicy selects the keep-alive eviction policy consulted by the
	// node reapers: "fixed" (plain idle TTL), "adaptive" (hit-rate
	// adaptive TTL), or "predictive" (demand-predictor informed). Empty
	// keeps the reactive keep_alive_sec reaper unchanged.
	TTLPolicy string `json:"ttl_policy,omitempty"`
	// TTLSec is the base TTL for the fixed and adaptive policies in
	// simulated seconds (default: the global keep_alive_sec, else 300).
	TTLSec float64 `json:"ttl_sec,omitempty"`
}

// Enabled reports whether the scheduling subsystem is configured.
func (s *SchedCfg) Enabled() bool { return len(s.Classes) > 0 }

// PredictorWindow returns the recent-rate EWMA window as a Duration.
func (s *SchedCfg) PredictorWindow() time.Duration {
	return time.Duration(s.PredictorWindowSec * float64(time.Second))
}

// PredictorBucket returns the time-of-day histogram bucket width.
func (s *SchedCfg) PredictorBucket() time.Duration {
	return time.Duration(s.PredictorBucketMin) * time.Minute
}

// PrewarmHorizon returns the pre-warm lookahead as a Duration.
func (s *SchedCfg) PrewarmHorizon() time.Duration {
	return time.Duration(s.PrewarmHorizonSec * float64(time.Second))
}

// PrewarmInterval returns the pre-warm sweep interval as a Duration.
func (s *SchedCfg) PrewarmInterval() time.Duration {
	return time.Duration(s.PrewarmIntervalSec * float64(time.Second))
}

// TTL returns the base TTL as a Duration.
func (s *SchedCfg) TTL() time.Duration {
	return time.Duration(s.TTLSec * float64(time.Second))
}

// Class returns the declared class with the given name.
func (s *SchedCfg) Class(name string) (SchedClass, bool) {
	for _, c := range s.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return SchedClass{}, false
}

// validate checks the scheduling section and fills defaults in place.
// fallbackTTLSec seeds TTLSec when unset (the global keep_alive_sec).
func (s *SchedCfg) validate(fallbackTTLSec float64) error {
	if !s.Enabled() {
		return nil
	}
	seen := make(map[string]bool, len(s.Classes))
	lowest := 0
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("config: scheduling classes[%d] missing name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("config: duplicate scheduling class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Priority < 0 {
			return fmt.Errorf("config: class %q priority must be non-negative", c.Name)
		}
		if c.SLOSec <= 0 {
			return fmt.Errorf("config: class %q slo_sec must be positive", c.Name)
		}
		if c.RatePerSec <= 0 {
			return fmt.Errorf("config: class %q rate_per_sec must be positive", c.Name)
		}
		if c.Burst < 0 {
			return fmt.Errorf("config: class %q burst must be non-negative", c.Name)
		}
		if c.Burst == 0 {
			c.Burst = 2 * c.RatePerSec
			if c.Burst < 1 {
				c.Burst = 1
			}
		}
		if c.Priority > s.Classes[lowest].Priority {
			lowest = i
		}
	}
	if s.DefaultClass == "" {
		s.DefaultClass = s.Classes[lowest].Name
	} else if !seen[s.DefaultClass] {
		return fmt.Errorf("config: default_class %q not declared", s.DefaultClass)
	}
	if s.PredictorWindowSec < 0 {
		return errors.New("config: predictor_window_sec must be non-negative")
	}
	if s.PredictorWindowSec == 0 {
		s.PredictorWindowSec = 600
	}
	if s.PredictorBucketMin < 0 {
		return errors.New("config: predictor_bucket_min must be non-negative")
	}
	if s.PredictorBucketMin == 0 {
		s.PredictorBucketMin = 15
	}
	if (24*60)%s.PredictorBucketMin != 0 {
		return fmt.Errorf("config: predictor_bucket_min %d must divide 24h", s.PredictorBucketMin)
	}
	if s.PrewarmHorizonSec < 0 || s.PrewarmIntervalSec < 0 || s.PrewarmThreshold < 0 {
		return errors.New("config: prewarm parameters must be non-negative")
	}
	if s.PrewarmHorizonSec == 0 {
		s.PrewarmHorizonSec = 300
	}
	if s.PrewarmIntervalSec == 0 {
		s.PrewarmIntervalSec = 60
	}
	if s.PrewarmThreshold == 0 {
		s.PrewarmThreshold = 0.5
	}
	switch s.TTLPolicy {
	case "", "fixed", "adaptive", "predictive":
	default:
		return fmt.Errorf("config: unknown ttl_policy %q (want fixed, adaptive, or predictive)", s.TTLPolicy)
	}
	if s.TTLSec < 0 {
		return errors.New("config: ttl_sec must be non-negative")
	}
	if s.TTLSec == 0 {
		s.TTLSec = fallbackTTLSec
		if s.TTLSec == 0 {
			s.TTLSec = 300
		}
	}
	return nil
}
