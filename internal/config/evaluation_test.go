package config

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"swapservellm/internal/models"
)

// TestShippedEvaluationConfigsValid loads and validates every config in
// evaluation/configs — a shipped config that fails validation is a
// release bug.
func TestShippedEvaluationConfigsValid(t *testing.T) {
	dir := filepath.Join("..", "..", "evaluation", "configs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("evaluation configs missing: %v", err)
	}
	if len(entries) < 5 {
		t.Fatalf("only %d shipped configs", len(entries))
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		// Cluster deployments carry a "nodes" list and use the cluster
		// schema; everything else is a single-node config.
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if bytes.Contains(raw, []byte(`"nodes"`)) {
			cfg, err := LoadCluster(path)
			if err != nil {
				t.Errorf("%s: %v", e.Name(), err)
				continue
			}
			if err := cfg.Validate(models.Default()); err != nil {
				t.Errorf("%s: %v", e.Name(), err)
			}
			continue
		}
		cfg, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := cfg.Validate(models.Default()); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}
