package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"swapservellm/internal/models"
)

// Node configures one cluster member: a full SwapServeLLM deployment
// (its own simulated GPU topology, engines, and snapshot store) joined
// to the gateway.
type Node struct {
	// Name is the node's cluster-unique identifier.
	Name string `json:"name"`
	// Listen is the node router's bind address (default "127.0.0.1:0").
	Listen string `json:"listen,omitempty"`
	// GPUCount overrides the node's topology size (default: the
	// testbed's count, grown to fit the highest configured GPU index).
	GPUCount int `json:"gpu_count,omitempty"`
	// Models lists the backends deployed on this node. A model may be
	// replicated across nodes; the placement engine then chooses per
	// request.
	Models []Model `json:"models"`
}

// ClusterGlobal holds gateway-level parameters.
type ClusterGlobal struct {
	// Placement selects the placement policy: "locality" (default),
	// "least-loaded", or "random".
	Placement string `json:"placement,omitempty"`
	// HeartbeatSec is the registry's heartbeat probe interval in
	// simulated seconds (default 2).
	HeartbeatSec float64 `json:"heartbeat_sec,omitempty"`
	// HeartbeatMissLimit marks a node down after this many consecutive
	// missed heartbeats (default 3).
	HeartbeatMissLimit int `json:"heartbeat_miss_limit,omitempty"`
	// RebalanceSec is the snapshot rebalancer's sweep interval in
	// simulated seconds (0 disables the rebalancer).
	RebalanceSec float64 `json:"rebalance_sec,omitempty"`
	// RebalanceHighWater is the host-snapshot RAM fraction above which a
	// node is considered hot (default 0.75; only meaningful with a
	// snapshot_host_cap_gib).
	RebalanceHighWater float64 `json:"rebalance_high_water,omitempty"`
	// RetryLimit bounds how many distinct nodes the gateway tries per
	// request before giving up (default 2, i.e. one failover).
	RetryLimit int `json:"retry_limit,omitempty"`
}

// ProxyCfg configures the gateway's multi-protocol front door: the
// IR-keyed response cache sitting in front of placement.
type ProxyCfg struct {
	// CacheEntries bounds the response cache (default 256 entries).
	CacheEntries int `json:"cache_entries,omitempty"`
	// CacheDisabled turns the response cache off entirely (the
	// cache_entries default makes a plain 0 mean "use the default").
	CacheDisabled bool `json:"cache_disabled,omitempty"`
}

// Cluster is the multi-node deployment configuration consumed by the
// swapgateway binary: one gateway address, shared global backend
// parameters, and the node list.
type Cluster struct {
	// Listen is the gateway's bind address.
	Listen string `json:"listen"`
	// Testbed selects the hardware profile for every node.
	Testbed string `json:"testbed"`
	// Global backend parameters apply to every node (same split as the
	// single-node Config).
	Global Global `json:"global"`
	// Cluster holds gateway-level parameters.
	Cluster ClusterGlobal `json:"cluster"`
	// Scheduling configures predictive SLO-aware scheduling and
	// admission control (empty = reactive fleet, as before).
	Scheduling SchedCfg `json:"scheduling,omitempty"`
	// Proxy configures the multi-protocol front door.
	Proxy ProxyCfg `json:"proxy,omitempty"`
	// Nodes lists the cluster members.
	Nodes []Node `json:"nodes"`
}

// DefaultCluster returns a cluster configuration with sensible defaults
// and no nodes.
func DefaultCluster() Cluster {
	def := Default()
	return Cluster{
		Listen:  "127.0.0.1:0",
		Testbed: def.Testbed,
		Global:  def.Global,
		Cluster: ClusterGlobal{
			Placement:          "locality",
			HeartbeatSec:       2,
			HeartbeatMissLimit: 3,
			RebalanceHighWater: 0.75,
			RetryLimit:         2,
		},
	}
}

// ParseCluster decodes a JSON cluster configuration, applying defaults
// for omitted fields.
func ParseCluster(r io.Reader) (Cluster, error) {
	cfg := DefaultCluster()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("config: parsing cluster: %w", err)
	}
	return cfg, nil
}

// LoadCluster reads and parses a cluster configuration file.
func LoadCluster(path string) (Cluster, error) {
	f, err := os.Open(path)
	if err != nil {
		return Cluster{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return ParseCluster(f)
}

// Validate checks the cluster configuration: gateway parameters, node
// uniqueness, and every node's deployment via the single-node rules.
// Node defaults (listen address, queue capacities, storage tiers) are
// filled in place.
func (c *Cluster) Validate(catalog *models.Catalog) error {
	if c.Listen == "" {
		return errors.New("config: cluster listen address required")
	}
	switch c.Cluster.Placement {
	case "", "locality", "least-loaded", "random":
	default:
		return fmt.Errorf("config: unknown placement policy %q (want locality, least-loaded, or random)", c.Cluster.Placement)
	}
	if c.Cluster.Placement == "" {
		c.Cluster.Placement = "locality"
	}
	if c.Cluster.HeartbeatSec < 0 {
		return errors.New("config: heartbeat_sec must be non-negative")
	}
	if c.Cluster.HeartbeatSec == 0 {
		c.Cluster.HeartbeatSec = 2
	}
	if c.Cluster.HeartbeatMissLimit < 0 {
		return errors.New("config: heartbeat_miss_limit must be non-negative")
	}
	if c.Cluster.HeartbeatMissLimit == 0 {
		c.Cluster.HeartbeatMissLimit = 3
	}
	if c.Cluster.RebalanceSec < 0 {
		return errors.New("config: rebalance_sec must be non-negative")
	}
	if c.Cluster.RebalanceHighWater < 0 || c.Cluster.RebalanceHighWater > 1 {
		return errors.New("config: rebalance_high_water must be in [0,1]")
	}
	if c.Cluster.RebalanceHighWater == 0 {
		c.Cluster.RebalanceHighWater = 0.75
	}
	if c.Cluster.RetryLimit < 0 {
		return errors.New("config: retry_limit must be non-negative")
	}
	if c.Cluster.RetryLimit == 0 {
		c.Cluster.RetryLimit = 2
	}
	if err := c.Scheduling.validate(c.Global.KeepAliveSec); err != nil {
		return err
	}
	if c.Proxy.CacheEntries < 0 {
		return errors.New("config: proxy cache_entries must be non-negative")
	}
	if c.Proxy.CacheEntries == 0 {
		c.Proxy.CacheEntries = 256
	}
	if len(c.Nodes) == 0 {
		return errors.New("config: at least one node required")
	}
	seen := make(map[string]bool, len(c.Nodes))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Name == "" {
			return fmt.Errorf("config: nodes[%d] missing name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("config: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
		if n.Listen == "" {
			n.Listen = "127.0.0.1:0"
		}
		if n.GPUCount < 0 {
			return fmt.Errorf("config: node %q gpu_count must be non-negative", n.Name)
		}
		nodeCfg := c.NodeConfig(i)
		if err := nodeCfg.Validate(catalog); err != nil {
			return fmt.Errorf("config: node %q: %w", n.Name, err)
		}
		// Validate fills per-model defaults; copy them back.
		n.Models = nodeCfg.Models
		for j := range n.Models {
			m := &n.Models[j]
			if m.Class == "" {
				continue
			}
			if !c.Scheduling.Enabled() {
				return fmt.Errorf("config: node %q model %q names class %q but no scheduling classes are declared", n.Name, m.Name, m.Class)
			}
			if _, ok := c.Scheduling.Class(m.Class); !ok {
				return fmt.Errorf("config: node %q model %q names undeclared class %q", n.Name, m.Name, m.Class)
			}
		}
	}
	return nil
}

// NodeConfig assembles the single-node Config for the i-th node: the
// shared global parameters with the node's own listen address and model
// list.
func (c *Cluster) NodeConfig(i int) Config {
	n := c.Nodes[i]
	return Config{
		Listen:  n.Listen,
		Testbed: c.Testbed,
		Global:  c.Global,
		Models:  append([]Model(nil), n.Models...),
	}
}

// ProxyCacheEntries returns the response-cache bound the front door
// should use (0 when the cache is disabled).
func (c *Cluster) ProxyCacheEntries() int {
	if c.Proxy.CacheDisabled {
		return 0
	}
	return c.Proxy.CacheEntries
}

// Heartbeat returns the heartbeat probe interval as a Duration.
func (c *Cluster) Heartbeat() time.Duration {
	return time.Duration(c.Cluster.HeartbeatSec * float64(time.Second))
}

// RebalanceEvery returns the rebalancer sweep interval (zero =
// disabled).
func (c *Cluster) RebalanceEvery() time.Duration {
	return time.Duration(c.Cluster.RebalanceSec * float64(time.Second))
}
