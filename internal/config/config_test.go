package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swapservellm/internal/models"
)

func validConfig() Config {
	cfg := Default()
	cfg.Models = []Model{
		{Name: "llama3.2:1b-fp16", Engine: "ollama"},
		{Name: "deepseek-r1:14b-fp16", Engine: "vllm"},
	}
	return cfg
}

func TestValidateFillsDefaults(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(models.Default()); err != nil {
		t.Fatal(err)
	}
	m := cfg.Models[0]
	if m.QueueCapacity != cfg.Global.QueueCapacity {
		t.Errorf("queue capacity default not applied: %d", m.QueueCapacity)
	}
	if m.StorageTier != "disk" {
		t.Errorf("storage tier default = %q", m.StorageTier)
	}
	if len(m.GPUs) != 1 || m.GPUs[0] != 0 {
		t.Errorf("GPUs default = %v", m.GPUs)
	}
	if !strings.Contains(m.Image, "ollama") {
		t.Errorf("default image = %q", m.Image)
	}
	if !strings.Contains(cfg.Models[1].Image, "vllm") {
		t.Errorf("default vllm image = %q", cfg.Models[1].Image)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty listen", func(c *Config) { c.Listen = "" }},
		{"bad testbed", func(c *Config) { c.Testbed = "v100" }},
		{"no models", func(c *Config) { c.Models = nil }},
		{"zero queue", func(c *Config) { c.Global.QueueCapacity = 0 }},
		{"negative timeout", func(c *Config) { c.Global.ResponseTimeoutSec = -1 }},
		{"bad tier", func(c *Config) { c.Global.StorageTier = "tape" }},
		{"unknown model", func(c *Config) { c.Models[0].Name = "nonexistent:1b" }},
		{"missing model name", func(c *Config) { c.Models[0].Name = "" }},
		{"duplicate model", func(c *Config) { c.Models[1] = c.Models[0] }},
		{"bad engine", func(c *Config) { c.Models[0].Engine = "llamafile" }},
		{"util > 1", func(c *Config) { c.Models[0].GPUMemoryUtilization = 1.5 }},
		{"negative gpu", func(c *Config) { c.Models[0].GPUs = []int{-1} }},
		{"huge gpu index", func(c *Config) { c.Models[0].GPUs = []int{99} }},
		{"negative model queue", func(c *Config) { c.Models[0].QueueCapacity = -2 }},
		{"bad model tier", func(c *Config) { c.Models[0].StorageTier = "floppy" }},
		{"negative init timeout", func(c *Config) { c.Models[0].InitTimeoutSec = -3 }},
	}
	for _, c := range cases {
		cfg := validConfig()
		c.mut(&cfg)
		if err := cfg.Validate(models.Default()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseJSON(t *testing.T) {
	in := `{
		"listen": "127.0.0.1:9001",
		"testbed": "a100",
		"global": {"response_timeout_sec": 30, "queue_capacity": 8, "use_sleep_mode": true, "storage_tier": "tmpfs"},
		"models": [
			{"name": "deepseek-r1:7b-q4", "engine": "ollama", "gpus": [0], "keep_warm": true}
		]
	}`
	cfg, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(models.Default()); err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "127.0.0.1:9001" || cfg.Testbed != "a100" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if !cfg.Global.UseSleepMode || cfg.Global.QueueCapacity != 8 {
		t.Fatalf("global = %+v", cfg.Global)
	}
	if !cfg.Models[0].KeepWarm || cfg.Models[0].StorageTier != "tmpfs" {
		t.Fatalf("model = %+v", cfg.Models[0])
	}
	if cfg.ResponseTimeout() != 30*time.Second {
		t.Fatalf("timeout = %v", cfg.ResponseTimeout())
	}
}

func TestParseUnknownField(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"liisten": "x"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	content := `{"models": [{"name": "llama3.2:1b-fp16", "engine": "vllm"}]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults applied.
	if cfg.Listen != "127.0.0.1:0" || cfg.Testbed != "h100" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestInitTimeout(t *testing.T) {
	m := Model{InitTimeoutSec: 2.5}
	if m.InitTimeout() != 2500*time.Millisecond {
		t.Fatalf("InitTimeout = %v", m.InitTimeout())
	}
	var zero Model
	if zero.InitTimeout() != 0 {
		t.Fatal("zero timeout should be 0")
	}
}
