// Package config defines SwapServeLLM's deployment configuration: global
// runtime parameters and the per-model backend list (§3.2). Configurations
// load from JSON, are validated against the model catalog, and carry the
// global/local parameter split the paper describes (engine-wide options
// such as response timeout and KV-cache type vs model-specific options
// such as container image and GPU memory utilization).
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"swapservellm/internal/models"
	"swapservellm/internal/perfmodel"
)

// Global holds engine-wide parameters shared by every backend.
type Global struct {
	// ResponseTimeoutSec bounds how long a queued request may wait for its
	// backend, in simulated seconds. Zero means no timeout.
	ResponseTimeoutSec float64 `json:"response_timeout_sec"`
	// QueueCapacity is the default per-backend request queue depth.
	QueueCapacity int `json:"queue_capacity"`
	// KVCacheType selects the engines' KV-cache dtype (informational).
	KVCacheType string `json:"kv_cache_type"`
	// AuthToken, when set, must be presented as a Bearer token.
	AuthToken string `json:"auth_token"`
	// UseSleepMode enables the vLLM sleep-mode fast path during swap-out
	// (§4.2).
	UseSleepMode bool `json:"use_sleep_mode"`
	// KeepAliveSec proactively swaps out backends idle for this many
	// simulated seconds (0 disables the idle reaper). Generalizes
	// Ollama's keep_alive to every engine.
	KeepAliveSec float64 `json:"keep_alive_sec"`
	// SnapshotHostCapGiB bounds the host memory available for checkpoint
	// images (0 = unlimited). The paper's H100 testbed has 221 GB RAM.
	SnapshotHostCapGiB float64 `json:"snapshot_host_cap_gib"`
	// SnapshotSpill spills least-recently-used checkpoint images to disk
	// when the host cap is exceeded, instead of failing the swap-out.
	SnapshotSpill bool `json:"snapshot_spill"`
	// CkptStore enables the content-addressed checkpoint store: images
	// decompose into deduplicated chunks, re-checkpoints write deltas
	// only, spills demote by chunk reference, and restores fetch each
	// chunk from the cheapest tier (local RAM, peer RAM, local disk,
	// peer disk).
	CkptStore bool `json:"ckpt_store"`
	// SnapshotDemoteSec demotes swapped-out backends whose snapshot has
	// sat unused in host RAM for this many simulated seconds down to the
	// disk tier (0 disables the second-level demotion). Requires
	// CkptStore for chunk-aware demotion; shared chunks keep their host
	// copy.
	SnapshotDemoteSec float64 `json:"snapshot_demote_sec"`
	// Prefetch enables the predictive prefetcher: backends whose next
	// request is expected within their swap-in latency are proactively
	// swapped in (§2.1's workload-metric autoscaling).
	Prefetch bool `json:"prefetch"`
	// GPUMonitorSec samples GPU memory/utilization series every this many
	// simulated seconds (0 disables the monitor loop). §3.2's continuous
	// GPU monitoring.
	GPUMonitorSec float64 `json:"gpu_monitor_sec"`
	// CompileCache shares compilation artifacts (torch.compile cache,
	// TensorRT plans) across the deployment's cold starts.
	CompileCache bool `json:"compile_cache"`
	// PipelinedSwap selects the full-duplex swap-exchange fast path: a
	// target's restore starts as soon as the victim's checkpoint frees
	// its first chunks, instead of after the checkpoint completes. Off
	// by default so the sequential baseline remains selectable for A/B.
	PipelinedSwap bool `json:"pipelined_swap"`
	// SwapChunkMiB sets the checkpoint/restore transfer chunk size in
	// MiB (0 = the driver default, 1 GiB). Smaller chunks tighten the
	// pipeline overlap at the cost of more bookkeeping.
	SwapChunkMiB int `json:"swap_chunk_mib"`
	// StorageTier is the default tier model weights are read from.
	StorageTier string `json:"storage_tier"`
}

// Model configures one backend: a (model, engine) pair served from its own
// container.
type Model struct {
	// Name is the catalog model name, e.g. "deepseek-r1:14b-fp16".
	Name string `json:"name"`
	// Engine selects the backend engine: vllm, ollama, sglang, trtllm.
	Engine string `json:"engine"`
	// Image is the container image reference.
	Image string `json:"image"`
	// GPUMemoryUtilization overrides the engine's pooled-memory fraction.
	GPUMemoryUtilization float64 `json:"gpu_memory_utilization,omitempty"`
	// GPUs lists the device indices the backend spans (tensor parallel
	// when more than one). Defaults to [0].
	GPUs []int `json:"gpus,omitempty"`
	// InitTimeoutSec bounds engine initialization in simulated seconds.
	InitTimeoutSec float64 `json:"init_timeout_sec,omitempty"`
	// QueueCapacity overrides the global queue depth.
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// StorageTier overrides the global weight-storage tier.
	StorageTier string `json:"storage_tier,omitempty"`
	// KeepWarm leaves the backend running after initialization instead of
	// snapshotting and pausing it.
	KeepWarm bool `json:"keep_warm,omitempty"`
	// Class assigns the model to a scheduling priority class declared in
	// the cluster's scheduling section. Empty means the default class.
	Class string `json:"class,omitempty"`
}

// Config is the full deployment configuration.
type Config struct {
	// Listen is the router's bind address, e.g. "127.0.0.1:0".
	Listen string `json:"listen"`
	// Testbed selects the hardware profile: "a100" or "h100".
	Testbed string `json:"testbed"`
	// Global parameters apply to every backend.
	Global Global `json:"global"`
	// Models lists the configured backends.
	Models []Model `json:"models"`
}

// Default returns a configuration with sensible defaults and no models.
func Default() Config {
	return Config{
		Listen:  "127.0.0.1:0",
		Testbed: "h100",
		Global: Global{
			ResponseTimeoutSec: 600,
			QueueCapacity:      64,
			KVCacheType:        "fp16",
			StorageTier:        string(perfmodel.TierDisk),
		},
	}
}

// Parse decodes a JSON configuration, applying defaults for omitted
// fields.
func Parse(r io.Reader) (Config, error) {
	cfg := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("config: parsing: %w", err)
	}
	return cfg, nil
}

// Load reads and parses a configuration file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Validate checks the configuration against the model catalog and the
// supported engines/testbeds (§3.2's per-model validation step).
func (c *Config) Validate(catalog *models.Catalog) error {
	if c.Listen == "" {
		return errors.New("config: listen address required")
	}
	if _, ok := perfmodel.TestbedByName(c.Testbed); !ok {
		return fmt.Errorf("config: unknown testbed %q (want a100 or h100)", c.Testbed)
	}
	if c.Global.QueueCapacity <= 0 {
		return errors.New("config: global queue_capacity must be positive")
	}
	if c.Global.ResponseTimeoutSec < 0 {
		return errors.New("config: response_timeout_sec must be non-negative")
	}
	if c.Global.KeepAliveSec < 0 {
		return errors.New("config: keep_alive_sec must be non-negative")
	}
	if c.Global.SnapshotHostCapGiB < 0 {
		return errors.New("config: snapshot_host_cap_gib must be non-negative")
	}
	if c.Global.SnapshotDemoteSec < 0 {
		return errors.New("config: snapshot_demote_sec must be non-negative")
	}
	if c.Global.GPUMonitorSec < 0 {
		return errors.New("config: gpu_monitor_sec must be non-negative")
	}
	if c.Global.SwapChunkMiB < 0 {
		return errors.New("config: swap_chunk_mib must be non-negative")
	}
	if err := validTier(c.Global.StorageTier); err != nil {
		return err
	}
	if len(c.Models) == 0 {
		return errors.New("config: at least one model required")
	}
	seen := make(map[string]bool, len(c.Models))
	for i := range c.Models {
		m := &c.Models[i]
		if m.Name == "" {
			return fmt.Errorf("config: models[%d] missing name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("config: duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if _, ok := catalog.Lookup(m.Name); !ok {
			return fmt.Errorf("config: model %q not in catalog", m.Name)
		}
		if !perfmodel.EngineKind(m.Engine).Valid() {
			return fmt.Errorf("config: model %q has unsupported engine %q", m.Name, m.Engine)
		}
		if m.GPUMemoryUtilization < 0 || m.GPUMemoryUtilization > 1 {
			return fmt.Errorf("config: model %q gpu_memory_utilization must be in [0,1]", m.Name)
		}
		if len(m.GPUs) == 0 {
			m.GPUs = []int{0}
		}
		for _, g := range m.GPUs {
			if g < 0 || g >= maxGPUs {
				return fmt.Errorf("config: model %q references invalid GPU %d", m.Name, g)
			}
		}
		if m.QueueCapacity < 0 {
			return fmt.Errorf("config: model %q queue_capacity must be non-negative", m.Name)
		}
		if m.QueueCapacity == 0 {
			m.QueueCapacity = c.Global.QueueCapacity
		}
		if m.StorageTier == "" {
			m.StorageTier = c.Global.StorageTier
		}
		if err := validTier(m.StorageTier); err != nil {
			return fmt.Errorf("config: model %q: %w", m.Name, err)
		}
		if m.InitTimeoutSec < 0 {
			return fmt.Errorf("config: model %q init_timeout_sec must be non-negative", m.Name)
		}
		if m.Image == "" {
			m.Image = defaultImage(perfmodel.EngineKind(m.Engine))
		}
	}
	return nil
}

// maxGPUs bounds config GPU indices; the simulated topology can be
// extended beyond the testbed's physical single GPU for multi-GPU
// experiments.
const maxGPUs = 16

// validTier checks a storage tier string.
func validTier(t string) error {
	switch perfmodel.StorageTier(t) {
	case perfmodel.TierDisk, perfmodel.TierTmpfs:
		return nil
	}
	return fmt.Errorf("config: unknown storage tier %q", t)
}

// defaultImage returns the conventional container image for an engine.
func defaultImage(e perfmodel.EngineKind) string {
	switch e {
	case perfmodel.EngineVLLM:
		return "docker.io/vllm/vllm-openai:v0.9.2"
	case perfmodel.EngineOllama:
		return "docker.io/ollama/ollama:0.9.6"
	case perfmodel.EngineSGLang:
		return "docker.io/lmsysorg/sglang:v0.4.9"
	case perfmodel.EngineTRTLLM:
		return "nvcr.io/nvidia/tensorrt-llm:1.0rc0"
	default:
		return "scratch"
	}
}

// ResponseTimeout returns the global response timeout as a Duration.
func (c *Config) ResponseTimeout() time.Duration {
	return time.Duration(c.Global.ResponseTimeoutSec * float64(time.Second))
}

// KeepAlive returns the idle-reap window as a Duration (zero = disabled).
func (c *Config) KeepAlive() time.Duration {
	return time.Duration(c.Global.KeepAliveSec * float64(time.Second))
}

// InitTimeout returns the model's init timeout (zero when unset).
func (m *Model) InitTimeout() time.Duration {
	return time.Duration(m.InitTimeoutSec * float64(time.Second))
}
