// Package retry provides the small bounded-retry policy shared by the
// control plane and the checkpoint driver for operations whose failures
// are transient by construction (chaos-injected faults, races with
// concurrent reclaim). Both the controller's swap orchestration and
// Driver.Suspend's unlock rollback previously hand-rolled the same
// four-attempt loop; this package is the single home for it.
package retry

// DefaultAttempts is the bounded number of tries for a transient
// operation. Four attempts absorbs the fault rates used by the chaos
// soak (p <= 0.25 per site) with negligible residual failure
// probability while still terminating quickly when a failure is
// persistent.
const DefaultAttempts = 4

// Transient runs op up to DefaultAttempts times, returning nil on the
// first success or the last error once attempts are exhausted.
func Transient(op func() error) error {
	return N(DefaultAttempts, op)
}

// N runs op up to attempts times (minimum one), returning nil on the
// first success or the last error.
func N(attempts int, op func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}
