package retry

import (
	"errors"
	"testing"
)

func TestTransientSucceedsAfterFaults(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Transient(func() error {
		calls++
		if calls < 3 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Transient = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestTransientExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Transient(func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Transient = %v, want %v", err, boom)
	}
	if calls != DefaultAttempts {
		t.Fatalf("calls = %d, want %d", calls, DefaultAttempts)
	}
}

func TestNClampsToOneAttempt(t *testing.T) {
	calls := 0
	if err := N(0, func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}
