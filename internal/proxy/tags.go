package proxy

import (
	"fmt"

	"swapservellm/internal/models"
	"swapservellm/internal/proxy/ir"
)

// TagFor renders one catalog model as an Ollama GET /api/tags entry —
// shared by the gateway and the node router so both protocol listings
// describe the same deployment.
func TagFor(name string, m models.Model) ir.OllamaTag {
	return ir.OllamaTag{
		Name:  name,
		Model: name,
		Size:  m.WeightBytes(),
		Details: ir.OllamaTagDetails{
			Family:            string(m.Family),
			ParameterSize:     fmt.Sprintf("%.1fB", m.ParamsB()),
			QuantizationLevel: string(m.Quant),
		},
	}
}
