package proxy

import (
	"net/http"
	"strings"

	"swapservellm/internal/proxy/ir"
)

// Protocol names a client wire protocol with a registered codec.
type Protocol string

// Registered protocols.
const (
	ProtocolOpenAI Protocol = "openai"
	ProtocolOllama Protocol = "ollama"
)

// Endpoint is one row of the declarative routing table: everything the
// gateway and node router need to serve a path — method, protocol
// family (which codec decodes it), request family, stream framing
// toward the client, priority-class tag, cacheability, and the
// canonical upstream path the request forwards to. Adding an endpoint
// is adding a row.
type Endpoint struct {
	// Path is the client-facing route.
	Path string
	// Method is the accepted HTTP method.
	Method string
	// Protocol selects the codec that speaks this endpoint's wire
	// format.
	Protocol Protocol
	// Family is the request family (canonical payload shape).
	Family ir.Family
	// Framing is the stream framing toward this endpoint's clients
	// (empty for endpoints that never stream).
	Framing ir.Framing
	// Class is the default priority-class tag for admission control,
	// used when neither the client header nor the model configuration
	// names a class. Only honored when the deployment declares it.
	Class string
	// Cacheable marks responses eligible for the front-door response
	// cache (non-streaming requests only).
	Cacheable bool
	// Upstream is the canonical node/engine path the request forwards
	// to (empty for endpoints the gateway answers itself).
	Upstream string
}

// Streaming reports whether the endpoint can stream.
func (e Endpoint) Streaming() bool { return e.Framing != "" }

// MetricName renders the endpoint path as a metric-name fragment
// ("/v1/chat/completions" → "v1_chat_completions").
func (e Endpoint) MetricName() string {
	name := strings.TrimPrefix(e.Path, "/")
	return strings.NewReplacer("/", "_", ".", "_", "-", "_").Replace(name)
}

// DefaultTable returns the front door's endpoint table: the OpenAI
// family (/v1/*, SSE framing) and the Ollama family (/api/*, NDJSON
// framing), all translating through the IR onto the same canonical
// upstream paths.
func DefaultTable() []Endpoint {
	return []Endpoint{
		{Path: "/v1/chat/completions", Method: http.MethodPost, Protocol: ProtocolOpenAI,
			Family: ir.FamilyChat, Framing: ir.FramingSSE, Class: "interactive",
			Cacheable: true, Upstream: "/v1/chat/completions"},
		{Path: "/v1/completions", Method: http.MethodPost, Protocol: ProtocolOpenAI,
			Family: ir.FamilyCompletion, Framing: ir.FramingSSE, Class: "interactive",
			Cacheable: true, Upstream: "/v1/completions"},
		{Path: "/v1/embeddings", Method: http.MethodPost, Protocol: ProtocolOpenAI,
			Family: ir.FamilyEmbeddings, Class: "batch",
			Cacheable: true, Upstream: "/v1/embeddings"},
		{Path: "/v1/rerank", Method: http.MethodPost, Protocol: ProtocolOpenAI,
			Family: ir.FamilyRerank, Class: "batch",
			Cacheable: true, Upstream: "/v1/rerank"},
		{Path: "/v1/models", Method: http.MethodGet, Protocol: ProtocolOpenAI,
			Family: ir.FamilyList},
		{Path: "/api/chat", Method: http.MethodPost, Protocol: ProtocolOllama,
			Family: ir.FamilyChat, Framing: ir.FramingNDJSON, Class: "interactive",
			Cacheable: true, Upstream: "/v1/chat/completions"},
		{Path: "/api/generate", Method: http.MethodPost, Protocol: ProtocolOllama,
			Family: ir.FamilyGenerate, Framing: ir.FramingNDJSON, Class: "interactive",
			Cacheable: true, Upstream: "/v1/chat/completions"},
		{Path: "/api/tags", Method: http.MethodGet, Protocol: ProtocolOllama,
			Family: ir.FamilyList},
	}
}
