package proxy

import (
	"fmt"
	"strings"

	"swapservellm/internal/proxy/ir"
)

// StreamTranslator converts one upstream SSE event at a time into the
// client's framing. Upstream streams are always canonical OpenAI SSE;
// OpenAI clients get a byte-exact passthrough, Ollama clients get each
// event re-encoded as an NDJSON line. Because the mapping is 1:1 per
// upstream event, the gateway's delivered-event counter means the same
// thing under both framings — which is what lets exact-resume failover
// generalize from SSE to NDJSON without new bookkeeping.
type StreamTranslator struct {
	family      ir.Family
	out         ir.Codec
	passthrough bool
}

// Passthrough reports whether events are forwarded byte-exact.
func (t *StreamTranslator) Passthrough() bool { return t.passthrough }

// ContentType returns the client-facing stream content type.
func (t *StreamTranslator) ContentType() string {
	if t.passthrough {
		return ir.FramingSSE.ContentType()
	}
	return t.out.Framing().ContentType()
}

// Frames translates one upstream SSE event (the "data: ..." payload
// line, without the trailing blank line) into zero or more client
// frames. done reports that the upstream stream is complete; the
// caller must stop relaying after it. A passthrough translator echoes
// the event verbatim in SSE framing.
func (t *StreamTranslator) Frames(event string) (frames []byte, done bool, err error) {
	if t.passthrough {
		done = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(event), "data:")) == ir.DoneSentinel
		return []byte(event + "\n\n"), done, nil
	}
	ev, err := (ir.OpenAICodec{}).DecodeStreamEvent(t.family, []byte(event))
	if err != nil {
		return nil, false, fmt.Errorf("%w: stream event: %w", ErrTranslate, err)
	}
	frames, err = t.out.EncodeStreamEvent(t.family, ev)
	if err != nil {
		return nil, false, fmt.Errorf("%w: stream event: %w", ErrTranslate, err)
	}
	return frames, ev.Done, nil
}
