package proxy

import "errors"

// Package error vocabulary. Call sites wrap these with %w and callers
// classify with errors.Is, per the repo's error conventions.
var (
	// ErrUnknownProtocol marks a protocol name with no registered codec.
	ErrUnknownProtocol = errors.New("proxy: unknown protocol")
	// ErrUnknownEndpoint marks a path absent from the endpoint table.
	ErrUnknownEndpoint = errors.New("proxy: unknown endpoint")
	// ErrTranslate marks a protocol-translation failure at the front
	// door (including chaos-injected ones at the proxy.translate site);
	// the gateway answers it with a well-formed 503 rather than a 400,
	// because the client's payload may have been valid.
	ErrTranslate = errors.New("proxy: translating request")
)
