package ir

import (
	"encoding/json"
	"fmt"
	"strings"
)

// OpenAICodec translates the OpenAI wire protocol (/v1/*, SSE
// streaming). Since the IR's canonical payloads are the OpenAI shapes,
// this codec is mostly marshal/unmarshal plus validation — it also
// defines the canonical upstream encoding every other protocol
// translates through.
type OpenAICodec struct{}

// Protocol implements Codec.
func (OpenAICodec) Protocol() string { return "openai" }

// Framing implements Codec.
func (OpenAICodec) Framing() Framing { return FramingSSE }

// DecodeRequest implements Codec.
func (OpenAICodec) DecodeRequest(f Family, body []byte) (*Request, error) {
	req := &Request{Family: f}
	switch f {
	case FamilyChat:
		var p ChatCompletionRequest
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed JSON: %w", ErrDecode, err)
		}
		req.Chat, req.Model, req.Stream = &p, p.Model, p.Stream
	case FamilyCompletion:
		var p CompletionRequest
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed JSON: %w", ErrDecode, err)
		}
		req.Completion, req.Model, req.Stream = &p, p.Model, p.Stream
	case FamilyEmbeddings:
		var p EmbeddingsRequest
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed JSON: %w", ErrDecode, err)
		}
		req.Embeddings, req.Model = &p, p.Model
	case FamilyRerank:
		var p RerankRequest
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed JSON: %w", ErrDecode, err)
		}
		req.Rerank, req.Model = &p, p.Model
	default:
		return nil, fmt.Errorf("%w: openai codec cannot decode %q", ErrUnsupported, f)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeRequest implements Codec: the canonical upstream encoding. A
// FamilyGenerate request encodes as its canonical chat payload, so the
// upstream node and engine see one protocol.
func (OpenAICodec) EncodeRequest(req *Request) ([]byte, error) {
	var v interface{}
	switch req.Family {
	case FamilyChat, FamilyGenerate:
		v = req.Chat
	case FamilyCompletion:
		v = req.Completion
	case FamilyEmbeddings:
		v = req.Embeddings
	case FamilyRerank:
		v = req.Rerank
	default:
		return nil, fmt.Errorf("%w: openai codec cannot encode %q", ErrUnsupported, req.Family)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ir: encoding %s request: %w", req.Family, err)
	}
	return b, nil
}

// DecodeResponse implements Codec.
func (OpenAICodec) DecodeResponse(f Family, body []byte) (*Response, error) {
	resp := &Response{Family: f}
	var err error
	switch f {
	case FamilyChat, FamilyGenerate:
		var p ChatCompletionResponse
		err = json.Unmarshal(body, &p)
		resp.Chat = &p
	case FamilyCompletion:
		var p CompletionResponse
		err = json.Unmarshal(body, &p)
		resp.Completion = &p
	case FamilyEmbeddings:
		var p EmbeddingsResponse
		err = json.Unmarshal(body, &p)
		resp.Embeddings = &p
	case FamilyRerank:
		var p RerankResponse
		err = json.Unmarshal(body, &p)
		resp.Rerank = &p
	default:
		return nil, fmt.Errorf("%w: openai codec cannot decode %q response", ErrUnsupported, f)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: malformed %s response: %w", ErrDecode, f, err)
	}
	return resp, nil
}

// EncodeResponse implements Codec.
func (OpenAICodec) EncodeResponse(resp *Response) ([]byte, error) {
	var v interface{}
	switch resp.Family {
	case FamilyChat, FamilyGenerate:
		v = resp.Chat
	case FamilyCompletion:
		v = resp.Completion
	case FamilyEmbeddings:
		v = resp.Embeddings
	case FamilyRerank:
		v = resp.Rerank
	default:
		return nil, fmt.Errorf("%w: openai codec cannot encode %q response", ErrUnsupported, resp.Family)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ir: encoding %s response: %w", resp.Family, err)
	}
	return b, nil
}

// DecodeStreamEvent implements Codec: frame is one SSE data payload
// (the text after "data:", trimmed of framing).
func (OpenAICodec) DecodeStreamEvent(f Family, frame []byte) (*StreamEvent, error) {
	payload := trimDataPrefix(string(frame))
	if payload == DoneSentinel {
		return &StreamEvent{Done: true}, nil
	}
	var chunk ChatCompletionChunk
	if err := json.Unmarshal([]byte(payload), &chunk); err != nil {
		return nil, fmt.Errorf("%w: malformed stream chunk: %w", ErrDecode, err)
	}
	return &StreamEvent{Chunk: &chunk}, nil
}

// EncodeStreamEvent implements Codec: each event renders as one
// "data: ...\n\n" frame. An event that is both Done and carries a
// chunk (the NDJSON folded finish line) renders as two frames — the
// finish chunk followed by the [DONE] sentinel.
func (OpenAICodec) EncodeStreamEvent(f Family, ev *StreamEvent) ([]byte, error) {
	var out []byte
	if ev.Chunk != nil {
		b, err := json.Marshal(ev.Chunk)
		if err != nil {
			return nil, fmt.Errorf("ir: encoding stream chunk: %w", err)
		}
		out = append(out, []byte("data: ")...)
		out = append(out, b...)
		out = append(out, []byte("\n\n")...)
	}
	if ev.Done {
		out = append(out, []byte("data: "+DoneSentinel+"\n\n")...)
	}
	return out, nil
}

// trimDataPrefix strips an optional SSE "data:" prefix and surrounding
// whitespace from an event payload.
func trimDataPrefix(s string) string {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "data:"); ok {
		s = strings.TrimSpace(rest)
	}
	return s
}
