package ir

import (
	"bytes"
	"testing"
)

// fuzzFamiliesOpenAI are the families the OpenAI codec decodes.
var fuzzFamiliesOpenAI = []Family{FamilyChat, FamilyCompletion, FamilyEmbeddings, FamilyRerank}

// FuzzIRDecodeOpenAI checks the OpenAI codec never panics and that any
// body it accepts re-encodes to a stable canonical fixed point:
// decode(encode(decode(x))) must succeed and encode identically (the
// property the response-cache key relies on).
func FuzzIRDecodeOpenAI(f *testing.F) {
	f.Add([]byte(goldenOpenAIChat))
	f.Add([]byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`))
	f.Add([]byte(`{"model":"m","messages":[{"role":"user","content":[{"type":"text","text":"a"},{"type":"image_url","image_url":{"url":"u"}}]}]}`))
	f.Add([]byte(`{"model":"m","prompt":"complete me","max_tokens":4}`))
	f.Add([]byte(`{"model":"m","prompt":["a","b"]}`))
	f.Add([]byte(`{"model":"m","input":"embed me"}`))
	f.Add([]byte(`{"model":"m","input":["a","b","c"]}`))
	f.Add([]byte(`{"model":"m","query":"q","documents":["d1","d2"],"top_n":1}`))
	f.Add([]byte(`data: {"object":"chat.completion.chunk","choices":[{"index":0,"delta":{"role":"assistant","content":"x"},"finish_reason":null}]}`))
	f.Add([]byte(`data: [DONE]`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		c := OpenAICodec{}
		for _, fam := range fuzzFamiliesOpenAI {
			req, err := c.DecodeRequest(fam, body)
			if err != nil {
				continue
			}
			enc, err := c.EncodeRequest(req)
			if err != nil {
				t.Fatalf("%s: accepted body failed to encode: %v", fam, err)
			}
			req2, err := c.DecodeRequest(fam, enc)
			if err != nil {
				t.Fatalf("%s: canonical encoding failed to re-decode: %v\nencoding: %s", fam, err, enc)
			}
			enc2, err := c.EncodeRequest(req2)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", fam, err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%s: canonical encoding is not a fixed point:\n first  %s\n second %s", fam, enc, enc2)
			}
		}
		if ev, err := c.DecodeStreamEvent(FamilyChat, body); err == nil {
			if _, err := c.EncodeStreamEvent(FamilyChat, ev); err != nil {
				t.Fatalf("accepted stream event failed to encode: %v", err)
			}
		}
	})
}

// fuzzFamiliesOllama are the families the Ollama codec decodes.
var fuzzFamiliesOllama = []Family{FamilyChat, FamilyGenerate}

// FuzzIRDecodeOllama checks the Ollama codec never panics and that the
// canonical upstream encoding of any accepted body is decodable by the
// OpenAI codec (every Ollama request must be forwardable).
func FuzzIRDecodeOllama(f *testing.F) {
	f.Add([]byte(goldenOllamaChat))
	f.Add([]byte(goldenOllamaGenerate))
	f.Add([]byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`))
	f.Add([]byte(`{"model":"m","prompt":"hi","images":["aGk="]}`))
	f.Add([]byte(`{"model":"m","messages":[{"role":"user","content":"hi","images":["aGk="]}],"stream":false}`))
	f.Add([]byte(`{"model":"m","created_at":"1970-01-01T00:00:01Z","message":{"role":"assistant","content":"x"},"done":false}`))
	f.Add([]byte(`{"model":"m","created_at":"1970-01-01T00:00:01Z","response":"x","done":true,"done_reason":"stop"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		c := OllamaCodec{}
		for _, fam := range fuzzFamiliesOllama {
			req, err := c.DecodeRequest(fam, body)
			if err != nil {
				continue
			}
			enc, err := c.EncodeRequest(req)
			if err != nil {
				t.Fatalf("%s: accepted body failed to re-encode: %v", fam, err)
			}
			if _, err := c.DecodeRequest(fam, enc); err != nil {
				t.Fatalf("%s: re-encoding failed to decode: %v\nencoding: %s", fam, err, enc)
			}
			canonical, err := (OpenAICodec{}).EncodeRequest(req)
			if err != nil {
				t.Fatalf("%s: canonical upstream encoding: %v", fam, err)
			}
			if _, err := (OpenAICodec{}).DecodeRequest(FamilyChat, canonical); err != nil {
				t.Fatalf("%s: upstream cannot decode forwarded body: %v\nbody: %s", fam, err, canonical)
			}
			if ev, err := c.DecodeStreamEvent(fam, body); err == nil {
				if _, err := c.EncodeStreamEvent(fam, ev); err != nil {
					t.Fatalf("%s: accepted stream line failed to encode: %v", fam, err)
				}
			}
		}
	})
}
