// Package ir is the protocol-neutral intermediate representation the
// multi-protocol front door translates through. Every client wire
// format (OpenAI /v1/*, Ollama /api/*) decodes into an ir.Request,
// forwards upstream in the canonical OpenAI encoding the simulated
// engines speak, and re-encodes responses and stream events back into
// the client's wire format and framing (SSE or NDJSON). Because the
// canonical form is a pure function of the client request, two clients
// asking the same question through different protocols share one cache
// entry and one deterministic engine transcript — which is also what
// makes cross-protocol failover resume exact.
//
// The wire structs themselves (Message, ChatCompletionRequest, ...)
// live here too; internal/openai re-exports them as type aliases for
// compatibility with pre-IR callers.
package ir

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
)

// Family identifies the request family of an endpoint: which canonical
// payload shape it carries and which engine phase serves it.
type Family string

// Request families served by the front door.
const (
	// FamilyChat is chat completions (OpenAI /v1/chat/completions,
	// Ollama /api/chat). Canonical payload: ChatCompletionRequest.
	FamilyChat Family = "chat"
	// FamilyGenerate is Ollama's prompt-style /api/generate; it
	// canonicalizes to a single-user-turn chat request so both protocols
	// reach the same engine path.
	FamilyGenerate Family = "generate"
	// FamilyCompletion is the legacy OpenAI /v1/completions.
	FamilyCompletion Family = "completion"
	// FamilyEmbeddings is /v1/embeddings (batch text → vectors).
	FamilyEmbeddings Family = "embeddings"
	// FamilyRerank is /v1/rerank (query + documents → relevance scores).
	FamilyRerank Family = "rerank"
	// FamilyList is a model listing endpoint (/v1/models, /api/tags);
	// it has no canonical request payload.
	FamilyList Family = "list"
)

// Framing identifies a stream wire framing.
type Framing string

// Stream framings.
const (
	// FramingSSE is server-sent events: "data: {json}\n\n" frames with a
	// terminal "data: [DONE]" sentinel (the OpenAI convention).
	FramingSSE Framing = "sse"
	// FramingNDJSON is newline-delimited JSON: one object per line, the
	// final line carrying "done": true (the Ollama convention).
	FramingNDJSON Framing = "ndjson"
)

// ContentType returns the HTTP Content-Type for the framing.
func (f Framing) ContentType() string {
	if f == FramingNDJSON {
		return "application/x-ndjson"
	}
	return "text/event-stream"
}

// DoneSentinel is the terminal SSE data payload.
const DoneSentinel = "[DONE]"

// Package error vocabulary. Codec failures wrap these so callers can
// classify with errors.Is.
var (
	// ErrDecode marks a payload the codec could not parse or validate.
	ErrDecode = errors.New("ir: decoding request")
	// ErrUnsupported marks a family the codec does not speak.
	ErrUnsupported = errors.New("ir: unsupported family")
)

// Request is the protocol-neutral form of one inference request.
// Exactly one canonical payload pointer is set, selected by Family
// (FamilyGenerate shares the Chat payload).
type Request struct {
	Family Family
	Model  string
	Stream bool

	Chat       *ChatCompletionRequest
	Completion *CompletionRequest
	Embeddings *EmbeddingsRequest
	Rerank     *RerankRequest
}

// Validate checks the canonical payload for the request's family.
// Payload validation failures are classified as ErrDecode.
func (r *Request) Validate() error {
	var err error
	switch r.Family {
	case FamilyChat, FamilyGenerate:
		if r.Chat == nil {
			return fmt.Errorf("%w: %s request missing chat payload", ErrDecode, r.Family)
		}
		err = r.Chat.Validate()
	case FamilyCompletion:
		if r.Completion == nil {
			return fmt.Errorf("%w: completion request missing payload", ErrDecode)
		}
		err = r.Completion.Validate()
	case FamilyEmbeddings:
		if r.Embeddings == nil {
			return fmt.Errorf("%w: embeddings request missing payload", ErrDecode)
		}
		err = r.Embeddings.Validate()
	case FamilyRerank:
		if r.Rerank == nil {
			return fmt.Errorf("%w: rerank request missing payload", ErrDecode)
		}
		err = r.Rerank.Validate()
	default:
		return fmt.Errorf("%w: %q", ErrUnsupported, r.Family)
	}
	if err != nil {
		return fmt.Errorf("%w: %w", ErrDecode, err)
	}
	return nil
}

// Response is the protocol-neutral form of one buffered (non-stream)
// response; exactly one payload pointer is set, selected by Family.
type Response struct {
	Family Family

	Chat       *ChatCompletionResponse
	Completion *CompletionResponse
	Embeddings *EmbeddingsResponse
	Rerank     *RerankResponse
}

// StreamEvent is one protocol-neutral stream increment. The canonical
// stream is the OpenAI chunk sequence; Done marks the terminal event.
// An SSE [DONE] sentinel decodes to {Done: true, Chunk: nil}; an NDJSON
// final line decodes to {Done: true, Chunk: <finish chunk>} because
// Ollama folds the finish metadata into its last frame.
type StreamEvent struct {
	Chunk *ChatCompletionChunk
	Done  bool
}

// Codec translates one protocol's wire format to and from the IR. A
// codec is stateless and safe for concurrent use.
type Codec interface {
	// Protocol names the wire protocol ("openai", "ollama").
	Protocol() string
	// Framing is the stream framing this protocol's clients expect.
	Framing() Framing
	// DecodeRequest parses and validates a client request body.
	DecodeRequest(f Family, body []byte) (*Request, error)
	// EncodeRequest renders a request in this protocol's wire format.
	EncodeRequest(req *Request) ([]byte, error)
	// DecodeResponse parses a buffered response body.
	DecodeResponse(f Family, body []byte) (*Response, error)
	// EncodeResponse renders a buffered response for this protocol's
	// clients.
	EncodeResponse(resp *Response) ([]byte, error)
	// DecodeStreamEvent parses one stream frame payload (SSE data
	// payload or NDJSON line, without framing delimiters).
	DecodeStreamEvent(f Family, frame []byte) (*StreamEvent, error)
	// EncodeStreamEvent renders one event as zero or more fully framed
	// bytes (delimiters included). A nil result means the event has no
	// frame in this protocol (e.g. the SSE [DONE] sentinel after an
	// NDJSON done-line already carried the finish metadata).
	EncodeStreamEvent(f Family, ev *StreamEvent) ([]byte, error)
}

// ReadSSEEvent reads one blank-line-delimited SSE event from br
// (without the trailing blank line). A non-nil error may accompany a
// final partial event.
func ReadSSEEvent(br *bufio.Reader) (string, error) {
	var lines []string
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		if err != nil {
			return strings.Join(lines, "\n"), err
		}
		if line == "" {
			if len(lines) == 0 {
				continue // leading keep-alive blank line
			}
			return strings.Join(lines, "\n"), nil
		}
		lines = append(lines, line)
	}
}

// ReadNDJSONLine reads one NDJSON frame (without the trailing newline).
// Blank lines are skipped. A non-nil error may accompany a final
// partial line.
func ReadNDJSONLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		if err != nil {
			return line, err
		}
		if line == "" {
			continue
		}
		return line, nil
	}
}
