package ir

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// OllamaMessage is one chat turn on the Ollama wire: plain text content
// with images attached as a base64 array rather than content parts.
type OllamaMessage struct {
	Role    string   `json:"role"`
	Content string   `json:"content"`
	Images  []string `json:"images,omitempty"`
}

// OllamaOptions is the generation-parameter envelope Ollama nests under
// "options".
type OllamaOptions struct {
	NumPredict  int      `json:"num_predict,omitempty"`
	Temperature *float64 `json:"temperature,omitempty"`
	Seed        *int64   `json:"seed,omitempty"`
}

// OllamaChatRequest is the POST /api/chat payload. Streaming defaults
// to ON (the Ollama convention — the opposite of OpenAI's).
type OllamaChatRequest struct {
	Model    string          `json:"model"`
	Messages []OllamaMessage `json:"messages"`
	Stream   *bool           `json:"stream,omitempty"`
	Options  *OllamaOptions  `json:"options,omitempty"`
}

// OllamaGenerateRequest is the POST /api/generate payload.
type OllamaGenerateRequest struct {
	Model   string         `json:"model"`
	Prompt  string         `json:"prompt"`
	System  string         `json:"system,omitempty"`
	Stream  *bool          `json:"stream,omitempty"`
	Images  []string       `json:"images,omitempty"`
	Options *OllamaOptions `json:"options,omitempty"`
}

// OllamaChatChunk is one NDJSON frame of a streamed /api/chat response;
// the same shape (full content, done:true) is the non-stream response.
type OllamaChatChunk struct {
	Model           string        `json:"model"`
	CreatedAt       string        `json:"created_at"`
	Message         OllamaMessage `json:"message"`
	Done            bool          `json:"done"`
	DoneReason      string        `json:"done_reason,omitempty"`
	PromptEvalCount int           `json:"prompt_eval_count,omitempty"`
	EvalCount       int           `json:"eval_count,omitempty"`
}

// OllamaGenerateChunk is one NDJSON frame of a streamed /api/generate
// response; the same shape is the non-stream response.
type OllamaGenerateChunk struct {
	Model           string `json:"model"`
	CreatedAt       string `json:"created_at"`
	Response        string `json:"response"`
	Done            bool   `json:"done"`
	DoneReason      string `json:"done_reason,omitempty"`
	PromptEvalCount int    `json:"prompt_eval_count,omitempty"`
	EvalCount       int    `json:"eval_count,omitempty"`
}

// OllamaTagDetails describes a model in GET /api/tags.
type OllamaTagDetails struct {
	Family            string `json:"family"`
	ParameterSize     string `json:"parameter_size"`
	QuantizationLevel string `json:"quantization_level"`
}

// OllamaTag is one model entry in GET /api/tags.
type OllamaTag struct {
	Name    string           `json:"name"`
	Model   string           `json:"model"`
	Size    int64            `json:"size"`
	Details OllamaTagDetails `json:"details"`
}

// OllamaTagsResponse is the GET /api/tags response body.
type OllamaTagsResponse struct {
	Models []OllamaTag `json:"models"`
}

// dataURIPrefix is how decoded Ollama images are carried in canonical
// image_url parts.
const dataURIPrefix = "data:image/png;base64,"

// OllamaCodec translates the Ollama wire protocol (/api/chat,
// /api/generate, NDJSON streaming) to and from the IR. /api/generate
// canonicalizes to a single-user-turn chat request, so both entry
// points reach the same deterministic engine transcript.
type OllamaCodec struct{}

// Protocol implements Codec.
func (OllamaCodec) Protocol() string { return "ollama" }

// Framing implements Codec.
func (OllamaCodec) Framing() Framing { return FramingNDJSON }

// DecodeRequest implements Codec.
func (OllamaCodec) DecodeRequest(f Family, body []byte) (*Request, error) {
	switch f {
	case FamilyChat:
		var p OllamaChatRequest
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed JSON: %w", ErrDecode, err)
		}
		chat := &ChatCompletionRequest{Model: p.Model, Stream: p.Stream == nil || *p.Stream}
		for _, om := range p.Messages {
			chat.Messages = append(chat.Messages, ollamaMessageToCanonical(om))
		}
		applyOllamaOptions(chat, p.Options)
		req := &Request{Family: f, Model: p.Model, Stream: chat.Stream, Chat: chat}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		return req, nil
	case FamilyGenerate:
		var p OllamaGenerateRequest
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed JSON: %w", ErrDecode, err)
		}
		chat := &ChatCompletionRequest{Model: p.Model, Stream: p.Stream == nil || *p.Stream}
		if p.System != "" {
			chat.Messages = append(chat.Messages, Message{Role: "system", Content: p.System})
		}
		chat.Messages = append(chat.Messages, ollamaMessageToCanonical(OllamaMessage{
			Role: "user", Content: p.Prompt, Images: p.Images,
		}))
		applyOllamaOptions(chat, p.Options)
		req := &Request{Family: f, Model: p.Model, Stream: chat.Stream, Chat: chat}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		return req, nil
	}
	return nil, fmt.Errorf("%w: ollama codec cannot decode %q", ErrUnsupported, f)
}

// ollamaMessageToCanonical converts one Ollama message; attached images
// become multimodal content parts so the vision costing is shared with
// OpenAI clients.
func ollamaMessageToCanonical(om OllamaMessage) Message {
	msg := Message{Role: om.Role, Content: om.Content}
	if len(om.Images) == 0 {
		return msg
	}
	if om.Content != "" {
		msg.Parts = append(msg.Parts, ContentPart{Type: "text", Text: om.Content})
	}
	for _, img := range om.Images {
		msg.Parts = append(msg.Parts, ContentPart{Type: "image_url", ImageURL: &ImageURL{URL: dataURIPrefix + img}})
	}
	return msg
}

// applyOllamaOptions folds the options envelope into the canonical
// sampling fields.
func applyOllamaOptions(chat *ChatCompletionRequest, o *OllamaOptions) {
	if o == nil {
		return
	}
	if o.NumPredict > 0 {
		chat.MaxTokens = o.NumPredict
	}
	chat.Temperature = o.Temperature
	chat.Seed = o.Seed
}

// canonicalMessageToOllama inverts ollamaMessageToCanonical.
func canonicalMessageToOllama(m Message) OllamaMessage {
	om := OllamaMessage{Role: m.Role, Content: m.Content}
	for _, p := range m.Parts {
		if p.Type == "image_url" && p.ImageURL != nil {
			om.Images = append(om.Images, strings.TrimPrefix(p.ImageURL.URL, dataURIPrefix))
		}
	}
	return om
}

// ollamaOptionsFromCanonical extracts the options envelope (nil when no
// sampling parameters are set).
func ollamaOptionsFromCanonical(chat *ChatCompletionRequest) *OllamaOptions {
	if chat.MaxTokens == 0 && chat.Temperature == nil && chat.Seed == nil {
		return nil
	}
	return &OllamaOptions{NumPredict: chat.MaxTokens, Temperature: chat.Temperature, Seed: chat.Seed}
}

// EncodeRequest implements Codec: renders the canonical chat payload in
// the Ollama wire shape. Stream is always explicit because Ollama's
// default (true) differs from the canonical zero value.
func (OllamaCodec) EncodeRequest(req *Request) ([]byte, error) {
	if req.Chat == nil {
		return nil, fmt.Errorf("%w: ollama codec cannot encode %q", ErrUnsupported, req.Family)
	}
	stream := req.Stream
	switch req.Family {
	case FamilyChat:
		p := OllamaChatRequest{Model: req.Model, Stream: &stream, Options: ollamaOptionsFromCanonical(req.Chat)}
		for _, m := range req.Chat.Messages {
			p.Messages = append(p.Messages, canonicalMessageToOllama(m))
		}
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("ir: encoding ollama chat request: %w", err)
		}
		return b, nil
	case FamilyGenerate:
		p := OllamaGenerateRequest{Model: req.Model, Stream: &stream, Options: ollamaOptionsFromCanonical(req.Chat)}
		for _, m := range req.Chat.Messages {
			switch m.Role {
			case "system":
				p.System = m.Content
			default:
				om := canonicalMessageToOllama(m)
				p.Prompt, p.Images = om.Content, om.Images
			}
		}
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("ir: encoding ollama generate request: %w", err)
		}
		return b, nil
	}
	return nil, fmt.Errorf("%w: ollama codec cannot encode %q", ErrUnsupported, req.Family)
}

// formatCreatedAt renders a canonical created timestamp (unix seconds)
// as Ollama's RFC 3339 created_at.
func formatCreatedAt(created int64) string {
	return time.Unix(created, 0).UTC().Format(time.RFC3339)
}

// parseCreatedAt inverts formatCreatedAt, tolerating sub-second
// precision.
func parseCreatedAt(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return 0, fmt.Errorf("%w: created_at: %w", ErrDecode, err)
	}
	return t.Unix(), nil
}

// DecodeResponse implements Codec.
func (OllamaCodec) DecodeResponse(f Family, body []byte) (*Response, error) {
	switch f {
	case FamilyChat:
		var p OllamaChatChunk
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed chat response: %w", ErrDecode, err)
		}
		created, err := parseCreatedAt(p.CreatedAt)
		if err != nil {
			return nil, err
		}
		return &Response{Family: f, Chat: &ChatCompletionResponse{
			Object:  "chat.completion",
			Created: created,
			Model:   p.Model,
			Choices: []Choice{{
				Message:      Message{Role: p.Message.Role, Content: p.Message.Content},
				FinishReason: doneReasonOrStop(p.DoneReason),
			}},
			Usage: Usage{
				PromptTokens:     p.PromptEvalCount,
				CompletionTokens: p.EvalCount,
				TotalTokens:      p.PromptEvalCount + p.EvalCount,
			},
		}}, nil
	case FamilyGenerate:
		var p OllamaGenerateChunk
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed generate response: %w", ErrDecode, err)
		}
		created, err := parseCreatedAt(p.CreatedAt)
		if err != nil {
			return nil, err
		}
		return &Response{Family: f, Chat: &ChatCompletionResponse{
			Object:  "chat.completion",
			Created: created,
			Model:   p.Model,
			Choices: []Choice{{
				Message:      Message{Role: "assistant", Content: p.Response},
				FinishReason: doneReasonOrStop(p.DoneReason),
			}},
			Usage: Usage{
				PromptTokens:     p.PromptEvalCount,
				CompletionTokens: p.EvalCount,
				TotalTokens:      p.PromptEvalCount + p.EvalCount,
			},
		}}, nil
	}
	return nil, fmt.Errorf("%w: ollama codec cannot decode %q response", ErrUnsupported, f)
}

// EncodeResponse implements Codec.
func (OllamaCodec) EncodeResponse(resp *Response) ([]byte, error) {
	if resp.Chat == nil {
		return nil, fmt.Errorf("%w: ollama codec cannot encode %q response", ErrUnsupported, resp.Family)
	}
	r := resp.Chat
	var content, reason string
	if len(r.Choices) > 0 {
		content = r.Choices[0].Message.Content
		reason = r.Choices[0].FinishReason
	}
	var v interface{}
	switch resp.Family {
	case FamilyChat:
		v = OllamaChatChunk{
			Model:           r.Model,
			CreatedAt:       formatCreatedAt(r.Created),
			Message:         OllamaMessage{Role: "assistant", Content: content},
			Done:            true,
			DoneReason:      doneReasonOrStop(reason),
			PromptEvalCount: r.Usage.PromptTokens,
			EvalCount:       r.Usage.CompletionTokens,
		}
	case FamilyGenerate:
		v = OllamaGenerateChunk{
			Model:           r.Model,
			CreatedAt:       formatCreatedAt(r.Created),
			Response:        content,
			Done:            true,
			DoneReason:      doneReasonOrStop(reason),
			PromptEvalCount: r.Usage.PromptTokens,
			EvalCount:       r.Usage.CompletionTokens,
		}
	default:
		return nil, fmt.Errorf("%w: ollama codec cannot encode %q response", ErrUnsupported, resp.Family)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ir: encoding ollama %s response: %w", resp.Family, err)
	}
	return b, nil
}

// doneReasonOrStop defaults an absent finish reason to "stop".
func doneReasonOrStop(reason string) string {
	if reason == "" {
		return "stop"
	}
	return reason
}

// DecodeStreamEvent implements Codec: frame is one NDJSON line. A
// done:true line decodes to an event that is both Done and carries the
// folded finish chunk.
func (OllamaCodec) DecodeStreamEvent(f Family, frame []byte) (*StreamEvent, error) {
	switch f {
	case FamilyChat:
		var p OllamaChatChunk
		if err := json.Unmarshal(frame, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed chat stream line: %w", ErrDecode, err)
		}
		created, err := parseCreatedAt(p.CreatedAt)
		if err != nil {
			return nil, err
		}
		return ollamaLineToEvent(p.Model, created, Message{Role: p.Message.Role, Content: p.Message.Content},
			p.Done, p.DoneReason, p.PromptEvalCount, p.EvalCount), nil
	case FamilyGenerate:
		var p OllamaGenerateChunk
		if err := json.Unmarshal(frame, &p); err != nil {
			return nil, fmt.Errorf("%w: malformed generate stream line: %w", ErrDecode, err)
		}
		created, err := parseCreatedAt(p.CreatedAt)
		if err != nil {
			return nil, err
		}
		return ollamaLineToEvent(p.Model, created, Message{Content: p.Response},
			p.Done, p.DoneReason, p.PromptEvalCount, p.EvalCount), nil
	}
	return nil, fmt.Errorf("%w: ollama codec cannot decode %q stream", ErrUnsupported, f)
}

// ollamaLineToEvent builds the canonical event for one decoded line.
func ollamaLineToEvent(model string, created int64, delta Message, done bool, reason string, promptTok, evalTok int) *StreamEvent {
	chunk := &ChatCompletionChunk{
		Object:  "chat.completion.chunk",
		Created: created,
		Model:   model,
		Choices: []DeltaChoice{{Delta: delta}},
	}
	if done {
		fr := doneReasonOrStop(reason)
		chunk.Choices[0].FinishReason = &fr
		chunk.Usage = &Usage{
			PromptTokens:     promptTok,
			CompletionTokens: evalTok,
			TotalTokens:      promptTok + evalTok,
		}
	}
	return &StreamEvent{Chunk: chunk, Done: done}
}

// EncodeStreamEvent implements Codec. A chunk carrying a finish reason
// (or an explicitly Done event with a chunk) renders as the terminal
// done:true line; the bare [DONE] sentinel renders as nothing because
// the done line already closed the stream.
func (OllamaCodec) EncodeStreamEvent(f Family, ev *StreamEvent) ([]byte, error) {
	if f != FamilyChat && f != FamilyGenerate {
		return nil, fmt.Errorf("%w: ollama codec cannot encode %q stream", ErrUnsupported, f)
	}
	if ev.Chunk == nil {
		return nil, nil // SSE [DONE]: the done line already went out
	}
	c := ev.Chunk
	var delta Message
	var finish *string
	if len(c.Choices) > 0 {
		delta = c.Choices[0].Delta
		finish = c.Choices[0].FinishReason
	}
	done := ev.Done || finish != nil
	var v interface{}
	switch {
	case f == FamilyChat && done:
		v = OllamaChatChunk{
			Model:     c.Model,
			CreatedAt: formatCreatedAt(c.Created),
			Message:   OllamaMessage{Role: "assistant", Content: delta.Content},
			Done:      true, DoneReason: doneReasonFromFinish(finish),
			PromptEvalCount: usagePrompt(c.Usage), EvalCount: usageCompletion(c.Usage),
		}
	case f == FamilyChat:
		v = OllamaChatChunk{
			Model:     c.Model,
			CreatedAt: formatCreatedAt(c.Created),
			Message:   OllamaMessage{Role: deltaRoleOrAssistant(delta.Role), Content: delta.Content},
		}
	case done:
		v = OllamaGenerateChunk{
			Model:     c.Model,
			CreatedAt: formatCreatedAt(c.Created),
			Response:  delta.Content,
			Done:      true, DoneReason: doneReasonFromFinish(finish),
			PromptEvalCount: usagePrompt(c.Usage), EvalCount: usageCompletion(c.Usage),
		}
	default:
		v = OllamaGenerateChunk{
			Model:     c.Model,
			CreatedAt: formatCreatedAt(c.Created),
			Response:  delta.Content,
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ir: encoding ollama %s stream line: %w", f, err)
	}
	return append(b, '\n'), nil
}

func doneReasonFromFinish(finish *string) string {
	if finish == nil {
		return "stop"
	}
	return doneReasonOrStop(*finish)
}

func deltaRoleOrAssistant(role string) string {
	if role == "" {
		return "assistant"
	}
	return role
}

func usagePrompt(u *Usage) int {
	if u == nil {
		return 0
	}
	return u.PromptTokens
}

func usageCompletion(u *Usage) int {
	if u == nil {
		return 0
	}
	return u.CompletionTokens
}
